package transit_test

import (
	"context"
	"testing"

	"transit"
	"transit/internal/obs"
)

// TestSpanTreeNesting is the acceptance check for the observability
// layer: synthesizing and verifying a builtin protocol under a tracer
// must yield the full span hierarchy — engine.run → engine.job →
// synth.cegis → synth.iteration → smt.solve → sat.search — linked by
// parent IDs, with job spans on per-worker tracks, plus an mc.bfs span
// for the model-check and populated pipeline metrics.
func TestSpanTreeNesting(t *testing.T) {
	col := obs.NewCollect()
	reg := obs.NewRegistry()
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(col))
	ctx = obs.WithMetrics(ctx, reg)

	proto := transit.VI(2)
	if _, err := transit.SynthesizeCtx(ctx, proto, transit.SynthesisOptions{
		Limits: transit.Limits{MaxSize: 12}, Workers: 2,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := transit.VerifyCtx(ctx, proto, transit.VerifyOptions{CheckDeadlock: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("violation:\n%v", res.Violation)
	}

	spans := col.Spans()
	byID := map[uint64]obs.SpanData{}
	count := map[string]int{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		count[sp.Name]++
	}
	for _, name := range []string{
		"engine.run", "engine.job", "synth.cegis", "synth.iteration",
		"smt.solve", "smt.encode", "sat.search", "synth.enumerate", "mc.bfs",
	} {
		if count[name] == 0 {
			t.Errorf("no %s span recorded", name)
		}
	}
	if count["engine.run"] != 1 {
		t.Errorf("engine.run spans = %d, want 1", count["engine.run"])
	}

	// Walk each span's parent chain and check the nesting order the trace
	// must render in Perfetto. smt.solve has two legitimate parents: CEGIS
	// consistency/concretization queries (synth.iteration) and the static
	// guard-exclusivity validity checks (core.guard_check).
	wantParent := map[string][]string{
		"engine.job":       {"engine.run"},
		"synth.cegis":      {"engine.job"},
		"synth.iteration":  {"synth.cegis"},
		"synth.enumerate":  {"synth.iteration"},
		"core.guard_check": {"engine.job"},
		"smt.solve":        {"synth.iteration", "core.guard_check"},
		"smt.encode":       {"smt.solve"},
		"sat.search":       {"smt.solve"},
	}
	for _, sp := range spans {
		want, checked := wantParent[sp.Name]
		if !checked {
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Errorf("%s span %d: parent %d not collected", sp.Name, sp.ID, sp.Parent)
			continue
		}
		okParent := false
		for _, w := range want {
			if parent.Name == w {
				okParent = true
			}
		}
		if !okParent {
			t.Errorf("%s span nests under %s, want one of %v", sp.Name, parent.Name, want)
		}
	}

	// Job spans land on 1-based worker tracks; the run root stays on the
	// main track.
	for _, sp := range spans {
		switch sp.Name {
		case "engine.job":
			if sp.Track < 1 || sp.Track > 2 {
				t.Errorf("engine.job track = %d, want 1..2", sp.Track)
			}
		case "engine.run", "mc.bfs":
			if sp.Track != 0 {
				t.Errorf("%s track = %d, want 0 (main)", sp.Name, sp.Track)
			}
		}
	}

	// The metrics registry saw the same pipeline.
	for _, name := range []string{
		"engine.jobs", "synth.solves", "synth.cegis_iterations",
		"smt.queries", "mc.runs", "mc.states",
	} {
		if reg.Get(name) <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, reg.Get(name))
		}
	}
	if jobs := reg.Get("engine.jobs"); jobs != int64(count["engine.job"]) {
		t.Errorf("engine.jobs counter = %d but %d job spans", jobs, count["engine.job"])
	}
}
