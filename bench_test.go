// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers are machine-dependent; EXPERIMENTS.md records the
// shapes that must match the paper (who wins, by what order of magnitude,
// where costs grow).
package transit_test

import (
	"fmt"
	"math/rand"
	"testing"

	"transit"
	"transit/internal/bench"
	"transit/internal/core"
	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
	"transit/internal/protocols"
	"transit/internal/synth"
)

// BenchmarkTable2MaxConcolic measures the full CEGIS loop on the Table 2
// walk-through: max(a, b) from the functional specification.
func BenchmarkTable2MaxConcolic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := bench.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 measures each short Table 3 inference benchmark.
func BenchmarkTable3(b *testing.B) {
	for _, bm := range bench.Table3Benchmarks() {
		if bm.Long {
			continue
		}
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u, err := expr.NewUniverseWidth(3, 4)
				if err != nil {
					b.Fatal(err)
				}
				prob, exs := bm.Build(u)
				if _, _, err := synth.SolveConcolic(prob, exs, synth.Limits{MaxSize: bm.ExpectedSize + 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fig5Instance pre-generates one Figure 5 trial: a random target of the
// given size and ten consistent examples.
func fig5Instance(b *testing.B, size int) (synth.Problem, []synth.ConcreteExample) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(size) * 7919))
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		b.Fatal(err)
	}
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	vars := []*expr.Var{
		expr.V("a", expr.IntType), expr.V("b", expr.IntType),
		expr.V("s", expr.SetType), expr.V("p", expr.PIDType),
	}
	target, err := expr.RandomExpr(u, rng, voc, vars, expr.IntType, size)
	if err != nil {
		b.Fatal(err)
	}
	exs := make([]synth.ConcreteExample, 10)
	for i := range exs {
		env := expr.RandomEnv(u, rng, vars)
		exs[i] = synth.ConcreteExample{S: env, Out: target.Eval(u, env)}
	}
	prob := synth.Problem{U: u, Vocab: voc, Vars: vars, Output: expr.V("o", expr.IntType)}
	return prob, exs
}

// BenchmarkFig5Pruned measures SolveConcrete with indistinguishability
// pruning at several target sizes (the paper's "Pruned" series).
func BenchmarkFig5Pruned(b *testing.B) {
	for _, size := range []int{4, 8, 12} {
		prob, exs := fig5Instance(b, size)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := synth.SolveConcrete(prob, exs, synth.Limits{MaxSize: size + 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5Exhaustive measures the unpruned variant (the paper's
// "Exhaustive" series, which it stops past size 10).
func BenchmarkFig5Exhaustive(b *testing.B) {
	for _, size := range []int{4, 8} {
		prob, exs := fig5Instance(b, size)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := synth.SolveConcrete(prob, exs, synth.Limits{
					MaxSize: size + 2, NoPrune: true, MaxExprs: 50_000_000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchProtocol measures whole-protocol synthesis plus model checking for
// a Table 4 row.
func benchProtocol(b *testing.B, build func() *protocols.Spec) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		spec := build()
		if _, err := core.Complete(spec.Sys, spec.Vocab, spec.Snippets,
			core.Options{Limits: synth.Limits{MaxSize: 12}}); err != nil {
			b.Fatal(err)
		}
		rt, err := efsm.NewRuntime(spec.Sys)
		if err != nil {
			b.Fatal(err)
		}
		res, err := mc.Check(rt, spec.Invariants, mc.Options{MaxStates: 4_000_000, CheckDeadlock: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatalf("violation:\n%v", res.Violation)
		}
	}
}

// BenchmarkTable4VI is the VI row of Table 4 (synthesis + model checking).
func BenchmarkTable4VI(b *testing.B) {
	benchProtocol(b, func() *protocols.Spec { return protocols.VI(3) })
}

// BenchmarkTable4MSI is the MSI row of Table 4.
func BenchmarkTable4MSI(b *testing.B) {
	benchProtocol(b, func() *protocols.Spec { return protocols.MSI(3) })
}

// BenchmarkTable5 measures the scripted case-study replays (one sub-bench
// per §6 case study).
func BenchmarkTable5(b *testing.B) {
	studies := map[string]func(int) transit.CaseStudy{
		"A-MSI":    protocols.CaseStudyA,
		"B-MESI":   protocols.CaseStudyB,
		"C-Origin": protocols.CaseStudyC,
	}
	for name, mk := range studies {
		mk := mk
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.RunCaseStudy(mk(2))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("did not converge")
				}
			}
		})
	}
}

// BenchmarkAnecdote measures the §2 anecdote pipeline: buggy synthesis,
// violation discovery, fixed synthesis, clean verification.
func BenchmarkAnecdote(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buggy := transit.Origin(2, false)
		if _, err := transit.Synthesize(buggy, transit.SynthesisOptions{Limits: transit.Limits{MaxSize: 12}}); err != nil {
			b.Fatal(err)
		}
		res, err := transit.Verify(buggy, transit.VerifyOptions{MaxStates: 2_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if res.OK {
			b.Fatal("expected a violation")
		}
		fixed := transit.Origin(2, true)
		if _, err := transit.Synthesize(fixed, transit.SynthesisOptions{Limits: transit.Limits{MaxSize: 12}}); err != nil {
			b.Fatal(err)
		}
		res, err = transit.Verify(fixed, transit.VerifyOptions{MaxStates: 2_000_000, CheckDeadlock: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatal("fixed protocol must verify")
		}
	}
}
