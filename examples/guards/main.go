// Guard synthesis (§5.2) from the TRANSIT surface language: a directory
// transition group whose guards are left empty ([]) and inferred from case
// preconditions, under the pairwise mutual-exclusion requirement.
package main

import (
	"fmt"
	"log"

	"transit"
)

// A toy request server: Ping requests are answered, Probe requests are
// counted, and overload (more than two probes) drops into a Cooldown state
// that stalls everything. All three guards are inferred.
const src = `
protocol Guards;

enum ReqKind { Ping, Probe }
enum RepKind { Pong }

message Req { Kind: ReqKind; From: PID }
message Rep { Kind: RepKind; Dest: PID }

network ReqNet ordered Req to Server;
network RepNet ordered Rep to Client by Dest;

process Server {
    states { Ready, Cooldown } init Ready;
    var Probes: Int;

    // Three blocks for (Ready, ReqNet) with empty guards; the inferred
    // guards must cover each block's preconditions and exclude the
    // others'.
    transition (Ready, ReqNet Msg) => (Ready, RepNet R) {
        [Msg.Kind = Ping] ==> {
            R.Kind' = Pong;
            R.Dest' = Msg.From;
        }
    }
    transition (Ready, ReqNet Msg) => (Ready) {
        [Msg.Kind = Probe & Probes < 2] ==> { Probes' = Probes + 1; }
    }
    transition (Ready, ReqNet Msg) => (Cooldown) {
        [Msg.Kind = Probe & Probes >= 2] ==> { Probes' = 0; }
    }
    transition (Cooldown, ReqNet Msg) stall;
}

process Client replicated {
    states { Idle, Waiting } init Idle;
    triggers { DoPing, DoProbe }

    transition (Idle, DoPing) => (Waiting, ReqNet Out) {
        [] ==> { Out.Kind' = Ping; Out.From' = Self; }
    }
    transition (Idle, DoProbe) => (Idle, ReqNet Out) {
        [] ==> { Out.Kind' = Probe; Out.From' = Self; }
    }
    transition (Waiting, RepNet Msg) => (Idle);
}
`

func main() {
	proto, err := transit.LoadProtocol(src, 2)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := transit.Synthesize(proto, transit.SynthesisOptions{
		Limits: transit.Limits{MaxSize: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d guards for %d transitions\n\n", rep.GuardsSynthesized, rep.Transitions)
	for _, d := range proto.Sys.Defs {
		if d.Name != "Server" {
			continue
		}
		fmt.Println("Server transitions with inferred guards:")
		for _, t := range d.Transitions {
			if t.Defer {
				fmt.Printf("  (%s, ReqNet) stall\n", t.From)
				continue
			}
			fmt.Printf("  (%s, ReqNet) [%s] -> %s\n", t.From, t.GuardString(), t.To)
		}
	}
	// The unbounded Probe trigger makes the request queue unbounded, so
	// bound exploration: this example is about the synthesized guards,
	// which the bounded search still exercises fully.
	res, err := transit.Verify(proto, transit.VerifyOptions{MaxStates: 50_000})
	if err != nil {
		fmt.Printf("\nbounded model check stopped at the state budget (expected: probes are unbounded): %v\n", err)
		return
	}
	if !res.OK {
		log.Fatalf("violation:\n%v", res.Violation)
	}
	fmt.Printf("\nmodel check explored %d states without violations\n", res.States)
}
