// The MSI case study end-to-end: synthesize the full MSI directory
// protocol from its snippet transcription and model check it — then replay
// the iterative development workflow of §6.1 (case study A), watching the
// model checker drive the snippet set to completion.
package main

import (
	"fmt"
	"log"

	"transit"
)

func main() {
	const numCaches = 2

	// --- One-shot: the complete transcription.
	proto := transit.MSI(numCaches)
	rep, err := transit.Synthesize(proto, transit.SynthesisOptions{
		Limits: transit.Limits{MaxSize: 12},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MSI(%d): %d snippets -> %d transitions (%d updates, %d guards synthesized; %d+%d expressions tried)\n",
		numCaches, rep.Snippets, rep.Transitions,
		rep.UpdatesSynthesized, rep.GuardsSynthesized,
		rep.UpdateExprsTried, rep.GuardExprsTried)

	res, err := transit.Verify(proto, transit.VerifyOptions{
		MaxStates: 2_000_000, CheckDeadlock: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("MSI violates invariants:\n%v", res.Violation)
	}
	fmt.Printf("model check PASSED: %d reachable states (SWMR, sharer accuracy, owner accuracy, no deadlock)\n\n", res.States)

	// A sample of the synthesized directory code (the paper's §6.4
	// "readability" discussion is about expressions like these).
	fmt.Println("sample synthesized directory transitions:")
	shown := 0
	for _, t := range proto.Sys.Defs[0].Transitions {
		if len(t.Updates) == 0 || shown >= 3 {
			continue
		}
		fmt.Printf("  (%s, %s) [%s] -> %s\n", t.From, t.Event, t.GuardString(), t.To)
		for _, u := range t.Updates {
			fmt.Printf("      %s := %s\n", u.Var, transit.Pretty(u.Rhs))
		}
		shown++
	}
	fmt.Println()

	// --- Iterative: case study A, the model checker finding what the
	// initial transcription missed.
	fmt.Println("case study A replay (initial transcription + fixes until green):")
	study := transit.CaseStudyMSI(numCaches)
	result, err := transit.RunCaseStudy(study)
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range result.Iterations {
		verdict := "PASSED"
		if it.Violation != nil {
			verdict = fmt.Sprintf("%s (%s)", it.Violation.Kind, it.Violation.Name)
		}
		fmt.Printf("  iteration %d: %2d snippets added (%s) -> %s\n",
			it.Index, it.SnippetsAdded, it.FixLabel, verdict)
	}
	fmt.Printf("converged: %d snippets, %d transitions, %d states\n",
		result.TotalSnippets, result.FinalTransitions, result.FinalStates)
}
