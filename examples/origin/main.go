// The §2 anecdote end-to-end: the SGI-Origin read-to-exclusive flow with
// its Sharers update specified only as "at least the sender in addition to
// the old value". Synthesis produces the minimal consistent expression,
// the model checker produces the Figure 2 counterexample, and the concrete
// bug-fix snippet leads to a verified protocol.
package main

import (
	"fmt"
	"log"

	"transit"
)

func main() {
	const numCaches = 2

	fmt.Println("== Origin with the underspecified Sharers update ==")
	buggy := transit.Origin(numCaches, false)
	if _, err := transit.Synthesize(buggy, transit.SynthesisOptions{
		Limits: transit.Limits{MaxSize: 12},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized Sharers update: %s\n", sharersUpdate(buggy))

	res, chart, err := transit.VerifyWithChart(buggy, transit.VerifyOptions{MaxStates: 2_000_000, CheckDeadlock: true})
	if err != nil {
		log.Fatal(err)
	}
	if res.OK {
		log.Fatal("expected a coherence violation")
	}
	fmt.Printf("\nmodel checker found the Figure 2 violation after %d states:\n%v\n", res.States, res.Violation)
	fmt.Printf("as a message-sequence chart (the paper's Figure 2 view):\n%s\n", chart)

	fmt.Println("== Origin with the concrete bug-fix snippet ==")
	fixed := transit.Origin(numCaches, true)
	if _, err := transit.Synthesize(fixed, transit.SynthesisOptions{
		Limits: transit.Limits{MaxSize: 12},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized Sharers update: %s\n", sharersUpdate(fixed))
	res, err = transit.Verify(fixed, transit.VerifyOptions{MaxStates: 4_000_000, CheckDeadlock: true})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("fixed protocol still violates:\n%v", res.Violation)
	}
	fmt.Printf("model check PASSED: %d reachable states\n", res.States)
}

// sharersUpdate extracts the synthesized EXCL+READ Sharers update.
func sharersUpdate(proto *transit.Protocol) string {
	for _, d := range proto.Sys.Defs {
		if d.Name != "Dir" {
			continue
		}
		for _, t := range d.Transitions {
			if t.From != "EXCL" || t.To != "BUSY_SHARED" {
				continue
			}
			for _, u := range t.Updates {
				if u.Var == "Sharers" {
					return "Sharers := " + transit.Pretty(u.Rhs)
				}
			}
		}
	}
	return "(not found)"
}
