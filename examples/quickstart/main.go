// Quickstart: infer expressions from concolic examples — the paper's
// Table 2 walk-through, plus a concrete-snippet correction in the style of
// the §2 anecdote.
package main

import (
	"fmt"
	"log"

	"transit"
)

func main() {
	u := transit.NewUniverse(3)
	voc := transit.CoherenceVocabulary(u, transit.VocabOptions{})

	// --- Part 1: max(a, b) from a purely symbolic (functional) spec.
	a := transit.NewVar("a", transit.IntType)
	b := transit.NewVar("b", transit.IntType)
	o := transit.NewVar("o", transit.IntType)
	prob := transit.Problem{U: u, Vocab: voc, Vars: []*transit.Var{a, b}, Output: o}
	spec := []transit.ConcolicExample{{
		Pre: transit.True(),
		Post: transit.And(
			transit.Ge(o, a), transit.Ge(o, b),
			transit.Or(transit.Eq(o, a), transit.Eq(o, b))),
	}}
	e, stats, err := transit.SolveConcolic(prob, spec, transit.Limits{MaxSize: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("max(a, b) from  true ==> o>=a & o>=b & (o=a | o=b):")
	for i, rec := range stats.Trace {
		if rec.Witness == nil {
			fmt.Printf("  iteration %d: %-28s accepted\n", i+1, rec.Candidate)
		} else {
			fmt.Printf("  iteration %d: %-28s refuted by %v\n", i+1, rec.Candidate, rec.Witness)
		}
	}
	fmt.Printf("  => %s   (%d CEGIS iterations, %d SMT queries)\n\n",
		transit.Pretty(e), stats.Iterations, stats.SMTQueries)

	// --- Part 2: the §2 anecdote in miniature. A superset constraint
	// underspecifies a sharer-set update; a concrete example pins the
	// intended behaviour.
	owner := transit.NewVar("Owner", transit.PIDType)
	sharers := transit.NewVar("Sharers", transit.SetType)
	sender := transit.NewVar("Sender", transit.PIDType)
	out := transit.NewVar("out", transit.SetType)
	prob2 := transit.Problem{U: u, Vocab: voc,
		Vars: []*transit.Var{owner, sharers, sender}, Output: out}

	superset := transit.ConcolicExample{
		Pre:  transit.True(),
		Post: transit.SubsetEq(transit.SetAdd(sharers, sender), out),
	}
	e1, _, err := transit.SolveConcolic(prob2, []transit.ConcolicExample{superset}, transit.Limits{MaxSize: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("underspecified:  out ⊇ Sharers ∪ {Sender}        => %s\n", transit.Pretty(e1))

	// The concrete correction: with Owner=C0, Sender=C1, Sharers={}, the
	// result must be exactly {C0, C1} (the previous owner stays tracked).
	fix := transit.ConcolicExample{
		Pre: transit.And(
			transit.Eq(owner, transit.PIDLit(0)), transit.Eq(sender, transit.PIDLit(1)),
			transit.Eq(sharers, transit.SetLit())),
		Post: transit.Eq(out, transit.SetLit(0, 1)),
	}
	e2, _, err := transit.SolveConcolic(prob2, []transit.ConcolicExample{superset, fix}, transit.Limits{MaxSize: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with the fix:    + (Owner=C0, Sender=C1, {} -> {C0,C1}) => %s\n", transit.Pretty(e2))
}
