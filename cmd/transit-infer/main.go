// Command transit-infer runs expression inference (Algorithm 2 /
// SolveConcolic) on a textual example set.
//
// The input format is a sequence of ';'-terminated statements:
//
//	universe 3;                     // optional cache count (default 3)
//	enum E { c1, c2 };              // optional enum declarations
//	var a: Int;                     // input variables
//	var b: Int;
//	output o: Int;                  // the output variable
//	example true ==> (o >= a) & (o >= b) & ((o = a) | (o = b));
//	example a > b ==> o = a;        // pre ==> post
//
// Expressions use the TRANSIT surface syntax (see internal/lang).
//
// Usage:
//
//	transit-infer [-max-size K] [-timeout D] [-no-incremental]
//	              [-enum-workers N] [-cegis-trace] [-stats]
//	              [-trace out.json] [-stats-summary]
//	              [-serve ADDR] [-flight F]
//	              [-cpuprofile F] [-memprofile F] [-pprof ADDR] file
//
// With no file the spec is read from stdin. -cegis-trace prints the
// Table 2 style iteration log; -trace writes a Chrome trace-event JSON
// file of the CEGIS/SMT/SAT span tree (open it at ui.perfetto.dev).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"transit"
	"transit/internal/engine"
	"transit/internal/expr"
	"transit/internal/lang"
	"transit/internal/obs"
	"transit/internal/obs/serve"
)

// inferOptions is the CLI configuration for one inference run.
type inferOptions struct {
	maxSize      int
	enumWorkers  int
	portfolio    int
	noIncr       bool
	timeout      time.Duration
	cegisTrace   bool
	stats        bool
	tracePath    string
	statsSummary bool
	serveAddr    string
	flightPath   string
	profiling    obs.Profiling
}

func main() {
	var opts inferOptions
	flag.IntVar(&opts.maxSize, "max-size", 14, "expression-size bound")
	flag.BoolVar(&opts.noIncr, "no-incremental", false, "disable the incremental SMT session (one solver per query; identical output)")
	flag.IntVar(&opts.enumWorkers, "enum-workers", 1, "tier-parallel enumeration fan-out (1 = sequential; identical output)")
	flag.IntVar(&opts.portfolio, "portfolio", 0, "race this many solver configurations, keeping the first to finish (0/1 = off)")
	flag.BoolVar(&opts.cegisTrace, "cegis-trace", false, "print the CEGIS trace (Table 2 style)")
	flag.DurationVar(&opts.timeout, "timeout", 0, "inference deadline, e.g. 30s (0 = none)")
	flag.BoolVar(&opts.stats, "stats", false, "stream statistics and trace spans as JSON lines to stderr")
	flag.StringVar(&opts.tracePath, "trace", "", "write a Chrome trace-event JSON file (view at ui.perfetto.dev)")
	flag.BoolVar(&opts.statsSummary, "stats-summary", false, "print an end-of-run span tree and metrics table to stderr")
	flag.StringVar(&opts.serveAddr, "serve", "", "serve live introspection on this address (e.g. localhost:6969)")
	flag.StringVar(&opts.flightPath, "flight", "", "arm the flight recorder, dumping to this file on panic/cancel/SIGINT")
	flag.StringVar(&opts.profiling.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&opts.profiling.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&opts.profiling.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	var src []byte
	var err error
	if flag.NArg() >= 1 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fail(err)
	}
	if err := run(string(src), opts); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "transit-infer:", err)
	os.Exit(1)
}

type spec struct {
	numCaches int
	enums     []enumDecl
	vars      []varDecl
	output    *varDecl
	examples  []exampleDecl
}

type enumDecl struct {
	name   string
	values []string
}

type varDecl struct {
	name, typ string
}

type exampleDecl struct {
	pre, post string
}

// parseSpec splits the statement-oriented input; expressions are parsed by
// the TRANSIT language package.
func parseSpec(src string) (*spec, error) {
	sp := &spec{numCaches: 3}
	// Strip // comments.
	var lines []string
	for _, ln := range strings.Split(src, "\n") {
		if i := strings.Index(ln, "//"); i >= 0 {
			ln = ln[:i]
		}
		lines = append(lines, ln)
	}
	for _, stmt := range strings.Split(strings.Join(lines, "\n"), ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		fields := strings.Fields(stmt)
		switch fields[0] {
		case "universe":
			if len(fields) != 2 {
				return nil, fmt.Errorf("universe wants one integer: %q", stmt)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, err
			}
			sp.numCaches = n
		case "enum":
			body := strings.TrimSpace(strings.TrimPrefix(stmt, "enum"))
			open := strings.Index(body, "{")
			close := strings.LastIndex(body, "}")
			if open < 0 || close < open {
				return nil, fmt.Errorf("malformed enum: %q", stmt)
			}
			name := strings.TrimSpace(body[:open])
			var values []string
			for _, v := range strings.Split(body[open+1:close], ",") {
				values = append(values, strings.TrimSpace(v))
			}
			sp.enums = append(sp.enums, enumDecl{name: name, values: values})
		case "var", "output":
			rest := strings.TrimSpace(strings.TrimPrefix(stmt, fields[0]))
			parts := strings.SplitN(rest, ":", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("malformed declaration: %q", stmt)
			}
			d := varDecl{name: strings.TrimSpace(parts[0]), typ: strings.TrimSpace(parts[1])}
			if fields[0] == "var" {
				sp.vars = append(sp.vars, d)
			} else {
				if sp.output != nil {
					return nil, fmt.Errorf("multiple output declarations")
				}
				sp.output = &d
			}
		case "example":
			rest := strings.TrimSpace(strings.TrimPrefix(stmt, "example"))
			parts := strings.SplitN(rest, "==>", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("example wants 'pre ==> post': %q", stmt)
			}
			sp.examples = append(sp.examples, exampleDecl{
				pre:  strings.TrimSpace(parts[0]),
				post: strings.TrimSpace(parts[1]),
			})
		default:
			return nil, fmt.Errorf("unknown statement %q", fields[0])
		}
	}
	if sp.output == nil {
		return nil, fmt.Errorf("no output declaration")
	}
	if len(sp.examples) == 0 {
		return nil, fmt.Errorf("no examples")
	}
	return sp, nil
}

func typeByName(u *expr.Universe, name string) (expr.Type, error) {
	switch name {
	case "Bool":
		return expr.BoolType, nil
	case "Int":
		return expr.IntType, nil
	case "PID":
		return expr.PIDType, nil
	case "Set":
		return expr.SetType, nil
	}
	if e, ok := u.Enum(name); ok {
		return expr.EnumOf(e), nil
	}
	return expr.Type{}, fmt.Errorf("unknown type %s", name)
}

func run(src string, opts inferOptions) error {
	sp, err := parseSpec(src)
	if err != nil {
		return err
	}
	u := transit.NewUniverse(sp.numCaches)
	var enums []*expr.EnumType
	for _, e := range sp.enums {
		et, err := u.DeclareEnum(e.name, e.values...)
		if err != nil {
			return err
		}
		enums = append(enums, et)
	}
	scope := lang.ExprScope{U: u, Vars: map[string]expr.Type{}, Enums: enums}
	var vars []*transit.Var
	for _, d := range sp.vars {
		t, err := typeByName(u, d.typ)
		if err != nil {
			return err
		}
		vars = append(vars, transit.NewVar(d.name, t))
		scope.Vars[d.name] = t
	}
	outType, err := typeByName(u, sp.output.typ)
	if err != nil {
		return err
	}
	// The output variable is visible inside posts.
	scope.Vars[sp.output.name] = outType

	var examples []transit.ConcolicExample
	for _, ex := range sp.examples {
		pre, err := lang.ParseAndElabExpr(ex.pre, scope)
		if err != nil {
			return fmt.Errorf("pre %q: %w", ex.pre, err)
		}
		post, err := lang.ParseAndElabExpr(ex.post, scope)
		if err != nil {
			return fmt.Errorf("post %q: %w", ex.post, err)
		}
		examples = append(examples, transit.ConcolicExample{Pre: pre, Post: post})
	}

	voc := transit.CoherenceVocabulary(u, transit.VocabOptions{
		Enums: enums, WithEnumConstants: true, WithSetLiterals: true, WithoutEnumIte: true,
	})
	prob := transit.Problem{U: u, Vocab: voc, Vars: vars, Output: transit.NewVar(sp.output.name, outType)}

	var ndjson, summary io.Writer
	var statsWriter io.Writer = os.Stderr
	if opts.stats {
		sw := obs.NewSyncWriter(os.Stderr)
		ndjson = sw
		statsWriter = sw
	}
	if opts.statsSummary {
		summary = os.Stderr
	}
	var srv *serve.Server
	flightPath := opts.flightPath
	if opts.serveAddr != "" {
		srv = serve.New(opts.serveAddr)
		if flightPath == "" {
			flightPath = obs.DefaultFlightPath()
		}
	}
	oopts := obs.Options{
		NDJSON:     ndjson,
		TracePath:  opts.tracePath,
		Summary:    summary,
		FlightPath: flightPath,
		Profiling:  opts.profiling,
	}
	if srv != nil {
		oopts.Extra = srv.Exporters()
	}
	sess, err := obs.NewSession(oopts)
	if err != nil {
		return err
	}
	defer sess.Close()
	if srv != nil {
		srv.Attach(sess)
		if err := srv.Start(); err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "transit-infer: live introspection on http://%s/\n", srv.Addr())
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx := sess.Context(sigCtx)
	if opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.timeout)
		defer cancel()
	}
	lim := transit.Limits{MaxSize: opts.maxSize, NoIncremental: opts.noIncr,
		EnumWorkers: opts.enumWorkers, Portfolio: opts.portfolio}
	var e transit.Expr
	var st transit.SynthStats
	if opts.portfolio > 1 {
		// The portfolio race lives in the engine, one layer above the raw
		// solver; a throwaway engine with memoization off runs exactly one
		// raced solve.
		eng := engine.New(engine.Config{})
		var out engine.SolveOutcome
		e, st, out, err = eng.SolveConcolic(ctx, engine.SolveSpec{
			Problem: prob, Examples: examples, Limits: lim})
		if err == nil && out.Portfolio != "" {
			fmt.Fprintf(os.Stderr, "transit-infer: portfolio winner: %s\n", out.Portfolio)
		}
	} else {
		e, st, err = transit.SolveConcolicCtx(ctx, prob, examples, lim)
	}
	if err != nil {
		if path, derr := sess.DumpFlight(err.Error()); derr == nil && path != "" {
			fmt.Fprintf(os.Stderr, "transit-infer: flight dump written to %s\n", path)
		}
		return err
	}
	if opts.cegisTrace {
		for i, rec := range st.Trace {
			if rec.Witness == nil {
				fmt.Printf("iter %d: %-30s accepted\n", i+1, rec.Candidate)
			} else {
				fmt.Printf("iter %d: %-30s refuted at %v; new example out=%v\n",
					i+1, rec.Candidate, rec.Witness, rec.NewExample.Out)
			}
		}
	}
	if opts.stats {
		fmt.Fprintf(statsWriter,
			`{"type":"infer_end","size":%d,"cegis_iterations":%d,"smt_queries":%d,"candidates":%d,"duration_ms":%.3f}`+"\n",
			e.Size(), st.Iterations, st.SMTQueries, st.Concrete.Enumerated,
			float64(st.Elapsed)/float64(time.Millisecond))
	}
	fmt.Printf("%s\n", e)
	fmt.Printf("  pretty: %s\n", transit.Pretty(e))
	fmt.Printf("  size %d; %d CEGIS iterations, %d SMT queries, %d candidates enumerated, %s\n",
		e.Size(), st.Iterations, st.SMTQueries, st.Concrete.Enumerated,
		st.Elapsed.Round(1000*1000))
	return nil
}
