package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseSpec(t *testing.T) {
	sp, err := parseSpec(`
universe 4;
enum E { c1, c2 };
var a: Int;       // a comment
var s: Set;
output o: Int;
example true ==> o >= a;
example a > 0 ==> o = a;
`)
	if err != nil {
		t.Fatal(err)
	}
	if sp.numCaches != 4 {
		t.Errorf("numCaches = %d", sp.numCaches)
	}
	if len(sp.enums) != 1 || sp.enums[0].name != "E" || len(sp.enums[0].values) != 2 {
		t.Errorf("enums = %+v", sp.enums)
	}
	if len(sp.vars) != 2 || sp.vars[1].typ != "Set" {
		t.Errorf("vars = %+v", sp.vars)
	}
	if sp.output == nil || sp.output.name != "o" {
		t.Errorf("output = %+v", sp.output)
	}
	if len(sp.examples) != 2 || sp.examples[1].pre != "a > 0" {
		t.Errorf("examples = %+v", sp.examples)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		"var a: Int;",                   // no output, no examples
		"output o: Int;",                // no examples
		"output o: Int; example o = 1;", // missing ==>
		"output o: Int; output p: Int; example true ==> o = 0;", // duplicate output
		"universe x; output o: Int; example true ==> o = 0;",    // bad universe
		"wibble; output o: Int; example true ==> o = 0;",        // unknown stmt
	}
	for _, src := range cases {
		if _, err := parseSpec(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	err := run(`
var a: Int;
var b: Int;
output o: Int;
example true ==> (o >= a) & (o >= b) & ((o = a) | (o = b));
`, inferOptions{maxSize: 8, stats: true})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithEnumAndSets(t *testing.T) {
	err := run(`
enum K { Red, Blue };
var k: K;
var s: Set;
var p: PID;
output o: Set;
example k = Red ==> o = setadd(s, p);
example k != Red ==> o = setminus(s, setof(p));
`, inferOptions{maxSize: 12})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	err := run(`
var a: Int;
var b: Int;
output o: Int;
example true ==> (o >= a) & (o >= b) & ((o = a) | (o = b));
`, inferOptions{maxSize: 8, cegisTrace: true, tracePath: tracePath, statsSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatal("trace is not valid JSON")
	}
}
