// Command transit-bench regenerates the tables and figures of the paper's
// evaluation section:
//
//	transit-bench -table2          CEGIS trace for max(a, b)
//	transit-bench -table3 [-long]  expression-inference benchmarks
//	transit-bench -fig5            pruned vs. exhaustive enumeration
//	transit-bench -table4 [-n N]   VI and MSI synthesis + model checking
//	transit-bench -table5 [-n N]   case-study workflow metrics
//	transit-bench -engine [-workers N] [-out F]
//	                               serial vs. parallel job-engine synthesis
//	transit-bench -smt [-n N] [-smt-out F]
//	                               incremental sessions vs. one-shot solving
//	transit-bench -enum [-enum-workers N] [-enum-trials T] [-enum-out F]
//	                               sequential vs. parallel bank-reusing
//	                               enumerative search
//	transit-bench -mc [-mc-n N] [-mc-states S] [-mc-workers W] [-mc-out F]
//	                               model-checker scaling: plain vs.
//	                               symmetry-reduced parallel frontier
//	transit-bench -serve-url URL [-clients N] [-serve-requests N] [-serve-out F]
//	                               client load against a running
//	                               `transit serve` instance: cold vs.
//	                               warm-cache latency and throughput
//	transit-bench -all             everything (short variants; -serve-url
//	                               and -mc are separate — one needs a live
//	                               server, the other runs for minutes)
//
// Observability flags apply to whichever benchmarks run: -trace out.json
// writes a Chrome trace-event file (open at ui.perfetto.dev),
// -stats-summary prints the end-of-run span tree,
// -cpuprofile/-memprofile/-pprof enable the Go profilers, -serve ADDR
// exposes the live introspection endpoints while benchmarks run, and
// -flight F arms the flight recorder.
//
// Absolute numbers depend on the machine; the shapes to compare against
// the paper are described in EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"transit/internal/bench"
	"transit/internal/obs"
	"transit/internal/obs/serve"
)

func main() {
	var (
		table2      = flag.Bool("table2", false, "regenerate Table 2")
		table3      = flag.Bool("table3", false, "regenerate Table 3")
		fig5        = flag.Bool("fig5", false, "regenerate Figure 5")
		table4      = flag.Bool("table4", false, "regenerate Table 4")
		table5      = flag.Bool("table5", false, "regenerate Table 5")
		eng         = flag.Bool("engine", false, "compare serial vs. parallel job-engine synthesis")
		smt         = flag.Bool("smt", false, "compare incremental SMT sessions vs. one-shot solving")
		enum        = flag.Bool("enum", false, "compare sequential vs. tier-parallel bank-reusing enumeration")
		all         = flag.Bool("all", false, "regenerate everything (short variants)")
		long        = flag.Bool("long", false, "include long-running rows (Table 3 max-of-three; larger Figure 5 trials)")
		n           = flag.Int("n", 3, "cache count for Tables 4 and 5 and the engine/SMT comparisons")
		workers     = flag.Int("workers", runtime.NumCPU(), "parallel worker count for -engine and -smt")
		out         = flag.String("out", "BENCH_engine.json", "JSON artifact path for -engine (empty = none)")
		smtOut      = flag.String("smt-out", "BENCH_smt.json", "JSON artifact path for -smt (empty = none)")
		enumWorkers = flag.Int("enum-workers", 4, "tier worker count for -enum")
		enumTrials  = flag.Int("enum-trials", 3, "timing trials per mode for -enum (minimum is reported)")
		enumOut     = flag.String("enum-out", "BENCH_enum.json", "JSON artifact path for -enum (empty = none)")
		portfolio   = flag.Int("portfolio", 2, "configuration-race width for the -enum portfolio column (0/1 = omit it)")
		mcBench     = flag.Bool("mc", false, "compare plain vs. symmetry-reduced model checking at scale")
		mcN         = flag.Int("mc-n", 6, "cache count for -mc")
		mcStates    = flag.Int("mc-states", 1_000_000, "state budget per -mc checker run")
		mcWorkers   = flag.Int("mc-workers", runtime.NumCPU(), "frontier worker count for the model checker (-table4, -table5, -mc)")
		noSymmetry  = flag.Bool("no-symmetry", false, "disable PID-symmetry reduction in -table4/-table5 model checking (-mc always compares both modes)")
		mcOut       = flag.String("mc-out", "BENCH_mc.json", "JSON artifact path for -mc (empty = none)")
		serveURL    = flag.String("serve-url", "", "client mode: load-test a running `transit serve` at this URL (e.g. http://localhost:7878)")
		clients     = flag.Int("clients", 4, "concurrent clients for -serve-url")
		serveReqs   = flag.Int("serve-requests", 8, "distinct solve requests per pass for -serve-url")
		serveOut    = flag.String("serve-out", "BENCH_serve.json", "JSON artifact path for -serve-url (empty = none)")

		tracePath    = flag.String("trace", "", "write a Chrome trace-event JSON file (view at ui.perfetto.dev)")
		statsSummary = flag.Bool("stats-summary", false, "print an end-of-run span tree and metrics table to stderr")
		serveAddr    = flag.String("serve", "", "serve live introspection on this address (e.g. localhost:6969)")
		flightPath   = flag.String("flight", "", "arm the flight recorder, dumping to this file on panic/cancel/SIGINT")
		profiling    obs.Profiling
	)
	flag.StringVar(&profiling.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&profiling.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&profiling.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintf(os.Stderr, "transit-bench: warning: GOMAXPROCS=1 (NumCPU=%d): worker fan-outs timeshare one CPU, so parallel and portfolio speedups measure algorithmic savings only\n",
			runtime.NumCPU())
	}
	if !*table2 && !*table3 && !*fig5 && !*table4 && !*table5 && !*eng && !*smt && !*enum && !*mcBench && !*all && *serveURL == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *all {
		*table2, *table3, *fig5, *table4, *table5, *eng, *smt, *enum = true, true, true, true, true, true, true, true
	}

	var summary io.Writer
	if *statsSummary {
		summary = os.Stderr
	}
	var srv *serve.Server
	if *serveAddr != "" {
		srv = serve.New(*serveAddr)
		if *flightPath == "" {
			*flightPath = obs.DefaultFlightPath()
		}
	}
	oopts := obs.Options{
		TracePath:  *tracePath,
		Summary:    summary,
		FlightPath: *flightPath,
		Profiling:  profiling,
	}
	if srv != nil {
		oopts.Extra = srv.Exporters()
	}
	sess, err := obs.NewSession(oopts)
	check(err)
	if srv != nil {
		srv.Attach(sess)
		check(srv.Start())
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "transit-bench: live introspection on http://%s/\n", srv.Addr())
	}
	// Exit through fail() so the session flushes even on benchmark errors,
	// and dumps the flight ring when the failure was a cancellation.
	fail := func(err error) {
		if err == nil {
			return
		}
		if path, derr := sess.DumpFlight(err.Error()); derr == nil && path != "" {
			fmt.Fprintf(os.Stderr, "transit-bench: flight dump written to %s\n", path)
		}
		_ = sess.Close()
		fmt.Fprintln(os.Stderr, "transit-bench:", err)
		os.Exit(1)
	}
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx := sess.Context(sigCtx)

	if *table2 {
		rows, final, stats, err := bench.Table2Ctx(ctx)
		fail(err)
		fmt.Println(bench.FormatTable2(rows, final))
		fmt.Printf("(%d iterations, %d SMT queries, %s)\n\n", stats.Iterations, stats.SMTQueries,
			stats.Elapsed.Round(1000*1000))
	}
	if *table3 {
		rows, err := bench.Table3Ctx(ctx, bench.Table3Options{IncludeLong: *long})
		fail(err)
		fmt.Println(bench.FormatTable3(rows))
	}
	if *fig5 {
		opts := bench.DefaultFig5Options()
		if *long {
			opts.Trials = 5
			opts.ExhaustiveCap = 30_000_000
		}
		pts, err := bench.Fig5Ctx(ctx, opts)
		fail(err)
		fmt.Println(bench.FormatFig5(pts))
	}
	knobs := bench.CheckKnobs{Workers: *mcWorkers, Symmetry: !*noSymmetry}
	if *table4 {
		rows, err := bench.Table4Ctx(ctx, *n, knobs)
		fail(err)
		fmt.Println(bench.FormatTable4(rows))
	}
	if *table5 {
		rows, err := bench.Table5Ctx(ctx, *n, knobs)
		fail(err)
		fmt.Println(bench.FormatTable5(rows))
	}
	if *eng {
		rows, err := bench.EngineBenchCtx(ctx, *n, *workers)
		fail(err)
		fmt.Println(bench.FormatEngine(rows))
		if *out != "" {
			fail(bench.WriteEngineArtifact(*out, *workers, rows))
			fmt.Printf("wrote %s\n", *out)
		}
	}
	if *smt {
		rows, err := bench.SMTBenchCtx(ctx, *n, *workers)
		fail(err)
		fmt.Println(bench.FormatSMT(rows))
		if *smtOut != "" {
			fail(bench.WriteSMTArtifact(*smtOut, *workers, rows))
			fmt.Printf("wrote %s\n", *smtOut)
		}
	}
	if *enum {
		res, err := bench.EnumBenchCtx(ctx, *enumWorkers, *enumTrials, *portfolio)
		fail(err)
		fmt.Println(bench.FormatEnum(res))
		if *enumOut != "" {
			fail(bench.WriteEnumArtifact(*enumOut, res))
			fmt.Printf("wrote %s\n", *enumOut)
		}
	}
	if *mcBench {
		res, err := bench.MCBenchCtx(ctx, *mcN, *mcWorkers, *mcStates)
		fail(err)
		fmt.Println(bench.FormatMC(res))
		if *mcOut != "" {
			fail(bench.WriteMCArtifact(*mcOut, *mcWorkers, res))
			fmt.Printf("wrote %s\n", *mcOut)
		}
	}
	if *serveURL != "" {
		res, err := bench.ServeBenchCtx(ctx, *serveURL, *clients, *serveReqs)
		fail(err)
		fmt.Println(bench.FormatServe(res))
		if *serveOut != "" {
			fail(bench.WriteServeArtifact(*serveOut, res))
			fmt.Printf("wrote %s\n", *serveOut)
		}
	}
	check(sess.Close())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "transit-bench:", err)
		os.Exit(1)
	}
}
