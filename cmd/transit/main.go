// Command transit runs the full TRANSIT pipeline on a protocol written in
// the TRANSIT surface language: parse, synthesize guards and updates from
// the concolic snippets, print the completed transitions, and model check
// against the declared invariants.
//
// Usage:
//
//	transit [flags] protocol.tr
//	transit [flags] -builtin vi|msi|mesi|origin|origin-buggy
//
// Flags:
//
//	-n N          number of caches (default 3)
//	-max-size K   expression-size bound for inference (default 12)
//	-states N     model-checking state budget (default 2,000,000)
//	-deadlock     also report deadlocks (default true)
//	-dump         print every completed transition
package main

import (
	"flag"
	"fmt"
	"os"

	"transit"
	"transit/internal/export"
	"transit/internal/expr"
)

func main() {
	var (
		numCaches = flag.Int("n", 3, "number of caches")
		maxSize   = flag.Int("max-size", 12, "expression-size bound for inference")
		maxStates = flag.Int("states", 2_000_000, "model-checking state budget")
		deadlock  = flag.Bool("deadlock", true, "check for deadlocks")
		dump      = flag.Bool("dump", false, "print the completed transitions")
		msc       = flag.Bool("msc", false, "render violations as a message-sequence chart")
		murphi    = flag.String("murphi", "", "write the completed protocol as a Murphi model to this file")
		builtin   = flag.String("builtin", "", "run a built-in protocol: vi, msi, mesi, origin, origin-buggy")
	)
	flag.Parse()
	if err := run(*numCaches, *maxSize, *maxStates, *deadlock, *dump, *msc, *builtin, *murphi, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "transit:", err)
		os.Exit(1)
	}
}

func run(numCaches, maxSize, maxStates int, deadlock, dump, msc bool, builtin, murphiOut string, args []string) error {
	var proto *transit.Protocol
	switch {
	case builtin != "":
		switch builtin {
		case "vi":
			proto = transit.VI(numCaches)
		case "msi":
			proto = transit.MSI(numCaches)
		case "mesi":
			proto = transit.MESI(numCaches)
		case "origin":
			proto = transit.Origin(numCaches, true)
		case "origin-buggy":
			proto = transit.Origin(numCaches, false)
		default:
			return fmt.Errorf("unknown builtin %q", builtin)
		}
	case len(args) == 1:
		src, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		proto, err = transit.LoadProtocol(string(src), numCaches)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("expected one .tr file or -builtin (see -h)")
	}

	fmt.Printf("protocol %s with %d caches: %d snippets\n", proto.Name, numCaches, len(proto.Snippets))
	rep, err := transit.Synthesize(proto, transit.SynthesisOptions{
		Limits: transit.Limits{MaxSize: maxSize},
	})
	if err != nil {
		return fmt.Errorf("synthesis: %w", err)
	}
	fmt.Printf("synthesized %d transitions in %s: %d updates (%d exprs tried), %d guards (%d exprs tried), %d SMT queries\n",
		rep.Transitions, rep.Elapsed.Round(1000*1000),
		rep.UpdatesSynthesized, rep.UpdateExprsTried,
		rep.GuardsSynthesized, rep.GuardExprsTried, rep.SMTQueries)

	if dump {
		for _, d := range proto.Sys.Defs {
			fmt.Printf("\nprocess %s:\n", d.Name)
			for _, t := range d.Transitions {
				if t.Defer {
					fmt.Printf("  (%s, %s) [%s] stall\n", t.From, t.Event, t.GuardString())
					continue
				}
				fmt.Printf("  (%s, %s) [%s] -> %s\n", t.From, t.Event, t.GuardString(), t.To)
				for _, u := range t.Updates {
					fmt.Printf("      %s := %s\n", u.Var, expr.Pretty(u.Rhs))
				}
				for _, s := range t.Sends {
					if s.TargetSet != nil {
						fmt.Printf("      send %s to each of %s:\n", s.Net.Name, expr.Pretty(s.TargetSet))
					} else {
						fmt.Printf("      send %s:\n", s.Net.Name)
					}
					for _, f := range s.Fields {
						fmt.Printf("        %s = %s\n", f.Field, expr.Pretty(f.Rhs))
					}
				}
			}
		}
	}

	if murphiOut != "" {
		src, err := export.Murphi(proto.Sys)
		if err != nil {
			return fmt.Errorf("murphi export: %w", err)
		}
		if err := os.WriteFile(murphiOut, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote Murphi model to %s (%d bytes)\n", murphiOut, len(src))
	}

	res, chart, err := transit.VerifyWithChart(proto, transit.VerifyOptions{
		MaxStates:     maxStates,
		CheckDeadlock: deadlock,
	})
	if err != nil {
		return fmt.Errorf("model checking: %w", err)
	}
	if res.OK {
		fmt.Printf("model check PASSED: %d states, %d transitions explored, depth %d\n",
			res.States, res.Transitions, res.Depth)
		return nil
	}
	fmt.Printf("model check FAILED after %d states:\n%v\n", res.States, res.Violation)
	if msc {
		fmt.Printf("\nmessage-sequence chart:\n%s", chart)
	}
	os.Exit(2)
	return nil
}
