// Command transit runs the full TRANSIT pipeline on a protocol written in
// the TRANSIT surface language: parse, synthesize guards and updates from
// the concolic snippets, print the completed transitions, and model check
// against the declared invariants.
//
// Usage:
//
//	transit [flags] protocol.tr
//	transit [flags] -builtin vi|msi|mesi|origin|origin-buggy
//
// Flags:
//
//	-n N          number of caches (default 3)
//	-max-size K   expression-size bound for inference (default 12)
//	-states N     model-checking state budget (default 2,000,000)
//	-deadlock     also report deadlocks (default true)
//	-dump         print every completed transition
//	-workers N    inference worker pool size (default 1 = sequential)
//	-timeout D    overall synthesis deadline, e.g. 30s (default none)
//	-stats        stream engine telemetry as JSON lines to stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"transit"
	"transit/internal/export"
	"transit/internal/expr"
)

func main() {
	var opts options
	flag.IntVar(&opts.numCaches, "n", 3, "number of caches")
	flag.IntVar(&opts.maxSize, "max-size", 12, "expression-size bound for inference")
	flag.IntVar(&opts.maxStates, "states", 2_000_000, "model-checking state budget")
	flag.BoolVar(&opts.deadlock, "deadlock", true, "check for deadlocks")
	flag.BoolVar(&opts.dump, "dump", false, "print the completed transitions")
	flag.BoolVar(&opts.msc, "msc", false, "render violations as a message-sequence chart")
	flag.StringVar(&opts.murphiOut, "murphi", "", "write the completed protocol as a Murphi model to this file")
	flag.StringVar(&opts.builtin, "builtin", "", "run a built-in protocol: vi, msi, mesi, origin, origin-buggy")
	flag.IntVar(&opts.workers, "workers", 1, "inference worker pool size (1 = sequential)")
	flag.DurationVar(&opts.timeout, "timeout", 0, "overall synthesis deadline (0 = none)")
	flag.BoolVar(&opts.stats, "stats", false, "stream engine telemetry as JSON lines to stderr")
	flag.Parse()
	opts.args = flag.Args()
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "transit:", err)
		os.Exit(1)
	}
}

// options collects the CLI configuration for one run.
type options struct {
	numCaches int
	maxSize   int
	maxStates int
	deadlock  bool
	dump      bool
	msc       bool
	builtin   string
	murphiOut string
	workers   int
	timeout   time.Duration
	stats     bool
	args      []string
}

func run(opts options) error {
	var proto *transit.Protocol
	switch {
	case opts.builtin != "":
		switch opts.builtin {
		case "vi":
			proto = transit.VI(opts.numCaches)
		case "msi":
			proto = transit.MSI(opts.numCaches)
		case "mesi":
			proto = transit.MESI(opts.numCaches)
		case "origin":
			proto = transit.Origin(opts.numCaches, true)
		case "origin-buggy":
			proto = transit.Origin(opts.numCaches, false)
		default:
			return fmt.Errorf("unknown builtin %q", opts.builtin)
		}
	case len(opts.args) == 1:
		src, err := os.ReadFile(opts.args[0])
		if err != nil {
			return err
		}
		proto, err = transit.LoadProtocol(string(src), opts.numCaches)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("expected one .tr file or -builtin (see -h)")
	}

	sopts := transit.SynthesisOptions{
		Limits:  transit.Limits{MaxSize: opts.maxSize},
		Workers: opts.workers,
		Timeout: opts.timeout,
	}
	if opts.stats {
		sopts.Telemetry = transit.NewJSONTelemetry(os.Stderr)
	}

	fmt.Printf("protocol %s with %d caches: %d snippets\n", proto.Name, opts.numCaches, len(proto.Snippets))
	rep, err := transit.Synthesize(proto, sopts)
	if err != nil {
		return fmt.Errorf("synthesis: %w", err)
	}
	fmt.Printf("synthesized %d transitions in %s: %d updates (%d exprs tried), %d guards (%d exprs tried), %d SMT queries\n",
		rep.Transitions, rep.Elapsed.Round(1000*1000),
		rep.UpdatesSynthesized, rep.UpdateExprsTried,
		rep.GuardsSynthesized, rep.GuardExprsTried, rep.SMTQueries)
	if opts.stats {
		fmt.Printf("engine: %d workers, %d jobs, %d cache hits / %d misses, utilization %.2f\n",
			rep.Workers, rep.Jobs, rep.CacheHits, rep.CacheMisses, rep.Utilization)
	}

	if opts.dump {
		for _, d := range proto.Sys.Defs {
			fmt.Printf("\nprocess %s:\n", d.Name)
			for _, t := range d.Transitions {
				if t.Defer {
					fmt.Printf("  (%s, %s) [%s] stall\n", t.From, t.Event, t.GuardString())
					continue
				}
				fmt.Printf("  (%s, %s) [%s] -> %s\n", t.From, t.Event, t.GuardString(), t.To)
				for _, u := range t.Updates {
					fmt.Printf("      %s := %s\n", u.Var, expr.Pretty(u.Rhs))
				}
				for _, s := range t.Sends {
					if s.TargetSet != nil {
						fmt.Printf("      send %s to each of %s:\n", s.Net.Name, expr.Pretty(s.TargetSet))
					} else {
						fmt.Printf("      send %s:\n", s.Net.Name)
					}
					for _, f := range s.Fields {
						fmt.Printf("        %s = %s\n", f.Field, expr.Pretty(f.Rhs))
					}
				}
			}
		}
	}

	if opts.murphiOut != "" {
		src, err := export.Murphi(proto.Sys)
		if err != nil {
			return fmt.Errorf("murphi export: %w", err)
		}
		if err := os.WriteFile(opts.murphiOut, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote Murphi model to %s (%d bytes)\n", opts.murphiOut, len(src))
	}

	res, chart, err := transit.VerifyWithChart(proto, transit.VerifyOptions{
		MaxStates:     opts.maxStates,
		CheckDeadlock: opts.deadlock,
	})
	if err != nil {
		return fmt.Errorf("model checking: %w", err)
	}
	if res.OK {
		fmt.Printf("model check PASSED: %d states, %d transitions explored, depth %d\n",
			res.States, res.Transitions, res.Depth)
		return nil
	}
	fmt.Printf("model check FAILED after %d states:\n%v\n", res.States, res.Violation)
	if opts.msc {
		fmt.Printf("\nmessage-sequence chart:\n%s", chart)
	}
	os.Exit(2)
	return nil
}
