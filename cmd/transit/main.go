// Command transit runs the full TRANSIT pipeline on a protocol written in
// the TRANSIT surface language: parse, synthesize guards and updates from
// the concolic snippets, print the completed transitions, and model check
// against the declared invariants.
//
// Usage:
//
//	transit [flags] protocol.tr
//	transit [flags] -builtin vi|msi|mesi|origin|origin-buggy
//
// Flags:
//
//	-n N            number of caches (default 3)
//	-max-size K     expression-size bound for inference (default 12)
//	-states N       model-checking state budget (default 2,000,000)
//	-deadlock       also report deadlocks (default true)
//	-dump           print every completed transition
//	-workers N      inference worker pool size (default 1 = sequential)
//	-enum-workers N tier-parallel enumeration fan-out inside each inference
//	                job (default 1 = sequential; identical output)
//	-no-incremental solve every SMT query in a fresh solver instead of the
//	                shared incremental sessions (identical output; slower)
//	-timeout D      overall synthesis deadline, e.g. 30s (default none)
//	-stats          stream engine telemetry and trace spans as JSON lines
//	                to stderr
//	-trace F        write a Chrome trace-event JSON file to F (open it at
//	                https://ui.perfetto.dev)
//	-stats-summary  print an end-of-run span tree and metrics table
//	-cpuprofile F   write a CPU profile to F
//	-memprofile F   write a heap profile to F at exit
//	-pprof ADDR     serve pprof on a private mux on ADDR (e.g. localhost:6060)
//	-serve ADDR     serve live introspection on ADDR: /metrics (Prometheus),
//	                /vars, /runs, /trace/live (SSE), /flight, /debug/pprof/
//	-flight F       arm the flight recorder, dumping the event tail to F on
//	                panic, cancellation, or SIGINT (-serve arms it too,
//	                defaulting to transit-flight-<pid>.ndjson)
//	-mc-progress D  model-checker heartbeat interval (default 1s, 0 disables)
//	-mc-workers N   model-checker frontier workers (default: all CPUs; the
//	                result is identical for every worker count)
//	-no-symmetry    disable symmetry reduction (by default the checker
//	                explores one canonical state per PID-permutation orbit
//	                when the protocol qualifies)
//
// Subcommands:
//
//	transit obs report FILE   render a flight dump or -stats NDJSON capture
//	                          as the -stats-summary tree and metrics table
//	transit obs report -job   render a job trace (the JSON body of GET
//	                          /v1/jobs/{id}/trace, from a file or stdin)
//	                          as an indented span tree with durations
//	transit serve [flags]     run the synthesis job server: POST /v1/jobs
//	                          (solve and complete requests), GET
//	                          /v1/jobs/{id}, SSE at /v1/jobs/{id}/events,
//	                          per-job traces at /v1/jobs/{id}/trace,
//	                          /v1/stats, plus the introspection endpoints,
//	                          all on one address; -cache-dir persists the
//	                          memo cache across restarts, -access-log
//	                          writes per-job NDJSON latency lines (see
//	                          `transit serve -h` and the README's Serving
//	                          section)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"transit"
	"transit/internal/bench"
	"transit/internal/efsm"
	"transit/internal/export"
	"transit/internal/expr"
	"transit/internal/obs"
	"transit/internal/obs/provenance"
	"transit/internal/obs/serve"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "obs" {
		if err := runObs(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "transit:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "transit:", err)
			os.Exit(1)
		}
		return
	}
	var opts options
	flag.IntVar(&opts.numCaches, "n", 3, "number of caches")
	flag.IntVar(&opts.maxSize, "max-size", 12, "expression-size bound for inference")
	flag.IntVar(&opts.maxStates, "states", 2_000_000, "model-checking state budget")
	flag.BoolVar(&opts.deadlock, "deadlock", true, "check for deadlocks")
	flag.BoolVar(&opts.dump, "dump", false, "print the completed transitions")
	flag.BoolVar(&opts.msc, "msc", false, "render violations as a message-sequence chart")
	flag.StringVar(&opts.murphiOut, "murphi", "", "write the completed protocol as a Murphi model to this file")
	flag.StringVar(&opts.builtin, "builtin", "", "run a built-in protocol: vi, msi, mesi, origin, origin-buggy")
	flag.IntVar(&opts.workers, "workers", 1, "inference worker pool size (1 = sequential)")
	flag.IntVar(&opts.enumWorkers, "enum-workers", 1, "tier-parallel enumeration fan-out per inference job (1 = sequential; identical output)")
	flag.IntVar(&opts.portfolio, "portfolio", 0, "race this many solver configurations per inference job, keeping the first to finish (0/1 = off)")
	flag.BoolVar(&opts.noIncr, "no-incremental", false, "disable shared incremental SMT sessions (one solver per query; identical output)")
	flag.DurationVar(&opts.timeout, "timeout", 0, "overall synthesis deadline (0 = none)")
	flag.BoolVar(&opts.stats, "stats", false, "stream engine telemetry and trace spans as JSON lines to stderr")
	flag.StringVar(&opts.tracePath, "trace", "", "write a Chrome trace-event JSON file (view at ui.perfetto.dev)")
	flag.BoolVar(&opts.statsSummary, "stats-summary", false, "print an end-of-run span tree and metrics table to stderr")
	flag.StringVar(&opts.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&opts.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&opts.pprofAddr, "pprof", "", "serve pprof on this address (e.g. localhost:6060)")
	flag.StringVar(&opts.serveAddr, "serve", "", "serve live introspection on this address (e.g. localhost:6969)")
	flag.StringVar(&opts.flightPath, "flight", "", "arm the flight recorder, dumping to this file on panic/cancel/SIGINT")
	flag.StringVar(&opts.ledgerPath, "ledger", "", "write the synthesis provenance ledger (NDJSON) to this file; render it with `transit obs explain`")
	flag.DurationVar(&opts.mcProgress, "mc-progress", time.Second, "model-checker heartbeat interval (0 disables)")
	flag.IntVar(&opts.mcWorkers, "mc-workers", runtime.NumCPU(), "model-checker frontier workers (identical result at any count)")
	flag.BoolVar(&opts.noSymmetry, "no-symmetry", false, "disable model-checker symmetry reduction")
	flag.Parse()
	opts.args = flag.Args()
	code, err := run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "transit:", err)
		os.Exit(1)
	}
	if code != 0 {
		os.Exit(code)
	}
}

// options collects the CLI configuration for one run.
type options struct {
	numCaches    int
	maxSize      int
	maxStates    int
	deadlock     bool
	dump         bool
	msc          bool
	builtin      string
	murphiOut    string
	workers      int
	enumWorkers  int
	portfolio    int
	noIncr       bool
	timeout      time.Duration
	stats        bool
	tracePath    string
	statsSummary bool
	cpuProfile   string
	memProfile   string
	pprofAddr    string
	serveAddr    string
	flightPath   string
	ledgerPath   string
	mcProgress   time.Duration
	mcWorkers    int
	noSymmetry   bool
	args         []string
}

// runObs handles the "transit obs" subcommand family.
func runObs(args []string) error {
	usage := fmt.Errorf("usage: transit obs report [-job] <file, or stdin with -job> | transit obs explain [-hole H] [-violation] <ledger> | transit obs bench-diff [-threshold PCT] OLD.json NEW.json")
	if len(args) < 1 {
		return usage
	}
	switch args[0] {
	case "explain":
		return runObsExplain(args[1:])
	case "bench-diff":
		return runObsBenchDiff(args[1:])
	case "report":
	default:
		return usage
	}
	fs := flag.NewFlagSet("obs report", flag.ExitOnError)
	jobTrace := fs.Bool("job", false, "input is a GET /v1/jobs/{id}/trace JSON document; render its span tree")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	switch fs.NArg() {
	case 0:
		// Reading a job trace from a pipe (curl .../trace | transit obs
		// report -job) is the documented flow; the NDJSON reports keep
		// requiring a file argument.
		if !*jobTrace {
			return usage
		}
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return usage
	}
	if *jobTrace {
		return obs.ReportJobTrace(in, os.Stdout)
	}
	return obs.Report(in, os.Stdout)
}

// runObsExplain renders a provenance ledger (written by -ledger or
// fetched from a serve job) as a human-readable "why" tree.
func runObsExplain(args []string) error {
	fs := flag.NewFlagSet("obs explain", flag.ExitOnError)
	hole := fs.String("hole", "", "show one hole: a ledger ID or a label substring")
	violation := fs.Bool("violation", false, "show only the violation back-links")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: transit obs explain [-hole H] [-violation] <ledger.ndjson>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	l, err := provenance.Read(f)
	if err != nil {
		return err
	}
	return provenance.Explain(os.Stdout, l, provenance.ExplainOptions{Hole: *hole, Violations: *violation})
}

// runObsBenchDiff compares two BENCH_*.json artifacts and fails past the
// regression threshold.
func runObsBenchDiff(args []string) error {
	fs := flag.NewFlagSet("obs bench-diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0, "fail when the geomean slowdown exceeds this percentage (<= 0: report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: transit obs bench-diff [-threshold PCT] OLD.json NEW.json")
	}
	oldData, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newData, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	d, err := bench.DiffArtifacts(oldData, newData)
	if err != nil {
		return err
	}
	d.Format(os.Stdout)
	return d.Regression(*threshold)
}

// mcInterval maps the -mc-progress flag to mc's convention: the flag's 0
// means "off", mc's 0 means "default", negative means "off".
func mcInterval(d time.Duration) time.Duration {
	if d == 0 {
		return -1
	}
	return d
}

// run executes the pipeline and returns the process exit code (0 ok, 2
// model-check violation). Returning instead of calling os.Exit directly
// lets the observability session flush trace files and profiles first.
func run(opts options) (int, error) {
	proto, err := loadProtocol(opts)
	if err != nil {
		return 0, err
	}

	var ndjson io.Writer
	var summary io.Writer
	sopts := transit.SynthesisOptions{
		Limits:        transit.Limits{MaxSize: opts.maxSize},
		Workers:       opts.workers,
		EnumWorkers:   opts.enumWorkers,
		Portfolio:     opts.portfolio,
		Timeout:       opts.timeout,
		NoIncremental: opts.noIncr,
	}
	if opts.stats {
		// One SyncWriter keeps engine telemetry lines and span lines
		// from interleaving bytes within a line on stderr.
		sw := obs.NewSyncWriter(os.Stderr)
		ndjson = sw
		sopts.Telemetry = transit.NewJSONTelemetry(sw)
	}
	if opts.statsSummary {
		summary = os.Stderr
	}

	// The introspection server's exporters must join the session fan-out,
	// so it is built first and attached after. Serving also arms the
	// flight recorder: a run someone is watching is a run whose death
	// should leave evidence.
	var srv *serve.Server
	flightPath := opts.flightPath
	if opts.serveAddr != "" {
		srv = serve.New(opts.serveAddr)
		if flightPath == "" {
			flightPath = obs.DefaultFlightPath()
		}
	}
	oopts := obs.Options{
		NDJSON:     ndjson,
		TracePath:  opts.tracePath,
		Summary:    summary,
		FlightPath: flightPath,
		Profiling: obs.Profiling{
			CPUProfile: opts.cpuProfile,
			MemProfile: opts.memProfile,
			PprofAddr:  opts.pprofAddr,
		},
	}
	if srv != nil {
		oopts.Extra = srv.Exporters()
	}
	sess, err := obs.NewSession(oopts)
	if err != nil {
		return 0, err
	}
	if srv != nil {
		srv.Attach(sess)
		if err := srv.Start(); err != nil {
			_ = sess.Close()
			return 0, err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "transit: live introspection on http://%s/\n", srv.Addr())
	}

	// SIGINT/SIGTERM cancel the pipeline context; the partial-result paths
	// return what was explored so far and the flight recorder keeps the
	// event tail.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -ledger arms provenance capture: the recorder rides the context into
	// the completion run, the flight recorder embeds the ledger tail, and
	// pipeline() writes the NDJSON file whether or not the check passes.
	if opts.ledgerPath != "" {
		runLabel := opts.builtin
		if runLabel == "" && len(opts.args) == 1 {
			runLabel = opts.args[0]
		}
		ledger := provenance.NewRecorder(runLabel)
		ctx = provenance.WithRecorder(ctx, ledger)
		sess.Recorder.AddSnapshot("provenance", func() any { return ledger.Tail(16) })
	}

	// A panic anywhere in the pipeline dumps the flight ring before the
	// process dies — the dump is the post-mortem the stack trace lacks.
	defer func() {
		if r := recover(); r != nil {
			if path, err := sess.DumpFlight(fmt.Sprintf("panic: %v", r)); err == nil && path != "" {
				fmt.Fprintf(os.Stderr, "transit: flight dump written to %s\n", path)
			}
			panic(r)
		}
	}()

	code, err := pipeline(sess.Context(ctx), proto, sopts, opts)
	if ctx.Err() != nil {
		if path, derr := sess.DumpFlight(ctx.Err().Error()); derr == nil && path != "" {
			fmt.Fprintf(os.Stderr, "transit: flight dump written to %s\n", path)
		}
	}
	if cerr := sess.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return code, err
}

// loadProtocol resolves the -builtin flag or the .tr file argument.
func loadProtocol(opts options) (*transit.Protocol, error) {
	switch {
	case opts.builtin != "":
		switch opts.builtin {
		case "vi":
			return transit.VI(opts.numCaches), nil
		case "msi":
			return transit.MSI(opts.numCaches), nil
		case "mesi":
			return transit.MESI(opts.numCaches), nil
		case "origin":
			return transit.Origin(opts.numCaches, true), nil
		case "origin-buggy":
			return transit.Origin(opts.numCaches, false), nil
		default:
			return nil, fmt.Errorf("unknown builtin %q", opts.builtin)
		}
	case len(opts.args) == 1:
		src, err := os.ReadFile(opts.args[0])
		if err != nil {
			return nil, err
		}
		return transit.LoadProtocol(string(src), opts.numCaches)
	default:
		return nil, fmt.Errorf("expected one .tr file or -builtin (see -h)")
	}
}

// pipeline runs synthesize → dump → export → model check under the
// observability context.
func pipeline(ctx context.Context, proto *transit.Protocol, sopts transit.SynthesisOptions, opts options) (int, error) {
	fmt.Printf("protocol %s with %d caches: %d snippets\n", proto.Name, opts.numCaches, len(proto.Snippets))

	// The ledger is written on every exit path — synthesis failures record
	// unrealizable/inconsistent holes, and violations are back-linked
	// before the deferred write runs.
	rec := provenance.FromCtx(ctx)
	if rec != nil && opts.ledgerPath != "" {
		defer func() {
			f, ferr := os.Create(opts.ledgerPath)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "transit: ledger:", ferr)
				return
			}
			defer f.Close()
			l := rec.Ledger()
			if werr := l.WriteNDJSON(f); werr != nil {
				fmt.Fprintln(os.Stderr, "transit: ledger:", werr)
				return
			}
			fmt.Printf("wrote provenance ledger to %s (%d holes, %d violations)\n",
				opts.ledgerPath, len(l.Holes), len(l.Violations))
		}()
	}

	rep, err := transit.SynthesizeCtx(ctx, proto, sopts)
	if err != nil {
		return 0, fmt.Errorf("synthesis: %w", err)
	}
	fmt.Printf("synthesized %d transitions in %s: %d updates (%d exprs tried), %d guards (%d exprs tried), %d SMT queries\n",
		rep.Transitions, rep.Elapsed.Round(time.Millisecond),
		rep.UpdatesSynthesized, rep.UpdateExprsTried,
		rep.GuardsSynthesized, rep.GuardExprsTried, rep.SMTQueries)
	if opts.stats {
		fmt.Printf("engine: %d workers, %d jobs, %d cache hits / %d misses, utilization %.2f\n",
			rep.Workers, rep.Jobs, rep.CacheHits, rep.CacheMisses, rep.Utilization)
	}

	if opts.dump {
		dumpTransitions(proto)
	}

	if opts.murphiOut != "" {
		src, err := export.Murphi(proto.Sys)
		if err != nil {
			return 0, fmt.Errorf("murphi export: %w", err)
		}
		if err := os.WriteFile(opts.murphiOut, []byte(src), 0o644); err != nil {
			return 0, err
		}
		fmt.Printf("wrote Murphi model to %s (%d bytes)\n", opts.murphiOut, len(src))
	}

	res, chart, err := transit.VerifyWithChartCtx(ctx, proto, transit.VerifyOptions{
		MaxStates:         opts.maxStates,
		CheckDeadlock:     opts.deadlock,
		ProgressInterval:  mcInterval(opts.mcProgress),
		Workers:           opts.mcWorkers,
		SymmetryReduction: !opts.noSymmetry,
	})
	if err != nil {
		return 0, fmt.Errorf("model checking: %w", err)
	}
	sym := ""
	if res.SymmetryApplied {
		sym = fmt.Sprintf(", symmetry x%.1f", res.ReductionFactor)
	}
	if res.OK {
		fmt.Printf("model check PASSED: %d states, %d transitions explored, depth %d%s in %s (%.0f states/sec)\n",
			res.States, res.Transitions, res.Depth, sym,
			res.Elapsed.Round(time.Millisecond), res.StatesPerSec)
		return 0, nil
	}
	fmt.Printf("model check FAILED after %d states in %s:\n%v\n",
		res.States, res.Elapsed.Round(time.Millisecond), res.Violation)
	if rec != nil {
		linkViolation(rec, proto, res.Violation)
	}
	if opts.msc {
		fmt.Printf("\nmessage-sequence chart:\n%s", chart)
	}
	return 2, nil
}

// linkViolation back-links a counterexample into the provenance ledger:
// each trace step is resolved to its (process, from state, event) join
// key against a fresh runtime — runtimes are deterministic functions of
// the system, so the refs match the checker's — and the recorder joins
// those keys to the holes whose expressions fired on the failing path.
func linkViolation(rec *provenance.Recorder, proto *transit.Protocol, v *transit.Violation) {
	rt, err := efsm.NewRuntime(proto.Sys)
	if err != nil {
		fmt.Fprintln(os.Stderr, "transit: ledger: violation back-link:", err)
		return
	}
	refs := v.StepRefs(rt)
	steps := make([]provenance.StepRecord, 0, len(refs))
	for _, ref := range refs {
		sr := provenance.StepRecord{
			Index:   ref.Index,
			Process: ref.Process,
			PID:     ref.PID,
			From:    ref.From,
			Event:   ref.Event,
			To:      ref.To,
		}
		if ref.Index >= 0 && ref.Index < len(v.Trace) {
			sr.Action = v.Trace[ref.Index].Action
		}
		steps = append(steps, sr)
	}
	rec.AddViolation(&provenance.ViolationRecord{
		Kind:   v.Kind.String(),
		Name:   v.Name,
		Detail: v.Detail,
		Steps:  steps,
	})
}

func dumpTransitions(proto *transit.Protocol) {
	for _, d := range proto.Sys.Defs {
		fmt.Printf("\nprocess %s:\n", d.Name)
		for _, t := range d.Transitions {
			if t.Defer {
				fmt.Printf("  (%s, %s) [%s] stall\n", t.From, t.Event, t.GuardString())
				continue
			}
			fmt.Printf("  (%s, %s) [%s] -> %s\n", t.From, t.Event, t.GuardString(), t.To)
			for _, u := range t.Updates {
				fmt.Printf("      %s := %s\n", u.Var, expr.Pretty(u.Rhs))
			}
			for _, s := range t.Sends {
				if s.TargetSet != nil {
					fmt.Printf("      send %s to each of %s:\n", s.Net.Name, expr.Pretty(s.TargetSet))
				} else {
					fmt.Printf("      send %s:\n", s.Net.Name)
				}
				for _, f := range s.Fields {
					fmt.Printf("        %s = %s\n", f.Field, expr.Pretty(f.Rhs))
				}
			}
		}
	}
}
