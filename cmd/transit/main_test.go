package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltinVI(t *testing.T) {
	opts := options{numCaches: 2, maxSize: 10, maxStates: 100_000, deadlock: true, dump: true, builtin: "vi"}
	code, err := run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
}

func TestRunBuiltinVIParallelStats(t *testing.T) {
	opts := options{numCaches: 2, maxSize: 10, maxStates: 100_000, deadlock: true, builtin: "vi",
		workers: 4, stats: true}
	if _, err := run(opts); err != nil {
		t.Fatal(err)
	}
}

// TestRunTraceAndProfiles exercises the observability flags end-to-end:
// the Chrome trace must be a valid JSON document with a populated
// traceEvents array, and the profile files must be non-empty.
func TestRunTraceAndProfiles(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	opts := options{numCaches: 2, maxSize: 10, maxStates: 100_000, deadlock: true, builtin: "vi",
		workers: 2, tracePath: tracePath, statsSummary: true,
		cpuProfile: cpuPath, memProfile: memPath}
	code, err := run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"engine.run", "engine.job", "synth.cegis", "smt.solve", "sat.search", "mc.bfs"} {
		if !names[want] {
			t.Errorf("trace lacks %q events", want)
		}
	}
	for _, p := range []string{cpuPath, memPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty: %v", p, err)
		}
	}
}

func TestRunBuggyOriginExitCode(t *testing.T) {
	// origin-buggy must FAIL the model check: run reports exit code 2
	// with no error, so trace files still flush before exit.
	opts := options{numCaches: 2, maxSize: 10, maxStates: 500_000, builtin: "origin-buggy"}
	code, err := run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunTRFile(t *testing.T) {
	src := `
protocol Mini;
enum K { Ping }
message M { Kind: K; From: PID }
message R { Kind: K; Dest: PID }
network Up ordered M to Server;
network Down ordered R to Client by Dest;
process Server {
    states { S } init S;
    transition (S, Up Msg) => (S, Down Out) {
        [] ==> { Out.Kind' = Ping; Out.Dest' = Msg.From; }
    }
}
process Client replicated {
    states { Idle, Wait } init Idle;
    triggers { Go }
    transition (Idle, Go) => (Wait, Up Out) {
        [] ==> { Out.Kind' = Ping; Out.From' = Self; }
    }
    transition (Wait, Down Msg) => (Idle);
}
`
	dir := t.TempDir()
	file := filepath.Join(dir, "mini.tr")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	murphiOut := filepath.Join(dir, "mini.m")
	opts := options{numCaches: 2, maxSize: 8, maxStates: 100_000, deadlock: true,
		murphiOut: murphiOut, args: []string{file}}
	if _, err := run(opts); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(murphiOut); err != nil || fi.Size() == 0 {
		t.Fatalf("murphi output missing: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	base := options{numCaches: 2, maxSize: 8, maxStates: 1000}
	bad := base
	bad.builtin = "nope"
	if _, err := run(bad); err == nil {
		t.Error("unknown builtin should error")
	}
	if _, err := run(base); err == nil {
		t.Error("no input should error")
	}
	missing := base
	missing.args = []string{"/does/not/exist.tr"}
	if _, err := run(missing); err == nil {
		t.Error("missing file should error")
	}
}
