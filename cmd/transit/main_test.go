package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltinVI(t *testing.T) {
	if err := run(2, 10, 100_000, true, true, false, "vi", "", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunTRFile(t *testing.T) {
	src := `
protocol Mini;
enum K { Ping }
message M { Kind: K; From: PID }
message R { Kind: K; Dest: PID }
network Up ordered M to Server;
network Down ordered R to Client by Dest;
process Server {
    states { S } init S;
    transition (S, Up Msg) => (S, Down Out) {
        [] ==> { Out.Kind' = Ping; Out.Dest' = Msg.From; }
    }
}
process Client replicated {
    states { Idle, Wait } init Idle;
    triggers { Go }
    transition (Idle, Go) => (Wait, Up Out) {
        [] ==> { Out.Kind' = Ping; Out.From' = Self; }
    }
    transition (Wait, Down Msg) => (Idle);
}
`
	dir := t.TempDir()
	file := filepath.Join(dir, "mini.tr")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	murphiOut := filepath.Join(dir, "mini.m")
	if err := run(2, 8, 100_000, true, false, false, "", murphiOut, []string{file}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(murphiOut); err != nil || fi.Size() == 0 {
		t.Fatalf("murphi output missing: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(2, 8, 1000, false, false, false, "nope", "", nil); err == nil {
		t.Error("unknown builtin should error")
	}
	if err := run(2, 8, 1000, false, false, false, "", "", nil); err == nil {
		t.Error("no input should error")
	}
	if err := run(2, 8, 1000, false, false, false, "", "", []string{"/does/not/exist.tr"}); err == nil {
		t.Error("missing file should error")
	}
}
