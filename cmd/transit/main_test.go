package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltinVI(t *testing.T) {
	opts := options{numCaches: 2, maxSize: 10, maxStates: 100_000, deadlock: true, dump: true, builtin: "vi"}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunBuiltinVIParallelStats(t *testing.T) {
	opts := options{numCaches: 2, maxSize: 10, maxStates: 100_000, deadlock: true, builtin: "vi",
		workers: 4, stats: true}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunTRFile(t *testing.T) {
	src := `
protocol Mini;
enum K { Ping }
message M { Kind: K; From: PID }
message R { Kind: K; Dest: PID }
network Up ordered M to Server;
network Down ordered R to Client by Dest;
process Server {
    states { S } init S;
    transition (S, Up Msg) => (S, Down Out) {
        [] ==> { Out.Kind' = Ping; Out.Dest' = Msg.From; }
    }
}
process Client replicated {
    states { Idle, Wait } init Idle;
    triggers { Go }
    transition (Idle, Go) => (Wait, Up Out) {
        [] ==> { Out.Kind' = Ping; Out.From' = Self; }
    }
    transition (Wait, Down Msg) => (Idle);
}
`
	dir := t.TempDir()
	file := filepath.Join(dir, "mini.tr")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	murphiOut := filepath.Join(dir, "mini.m")
	opts := options{numCaches: 2, maxSize: 8, maxStates: 100_000, deadlock: true,
		murphiOut: murphiOut, args: []string{file}}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(murphiOut); err != nil || fi.Size() == 0 {
		t.Fatalf("murphi output missing: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	base := options{numCaches: 2, maxSize: 8, maxStates: 1000}
	bad := base
	bad.builtin = "nope"
	if err := run(bad); err == nil {
		t.Error("unknown builtin should error")
	}
	if err := run(base); err == nil {
		t.Error("no input should error")
	}
	missing := base
	missing.args = []string{"/does/not/exist.tr"}
	if err := run(missing); err == nil {
		t.Error("missing file should error")
	}
}
