package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"transit/internal/engine"
	"transit/internal/engine/diskcache"
	"transit/internal/obs"
	"transit/internal/obs/serve"
	"transit/internal/server"
)

// runServe implements the `transit serve` subcommand: the synthesis job
// server of DESIGN.md §12, mounted on the live-introspection mux so one
// address serves /v1/jobs next to /metrics, /runs, and /trace/live.
//
// Shutdown is a drain, not a kill: SIGINT/SIGTERM stop admission (late
// submissions get 503), queued and running jobs finish (bounded by
// -drain-timeout), the flight recorder dumps its tail, and only then do
// the HTTP server and the disk cache close.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:7878", "address to serve the job API and introspection endpoints on")
	cacheDir := fs.String("cache-dir", "", "persist the memo cache in this directory (empty = memory only)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "disk-cache size cap in bytes (0 = default 256 MiB)")
	maxInflight := fs.Int("max-inflight", 2, "jobs running at once (worker-pool size)")
	queueDepth := fs.Int("queue", 64, "admission-queue depth; submissions beyond it get 503")
	rate := fs.Float64("rate", 0, "per-client rate limit in requests/sec (0 = unlimited)")
	burst := fs.Int("burst", 0, "rate-limit burst size (0 = max(1, ceil(rate)))")
	workers := fs.Int("workers", runtime.NumCPU(), "inference worker pool size inside each completion job")
	enumWorkers := fs.Int("enum-workers", 1, "tier-parallel enumeration fan-out per inference job")
	portfolio := fs.Int("portfolio", 0, "race this many solver configurations per inference job (0/1 = off; jobs may override)")
	jobTimeout := fs.Duration("job-timeout", 10*time.Minute, "per-job deadline (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before canceling them")
	flightPath := fs.String("flight", "", "flight-recorder dump path (default transit-flight-<pid>.ndjson)")
	noTrace := fs.Bool("no-trace", false, "disable per-job tracing: no trace IDs, no /v1/jobs/{id}/trace")
	traceEvents := fs.Int("trace-events", 0, "per-job trace ring capacity in spans (0 = 256)")
	accessLogPath := fs.String("access-log", "", "write one NDJSON access line per finished job to this file ('-' = stderr)")
	accessLogMax := fs.Int64("access-log-max-bytes", 0, "access-log rotation threshold in bytes (0 = 64 MiB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments (got %q)", fs.Args())
	}

	// Introspection server first, its exporters into the session, then
	// attach — same order as the pipeline path. Serving always arms the
	// flight recorder: a daemon's death should leave evidence. The session
	// comes before the disk cache so the store counts into the same
	// registry /metrics scrapes.
	srv := serve.New(*addr)
	if *flightPath == "" {
		*flightPath = obs.DefaultFlightPath()
	}
	sess, err := obs.NewSession(obs.Options{
		FlightPath: *flightPath,
		Extra:      srv.Exporters(),
	})
	if err != nil {
		return err
	}

	// The cache: memory-only by default, disk-backed when -cache-dir is
	// set — then answers survive restarts and are shared by every serve
	// process pointed at the same directory (sequentially; the store is
	// single-writer).
	cache := engine.NewCache()
	var store *diskcache.Store
	if *cacheDir != "" {
		store, err = diskcache.Open(*cacheDir, diskcache.Options{
			MaxBytes: *cacheMaxBytes,
			Metrics:  sess.Metrics,
		})
		if err != nil {
			return errors.Join(fmt.Errorf("open cache dir: %w", err), sess.Close())
		}
		cache = engine.NewCacheWithBackend(store)
	}
	closeStore := func() error {
		if store == nil {
			return nil
		}
		err := store.Close()
		store = nil
		return err
	}

	var accessLog *server.AccessLog
	switch *accessLogPath {
	case "":
	case "-":
		accessLog = server.NewAccessLogWriter(os.Stderr)
	default:
		accessLog, err = server.OpenAccessLog(*accessLogPath, *accessLogMax)
		if err != nil {
			return errors.Join(err, sess.Close(), closeStore())
		}
	}
	closeAccessLog := func() error { return accessLog.Close() }

	srv.Attach(sess)

	jobsrv := server.New(server.Config{
		Cache:       cache,
		MaxInflight: *maxInflight,
		QueueDepth:  *queueDepth,
		Rate:        *rate,
		Burst:       *burst,
		JobTimeout:  *jobTimeout,
		Workers:     *workers,
		EnumWorkers: *enumWorkers,
		Portfolio:   *portfolio,
		Metrics:     sess.Metrics,
		BaseContext: sess.Context(context.Background()),
		NoTrace:     *noTrace,
		TraceEvents: *traceEvents,
		AccessLog:   accessLog,
	})
	// Flight dumps taken while serving carry the queue/worker/rate-limiter
	// picture next to the span tail.
	sess.Recorder.AddSnapshot("server", jobsrv.FlightSnapshot)
	// Readiness is composed: the job server must be admitting (not
	// draining, queue not saturated) and, when disk-backed, the cache
	// directory must still accept writes. Liveness (/healthz) needs
	// neither. The /runs page additionally shows each finished job's
	// provenance summary.
	readyStore := store
	srv.Ready = func() error {
		if err := jobsrv.Ready(); err != nil {
			return err
		}
		if readyStore != nil {
			return readyStore.Writable()
		}
		return nil
	}
	srv.Provenance = jobsrv.ProvenanceSnapshot
	jobsrv.Mount(srv)
	if err := srv.Start(); err != nil {
		return errors.Join(err, sess.Close(), closeStore(), closeAccessLog())
	}
	jobsrv.Start()

	cacheDesc := "in-memory"
	if *cacheDir != "" {
		cacheDesc = *cacheDir
	}
	fmt.Fprintf(os.Stderr, "transit: serving synthesis jobs on http://%s/v1/jobs (cache: %s, %d workers)\n",
		srv.Addr(), cacheDesc, *maxInflight)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	// Restore default signal handling so a second ^C kills a stuck drain.
	stop()

	fmt.Fprintf(os.Stderr, "transit: draining (in-flight jobs finish, new submissions get 503, limit %s)\n",
		*drainTimeout)
	// The HTTP server stays up through the drain so clients polling jobs
	// get their results and late submitters get an orderly 503.
	jobsrv.Drain(*drainTimeout)
	if path, derr := sess.DumpFlight("serve shutdown"); derr == nil && path != "" {
		fmt.Fprintf(os.Stderr, "transit: flight dump written to %s\n", path)
	}
	return errors.Join(srv.Close(), closeStore(), sess.Close(), closeAccessLog())
}
