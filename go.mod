module transit

go 1.22
