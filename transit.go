// Package transit is a from-scratch Go reproduction of TRANSIT
// ("TRANSIT: Specifying Protocols with Concolic Snippets", Udupa et al.,
// PLDI 2013): a system for specifying distributed protocols as EFSM
// skeletons plus concolic snippets — transition fragments mixing symbolic
// constraints and concrete examples — from which a synthesis engine infers
// complete guards and update expressions, verified end-to-end by an
// explicit-state model checker.
//
// The package is a facade over the building blocks in internal/:
//
//   - internal/expr — the typed expression language of Table 1 (Bool,
//     bounded Int, PID, Set, Enums) with evaluation semantics shared by
//     every component;
//   - internal/sat + internal/smt — a CDCL SAT solver and a bit-blasting
//     finite-domain SMT solver standing in for Z3;
//   - internal/synth — SolveConcrete (enumerative search pruned by
//     signature indistinguishability, Algorithm 1) and SolveConcolic (the
//     CEGIS loop, Algorithm 2);
//   - internal/efsm — the protocol model: processes, networks, messages,
//     transitions, snippets;
//   - internal/core — the synthesis tool: update inference (§5.1), guard
//     inference with mutual-exclusion side conditions (§5.2), and the
//     iterative case-study driver;
//   - internal/mc — the Murϕ-style explicit-state model checker;
//   - internal/lang — the TRANSIT surface language (.tr files);
//   - internal/protocols — the evaluation protocols: VI, MSI, MESI, and
//     the Origin-style protocol with the §2 Sharers anecdote.
//
// # Quick start
//
// Infer max(a, b) from a concolic specification:
//
//	u := transit.NewUniverse(3)
//	voc := transit.CoherenceVocabulary(u, transit.VocabOptions{})
//	a, b := transit.NewVar("a", transit.IntType), transit.NewVar("b", transit.IntType)
//	o := transit.NewVar("o", transit.IntType)
//	prob := transit.Problem{U: u, Vocab: voc, Vars: []*transit.Var{a, b}, Output: o}
//	spec := []transit.ConcolicExample{{
//	    Pre:  transit.True(),
//	    Post: transit.And(transit.Ge(o, a), transit.Ge(o, b),
//	        transit.Or(transit.Eq(o, a), transit.Eq(o, b))),
//	}}
//	e, stats, err := transit.SolveConcolic(prob, spec, transit.Limits{})
//	// e is ite(ge(a, b), a, b) (or an equivalent), after a few CEGIS rounds.
//
// Load a protocol from TRANSIT source, synthesize it, and model check:
//
//	proto, _ := transit.LoadProtocol(src, 3)
//	report, _ := transit.Synthesize(proto, transit.SynthesisOptions{})
//	result, _ := transit.Verify(proto, transit.VerifyOptions{CheckDeadlock: true})
package transit

import (
	"context"
	"io"
	"time"

	"transit/internal/core"
	"transit/internal/efsm"
	"transit/internal/engine"
	"transit/internal/expr"
	"transit/internal/lang"
	"transit/internal/mc"
	"transit/internal/protocols"
	"transit/internal/smt"
	"transit/internal/synth"
)

// Core expression-language types.
type (
	// Universe fixes the finite carrier sets (cache count, integer width,
	// enums) shared by evaluation, SMT solving, and model checking.
	Universe = expr.Universe
	// Type is a TRANSIT type: Bool, Int, PID, Set, or an enum.
	Type = expr.Type
	// EnumType is a declared enumerated type.
	EnumType = expr.EnumType
	// Value is a typed runtime value.
	Value = expr.Value
	// Expr is a typed expression over the Table 1 vocabulary.
	Expr = expr.Expr
	// Var is a typed variable.
	Var = expr.Var
	// Env is a valuation of variables.
	Env = expr.Env
	// Vocabulary is the function-symbol set searched by the synthesizer.
	Vocabulary = expr.Vocabulary
	// VocabOptions configures CoherenceVocabulary.
	VocabOptions = expr.CoherenceOptions
)

// Base types.
var (
	BoolType = expr.BoolType
	IntType  = expr.IntType
	PIDType  = expr.PIDType
	SetType  = expr.SetType
)

// Synthesis types (Algorithms 1 and 2).
type (
	// Problem is an expression-inference instance.
	Problem = synth.Problem
	// ConcreteExample is the paper's (S, k_o) pair.
	ConcreteExample = synth.ConcreteExample
	// ConcolicExample is a pre ⇒ post constraint over V ∪ {o}.
	ConcolicExample = synth.ConcolicExample
	// Limits bounds the search.
	Limits = synth.Limits
	// SynthStats reports CEGIS work.
	SynthStats = synth.Stats
	// ConcreteStats reports enumeration work.
	ConcreteStats = synth.ConcreteStats
)

// Protocol-model types.
type (
	// System is a protocol skeleton plus completed transitions.
	System = efsm.System
	// ProcDef is one process definition.
	ProcDef = efsm.ProcDef
	// Network is a typed channel with ordering and routing.
	Network = efsm.Network
	// Snippet is a concolic specification fragment (Figure 4).
	Snippet = efsm.Snippet
	// Runtime executes a System.
	Runtime = efsm.Runtime
	// Invariant is a safety property checked on every reachable state.
	Invariant = mc.Invariant
	// CheckResult is a model-checking outcome.
	CheckResult = mc.Result
	// Violation is a counterexample with its trace.
	Violation = mc.Violation
	// SynthesisReport summarizes one protocol completion.
	SynthesisReport = core.Report
	// Protocol is an elaborated TRANSIT program or built-in protocol.
	Protocol = lang.Protocol
	// CaseStudy scripts the iterative specify→synthesize→check workflow.
	CaseStudy = core.CaseStudy
	// CaseStudyResult aggregates a replay.
	CaseStudyResult = core.CaseStudyResult
)

// NewUniverse creates a Universe with the given cache count and the
// default 8-bit integer width.
func NewUniverse(numCaches int) *Universe { return expr.NewUniverse(numCaches) }

// NewUniverseWidth creates a Universe with an explicit integer bit-width.
func NewUniverseWidth(numCaches int, width uint) (*Universe, error) {
	return expr.NewUniverseWidth(numCaches, width)
}

// NewVar declares a typed variable.
func NewVar(name string, t Type) *Var { return expr.V(name, t) }

// CoherenceVocabulary builds the paper's Table 1 vocabulary.
func CoherenceVocabulary(u *Universe, opts VocabOptions) *Vocabulary {
	return expr.CoherenceVocabulary(u, opts)
}

// Expression builders (re-exported from internal/expr).
var (
	True      = expr.True
	False     = expr.False
	And       = expr.And
	Or        = expr.Or
	Not       = expr.Not
	Implies   = expr.Implies
	Eq        = expr.Eq
	Neq       = expr.Neq
	Ite       = expr.Ite
	Gt        = expr.Gt
	Ge        = expr.Ge
	Lt        = expr.Lt
	Le        = expr.Le
	Add       = expr.Add
	Sub       = expr.Sub
	Inc       = expr.Inc
	Dec       = expr.Dec
	IsZero    = expr.IsZero
	SetAdd    = expr.SetAdd
	SetUnion  = expr.SetUnion
	SetInter  = expr.SetInter
	SetMinus  = expr.SetMinus
	Singleton = expr.Singleton
	Card      = expr.Card
	SubsetEq  = expr.SubsetEq
	Contains  = expr.SetContains
	NumCaches = expr.NumCaches
	Pretty    = expr.Pretty
)

// PIDLit is the concrete process-identifier literal Ck.
func PIDLit(k int) Expr { return expr.PIDC(k) }

// SetLit is a concrete set literal containing the given PIDs.
func SetLit(pids ...int) Expr { return expr.NewConst(expr.SetOf(pids...)) }

// IntLit is an integer literal in the universe's wrapped range.
func IntLit(u *Universe, x int64) Expr { return expr.IntC(u, x) }

// BoolLit is a Boolean literal.
func BoolLit(b bool) Expr { return expr.BoolC(b) }

// EnumLit is an enum literal by name.
func EnumLit(e *EnumType, name string) Expr { return expr.EnumC(e, name) }

// SolveConcrete runs Algorithm 1: enumerative search over the vocabulary
// pruned by signature indistinguishability against concrete examples.
func SolveConcrete(p Problem, examples []ConcreteExample, limits Limits) (Expr, ConcreteStats, error) {
	return synth.SolveConcrete(p, examples, limits)
}

// SolveConcolic runs Algorithm 2: the CEGIS loop alternating SolveConcrete
// over concretizations with SMT consistency checks.
func SolveConcolic(p Problem, examples []ConcolicExample, limits Limits) (Expr, SynthStats, error) {
	return synth.SolveConcolic(p, examples, limits)
}

// SolveConcolicCtx is SolveConcolic under a context: cancellation and
// deadlines abort the enumeration, the SMT checks, and the CEGIS loop.
func SolveConcolicCtx(ctx context.Context, p Problem, examples []ConcolicExample, limits Limits) (Expr, SynthStats, error) {
	return synth.SolveConcolicCtx(ctx, p, examples, limits)
}

// CheckSat decides satisfiability of a Boolean expression over typed
// variables using the bundled finite-domain SMT solver.
func CheckSat(u *Universe, vars []*Var, formula Expr) (sat bool, model Env, err error) {
	res, err := smt.Solve(u, vars, formula)
	if err != nil {
		return false, nil, err
	}
	return res.Status == smt.Sat, res.Model, nil
}

// CheckValid decides validity; on failure the returned environment is a
// counterexample.
func CheckValid(u *Universe, vars []*Var, formula Expr) (valid bool, counterexample Env, err error) {
	return smt.Valid(u, vars, formula)
}

// LoadProtocol parses and elaborates TRANSIT source for a cache count.
func LoadProtocol(src string, numCaches int) (*Protocol, error) {
	return lang.Build(src, numCaches)
}

// Telemetry types of the synthesis engine (re-exported from
// internal/engine).
type (
	// EngineEvent is one structured telemetry record emitted by the
	// synthesis-job engine.
	EngineEvent = engine.Event
	// TelemetrySink consumes engine events; it must be safe for
	// concurrent calls.
	TelemetrySink = engine.Sink
	// SynthCache is the engine's cross-job memoization cache; share one
	// across Synthesize calls to reuse solved sub-problems.
	SynthCache = engine.Cache
)

// NewJSONTelemetry returns a sink writing one JSON event per line to w.
func NewJSONTelemetry(w io.Writer) TelemetrySink { return engine.NewJSONSink(w) }

// NewSynthCache creates an empty memoization cache.
func NewSynthCache() *SynthCache { return engine.NewCache() }

// SynthesisOptions configures Synthesize.
type SynthesisOptions struct {
	// Limits bounds each inference call; zero fields take defaults.
	Limits Limits
	// SkipGuardCheck disables the static guard mutual-exclusion check.
	SkipGuardCheck bool
	// Workers sizes the inference worker pool; <= 1 runs jobs in exactly
	// the sequential order (byte-identical output to the historical
	// implementation; larger pools infer identical expressions faster).
	Workers int
	// EnumWorkers sizes the tier-parallel enumeration fan-out inside each
	// inference job; <= 1 runs tiers sequentially. Like Workers it never
	// changes the inferred expressions, only wall-clock time.
	EnumWorkers int
	// Portfolio races this many solver configurations per cache-miss
	// inference call, keeping the first to finish; <= 1 disables racing.
	// The raced configurations differ only in execution strategy
	// (interpretation reduction, bank reuse, tier-worker count).
	Portfolio int
	// Timeout bounds the whole synthesis run; 0 means none.
	Timeout time.Duration
	// Telemetry, when non-nil, receives the engine's structured events.
	Telemetry TelemetrySink
	// Cache, when non-nil, is used instead of a fresh per-run
	// memoization cache.
	Cache *SynthCache
	// NoIncremental disables the shared incremental SMT sessions and
	// solves every query in a fresh solver. Answers are byte-identical
	// either way (canonical models); this is the escape hatch for
	// debugging and for measuring what the session reuse saves.
	NoIncremental bool
}

// Synthesize completes the protocol's skeleton from its snippets (§5),
// installing full transitions into proto.Sys.
func Synthesize(proto *Protocol, opts SynthesisOptions) (*SynthesisReport, error) {
	return SynthesizeCtx(context.Background(), proto, opts)
}

// SynthesizeCtx is Synthesize under a context: cancellation and deadlines
// stop in-flight inference jobs.
func SynthesizeCtx(ctx context.Context, proto *Protocol, opts SynthesisOptions) (*SynthesisReport, error) {
	return core.CompleteCtx(ctx, proto.Sys, proto.Vocab, proto.Snippets, core.Options{
		Limits:         opts.Limits,
		SkipGuardCheck: opts.SkipGuardCheck,
		Workers:        opts.Workers,
		EnumWorkers:    opts.EnumWorkers,
		Portfolio:      opts.Portfolio,
		Timeout:        opts.Timeout,
		Telemetry:      opts.Telemetry,
		Cache:          opts.Cache,
		NoIncremental:  opts.NoIncremental,
	})
}

// VerifyOptions configures Verify.
type VerifyOptions struct {
	// MaxStates caps exploration (0 = 1,000,000).
	MaxStates int
	// CheckDeadlock reports stuck states as violations.
	CheckDeadlock bool
	// ProgressInterval sets the model checker's wall-clock heartbeat: how
	// often it emits an mc.progress mark (live gauges for the -serve
	// introspection endpoint) regardless of exploration speed. 0 means the
	// 1s default; negative disables the heartbeat.
	ProgressInterval time.Duration
	// Workers sizes the checker's frontier worker pool (0 or 1 =
	// sequential). The Result — counters, budgets, counterexample trace —
	// is identical for every worker count; only wall-clock time changes.
	Workers int
	// SymmetryReduction explores one canonical representative per orbit of
	// the replicated-process PID symmetry, shrinking the state space by up
	// to |caches|!. It auto-disables (CheckResult.SymmetryApplied reports
	// the outcome) on systems that are not PID-symmetric.
	SymmetryReduction bool
}

// mcOptions lowers the facade options to the checker's.
func (o VerifyOptions) mcOptions() mc.Options {
	return mc.Options{
		MaxStates:         o.MaxStates,
		CheckDeadlock:     o.CheckDeadlock,
		ProgressInterval:  o.ProgressInterval,
		Workers:           o.Workers,
		SymmetryReduction: o.SymmetryReduction,
	}
}

// Verify model checks a synthesized protocol against its invariants,
// returning the first (shortest) counterexample if any.
func Verify(proto *Protocol, opts VerifyOptions) (*CheckResult, error) {
	rt, err := efsm.NewRuntime(proto.Sys)
	if err != nil {
		return nil, err
	}
	return mc.Check(rt, proto.Invariants, opts.mcOptions())
}

// VerifyCtx is Verify under a context: cancellation and deadlines abort
// the breadth-first exploration, returning the partial result so far.
func VerifyCtx(ctx context.Context, proto *Protocol, opts VerifyOptions) (*CheckResult, error) {
	rt, err := efsm.NewRuntime(proto.Sys)
	if err != nil {
		return nil, err
	}
	return mc.CheckCtx(ctx, rt, proto.Invariants, opts.mcOptions())
}

// VerifyWithChart is Verify, additionally rendering any violation as an
// ASCII message-sequence chart (the paper's counterexample-visualizer
// view; Figure 2 is one such chart). The chart is empty on a clean run.
func VerifyWithChart(proto *Protocol, opts VerifyOptions) (*CheckResult, string, error) {
	rt, err := efsm.NewRuntime(proto.Sys)
	if err != nil {
		return nil, "", err
	}
	return mc.CheckWithMSC(rt, proto.Invariants, opts.mcOptions())
}

// VerifyWithChartCtx is VerifyWithChart under a context: cancellation and
// deadlines abort the exploration, and the context's observability state
// (tracer, metrics registry) is threaded into the model checker.
func VerifyWithChartCtx(ctx context.Context, proto *Protocol, opts VerifyOptions) (*CheckResult, string, error) {
	rt, err := efsm.NewRuntime(proto.Sys)
	if err != nil {
		return nil, "", err
	}
	return mc.CheckWithMSCCtx(ctx, rt, proto.Invariants, opts.mcOptions())
}

// RunCaseStudy replays a scripted specify→synthesize→check→fix workflow.
func RunCaseStudy(cs CaseStudy) (*CaseStudyResult, error) {
	return core.RunCaseStudy(cs)
}

// fromSpec adapts a built-in protocol spec to the Protocol facade.
func fromSpec(s *protocols.Spec) *Protocol {
	return &Protocol{
		Name:       s.Name,
		Sys:        s.Sys,
		Vocab:      s.Vocab,
		Snippets:   s.Snippets,
		Invariants: s.Invariants,
	}
}

// VI returns the built-in VI protocol (the simpler GEMS transcription of
// Table 4): Valid/Invalid caching with a blocking recall directory.
func VI(numCaches int) *Protocol { return fromSpec(protocols.VI(numCaches)) }

// MSI returns the built-in MSI directory protocol (Table 4 / case study
// A): a three-state invalidation protocol with directory transient states,
// sharer tracking, and invalidation-acknowledgement counting.
func MSI(numCaches int) *Protocol { return fromSpec(protocols.MSI(numCaches)) }

// MESI returns the built-in MESI protocol (case study B): MSI extended
// with the Exclusive optimization.
func MESI(numCaches int) *Protocol { return fromSpec(protocols.MESI(numCaches)) }

// Origin returns the built-in SGI-Origin-style protocol (case study C).
// With fixed=false the read-to-exclusive Sharers update carries only the
// underspecified superset constraint of the §2 anecdote: synthesis
// produces Sharers ∪ {Msg.Sender}, and Verify returns the Figure 2
// coherence violation. With fixed=true the concrete bug-fix snippet is
// included and the protocol verifies.
func Origin(numCaches int, fixed bool) *Protocol {
	return fromSpec(protocols.Origin(numCaches, fixed))
}

// Case studies of §6, scripted for mechanical replay (Table 5).
var (
	// CaseStudyMSI is case study A: MSI built iteratively from a sparse
	// transcription.
	CaseStudyMSI = protocols.CaseStudyA
	// CaseStudyMESI is case study B: extending MSI to MESI.
	CaseStudyMESI = protocols.CaseStudyB
	// CaseStudyOrigin is case study C: the Origin protocol and the
	// Figure 2 fix.
	CaseStudyOrigin = protocols.CaseStudyC
)
