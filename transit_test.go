package transit_test

import (
	"strings"
	"testing"

	"transit"
)

func TestFacadeSolveConcolic(t *testing.T) {
	u := transit.NewUniverse(3)
	voc := transit.CoherenceVocabulary(u, transit.VocabOptions{})
	a := transit.NewVar("a", transit.IntType)
	b := transit.NewVar("b", transit.IntType)
	o := transit.NewVar("o", transit.IntType)
	prob := transit.Problem{U: u, Vocab: voc, Vars: []*transit.Var{a, b}, Output: o}
	spec := []transit.ConcolicExample{{
		Pre: transit.True(),
		Post: transit.And(transit.Ge(o, a), transit.Ge(o, b),
			transit.Or(transit.Eq(o, a), transit.Eq(o, b))),
	}}
	e, stats, err := transit.SolveConcolic(prob, spec, transit.Limits{MaxSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations == 0 || e == nil {
		t.Fatal("empty result")
	}
	// Spot-check semantics.
	env := transit.Env{"a": intVal(u, 5), "b": intVal(u, 9)}
	if got := e.Eval(u, env); got.Int() != 9 {
		t.Errorf("max(5,9) via %s = %v", e, got)
	}
}

func intVal(u *transit.Universe, x int64) transit.Value {
	return transit.IntLit(u, x).Eval(u, nil)
}

func TestFacadeCheckSatValid(t *testing.T) {
	u := transit.NewUniverse(3)
	s := transit.NewVar("s", transit.SetType)
	p := transit.NewVar("p", transit.PIDType)
	vars := []*transit.Var{s, p}
	sat, model, err := transit.CheckSat(u, vars, transit.Contains(s, p))
	if err != nil || !sat {
		t.Fatalf("sat check: %v %v", sat, err)
	}
	if !transit.Contains(s, p).Eval(u, model).Bool() {
		t.Error("model does not satisfy")
	}
	valid, _, err := transit.CheckValid(u, vars, transit.Contains(transit.SetAdd(s, p), p))
	if err != nil || !valid {
		t.Fatalf("validity check: %v %v", valid, err)
	}
}

func TestFacadeBuiltinsVerify(t *testing.T) {
	for _, tc := range []struct {
		name  string
		proto *transit.Protocol
	}{
		{"VI", transit.VI(2)},
		{"MSI", transit.MSI(2)},
		{"MESI", transit.MESI(2)},
		{"Origin", transit.Origin(2, true)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := transit.Synthesize(tc.proto, transit.SynthesisOptions{
				Limits: transit.Limits{MaxSize: 12},
			}); err != nil {
				t.Fatal(err)
			}
			res, err := transit.Verify(tc.proto, transit.VerifyOptions{
				MaxStates: 2_000_000, CheckDeadlock: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK {
				t.Fatalf("violation:\n%v", res.Violation)
			}
		})
	}
}

func TestFacadeLoadProtocol(t *testing.T) {
	src := `
protocol Mini;
enum K { Hello }
message M { Kind: K; From: PID }
message R { Kind: K; Dest: PID }
network Up ordered M to Server;
network Down ordered R to Client by Dest;
process Server {
    states { S } init S;
    transition (S, Up Msg) => (S, Down Out) {
        [] ==> { Out.Kind' = Hello; Out.Dest' = Msg.From; }
    }
}
process Client replicated {
    states { Idle, Wait } init Idle;
    triggers { Go }
    transition (Idle, Go) => (Wait, Up Out) {
        [] ==> { Out.Kind' = Hello; Out.From' = Self; }
    }
    transition (Wait, Down Msg) => (Idle);
}
`
	proto, err := transit.LoadProtocol(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := transit.Synthesize(proto, transit.SynthesisOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := transit.Verify(proto, transit.VerifyOptions{CheckDeadlock: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("violation:\n%v", res.Violation)
	}
	if res.States < 4 {
		t.Errorf("suspiciously few states: %d", res.States)
	}
}

func TestFacadeLoadProtocolError(t *testing.T) {
	_, err := transit.LoadProtocol("protocol X; process P { states { A } init B; }", 2)
	if err == nil || !strings.Contains(err.Error(), "initial state") {
		t.Errorf("expected initial-state error, got %v", err)
	}
}

func TestFacadeOriginAnecdote(t *testing.T) {
	buggy := transit.Origin(2, false)
	if _, err := transit.Synthesize(buggy, transit.SynthesisOptions{Limits: transit.Limits{MaxSize: 12}}); err != nil {
		t.Fatal(err)
	}
	res, err := transit.Verify(buggy, transit.VerifyOptions{MaxStates: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("buggy Origin must violate")
	}
	if len(res.Violation.Trace) == 0 {
		t.Fatal("violation must carry a trace")
	}
}

func TestFacadeCaseStudies(t *testing.T) {
	for _, mk := range []func(int) transit.CaseStudy{
		transit.CaseStudyMSI, transit.CaseStudyMESI, transit.CaseStudyOrigin,
	} {
		res, err := transit.RunCaseStudy(mk(2))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%s did not converge", res.Name)
		}
	}
}

func TestFacadeLiterals(t *testing.T) {
	u := transit.NewUniverse(4)
	if transit.PIDLit(2).Eval(u, nil).PID() != 2 {
		t.Error("PIDLit")
	}
	if transit.SetLit(0, 3).Eval(u, nil).Set() != 0b1001 {
		t.Error("SetLit")
	}
	if transit.IntLit(u, -7).Eval(u, nil).Int() != -7 {
		t.Error("IntLit")
	}
	if !transit.BoolLit(true).Eval(u, nil).Bool() {
		t.Error("BoolLit")
	}
	e, err := u.DeclareEnum("FT", "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if transit.EnumLit(e, "B").Eval(u, nil).EnumOrd() != 1 {
		t.Error("EnumLit")
	}
}
