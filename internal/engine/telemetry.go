package engine

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured telemetry record. The engine emits:
//
//	{"type":"engine_start","workers":N,"jobs":M}
//	{"type":"job_start","job":L,"kind":K,"worker":W}
//	{"type":"job_end","job":L,"kind":K,"worker":W,"duration_ms":D,
//	 "cache_hit":B,"candidates":C,"smt_queries":Q,"clauses_reused":CR,
//	 "cegis_iterations":I,"retries":R,"error":E}
//	{"type":"engine_end","workers":N,"jobs":M,"failed":F,"skipped":S,
//	 "cache_hits":H,"cache_misses":Mi,"duration_ms":D,"utilization":U}
//
// Zero-valued optional fields are omitted from the JSON encoding. The
// worker field is 1-based (workers 1..N) so that it, too, can be
// omitted when absent: engine_start/engine_end carry no worker, and a
// 0-based numbering would have dropped the field from worker 0's job
// events as well.
type Event struct {
	Type          string  `json:"type"`
	Job           string  `json:"job,omitempty"`
	Kind          string  `json:"kind,omitempty"`
	Worker        int     `json:"worker,omitempty"`
	DurationMS    float64 `json:"duration_ms,omitempty"`
	CacheHit      bool    `json:"cache_hit,omitempty"`
	CacheTier     string  `json:"cache_tier,omitempty"`
	Candidates    int64   `json:"candidates,omitempty"`
	SMTQueries    int     `json:"smt_queries,omitempty"`
	ClausesReused int64   `json:"clauses_reused,omitempty"`
	Iterations    int     `json:"cegis_iterations,omitempty"`
	Retries       int     `json:"retries,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	Jobs          int     `json:"jobs,omitempty"`
	Failed        int     `json:"failed,omitempty"`
	Skipped       int     `json:"skipped,omitempty"`
	CacheHits     int     `json:"cache_hits,omitempty"`
	CacheMisses   int     `json:"cache_misses,omitempty"`
	Utilization   float64 `json:"utilization,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// Sink consumes telemetry events. Sinks must be safe for concurrent
// calls; the engine invokes them from every worker goroutine.
type Sink func(Event)

// NewJSONSink returns a Sink that writes one JSON object per line to w,
// serialized by an internal mutex so concurrent workers never interleave
// bytes. Encoding errors are dropped (telemetry is best-effort).
func NewJSONSink(w io.Writer) Sink {
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	return func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		_ = enc.Encode(ev)
	}
}

// MultiSink fans an event out to several sinks.
func MultiSink(sinks ...Sink) Sink {
	return func(ev Event) {
		for _, s := range sinks {
			if s != nil {
				s(ev)
			}
		}
	}
}

// CollectSink appends events to a slice under a mutex; handy for tests
// and for in-process consumers like internal/bench.
func CollectSink(dst *[]Event) Sink {
	var mu sync.Mutex
	return func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		*dst = append(*dst, ev)
	}
}
