package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"transit/internal/expr"
	"transit/internal/smt"
	"transit/internal/synth"
)

// SolveSpec is the canonical description of one SolveConcolic sub-problem:
// everything that determines the solver's answer. Two specs with equal
// Keys produce identical expressions (the solver is deterministic), which
// is what makes cross-job memoization sound.
type SolveSpec struct {
	Problem  synth.Problem
	Examples []synth.ConcolicExample
	Limits   synth.Limits

	// Session, when non-nil, runs the solve's SMT queries in this shared
	// incremental session (which must span exactly Vars ∪ {Output}).
	// It is an execution detail, not part of the problem: canonical models
	// make session and sessionless solves answer-identical, so Session —
	// like Limits.NoIncremental — is deliberately excluded from Key().
	Session *smt.Session
}

// Key derives the canonical cache key: a SHA-256 over the universe
// parameters (cache count, integer width, declared enums), the vocabulary
// (every function symbol signature in insertion order — order matters, it
// is the enumeration order), the input variables in order, the output
// variable, the concolic examples (pre ⇒ post in canonical String form),
// and the limits after default resolution (so Limits{} and the explicit
// defaults share an entry). Only the answer-affecting limits participate:
// Limits.EnumWorkers and Limits.NoBankReuse — like Limits.NoIncremental —
// steer how the search runs, not what it returns (the tier merge and the
// restart fallback are output-identical by construction), so they are
// deliberately excluded.
func (s SolveSpec) Key() string {
	var b strings.Builder
	u := s.Problem.U
	fmt.Fprintf(&b, "u:%d/%d;", u.NumCaches(), u.IntWidth())
	for _, e := range u.Enums() {
		fmt.Fprintf(&b, "enum:%s=%s;", e.Name, strings.Join(e.Values, ","))
	}
	b.WriteString("vocab:")
	for _, f := range s.Problem.Vocab.Funcs() {
		b.WriteString(f.String())
		b.WriteByte(';')
	}
	b.WriteString("vars:")
	for _, v := range s.Problem.Vars {
		fmt.Fprintf(&b, "%s:%s;", v.Name, v.VT)
	}
	fmt.Fprintf(&b, "out:%s:%s;", s.Problem.Output.Name, s.Problem.Output.VT)
	b.WriteString("exs:")
	for _, ex := range s.Examples {
		fmt.Fprintf(&b, "%s==>%s;", ex.Pre, ex.Post)
	}
	lim := s.Limits.WithDefaults()
	fmt.Fprintf(&b, "lim:%d/%d/%d/%d/%d/%v", lim.MaxSize, lim.MaxExprs, lim.MaxIters,
		int64(lim.Timeout), lim.SMTConflicts, lim.NoPrune)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// CacheEntry is a memoized solve result: the inferred expression plus the
// work stats of the original (cache-missing) solve. Replaying the stored
// stats on a hit keeps aggregate reports (expressions tried, SMT queries)
// identical whether or not the cache intervened, so cached and uncached
// runs are distinguishable only by wall-clock time.
type CacheEntry struct {
	Expr  expr.Expr
	Stats synth.Stats
}

// Cache is a concurrency-safe memoization table for solved sub-problems.
// Only successful solves are stored. A Cache may be shared across engine
// runs (e.g. across CEGIS iterations of a case study, or across the four
// case-study protocols) to exploit repeated sub-problems.
type Cache struct {
	mu           sync.Mutex
	m            map[string]CacheEntry
	hits, misses int64
}

// NewCache creates an empty cache.
func NewCache() *Cache { return &Cache{m: make(map[string]CacheEntry)} }

// Get looks up a key, counting a hit or miss.
func (c *Cache) Get(key string) (CacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return ent, ok
}

// Put stores a successful solve. Concurrent writers racing on one key
// store identical entries (the solver is deterministic), so last-write-
// wins is safe.
func (c *Cache) Put(key string, ent CacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = ent
}

// Len reports the number of memoized problems.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Counters reports lookup hits and misses so far.
func (c *Cache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitRate is hits / lookups, or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	hits, misses := c.Counters()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
