package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"transit/internal/expr"
	"transit/internal/smt"
	"transit/internal/synth"
)

// SolveSpec is the canonical description of one SolveConcolic sub-problem:
// everything that determines the solver's answer. Two specs with equal
// Keys produce identical expressions (the solver is deterministic), which
// is what makes cross-job memoization sound.
type SolveSpec struct {
	Problem  synth.Problem
	Examples []synth.ConcolicExample
	Limits   synth.Limits

	// Session, when non-nil, runs the solve's SMT queries in this shared
	// incremental session (which must span exactly Vars ∪ {Output}).
	// It is an execution detail, not part of the problem: canonical models
	// make session and sessionless solves answer-identical, so Session —
	// like Limits.NoIncremental — is deliberately excluded from Key().
	Session *smt.Session
}

// Key derives the canonical cache key: a SHA-256 over the universe
// parameters (cache count, integer width, declared enums), the vocabulary
// (every function symbol signature in insertion order — order matters, it
// is the enumeration order), the input variables in order, the output
// variable, the concolic examples (pre ⇒ post in canonical String form),
// and the limits after default resolution (so Limits{} and the explicit
// defaults share an entry). Only the answer-affecting limits participate:
// Limits.EnumWorkers, Limits.NoBankReuse, Limits.NoInterpReduction, and
// Limits.Portfolio — like Limits.NoIncremental — steer how the search
// runs, not what it returns (the tier merge, the restart fallback, the
// interpretation-reduction partition, and the portfolio race are
// output-identical by construction; DESIGN.md §10 and §15), so they are
// deliberately excluded.
func (s SolveSpec) Key() string {
	var b strings.Builder
	u := s.Problem.U
	fmt.Fprintf(&b, "u:%d/%d;", u.NumCaches(), u.IntWidth())
	for _, e := range u.Enums() {
		fmt.Fprintf(&b, "enum:%s=%s;", e.Name, strings.Join(e.Values, ","))
	}
	b.WriteString("vocab:")
	for _, f := range s.Problem.Vocab.Funcs() {
		b.WriteString(f.String())
		b.WriteByte(';')
	}
	b.WriteString("vars:")
	for _, v := range s.Problem.Vars {
		fmt.Fprintf(&b, "%s:%s;", v.Name, v.VT)
	}
	fmt.Fprintf(&b, "out:%s:%s;", s.Problem.Output.Name, s.Problem.Output.VT)
	b.WriteString("exs:")
	for _, ex := range s.Examples {
		fmt.Fprintf(&b, "%s==>%s;", ex.Pre, ex.Post)
	}
	lim := s.Limits.WithDefaults()
	fmt.Fprintf(&b, "lim:%d/%d/%d/%d/%d/%v", lim.MaxSize, lim.MaxExprs, lim.MaxIters,
		int64(lim.Timeout), lim.SMTConflicts, lim.NoPrune)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Tier identifies which cache tier answered a lookup — the label every
// layer above (engine spans, server envelopes, access-log lines, bench
// rows) uses to attribute latency to memory, disk, or a real solve.
type Tier string

const (
	// TierMem: the in-memory table had the entry.
	TierMem Tier = "mem"
	// TierDisk: the persistent backend had it (promoted into memory).
	TierDisk Tier = "disk"
	// TierMiss: neither tier had it; the caller solved from scratch.
	TierMiss Tier = "miss"
	// TierNone: no lookup happened (cache disabled).
	TierNone Tier = "none"
)

// CacheEntry is a memoized solve result: the inferred expression plus the
// work stats of the original (cache-missing) solve. Replaying the stored
// stats on a hit keeps aggregate reports (expressions tried, SMT queries)
// identical whether or not the cache intervened, so cached and uncached
// runs are distinguishable only by wall-clock time.
type CacheEntry struct {
	Expr  expr.Expr
	Stats synth.Stats
}

// CacheBackend is a persistent second tier behind a Cache: a key-value
// store of wire-encoded entries (see EncodeEntry/DecodeEntry), typically
// disk-backed and shared across processes. Implementations must be safe
// for concurrent use; Put is best-effort (a backend that cannot persist
// an entry simply forfeits the future hit). The engine/diskcache package
// provides the content-addressed segment-file implementation.
type CacheBackend interface {
	// Get returns the encoded entry stored for key, if any.
	Get(key string) ([]byte, bool)
	// Put stores the encoded entry for key. Keys are content hashes, so
	// racing writers always carry identical payloads.
	Put(key string, val []byte)
	// Close flushes and releases the backend.
	Close() error
}

// Cache is a concurrency-safe memoization table for solved sub-problems.
// Only successful solves are stored. A Cache may be shared across engine
// runs (e.g. across CEGIS iterations of a case study, or across the four
// case-study protocols) to exploit repeated sub-problems. With a backend
// attached, the in-memory table becomes the first tier of a two-tier
// store: Fetch falls through to the backend on a memory miss, and Put
// writes through, so entries survive process restarts and are shared by
// every front-end on the same backend.
type Cache struct {
	mu           sync.Mutex
	m            map[string]CacheEntry
	backend      CacheBackend
	hits, misses int64
	diskHits     int64
}

// NewCache creates an empty cache with no backend.
func NewCache() *Cache { return &Cache{m: make(map[string]CacheEntry)} }

// NewCacheWithBackend creates an empty cache reading through to (and
// writing through to) the given backend. The caller retains ownership of
// the backend and closes it after the cache's last use.
func NewCacheWithBackend(b CacheBackend) *Cache {
	return &Cache{m: make(map[string]CacheEntry), backend: b}
}

// Backend reports the attached backend (nil without one).
func (c *Cache) Backend() CacheBackend { return c.backend }

// Get looks up a key in the in-memory tier only, counting a hit or miss.
// Spec-aware callers use Fetch, which also consults the backend.
func (c *Cache) Get(key string) (CacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return ent, ok
}

// Fetch is the spec-aware two-tier lookup: it derives the canonical key,
// consults the in-memory table (rehydrating the entry into spec's world,
// exactly as SolveConcolic always has), then falls through to the backend,
// whose entries decode directly against the spec. Backend hits are
// promoted into memory so the decode cost is paid once per process. One
// hit or miss is counted per call; an entry that cannot be rebound (a key
// collision or stale vocabulary) counts as a miss and is re-solved. The
// returned tier says which layer answered (TierMem, TierDisk, TierMiss).
func (c *Cache) Fetch(spec SolveSpec) (res expr.Expr, stats synth.Stats, key string, tier Tier, ok bool) {
	key = spec.Key()
	c.mu.Lock()
	ent, inMem := c.m[key]
	backend := c.backend
	c.mu.Unlock()
	if inMem {
		if re, rok := spec.rehydrate(ent.Expr); rok {
			c.count(true, false)
			return re, ent.Stats, key, TierMem, true
		}
	}
	if backend != nil {
		if raw, bok := backend.Get(key); bok {
			if dec, dok := DecodeEntry(raw, spec); dok {
				c.mu.Lock()
				c.m[key] = dec
				c.mu.Unlock()
				c.count(true, true)
				return dec.Expr, dec.Stats, key, TierDisk, true
			}
		}
	}
	c.count(false, false)
	return nil, synth.Stats{}, key, TierMiss, false
}

func (c *Cache) count(hit, disk bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if hit {
		c.hits++
		if disk {
			c.diskHits++
		}
	} else {
		c.misses++
	}
}

// Put stores a successful solve in memory and, when a backend is
// attached, writes the encoded entry through to it. Concurrent writers
// racing on one key store identical entries (the solver is
// deterministic), so last-write-wins is safe. Entries whose expressions
// cannot be encoded (never the case for solver output) stay memory-only.
func (c *Cache) Put(key string, ent CacheEntry) {
	c.mu.Lock()
	c.m[key] = ent
	backend := c.backend
	c.mu.Unlock()
	if backend != nil {
		if raw, err := EncodeEntry(ent); err == nil {
			backend.Put(key, raw)
		}
	}
}

// Len reports the number of memoized problems.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Counters reports lookup hits and misses so far.
func (c *Cache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// DiskHits reports how many of the hits were served by the backend (a
// subset of Counters' hits; 0 without a backend).
func (c *Cache) DiskHits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diskHits
}

// HitRate is hits / lookups, or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	hits, misses := c.Counters()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
