package engine

import (
	"context"
	"errors"

	"transit/internal/expr"
	"transit/internal/synth"
)

// growLimits is the retry-with-larger-limits schedule: each retry deepens
// the enumeration (larger expressions), widens the budgets, and doubles
// the CEGIS iteration allowance, so transient "no consistent expression
// within limits" failures caused by tight bounds get a second chance
// without the caller hand-tuning anything.
func growLimits(l synth.Limits) synth.Limits {
	l = l.WithDefaults()
	l.MaxSize += 4
	if l.MaxExprs < 1<<62/4 {
		l.MaxExprs *= 4
	}
	l.MaxIters *= 2
	if l.Timeout > 0 {
		l.Timeout *= 2
	}
	return l
}

// SolveConcolic is the engine's memoized, retrying front door to
// synth.SolveConcolicCtx. It consults the cache (replaying the original
// solve's stats on a hit, so aggregated reports are cache-invariant),
// solves on a miss, retries with grown limits when the search space was
// exhausted and the retry policy allows, and stores successes.
//
// The returned Stats are the cumulative work of all attempts (or the
// replayed stats on a hit); cached reports whether the cache supplied the
// answer; retries is the number of extra attempts spent.
func (e *Engine) SolveConcolic(ctx context.Context, spec SolveSpec) (res expr.Expr, stats synth.Stats, cached bool, retries int, err error) {
	var key string
	if e.cfg.Cache != nil {
		// Fetch consults memory first (re-binding the entry's symbols to
		// this spec's world) and then the persistent backend, if any.
		re, st, k, ok := e.cfg.Cache.Fetch(spec)
		if ok {
			return re, st, true, 0, nil
		}
		key = k
	}
	attempts := e.cfg.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	limits := spec.Limits
	if limits.EnumWorkers == 0 {
		limits.EnumWorkers = e.cfg.EnumWorkers
	}
	for a := 0; ; a++ {
		var st synth.Stats
		res, st, err = synth.SolveConcolicSessionCtx(ctx, spec.Problem, spec.Examples, limits, spec.Session)
		stats.Concrete.Enumerated += st.Concrete.Enumerated
		stats.Concrete.Kept += st.Concrete.Kept
		stats.Concrete.Restarts += st.Concrete.Restarts
		if st.Concrete.MaxSizeSeen > stats.Concrete.MaxSizeSeen {
			stats.Concrete.MaxSizeSeen = st.Concrete.MaxSizeSeen
		}
		stats.BankReuses += st.BankReuses
		stats.SMTQueries += st.SMTQueries
		stats.SMTClauses += st.SMTClauses
		stats.SMTClausesReused += st.SMTClausesReused
		stats.Iterations += st.Iterations
		stats.Elapsed += st.Elapsed
		stats.Trace = append(stats.Trace, st.Trace...)
		if err == nil {
			if e.cfg.Cache != nil {
				e.cfg.Cache.Put(key, CacheEntry{Expr: res, Stats: stats})
			}
			return res, stats, false, a, nil
		}
		// Retry only makes sense when the bounded search came up empty;
		// inconsistent example sets and cancellations are final.
		if a+1 >= attempts || !errors.Is(err, synth.ErrNoExpression) || ctx.Err() != nil {
			return nil, stats, false, a, err
		}
		limits = growLimits(limits)
	}
}
