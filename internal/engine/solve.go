package engine

import (
	"context"
	"errors"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
	"transit/internal/synth"
)

// growLimits is the retry-with-larger-limits schedule: each retry deepens
// the enumeration (larger expressions), widens the budgets, and doubles
// the CEGIS iteration allowance, so transient "no consistent expression
// within limits" failures caused by tight bounds get a second chance
// without the caller hand-tuning anything.
func growLimits(l synth.Limits) synth.Limits {
	l = l.WithDefaults()
	l.MaxSize += 4
	if l.MaxExprs < 1<<62/4 {
		l.MaxExprs *= 4
	}
	l.MaxIters *= 2
	if l.Timeout > 0 {
		l.Timeout *= 2
	}
	return l
}

// SolveOutcome describes how one SolveConcolic call got its answer: which
// cache tier served it (TierNone when memoization is disabled), how many
// retry attempts were spent, and the wall-clock split between the cache
// lookup and the actual solving. CacheWait + SolveWait is the call's full
// wall time, which is what lets the serving path's access log reconcile a
// job's latency breakdown against its observed elapsed time.
type SolveOutcome struct {
	// Cached reports whether the cache supplied the answer (Tier is then
	// TierMem or TierDisk).
	Cached bool
	// Tier is the cache tier that answered the lookup.
	Tier Tier
	// Retries is the number of extra attempts the retry policy spent (the
	// winning configuration's, in a portfolio race).
	Retries int
	// Portfolio names the configuration that won the portfolio race, or
	// "" when no race ran (racing disabled, or the answer came from the
	// cache).
	Portfolio string
	// CacheWait is the time spent in the two-tier cache lookup.
	CacheWait time.Duration
	// SolveWait is the time spent in the synthesizer (all attempts).
	SolveWait time.Duration
}

// SolveConcolic is the engine's memoized, retrying front door to
// synth.SolveConcolicCtx. It consults the cache (replaying the original
// solve's stats on a hit, so aggregated reports are cache-invariant),
// solves on a miss, retries with grown limits when the search space was
// exhausted and the retry policy allows, and stores successes.
//
// The returned Stats are the cumulative work of all attempts (or the
// replayed stats on a hit); the SolveOutcome carries the cache tier,
// retry count, and the cache/solve wall-time split. The cache lookup runs
// under an "engine.cache" span (tier recorded as an attribute) and feeds
// the engine.cache.{mem_hits,disk_hits,misses} counters and the
// engine.cache.lookup_ms histogram when ctx carries a metrics registry.
func (e *Engine) SolveConcolic(ctx context.Context, spec SolveSpec) (res expr.Expr, stats synth.Stats, out SolveOutcome, err error) {
	out.Tier = TierNone
	reg := obs.MetricsFrom(ctx)
	var key string
	if e.cfg.Cache != nil {
		// Fetch consults memory first (re-binding the entry's symbols to
		// this spec's world) and then the persistent backend, if any.
		_, cacheSpan := obs.Start(ctx, "engine.cache")
		lookupStart := time.Now()
		re, st, k, tier, ok := e.cfg.Cache.Fetch(spec)
		out.CacheWait = time.Since(lookupStart)
		out.Tier = tier
		cacheSpan.SetAttr(obs.Str("tier", string(tier)))
		cacheSpan.End()
		if reg != nil {
			switch tier {
			case TierMem:
				reg.Counter("engine.cache.mem_hits").Inc()
			case TierDisk:
				reg.Counter("engine.cache.disk_hits").Inc()
			default:
				reg.Counter("engine.cache.misses").Inc()
			}
			reg.Histogram("engine.cache.lookup_ms").Observe(out.CacheWait)
		}
		if ok {
			out.Cached = true
			return re, st, out, nil
		}
		key = k
	}
	limits := spec.Limits
	if limits.EnumWorkers == 0 {
		limits.EnumWorkers = e.cfg.EnumWorkers
	}
	k := limits.Portfolio
	if k == 0 {
		k = e.cfg.Portfolio
	}
	solveStart := time.Now()
	defer func() { out.SolveWait = time.Since(solveStart) }()
	if k > 1 {
		res, stats, out.Retries, out.Portfolio, err = e.racePortfolio(ctx, spec, limits, k)
	} else {
		res, stats, out.Retries, err = e.solveAttempts(ctx, spec, limits)
	}
	if err != nil {
		return nil, stats, out, err
	}
	if e.cfg.Cache != nil {
		e.cfg.Cache.Put(key, CacheEntry{Expr: res, Stats: stats})
	}
	return res, stats, out, nil
}

// solveAttempts runs the retry-with-grown-limits schedule for one solver
// configuration, accumulating the stats of every attempt. Retry only makes
// sense when the bounded search came up empty; inconsistent example sets,
// proven-unrealizable holes (synth.ErrUnrealizable does not wrap
// synth.ErrNoExpression, which is precisely what makes an impossible hole
// fail in one attempt instead of three escalating ones), and cancellations
// are final.
func (e *Engine) solveAttempts(ctx context.Context, spec SolveSpec, limits synth.Limits) (res expr.Expr, stats synth.Stats, retries int, err error) {
	attempts := e.cfg.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for a := 0; ; a++ {
		var st synth.Stats
		res, st, err = synth.SolveConcolicSessionCtx(ctx, spec.Problem, spec.Examples, limits, spec.Session)
		stats.Concrete.Enumerated += st.Concrete.Enumerated
		stats.Concrete.Kept += st.Concrete.Kept
		stats.Concrete.Restarts += st.Concrete.Restarts
		stats.Concrete.InterpPruned += st.Concrete.InterpPruned
		if st.Concrete.MaxSizeSeen > stats.Concrete.MaxSizeSeen {
			stats.Concrete.MaxSizeSeen = st.Concrete.MaxSizeSeen
		}
		stats.BankReuses += st.BankReuses
		stats.SMTQueries += st.SMTQueries
		stats.SMTClauses += st.SMTClauses
		stats.SMTClausesReused += st.SMTClausesReused
		stats.Iterations += st.Iterations
		stats.Elapsed += st.Elapsed
		stats.Trace = append(stats.Trace, st.Trace...)
		stats.Unrealizable = stats.Unrealizable || st.Unrealizable
		retries = a
		if err == nil {
			return res, stats, retries, nil
		}
		if a+1 >= attempts || !errors.Is(err, synth.ErrNoExpression) || ctx.Err() != nil {
			return nil, stats, retries, err
		}
		limits = growLimits(limits)
	}
}

// portfolioConfig is one raced solver configuration: a display name (the
// telemetry label) and the limits it runs under.
type portfolioConfig struct {
	name   string
	limits synth.Limits
}

// portfolioConfigs derives the deterministic configuration ladder for a
// K-way race from the base limits: the base configuration first, then the
// escape-hatch variants in fixed order — interpretation reduction off
// (wins when probe evaluation overhead outweighs its pruning), bank reuse
// off (wins when stale banks would force fallback walks), and the
// opposite tier-worker count (sequential if the base is parallel, 4-way
// if sequential). Hint strategies are not varied: the concretization hint
// is part of what makes answers canonical, so racing it would race
// different answers. K beyond the ladder length is clamped.
func portfolioConfigs(base synth.Limits, k int) []portfolioConfig {
	noRed := base
	noRed.NoInterpReduction = true
	noBank := base
	noBank.NoBankReuse = true
	alt := base
	altName := "enum-workers-4"
	if base.WithDefaults().EnumWorkers > 1 {
		alt.EnumWorkers = 1
		altName = "enum-workers-1"
	} else {
		alt.EnumWorkers = 4
	}
	cfgs := []portfolioConfig{
		{name: "base", limits: base},
		{name: "no-interp-reduction", limits: noRed},
		{name: "no-bank", limits: noBank},
		{name: altName, limits: alt},
	}
	if k < len(cfgs) {
		cfgs = cfgs[:k]
	}
	return cfgs
}

// racePortfolio runs K solver configurations concurrently on the same
// spec and keeps the first one to succeed, cancelling the rest through
// the usual context plumbing and waiting for every racer to exit before
// returning (no goroutine outlives the call). The winner's expression,
// stats, and retry count are returned as if that configuration had run
// alone; losers' work is discarded. When every configuration fails, the
// base configuration's error is returned — deterministic, and the most
// meaningful, since the others differ only in execution strategy.
//
// Racers never share the caller's incremental SMT session (sessions are
// single-threaded), so spec.Session is dropped for the race; canonical
// models make session and sessionless solves answer-identical, so this
// changes wall-clock only.
func (e *Engine) racePortfolio(ctx context.Context, spec SolveSpec, base synth.Limits, k int) (expr.Expr, synth.Stats, int, string, error) {
	cfgs := portfolioConfigs(base, k)
	ctx, span := obs.Start(ctx, "engine.portfolio", obs.Int("configs", len(cfgs)))
	defer span.End()
	reg := obs.MetricsFrom(ctx)
	if reg != nil {
		reg.Counter("engine.portfolio.races").Inc()
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type raceResult struct {
		idx     int
		res     expr.Expr
		stats   synth.Stats
		retries int
		err     error
	}
	done := make(chan raceResult, len(cfgs))
	for i, c := range cfgs {
		rspec := spec
		rspec.Session = nil
		rspec.Limits = c.limits
		go func(i int, rspec SolveSpec) {
			res, stats, retries, err := e.solveAttempts(rctx, rspec, rspec.Limits)
			done <- raceResult{idx: i, res: res, stats: stats, retries: retries, err: err}
		}(i, rspec)
	}
	var winner raceResult
	hasWinner := false
	results := make([]raceResult, len(cfgs))
	for pending := len(cfgs); pending > 0; pending-- {
		r := <-done
		results[r.idx] = r
		if r.err == nil && !hasWinner {
			winner, hasWinner = r, true
			cancel()
			if reg != nil {
				reg.Counter("engine.portfolio.cancelled").Add(int64(pending - 1))
			}
		}
	}
	if hasWinner {
		name := cfgs[winner.idx].name
		span.SetAttr(obs.Str("winner", name))
		if reg != nil {
			reg.Counter("engine.portfolio.win." + name).Inc()
		}
		return winner.res, winner.stats, winner.retries, name, nil
	}
	r := results[0]
	return nil, r.stats, r.retries, "", r.err
}
