package engine

import (
	"context"
	"errors"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
	"transit/internal/synth"
)

// growLimits is the retry-with-larger-limits schedule: each retry deepens
// the enumeration (larger expressions), widens the budgets, and doubles
// the CEGIS iteration allowance, so transient "no consistent expression
// within limits" failures caused by tight bounds get a second chance
// without the caller hand-tuning anything.
func growLimits(l synth.Limits) synth.Limits {
	l = l.WithDefaults()
	l.MaxSize += 4
	if l.MaxExprs < 1<<62/4 {
		l.MaxExprs *= 4
	}
	l.MaxIters *= 2
	if l.Timeout > 0 {
		l.Timeout *= 2
	}
	return l
}

// SolveOutcome describes how one SolveConcolic call got its answer: which
// cache tier served it (TierNone when memoization is disabled), how many
// retry attempts were spent, and the wall-clock split between the cache
// lookup and the actual solving. CacheWait + SolveWait is the call's full
// wall time, which is what lets the serving path's access log reconcile a
// job's latency breakdown against its observed elapsed time.
type SolveOutcome struct {
	// Cached reports whether the cache supplied the answer (Tier is then
	// TierMem or TierDisk).
	Cached bool
	// Tier is the cache tier that answered the lookup.
	Tier Tier
	// Retries is the number of extra attempts the retry policy spent.
	Retries int
	// CacheWait is the time spent in the two-tier cache lookup.
	CacheWait time.Duration
	// SolveWait is the time spent in the synthesizer (all attempts).
	SolveWait time.Duration
}

// SolveConcolic is the engine's memoized, retrying front door to
// synth.SolveConcolicCtx. It consults the cache (replaying the original
// solve's stats on a hit, so aggregated reports are cache-invariant),
// solves on a miss, retries with grown limits when the search space was
// exhausted and the retry policy allows, and stores successes.
//
// The returned Stats are the cumulative work of all attempts (or the
// replayed stats on a hit); the SolveOutcome carries the cache tier,
// retry count, and the cache/solve wall-time split. The cache lookup runs
// under an "engine.cache" span (tier recorded as an attribute) and feeds
// the engine.cache.{mem_hits,disk_hits,misses} counters and the
// engine.cache.lookup_ms histogram when ctx carries a metrics registry.
func (e *Engine) SolveConcolic(ctx context.Context, spec SolveSpec) (res expr.Expr, stats synth.Stats, out SolveOutcome, err error) {
	out.Tier = TierNone
	reg := obs.MetricsFrom(ctx)
	var key string
	if e.cfg.Cache != nil {
		// Fetch consults memory first (re-binding the entry's symbols to
		// this spec's world) and then the persistent backend, if any.
		_, cacheSpan := obs.Start(ctx, "engine.cache")
		lookupStart := time.Now()
		re, st, k, tier, ok := e.cfg.Cache.Fetch(spec)
		out.CacheWait = time.Since(lookupStart)
		out.Tier = tier
		cacheSpan.SetAttr(obs.Str("tier", string(tier)))
		cacheSpan.End()
		if reg != nil {
			switch tier {
			case TierMem:
				reg.Counter("engine.cache.mem_hits").Inc()
			case TierDisk:
				reg.Counter("engine.cache.disk_hits").Inc()
			default:
				reg.Counter("engine.cache.misses").Inc()
			}
			reg.Histogram("engine.cache.lookup_ms").Observe(out.CacheWait)
		}
		if ok {
			out.Cached = true
			return re, st, out, nil
		}
		key = k
	}
	attempts := e.cfg.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	limits := spec.Limits
	if limits.EnumWorkers == 0 {
		limits.EnumWorkers = e.cfg.EnumWorkers
	}
	solveStart := time.Now()
	defer func() { out.SolveWait = time.Since(solveStart) }()
	for a := 0; ; a++ {
		var st synth.Stats
		res, st, err = synth.SolveConcolicSessionCtx(ctx, spec.Problem, spec.Examples, limits, spec.Session)
		stats.Concrete.Enumerated += st.Concrete.Enumerated
		stats.Concrete.Kept += st.Concrete.Kept
		stats.Concrete.Restarts += st.Concrete.Restarts
		if st.Concrete.MaxSizeSeen > stats.Concrete.MaxSizeSeen {
			stats.Concrete.MaxSizeSeen = st.Concrete.MaxSizeSeen
		}
		stats.BankReuses += st.BankReuses
		stats.SMTQueries += st.SMTQueries
		stats.SMTClauses += st.SMTClauses
		stats.SMTClausesReused += st.SMTClausesReused
		stats.Iterations += st.Iterations
		stats.Elapsed += st.Elapsed
		stats.Trace = append(stats.Trace, st.Trace...)
		out.Retries = a
		if err == nil {
			if e.cfg.Cache != nil {
				e.cfg.Cache.Put(key, CacheEntry{Expr: res, Stats: stats})
			}
			return res, stats, out, nil
		}
		// Retry only makes sense when the bounded search came up empty;
		// inconsistent example sets and cancellations are final.
		if a+1 >= attempts || !errors.Is(err, synth.ErrNoExpression) || ctx.Err() != nil {
			return nil, stats, out, err
		}
		limits = growLimits(limits)
	}
}
