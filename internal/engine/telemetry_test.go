package engine

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestMultiSinkConcurrent drives a MultiSink fanning out to a JSON sink
// and a CollectSink from many goroutines at once — the engine's actual
// write topology under -stats — and checks no event is lost or torn.
// Run with -race, this is the regression test for sink thread safety.
func TestMultiSinkConcurrent(t *testing.T) {
	var sb lockedBuilder
	var collected []Event
	sink := MultiSink(NewJSONSink(&sb), CollectSink(&collected), nil)

	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sink(Event{Type: "job_end", Job: "j", Worker: w + 1, Candidates: int64(i)})
			}
		}(w)
	}
	wg.Wait()

	if len(collected) != workers*perWorker {
		t.Errorf("collected %d events, want %d", len(collected), workers*perWorker)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != workers*perWorker {
		t.Fatalf("got %d JSON lines, want %d", len(lines), workers*perWorker)
	}
	for _, ln := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("torn line %q: %v", ln, err)
		}
		if ev.Worker < 1 || ev.Worker > workers {
			t.Fatalf("worker = %d out of range", ev.Worker)
		}
	}
}

// TestEventWorkerOmitEmpty locks in the 1-based worker numbering:
// engine-level events carry no worker field at all, while every job
// event carries a positive one (a 0-based scheme would silently drop
// worker 0's field too).
func TestEventWorkerOmitEmpty(t *testing.T) {
	raw, err := json.Marshal(Event{Type: "engine_start", Workers: 2, Jobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"worker"`) {
		t.Errorf("engine_start should omit worker: %s", raw)
	}
	raw, err = json.Marshal(Event{Type: "job_start", Job: "j", Worker: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"worker":1`) {
		t.Errorf("job_start should carry worker: %s", raw)
	}
}

// TestRunJobEventWorkersOneBased runs real jobs and asserts every
// job_start/job_end reports a worker in 1..N.
func TestRunJobEventWorkersOneBased(t *testing.T) {
	var events []Event
	logs := map[string]*[]string{"a": {}, "b": {}, "c": {}}
	jobs := chainJobs(logs)
	if _, err := New(Config{Workers: 2, Sink: CollectSink(&events)}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		switch ev.Type {
		case "job_start", "job_end":
			if ev.Worker < 1 || ev.Worker > 2 {
				t.Errorf("%s worker = %d, want 1..2", ev.Type, ev.Worker)
			}
		case "engine_start", "engine_end":
			if ev.Worker != 0 {
				t.Errorf("%s worker = %d, want 0 (absent)", ev.Type, ev.Worker)
			}
		}
	}
}
