// Package engine is a concurrent synthesis-job engine: it executes a DAG
// of expression-inference jobs (the per-primed-variable and per-guard
// sub-problems that §5 skeleton completion decomposes into) on a bounded
// worker pool, with cooperative cancellation, cross-job memoization, a
// retry-with-larger-limits robustness policy, and a structured telemetry
// stream.
//
// Scheduling is deterministic by construction: jobs are identified by
// their position in the plan (the slice passed to Run), dependencies may
// only point backwards, and the ready queue is a min-heap on plan index.
// With Workers == 1 the engine therefore executes jobs in exactly plan
// order — byte-identical to a hand-written sequential loop — while with
// more workers any topological interleaving may occur; job results are
// functions of their declared inputs only, so the computed expressions are
// identical at every worker count.
package engine

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"transit/internal/obs"
)

// Job is one schedulable unit of work: typically a single SolveConcolic
// problem, but any closure honoring the context works. Jobs are created by
// the planner, wired with Deps, and passed to Engine.Run; the zero value
// of the bookkeeping fields is correct.
type Job struct {
	// Label identifies the job in telemetry (e.g. "guard Dir(EXCLUSIVE,ReqNet)#1").
	Label string
	// Kind classifies the job ("guard", "update", "check", ...).
	Kind string
	// Deps are jobs that must complete before this one starts. Every dep
	// must appear earlier than the job itself in the slice given to Run.
	Deps []*Job
	// Run does the work. It must honor ctx cancellation. It may write the
	// telemetry fields below on its own job (the engine reads them only
	// after Run returns).
	Run func(ctx context.Context) error

	// Telemetry fields, set by Run before returning.

	// CacheHit records that the job's result came from the memo cache.
	CacheHit bool
	// DiskHit records that the hit was served by the persistent backend
	// rather than the in-memory tier.
	DiskHit bool
	// CacheWait is the wall time the job spent in cache lookups.
	CacheWait time.Duration
	// SolveWait is the wall time the job spent in the synthesizer.
	SolveWait time.Duration
	// Candidates is the number of candidate expressions enumerated.
	Candidates int64
	// SMTQueries is the number of SMT queries issued.
	SMTQueries int
	// ClausesReused is the number of cached-circuit clauses the job's
	// incremental SMT session reused instead of re-encoding.
	ClausesReused int64
	// Iterations is the number of CEGIS iterations taken.
	Iterations int
	// Retries is the number of extra attempts the retry policy spent.
	Retries int

	// Results, set by the engine.

	// Err is the job's outcome: nil on success, ErrSkipped when a
	// dependency failed, the context's error when cancelled before start.
	Err error
	// Duration is the wall-clock time spent in Run.
	Duration time.Duration

	id      int
	pending int
	revDeps []*Job
}

// ErrSkipped marks a job that never ran because a dependency failed.
var ErrSkipped = errors.New("engine: job skipped: dependency failed")

// RetryPolicy grows a failed job's search limits and retries it. The zero
// value disables retries.
type RetryPolicy struct {
	// Attempts is the total number of tries per job; values <= 1 mean a
	// single attempt (no retry).
	Attempts int
}

// Config configures an Engine.
type Config struct {
	// Workers is the pool size; values <= 0 mean 1. Workers == 1
	// reproduces sequential plan-order execution exactly.
	Workers int
	// EnumWorkers is the per-solve tier-parallel enumeration fan-out
	// (synth.Limits.EnumWorkers), applied to specs that leave it unset.
	// Values <= 0 mean 1 (sequential tiers). The two pools multiply —
	// Workers jobs may each run EnumWorkers enumeration goroutines — so
	// callers sharing a machine budget should split it between them.
	// Enumeration results are worker-count-invariant, so this never
	// affects answers or the memoization key.
	EnumWorkers int
	// Portfolio races this many solver configurations per cache-miss solve
	// (see SolveConcolic), applied to specs whose Limits leave it unset.
	// Values <= 1 disable racing. Like EnumWorkers it is an execution
	// strategy, not part of the problem, and is excluded from the
	// memoization key.
	Portfolio int
	// Timeout bounds a whole Run; 0 means none.
	Timeout time.Duration
	// JobTimeout bounds each individual job; 0 means none.
	JobTimeout time.Duration
	// Retry is the retry-with-larger-limits policy applied by the
	// memoized solver (see Engine.SolveConcolic).
	Retry RetryPolicy
	// Cache is the cross-job memoization cache; nil disables memoization.
	Cache *Cache
	// Sink receives telemetry events; nil disables telemetry.
	Sink Sink
}

// Engine executes job DAGs. It is safe to reuse across Runs (the cache
// persists across them); a single Run is itself concurrent internally, but
// distinct Runs on one Engine must not overlap.
type Engine struct {
	cfg Config

	// run-scoped state
	mu        sync.Mutex
	cond      *sync.Cond
	ready     jobHeap
	remaining int
	busy      time.Duration
}

// New creates an engine from a config.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	e := &Engine{cfg: cfg}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Workers reports the configured pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Cache returns the engine's memoization cache (nil when disabled).
func (e *Engine) Cache() *Cache { return e.cfg.Cache }

// RunStats summarizes one Run for callers and telemetry.
type RunStats struct {
	Workers     int           `json:"workers"`
	Jobs        int           `json:"jobs"`
	Failed      int           `json:"failed"`
	Skipped     int           `json:"skipped"`
	CacheHits   int           `json:"cache_hits"`
	Wall        time.Duration `json:"-"`
	Busy        time.Duration `json:"-"`
	WallMS      float64       `json:"wall_ms"`
	BusyMS      float64       `json:"busy_ms"`
	Utilization float64       `json:"utilization"`
}

// Run executes the DAG. Jobs must be topologically ordered: every Dep of
// jobs[i] must be some jobs[j] with j < i. Run blocks until every job has
// either run or been skipped, and returns the first error in plan order
// (preferring real failures over cancellation/skip markers), or nil.
func (e *Engine) Run(ctx context.Context, jobs []*Job) (RunStats, error) {
	start := time.Now()
	if e.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.Timeout)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Index the plan and wire reverse dependencies.
	for i, j := range jobs {
		j.id = i
		j.pending = len(j.Deps)
		j.revDeps = nil
		j.Err = nil
	}
	for _, j := range jobs {
		for _, d := range j.Deps {
			if d.id >= j.id || jobs[d.id] != d {
				return RunStats{}, fmt.Errorf("engine: job %d (%s) depends on job not planned before it", j.id, j.Label)
			}
			d.revDeps = append(d.revDeps, j)
		}
	}

	e.mu.Lock()
	e.ready = e.ready[:0]
	e.remaining = len(jobs)
	e.busy = 0
	for _, j := range jobs {
		if j.pending == 0 {
			heap.Push(&e.ready, j)
		}
	}
	e.mu.Unlock()

	e.emit(Event{Type: "engine_start", Workers: e.cfg.Workers, Jobs: len(jobs)})
	ctx, runSpan := obs.Start(ctx, "engine.run",
		obs.Int("workers", e.cfg.Workers), obs.Int("jobs", len(jobs)))
	rs := registerRun(e.cfg.Workers, len(jobs))
	defer rs.unregister()

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			e.work(ctx, cancel, worker, rs)
		}(w)
	}
	wg.Wait()

	stats := RunStats{Workers: e.cfg.Workers, Jobs: len(jobs), Wall: time.Since(start), Busy: e.busy}
	stats.WallMS = float64(stats.Wall) / float64(time.Millisecond)
	stats.BusyMS = float64(stats.Busy) / float64(time.Millisecond)
	if stats.Wall > 0 {
		stats.Utilization = float64(stats.Busy) / (float64(stats.Wall) * float64(e.cfg.Workers))
	}
	var first, firstAny error
	for _, j := range jobs {
		if j.CacheHit {
			stats.CacheHits++
		}
		if j.Err == nil {
			continue
		}
		if errors.Is(j.Err, ErrSkipped) {
			stats.Skipped++
		} else {
			stats.Failed++
		}
		if firstAny == nil {
			firstAny = j.Err
		}
		if first == nil && !errors.Is(j.Err, ErrSkipped) && !errors.Is(j.Err, context.Canceled) {
			first = j.Err
		}
	}
	err := first
	if err == nil {
		err = firstAny
	}
	ev := Event{Type: "engine_end", Workers: stats.Workers, Jobs: stats.Jobs,
		Failed: stats.Failed, Skipped: stats.Skipped, CacheHits: stats.CacheHits,
		DurationMS: stats.WallMS, Utilization: stats.Utilization}
	if c := e.cfg.Cache; c != nil {
		hits, misses := c.Counters()
		ev.CacheHits, ev.CacheMisses = int(hits), int(misses)
	}
	if err != nil {
		ev.Error = err.Error()
	}
	e.emit(ev)
	runSpan.SetAttr(obs.Int("failed", stats.Failed), obs.Int("skipped", stats.Skipped),
		obs.Int("cache_hits", stats.CacheHits), obs.Float("utilization", stats.Utilization))
	if err != nil {
		runSpan.SetAttr(obs.Str("error", err.Error()))
	}
	runSpan.End()
	if reg := obs.MetricsFrom(ctx); reg != nil {
		reg.Counter("engine.jobs").Add(int64(stats.Jobs))
		reg.Counter("engine.cache_hits").Add(int64(stats.CacheHits))
	}
	return stats, err
}

// work is one worker's loop: pop the lowest-id ready job, execute it (or
// skip it when a dependency failed / the run is cancelled), release its
// dependents.
func (e *Engine) work(ctx context.Context, cancel context.CancelFunc, worker int, rs *runState) {
	for {
		e.mu.Lock()
		for len(e.ready) == 0 && e.remaining > 0 {
			e.cond.Wait()
		}
		if e.remaining == 0 {
			e.mu.Unlock()
			e.cond.Broadcast()
			return
		}
		j := heap.Pop(&e.ready).(*Job)
		e.mu.Unlock()

		rs.jobStarted(j, worker+1)
		j.Err = e.execute(ctx, j, worker)
		rs.jobEnded(j, j.Err != nil)
		if j.Err != nil {
			cancel() // fail fast: stop in-flight siblings
		}

		e.mu.Lock()
		e.remaining--
		e.busy += j.Duration
		for _, d := range j.revDeps {
			d.pending--
			if d.pending == 0 {
				heap.Push(&e.ready, d)
			}
		}
		e.mu.Unlock()
		e.cond.Broadcast()
	}
}

// execute runs one job, honoring skip markers, cancellation, and the
// per-job timeout, and emits its telemetry events.
func (e *Engine) execute(ctx context.Context, j *Job, worker int) error {
	for _, d := range j.Deps {
		if d.Err != nil {
			return fmt.Errorf("%w (%s)", ErrSkipped, d.Label)
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	e.emit(Event{Type: "job_start", Job: j.Label, Kind: j.Kind, Worker: worker + 1})
	jctx := ctx
	if e.cfg.JobTimeout > 0 {
		var jcancel context.CancelFunc
		jctx, jcancel = context.WithTimeout(ctx, e.cfg.JobTimeout)
		defer jcancel()
	}
	// Each worker gets its own display track, so concurrent jobs render
	// as parallel rows in Perfetto and never overlap within a row.
	jctx = obs.WithTrack(jctx, worker+1)
	jctx, span := obs.Start(jctx, "engine.job",
		obs.Str("job", j.Label), obs.Str("kind", j.Kind), obs.Int("worker", worker+1))
	start := time.Now()
	err := j.Run(jctx)
	j.Duration = time.Since(start)
	span.SetAttr(obs.Bool("cache_hit", j.CacheHit), obs.Int64("candidates", j.Candidates),
		obs.Int("smt_queries", j.SMTQueries), obs.Int64("clauses_reused", j.ClausesReused),
		obs.Int("cegis_iterations", j.Iterations), obs.Int("retries", j.Retries))
	if err != nil {
		span.SetAttr(obs.Str("error", err.Error()))
	}
	span.End()
	ev := Event{Type: "job_end", Job: j.Label, Kind: j.Kind, Worker: worker + 1,
		DurationMS: float64(j.Duration) / float64(time.Millisecond),
		CacheHit:   j.CacheHit, Candidates: j.Candidates,
		SMTQueries: j.SMTQueries, ClausesReused: j.ClausesReused,
		Iterations: j.Iterations, Retries: j.Retries}
	if err != nil {
		ev.Error = err.Error()
	}
	e.emit(ev)
	return err
}

func (e *Engine) emit(ev Event) {
	if e.cfg.Sink != nil {
		e.cfg.Sink(ev)
	}
}

// jobHeap is a min-heap of jobs on plan index, so ready jobs are claimed
// in plan order (the whole determinism story at Workers == 1).
type jobHeap []*Job

func (h jobHeap) Len() int            { return len(h) }
func (h jobHeap) Less(i, j int) bool  { return h[i].id < h[j].id }
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
