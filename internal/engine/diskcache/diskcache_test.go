package diskcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func val(i int) []byte { return []byte(fmt.Sprintf(`{"payload":%d}`, i)) }
func key(i int) string { return fmt.Sprintf("%064x", i) }

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Put(key(i), val(i))
	}
	for i := 0; i < 100; i++ {
		got, ok := s.Get(key(i))
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		if !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d: got %s want %s", i, got, val(i))
		}
	}
	if _, ok := s.Get(key(1000)); ok {
		t.Fatal("absent key reported present")
	}
}

func TestReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 50; i++ {
		s.Put(key(i), val(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen rides the index file.
	s2 := open(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != 50 {
		t.Fatalf("after clean reopen: %d entries, want 50", s2.Len())
	}
	for i := 0; i < 50; i++ {
		got, ok := s2.Get(key(i))
		if !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d lost across reopen", i)
		}
	}
}

func TestReopenWithoutIndexScans(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 50; i++ {
		s.Put(key(i), val(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash after the writes but before a clean Close: the
	// index file is gone and the scan path must recover everything.
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != 50 {
		t.Fatalf("after scan reopen: %d entries, want 50", s2.Len())
	}
}

// TestCrashSafeAppend truncates the log mid-record — the torn tail a
// crash during an append leaves — and checks that reopening recovers
// every whole record, drops the torn one, and appends cleanly after it.
func TestCrashSafeAppend(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 10; i++ {
		s.Put(key(i), val(i))
	}
	s.Close()
	_ = os.Remove(filepath.Join(dir, indexName))

	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	seg := segs[len(segs)-1]
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop half of the final record off.
	if err := os.Truncate(seg, st.Size()-20); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != 9 {
		t.Fatalf("after torn-tail recovery: %d entries, want 9", s2.Len())
	}
	for i := 0; i < 9; i++ {
		if _, ok := s2.Get(key(i)); !ok {
			t.Fatalf("whole record %d lost to recovery", i)
		}
	}
	if _, ok := s2.Get(key(9)); ok {
		t.Fatal("torn record served")
	}
	// The tail was truncated back, so a fresh append lands on a record
	// boundary and survives another reopen.
	s2.Put(key(9), val(9))
	s2.Close()
	_ = os.Remove(filepath.Join(dir, indexName))
	s3 := open(t, dir, Options{})
	defer s3.Close()
	if got, ok := s3.Get(key(9)); !ok || !bytes.Equal(got, val(9)) {
		t.Fatal("append after recovery lost")
	}
}

// TestCorruptRecordIgnored flips bytes inside a record's value; the
// checksum must fail and recovery must stop at the corruption.
func TestCorruptRecordIgnored(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 5; i++ {
		s.Put(key(i), val(i))
	}
	s.Close()
	_ = os.Remove(filepath.Join(dir, indexName))

	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload of the second record.
	lines := bytes.SplitAfter(data, []byte("\n"))
	lines[1] = bytes.Replace(lines[1], []byte("payload"), []byte("pwnload"), 1)
	if err := os.WriteFile(segs[0], bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.Get(key(0)); !ok {
		t.Fatal("record before corruption lost")
	}
	if _, ok := s2.Get(key(1)); ok {
		t.Fatal("corrupt record served")
	}
}

// TestLRUEviction fills the store past its cap and checks that the
// least-recently-used entries (and only those) are gone.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Records are ~100 bytes; cap at roughly 20 of them.
	s := open(t, dir, Options{MaxBytes: 2000, SegmentBytes: 500})
	defer s.Close()
	n := 60
	for i := 0; i < n; i++ {
		s.Put(key(i), val(i))
		// Keep key 0 hot so recency, not insertion order, decides.
		if _, ok := s.Get(key(0)); !ok && i < 10 {
			t.Fatalf("hot key evicted early at %d", i)
		}
	}
	st := s.Stats()
	if st.LiveBytes > 2000 {
		t.Fatalf("live bytes %d over cap", st.LiveBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("most-recently-used key evicted")
	}
	if _, ok := s.Get(key(n - 1)); !ok {
		t.Fatal("newest key evicted")
	}
	// The coldest middle keys must be gone.
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("cold key survived past the cap")
	}
	// Compaction must have reclaimed dead segments: file bytes stay within
	// a few segments of the live set rather than growing with n.
	if st.FileBytes > 4*2000 {
		t.Fatalf("file bytes %d not reclaimed (live %d)", st.FileBytes, st.LiveBytes)
	}
	if st.Compactions == 0 {
		t.Fatal("no compactions recorded")
	}
}

// TestSegmentRotationAndCompactionKeepsData churns the same keys with
// rotation-sized payloads and verifies every live key still reads back
// after compactions.
func TestSegmentRotationAndCompactionKeepsData(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxBytes: 1 << 20, SegmentBytes: 256})
	defer s.Close()
	for i := 0; i < 200; i++ {
		s.Put(key(i%20), val(i%20))
		if _, ok := s.Get(key(i % 7)); i >= 7 && !ok {
			t.Fatalf("key %d missing during churn", i%7)
		}
	}
	for i := 0; i < 20; i++ {
		got, ok := s.Get(key(i))
		if !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d wrong after churn", i)
		}
	}
}

func TestWritableProbe(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Writable(); err != nil {
		t.Fatalf("fresh store not writable: %v", err)
	}
	// The probe must not leave scratch files behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) > 0 && e.Name()[0] == '.' {
			t.Fatalf("probe left %s behind", e.Name())
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Writable(); err == nil {
		t.Fatal("closed store reports writable")
	}
}
