// Package diskcache is the persistent tier behind the engine's memo
// cache: a content-addressed, disk-backed key-value store of wire-encoded
// solve results, shared across engine runs and across process restarts.
//
// Layout: the directory holds numbered NDJSON segment files
// (seg-000001.ndjson, …). Each record is one line
//
//	{"key":"<hex sha-256>","crc":"<crc32c of val>","val":{…}}
//
// appended to the active segment in a single write. Appends are
// crash-safe by construction: a record is visible only if its line parses
// and its checksum matches, so a torn final write is detected on reopen
// and the file is truncated back to the last good record. Keys are
// content hashes of the sub-problem (engine.SolveSpec.Key), which makes
// the store content-addressed: racing or repeated writers of one key
// always carry byte-equivalent payloads, and last-write-wins replay at
// recovery is sound.
//
// The in-memory index (key → segment/offset/length) is rebuilt by
// scanning the segments at Open; an index file written on clean Close
// short-circuits the scan when the segment files are provably unchanged.
// Total live bytes are capped: inserting past the cap evicts
// least-recently-used entries (eviction only drops index entries — the
// bytes die in place), and a sealed segment more than half dead is
// compacted by re-appending its live records to the active segment and
// deleting the file.
package diskcache

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"transit/internal/obs"
)

// Defaults for Options zero fields.
const (
	DefaultMaxBytes     = 256 << 20
	DefaultSegmentBytes = 4 << 20
)

const (
	segPrefix = "seg-"
	segSuffix = ".ndjson"
	indexName = "index.json"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Store.
type Options struct {
	// MaxBytes caps live (indexed) bytes; 0 means DefaultMaxBytes.
	MaxBytes int64
	// SegmentBytes is the rotation threshold for the active segment;
	// 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// Sync fsyncs every append. Off by default: the cache is a cache —
	// losing the tail of the log on power failure costs re-solving, not
	// correctness — and the checksum scan keeps a torn tail harmless.
	Sync bool
	// Metrics, when non-nil, receives the store's counters (diskcache.hits,
	// diskcache.misses, diskcache.puts, diskcache.evictions,
	// diskcache.compactions, diskcache.recovered_records,
	// diskcache.torn_tails), latency histograms (diskcache.lookup_ms,
	// diskcache.append_ms — append includes the fsync under Sync), and
	// size gauges (diskcache.entries, diskcache.live_bytes,
	// diskcache.file_bytes, diskcache.segments). Nil disables recording at
	// the cost of a nil check per site.
	Metrics *obs.Registry
}

// storeMetrics holds the hoisted metric handles; every field is nil (a
// no-op recorder) when Options.Metrics is nil.
type storeMetrics struct {
	hits, misses, puts          *obs.Counter
	evictions, compactions      *obs.Counter
	recoveredRecords, tornTails *obs.Counter
	lookupMS, appendMS          *obs.Histogram
	entries, liveBytes          *obs.Gauge
	fileBytes, segments         *obs.Gauge
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	return storeMetrics{
		hits:             reg.Counter("diskcache.hits"),
		misses:           reg.Counter("diskcache.misses"),
		puts:             reg.Counter("diskcache.puts"),
		evictions:        reg.Counter("diskcache.evictions"),
		compactions:      reg.Counter("diskcache.compactions"),
		recoveredRecords: reg.Counter("diskcache.recovered_records"),
		tornTails:        reg.Counter("diskcache.torn_tails"),
		lookupMS:         reg.Histogram("diskcache.lookup_ms"),
		appendMS:         reg.Histogram("diskcache.append_ms"),
		entries:          reg.Gauge("diskcache.entries"),
		liveBytes:        reg.Gauge("diskcache.live_bytes"),
		fileBytes:        reg.Gauge("diskcache.file_bytes"),
		segments:         reg.Gauge("diskcache.segments"),
	}
}

// record is the wire form of one NDJSON line.
type record struct {
	Key string          `json:"key"`
	CRC string          `json:"crc"`
	Val json.RawMessage `json:"val"`
}

// segment is one on-disk file.
type segment struct {
	id   int
	path string
	f    *os.File
	size int64 // file bytes
	live int64 // bytes of lines still referenced by the index
}

// entry is one index slot.
type entry struct {
	seg  *segment
	off  int64
	n    int64 // line length including trailing newline
	elem *list.Element
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Entries     int   `json:"entries"`
	LiveBytes   int64 `json:"live_bytes"`
	FileBytes   int64 `json:"file_bytes"`
	Segments    int   `json:"segments"`
	Evictions   int64 `json:"evictions"`
	Compactions int64 `json:"compactions"`
}

// Store is the disk-backed cache. It implements engine.CacheBackend and
// is safe for concurrent use by any number of front-ends in one process.
// Cross-process sharing is sequential: one writing process at a time owns
// a directory (the TRANSIT serve workflow — a daemon restart picks up the
// previous daemon's entries).
type Store struct {
	dir  string
	opts Options

	mu          sync.Mutex
	index       map[string]*entry
	lru         *list.List // front = most recently used; values are keys
	segs        map[int]*segment
	active      *segment
	liveBytes   int64
	evictions   int64
	compactions int64
	closed      bool

	met storeMetrics
}

// Open opens (creating if needed) the store in dir.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[string]*entry),
		lru:   list.New(),
		segs:  make(map[int]*segment),
		met:   newStoreMetrics(opts.Metrics),
	}
	if err := s.load(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.mu.Lock()
	s.updateGaugesLocked()
	s.mu.Unlock()
	return s, nil
}

// updateGaugesLocked publishes the store's current sizes to the gauges.
func (s *Store) updateGaugesLocked() {
	s.met.entries.Set(int64(len(s.index)))
	s.met.liveBytes.Set(s.liveBytes)
	var file int64
	for _, seg := range s.segs {
		file += seg.size
	}
	s.met.fileBytes.Set(file)
	s.met.segments.Set(int64(len(s.segs)))
}

// load opens every segment, recovers their records, and prepares the
// active segment for appends.
func (s *Store) load() error {
	names, err := filepath.Glob(filepath.Join(s.dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	ids := make([]int, 0, len(names))
	for _, name := range names {
		base := filepath.Base(name)
		var id int
		if _, err := fmt.Sscanf(base, segPrefix+"%d"+segSuffix, &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	idx := s.loadIndexFile(ids)
	for _, id := range ids {
		seg, err := s.openSegment(id)
		if err != nil {
			return err
		}
		s.segs[id] = seg
		if idx != nil {
			continue // index file vouches for this segment's layout
		}
		if err := s.recoverSegment(seg); err != nil {
			return err
		}
	}
	if idx != nil {
		s.installIndex(idx)
	}
	// The highest existing segment continues as the active one; with none,
	// the first append creates seg-000001.
	if len(ids) > 0 {
		s.active = s.segs[ids[len(ids)-1]]
	}
	// The index file is only trusted once: any crash between now and the
	// next clean Close must force a scan.
	_ = os.Remove(filepath.Join(s.dir, indexName))
	return nil
}

func (s *Store) openSegment(id int) (*segment, error) {
	path := s.segPath(id)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	return &segment{id: id, path: path, f: f, size: st.Size()}, nil
}

func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", segPrefix, id, segSuffix))
}

// recoverSegment scans one segment, indexing every valid record
// (later records override earlier ones — compaction and racing writers
// both rely on last-write-wins). The scan stops at the first malformed or
// checksum-failing line; everything from there on is a torn tail from a
// crash, and the file is truncated back to the last good record so the
// next append starts clean.
func (s *Store) recoverSegment(seg *segment) error {
	if _, err := seg.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	r := bufio.NewReaderSize(seg.f, 1<<16)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 && err == nil {
			var rec record
			if jerr := json.Unmarshal(line, &rec); jerr != nil || !rec.valid() {
				break
			}
			s.indexRecord(rec.Key, seg, off, int64(len(line)))
			s.met.recoveredRecords.Inc()
			off += int64(len(line))
			continue
		}
		// EOF with a partial line (no trailing newline) is a torn write;
		// EOF with nothing left is a clean end.
		break
	}
	if off < seg.size {
		if err := seg.f.Truncate(off); err != nil {
			return fmt.Errorf("diskcache: truncating torn tail of %s: %w", seg.path, err)
		}
		seg.size = off
		s.met.tornTails.Inc()
	}
	return nil
}

// valid checks the record's checksum.
func (r record) valid() bool {
	return r.Key != "" && r.CRC == crcHex(r.Val)
}

func crcHex(b []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(b, castagnoli))
}

// indexRecord installs one recovered record, displacing any earlier
// version of the key.
func (s *Store) indexRecord(key string, seg *segment, off, n int64) {
	if old, ok := s.index[key]; ok {
		old.seg.live -= old.n
		s.liveBytes -= old.n
		s.lru.Remove(old.elem)
	}
	e := &entry{seg: seg, off: off, n: n}
	e.elem = s.lru.PushFront(key)
	s.index[key] = e
	seg.live += n
	s.liveBytes += n
}

// indexFile is the clean-shutdown fast path: the index plus the segment
// sizes it describes. A reopen whose directory matches the recorded sizes
// exactly can trust the offsets without scanning.
type indexFile struct {
	Version  int              `json:"version"`
	SegSizes map[string]int64 `json:"seg_sizes"` // id (decimal) → file size
	Entries  []indexFileEntry `json:"entries"`   // in LRU order, oldest first
}

type indexFileEntry struct {
	Key string `json:"key"`
	Seg int    `json:"seg"`
	Off int64  `json:"off"`
	N   int64  `json:"n"`
}

// loadIndexFile reads and validates the index file against the discovered
// segment ids; nil means "scan instead".
func (s *Store) loadIndexFile(ids []int) *indexFile {
	data, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if err != nil {
		return nil
	}
	var idx indexFile
	if json.Unmarshal(data, &idx) != nil || idx.Version != 1 {
		return nil
	}
	if len(idx.SegSizes) != len(ids) {
		return nil
	}
	for _, id := range ids {
		st, err := os.Stat(s.segPath(id))
		if err != nil || idx.SegSizes[fmt.Sprint(id)] != st.Size() {
			return nil
		}
	}
	return &idx
}

// installIndex replays a validated index file into the in-memory maps.
func (s *Store) installIndex(idx *indexFile) {
	for _, e := range idx.Entries {
		seg, ok := s.segs[e.Seg]
		if !ok || e.Off+e.N > seg.size {
			continue
		}
		s.indexRecord(e.Key, seg, e.Off, e.N)
	}
}

// writeIndexFile persists the current index for the clean-reopen fast
// path. Failures are ignored: the scan path recovers everything.
func (s *Store) writeIndexFile() {
	idx := indexFile{Version: 1, SegSizes: map[string]int64{}}
	for id, seg := range s.segs {
		idx.SegSizes[fmt.Sprint(id)] = seg.size
	}
	for elem := s.lru.Back(); elem != nil; elem = elem.Prev() {
		key := elem.Value.(string)
		e := s.index[key]
		idx.Entries = append(idx.Entries, indexFileEntry{Key: key, Seg: e.seg.id, Off: e.off, N: e.n})
	}
	data, err := json.Marshal(idx)
	if err != nil {
		return
	}
	tmp := filepath.Join(s.dir, indexName+".tmp")
	if os.WriteFile(tmp, data, 0o644) == nil {
		_ = os.Rename(tmp, filepath.Join(s.dir, indexName))
	}
}

// Get returns the encoded entry for key, if present and intact. A record
// that fails re-validation (bit rot, foreign truncation) is dropped from
// the index and reported as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	start := time.Now()
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
		s.met.lookupMS.Observe(time.Since(start))
	}()
	e, ok := s.index[key]
	if !ok || s.closed {
		s.met.misses.Inc()
		return nil, false
	}
	buf := make([]byte, e.n)
	if _, err := e.seg.f.ReadAt(buf, e.off); err != nil {
		s.dropLocked(key, e)
		s.updateGaugesLocked()
		s.met.misses.Inc()
		return nil, false
	}
	var rec record
	if json.Unmarshal(buf, &rec) != nil || rec.Key != key || !rec.valid() {
		s.dropLocked(key, e)
		s.updateGaugesLocked()
		s.met.misses.Inc()
		return nil, false
	}
	s.lru.MoveToFront(e.elem)
	s.met.hits.Inc()
	return rec.Val, true
}

// Put appends the encoded entry for key. The store is content-addressed,
// so a key already present is only touched in the LRU order; persistence
// failures are swallowed (the entry just stays memory-only upstream).
func (s *Store) Put(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if e, ok := s.index[key]; ok {
		s.lru.MoveToFront(e.elem)
		return
	}
	start := time.Now()
	seg, off, n, err := s.appendLocked(key, val)
	s.met.appendMS.Observe(time.Since(start))
	if err != nil {
		return
	}
	s.met.puts.Inc()
	s.indexRecord(key, seg, off, n)
	s.evictLocked()
	s.compactLocked()
	s.updateGaugesLocked()
}

// appendLocked writes one record line to the active segment, rotating
// first when the line would overflow it.
func (s *Store) appendLocked(key string, val []byte) (*segment, int64, int64, error) {
	line, err := json.Marshal(record{Key: key, CRC: crcHex(val), Val: val})
	if err != nil {
		return nil, 0, 0, err
	}
	line = append(line, '\n')
	if s.active == nil || (s.active.size > 0 && s.active.size+int64(len(line)) > s.opts.SegmentBytes) {
		if err := s.rotateLocked(); err != nil {
			return nil, 0, 0, err
		}
	}
	seg := s.active
	off := seg.size
	if _, err := seg.f.WriteAt(line, off); err != nil {
		// A partial write leaves a torn tail; truncate back so the next
		// append does not interleave with garbage.
		_ = seg.f.Truncate(off)
		return nil, 0, 0, err
	}
	if s.opts.Sync {
		_ = seg.f.Sync()
	}
	seg.size += int64(len(line))
	return seg, off, int64(len(line)), nil
}

func (s *Store) rotateLocked() error {
	next := 1
	if s.active != nil {
		next = s.active.id + 1
	}
	seg, err := s.openSegment(next)
	if err != nil {
		return err
	}
	s.segs[next] = seg
	s.active = seg
	return nil
}

// evictLocked enforces the live-byte cap by dropping least-recently-used
// entries. The bytes stay in their segments until compaction reclaims
// them.
func (s *Store) evictLocked() {
	for s.liveBytes > s.opts.MaxBytes && s.lru.Len() > 1 {
		elem := s.lru.Back()
		key := elem.Value.(string)
		s.dropLocked(key, s.index[key])
		s.evictions++
		s.met.evictions.Inc()
	}
}

func (s *Store) dropLocked(key string, e *entry) {
	delete(s.index, key)
	s.lru.Remove(e.elem)
	e.seg.live -= e.n
	s.liveBytes -= e.n
}

// compactLocked rewrites sealed segments that are more than half dead:
// their live records are re-appended to the active segment (keeping their
// index slots and LRU positions) and the file is deleted.
func (s *Store) compactLocked() {
	for id, seg := range s.segs {
		if seg == s.active || seg.live*2 >= seg.size {
			continue
		}
		if seg.live > 0 {
			s.rewriteLocked(seg)
		}
		if seg.live == 0 {
			seg.f.Close()
			_ = os.Remove(seg.path)
			delete(s.segs, id)
			s.compactions++
			s.met.compactions.Inc()
		}
	}
}

// rewriteLocked moves every live record of seg into the active segment.
func (s *Store) rewriteLocked(seg *segment) {
	// Collect this segment's live keys first: indexRecord mutates the
	// index while we move them.
	var keys []string
	for key, e := range s.index {
		if e.seg == seg {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys) // deterministic rewrite order
	for _, key := range keys {
		e := s.index[key]
		buf := make([]byte, e.n)
		if _, err := e.seg.f.ReadAt(buf, e.off); err != nil {
			s.dropLocked(key, e)
			continue
		}
		var rec record
		if json.Unmarshal(buf, &rec) != nil || !rec.valid() {
			s.dropLocked(key, e)
			continue
		}
		nseg, off, n, err := s.appendLocked(key, rec.Val)
		if err != nil {
			return // keep the old record; the segment stays until it works
		}
		// Move the slot without disturbing its LRU position.
		e.seg.live -= e.n
		s.liveBytes -= e.n
		e.seg, e.off, e.n = nseg, off, n
		nseg.live += n
		s.liveBytes += n
	}
}

// Len reports the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Writable probes whether the store's directory still accepts writes by
// creating and removing a scratch file. The /readyz endpoint calls it: a
// disk-backed serve process whose cache volume went read-only (or full)
// should stop admitting jobs before solves start failing mid-run.
func (s *Store) Writable() error {
	s.mu.Lock()
	closed, dir := s.closed, s.dir
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("diskcache: store is closed")
	}
	f, err := os.CreateTemp(dir, ".writable-*")
	if err != nil {
		return fmt.Errorf("diskcache: %s not writable: %w", dir, err)
	}
	name := f.Name()
	err = f.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	if err != nil {
		return fmt.Errorf("diskcache: %s not writable: %w", dir, err)
	}
	return nil
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Entries:     len(s.index),
		LiveBytes:   s.liveBytes,
		Segments:    len(s.segs),
		Evictions:   s.evictions,
		Compactions: s.compactions,
	}
	for _, seg := range s.segs {
		st.FileBytes += seg.size
	}
	return st
}

// Close writes the reopen index and releases every file. The store
// rejects use after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.writeIndexFile()
	s.closeFiles()
	return nil
}

func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		if seg.f != nil {
			seg.f.Close()
		}
	}
}
