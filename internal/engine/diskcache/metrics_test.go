package diskcache

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"transit/internal/obs"
)

// rmIndex removes the clean-close index so a reopen must scan.
func rmIndex(t *testing.T, dir string) {
	t.Helper()
	_ = os.Remove(filepath.Join(dir, indexName))
}

// tearTail chops n bytes off the end of path, simulating a torn write.
func tearTail(t *testing.T, path string, n int64) {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// metric is a shorthand counter read.
func metric(reg *obs.Registry, name string) int64 { return reg.Get(name) }

// gauge reads a gauge value from a snapshot by name (-1 when absent).
func gauge(reg *obs.Registry, name string) int64 {
	for _, g := range reg.Snapshot().Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return -1
}

func TestMetricsBasicCounts(t *testing.T) {
	reg := obs.NewRegistry()
	s := open(t, t.TempDir(), Options{Metrics: reg})
	defer s.Close()

	for i := 0; i < 10; i++ {
		s.Put(key(i), val(i))
	}
	for i := 0; i < 10; i++ {
		if _, ok := s.Get(key(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
	s.Get(key(999)) // miss

	if h := metric(reg, "diskcache.hits"); h != 10 {
		t.Errorf("hits = %d, want 10", h)
	}
	if m := metric(reg, "diskcache.misses"); m != 1 {
		t.Errorf("misses = %d, want 1", m)
	}
	if p := metric(reg, "diskcache.puts"); p != 10 {
		t.Errorf("puts = %d, want 10", p)
	}
	if e := gauge(reg, "diskcache.entries"); e != 10 {
		t.Errorf("entries gauge = %d, want 10", e)
	}
	if b := gauge(reg, "diskcache.live_bytes"); b <= 0 {
		t.Errorf("live_bytes gauge = %d, want > 0", b)
	}
	if n := gauge(reg, "diskcache.segments"); n != 1 {
		t.Errorf("segments gauge = %d, want 1", n)
	}
	snap := reg.Snapshot()
	for _, want := range []string{"diskcache.lookup_ms", "diskcache.append_ms"} {
		found := false
		for _, h := range snap.Histograms {
			if h.Name == want && h.Count > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("histogram %s missing or empty", want)
		}
	}
}

// TestMetricsConcurrentReadersWithCompaction is the satellite coverage:
// concurrent readers race Puts that force eviction and a compaction
// cycle; counters must come out monotone and consistent, with no data
// race (run under -race in CI).
func TestMetricsConcurrentReadersWithCompaction(t *testing.T) {
	reg := obs.NewRegistry()
	// Tight caps so the writer's churn forces rotation, eviction, and
	// compaction while readers hammer Get.
	s := open(t, t.TempDir(), Options{MaxBytes: 4 << 10, SegmentBytes: 1 << 10, Metrics: reg})
	defer s.Close()

	const readers = 4
	const rounds = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var prevHits, prevMiss int64
	var monoMu sync.Mutex
	mono := true
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Check stop only after the first lookup so every reader
			// records at least one hit or miss even when the writer
			// finishes all its rounds before this goroutine is first
			// scheduled.
			for i := 0; ; i++ {
				s.Get(key((r*31 + i) % 64))
				// Monotonicity probe: counters may only grow.
				monoMu.Lock()
				h, m := metric(reg, "diskcache.hits"), metric(reg, "diskcache.misses")
				if h < prevHits || m < prevMiss {
					mono = false
				}
				prevHits, prevMiss = h, m
				monoMu.Unlock()
				select {
				case <-stop:
					return
				default:
				}
			}
		}(r)
	}
	for i := 0; i < rounds; i++ {
		s.Put(key(i%64), val(i))
	}
	close(stop)
	wg.Wait()

	if !mono {
		t.Error("hit/miss counters regressed during concurrent load")
	}
	if metric(reg, "diskcache.evictions") == 0 {
		t.Error("no evictions recorded despite a 4KiB cap")
	}
	if metric(reg, "diskcache.compactions") == 0 {
		t.Error("no compactions recorded despite segment churn")
	}
	st := s.Stats()
	if metric(reg, "diskcache.evictions") != st.Evictions {
		t.Errorf("evictions counter %d != Stats().Evictions %d",
			metric(reg, "diskcache.evictions"), st.Evictions)
	}
	if metric(reg, "diskcache.compactions") != st.Compactions {
		t.Errorf("compactions counter %d != Stats().Compactions %d",
			metric(reg, "diskcache.compactions"), st.Compactions)
	}
	if got, want := gauge(reg, "diskcache.entries"), int64(st.Entries); got != want {
		t.Errorf("entries gauge %d != Stats().Entries %d", got, want)
	}
	if got, want := gauge(reg, "diskcache.live_bytes"), st.LiveBytes; got != want {
		t.Errorf("live_bytes gauge %d != Stats().LiveBytes %d", got, want)
	}
	if total := metric(reg, "diskcache.hits") + metric(reg, "diskcache.misses"); total == 0 {
		t.Error("readers recorded no lookups")
	}
}

// TestMetricsRecovery checks the reopen path: a torn tail increments
// diskcache.torn_tails and every replayed line counts as a recovered
// record.
func TestMetricsRecovery(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 20; i++ {
		s.Put(key(i), val(i))
	}
	seg := s.segPath(1)
	s.Close()

	// Remove the clean-close index and tear the segment's tail so reopen
	// must scan and truncate.
	rmIndex(t, dir)
	tearTail(t, seg, 3)

	reg := obs.NewRegistry()
	s2 := open(t, dir, Options{Metrics: reg})
	defer s2.Close()
	if n := metric(reg, "diskcache.recovered_records"); n == 0 || n >= 20 {
		t.Errorf("recovered_records = %d, want in (0, 20): the torn record must not count", n)
	}
	if n := metric(reg, "diskcache.torn_tails"); n != 1 {
		t.Errorf("torn_tails = %d, want 1", n)
	}
	if e := gauge(reg, "diskcache.entries"); int(e) != s2.Len() {
		t.Errorf("entries gauge %d != Len() %d after recovery", e, s2.Len())
	}
}

// TestMetricsNilRegistryIsNoop pins that a store without a registry works
// identically (the nil-recorder fast path).
func TestMetricsNilRegistryIsNoop(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	s.Put(key(1), val(1))
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("round trip failed without metrics")
	}
	s.Get(key(2))
}
