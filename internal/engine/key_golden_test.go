package engine

import (
	"testing"

	"transit/internal/expr"
	"transit/internal/synth"
)

// goldenSpec is a fixed, fully explicit solve spec covering every key
// ingredient: universe parameters (cache count, non-default width, a
// declared enum), vocabulary options, variables, output, a concolic
// example, and explicit limits.
func goldenSpec(t *testing.T) SolveSpec {
	t.Helper()
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := u.MustDeclareEnum("State", "INVALID", "SHARED", "MODIFIED")
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{
		Enums: []*expr.EnumType{st}, WithEnumConstants: true, WithoutEnumIte: true,
	})
	a := expr.V("a", expr.IntType)
	b := expr.V("b", expr.IntType)
	o := expr.V("o", expr.IntType)
	return SolveSpec{
		Problem: synth.Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, b}, Output: o},
		Examples: []synth.ConcolicExample{{
			Pre: expr.True(),
			Post: expr.And(expr.Ge(o, a), expr.And(expr.Ge(o, b),
				expr.Or(expr.Eq(o, a), expr.Eq(o, b)))),
		}},
		Limits: synth.Limits{MaxSize: 8},
	}
}

// TestSolveSpecKeyGolden pins the canonical cache key for the golden
// spec. With the disk-backed cache, SolveSpec.Key is a persistence and
// compatibility surface: entries written by one build are looked up by
// later builds, so any change to the key derivation silently orphans
// every existing cache (and, worse, an unintended collision could serve
// wrong expressions). If this test fails, either revert the accidental
// key drift, or — for a deliberate format change — update the golden
// value AND bump the codec wireVersion so stale disk entries are
// rejected rather than misread.
func TestSolveSpecKeyGolden(t *testing.T) {
	const golden = "1223ea59f358773bb923c836a819a76f89f29401a697a5e3bf7917fb2cab7ffc"
	if got := goldenSpec(t).Key(); got != golden {
		t.Fatalf("SolveSpec.Key drifted:\n got  %s\n want %s", got, golden)
	}
}

// TestSolveSpecKeyStableAcrossInstances rebuilds the same spec from
// scratch and demands the same key — the property cross-process cache
// sharing rests on.
func TestSolveSpecKeyStableAcrossInstances(t *testing.T) {
	if a, b := goldenSpec(t).Key(), goldenSpec(t).Key(); a != b {
		t.Fatalf("key not a pure function of the spec: %s vs %s", a, b)
	}
}
