package engine

import (
	"context"
	"testing"
)

// TestActiveRunsLifecycle covers the live-run registry: while a job is
// executing the registry reports it, and after Run returns the run is
// withdrawn.
func TestActiveRunsLifecycle(t *testing.T) {
	release := make(chan struct{})
	observed := make(chan []RunStatus, 1)
	j := &Job{Label: "probe", Kind: "test", Run: func(ctx context.Context) error {
		observed <- ActiveRuns()
		<-release
		return nil
	}}
	e := New(Config{Workers: 1})
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(context.Background(), []*Job{j})
		done <- err
	}()

	runs := <-observed
	if len(runs) != 1 {
		t.Fatalf("ActiveRuns mid-job = %d runs, want 1", len(runs))
	}
	r := runs[0]
	if r.Jobs != 1 || r.Workers != 1 || r.Done != 0 {
		t.Errorf("run status = %+v, want jobs=1 workers=1 done=0", r)
	}
	if len(r.Active) != 1 || r.Active[0].Job != "probe" || r.Active[0].Kind != "test" || r.Active[0].Worker != 1 {
		t.Errorf("active jobs = %+v, want one 'probe' on worker 1", r.Active)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if runs := ActiveRuns(); len(runs) != 0 {
		t.Errorf("ActiveRuns after Run = %+v, want empty", runs)
	}
}
