package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"transit/internal/engine/diskcache"
	"transit/internal/expr"
	"transit/internal/synth"
)

// codecSpec builds a spec against a fresh universe whose vocabulary and
// enum cover every wire node kind.
func codecSpec(post func(o, a *expr.Var, st *expr.EnumType) expr.Expr) SolveSpec {
	u := expr.NewUniverse(3)
	st := u.MustDeclareEnum("State", "INVALID", "SHARED", "MODIFIED")
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{
		Enums: []*expr.EnumType{st}, WithEnumConstants: true, WithoutEnumIte: true,
	})
	a := expr.V("a", expr.IntType)
	o := expr.V("o", expr.BoolType)
	return SolveSpec{
		Problem:  synth.Problem{U: u, Vocab: voc, Vars: []*expr.Var{a}, Output: o},
		Examples: []synth.ConcolicExample{{Pre: expr.True(), Post: post(o, a, st)}},
		Limits:   synth.Limits{MaxSize: 6},
	}
}

func TestEncodeDecodeEntryRoundTrip(t *testing.T) {
	spec := codecSpec(func(o, a *expr.Var, st *expr.EnumType) expr.Expr {
		return expr.Eq(o, expr.Ge(a, a))
	})
	u := spec.Problem.U
	st, _ := u.Enum("State")

	// An expression exercising vars, applies, and every constant kind.
	cases := []expr.Expr{
		spec.Problem.Vars[0],
		expr.Ge(spec.Problem.Vars[0], expr.IntC(u, 3)),
		expr.And(expr.True(), expr.Not(expr.False())),
		expr.Eq(expr.NewConst(expr.EnumVal(st, 2)), expr.NewConst(expr.EnumVal(st, 2))),
		expr.SetContains(expr.NewConst(expr.SetOf(0, 2)), expr.NewConst(expr.PIDVal(1))),
	}
	for i, e := range cases {
		if e.Type() != expr.BoolType && e.Type() != expr.IntType {
			t.Fatalf("case %d: unexpected type setup", i)
		}
		ent := CacheEntry{Expr: e, Stats: synth.Stats{
			Concrete:   synth.ConcreteStats{Enumerated: 42, Kept: 7, MaxSizeSeen: 5},
			SMTQueries: 3, Iterations: 2, SMTClauses: 99, SMTClausesReused: 12, BankReuses: 1,
		}}
		raw, err := EncodeEntry(ent)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		dec, ok := DecodeEntry(raw, spec)
		if !ok {
			t.Fatalf("case %d: decode failed for %s", i, e)
		}
		if dec.Expr.String() != e.String() {
			t.Fatalf("case %d: round-trip changed expression: %s vs %s", i, dec.Expr, e)
		}
		if dec.Stats.Concrete.Enumerated != 42 || dec.Stats.SMTQueries != 3 ||
			dec.Stats.SMTClausesReused != 12 || dec.Stats.BankReuses != 1 {
			t.Fatalf("case %d: stats mangled: %+v", i, dec.Stats)
		}
	}
}

// TestDecodeBindsToTargetUniverse encodes against one universe and
// decodes against a structurally identical but distinct one: every enum
// type and function pointer in the decoded expression must belong to the
// target, or downstream identity checks would blow up — the disk analogue
// of TestCacheHitsRehydrateAcrossUniverses.
func TestDecodeBindsToTargetUniverse(t *testing.T) {
	post := func(o, a *expr.Var, st *expr.EnumType) expr.Expr {
		return expr.Eq(o, expr.Ge(a, expr.IntC(nil, 0)))
	}
	_ = post
	mk := func() (SolveSpec, *expr.EnumType) {
		spec := codecSpec(func(o, a *expr.Var, st *expr.EnumType) expr.Expr {
			return expr.Eq(o, expr.Eq(a, a))
		})
		st, _ := spec.Problem.U.Enum("State")
		return spec, st
	}
	src, srcEnum := mk()
	dst, dstEnum := mk()
	if src.Key() != dst.Key() {
		t.Fatal("structurally identical specs must share a key")
	}

	e := expr.Eq(expr.NewConst(expr.EnumVal(srcEnum, 1)), expr.NewConst(expr.EnumVal(srcEnum, 1)))
	raw, err := EncodeEntry(CacheEntry{Expr: e})
	if err != nil {
		t.Fatal(err)
	}
	dec, ok := DecodeEntry(raw, dst)
	if !ok {
		t.Fatal("decode against sibling universe failed")
	}
	var check func(x expr.Expr)
	check = func(x expr.Expr) {
		if ty := x.Type(); ty.Kind == expr.KindEnum && ty.Enum != dstEnum {
			t.Fatalf("decoded node %s carries foreign enum type", x)
		}
		if ap, ok := x.(*expr.Apply); ok {
			for _, arg := range ap.Args {
				check(arg)
			}
		}
	}
	check(dec.Expr)
	if got := dec.Expr.Eval(dst.Problem.U, expr.Env{}); !got.Bool() {
		t.Fatal("decoded expression misevaluates")
	}
}

// TestDecodeRejectsDrift checks the miss-not-poison property: entries
// whose symbols do not exist in the target spec decode to a miss.
func TestDecodeRejectsDrift(t *testing.T) {
	spec := codecSpec(func(o, a *expr.Var, st *expr.EnumType) expr.Expr {
		return expr.Eq(o, expr.Eq(a, a))
	})
	for _, raw := range []string{
		`not json`,
		`{"version":99,"expr":{"var":"a","vt":"Int"}}`,                           // foreign version
		`{"version":1,"expr":{"var":"zz","vt":"Int"}}`,                           // unknown variable
		`{"version":1,"expr":{"var":"a","vt":"Bool"}}`,                           // type drift
		`{"version":1,"expr":{"fn":"frobnicate(Int) -> Int","args":[]}}`,         // unknown function
		`{"version":1,"expr":{"const":{"k":"enum","e":"Nope","n":0,"en":"X"}}}`,  // unknown enum
		`{"version":1,"expr":{"const":{"k":"enum","e":"State","n":9,"en":"X"}}}`, // ordinal range
		`{"version":1,"expr":{"const":{"k":"pid","n":77}}}`,                      // pid range
	} {
		if _, ok := DecodeEntry([]byte(raw), spec); ok {
			t.Fatalf("drifted entry decoded: %s", raw)
		}
	}
}

// TestCacheBackendReadThrough solves against one Cache front-end backed
// by a disk store, then reopens the directory under a second front-end
// in the same process: the second Fetch must be served from disk, with
// an identical expression and replayed stats.
func TestCacheBackendReadThrough(t *testing.T) {
	dir := t.TempDir()
	spec := maxSpec(expr.NewUniverse(3))

	store, err := diskcache.Open(dir, diskcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache1 := NewCacheWithBackend(store)
	eng1 := New(Config{Cache: cache1})
	e1, st1, out1, err := eng1.SolveConcolic(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Cached {
		t.Fatal("first solve must miss")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := diskcache.Open(dir, diskcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	cache2 := NewCacheWithBackend(store2)
	eng2 := New(Config{Cache: cache2})
	e2, st2, out2, err := eng2.SolveConcolic(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Cached || out2.Tier != TierDisk {
		t.Fatal("fresh front-end over a populated store must hit on disk")
	}
	if !expr.Equal(e1, e2) {
		t.Fatalf("persistent cache changed the answer: %s vs %s", e1, e2)
	}
	if st1.SMTQueries != st2.SMTQueries || st1.Concrete.Enumerated != st2.Concrete.Enumerated ||
		st1.Iterations != st2.Iterations {
		t.Fatalf("disk replay lost counters: %+v vs %+v", st1, st2)
	}
	if cache2.DiskHits() != 1 {
		t.Fatalf("DiskHits = %d, want 1", cache2.DiskHits())
	}
	// The disk hit is promoted to memory: a second Fetch stays in-process.
	if _, _, _, tier, ok := cache2.Fetch(spec); !ok || tier != TierMem {
		t.Fatalf("promoted entry missing or wrong tier %q", tier)
	}
	if cache2.DiskHits() != 1 {
		t.Fatalf("promotion did not stick: DiskHits = %d", cache2.DiskHits())
	}
}

// TestTwoFrontEndsSharedStoreRace hammers one shared disk store from two
// Cache front-ends concurrently — Put on one side, Fetch on the other —
// over a set of distinct specs. Run under -race this is the
// concurrent-sharing safety test for the whole stack.
func TestTwoFrontEndsSharedStoreRace(t *testing.T) {
	dir := t.TempDir()
	store, err := diskcache.Open(dir, diskcache.Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	front1 := NewCacheWithBackend(store)
	front2 := NewCacheWithBackend(store)

	// Distinct specs via distinct concrete constants in the example.
	specs := make([]SolveSpec, 24)
	for i := range specs {
		k := int64(i % 8)
		specs[i] = codecSpec(func(o, a *expr.Var, st *expr.EnumType) expr.Expr {
			return expr.Eq(o, expr.Ge(a, expr.IntC(expr.NewUniverse(3), k)))
		})
		// Distinguish further by MaxSize so all 24 keys differ.
		specs[i].Limits.MaxSize = 6 + i/8
	}
	entryFor := func(spec SolveSpec) CacheEntry {
		return CacheEntry{Expr: spec.Examples[0].Post, Stats: synth.Stats{SMTQueries: 1}}
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			front := front1
			if w%2 == 1 {
				front = front2
			}
			for round := 0; round < 30; round++ {
				spec := specs[(w+round)%len(specs)]
				if re, _, key, _, ok := front.Fetch(spec); ok {
					if re.String() != spec.Examples[0].Post.String() {
						t.Errorf("worker %d: wrong entry for %s", w, key)
						return
					}
				} else {
					front.Put(key, entryFor(spec))
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Everything written by either front-end is readable by both.
	for i, spec := range specs {
		if _, _, _, _, ok := front1.Fetch(spec); !ok {
			t.Fatalf("spec %d missing from front1", i)
		}
		if _, _, _, _, ok := front2.Fetch(spec); !ok {
			t.Fatalf("spec %d missing from front2", i)
		}
	}
	if store.Len() == 0 {
		t.Fatal("store empty after race")
	}
}

// TestBackendPutEncodablePayloads sanity-checks that every solver output
// shape the suite produces survives an encode (guarding the write-through
// path against silently memory-only entries).
func TestBackendPutEncodablePayloads(t *testing.T) {
	spec := maxSpec(expr.NewUniverse(3))
	eng := New(Config{Cache: NewCache()})
	e, st, _, err := eng.SolveConcolic(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeEntry(CacheEntry{Expr: e, Stats: st})
	if err != nil {
		t.Fatalf("solver output unencodable: %v", err)
	}
	if _, ok := DecodeEntry(raw, spec); !ok {
		t.Fatal("solver output undecodable")
	}
}

func TestDiskEntrySurvivesManySpecShapes(t *testing.T) {
	// A quick sweep over value kinds as output types.
	u := expr.NewUniverse(3)
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{WithSetLiterals: true})
	s := expr.V("s", expr.SetType)
	for i, tc := range []struct {
		out  expr.Type
		post func(o *expr.Var) expr.Expr
	}{
		{expr.SetType, func(o *expr.Var) expr.Expr { return expr.Eq(o, expr.SetUnion(s, s)) }},
		{expr.IntType, func(o *expr.Var) expr.Expr { return expr.Eq(o, expr.Card(s)) }},
	} {
		o := expr.V("o", tc.out)
		spec := SolveSpec{
			Problem:  synth.Problem{U: u, Vocab: voc, Vars: []*expr.Var{s}, Output: o},
			Examples: []synth.ConcolicExample{{Pre: expr.True(), Post: tc.post(o)}},
			Limits:   synth.Limits{MaxSize: 6},
		}
		eng := New(Config{Cache: NewCache()})
		e, st, _, err := eng.SolveConcolic(context.Background(), spec)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		raw, err := EncodeEntry(CacheEntry{Expr: e, Stats: st})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		dec, ok := DecodeEntry(raw, spec)
		if !ok || dec.Expr.String() != e.String() {
			t.Fatalf("case %d: round trip failed (%v)", i, ok)
		}
	}
}

func TestWireFormatExample(t *testing.T) {
	// Document (and pin loosely) the wire shape: a decoded example from a
	// hand-written literal keeps working even as the encoder evolves.
	spec := codecSpec(func(o, a *expr.Var, st *expr.EnumType) expr.Expr {
		return expr.Eq(o, expr.Eq(a, a))
	})
	raw := fmt.Sprintf(`{"version":%d,"expr":{"fn":"equals(Int, Int) -> Bool","args":[{"var":"a","vt":"Int"},{"const":{"k":"int","n":3}}]},"stats":{"smt_queries":5}}`, wireVersion)
	dec, ok := DecodeEntry([]byte(raw), spec)
	if !ok {
		t.Fatal("hand-written wire entry rejected")
	}
	if got := dec.Expr.String(); got != "equals(a, 3)" {
		t.Fatalf("decoded %s", got)
	}
	if dec.Stats.SMTQueries != 5 {
		t.Fatalf("stats lost: %+v", dec.Stats)
	}
}
