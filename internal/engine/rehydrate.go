package engine

import (
	"transit/internal/expr"
)

// Cache keys are structural (names, signatures, value sets), so a hit may
// come from an entry recorded against a *different* Universe instance —
// e.g. a fresh build of the same protocol, or a shared cache spanning
// protocol variants. Expressions, however, carry pointer identities:
// enum types, vocabulary *Funcs, and typed variables. Replaying a foreign
// expression verbatim would evaluate correctly (the carriers are equal by
// construction of the key) but fail every pointer-identity type check
// downstream. rehydrate translates a cached expression into the target
// spec's world: functions are re-bound by signature, variables by name,
// and enum types/ordinals by name. When the entry already belongs to the
// target universe the original nodes are returned unchanged (no
// allocation on the hot within-run path).
type rehydrator struct {
	u     *expr.Universe
	funcs map[string]*expr.Func
	vars  map[string]*expr.Var
}

func newRehydrator(spec SolveSpec) *rehydrator {
	r := &rehydrator{
		u:     spec.Problem.U,
		funcs: make(map[string]*expr.Func),
		vars:  make(map[string]*expr.Var),
	}
	for _, f := range spec.Problem.Vocab.Funcs() {
		r.funcs[f.String()] = f
	}
	for _, v := range spec.Problem.Vars {
		r.vars[v.Name] = v
	}
	r.vars[spec.Problem.Output.Name] = spec.Problem.Output
	return r
}

// rehydrate returns spec's-universe equivalent of e, or false when some
// symbol has no counterpart (a key collision; the caller then treats the
// lookup as a miss and re-solves). Rebuild panics (NewApply type checks)
// are likewise demoted to a miss: a stale entry must never kill a worker.
func (spec SolveSpec) rehydrate(e expr.Expr) (res expr.Expr, ok bool) {
	defer func() {
		if recover() != nil {
			res, ok = nil, false
		}
	}()
	return newRehydrator(spec).walk(e)
}

func (r *rehydrator) walk(e expr.Expr) (expr.Expr, bool) {
	switch n := e.(type) {
	case *expr.Var:
		tv, ok := r.vars[n.Name]
		if !ok || tv.VT.Kind != n.VT.Kind {
			return nil, false
		}
		return tv, true
	case *expr.Const:
		t := n.Val.Type()
		if t.Kind != expr.KindEnum {
			return n, true
		}
		te, ok := r.u.Enum(t.Enum.Name)
		if !ok {
			return nil, false
		}
		if te == t.Enum {
			return n, true
		}
		ord := n.Val.EnumOrd()
		if ord >= len(te.Values) || te.Values[ord] != t.Enum.Values[ord] {
			return nil, false
		}
		return expr.NewConst(expr.EnumVal(te, ord)), true
	case *expr.Apply:
		fn, ok := r.funcs[n.Fn.String()]
		if !ok {
			return nil, false
		}
		changed := fn != n.Fn
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			ra, ok := r.walk(a)
			if !ok {
				return nil, false
			}
			args[i] = ra
			if ra != a {
				changed = true
			}
		}
		if !changed {
			return n, true
		}
		return expr.NewApply(fn, args...), true
	}
	return nil, false
}
