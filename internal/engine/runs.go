package engine

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the engine's live-introspection surface: a process-wide
// registry of in-flight Runs and their currently executing jobs, read by
// the /runs endpoint of the obs introspection server. Engines register a
// run when Run starts and withdraw it when Run returns; within a run,
// workers mark jobs active around execute. The bookkeeping is one mutexed
// map update per job start/end — noise against the SMT solving a job
// performs — and exists whether or not anything is watching, so a server
// attached mid-run sees the full picture immediately.

// JobStatus describes one currently executing job.
type JobStatus struct {
	Run       uint64  `json:"run"`
	Job       string  `json:"job"`
	Kind      string  `json:"kind"`
	Worker    int     `json:"worker"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// RunStatus describes one in-flight engine Run and its active jobs.
type RunStatus struct {
	ID        uint64      `json:"run"`
	Workers   int         `json:"workers"`
	Jobs      int         `json:"jobs"`
	Done      int         `json:"done"`
	Failed    int         `json:"failed"`
	ElapsedMS float64     `json:"elapsed_ms"`
	Active    []JobStatus `json:"active,omitempty"`
}

// runState is the registry entry for one in-flight Run.
type runState struct {
	id      uint64
	workers int
	jobs    int
	started time.Time

	mu     sync.Mutex
	active map[*Job]jobEntry
	done   int
	failed int
}

type jobEntry struct {
	worker  int
	started time.Time
}

var (
	liveRunsMu sync.Mutex
	liveRuns   = map[uint64]*runState{}
	nextRunID  atomic.Uint64
)

func registerRun(workers, jobs int) *runState {
	rs := &runState{id: nextRunID.Add(1), workers: workers, jobs: jobs,
		started: time.Now(), active: map[*Job]jobEntry{}}
	liveRunsMu.Lock()
	liveRuns[rs.id] = rs
	liveRunsMu.Unlock()
	return rs
}

func (rs *runState) unregister() {
	liveRunsMu.Lock()
	delete(liveRuns, rs.id)
	liveRunsMu.Unlock()
}

func (rs *runState) jobStarted(j *Job, worker int) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.active[j] = jobEntry{worker: worker, started: time.Now()}
	rs.mu.Unlock()
}

func (rs *runState) jobEnded(j *Job, failed bool) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	delete(rs.active, j)
	rs.done++
	if failed {
		rs.failed++
	}
	rs.mu.Unlock()
}

// ActiveRuns snapshots every in-flight engine Run in this process, oldest
// first, each with its currently executing jobs sorted by worker. An
// empty slice means no engine is running (the pipeline is parsing, model
// checking, or idle).
func ActiveRuns() []RunStatus {
	liveRunsMu.Lock()
	states := make([]*runState, 0, len(liveRuns))
	for _, rs := range liveRuns {
		states = append(states, rs)
	}
	liveRunsMu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })

	now := time.Now()
	out := make([]RunStatus, 0, len(states))
	for _, rs := range states {
		st := RunStatus{ID: rs.id, Workers: rs.workers, Jobs: rs.jobs,
			ElapsedMS: float64(now.Sub(rs.started)) / float64(time.Millisecond)}
		rs.mu.Lock()
		st.Done = rs.done
		st.Failed = rs.failed
		for j, e := range rs.active {
			st.Active = append(st.Active, JobStatus{Run: rs.id, Job: j.Label, Kind: j.Kind,
				Worker: e.worker, ElapsedMS: float64(now.Sub(e.started)) / float64(time.Millisecond)})
		}
		rs.mu.Unlock()
		sort.Slice(st.Active, func(i, j int) bool { return st.Active[i].Worker < st.Active[j].Worker })
		out = append(out, st)
	}
	return out
}
