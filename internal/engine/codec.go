package engine

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"transit/internal/expr"
	"transit/internal/synth"
)

// This file is the cache's wire codec: the translation between in-memory
// CacheEntry values (whose expressions carry pointer identities — enum
// types, vocabulary *Funcs, typed variables) and a self-describing JSON
// form a CacheBackend can persist. Encoding needs no context: every node
// is written by name and signature. Decoding is rehydration in disguise —
// symbols are re-bound into the *requesting* spec's world (functions by
// signature, variables by name, enum types and ordinals by name), exactly
// as the cross-universe rehydrator does for in-memory hits, so an entry
// written by one process revives correctly in another. A decode that
// cannot bind (key collision, vocabulary drift) reports failure and the
// caller treats the lookup as a miss; a stale disk entry must never
// poison a solve.

// wireVersion is bumped on any incompatible change to the wire structs;
// decoders reject other versions (the entry is then a cache miss and the
// sub-problem is re-solved and re-written). v2 added the per-iteration
// CEGIS trace so disk hits replay provenance.
const wireVersion = 2

// wireValue is a typed constant on the wire.
type wireValue struct {
	Kind string `json:"k"`            // "bool", "int", "pid", "set", "enum"
	N    int64  `json:"n,omitempty"`  // bool (0/1), int, pid, enum ordinal
	Mask uint64 `json:"m,omitempty"`  // set payload
	Enum string `json:"e,omitempty"`  // enum type name
	Name string `json:"en,omitempty"` // enum value name (drift check)
}

// wireExpr is one expression node. Exactly one of Var, Const, Fn is
// populated; zero-arity applications (true, numcaches, enum constants)
// have Fn set and no Args.
type wireExpr struct {
	Var   string      `json:"var,omitempty"`
	VarT  string      `json:"vt,omitempty"` // declared type, for drift checks
	Const *wireValue  `json:"const,omitempty"`
	Fn    string      `json:"fn,omitempty"` // Func.String() signature
	Args  []*wireExpr `json:"args,omitempty"`
}

// wireBinding is one name→value pair of a witness valuation, stored as a
// sorted slice so the encoded bytes are deterministic.
type wireBinding struct {
	Name string     `json:"n"`
	Val  *wireValue `json:"v"`
}

// wireIter is one CEGIS round of the trace. The witness valuation is
// stored once: the round's NewExample shares it (ex.S == rec.Witness by
// construction in cegisIteration), so decode re-establishes the sharing.
type wireIter struct {
	Candidate  *wireExpr     `json:"c"`
	Witness    []wireBinding `json:"w,omitempty"`
	Out        *wireValue    `json:"o,omitempty"` // concretized output; nil when accepted
	KilledBy   int           `json:"kb"`
	Enumerated int64         `json:"en"`
	Kept       int64         `json:"kp"`
	Resumed    bool          `json:"r,omitempty"`
	Restarted  bool          `json:"rs,omitempty"`
}

// wireStats mirrors the numeric fields of synth.Stats plus, since wire
// v2, the per-iteration Trace: the provenance ledger replays it on warm
// answers so a memo hit stays as explainable as a fresh solve. Counter
// replay — the property that keeps aggregate reports identical whether
// or not the cache intervened — is unchanged.
type wireStats struct {
	Enumerated       int64 `json:"enumerated"`
	Kept             int64 `json:"kept"`
	MaxSizeSeen      int   `json:"max_size_seen"`
	Restarts         int   `json:"restarts"`
	ConcreteNS       int64 `json:"concrete_ns"`
	BankReuses       int   `json:"bank_reuses"`
	SMTQueries       int   `json:"smt_queries"`
	SMTClauses       int64 `json:"smt_clauses"`
	SMTClausesReused int64 `json:"smt_clauses_reused"`
	Iterations       int   `json:"iterations"`
	ElapsedNS        int64 `json:"elapsed_ns"`
}

// wireEntry is one persisted cache entry.
type wireEntry struct {
	Version int        `json:"version"`
	Expr    *wireExpr  `json:"expr"`
	Stats   wireStats  `json:"stats"`
	Trace   []wireIter `json:"trace,omitempty"`
}

// EncodeEntry renders a cache entry in the persistent wire form.
func EncodeEntry(ent CacheEntry) ([]byte, error) {
	we, err := encodeExpr(ent.Expr)
	if err != nil {
		return nil, err
	}
	st := ent.Stats
	trace, err := encodeTrace(st.Trace)
	if err != nil {
		return nil, err
	}
	return json.Marshal(wireEntry{
		Version: wireVersion,
		Expr:    we,
		Trace:   trace,
		Stats: wireStats{
			Enumerated:       st.Concrete.Enumerated,
			Kept:             st.Concrete.Kept,
			MaxSizeSeen:      st.Concrete.MaxSizeSeen,
			Restarts:         st.Concrete.Restarts,
			ConcreteNS:       int64(st.Concrete.Elapsed),
			BankReuses:       st.BankReuses,
			SMTQueries:       st.SMTQueries,
			SMTClauses:       st.SMTClauses,
			SMTClausesReused: st.SMTClausesReused,
			Iterations:       st.Iterations,
			ElapsedNS:        int64(st.Elapsed),
		},
	})
}

func encodeExpr(e expr.Expr) (*wireExpr, error) {
	switch n := e.(type) {
	case *expr.Var:
		return &wireExpr{Var: n.Name, VarT: n.VT.String()}, nil
	case *expr.Const:
		wv, err := encodeValue(n.Val)
		if err != nil {
			return nil, err
		}
		return &wireExpr{Const: wv}, nil
	case *expr.Apply:
		we := &wireExpr{Fn: n.Fn.String()}
		for _, a := range n.Args {
			wa, err := encodeExpr(a)
			if err != nil {
				return nil, err
			}
			we.Args = append(we.Args, wa)
		}
		return we, nil
	}
	return nil, fmt.Errorf("engine: cannot encode expression node %T", e)
}

func encodeValue(v expr.Value) (*wireValue, error) {
	switch v.Type().Kind {
	case expr.KindBool:
		n := int64(0)
		if v.Bool() {
			n = 1
		}
		return &wireValue{Kind: "bool", N: n}, nil
	case expr.KindInt:
		return &wireValue{Kind: "int", N: v.Int()}, nil
	case expr.KindPID:
		return &wireValue{Kind: "pid", N: int64(v.PID())}, nil
	case expr.KindSet:
		return &wireValue{Kind: "set", Mask: v.Set()}, nil
	case expr.KindEnum:
		et := v.Type().Enum
		ord := v.EnumOrd()
		return &wireValue{Kind: "enum", N: int64(ord), Enum: et.Name, Name: et.Values[ord]}, nil
	}
	return nil, fmt.Errorf("engine: cannot encode value of type %s", v.Type())
}

// encodeTrace renders the per-iteration CEGIS trace; witness valuations
// are flattened to name-sorted binding lists for byte determinism.
func encodeTrace(trace []synth.IterRecord) ([]wireIter, error) {
	if len(trace) == 0 {
		return nil, nil
	}
	out := make([]wireIter, 0, len(trace))
	for _, rec := range trace {
		wc, err := encodeExpr(rec.Candidate)
		if err != nil {
			return nil, err
		}
		wi := wireIter{
			Candidate:  wc,
			KilledBy:   rec.KilledBy,
			Enumerated: rec.Enumerated,
			Kept:       rec.Kept,
			Resumed:    rec.Resumed,
			Restarted:  rec.Restarted,
		}
		if rec.Witness != nil {
			names := make([]string, 0, len(rec.Witness))
			for name := range rec.Witness {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				wv, err := encodeValue(rec.Witness[name])
				if err != nil {
					return nil, err
				}
				wi.Witness = append(wi.Witness, wireBinding{Name: name, Val: wv})
			}
		}
		if rec.NewExample != nil {
			wv, err := encodeValue(rec.NewExample.Out)
			if err != nil {
				return nil, err
			}
			wi.Out = wv
		}
		out = append(out, wi)
	}
	return out, nil
}

// DecodeEntry parses a wire entry and binds its expression into spec's
// world. ok is false when the bytes are malformed, the version is foreign,
// or some symbol has no counterpart in the spec — all treated as a cache
// miss by the caller.
func DecodeEntry(data []byte, spec SolveSpec) (ent CacheEntry, ok bool) {
	var we wireEntry
	if err := json.Unmarshal(data, &we); err != nil || we.Version != wireVersion || we.Expr == nil {
		return CacheEntry{}, false
	}
	// NewApply type-checks with panics; demote any rebuild panic to a miss
	// like the in-memory rehydrator does.
	defer func() {
		if recover() != nil {
			ent, ok = CacheEntry{}, false
		}
	}()
	r := newRehydrator(spec)
	e, ok := r.decode(we.Expr)
	if !ok {
		return CacheEntry{}, false
	}
	trace, ok := r.decodeTrace(we.Trace)
	if !ok {
		return CacheEntry{}, false
	}
	return CacheEntry{
		Expr: e,
		Stats: synth.Stats{
			Trace: trace,
			Concrete: synth.ConcreteStats{
				Enumerated:  we.Stats.Enumerated,
				Kept:        we.Stats.Kept,
				MaxSizeSeen: we.Stats.MaxSizeSeen,
				Restarts:    we.Stats.Restarts,
				Elapsed:     time.Duration(we.Stats.ConcreteNS),
			},
			BankReuses:       we.Stats.BankReuses,
			SMTQueries:       we.Stats.SMTQueries,
			SMTClauses:       we.Stats.SMTClauses,
			SMTClausesReused: we.Stats.SMTClausesReused,
			Iterations:       we.Stats.Iterations,
			Elapsed:          time.Duration(we.Stats.ElapsedNS),
		},
	}, true
}

// decode binds one wire node into the rehydrator's world.
func (r *rehydrator) decode(we *wireExpr) (expr.Expr, bool) {
	switch {
	case we.Var != "":
		tv, ok := r.vars[we.Var]
		if !ok || tv.VT.String() != we.VarT {
			return nil, false
		}
		return tv, true
	case we.Const != nil:
		return r.decodeValue(we.Const)
	case we.Fn != "":
		fn, ok := r.funcs[we.Fn]
		if !ok {
			return nil, false
		}
		args := make([]expr.Expr, len(we.Args))
		for i, wa := range we.Args {
			a, ok := r.decode(wa)
			if !ok {
				return nil, false
			}
			args[i] = a
		}
		return expr.NewApply(fn, args...), true
	}
	return nil, false
}

func (r *rehydrator) decodeValue(wv *wireValue) (expr.Expr, bool) {
	v, ok := r.decodeVal(wv)
	if !ok {
		return nil, false
	}
	return expr.NewConst(v), true
}

// decodeVal binds one wire value into the rehydrator's universe.
func (r *rehydrator) decodeVal(wv *wireValue) (expr.Value, bool) {
	switch wv.Kind {
	case "bool":
		return expr.BoolVal(wv.N != 0), true
	case "int":
		// The key pins the integer width, so the stored payload is already
		// in this universe's wrapped range; WrapInt is then the identity.
		return expr.IntVal(r.u, wv.N), true
	case "pid":
		if wv.N < 0 || wv.N >= int64(r.u.NumCaches()) {
			return expr.Value{}, false
		}
		return expr.PIDVal(int(wv.N)), true
	case "set":
		if wv.Mask&^r.u.SetMask() != 0 {
			return expr.Value{}, false
		}
		return expr.SetVal(wv.Mask), true
	case "enum":
		et, ok := r.u.Enum(wv.Enum)
		if !ok {
			return expr.Value{}, false
		}
		ord := int(wv.N)
		if ord < 0 || ord >= len(et.Values) || et.Values[ord] != wv.Name {
			return expr.Value{}, false
		}
		return expr.EnumVal(et, ord), true
	}
	return expr.Value{}, false
}

// decodeTrace rebinds a persisted CEGIS trace into spec's world. Any
// unbindable symbol fails the whole decode (the caller then treats the
// entry as a miss), keeping the all-or-nothing contract of DecodeEntry.
func (r *rehydrator) decodeTrace(wis []wireIter) ([]synth.IterRecord, bool) {
	if len(wis) == 0 {
		return nil, true
	}
	out := make([]synth.IterRecord, 0, len(wis))
	for _, wi := range wis {
		cand, ok := r.decode(wi.Candidate)
		if !ok {
			return nil, false
		}
		rec := synth.IterRecord{
			Candidate:  cand,
			KilledBy:   wi.KilledBy,
			Enumerated: wi.Enumerated,
			Kept:       wi.Kept,
			Resumed:    wi.Resumed,
			Restarted:  wi.Restarted,
		}
		if len(wi.Witness) > 0 {
			env := make(expr.Env, len(wi.Witness))
			for _, b := range wi.Witness {
				v, ok := r.decodeVal(b.Val)
				if !ok {
					return nil, false
				}
				env[b.Name] = v
			}
			rec.Witness = env
			if wi.Out != nil {
				out2, ok := r.decodeVal(wi.Out)
				if !ok {
					return nil, false
				}
				// The round's concretization shares the witness valuation,
				// exactly as cegisIteration built it.
				rec.NewExample = &synth.ConcreteExample{S: env, Out: out2}
			}
		}
		out = append(out, rec)
	}
	return out, true
}
