package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"transit/internal/expr"
	"transit/internal/synth"
)

// chainJobs builds a plan of three independent chains a0→a1→a2, b0→b1→b2,
// c0→c1→c2 whose jobs append their labels to a per-chain log.
func chainJobs(logs map[string]*[]string) []*Job {
	var jobs []*Job
	for _, chain := range []string{"a", "b", "c"} {
		var prev *Job
		log := logs[chain]
		for i := 0; i < 3; i++ {
			label := fmt.Sprintf("%s%d", chain, i)
			j := &Job{Label: label, Kind: "test", Run: func(context.Context) error {
				*log = append(*log, label)
				return nil
			}}
			if prev != nil {
				j.Deps = []*Job{prev}
			}
			jobs = append(jobs, j)
			prev = j
		}
	}
	return jobs
}

func TestRunRespectsDepsAtEveryWorkerCount(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		logs := map[string]*[]string{"a": {}, "b": {}, "c": {}}
		jobs := chainJobs(logs)
		stats, err := New(Config{Workers: workers}).Run(context.Background(), jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Jobs != 9 || stats.Failed != 0 || stats.Skipped != 0 {
			t.Fatalf("workers=%d: stats = %+v", workers, stats)
		}
		for chain, log := range logs {
			want := []string{chain + "0", chain + "1", chain + "2"}
			if fmt.Sprint(*log) != fmt.Sprint(want) {
				t.Errorf("workers=%d chain %s ran as %v, want %v", workers, chain, *log, want)
			}
		}
	}
}

func TestRunWorkersOneIsPlanOrder(t *testing.T) {
	var order []string
	var jobs []*Job
	for i := 0; i < 20; i++ {
		label := fmt.Sprintf("j%02d", i)
		jobs = append(jobs, &Job{Label: label, Run: func(context.Context) error {
			order = append(order, label)
			return nil
		}})
	}
	// Reverse-ish dep structure: even jobs depend on the previous even job.
	for i := 2; i < 20; i += 2 {
		jobs[i].Deps = []*Job{jobs[i-2]}
	}
	if _, err := New(Config{Workers: 1}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	for i, label := range order {
		if want := fmt.Sprintf("j%02d", i); label != want {
			t.Fatalf("position %d ran %s, want %s (sequential mode must follow plan order exactly: %v)",
				i, label, want, order)
		}
	}
}

func TestRunRejectsForwardDeps(t *testing.T) {
	a := &Job{Label: "a", Run: func(context.Context) error { return nil }}
	b := &Job{Label: "b", Run: func(context.Context) error { return nil }}
	a.Deps = []*Job{b} // forward reference: b is planned after a
	if _, err := New(Config{}).Run(context.Background(), []*Job{a, b}); err == nil {
		t.Fatal("forward dependency must be rejected")
	}
}

func TestRunFailureSkipsDependentsAndReportsFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := make(map[string]bool)
	mk := func(label string, err error, deps ...*Job) *Job {
		return &Job{Label: label, Deps: deps, Run: func(context.Context) error {
			ran[label] = true
			return err
		}}
	}
	a := mk("a", nil)
	b := mk("b", boom, a)
	c := mk("c", nil, b)
	d := mk("d", nil, c)
	stats, err := New(Config{Workers: 1}).Run(context.Background(), []*Job{a, b, c, d})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom (skip markers must not mask the root cause)", err)
	}
	if ran["c"] || ran["d"] {
		t.Error("dependents of a failed job must not run")
	}
	if !errors.Is(c.Err, ErrSkipped) || !errors.Is(d.Err, ErrSkipped) {
		t.Errorf("c.Err = %v, d.Err = %v, want ErrSkipped", c.Err, d.Err)
	}
	if stats.Failed != 1 || stats.Skipped != 2 {
		t.Errorf("stats = %+v, want 1 failed, 2 skipped", stats)
	}
}

func TestRunCancellationStopsInFlightJobs(t *testing.T) {
	// One job blocks until cancelled; a sibling fails and triggers the
	// fail-fast cancel. The blocked job must be released by the engine's
	// context, not hang.
	started := make(chan struct{})
	blocked := &Job{Label: "blocked", Run: func(ctx context.Context) error {
		close(started)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return errors.New("cancellation never arrived")
		}
	}}
	boom := errors.New("boom")
	failing := &Job{Label: "failing", Run: func(ctx context.Context) error {
		<-started // guarantee overlap with the blocked job
		return boom
	}}
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = New(Config{Workers: 2}).Run(context.Background(), []*Job{blocked, failing})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return: cancellation failed to reach the in-flight job")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !errors.Is(blocked.Err, context.Canceled) {
		t.Fatalf("blocked job saw %v, want context.Canceled", blocked.Err)
	}
}

func TestRunExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	first := &Job{Label: "first", Run: func(ctx context.Context) error {
		cancel()
		close(release)
		<-ctx.Done()
		return ctx.Err()
	}}
	second := &Job{Label: "second", Run: func(context.Context) error {
		return errors.New("must not run")
	}, Deps: []*Job{first}}
	_, err := New(Config{Workers: 1}).Run(ctx, []*Job{first, second})
	<-release
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(second.Err, ErrSkipped) {
		t.Fatalf("second.Err = %v, want ErrSkipped", second.Err)
	}
}

func TestRunJobTimeout(t *testing.T) {
	slow := &Job{Label: "slow", Run: func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return nil
		}
	}}
	_, err := New(Config{Workers: 1, JobTimeout: 20 * time.Millisecond}).
		Run(context.Background(), []*Job{slow})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestRunTelemetryEvents(t *testing.T) {
	var events []Event
	logs := map[string]*[]string{"a": {}, "b": {}, "c": {}}
	jobs := chainJobs(logs)
	_, err := New(Config{Workers: 2, Sink: CollectSink(&events)}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Type]++
	}
	if counts["engine_start"] != 1 || counts["engine_end"] != 1 {
		t.Errorf("engine events = %v", counts)
	}
	if counts["job_start"] != len(jobs) || counts["job_end"] != len(jobs) {
		t.Errorf("job events = %v, want %d of each", counts, len(jobs))
	}
	if events[0].Type != "engine_start" || events[len(events)-1].Type != "engine_end" {
		t.Errorf("events not bracketed: first %s, last %s", events[0].Type, events[len(events)-1].Type)
	}
}

func TestJSONSinkConcurrent(t *testing.T) {
	var sb lockedBuilder
	sink := NewJSONSink(&sb)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sink(Event{Type: "job_end", Job: fmt.Sprintf("w%d-%d", w, i), Worker: w})
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, `{"type":"job_end"`) {
			t.Fatalf("interleaved line: %q", ln)
		}
	}
}

type lockedBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (l *lockedBuilder) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sb.Write(p)
}

func (l *lockedBuilder) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sb.String()
}

// maxSpec is the paper's max(a, b) inference problem, the cheapest
// non-trivial SolveConcolic instance.
func maxSpec(u *expr.Universe) SolveSpec {
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	o := expr.V("o", expr.IntType)
	return SolveSpec{
		Problem: synth.Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, b}, Output: o},
		Examples: []synth.ConcolicExample{{
			Pre: expr.True(),
			Post: expr.And(expr.Ge(o, a), expr.Ge(o, b),
				expr.Or(expr.Eq(o, a), expr.Eq(o, b))),
		}},
		Limits: synth.Limits{MaxSize: 8},
	}
}

func TestSolveConcolicCacheReturnsIdenticalExpression(t *testing.T) {
	cache := NewCache()
	eng := New(Config{Cache: cache})
	spec := maxSpec(expr.NewUniverse(3))

	e1, st1, out1, err := eng.SolveConcolic(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Cached || out1.Tier != TierMiss {
		t.Fatal("first solve must miss")
	}
	e2, st2, out2, err := eng.SolveConcolic(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Cached || out2.Tier != TierMem {
		t.Fatal("second solve must hit in memory")
	}
	if !expr.Equal(e1, e2) {
		t.Fatalf("cache changed the answer: %s vs %s", e1, e2)
	}
	// Replayed stats keep aggregate reports cache-invariant.
	if st1.SMTQueries != st2.SMTQueries || st1.Iterations != st2.Iterations ||
		st1.Concrete.Enumerated != st2.Concrete.Enumerated {
		t.Errorf("replayed stats differ: %+v vs %+v", st1, st2)
	}
	if hits, misses := cache.Counters(); hits != 1 || misses != 1 {
		t.Errorf("counters = %d hits / %d misses, want 1/1", hits, misses)
	}
}

func TestCacheHitsRehydrateAcrossUniverses(t *testing.T) {
	// Same structural problem built against two distinct Universe
	// instances (fresh enum/vocabulary pointers): the keys collide by
	// design, and the replayed expression must be re-bound to the second
	// universe's symbols, not leak the first's.
	u1 := expr.NewUniverse(3)
	e1t := u1.MustDeclareEnum("Kind", "Red", "Blue")
	u2 := expr.NewUniverse(3)
	e2t := u2.MustDeclareEnum("Kind", "Red", "Blue")

	mk := func(u *expr.Universe, et *expr.EnumType) SolveSpec {
		voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{
			Enums: []*expr.EnumType{et}, WithEnumConstants: true, WithoutEnumIte: true,
		})
		k := expr.V("k", expr.EnumOf(et))
		o := expr.V("o", expr.BoolType)
		return SolveSpec{
			Problem: synth.Problem{U: u, Vocab: voc, Vars: []*expr.Var{k}, Output: o},
			Examples: []synth.ConcolicExample{{
				Pre:  expr.True(),
				Post: expr.Eq(o, expr.Eq(k, expr.EnumC(et, "Red"))),
			}},
			Limits: synth.Limits{MaxSize: 6},
		}
	}
	s1, s2 := mk(u1, e1t), mk(u2, e2t)
	if s1.Key() != s2.Key() {
		t.Fatal("structurally identical specs must share a key")
	}

	cache := NewCache()
	eng := New(Config{Cache: cache})
	r1, _, _, err := eng.SolveConcolic(context.Background(), s1)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, out, err := eng.SolveConcolic(context.Background(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Fatal("second universe must hit the first's entry")
	}
	if r1.String() != r2.String() {
		t.Fatalf("answers differ: %s vs %s", r1, r2)
	}
	// The rehydrated expression must reference u2's enum type wherever the
	// original referenced u1's, so downstream identity type checks pass.
	var checkTypes func(e expr.Expr)
	checkTypes = func(e expr.Expr) {
		if ty := e.Type(); ty.Kind == expr.KindEnum && ty.Enum != e2t {
			t.Fatalf("node %s carries enum type %p, want u2's %p", e, ty.Enum, e2t)
		}
		if ap, ok := e.(*expr.Apply); ok {
			for _, a := range ap.Args {
				checkTypes(a)
			}
		}
	}
	checkTypes(r2)
	// And it must evaluate in u2.
	env := expr.Env{"k": expr.EnumValOf(e2t, "Blue")}
	if got := r2.Eval(u2, env); got.Bool() {
		t.Errorf("rehydrated expr misevaluates: Blue classified as Red")
	}
}

func TestSolveConcolicConcurrentSharedCache(t *testing.T) {
	cache := NewCache()
	eng := New(Config{Cache: cache})
	spec := maxSpec(expr.NewUniverse(3))
	results := make([]expr.Expr, 8)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, _, err := eng.SolveConcolic(context.Background(), spec)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] == nil || !expr.Equal(results[0], results[i]) {
			t.Fatalf("racing solvers disagree: %v vs %v", results[0], results[i])
		}
	}
}

func TestSolveConcolicRetryGrowsLimits(t *testing.T) {
	// MaxSize 1 cannot express max(a, b); one growth step (+4) can.
	spec := maxSpec(expr.NewUniverse(3))
	spec.Limits = synth.Limits{MaxSize: 1}

	eng := New(Config{})
	_, _, _, err := eng.SolveConcolic(context.Background(), spec)
	if !errors.Is(err, synth.ErrNoExpression) {
		t.Fatalf("without retries: err = %v, want ErrNoExpression", err)
	}

	eng = New(Config{Retry: RetryPolicy{Attempts: 3}})
	e, _, out, err := eng.SolveConcolic(context.Background(), spec)
	if err != nil {
		t.Fatalf("with retries: %v", err)
	}
	if out.Cached || out.Retries == 0 {
		t.Fatalf("expected a retried uncached solve, got cached=%v retries=%d", out.Cached, out.Retries)
	}
	if e == nil {
		t.Fatal("no expression")
	}
}

func TestSolveConcolicCancelledBeforeRetry(t *testing.T) {
	spec := maxSpec(expr.NewUniverse(3))
	spec.Limits = synth.Limits{MaxSize: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, out, err := New(Config{Retry: RetryPolicy{Attempts: 5}}).SolveConcolic(ctx, spec)
	if err == nil {
		t.Fatal("cancelled solve must fail")
	}
	if out.Retries != 0 {
		t.Fatalf("cancelled solve must not retry, spent %d retries", out.Retries)
	}
}

func TestGrowLimitsMonotone(t *testing.T) {
	l := synth.Limits{}.WithDefaults()
	g := growLimits(synth.Limits{})
	if g.MaxSize <= l.MaxSize || g.MaxExprs <= l.MaxExprs || g.MaxIters <= l.MaxIters {
		t.Errorf("growLimits did not grow: %+v -> %+v", l, g)
	}
}

func TestEngineRunStress(t *testing.T) {
	// A wide random-free DAG executed repeatedly at several worker counts;
	// mainly a -race workout for the scheduler's locking.
	for _, workers := range []int{1, 3, 7} {
		var total atomic.Int64
		var jobs []*Job
		var prevLayer []*Job
		for layer := 0; layer < 5; layer++ {
			var cur []*Job
			for i := 0; i < 10; i++ {
				j := &Job{Label: fmt.Sprintf("l%dj%d", layer, i), Deps: prevLayer,
					Run: func(context.Context) error { total.Add(1); return nil }}
				cur = append(cur, j)
				jobs = append(jobs, j)
			}
			prevLayer = cur
		}
		stats, err := New(Config{Workers: workers}).Run(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		if total.Load() != 50 || stats.Jobs != 50 {
			t.Fatalf("workers=%d: ran %d of 50", workers, total.Load())
		}
	}
}
