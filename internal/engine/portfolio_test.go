package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
	"transit/internal/synth"
)

// TestPortfolioRaceMatchesSoloAnswer pins the portfolio's answer contract:
// whichever configuration wins the race, the returned expression is the
// one a solo solve returns — configurations differ in execution strategy
// only, never in answer. The run is repeated so the winner-cancels-losers
// path executes under the race detector, and the telemetry counters must
// account for every race.
func TestPortfolioRaceMatchesSoloAnswer(t *testing.T) {
	u := expr.NewUniverse(3)
	solo, _, _, err := New(Config{}).SolveConcolic(context.Background(), maxSpec(u))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), reg)
	eng := New(Config{Portfolio: 4})
	const runs = 4
	for i := 0; i < runs; i++ {
		res, _, out, err := eng.SolveConcolic(ctx, maxSpec(u))
		if err != nil {
			t.Fatal(err)
		}
		if out.Portfolio == "" {
			t.Fatal("race ran but no winning configuration was recorded")
		}
		if !expr.Equal(res, solo) {
			t.Fatalf("portfolio answer %s differs from solo answer %s (winner %s)",
				res, solo, out.Portfolio)
		}
	}
	if races := reg.Get("engine.portfolio.races"); races != runs {
		t.Errorf("engine.portfolio.races = %d, want %d", races, runs)
	}
}

// TestPortfolioCancellation verifies that external cancellation reaches
// every racer and the race returns the context error instead of hanging or
// fabricating an answer. Run under -race in CI: the interesting property
// is that the racers' goroutines shut down cleanly.
func TestPortfolioCancellation(t *testing.T) {
	eng := New(Config{Portfolio: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := eng.SolveConcolic(ctx, maxSpec(expr.NewUniverse(3)))
	if err == nil {
		t.Fatal("cancelled race returned an answer")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}

	// Mid-flight cancellation: cancel shortly after launch; the call must
	// return promptly either way (with the answer if a racer won first,
	// with the context error otherwise).
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel2()
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, _, _, err := eng.SolveConcolic(ctx2, maxSpec(expr.NewUniverse(3)))
		if err == nil && res == nil {
			t.Error("nil answer without error")
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("race did not return after cancellation")
	}
	cancel2()
}

// TestPortfolioUnrealizableFastFail pins the interaction between the
// portfolio, the retry schedule, and unrealizability detection: a hole the
// atlas proves impossible fails in one attempt per configuration — no
// escalating-limits retries — and the error survives the race as
// ErrUnrealizable.
func TestPortfolioUnrealizableFastFail(t *testing.T) {
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	o := expr.V("o", expr.IntType)
	spec := SolveSpec{
		Problem: synth.Problem{U: u, Vocab: expr.NewVocabulary(), Vars: []*expr.Var{a, b}, Output: o},
		Examples: []synth.ConcolicExample{{
			Pre: expr.True(),
			Post: expr.And(expr.Ge(o, a), expr.Ge(o, b),
				expr.Or(expr.Eq(o, a), expr.Eq(o, b))),
		}},
		Limits: synth.Limits{MaxSize: 4},
	}
	for _, k := range []int{1, 4} {
		eng := New(Config{Retry: RetryPolicy{Attempts: 3}, Portfolio: k})
		_, stats, out, err := eng.SolveConcolic(context.Background(), spec)
		if !errors.Is(err, synth.ErrUnrealizable) {
			t.Fatalf("portfolio=%d: error = %v, want ErrUnrealizable", k, err)
		}
		if out.Retries != 0 {
			t.Errorf("portfolio=%d: spent %d retries on a proven-unrealizable hole", k, out.Retries)
		}
		if !stats.Unrealizable {
			t.Errorf("portfolio=%d: stats.Unrealizable not set", k)
		}
	}
}
