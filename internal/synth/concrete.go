package synth

import (
	"context"
	"fmt"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
)

// SolveConcrete implements Algorithm 1: enumerate expressions of increasing
// size over the vocabulary, pruning candidates whose signature (vector of
// evaluations over the concrete examples) has been seen before, until one
// matches the goal signature (the vector of example outputs).
//
// With an empty example set, every expression is indistinguishable from
// every other of its type, so the first enumerated expression of the output
// type is returned — exactly the seeding behaviour Algorithm 2 relies on.
func SolveConcrete(p Problem, examples []ConcreteExample, limits Limits) (expr.Expr, ConcreteStats, error) {
	return SolveConcreteCtx(context.Background(), p, examples, limits)
}

// SolveConcreteCtx is SolveConcrete under a context: the enumeration loop
// polls the context and aborts with its error once it is cancelled or its
// deadline passes. The search runs under a "synth.enumerate" span with one
// "synth.size" child per size tier entered.
//
// With Limits.EnumWorkers > 1 each size tier's composition work is
// partitioned across that many goroutines and merged deterministically, so
// the returned expression and every ConcreteStats counter are identical to
// the sequential run (see DESIGN.md §10).
func SolveConcreteCtx(ctx context.Context, p Problem, examples []ConcreteExample, limits Limits) (expr.Expr, ConcreteStats, error) {
	e, stats, _, err := solveConcrete(ctx, p, examples, limits, nil, false)
	return e, stats, err
}

// solveConcrete is the shared driver behind SolveConcreteCtx and the
// CEGIS bank-reuse path: it validates, opens the enumeration span, builds
// a fresh enumerator or resumes the supplied bank, runs the search, and —
// when wantBank is set and the search succeeded — harvests the enumerator
// state for the next round. A resumed search that exhausts the size bound
// transparently restarts from scratch (the stale pools may lack entries
// that only became distinguishable under the newest concretizations), so
// bank reuse never loses completeness.
func solveConcrete(ctx context.Context, p Problem, examples []ConcreteExample, limits Limits,
	bk *bank, wantBank bool) (expr.Expr, ConcreteStats, *bank, error) {
	limits = limits.withDefaults()
	if err := p.validate(); err != nil {
		return nil, ConcreteStats{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, ConcreteStats{}, nil, fmt.Errorf("synth: enumeration aborted: %w", err)
	}
	for i, c := range examples {
		if c.Out.Type() != p.Output.VT {
			return nil, ConcreteStats{}, nil, fmt.Errorf("synth: example %d output has type %s, want %s",
				i, c.Out.Type(), p.Output.VT)
		}
	}
	resume := bk.usable(examples, limits)
	ctx, span := obs.Start(ctx, "synth.enumerate",
		obs.Int("examples", len(examples)), obs.Int("max_size", limits.MaxSize),
		obs.Int("workers", enumWorkers(limits)), obs.Bool("resumed", resume))

	var en *enumerator
	if resume {
		if reg := obs.MetricsFrom(ctx); reg != nil {
			reg.Counter("synth.bank_reused").Inc()
		}
		en = resumeEnumerator(ctx, p, examples, limits, bk)
	} else {
		en = newEnumerator(ctx, p, examples, limits)
		en.initFresh()
	}
	res, err := en.run()
	stats := en.stats
	if resume && err != nil && en.exhausted {
		// Fallback: restart from size 1. The resumed pools are frozen at
		// the previous rounds' signature partition; an expression whose
		// subterms only became distinguishable under the new
		// concretizations is unreachable from them, so a clean exhaustion
		// of the resumed search is retried without the bank before it is
		// believed. Stats report the total work of both attempts.
		if reg := obs.MetricsFrom(ctx); reg != nil {
			reg.Counter("synth.bank_fallback").Inc()
		}
		en = newEnumerator(ctx, p, examples, limits)
		en.initFresh()
		res, err = en.run()
		stats.Restarts++
		stats.Enumerated += en.stats.Enumerated
		stats.Kept += en.stats.Kept
		if en.stats.MaxSizeSeen > stats.MaxSizeSeen {
			stats.MaxSizeSeen = en.stats.MaxSizeSeen
		}
		stats.Elapsed += en.stats.Elapsed
	}
	span.SetAttr(obs.Int64("enumerated", stats.Enumerated),
		obs.Int64("kept", stats.Kept),
		obs.Int("max_size_seen", stats.MaxSizeSeen),
		obs.Bool("found", res != nil))
	span.End()
	var nbk *bank
	if err == nil && wantBank {
		nbk = en.harvest()
	}
	return res, stats, nbk, err
}

// enumWorkers resolves the effective tier worker count: NoPrune retains
// every candidate (no signature table to merge against), so the
// exhaustive baseline always runs sequentially.
func enumWorkers(l Limits) int {
	if l.NoPrune || l.EnumWorkers < 1 {
		return 1
	}
	return l.EnumWorkers
}

// entry pairs a retained expression with its signature so that parent
// signatures compose from child signatures without re-walking trees.
type entry struct {
	e   expr.Expr
	sig []expr.Value
}

type enumerator struct {
	ctx      context.Context
	p        Problem
	examples []ConcreteExample
	limits   Limits
	start    time.Time
	stats    ConcreteStats
	workers  int

	// perSize[s][t] holds retained entries of size s and type t, in
	// canonical enumeration order.
	perSize []map[expr.Type][]entry
	sigSeen map[string]struct{}
	goalKey string
	sigBuf  []expr.Value
	keyBuf  []byte
	argBuf  []expr.Value

	// Scratch buffers hoisted out of the per-tier loops so the hot path
	// allocates only for candidates that survive pruning.
	shareBuf []int
	argsBuf  []entry
	posBuf   []int

	// Resume cursor: tiers below resumeSize are already banked; within
	// tier resumeSize the first resumeSkip candidates were consumed by
	// the previous round (the last of them was its winner). resumeCap,
	// when nonzero, bounds a resumed search below Limits.MaxSize: a stale
	// bank (pools missing entries only the newest concretizations can
	// distinguish) is only discovered by exhausting every tier, and the
	// tiers beyond where a fresh search would stop grow exponentially, so
	// a resumed search that has not won within a few tiers of the cursor
	// gives up early and lets the restart fallback take over.
	resumeSize int
	resumeSkip int64
	resumeCap  int

	// Winner cursor, recorded for the bank when the search succeeds:
	// the winner was candidate curIdx (1-based, tier-local) of tier
	// curSize.
	curSize int
	curIdx  int64

	// exhausted marks a run that walked every tier up to MaxSize without
	// finding the goal or hitting a budget — the only failure mode the
	// bank-resume path may transparently retry as a fresh search.
	exhausted bool
}

func newEnumerator(ctx context.Context, p Problem, examples []ConcreteExample, limits Limits) *enumerator {
	en := &enumerator{ctx: ctx, p: p, examples: examples, limits: limits,
		start: time.Now(), workers: enumWorkers(limits)}
	en.sigBuf = make([]expr.Value, len(examples))
	goal := make([]expr.Value, len(examples))
	for i, c := range examples {
		goal[i] = c.Out
	}
	en.goalKey = string(appendSigKey(nil, p.Output.VT, goal))
	return en
}

// initFresh allocates empty pools and signature table for a from-scratch
// search (resumeEnumerator installs banked ones instead).
func (en *enumerator) initFresh() {
	en.sigSeen = make(map[string]struct{})
	en.perSize = make([]map[expr.Type][]entry, en.limits.MaxSize+1)
	for i := range en.perSize {
		en.perSize[i] = make(map[expr.Type][]entry)
	}
}

// errStop distinguishes budget exhaustion from normal exhaustion.
type errStop struct{ reason string }

func (e errStop) Error() string { return e.reason }

func (en *enumerator) run() (expr.Expr, error) {
	startSize := 1
	maxSize := en.limits.MaxSize
	if en.resumeSize > 0 {
		startSize = en.resumeSize
		if en.resumeCap > 0 && en.resumeCap < maxSize {
			maxSize = en.resumeCap
		}
	}
	for size := startSize; size <= maxSize; size++ {
		en.stats.MaxSizeSeen = size
		var skip int64
		if size == en.resumeSize {
			skip = en.resumeSkip
		}
		found, err := en.runSize(size, skip)
		if err != nil {
			return nil, budgetErr(err)
		}
		if found != nil {
			en.stats.Elapsed = time.Since(en.start)
			return found, nil
		}
	}
	en.exhausted = true
	en.stats.Elapsed = time.Since(en.start)
	return nil, fmt.Errorf("%w (size <= %d, %d candidates)", ErrNoExpression, maxSize, en.stats.Enumerated)
}

// minParallelTier is the smallest remaining tier workload worth fanning
// out; below it goroutine startup and merge overhead dominate. The
// sequential and parallel paths are output-identical, so the threshold
// only affects wall-clock time.
const minParallelTier = 2048

// runSize enumerates one size tier under its own "synth.size" span, so a
// trace shows where enumeration time concentrates as tiers grow. skip is
// the number of leading tier-local candidates already consumed by the
// round that built the bank being resumed (0 on fresh tiers).
func (en *enumerator) runSize(size int, skip int64) (found expr.Expr, err error) {
	before := en.stats.Enumerated
	tierStart := time.Now()
	_, span := obs.Start(en.ctx, "synth.size", obs.Int("size", size))
	if span != nil {
		// Live "now enumerating tier k" gauge; the closing span carries
		// the totals, this mark makes the current tier visible mid-tier.
		span.Mark("synth.tier", obs.Int("size", size),
			obs.Int64("skip", skip), obs.Int64("enumerated", before))
	}
	workersUsed := 1
	defer func() {
		span.SetAttr(obs.Int64("enumerated", en.stats.Enumerated-before),
			obs.Int("workers", workersUsed),
			obs.Bool("found", found != nil))
		span.End()
		if reg := obs.MetricsFrom(en.ctx); reg != nil {
			reg.Counter("synth.tier_workers").Add(int64(workersUsed))
			reg.Histogram("synth.tier_ms").Observe(time.Since(tierStart))
		}
	}()
	if size == 1 {
		return en.runAtoms(skip)
	}
	units, total := en.buildUnits(size)
	if total <= skip {
		return nil, nil
	}
	if en.workers > 1 && total-skip >= minParallelTier {
		workersUsed = en.workers
		return en.runTierPar(size, units, total, skip)
	}
	return en.runTierSeq(size, units, skip)
}

// runAtoms enumerates the size-1 tier: variables in declaration order,
// then arity-0 function symbols in vocabulary order. The tier is tiny, so
// it always runs sequentially.
func (en *enumerator) runAtoms(skip int64) (expr.Expr, error) {
	idx := int64(0)
	atom := func(e expr.Expr) (expr.Expr, error) {
		idx++
		if idx <= skip {
			return nil, nil
		}
		return en.consider(e)
	}
	for _, v := range en.p.Vars {
		found, err := atom(v)
		if err != nil || found != nil {
			en.curSize, en.curIdx = 1, idx
			return found, err
		}
	}
	for _, f := range en.p.Vocab.Funcs() {
		if f.Arity() != 0 {
			continue
		}
		found, err := atom(expr.NewApply(f))
		if err != nil || found != nil {
			en.curSize, en.curIdx = 1, idx
			return found, err
		}
	}
	return nil, nil
}

// runTierSeq processes a tier's units in canonical order through the
// sequential charge/prune/retain path (also the NoPrune path).
func (en *enumerator) runTierSeq(size int, units []tierUnit, skip int64) (expr.Expr, error) {
	for ui := range units {
		u := &units[ui]
		if u.base+u.count <= skip {
			continue
		}
		found, idx, err := en.seqUnit(u, skip)
		if err != nil {
			return nil, err
		}
		if found != nil {
			en.curSize, en.curIdx = size, idx
			return found, nil
		}
	}
	return nil, nil
}

// seqUnit enumerates one unit's candidates, fast-forwarding past the
// resumed prefix by index arithmetic instead of iteration.
func (en *enumerator) seqUnit(u *tierUnit, skip int64) (expr.Expr, int64, error) {
	m := len(u.shares)
	if cap(en.argsBuf) < m {
		en.argsBuf = make([]entry, m)
	}
	if cap(en.posBuf) < m {
		en.posBuf = make([]int, m)
	}
	args, pos := en.argsBuf[:m], en.posBuf[:m]
	off := int64(0)
	if skip > u.base {
		off = skip - u.base
	}
	u.decode(off, pos)
	for {
		for j := 0; j < m; j++ {
			args[j] = u.pools[j][pos[j]]
		}
		found, err := en.considerApply(u.f, args)
		if err != nil {
			return nil, 0, err
		}
		if found != nil {
			return found, u.base + off + 1, nil
		}
		off++
		if off == u.count {
			return nil, 0, nil
		}
		u.advance(pos)
	}
}

func budgetErr(err error) error {
	if s, ok := err.(errStop); ok {
		return fmt.Errorf("%w (%s)", ErrNoExpression, s.reason)
	}
	return err
}

// considerApply evaluates the candidate's signature from child signatures,
// prunes, and on survival materializes the expression node. The hot path
// is allocation-free until a candidate survives pruning: the signature and
// key live in reusable buffers, and map lookups use the compiler's
// alloc-free string([]byte) comparison.
func (en *enumerator) considerApply(f *expr.Func, args []entry) (expr.Expr, error) {
	if err := en.charge(); err != nil {
		return nil, err
	}
	if cap(en.argBuf) < len(args) {
		en.argBuf = make([]expr.Value, len(args))
	}
	argv := en.argBuf[:len(args)]
	for k := range en.examples {
		for j := range args {
			argv[j] = args[j].sig[k]
		}
		en.sigBuf[k] = f.Apply(en.p.U, argv)
	}
	en.keyBuf = appendSigKey(en.keyBuf[:0], f.Ret, en.sigBuf)
	if !en.limits.NoPrune {
		if _, seen := en.sigSeen[string(en.keyBuf)]; seen {
			return nil, nil
		}
		en.sigSeen[string(en.keyBuf)] = struct{}{}
	}
	childExprs := make([]expr.Expr, len(args))
	size := 1
	for j, a := range args {
		childExprs[j] = a.e
		size += a.e.Size()
	}
	node := expr.NewApply(f, childExprs...)
	return en.retain(node, size)
}

// consider handles size-1 candidates, which must be evaluated directly.
func (en *enumerator) consider(e expr.Expr) (expr.Expr, error) {
	if err := en.charge(); err != nil {
		return nil, err
	}
	for k, c := range en.examples {
		en.sigBuf[k] = e.Eval(en.p.U, c.S)
	}
	en.keyBuf = appendSigKey(en.keyBuf[:0], e.Type(), en.sigBuf)
	if !en.limits.NoPrune {
		if _, seen := en.sigSeen[string(en.keyBuf)]; seen {
			return nil, nil
		}
		en.sigSeen[string(en.keyBuf)] = struct{}{}
	}
	return en.retain(e, e.Size())
}

// retain stores a surviving candidate (whose key is in keyBuf) and reports
// it if it hits the goal. Winners are pooled too: the bank needs the
// winner entry in place so a resumed round re-encounters it as an
// ordinary retained expression.
func (en *enumerator) retain(e expr.Expr, size int) (expr.Expr, error) {
	en.stats.Kept++
	if size < len(en.perSize) {
		sig := append([]expr.Value(nil), en.sigBuf...)
		en.perSize[size][e.Type()] = append(en.perSize[size][e.Type()], entry{e: e, sig: sig})
	}
	if e.Type() == en.p.Output.VT && string(en.keyBuf) == en.goalKey {
		en.stats.Elapsed = time.Since(en.start)
		return e, nil
	}
	return nil, nil
}

// charge accounts one candidate against the budgets and polls the
// cancellation context. The budget check precedes the increment so that a
// budget of N admits exactly N candidates (candidate N itself may still
// win).
func (en *enumerator) charge() error {
	if en.stats.Enumerated >= en.limits.MaxExprs {
		en.stats.Elapsed = time.Since(en.start)
		return errStop{reason: fmt.Sprintf("expression budget %d exhausted", en.limits.MaxExprs)}
	}
	en.stats.Enumerated++
	if en.stats.Enumerated%4096 == 0 {
		if err := en.ctx.Err(); err != nil {
			en.stats.Elapsed = time.Since(en.start)
			return fmt.Errorf("synth: enumeration aborted: %w", err)
		}
		if en.limits.Timeout > 0 && time.Since(en.start) > en.limits.Timeout {
			en.stats.Elapsed = time.Since(en.start)
			return errStop{reason: "timeout"}
		}
	}
	return nil
}

// appendSigKey appends the map key for a signature: the expression type
// tag followed by the fixed-width encodings of the example values. The
// encoding is injective over (type, value-vector) pairs — see
// FuzzSigKeyInjective — which the parallel merge relies on: a silent
// collision would fuse two distinguishable candidate classes.
func appendSigKey(dst []byte, t expr.Type, sig []expr.Value) []byte {
	dst = append(dst, byte(t.Kind))
	if t.Kind == expr.KindEnum {
		dst = append(dst, byte(t.Enum.ID()))
	} else {
		dst = append(dst, 0)
	}
	for _, v := range sig {
		dst = v.AppendEncoding(dst)
	}
	return dst
}
