package synth

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
)

// SolveConcrete implements Algorithm 1: enumerate expressions of increasing
// size over the vocabulary, pruning candidates whose signature (vector of
// evaluations over the concrete examples) has been seen before, until one
// matches the goal signature (the vector of example outputs).
//
// With an empty example set, every expression is indistinguishable from
// every other of its type, so the first enumerated expression of the output
// type is returned — exactly the seeding behaviour Algorithm 2 relies on.
func SolveConcrete(p Problem, examples []ConcreteExample, limits Limits) (expr.Expr, ConcreteStats, error) {
	return SolveConcreteCtx(context.Background(), p, examples, limits)
}

// SolveConcreteCtx is SolveConcrete under a context: the enumeration loop
// polls the context and aborts with its error once it is cancelled or its
// deadline passes. The search runs under a "synth.enumerate" span with one
// "synth.size" child per size tier entered.
//
// With Limits.EnumWorkers > 1 each size tier's composition work is
// partitioned across that many goroutines and merged deterministically, so
// the returned expression and every ConcreteStats counter are identical to
// the sequential run (see DESIGN.md §10).
func SolveConcreteCtx(ctx context.Context, p Problem, examples []ConcreteExample, limits Limits) (expr.Expr, ConcreteStats, error) {
	e, stats, _, err := solveConcrete(ctx, p, examples, limits, nil, false)
	return e, stats, err
}

// solveConcrete is the shared driver behind SolveConcreteCtx and the
// CEGIS bank-reuse path: it validates, opens the enumeration span, builds
// a fresh enumerator or resumes the supplied bank, runs the search, and —
// when wantBank is set and the search succeeded — harvests the enumerator
// state for the next round. A resumed search that exhausts the size bound
// transparently restarts from scratch (the stale pools may lack entries
// that only became distinguishable under the newest concretizations), so
// bank reuse never loses completeness.
func solveConcrete(ctx context.Context, p Problem, examples []ConcreteExample, limits Limits,
	bk *bank, wantBank bool) (expr.Expr, ConcreteStats, *bank, error) {
	limits = limits.withDefaults()
	if err := p.validate(); err != nil {
		return nil, ConcreteStats{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, ConcreteStats{}, nil, fmt.Errorf("synth: enumeration aborted: %w", err)
	}
	for i, c := range examples {
		if c.Out.Type() != p.Output.VT {
			return nil, ConcreteStats{}, nil, fmt.Errorf("synth: example %d output has type %s, want %s",
				i, c.Out.Type(), p.Output.VT)
		}
	}
	resume := bk.usable(examples, limits)
	stale := false
	var en *enumerator
	if resume {
		// resumeEnumerator returns nil when the shadow store proves the
		// bank stale — some previously-pruned candidate escaped every
		// pooled class under the new concretizations — in which case the
		// resumed walk could only end in exhaustion and restart, so the
		// round restarts fresh immediately.
		en = resumeEnumerator(ctx, p, examples, limits, bk)
		if en == nil {
			resume, stale = false, true
		}
	}
	ctx, span := obs.Start(ctx, "synth.enumerate",
		obs.Int("examples", len(examples)), obs.Int("max_size", limits.MaxSize),
		obs.Int("workers", enumWorkers(limits)), obs.Bool("resumed", resume),
		obs.Bool("bank_stale", stale))
	if reg := obs.MetricsFrom(ctx); reg != nil {
		if resume {
			reg.Counter("synth.bank_reused").Inc()
		}
		if stale {
			reg.Counter("synth.bank_stale").Inc()
		}
	}
	if en == nil {
		en = newEnumerator(ctx, p, examples, limits)
		if !wantBank {
			en.disableShadows()
		}
		en.initFresh()
	} else {
		en.ctx = ctx
	}
	res, err := en.run()
	stats := en.stats
	if stale {
		// A stale-skip counts as a restart: the round ran a fresh search,
		// it just skipped the doomed resumed walk in front of it.
		stats.Restarts++
	}
	if resume && err != nil && en.exhausted {
		// Fallback: restart from size 1. The resumed pools are frozen at
		// the previous rounds' signature partition; an expression whose
		// subterms only became distinguishable under the new
		// concretizations is unreachable from them, so a clean exhaustion
		// of the resumed search is retried without the bank before it is
		// believed. Stats report the total work of both attempts.
		if reg := obs.MetricsFrom(ctx); reg != nil {
			reg.Counter("synth.bank_fallback").Inc()
		}
		en = newEnumerator(ctx, p, examples, limits)
		en.initFresh()
		res, err = en.run()
		stats.Restarts++
		stats.Enumerated += en.stats.Enumerated
		stats.Kept += en.stats.Kept
		stats.InterpPruned += en.stats.InterpPruned
		if en.stats.MaxSizeSeen > stats.MaxSizeSeen {
			stats.MaxSizeSeen = en.stats.MaxSizeSeen
		}
		stats.Elapsed += en.stats.Elapsed
	}
	if stats.InterpPruned > 0 {
		if reg := obs.MetricsFrom(ctx); reg != nil {
			reg.Counter("synth.interp_pruned").Add(stats.InterpPruned)
		}
	}
	span.SetAttr(obs.Int64("enumerated", stats.Enumerated),
		obs.Int64("kept", stats.Kept),
		obs.Int("max_size_seen", stats.MaxSizeSeen),
		obs.Int64("interp_pruned", stats.InterpPruned),
		obs.Bool("found", res != nil))
	span.End()
	var nbk *bank
	if err == nil && wantBank {
		nbk = en.harvest()
	}
	return res, stats, nbk, err
}

// enumWorkers resolves the effective tier worker count: NoPrune retains
// every candidate (no signature table to merge against), so the
// exhaustive baseline always runs sequentially. The count is additionally
// clamped to GOMAXPROCS — workers beyond available parallelism can only
// timeshare a core, paying goroutine and per-worker-table overhead for no
// throughput — and the clamp is invisible in results: any worker count
// returns the same expression and the same ConcreteStats through the
// deterministic merge (DESIGN.md §10), so only wall-clock time changes.
func enumWorkers(l Limits) int {
	if l.NoPrune || l.EnumWorkers < 1 {
		return 1
	}
	if p := runtime.GOMAXPROCS(0); l.EnumWorkers > p {
		return p
	}
	return l.EnumWorkers
}

// interpReduced reports whether interpretation-indexed pruning is active:
// it layers on the signature table, so NoPrune disables it along with the
// table itself.
func interpReduced(l Limits) bool { return !l.NoPrune && !l.NoInterpReduction }

// interpProbes builds the deterministic probe interpretations the shadow
// store indexes full signatures by (and the unrealizability atlas seeds
// its class enumeration with). The set is fixed by the problem alone —
// (universe, input variables) — so every round of one CEGIS solve, and
// every configuration racing in a portfolio, keys shadow classes by the
// same probe prefix, which is what lets a bank carry shadows across
// rounds.
//
// The probes are chosen where CEGIS concretizations actually land: the
// saturated corner (every variable at its domain maximum — the corner the
// SMT hint steers every witness toward, so the first concretization is
// usually already separated by probe 0), the zero corner, and an
// alternating max/zero valuation that breaks ties between same-typed
// variables. Three probes keep the per-candidate evaluation overhead small
// while splitting exactly the classes whose merged members tend to become
// distinguishable a round later — the splits that make a resumed bank
// stale.
func interpProbes(p Problem) []expr.Env {
	if len(p.Vars) == 0 {
		return nil
	}
	sat := make(expr.Env, len(p.Vars))
	zero := make(expr.Env, len(p.Vars))
	alt := make(expr.Env, len(p.Vars))
	for i, v := range p.Vars {
		sat[v.Name] = expr.MaxOf(p.U, v.VT)
		zero[v.Name] = expr.ZeroOf(v.VT)
		if i%2 == 0 {
			alt[v.Name] = expr.MaxOf(p.U, v.VT)
		} else {
			alt[v.Name] = expr.ZeroOf(v.VT)
		}
	}
	return []expr.Env{sat, zero, alt}
}

// entry pairs a retained expression with its signature so that parent
// signatures compose from child signatures without re-walking trees, and
// with its signature key so a resumed round extends the key in place — one
// evaluation and one fixed-width append per new concretization — instead
// of re-encoding it (key is nil under NoPrune, where no bank is built).
// psig holds the entry's probe coordinates when shadow tracking is active
// (nil otherwise): parents' probe signatures compose pointwise from child
// psigs exactly like sig.
type entry struct {
	e    expr.Expr
	sig  []expr.Value
	key  []byte
	psig []expr.Value
}

// staleAlt is a split shadow: a candidate that an earlier round pruned as
// example-indistinguishable from a retained representative and that a
// later concretization separated from every pooled class. The pools can
// never recover the split retroactively — every composition over the
// candidate is unreachable from them — so a live split means the resumed
// walk may be searching a partition the fresh search would not build.
// resumeEnumerator probes the splits before the walk starts
// (shallowAltDoom): a split that already wins at or below the resume
// cursor skips the resumed walk outright, and a deeper potential winner
// caps the walk at its size so the exhaustion fallback fires before the
// resumed search overshoots into exponentially larger tiers
// (DESIGN.md §15).
//
// sig holds the alt's example-coordinate values, extended each round like
// pool signatures.
type staleAlt struct {
	e   expr.Expr
	sig []expr.Value
}

// maxAlts bounds the alts carried per bank. Beyond it, further splits go
// undetected by the adopt-time probe and fall to the exhaustion-restart
// fallback — slower, never wrong.
const maxAlts = 96

// shadowEntry is a pruned-but-probe-distinct candidate retained on the
// side: an expression (of any type, within shadowTrackMaxSize) whose
// example signature duplicated an earlier candidate's but whose full
// (probe + example) interpretation signature was new. Shadows never enter
// the candidate stream — pools, pruning, and the goal test stay exactly
// example-keyed, which is what keeps every answer identical to the
// unreduced search.
// Their job is staleness detection: a resumed round extends each shadow's
// key with the new concretizations, and a shadow whose extended example
// coordinates escape every pooled class proves the bank's partition went
// stale, letting the round restart fresh immediately instead of walking
// the doomed resumed tiers first (DESIGN.md §15).
//
// key is the example signature key (same layout as pool keys), so
// extension is one evaluation and one fixed-width append per new
// concretization, like pool entries; psig holds the probe coordinates
// that distinguished the shadow within its example class. size/idx are
// the candidate's tier coordinates; the parallel merge orders shadow
// events by them so the stored set is identical at every worker count.
type shadowEntry struct {
	e    expr.Expr
	key  []byte
	psig []expr.Value
	size int
	idx  int64
}

// maxShadows bounds the shadow store per solve. Beyond it, new
// probe-distinct duplicates are dropped: completeness is unaffected
// (shadows only make staleness detection sharper; the exhaustion-restart
// fallback still covers whatever was dropped), so the cap just bounds
// memory on signature-rich vocabularies.
const maxShadows = 1 << 13

// shadowTrackMaxSize bounds the candidate sizes shadow tracking watches.
// Pool staleness is caused by subterm classes merging: a pruned small
// expression that later rounds distinguish invalidates every larger
// composition that needed it, so the small tiers are where splits are
// both detectable and meaningful — while the large tiers hold the
// overwhelming majority of candidates (tier growth is exponential) and
// would pay the per-duplicate probe evaluations for no extra detection
// power. Tracking stops above this size, keeping the overhead a few
// percent of enumeration on every Table 3 vocabulary.
const shadowTrackMaxSize = 5

type enumerator struct {
	ctx      context.Context
	p        Problem
	examples []ConcreteExample
	limits   Limits
	start    time.Time
	stats    ConcreteStats
	workers  int

	// perSize[s][t] holds retained entries of size s and type t, in
	// canonical enumeration order. sigSeen is the pruning table: one key
	// per signature class seen. Under shadow tracking the value holds the
	// class's probe coordinate chunks (the retained representative's and
	// every stored shadow's, len(shadowProbes) values per chunk), so the
	// duplicate path answers "example dup" and "full-signature dup" with a
	// single map access; without tracking the values stay nil.
	perSize []map[expr.Type][]entry
	sigSeen map[string][]expr.Value

	// probes are extra valuations folded into the main signature;
	// vectors are laid out [probe evaluations..., example evaluations...],
	// so the goal test is a fixed-offset suffix comparison (goalSuffix at
	// byte offset goalOff of the key). Normal solves leave probes empty —
	// the stream partition must stay example-keyed for answer identity —
	// and only the unrealizability atlas installs a probe set (with
	// noGoal, which suppresses the goal test: the atlas enumerates
	// classes, it does not search for a winner).
	probes     []expr.Env
	nSig       int
	goalSuffix string
	goalOff    int
	noGoal     bool

	// Shadow-class state (interpretation reduction, DESIGN.md §15). The
	// shadowProbes valuations refine the example partition on the side:
	// each example class's probe coordinate chunks live in sigSeen's
	// values — the full (probe + example) signature set, without ever
	// materializing full keys. shadows holds the probe-distinct duplicates
	// themselves, and candIdx tracks the tier-local index of the candidate
	// being considered so shadows carry their stream coordinates. probeBuf
	// is reusable scratch, keeping the duplicate path allocation-free, and
	// doubles as the "tracking active" flag. All nil/unused when reduction
	// is off or no bank will consume them.
	shadowProbes []expr.Env
	shadows      []shadowEntry
	probeBuf     []expr.Value
	candIdx      int64
	// trackTier is set per size tier: shadow tracking is active and the
	// tier is within shadowTrackMaxSize.
	trackTier bool

	// Split shadows carried by the bank, set only on resumed rounds with
	// live splits; consumed by the adopt-time shallowAltDoom probe.
	alts []*staleAlt

	sigBuf []expr.Value
	keyBuf []byte
	argBuf []expr.Value

	// Scratch buffers hoisted out of the per-tier loops so the hot path
	// allocates only for candidates that survive pruning.
	shareBuf []int
	argsBuf  []entry
	posBuf   []int

	// Resume cursor: tiers below resumeSize are already banked; within
	// tier resumeSize the first resumeSkip candidates were consumed by
	// the previous round (the last of them was its winner). resumeCap,
	// when nonzero, bounds a resumed search below Limits.MaxSize: a stale
	// bank (pools missing entries only the newest concretizations can
	// distinguish) is only discovered by exhausting every tier, and the
	// tiers beyond where a fresh search would stop grow exponentially, so
	// a resumed search that has not won within a few tiers of the cursor
	// gives up early and lets the restart fallback take over.
	resumeSize int
	resumeSkip int64
	resumeCap  int

	// Winner cursor, recorded for the bank when the search succeeds:
	// the winner was candidate curIdx (1-based, tier-local) of tier
	// curSize.
	curSize int
	curIdx  int64

	// exhausted marks a run that walked every tier up to MaxSize without
	// finding the goal or hitting a budget — the only failure mode the
	// bank-resume path may transparently retry as a fresh search.
	exhausted bool
}

func newEnumerator(ctx context.Context, p Problem, examples []ConcreteExample, limits Limits) *enumerator {
	en := &enumerator{ctx: ctx, p: p, examples: examples, limits: limits,
		start: time.Now(), workers: enumWorkers(limits)}
	// Shadow tracking rides on the signature table and only pays off when
	// a later round can consult the shadows, i.e. when a bank will be
	// built. A zero-example round has a degenerate partition (one class
	// per type) whose bank is never resumed, so it skips tracking too.
	// The probe valuations deliberately do NOT join the main signature:
	// the candidate stream, pruning, and goal test stay example-keyed, so
	// answers are identical to the unreduced search by construction.
	if interpReduced(limits) && !limits.NoBankReuse && len(examples) > 0 {
		en.shadowProbes = interpProbes(p)
		if len(en.shadowProbes) > 0 {
			en.probeBuf = make([]expr.Value, len(en.shadowProbes))
		}
	}
	en.initSigLayout()
	return en
}

// disableShadows turns shadow tracking off after construction; callers
// that will not build a bank (plain SolveConcrete) use it to keep the hot
// path free of probe evaluations.
func (en *enumerator) disableShadows() {
	en.shadowProbes, en.probeBuf, en.shadows = nil, nil, nil
}

// initSigLayout derives the signature layout from the installed probe and
// example sets: buffer sizes, the goal suffix (the encoded example
// outputs), and its fixed byte offset within a key. Split out of
// newEnumerator so the unrealizability atlas can install a custom probe
// set and re-derive.
func (en *enumerator) initSigLayout() {
	en.nSig = len(en.probes) + len(en.examples)
	en.sigBuf = make([]expr.Value, en.nSig)
	var suffix []byte
	for _, c := range en.examples {
		suffix = c.Out.AppendEncoding(suffix)
	}
	en.goalSuffix = string(suffix)
	en.goalOff = sigKeyHeaderLen + sigValEncLen*len(en.probes)
}

// goalHit reports whether a candidate of type t whose signature key is key
// matches the goal: right output type and example coordinates equal to the
// example outputs. Probe coordinates deliberately do not participate — the
// goal constrains only the examples — which is what keeps the finer
// probe-keyed partition answer-identical to the example-only one (the
// first key-suffix match in enumeration order is the same expression
// either way; DESIGN.md §15).
func (en *enumerator) goalHit(t expr.Type, key []byte) bool {
	return !en.noGoal && t == en.p.Output.VT && string(key[en.goalOff:]) == en.goalSuffix
}

// initFresh allocates empty pools and signature table for a from-scratch
// search (resumeEnumerator installs banked ones instead).
func (en *enumerator) initFresh() {
	en.sigSeen = make(map[string][]expr.Value)
	en.perSize = make([]map[expr.Type][]entry, en.limits.MaxSize+1)
	for i := range en.perSize {
		en.perSize[i] = make(map[expr.Type][]entry)
	}
}

// errStop distinguishes budget exhaustion from normal exhaustion.
type errStop struct{ reason string }

func (e errStop) Error() string { return e.reason }

func (en *enumerator) run() (expr.Expr, error) {
	startSize := 1
	maxSize := en.limits.MaxSize
	if en.resumeSize > 0 {
		startSize = en.resumeSize
		if en.resumeCap > 0 && en.resumeCap < maxSize {
			maxSize = en.resumeCap
		}
	}
	for size := startSize; size <= maxSize; size++ {
		en.stats.MaxSizeSeen = size
		var skip int64
		if size == en.resumeSize {
			skip = en.resumeSkip
		}
		found, err := en.runSize(size, skip)
		if err != nil {
			return nil, budgetErr(err)
		}
		if found != nil {
			en.stats.Elapsed = time.Since(en.start)
			return found, nil
		}
	}
	en.exhausted = true
	en.stats.Elapsed = time.Since(en.start)
	return nil, fmt.Errorf("%w (size <= %d, %d candidates)", ErrNoExpression, maxSize, en.stats.Enumerated)
}

// minParallelTier is the smallest remaining tier workload worth fanning
// out; below it goroutine startup and merge overhead dominate. The
// sequential and parallel paths are output-identical, so the threshold
// only affects wall-clock time.
const minParallelTier = 2048

// runSize enumerates one size tier under its own "synth.size" span, so a
// trace shows where enumeration time concentrates as tiers grow. skip is
// the number of leading tier-local candidates already consumed by the
// round that built the bank being resumed (0 on fresh tiers).
func (en *enumerator) runSize(size int, skip int64) (found expr.Expr, err error) {
	en.trackTier = en.probeBuf != nil && size <= shadowTrackMaxSize
	before := en.stats.Enumerated
	tierStart := time.Now()
	_, span := obs.Start(en.ctx, "synth.size", obs.Int("size", size))
	if span != nil {
		// Live "now enumerating tier k" gauge; the closing span carries
		// the totals, this mark makes the current tier visible mid-tier.
		span.Mark("synth.tier", obs.Int("size", size),
			obs.Int64("skip", skip), obs.Int64("enumerated", before))
	}
	workersUsed := 1
	defer func() {
		span.SetAttr(obs.Int64("enumerated", en.stats.Enumerated-before),
			obs.Int("workers", workersUsed),
			obs.Bool("found", found != nil))
		span.End()
		if reg := obs.MetricsFrom(en.ctx); reg != nil {
			reg.Counter("synth.tier_workers").Add(int64(workersUsed))
			reg.Histogram("synth.tier_ms").Observe(time.Since(tierStart))
		}
	}()
	if size == 1 {
		return en.runAtoms(skip)
	}
	units, total := en.buildUnits(size)
	if total <= skip {
		return nil, nil
	}
	if en.workers > 1 && total-skip >= minParallelTier {
		workersUsed = en.workers
		return en.runTierPar(size, units, total, skip)
	}
	return en.runTierSeq(size, units, skip)
}

// runAtoms enumerates the size-1 tier: variables in declaration order,
// then arity-0 function symbols in vocabulary order. The tier is tiny, so
// it always runs sequentially.
func (en *enumerator) runAtoms(skip int64) (expr.Expr, error) {
	idx := int64(0)
	atom := func(e expr.Expr) (expr.Expr, error) {
		idx++
		if idx <= skip {
			return nil, nil
		}
		en.candIdx = idx
		return en.consider(e)
	}
	for _, v := range en.p.Vars {
		found, err := atom(v)
		if err != nil || found != nil {
			en.curSize, en.curIdx = 1, idx
			return found, err
		}
	}
	for _, f := range en.p.Vocab.Funcs() {
		if f.Arity() != 0 {
			continue
		}
		found, err := atom(expr.NewApply(f))
		if err != nil || found != nil {
			en.curSize, en.curIdx = 1, idx
			return found, err
		}
	}
	return nil, nil
}

// runTierSeq processes a tier's units in canonical order through the
// sequential charge/prune/retain path (also the NoPrune path).
func (en *enumerator) runTierSeq(size int, units []tierUnit, skip int64) (expr.Expr, error) {
	for ui := range units {
		u := &units[ui]
		if u.base+u.count <= skip {
			continue
		}
		found, idx, err := en.seqUnit(u, skip)
		if err != nil {
			return nil, err
		}
		if found != nil {
			en.curSize, en.curIdx = size, idx
			return found, nil
		}
	}
	return nil, nil
}

// seqUnit enumerates one unit's candidates, fast-forwarding past the
// resumed prefix by index arithmetic instead of iteration.
func (en *enumerator) seqUnit(u *tierUnit, skip int64) (expr.Expr, int64, error) {
	m := len(u.shares)
	if cap(en.argsBuf) < m {
		en.argsBuf = make([]entry, m)
	}
	if cap(en.posBuf) < m {
		en.posBuf = make([]int, m)
	}
	args, pos := en.argsBuf[:m], en.posBuf[:m]
	off := int64(0)
	if skip > u.base {
		off = skip - u.base
	}
	u.decode(off, pos)
	for {
		for j := 0; j < m; j++ {
			args[j] = u.pools[j][pos[j]]
		}
		en.candIdx = u.base + off + 1
		found, err := en.considerApply(u.f, args)
		if err != nil {
			return nil, 0, err
		}
		if found != nil {
			return found, u.base + off + 1, nil
		}
		off++
		if off == u.count {
			return nil, 0, nil
		}
		u.advance(pos)
	}
}

func budgetErr(err error) error {
	if s, ok := err.(errStop); ok {
		return fmt.Errorf("%w (%s)", ErrNoExpression, s.reason)
	}
	return err
}

// considerApply evaluates the candidate's signature from child signatures,
// prunes, and on survival materializes the expression node. The hot path
// is allocation-free until a candidate survives pruning: the signature and
// key live in reusable buffers, and map lookups use the compiler's
// alloc-free string([]byte) comparison.
func (en *enumerator) considerApply(f *expr.Func, args []entry) (expr.Expr, error) {
	if err := en.charge(); err != nil {
		return nil, err
	}
	if cap(en.argBuf) < len(args) {
		en.argBuf = make([]expr.Value, len(args))
	}
	argv := en.argBuf[:len(args)]
	// Probe coordinates compose pointwise exactly like example
	// coordinates: a child's value at a probe valuation is its sig entry,
	// and evaluation is compositional.
	for k := 0; k < en.nSig; k++ {
		for j := range args {
			argv[j] = args[j].sig[k]
		}
		en.sigBuf[k] = f.Apply(en.p.U, argv)
	}
	en.keyBuf = appendSigKey(en.keyBuf[:0], f.Ret, en.sigBuf)
	if !en.limits.NoPrune {
		if rows, seen := en.sigSeen[string(en.keyBuf)]; seen {
			if en.trackTier {
				en.fillProbesApply(f, args)
				if psigsContain(rows, en.probeBuf) {
					en.stats.InterpPruned++
				} else if len(en.shadows) < maxShadows {
					childExprs := make([]expr.Expr, len(args))
					size := 1
					for j, a := range args {
						childExprs[j] = a.e
						size += a.e.Size()
					}
					en.addShadow(expr.NewApply(f, childExprs...), size)
				}
			}
			return nil, nil
		}
	}
	if en.trackTier {
		en.fillProbesApply(f, args)
	}
	childExprs := make([]expr.Expr, len(args))
	size := 1
	for j, a := range args {
		childExprs[j] = a.e
		size += a.e.Size()
	}
	node := expr.NewApply(f, childExprs...)
	return en.retain(node, size)
}

// fillProbesApply composes the candidate's probe coordinates pointwise
// from its children's psigs into probeBuf (alloc-free; argBuf is free
// again once the main signature loop is done).
func (en *enumerator) fillProbesApply(f *expr.Func, args []entry) {
	argv := en.argBuf[:len(args)]
	for k := range en.shadowProbes {
		for j := range args {
			argv[j] = args[j].psig[k]
		}
		en.probeBuf[k] = f.Apply(en.p.U, argv)
	}
}

// fillProbesEval evaluates a size-1 candidate's probe coordinates
// directly.
func (en *enumerator) fillProbesEval(e expr.Expr) {
	for k, env := range en.shadowProbes {
		en.probeBuf[k] = e.Eval(en.p.U, env)
	}
}

// psigsContain reports whether rows — a flat sequence of len(ps)-stride
// probe-value chunks — contains a chunk equal to ps. Within one universe,
// Value equality coincides with encoding equality (Value is comparable,
// constructors zero unused payload fields, and equal enum types share one
// *EnumType), so a chunk match under a shared example key is exactly a
// full-signature match — without building a key or encoding a value.
func psigsContain(rows, ps []expr.Value) bool {
	np := len(ps)
	for i := 0; i < len(rows); i += np {
		match := true
		for j := 0; j < np; j++ {
			if rows[i+j] != ps[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// addShadow stores the candidate (example key in keyBuf, probe chunk in
// probeBuf) as a shadow of its example class: the chunk joins the class's
// rows in sigSeen and the shadow itself is retained on the side. The
// caller has checked coverage and the cap. Like retained keys, the stored
// key carries extension headroom: adoptShadows appends one record per new
// concretization each round.
func (en *enumerator) addShadow(e expr.Expr, size int) {
	key := make([]byte, len(en.keyBuf), len(en.keyBuf)+sigValEncLen*sigHeadroom)
	copy(key, en.keyBuf)
	psig := append([]expr.Value(nil), en.probeBuf...)
	en.sigSeen[string(key)] = append(en.sigSeen[string(key)], psig...)
	en.shadows = append(en.shadows, shadowEntry{e: e, key: key, psig: psig, size: size, idx: en.candIdx})
}

// consider handles size-1 candidates, which must be evaluated directly.
func (en *enumerator) consider(e expr.Expr) (expr.Expr, error) {
	if err := en.charge(); err != nil {
		return nil, err
	}
	for k, env := range en.probes {
		en.sigBuf[k] = e.Eval(en.p.U, env)
	}
	np := len(en.probes)
	for k, c := range en.examples {
		en.sigBuf[np+k] = e.Eval(en.p.U, c.S)
	}
	en.keyBuf = appendSigKey(en.keyBuf[:0], e.Type(), en.sigBuf)
	if !en.limits.NoPrune {
		if rows, seen := en.sigSeen[string(en.keyBuf)]; seen {
			if en.trackTier {
				en.fillProbesEval(e)
				if psigsContain(rows, en.probeBuf) {
					en.stats.InterpPruned++
				} else if len(en.shadows) < maxShadows {
					en.addShadow(e, e.Size())
				}
			}
			return nil, nil
		}
	}
	if en.trackTier {
		en.fillProbesEval(e)
	}
	return en.retain(e, e.Size())
}

// retain stores a surviving candidate (whose key is in keyBuf) and reports
// it if it hits the goal. Winners are pooled too: the bank needs the
// winner entry in place so a resumed round re-encounters it as an
// ordinary retained expression.
func (en *enumerator) retain(e expr.Expr, size int) (expr.Expr, error) {
	en.stats.Kept++
	if size < len(en.perSize) {
		// Signature and key copies carry capacity headroom for a few future
		// concretizations: the bank extends both in place on every resumed
		// round, and exact-size allocations would force a reallocation of
		// every entry every round.
		sig := make([]expr.Value, len(en.sigBuf), len(en.sigBuf)+sigHeadroom)
		copy(sig, en.sigBuf)
		var key []byte
		var psig []expr.Value
		if !en.limits.NoPrune {
			key = make([]byte, len(en.keyBuf), len(en.keyBuf)+sigValEncLen*sigHeadroom)
			copy(key, en.keyBuf)
			if en.trackTier {
				// The caller filled probeBuf; record the coordinates so
				// parents compose from them, and seed the class's probe
				// rows so duplicates of it are recognized.
				psig = append([]expr.Value(nil), en.probeBuf...)
			}
			// A surviving candidate is its class's first member, so the
			// assignment both marks the class seen and installs its first
			// probe chunk (nil without tracking).
			en.sigSeen[string(key)] = psig
		}
		en.perSize[size][e.Type()] = append(en.perSize[size][e.Type()], entry{e: e, sig: sig, key: key, psig: psig})
	}
	if en.goalHit(e.Type(), en.keyBuf) {
		en.stats.Elapsed = time.Since(en.start)
		return e, nil
	}
	return nil, nil
}

// charge accounts one candidate against the budgets and polls the
// cancellation context. The budget check precedes the increment so that a
// budget of N admits exactly N candidates (candidate N itself may still
// win).
func (en *enumerator) charge() error {
	if en.stats.Enumerated >= en.limits.MaxExprs {
		en.stats.Elapsed = time.Since(en.start)
		return errStop{reason: fmt.Sprintf("expression budget %d exhausted", en.limits.MaxExprs)}
	}
	en.stats.Enumerated++
	if en.stats.Enumerated%4096 == 0 {
		if err := en.ctx.Err(); err != nil {
			en.stats.Elapsed = time.Since(en.start)
			return fmt.Errorf("synth: enumeration aborted: %w", err)
		}
		if en.limits.Timeout > 0 && time.Since(en.start) > en.limits.Timeout {
			en.stats.Elapsed = time.Since(en.start)
			return errStop{reason: "timeout"}
		}
	}
	return nil
}

// Signature-key layout constants: a key is a sigKeyHeaderLen-byte type
// header (kind tag, enum ID or 0) followed by one fixed sigValEncLen-byte
// record per signature value (expr.Value.AppendEncoding). The fixed widths
// are what make the goal test a constant-offset suffix comparison and the
// bank's key extension a plain append; TestSigKeyLayout pins them against
// the encoder.
const (
	sigKeyHeaderLen = 2
	sigValEncLen    = 10
)

// sigHeadroom is the number of future concretizations retained signatures
// and keys reserve capacity for, letting the bank's per-round in-place
// extension append without reallocating every entry (CEGIS adds one
// example per round, so this covers the next few rounds per allocation).
const sigHeadroom = 4

// appendSigKey appends the map key for a signature: the expression type
// tag followed by the fixed-width encodings of the probe and example
// values. The encoding is injective over (type, value-vector) pairs — see
// FuzzSigKeyInjective — which the parallel merge relies on: a silent
// collision would fuse two distinguishable candidate classes.
func appendSigKey(dst []byte, t expr.Type, sig []expr.Value) []byte {
	dst = append(dst, byte(t.Kind))
	if t.Kind == expr.KindEnum {
		dst = append(dst, byte(t.Enum.ID()))
	} else {
		dst = append(dst, 0)
	}
	for _, v := range sig {
		dst = v.AppendEncoding(dst)
	}
	return dst
}
