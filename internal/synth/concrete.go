package synth

import (
	"context"
	"fmt"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
)

// SolveConcrete implements Algorithm 1: enumerate expressions of increasing
// size over the vocabulary, pruning candidates whose signature (vector of
// evaluations over the concrete examples) has been seen before, until one
// matches the goal signature (the vector of example outputs).
//
// With an empty example set, every expression is indistinguishable from
// every other of its type, so the first enumerated expression of the output
// type is returned — exactly the seeding behaviour Algorithm 2 relies on.
func SolveConcrete(p Problem, examples []ConcreteExample, limits Limits) (expr.Expr, ConcreteStats, error) {
	return SolveConcreteCtx(context.Background(), p, examples, limits)
}

// SolveConcreteCtx is SolveConcrete under a context: the enumeration loop
// polls the context and aborts with its error once it is cancelled or its
// deadline passes. The search runs under a "synth.enumerate" span with one
// "synth.size" child per size tier entered.
func SolveConcreteCtx(ctx context.Context, p Problem, examples []ConcreteExample, limits Limits) (expr.Expr, ConcreteStats, error) {
	limits = limits.withDefaults()
	if err := p.validate(); err != nil {
		return nil, ConcreteStats{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, ConcreteStats{}, fmt.Errorf("synth: enumeration aborted: %w", err)
	}
	for i, c := range examples {
		if c.Out.Type() != p.Output.VT {
			return nil, ConcreteStats{}, fmt.Errorf("synth: example %d output has type %s, want %s",
				i, c.Out.Type(), p.Output.VT)
		}
	}
	ctx, span := obs.Start(ctx, "synth.enumerate",
		obs.Int("examples", len(examples)), obs.Int("max_size", limits.MaxSize))
	e := &enumerator{ctx: ctx, p: p, examples: examples, limits: limits, start: time.Now()}
	res, err := e.run()
	span.SetAttr(obs.Int64("enumerated", e.stats.Enumerated),
		obs.Int64("kept", e.stats.Kept),
		obs.Int("max_size_seen", e.stats.MaxSizeSeen),
		obs.Bool("found", res != nil))
	span.End()
	return res, e.stats, err
}

// entry pairs a retained expression with its signature so that parent
// signatures compose from child signatures without re-walking trees.
type entry struct {
	e   expr.Expr
	sig []expr.Value
}

type enumerator struct {
	ctx      context.Context
	p        Problem
	examples []ConcreteExample
	limits   Limits
	start    time.Time
	stats    ConcreteStats

	// perSize[s][t] holds retained entries of size s and type t.
	perSize []map[expr.Type][]entry
	sigSeen map[string]struct{}
	goalKey string
	sigBuf  []expr.Value
	keyBuf  []byte
	argBuf  []expr.Value
}

// errStop distinguishes budget exhaustion from normal exhaustion.
type errStop struct{ reason string }

func (e errStop) Error() string { return e.reason }

func (en *enumerator) run() (expr.Expr, error) {
	en.sigSeen = make(map[string]struct{})
	en.perSize = make([]map[expr.Type][]entry, en.limits.MaxSize+1)
	for i := range en.perSize {
		en.perSize[i] = make(map[expr.Type][]entry)
	}
	en.sigBuf = make([]expr.Value, len(en.examples))

	goal := make([]expr.Value, len(en.examples))
	for i, c := range en.examples {
		goal[i] = c.Out
	}
	en.goalKey = en.sigKey(en.p.Output.VT, goal)

	// Size 1: variables and arity-0 function symbols.
	en.stats.MaxSizeSeen = 1
	for _, v := range en.p.Vars {
		if found, err := en.consider(v); err != nil {
			return nil, budgetErr(err)
		} else if found != nil {
			return found, nil
		}
	}
	for _, f := range en.p.Vocab.Funcs() {
		if f.Arity() != 0 {
			continue
		}
		if found, err := en.consider(expr.NewApply(f)); err != nil {
			return nil, budgetErr(err)
		} else if found != nil {
			return found, nil
		}
	}

	// Sizes 2..MaxSize: compose from smaller retained entries.
	for size := 2; size <= en.limits.MaxSize; size++ {
		en.stats.MaxSizeSeen = size
		found, err := en.runSize(size)
		if err != nil {
			return nil, budgetErr(err)
		}
		if found != nil {
			return found, nil
		}
	}
	return nil, fmt.Errorf("%w (size <= %d, %d candidates)", ErrNoExpression, en.limits.MaxSize, en.stats.Enumerated)
}

// runSize enumerates one size tier under its own "synth.size" span, so a
// trace shows where enumeration time concentrates as tiers grow.
func (en *enumerator) runSize(size int) (found expr.Expr, err error) {
	before := en.stats.Enumerated
	_, span := obs.Start(en.ctx, "synth.size", obs.Int("size", size))
	defer func() {
		span.SetAttr(obs.Int64("enumerated", en.stats.Enumerated-before),
			obs.Bool("found", found != nil))
		span.End()
	}()
	for _, f := range en.p.Vocab.Funcs() {
		if f.Arity() == 0 {
			continue
		}
		found, err = en.compose(f, size)
		if err != nil || found != nil {
			return found, err
		}
	}
	return nil, nil
}

func budgetErr(err error) error {
	if s, ok := err.(errStop); ok {
		return fmt.Errorf("%w (%s)", ErrNoExpression, s.reason)
	}
	return err
}

// compose enumerates f(e1..em) of the exact target size by splitting
// size-1 across the arguments.
func (en *enumerator) compose(f *expr.Func, size int) (expr.Expr, error) {
	m := f.Arity()
	budget := size - 1
	if budget < m {
		return nil, nil
	}
	shares := make([]int, m)
	args := make([]entry, m)
	var rec func(i, remaining int) (expr.Expr, error)
	rec = func(i, remaining int) (expr.Expr, error) {
		if i == m-1 {
			shares[i] = remaining
			return en.tuples(f, shares, args, 0)
		}
		for s := 1; s <= remaining-(m-1-i); s++ {
			shares[i] = s
			if found, err := rec(i+1, remaining-s); err != nil || found != nil {
				return found, err
			}
		}
		return nil, nil
	}
	return rec(0, budget)
}

// tuples iterates the Cartesian product of retained entries matching the
// chosen size split.
func (en *enumerator) tuples(f *expr.Func, shares []int, args []entry, i int) (expr.Expr, error) {
	if i == len(shares) {
		return en.considerApply(f, args)
	}
	pool := en.perSize[shares[i]][f.Params[i]]
	for _, ent := range pool {
		args[i] = ent
		if found, err := en.tuples(f, shares, args, i+1); err != nil || found != nil {
			return found, err
		}
	}
	return nil, nil
}

// considerApply evaluates the candidate's signature from child signatures,
// prunes, and on survival materializes the expression node. The hot path
// is allocation-free until a candidate survives pruning: the signature and
// key live in reusable buffers, and map lookups use the compiler's
// alloc-free string([]byte) comparison.
func (en *enumerator) considerApply(f *expr.Func, args []entry) (expr.Expr, error) {
	if err := en.charge(); err != nil {
		return nil, err
	}
	if cap(en.argBuf) < len(args) {
		en.argBuf = make([]expr.Value, len(args))
	}
	argv := en.argBuf[:len(args)]
	for k := range en.examples {
		for j := range args {
			argv[j] = args[j].sig[k]
		}
		en.sigBuf[k] = f.Apply(en.p.U, argv)
	}
	en.fillKeyBuf(f.Ret, en.sigBuf)
	if !en.limits.NoPrune {
		if _, seen := en.sigSeen[string(en.keyBuf)]; seen {
			return nil, nil
		}
		en.sigSeen[string(en.keyBuf)] = struct{}{}
	}
	childExprs := make([]expr.Expr, len(args))
	size := 1
	for j, a := range args {
		childExprs[j] = a.e
		size += a.e.Size()
	}
	node := expr.NewApply(f, childExprs...)
	return en.retain(node, size)
}

// consider handles size-1 candidates, which must be evaluated directly.
func (en *enumerator) consider(e expr.Expr) (expr.Expr, error) {
	if err := en.charge(); err != nil {
		return nil, err
	}
	for k, c := range en.examples {
		en.sigBuf[k] = e.Eval(en.p.U, c.S)
	}
	en.fillKeyBuf(e.Type(), en.sigBuf)
	if !en.limits.NoPrune {
		if _, seen := en.sigSeen[string(en.keyBuf)]; seen {
			return nil, nil
		}
		en.sigSeen[string(en.keyBuf)] = struct{}{}
	}
	return en.retain(e, e.Size())
}

// retain stores a surviving candidate (whose key is in keyBuf) and reports
// it if it hits the goal.
func (en *enumerator) retain(e expr.Expr, size int) (expr.Expr, error) {
	en.stats.Kept++
	if e.Type() == en.p.Output.VT && string(en.keyBuf) == en.goalKey {
		en.stats.Elapsed = time.Since(en.start)
		return e, nil
	}
	if size < len(en.perSize) {
		sig := append([]expr.Value(nil), en.sigBuf...)
		en.perSize[size][e.Type()] = append(en.perSize[size][e.Type()], entry{e: e, sig: sig})
	}
	return nil, nil
}

// charge accounts one candidate against the budgets and polls the
// cancellation context.
func (en *enumerator) charge() error {
	en.stats.Enumerated++
	if en.stats.Enumerated >= en.limits.MaxExprs {
		en.stats.Elapsed = time.Since(en.start)
		return errStop{reason: fmt.Sprintf("expression budget %d exhausted", en.limits.MaxExprs)}
	}
	if en.stats.Enumerated%4096 == 0 {
		if err := en.ctx.Err(); err != nil {
			en.stats.Elapsed = time.Since(en.start)
			return fmt.Errorf("synth: enumeration aborted: %w", err)
		}
		if en.limits.Timeout > 0 && time.Since(en.start) > en.limits.Timeout {
			en.stats.Elapsed = time.Since(en.start)
			return errStop{reason: "timeout"}
		}
	}
	return nil
}

// fillKeyBuf builds the map key for a signature into keyBuf: the expression
// type tag followed by the fixed-width encodings of the example values.
func (en *enumerator) fillKeyBuf(t expr.Type, sig []expr.Value) {
	en.keyBuf = en.keyBuf[:0]
	en.keyBuf = append(en.keyBuf, byte(t.Kind))
	if t.Kind == expr.KindEnum {
		en.keyBuf = append(en.keyBuf, byte(t.Enum.ID()))
	} else {
		en.keyBuf = append(en.keyBuf, 0)
	}
	for _, v := range sig {
		en.keyBuf = v.AppendEncoding(en.keyBuf)
	}
}

// sigKey is fillKeyBuf returning an owned string (used for the goal key).
func (en *enumerator) sigKey(t expr.Type, sig []expr.Value) string {
	en.fillKeyBuf(t, sig)
	return string(en.keyBuf)
}
