package synth

import (
	"context"
	"fmt"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
)

// Unrealizability detection: when the CEGIS loop exhausts its budget, the
// failure is ambiguous — the hole may be merely undiscovered (too-small
// limits, concretizations that stranded the search) or genuinely
// impossible. Distinguishing the two cheaply is what lets the engine skip
// its escalating-limits retry schedule, which otherwise multiplies the
// exhaustion cost several-fold per attempt.
//
// The check builds a semantic atlas of the vocabulary: it reruns the
// signature-table enumerator with the probe set replaced by EVERY
// valuation of the input variables, so two expressions share a signature
// class iff they denote the same function. Enumeration then has a sound
// fixpoint: once every tier up to maxArity·K+1 is complete — K being the
// largest tier that retained a new class — any expressible function
// already has a representative (replace each subterm of a witness
// expression by its class representative, inductively; the result is
// semantically identical and at most 1 + maxArity·K in size). Each
// output-typed representative's signature IS its value table, so
// spec-checking a class against the concolic examples is a pair of
// Boolean evaluations per valuation, no SMT involved. If no class is
// consistent, no expression of any size is: the hole is unrealizable.
//
// The check runs only on the exhaustion path (never on a solve that
// succeeds), only under interpretation reduction, and under hard caps on
// the valuation count, class count, enumerated candidates, and wall
// clock; any cap overrun makes it inconclusive — the caller keeps its
// plain ErrNoExpression and the retry schedule stays available.

const (
	// unrealizableDomainCap bounds the materialized input valuations
	// (the cartesian product of the variable domains).
	unrealizableDomainCap = 512
	// unrealizableEvalCap bounds total evaluation work: candidates
	// enumerated × valuations per candidate.
	unrealizableEvalCap = 1 << 23
	// unrealizableSigCap bounds retained class storage: classes ×
	// valuations per signature.
	unrealizableSigCap = 1 << 18
	// unrealizableMaxSize bounds the closure horizon outright; a
	// vocabulary still minting new classes at this size is treated as
	// inconclusive.
	unrealizableMaxSize = 64
	// unrealizableTimeout bounds the check's wall clock.
	unrealizableTimeout = 2 * time.Second
)

// checkUnrealizable decides whether the exhausted hole is provably
// impossible. It returns a non-nil error (wrapping ErrUnrealizable and
// naming the hole's output variable) only on proof; every inconclusive
// outcome — domains too large, class space too rich, budget or context
// expired — returns nil and leaves the original exhaustion error in
// force. A nil return therefore never asserts realizability.
func checkUnrealizable(ctx context.Context, p Problem, examples []ConcolicExample, limits Limits, stats *Stats) error {
	if !interpReduced(limits) || len(examples) == 0 {
		return nil
	}
	envs := inputValuations(p)
	if envs == nil {
		return nil
	}
	_, span := obs.Start(ctx, "synth.unrealizable_check", obs.Int("valuations", len(envs)))
	proved := false
	defer func() {
		span.SetAttr(obs.Bool("proved", proved))
		span.End()
	}()

	al := limits
	al.EnumWorkers = 1
	al.NoBankReuse = true
	al.MaxExprs = unrealizableEvalCap / int64(len(envs))
	al.MaxSize = unrealizableMaxSize
	if al.Timeout <= 0 || al.Timeout > unrealizableTimeout {
		al.Timeout = unrealizableTimeout
	}
	en := newEnumerator(ctx, p, nil, al)
	en.probes = envs
	en.noGoal = true
	en.initSigLayout()
	en.initFresh()

	maxArity := 0
	for _, f := range p.Vocab.Funcs() {
		if f.Arity() > maxArity {
			maxArity = f.Arity()
		}
	}
	classCap := int64(unrealizableSigCap / len(envs))
	// K is the largest tier that retained a new class; the closure
	// horizon maxArity·K+1 advances with it and the loop ends when the
	// current size passes the horizon without moving it.
	k := 0
	horizon := 1
	for size := 1; size <= horizon; size++ {
		if size >= len(en.perSize) {
			return nil
		}
		keptBefore := en.stats.Kept
		en.stats.MaxSizeSeen = size
		if _, err := en.runSize(size, 0); err != nil {
			// Budget, timeout, or cancellation: inconclusive.
			return nil
		}
		if en.stats.Kept > classCap {
			return nil
		}
		if en.stats.Kept > keptBefore {
			k = size
			if h := maxArity*k + 1; h > horizon {
				horizon = h
			}
			if horizon > unrealizableMaxSize {
				return nil
			}
		}
	}

	// Closure reached: the output-typed representatives are exactly the
	// expressible functions. A class is consistent with the spec iff at
	// every valuation where an example's precondition holds, its
	// postcondition holds with the output bound to the class's value
	// there — the signature coordinate, no re-evaluation needed.
	outName := p.Output.Name
	for s := 1; s < len(en.perSize) && s <= horizon; s++ {
		for _, ent := range en.perSize[s][p.Output.VT] {
			if classConsistent(p, examples, envs, ent.sig) {
				return nil
			}
		}
	}
	proved = true
	stats.Unrealizable = true
	if reg := obs.MetricsFrom(ctx); reg != nil {
		reg.Counter("synth.unrealizable").Inc()
	}
	return fmt.Errorf("%w: hole %q: none of the vocabulary's %d expressible functions is consistent with the %d examples over all %d interpretations",
		ErrUnrealizable, outName, en.stats.Kept, len(examples), len(envs))
}

// inputValuations materializes every valuation of the input variables, or
// nil when the product exceeds unrealizableDomainCap (or there are no
// input variables to valuate, in which case signatures cannot separate
// functions and the atlas is meaningless).
func inputValuations(p Problem) []expr.Env {
	if len(p.Vars) == 0 {
		return nil
	}
	total := uint64(1)
	for _, v := range p.Vars {
		n := p.U.DomainSize(v.VT)
		if n == 0 || total*n > unrealizableDomainCap || total*n < total {
			return nil
		}
		total *= n
	}
	domains := make([][]expr.Value, len(p.Vars))
	for i, v := range p.Vars {
		domains[i] = expr.ValuesOf(p.U, v.VT)
	}
	envs := make([]expr.Env, 0, total)
	idx := make([]int, len(p.Vars))
	for {
		env := make(expr.Env, len(p.Vars)+1)
		for i, v := range p.Vars {
			env[v.Name] = domains[i][idx[i]]
		}
		envs = append(envs, env)
		j := len(idx) - 1
		for ; j >= 0; j-- {
			idx[j]++
			if idx[j] < len(domains[j]) {
				break
			}
			idx[j] = 0
		}
		if j < 0 {
			return envs
		}
	}
}

// classConsistent spec-checks one output-typed class: sig[i] is the
// class's value at envs[i]. The envs are private to the atlas, so binding
// the output variable into them in place is safe (each iteration
// overwrites the previous binding).
func classConsistent(p Problem, examples []ConcolicExample, envs []expr.Env, sig []expr.Value) bool {
	outName := p.Output.Name
	for i, env := range envs {
		env[outName] = sig[i]
		for _, ex := range examples {
			if ex.Pre.Eval(p.U, env).Bool() && !ex.Post.Eval(p.U, env).Bool() {
				return false
			}
		}
	}
	return true
}
