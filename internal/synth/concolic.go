package synth

import (
	"context"
	"errors"
	"fmt"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
	"transit/internal/smt"
)

// SolveConcolic implements Algorithm 2: maintain a set of concretizations
// of the concolic examples; propose a candidate with SolveConcrete; check
// the candidate against every concolic example with an SMT query on
// ¬C[o := e]; on failure, extract the witness valuation S, solve for an
// output value k_o that satisfies the post-condition under S, add the
// concretization (S, k_o), and iterate.
func SolveConcolic(p Problem, examples []ConcolicExample, limits Limits) (expr.Expr, Stats, error) {
	return SolveConcolicCtx(context.Background(), p, examples, limits)
}

// SolveConcolicCtx is SolveConcolic under a context: cancellation is
// honored between CEGIS iterations, inside the enumerative search, and
// inside every SMT query, so an in-flight inference stops promptly when
// the context is cancelled or times out. The context also carries the
// observability plumbing: a "synth.cegis" span brackets the call with
// one "synth.iteration" child per CEGIS round, and the metrics registry
// (when present) accumulates the solve counters.
//
// By default all SMT queries of one solve run in a single incremental
// smt.Session: the symbolic examples are encoded once, each iteration
// asserts only the candidate's binding o = e under a fresh activation
// literal and retracts it afterwards. Limits.NoIncremental falls back to
// one-shot queries; both paths pose identical formulas and, because models
// are canonical, produce identical witnesses, concretizations, and traces.
func SolveConcolicCtx(ctx context.Context, p Problem, examples []ConcolicExample, limits Limits) (expr.Expr, Stats, error) {
	return SolveConcolicSessionCtx(ctx, p, examples, limits, nil)
}

// SolveConcolicSessionCtx is SolveConcolicCtx running its SMT queries in
// the supplied session, which must have been created over exactly
// Vars ∪ {Output} of the problem. It lets callers with several related
// solves over the same variables (e.g. the guard chain of one core group)
// share circuits and learned clauses across solves; every assertion made
// here is retracted before returning. A nil session gives each solve its
// own; Limits.NoIncremental ignores the session entirely.
func SolveConcolicSessionCtx(ctx context.Context, p Problem, examples []ConcolicExample, limits Limits, sess *smt.Session) (expr.Expr, Stats, error) {
	limits = limits.withDefaults()
	stats := Stats{}
	start := time.Now()
	ctx, span := obs.Start(ctx, "synth.cegis", obs.Int("examples", len(examples)))
	defer func() {
		stats.Elapsed = time.Since(start)
		span.SetAttr(obs.Int("iterations", stats.Iterations),
			obs.Int("smt_queries", stats.SMTQueries),
			obs.Int64("candidates", stats.Concrete.Enumerated))
		span.End()
		if reg := obs.MetricsFrom(ctx); reg != nil {
			reg.Counter("synth.solves").Inc()
			reg.Counter("synth.cegis_iterations").Add(int64(stats.Iterations))
			reg.Counter("synth.candidates").Add(stats.Concrete.Enumerated)
			reg.Counter("synth.kept").Add(stats.Concrete.Kept)
			reg.Histogram("synth.solve_ms").Observe(stats.Elapsed)
		}
	}()

	if err := p.validate(); err != nil {
		return nil, stats, err
	}
	for i, c := range examples {
		if c.Pre.Type() != expr.BoolType || c.Post.Type() != expr.BoolType {
			return nil, stats, fmt.Errorf("synth: concolic example %d is not Boolean", i)
		}
	}
	smtOpts := smt.Options{MaxConflicts: limits.SMTConflicts}
	be, err := newBackend(p, examples, limits, smtOpts, sess)
	if err != nil {
		return nil, stats, fmt.Errorf("synth: encoding examples: %w", err)
	}
	defer be.close()

	var concrete []ConcreteExample
	var bk *bank
	for iter := 1; iter <= limits.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("synth: CEGIS aborted: %w", err)
		}
		stats.Iterations = iter
		candidate, consistent, err := cegisIteration(ctx, p, examples, &concrete, limits, be, &stats, iter, &bk)
		if err != nil {
			// An exhausted search may be hiding an impossible hole; the
			// atlas check upgrades the error to ErrUnrealizable when it
			// can prove so, which stops the engine's retry escalation.
			if errors.Is(err, ErrNoExpression) {
				if uerr := checkUnrealizable(ctx, p, examples, limits, &stats); uerr != nil {
					return nil, stats, uerr
				}
			}
			return nil, stats, err
		}
		if consistent {
			return candidate, stats, nil
		}
	}
	if uerr := checkUnrealizable(ctx, p, examples, limits, &stats); uerr != nil {
		return nil, stats, uerr
	}
	return nil, stats, fmt.Errorf("%w: CEGIS iteration budget %d exhausted", ErrNoExpression, limits.MaxIters)
}

// cegisIteration runs one round of Algorithm 2's loop under its own
// "synth.iteration" span: propose with SolveConcrete — resuming the
// previous round's expression bank when one is available — check each
// concolic example, and on failure concretize the witness into a new
// example.
func cegisIteration(ctx context.Context, p Problem, examples []ConcolicExample,
	concrete *[]ConcreteExample, limits Limits, be *smtBackend,
	stats *Stats, iter int, bk **bank) (candidate expr.Expr, consistent bool, err error) {
	ctx, span := obs.Start(ctx, "synth.iteration", obs.Int("iteration", iter))
	if span != nil {
		// Spans export only on close, so a long round is invisible to a
		// live attacher; this instant mark is the "CEGIS is now on round
		// N" gauge for /runs and the flight recorder.
		span.Mark("synth.round", obs.Int("iteration", iter),
			obs.Int("concrete_examples", len(*concrete)))
	}
	defer func() {
		span.SetAttr(obs.Bool("consistent", consistent))
		if candidate != nil {
			span.SetAttr(obs.Str("candidate", candidate.String()))
		}
		span.End()
	}()

	resumed := (*bk).usable(*concrete, limits.withDefaults())
	if resumed {
		stats.BankReuses++
	}
	bankable := !limits.NoBankReuse && !limits.NoPrune
	candidate, cstats, nbk, err := solveConcrete(ctx, p, *concrete, limits, *bk, bankable)
	*bk = nbk
	stats.Concrete.Enumerated += cstats.Enumerated
	stats.Concrete.Kept += cstats.Kept
	stats.Concrete.Restarts += cstats.Restarts
	stats.Concrete.InterpPruned += cstats.InterpPruned
	if cstats.MaxSizeSeen > stats.Concrete.MaxSizeSeen {
		stats.Concrete.MaxSizeSeen = cstats.MaxSizeSeen
	}
	if err != nil {
		return nil, false, err
	}

	if err := be.beginCandidate(candidate); err != nil {
		return nil, false, fmt.Errorf("synth: consistency query: %w", err)
	}
	defer be.endCandidate()

	rec := IterRecord{
		Candidate:  candidate,
		KilledBy:   -1,
		Resumed:    resumed,
		Restarted:  cstats.Restarts > 0,
		Enumerated: cstats.Enumerated,
		Kept:       cstats.Kept,
	}
	consistent = true
	for i := range examples {
		S, err := be.checkExample(ctx, i, stats)
		if err != nil {
			return nil, false, err
		}
		if S == nil {
			continue
		}
		// Witness S falsifies the example; concretize it.
		consistent = false
		rec.KilledBy = i
		ko, err := be.concretize(ctx, S, stats)
		if err != nil {
			return nil, false, err
		}
		ex := ConcreteExample{S: S, Out: ko}
		*concrete = append(*concrete, ex)
		rec.Witness = S
		rec.NewExample = &ex
		// One new concretization per iteration keeps the trace
		// aligned with the paper's Table 2; remaining examples are
		// re-checked next round against the refined candidate.
		break
	}
	stats.Trace = append(stats.Trace, rec)
	return candidate, consistent, nil
}

// smtBackend issues the CEGIS queries. Both modes pose the same formulas
// over Vars ∪ {o}:
//
//	consistency(i, e):  pre_i ∧ ¬post_i ∧ (o = e)     witness over Vars
//	concretize(S):      ∧_j (pre_j ⇒ post_j) ∧ pins(S) model value of o
//
// In incremental mode the example groups are asserted once at
// construction, each under its own activation literal; per iteration only
// o = e is asserted (and retracted when the iteration ends). One-shot mode
// sends each query to the package-level solver. Canonical models make the
// two answer-identical.
//
// Model choice is steered with hints (smt.Options.Hint): every query is
// hinted toward the saturated valuation — each variable, the output
// included, at its domain maximum (full sets, highest PIDs). Consistency
// witnesses then land in the richest corner of the violating region, where
// most candidate families already agree and the subsequent pin
// discriminates as little as possible; the output must be hinted too,
// since it canonicalizes early and an unhinted (least-value) output drags
// the inputs to a degenerate corner through the o = e binding.
// Concretizations pin the legal output closest to the domain maximum —
// the most permissive correction — which keeps small generalizations (add
// every relevant PID) inside the consistent set instead of forcing
// minimal-output special cases. Both modes pass identical hints, so
// answer parity is unaffected.
type smtBackend struct {
	p       Problem
	qvars   []*expr.Var // p.Vars ∪ {Output}
	opts    smt.Options
	satHint expr.Env // saturated hint over Vars ∪ {Output}

	examples []ConcolicExample

	sess     *smt.Session     // nil in one-shot mode
	owned    bool             // session created by this backend
	exChecks []*smt.Assertion // per-example pre_i ∧ ¬post_i
	allEx    *smt.Assertion   // ∧_j (pre_j ⇒ post_j)
	bind     *smt.Assertion   // o = candidate for the current iteration
	cand     expr.Expr        // current candidate
}

func newBackend(p Problem, examples []ConcolicExample, limits Limits, opts smt.Options, sess *smt.Session) (*smtBackend, error) {
	qvars := append(append([]*expr.Var(nil), p.Vars...), p.Output)
	satHint := make(expr.Env, len(qvars))
	for _, v := range qvars {
		satHint[v.Name] = expr.MaxOf(p.U, v.VT)
	}
	be := &smtBackend{p: p, qvars: qvars, opts: opts, satHint: satHint, examples: examples}
	if limits.NoIncremental {
		return be, nil
	}
	if sess == nil {
		var err error
		sess, err = smt.NewSession(p.U, qvars)
		if err != nil {
			return nil, err
		}
		be.owned = true
	}
	be.sess = sess
	for _, c := range examples {
		a, err := sess.Assert(expr.And(c.Pre, expr.Not(c.Post)))
		if err != nil {
			be.close()
			return nil, err
		}
		be.exChecks = append(be.exChecks, a)
	}
	forms := make([]expr.Expr, 0, len(examples))
	for _, c := range examples {
		forms = append(forms, c.Formula())
	}
	all, err := sess.Assert(expr.And(forms...))
	if err != nil {
		be.close()
		return nil, err
	}
	be.allEx = all
	return be, nil
}

// close retracts everything this backend asserted, leaving an injected
// session clean for its next user.
func (be *smtBackend) close() {
	if be.sess == nil {
		return
	}
	be.sess.Retract(be.bind)
	be.sess.Retract(be.allEx)
	for _, a := range be.exChecks {
		be.sess.Retract(a)
	}
}

// beginCandidate installs o = candidate for the coming consistency checks.
func (be *smtBackend) beginCandidate(candidate expr.Expr) error {
	be.cand = candidate
	if be.sess == nil {
		return nil
	}
	a, err := be.sess.Assert(expr.Eq(be.p.Output, candidate))
	if err != nil {
		return err
	}
	be.bind = a
	return nil
}

// endCandidate retracts the current candidate binding.
func (be *smtBackend) endCandidate() {
	if be.sess != nil {
		be.sess.Retract(be.bind)
	}
	be.bind = nil
	be.cand = nil
}

// checkExample poses consistency query i for the current candidate and
// returns the witness valuation over p.Vars, or nil when the example is
// satisfied.
func (be *smtBackend) checkExample(ctx context.Context, i int, stats *Stats) (expr.Env, error) {
	c := be.examples[i]
	stats.SMTQueries++
	opts := be.opts
	opts.Hint = be.satHint
	var res smt.Result
	var qstats smt.Stats
	var err error
	if be.sess != nil {
		res, qstats, err = be.sess.SolveAssuming(ctx, []*smt.Assertion{be.exChecks[i], be.bind}, be.p.Vars, opts)
	} else {
		query := expr.And(c.Pre, expr.Not(c.Post), expr.Eq(be.p.Output, be.cand))
		res, qstats, err = smt.SolveStatsCtx(ctx, be.p.U, be.qvars, query, opts)
	}
	stats.SMTClauses += qstats.Clauses
	stats.SMTClausesReused += qstats.ClausesReused
	if err != nil {
		return nil, fmt.Errorf("synth: consistency query: %w", err)
	}
	switch res.Status {
	case smt.Unsat:
		return nil, nil
	case smt.Unknown:
		return nil, fmt.Errorf("synth: consistency query exhausted SMT budget")
	}
	if be.sess != nil {
		return res.Model, nil
	}
	// Project the one-shot model onto the input variables so both modes
	// return identical witnesses.
	S := make(expr.Env, len(be.p.Vars))
	for _, v := range be.p.Vars {
		S[v.Name] = res.Model[v.Name]
	}
	return S, nil
}

// concretize finds k_o for the pinned valuation S (line 9 of Algorithm 2).
// The paper concretizes against the violated example's post-condition; we
// concretize against the conjunction of all examples (pre_i ⇒ post_i),
// which any consistent expression must satisfy at S — this prevents two
// iterations from pinning contradictory outputs for the same S when
// examples interact. If no output value exists, the example set is
// contradictory for a reachable input valuation.
//
// The query hints the output toward its domain maximum: k_o is the legal
// output closest to the saturated value, i.e. the most permissive pin the
// examples allow at S. An unhinted (least-value) k_o would often pin a
// degenerate output only a spec-overfitted expression can reproduce,
// stranding CEGIS; the saturated pin instead stays reachable by the small
// generalizations (add every relevant PID) the enumerator proposes first.
// Both modes pass the same hint, so answer parity is unaffected.
func (be *smtBackend) concretize(ctx context.Context, S expr.Env, stats *Stats) (expr.Value, error) {
	pins := make([]expr.Expr, 0, len(be.p.Vars))
	for _, v := range be.p.Vars {
		val, ok := S[v.Name]
		if !ok {
			return expr.Value{}, fmt.Errorf("synth: witness lacks value for %s", v.Name)
		}
		pins = append(pins, expr.Eq(v, expr.NewConst(val)))
	}
	stats.SMTQueries++
	opts := be.opts
	opts.Hint = be.satHint
	var res smt.Result
	var qstats smt.Stats
	var err error
	if be.sess != nil {
		pinA, aerr := be.sess.Assert(expr.And(pins...))
		if aerr != nil {
			return expr.Value{}, fmt.Errorf("synth: output concretization: %w", aerr)
		}
		res, qstats, err = be.sess.SolveAssuming(ctx, []*smt.Assertion{be.allEx, pinA}, be.qvars, opts)
		be.sess.Retract(pinA)
	} else {
		forms := make([]expr.Expr, 0, len(be.examples))
		for _, ex := range be.examples {
			forms = append(forms, ex.Formula())
		}
		query := expr.And(expr.And(forms...), expr.And(pins...))
		res, qstats, err = smt.SolveStatsCtx(ctx, be.p.U, be.qvars, query, opts)
	}
	stats.SMTClauses += qstats.Clauses
	stats.SMTClausesReused += qstats.ClausesReused
	if err != nil {
		return expr.Value{}, fmt.Errorf("synth: output concretization: %w", err)
	}
	switch res.Status {
	case smt.Sat:
		return res.Model[be.p.Output.Name], nil
	case smt.Unsat:
		return expr.Value{}, fmt.Errorf("%w: no output value satisfies post-condition under %v",
			ErrInconsistent, S)
	default:
		return expr.Value{}, fmt.Errorf("synth: output concretization exhausted SMT budget")
	}
}
