package synth

import (
	"context"
	"fmt"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
	"transit/internal/smt"
)

// SolveConcolic implements Algorithm 2: maintain a set of concretizations
// of the concolic examples; propose a candidate with SolveConcrete; check
// the candidate against every concolic example with an SMT query on
// ¬C[o := e]; on failure, extract the witness valuation S, solve for an
// output value k_o that satisfies the post-condition under S, add the
// concretization (S, k_o), and iterate.
func SolveConcolic(p Problem, examples []ConcolicExample, limits Limits) (expr.Expr, Stats, error) {
	return SolveConcolicCtx(context.Background(), p, examples, limits)
}

// SolveConcolicCtx is SolveConcolic under a context: cancellation is
// honored between CEGIS iterations, inside the enumerative search, and
// inside every SMT query, so an in-flight inference stops promptly when
// the context is cancelled or times out. The context also carries the
// observability plumbing: a "synth.cegis" span brackets the call with
// one "synth.iteration" child per CEGIS round, and the metrics registry
// (when present) accumulates the solve counters.
func SolveConcolicCtx(ctx context.Context, p Problem, examples []ConcolicExample, limits Limits) (expr.Expr, Stats, error) {
	limits = limits.withDefaults()
	stats := Stats{}
	start := time.Now()
	ctx, span := obs.Start(ctx, "synth.cegis", obs.Int("examples", len(examples)))
	defer func() {
		stats.Elapsed = time.Since(start)
		span.SetAttr(obs.Int("iterations", stats.Iterations),
			obs.Int("smt_queries", stats.SMTQueries),
			obs.Int64("candidates", stats.Concrete.Enumerated))
		span.End()
		if reg := obs.MetricsFrom(ctx); reg != nil {
			reg.Counter("synth.solves").Inc()
			reg.Counter("synth.cegis_iterations").Add(int64(stats.Iterations))
			reg.Counter("synth.candidates").Add(stats.Concrete.Enumerated)
			reg.Counter("synth.kept").Add(stats.Concrete.Kept)
			reg.Histogram("synth.solve_ms").Observe(stats.Elapsed)
		}
	}()

	if err := p.validate(); err != nil {
		return nil, stats, err
	}
	for i, c := range examples {
		if c.Pre.Type() != expr.BoolType || c.Post.Type() != expr.BoolType {
			return nil, stats, fmt.Errorf("synth: concolic example %d is not Boolean", i)
		}
	}
	smtOpts := smt.Options{MaxConflicts: limits.SMTConflicts}

	var concrete []ConcreteExample
	for iter := 1; iter <= limits.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("synth: CEGIS aborted: %w", err)
		}
		stats.Iterations = iter
		candidate, consistent, err := cegisIteration(ctx, p, examples, &concrete, limits, smtOpts, &stats, iter)
		if err != nil {
			return nil, stats, err
		}
		if consistent {
			return candidate, stats, nil
		}
	}
	return nil, stats, fmt.Errorf("%w: CEGIS iteration budget %d exhausted", ErrNoExpression, limits.MaxIters)
}

// cegisIteration runs one round of Algorithm 2's loop under its own
// "synth.iteration" span: propose with SolveConcrete, check each concolic
// example, and on failure concretize the witness into a new example.
func cegisIteration(ctx context.Context, p Problem, examples []ConcolicExample,
	concrete *[]ConcreteExample, limits Limits, smtOpts smt.Options,
	stats *Stats, iter int) (candidate expr.Expr, consistent bool, err error) {
	ctx, span := obs.Start(ctx, "synth.iteration", obs.Int("iteration", iter))
	defer func() {
		span.SetAttr(obs.Bool("consistent", consistent))
		if candidate != nil {
			span.SetAttr(obs.Str("candidate", candidate.String()))
		}
		span.End()
	}()

	candidate, cstats, err := SolveConcreteCtx(ctx, p, *concrete, limits)
	stats.Concrete.Enumerated += cstats.Enumerated
	stats.Concrete.Kept += cstats.Kept
	if cstats.MaxSizeSeen > stats.Concrete.MaxSizeSeen {
		stats.Concrete.MaxSizeSeen = cstats.MaxSizeSeen
	}
	if err != nil {
		return nil, false, err
	}

	rec := IterRecord{Candidate: candidate}
	consistent = true
	for _, c := range examples {
		// ¬C[o := e] is pre ∧ ¬post[o := e].
		post := expr.Subst(c.Post, p.Output.Name, candidate)
		query := expr.And(c.Pre, expr.Not(post))
		stats.SMTQueries++
		res, err := smt.SolveOptCtx(ctx, p.U, p.Vars, query, smtOpts)
		if err != nil {
			return nil, false, fmt.Errorf("synth: consistency query: %w", err)
		}
		if res.Status == smt.Unknown {
			return nil, false, fmt.Errorf("synth: consistency query exhausted SMT budget")
		}
		if res.Status == smt.Unsat {
			continue
		}
		// Witness S falsifies the example; concretize it.
		consistent = false
		S := res.Model
		ko, err := concretizeOutput(ctx, p, examples, S, smtOpts, stats)
		if err != nil {
			return nil, false, err
		}
		ex := ConcreteExample{S: S, Out: ko}
		*concrete = append(*concrete, ex)
		rec.Witness = S
		rec.NewExample = &ex
		// One new concretization per iteration keeps the trace
		// aligned with the paper's Table 2; remaining examples are
		// re-checked next round against the refined candidate.
		break
	}
	stats.Trace = append(stats.Trace, rec)
	return candidate, consistent, nil
}

// concretizeOutput finds k_o for the pinned valuation S (line 9 of
// Algorithm 2). The paper concretizes against the violated example's
// post-condition; we concretize against the conjunction of all examples
// (pre_i ⇒ post_i), which any consistent expression must satisfy at S —
// this prevents two iterations from pinning contradictory outputs for the
// same S when examples interact. If no output value exists, the example
// set is contradictory for a reachable input valuation.
func concretizeOutput(ctx context.Context, p Problem, examples []ConcolicExample, S expr.Env, opts smt.Options, stats *Stats) (expr.Value, error) {
	pins := make([]expr.Expr, 0, len(p.Vars)+len(examples))
	for _, v := range p.Vars {
		val, ok := S[v.Name]
		if !ok {
			return expr.Value{}, fmt.Errorf("synth: witness lacks value for %s", v.Name)
		}
		pins = append(pins, expr.Eq(v, expr.NewConst(val)))
	}
	for _, ex := range examples {
		pins = append(pins, ex.Formula())
	}
	query := expr.And(pins...)
	vars := append(append([]*expr.Var(nil), p.Vars...), p.Output)
	stats.SMTQueries++
	res, err := smt.SolveOptCtx(ctx, p.U, vars, query, opts)
	if err != nil {
		return expr.Value{}, fmt.Errorf("synth: output concretization: %w", err)
	}
	switch res.Status {
	case smt.Sat:
		return res.Model[p.Output.Name], nil
	case smt.Unsat:
		return expr.Value{}, fmt.Errorf("%w: no output value satisfies post-condition under %v",
			ErrInconsistent, S)
	default:
		return expr.Value{}, fmt.Errorf("synth: output concretization exhausted SMT budget")
	}
}
