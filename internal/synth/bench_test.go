package synth

import (
	"context"
	"testing"

	"transit/internal/expr"
	"transit/internal/obs"
)

// benchProblem is the Table 3 max-of-two inference — the pipeline's
// bread-and-butter workload, mixing enumeration with SMT checks.
func benchProblem(b *testing.B) (Problem, []ConcolicExample) {
	b.Helper()
	a, bb := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	o := expr.V("o", expr.IntType)
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		b.Fatal(err)
	}
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	p := Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, bb}, Output: o}
	exs := []ConcolicExample{
		{Pre: expr.Gt(a, bb), Post: expr.Eq(o, a)},
		{Pre: expr.Gt(bb, a), Post: expr.Eq(o, bb)},
	}
	return p, exs
}

// BenchmarkSolveConcolicDisabled measures the baseline with observability
// off — the context carries no tracer and no registry, so every
// obs.Start is one context lookup plus a nil branch. Compare against
// BenchmarkSolveConcolicTraced to bound the instrumentation overhead
// (acceptance: < 2% with tracing disabled vs. the pre-obs code, which
// this benchmark tracks over time).
func BenchmarkSolveConcolicDisabled(b *testing.B) {
	p, exs := benchProblem(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveConcolicCtx(ctx, p, exs, Limits{MaxSize: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveConcolicTraced is the same workload with a collecting
// tracer and live metrics registry attached.
func BenchmarkSolveConcolicTraced(b *testing.B) {
	p, exs := benchProblem(b)
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(obs.NewCollect()))
	ctx = obs.WithMetrics(ctx, obs.NewRegistry())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveConcolicCtx(ctx, p, exs, Limits{MaxSize: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCEGISIncremental measures the default path: one incremental
// smt.Session per solve, examples encoded once, candidates asserted under
// activation literals. Compare against BenchmarkCEGISOneShot (the
// -no-incremental escape hatch) for the encoding-reuse win; answers are
// identical by construction.
func BenchmarkCEGISIncremental(b *testing.B) {
	p, exs := benchProblem(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveConcolicCtx(ctx, p, exs, Limits{MaxSize: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCEGISOneShot is the same workload with every SMT query solved
// in a fresh encoder and solver.
func BenchmarkCEGISOneShot(b *testing.B) {
	p, exs := benchProblem(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveConcolicCtx(ctx, p, exs, Limits{MaxSize: 8, NoIncremental: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveConcreteDisabled isolates the enumerator (no SMT), where
// per-candidate overhead would show up most.
func BenchmarkSolveConcreteDisabled(b *testing.B) {
	p, _ := benchProblem(b)
	a, bb := p.Vars[0], p.Vars[1]
	exs := []ConcreteExample{
		{S: expr.Env{a.Name: expr.IntVal(p.U, 3), bb.Name: expr.IntVal(p.U, 1)}, Out: expr.IntVal(p.U, 3)},
		{S: expr.Env{a.Name: expr.IntVal(p.U, 2), bb.Name: expr.IntVal(p.U, 5)}, Out: expr.IntVal(p.U, 5)},
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveConcreteCtx(ctx, p, exs, Limits{MaxSize: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
