package synth

import (
	"context"

	"transit/internal/expr"
)

// bank carries SolveConcrete's retained state across the CEGIS rounds of
// one SolveConcolic call: the per-size pools of signature-class
// representatives and the cursor of the round's winner. A new
// concretization only refines the signature partition — every retained
// representative stays the minimum-index representative of its refined
// class — so the next round extends each entry's signature with one new
// evaluation, re-keys the table, and resumes enumeration right after the
// previous winner instead of restarting at size 1. The previous winner
// cannot match the new goal (its concretization was chosen to contradict
// it), and no earlier candidate can either (the new goal signature
// projects onto the old one), which is what makes resuming at the cursor
// sound; see DESIGN.md §10 for the full argument and for the restart
// fallback covering representatives that only the newest examples can
// distinguish.
type bank struct {
	// nExamples is the concretization count the signatures cover.
	nExamples int
	// perSize are the pools, adopted from the winning enumerator.
	perSize []map[expr.Type][]entry
	// shadows are the probe-distinct pruned duplicates the round
	// collected (plus the ones it inherited); the next round extends
	// their keys and uses them to detect a stale partition before
	// walking it (DESIGN.md §15).
	shadows []shadowEntry
	// alts are shadows whose classes already split in earlier rounds:
	// permanently missing from the pools, carried so the adopt-time
	// shallow probe can test them against each new goal (staleAlt).
	alts []*staleAlt
	// curSize/curIdx locate the previous winner: candidate curIdx
	// (1-based, tier-local) of size tier curSize.
	curSize int
	curIdx  int64
}

// harvest captures the enumerator state after a successful solve. The
// enumerator is not used afterwards, so the pools and shadows move
// instead of copy.
func (en *enumerator) harvest() *bank {
	// en.alts is nil on fresh enumerators: a restart rebuilds the pools
	// with every split class materialized, so inherited alts are obsolete.
	return &bank{nExamples: len(en.examples), perSize: en.perSize,
		shadows: en.shadows, alts: en.alts, curSize: en.curSize, curIdx: en.curIdx}
}

// usable reports whether the bank can seed a round over the given
// (append-only grown) example set. A bank built with zero examples is
// degenerate — every expression of a type was indistinguishable, so the
// pools hold one entry per type — and is cheaper to discard than to
// resume.
func (bk *bank) usable(examples []ConcreteExample, limits Limits) bool {
	return bk != nil && !limits.NoBankReuse && !limits.NoPrune &&
		bk.nExamples >= 1 && len(examples) > bk.nExamples &&
		bk.curSize >= 1 && bk.curSize <= limits.MaxSize
}

// resumeEnumerator builds an enumerator over the bank: pools are adopted
// (resized to the current MaxSize), every entry's signature and signature
// key are extended in place with one evaluation and one fixed-width record
// per new concretization — the key layout puts example coordinates last,
// so extension is a plain append and the old key bytes are never
// re-encoded — and the resume cursor is set to the previous winner's
// position. Entries whose extended key collides with an earlier entry's
// are dropped as newly-indistinguishable duplicates (signature extension
// cannot merge distinct classes, so this is defensive; the invariant is
// checked by the parity tests).
//
// The bank's shadows are extended the same way, and then consulted for
// staleness: a shadow whose extended example coordinates match no pooled
// class is a previously-pruned candidate the new concretizations
// distinguished — the pools provably lack a class a fresh search would
// retain. A split shadow that itself matches the new goal dooms the walk
// outright (resumeEnumerator returns nil and the caller restarts fresh);
// every other split becomes a staleAlt, and a shallow probe over
// compositions of the alts decides whether the resumed walk is skipped,
// capped, or left to run (DESIGN.md §15).
func resumeEnumerator(ctx context.Context, p Problem, examples []ConcreteExample, limits Limits, bk *bank) *enumerator {
	en := newEnumerator(ctx, p, examples, limits)
	ps := bk.perSize
	if want := limits.MaxSize + 1; len(ps) != want {
		np := make([]map[expr.Type][]entry, want)
		copy(np, ps)
		for i := range np {
			if np[i] == nil {
				np[i] = make(map[expr.Type][]entry)
			}
		}
		ps = np
	}
	en.perSize = ps
	en.sigSeen = make(map[string][]expr.Value)
	// Each new concretization gets a value memo keyed by expression
	// identity: pooled compositions share their argument expression objects
	// with the pool entries they were built from, and the pools are walked
	// in ascending size order, so by the time a composition is extended its
	// children's values are already memoized and extension costs one Apply
	// call instead of a full tree re-evaluation. Late CEGIS rounds bank
	// tens of thousands of entries whose trees average many nodes, so this
	// turns per-round extension from O(total tree size) into O(entries).
	nOld := bk.nExamples
	nEntries := 0
	for s := range en.perSize {
		for _, pool := range en.perSize[s] {
			nEntries += len(pool)
		}
	}
	memos := make([]map[expr.Expr]expr.Value, len(examples)-nOld)
	for i := range memos {
		memos[i] = make(map[expr.Expr]expr.Value, nEntries)
	}
	for s := range en.perSize {
		for t, pool := range en.perSize[s] {
			keep := pool[:0]
			for i := range pool {
				ent := pool[i]
				for k := nOld; k < len(examples); k++ {
					v := en.extendVal(ent.e, examples[k].S, memos[k-nOld])
					memos[k-nOld][ent.e] = v
					ent.sig = append(ent.sig, v)
					ent.key = v.AppendEncoding(ent.key)
				}
				if _, dup := en.sigSeen[string(ent.key)]; dup {
					continue
				}
				en.sigSeen[string(ent.key)] = nil
				keep = append(keep, ent)
			}
			en.perSize[s][t] = keep
		}
	}
	// The cursor is set before shadow adoption: the shallow doom probe may
	// tighten resumeCap below the default slack.
	en.resumeSize, en.resumeSkip = bk.curSize, bk.curIdx
	en.resumeCap = bk.curSize + resumeCapSlack
	if en.probeBuf != nil {
		if !en.adoptShadows(bk, examples, memos) {
			return nil
		}
	}
	return en
}

// extendVal evaluates e under one new concretization, resolving Apply
// arguments through the round's identity memo: pooled children hit the
// memo (their pools extend first), so the common case is one function
// application over already-computed values. A child outside the memo — an
// alt's subterm whose representative was compacted away — falls back to a
// plain evaluation, which is always correct, just slower.
func (en *enumerator) extendVal(e expr.Expr, env expr.Env, memo map[expr.Expr]expr.Value) expr.Value {
	ap, ok := e.(*expr.Apply)
	if !ok || len(ap.Args) == 0 {
		return e.Eval(en.p.U, env)
	}
	if cap(en.argBuf) < len(ap.Args) {
		en.argBuf = make([]expr.Value, len(ap.Args))
	}
	argv := en.argBuf[:len(ap.Args)]
	for j, a := range ap.Args {
		if v, hit := memo[a]; hit {
			argv[j] = v
		} else {
			argv[j] = a.Eval(en.p.U, env)
		}
	}
	return ap.Fn.Apply(en.p.U, argv)
}

// adoptShadows extends the bank's shadow keys with the new
// concretizations, checks each against the freshly re-keyed pools, and
// rebuilds the probe-chunk index over pools and shadows. Shadows whose
// extended example coordinates escape every pooled class have split: one
// that itself matches the new goal proves the fresh winner sits at or
// before an expression the pools cannot reach, and adoptShadows reports
// false — restart immediately. Every other split converts to a staleAlt,
// and the shallow probe over alt compositions decides whether the walk
// is skipped, capped, or left to the exhaustion fallback.
func (en *enumerator) adoptShadows(bk *bank, examples []ConcreteExample, memos []map[expr.Expr]expr.Value) bool {
	nOld := bk.nExamples
	var splitIdx []int
	for i := range bk.shadows {
		sh := &bk.shadows[i]
		for k := nOld; k < len(examples); k++ {
			v := en.extendVal(sh.e, examples[k].S, memos[k-nOld])
			sh.key = v.AppendEncoding(sh.key)
		}
		if _, pooled := en.sigSeen[string(sh.key)]; !pooled {
			if sh.e.Type() == en.p.Output.VT && string(sh.key[sigKeyHeaderLen:]) == en.goalSuffix {
				return false
			}
			splitIdx = append(splitIdx, i)
		}
	}
	// Persisted alts gain the new coordinates like everything else.
	for _, a := range bk.alts {
		for k := nOld; k < len(examples); k++ {
			a.sig = append(a.sig, en.extendVal(a.e, examples[k].S, memos[k-nOld]))
		}
	}
	if len(splitIdx) > 0 {
		// New splits become alts.
		isSplit := make(map[int]bool, len(splitIdx))
		for _, i := range splitIdx {
			isSplit[i] = true
			if len(bk.alts) >= maxAlts {
				continue
			}
			sh := &bk.shadows[i]
			sig := make([]expr.Value, len(examples), len(examples)+sigHeadroom)
			for k := range examples {
				sig[k] = sh.e.Eval(en.p.U, examples[k].S)
			}
			bk.alts = append(bk.alts, &staleAlt{e: sh.e, sig: sig})
		}
		// Split shadows leave the shadow set: their full keys no longer
		// describe a merged class.
		keep := bk.shadows[:0]
		for i := range bk.shadows {
			if !isSplit[i] {
				keep = append(keep, bk.shadows[i])
			}
		}
		bk.shadows = keep
	}
	if len(bk.alts) > 0 {
		en.alts = bk.alts
		if s, doomed := en.shallowAltDoom(); doomed {
			// A goal-matching alt composition strictly above the previous
			// winner's tier means the resumed walk would have to clear its
			// whole resume tier and more before it could exhaust — at least
			// as expensive as the restart it would end in — so the walk is
			// skipped outright. At or below the previous winner's tier the
			// walk may still win first (the composition can sit after the
			// true winner in enumeration order), so the walk runs; the
			// composition's size still caps it for free, because any valid
			// resumed win precedes the composition and therefore sits in a
			// tier no larger than it.
			if s > bk.curSize {
				return false
			}
			if s < en.resumeCap {
				en.resumeCap = s
			}
		}
	}
	// Rebuild the probe-chunk rows over tracked pooled representatives and
	// shadows: the example keys moved under extension, so chunks re-group
	// under the extended keys, straight into sigSeen's values. No encoding
	// happens — the rows are plain stored probe values. Non-split shadows
	// by definition share a pooled class's key, so the guarded append never
	// creates a key of its own.
	en.shadows = bk.shadows
	for s := range en.perSize {
		for _, pool := range en.perSize[s] {
			for i := range pool {
				ent := &pool[i]
				if ent.psig == nil {
					continue
				}
				en.sigSeen[string(ent.key)] = append(en.sigSeen[string(ent.key)], ent.psig...)
			}
		}
	}
	for i := range en.shadows {
		sh := &en.shadows[i]
		if rows, pooled := en.sigSeen[string(sh.key)]; pooled {
			en.sigSeen[string(sh.key)] = append(rows, sh.psig...)
		}
	}
	return true
}

// shallowAltDoomBudget caps the example evaluations one shallow probe may
// spend. The typical round is far below it (a handful of alts against a
// handful of size-1 entries); a vocabulary pathological enough to exceed
// it just skips the probe — the exhaustion fallback still guarantees
// completeness.
const shallowAltDoomBudget = 1 << 17

// shallowAltDoom looks for single applications f(args), with every
// argument drawn from the size-1 pools or the carried alts and at least
// one alt among them, that match the new goal on every example. Such a
// candidate is reachable for a fresh search but permanently unreachable
// from the resumed pools (an alt's class is exactly a class the pools are
// missing), so a match proves before the walk starts that the fresh
// search has a goal hit the resumed walk cannot reach. It returns the
// smallest such composition's size; the caller weighs it against the
// resume cursor to decide between skipping the walk and capping it (both
// are answer-safe — a fresh round is the reference search, and a valid
// resumed win always precedes the composition in enumeration order). The
// probe is deliberately shallow — one application over atoms and alts —
// because that is where the protocol workloads' stale rounds land (an
// ite over a split guard and two variables, a set operator over two split
// set differences); deeper dooms still fall to the exhaustion fallback.
func (en *enumerator) shallowAltDoom() (int, bool) {
	byType := make(map[expr.Type][]*staleAlt, 4)
	for _, a := range en.alts {
		byType[a.e.Type()] = append(byType[a.e.Type()], a)
	}
	atoms := en.perSize[1]
	n := len(en.examples)
	budget := shallowAltDoomBudget
	best := 0
	var enc []byte
	var argv []expr.Value
	sigs := make([][]expr.Value, 8)
	var try func(f *expr.Func, slot, sizeAcc int, hasAlt bool)
	try = func(f *expr.Func, slot, sizeAcc int, hasAlt bool) {
		if best != 0 && sizeAcc+(f.Arity()-slot) >= best {
			return
		}
		if slot == f.Arity() {
			if !hasAlt || budget < n {
				return
			}
			budget -= n
			for k := 0; k < n; k++ {
				for j := 0; j < slot; j++ {
					argv[j] = sigs[j][k]
				}
				v := f.Apply(en.p.U, argv)
				enc = v.AppendEncoding(enc[:0])
				if string(enc) != en.goalSuffix[sigValEncLen*k:sigValEncLen*(k+1)] {
					return
				}
			}
			best = sizeAcc
			return
		}
		t := f.Params[slot]
		for i := range atoms[t] {
			sigs[slot] = atoms[t][i].sig
			try(f, slot+1, sizeAcc+1, hasAlt)
		}
		for _, a := range byType[t] {
			sigs[slot] = a.sig
			try(f, slot+1, sizeAcc+a.e.Size(), true)
		}
	}
	for _, f := range en.p.Vocab.Funcs() {
		m := f.Arity()
		if m == 0 || m > len(sigs) || f.Ret != en.p.Output.VT {
			continue
		}
		// Require every slot to be fillable and at least one alt-typed slot
		// before recursing.
		feasible, altSlot := true, false
		for _, t := range f.Params {
			if len(atoms[t])+len(byType[t]) == 0 {
				feasible = false
				break
			}
			if len(byType[t]) > 0 {
				altSlot = true
			}
		}
		if !feasible || !altSlot {
			continue
		}
		if cap(argv) < m {
			argv = make([]expr.Value, m)
		}
		argv = argv[:m]
		try(f, 0, 1, false)
		if budget < n {
			break
		}
	}
	return best, best != 0
}

// resumeCapSlack bounds how many size tiers past the previous winner a
// resumed search explores before conceding to the restart fallback. The
// trade is empirical: CEGIS winners regularly jump a few sizes between
// rounds (so a tight cap forces spurious restarts on healthy banks), but
// tier cost grows exponentially with size, so a stale bank that is only
// detected by exhausting every tier up to MaxSize costs several times the
// fresh search it ends up triggering anyway. Four tiers of slack covers
// every jump the Table 3 protocols exhibit (abs-diff's winners move four
// sizes between rounds) while keeping the worst-case stale walk bounded
// when MaxSize is generous (the CLIs default to 14).
const resumeCapSlack = 4
