package synth

import (
	"context"

	"transit/internal/expr"
)

// bank carries SolveConcrete's retained state across the CEGIS rounds of
// one SolveConcolic call: the per-size pools of signature-class
// representatives and the cursor of the round's winner. A new
// concretization only refines the signature partition — every retained
// representative stays the minimum-index representative of its refined
// class — so the next round extends each entry's signature with one new
// evaluation, re-keys the table, and resumes enumeration right after the
// previous winner instead of restarting at size 1. The previous winner
// cannot match the new goal (its concretization was chosen to contradict
// it), and no earlier candidate can either (the new goal signature
// projects onto the old one), which is what makes resuming at the cursor
// sound; see DESIGN.md §10 for the full argument and for the restart
// fallback covering representatives that only the newest examples can
// distinguish.
type bank struct {
	// nExamples is the concretization count the signatures cover.
	nExamples int
	// perSize are the pools, adopted from the winning enumerator.
	perSize []map[expr.Type][]entry
	// curSize/curIdx locate the previous winner: candidate curIdx
	// (1-based, tier-local) of size tier curSize.
	curSize int
	curIdx  int64
}

// harvest captures the enumerator state after a successful solve. The
// enumerator is not used afterwards, so the pools move instead of copy.
func (en *enumerator) harvest() *bank {
	return &bank{nExamples: len(en.examples), perSize: en.perSize,
		curSize: en.curSize, curIdx: en.curIdx}
}

// usable reports whether the bank can seed a round over the given
// (append-only grown) example set. A bank built with zero examples is
// degenerate — every expression of a type was indistinguishable, so the
// pools hold one entry per type — and is cheaper to discard than to
// resume.
func (bk *bank) usable(examples []ConcreteExample, limits Limits) bool {
	return bk != nil && !limits.NoBankReuse && !limits.NoPrune &&
		bk.nExamples >= 1 && len(examples) > bk.nExamples &&
		bk.curSize >= 1 && bk.curSize <= limits.MaxSize
}

// resumeEnumerator builds an enumerator over the bank: pools are adopted
// (resized to the current MaxSize), every entry's signature is extended
// with one evaluation per new concretization, the signature table is
// rebuilt from the extended keys, and the resume cursor is set to the
// previous winner's position. Entries whose extended key collides with an
// earlier entry's are dropped as newly-indistinguishable duplicates
// (signature extension cannot merge distinct classes, so this is
// defensive; the invariant is checked by the parity tests).
func resumeEnumerator(ctx context.Context, p Problem, examples []ConcreteExample, limits Limits, bk *bank) *enumerator {
	en := newEnumerator(ctx, p, examples, limits)
	ps := bk.perSize
	if want := limits.MaxSize + 1; len(ps) != want {
		np := make([]map[expr.Type][]entry, want)
		copy(np, ps)
		for i := range np {
			if np[i] == nil {
				np[i] = make(map[expr.Type][]entry)
			}
		}
		ps = np
	}
	en.perSize = ps
	en.sigSeen = make(map[string]struct{})
	for s := range en.perSize {
		for t, pool := range en.perSize[s] {
			keep := pool[:0]
			for i := range pool {
				ent := pool[i]
				for k := bk.nExamples; k < len(examples); k++ {
					ent.sig = append(ent.sig, ent.e.Eval(p.U, examples[k].S))
				}
				en.keyBuf = appendSigKey(en.keyBuf[:0], t, ent.sig)
				if _, dup := en.sigSeen[string(en.keyBuf)]; dup {
					continue
				}
				en.sigSeen[string(en.keyBuf)] = struct{}{}
				keep = append(keep, ent)
			}
			en.perSize[s][t] = keep
		}
	}
	en.resumeSize, en.resumeSkip = bk.curSize, bk.curIdx
	en.resumeCap = bk.curSize + resumeCapSlack
	return en
}

// resumeCapSlack bounds how many size tiers past the previous winner a
// resumed search explores before conceding to the restart fallback. The
// trade is empirical: CEGIS winners regularly jump a few sizes between
// rounds (so a tight cap forces spurious restarts on healthy banks), but
// tier cost grows exponentially with size, so a stale bank that is only
// detected by exhausting every tier up to MaxSize costs several times the
// fresh search it ends up triggering anyway. Four tiers of slack covers
// every jump the Table 3 protocols exhibit (abs-diff's winners move four
// sizes between rounds) while keeping the worst-case stale walk bounded
// when MaxSize is generous (the CLIs default to 14).
const resumeCapSlack = 4
