package synth

import (
	"context"
	"errors"
	"testing"
	"time"

	"transit/internal/expr"
)

func maxProblem() (Problem, []ConcolicExample) {
	u := expr.NewUniverse(3)
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	o := expr.V("o", expr.IntType)
	prob := Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, b}, Output: o}
	spec := []ConcolicExample{{
		Pre: expr.True(),
		Post: expr.And(expr.Ge(o, a), expr.Ge(o, b),
			expr.Or(expr.Eq(o, a), expr.Eq(o, b))),
	}}
	return prob, spec
}

func TestWithDefaultsResolvesZeroFields(t *testing.T) {
	got := Limits{}.WithDefaults()
	want := Limits{MaxSize: DefaultMaxSize, MaxExprs: DefaultMaxExprs, MaxIters: DefaultMaxIters,
		EnumWorkers: 1}
	if got != want {
		t.Errorf("Limits{}.WithDefaults() = %+v, want %+v", got, want)
	}
}

func TestWithDefaultsIdempotent(t *testing.T) {
	once := Limits{}.WithDefaults()
	if twice := once.WithDefaults(); twice != once {
		t.Errorf("WithDefaults not idempotent: %+v -> %+v", once, twice)
	}
}

func TestWithDefaultsPreservesExplicitFields(t *testing.T) {
	in := Limits{MaxSize: 7, MaxExprs: 123, MaxIters: 3,
		Timeout: time.Second, SMTConflicts: 9, NoPrune: true,
		EnumWorkers: 2, NoBankReuse: true}
	if got := in.WithDefaults(); got != in {
		t.Errorf("WithDefaults clobbered explicit fields: %+v -> %+v", in, got)
	}
}

// TestZeroLimitsEqualExplicitDefaults is the regression test for the
// single-point-of-resolution contract: solving with Limits{} must do
// exactly the same work as solving with the spelled-out defaults.
func TestZeroLimitsEqualExplicitDefaults(t *testing.T) {
	prob, spec := maxProblem()
	eZero, sZero, err := SolveConcolic(prob, spec, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	eDef, sDef, err := SolveConcolic(prob, spec,
		Limits{MaxSize: DefaultMaxSize, MaxExprs: DefaultMaxExprs, MaxIters: DefaultMaxIters})
	if err != nil {
		t.Fatal(err)
	}
	if !expr.Equal(eZero, eDef) {
		t.Errorf("answers differ: %s vs %s", eZero, eDef)
	}
	if sZero.Iterations != sDef.Iterations || sZero.SMTQueries != sDef.SMTQueries ||
		sZero.Concrete.Enumerated != sDef.Concrete.Enumerated {
		t.Errorf("work differs: %+v vs %+v", sZero, sDef)
	}
}

func TestSolveConcolicCtxCancelled(t *testing.T) {
	prob, spec := maxProblem()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := SolveConcolicCtx(ctx, prob, spec, Limits{MaxSize: 8})
	if err == nil {
		t.Fatal("cancelled solve must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
	if errors.Is(err, ErrNoExpression) {
		t.Error("cancellation must not be reported as search exhaustion")
	}
}

func TestSolveConcreteCtxCancelled(t *testing.T) {
	prob, spec := maxProblem()
	// Concretize the single example at a = 1, b = 2, o = 2.
	env := expr.Env{"a": expr.IntVal(prob.U, 1), "b": expr.IntVal(prob.U, 2)}
	concrete := []ConcreteExample{{S: env, Out: expr.IntVal(prob.U, 2)}}
	_ = spec
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := SolveConcreteCtx(ctx, prob, concrete, Limits{MaxSize: 8})
	if err == nil {
		t.Fatal("cancelled enumeration must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
}
