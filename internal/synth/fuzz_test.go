package synth

import (
	"bytes"
	"testing"

	"transit/internal/expr"
)

// sigKeyCase is one decoded (type, value-vector) pair for the injectivity
// fuzz target, built canonically so that semantic equality of two cases is
// exactly Go equality of their components.
type sigKeyCase struct {
	t   expr.Type
	sig []expr.Value
}

func (c sigKeyCase) equal(o sigKeyCase) bool {
	if c.t != o.t || len(c.sig) != len(o.sig) {
		return false
	}
	for i := range c.sig {
		if c.sig[i] != o.sig[i] {
			return false
		}
	}
	return true
}

// decodeSigKeyCase consumes bytes from data (returning the remainder) and
// builds one canonical case over the given universe and enums. Every byte
// pattern maps to a valid case, so the fuzzer explores the full space.
func decodeSigKeyCase(u *expr.Universe, enums []*expr.EnumType, data []byte) (sigKeyCase, []byte) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	next64 := func() uint64 {
		var x uint64
		for i := 0; i < 8; i++ {
			x |= uint64(next()) << (8 * uint(i))
		}
		return x
	}
	types := []expr.Type{expr.BoolType, expr.IntType, expr.PIDType, expr.SetType,
		expr.EnumOf(enums[0]), expr.EnumOf(enums[1])}
	mkVal := func(t expr.Type, raw uint64) expr.Value {
		switch t.Kind {
		case expr.KindBool:
			return expr.BoolVal(raw&1 == 1)
		case expr.KindInt:
			return expr.IntVal(u, int64(raw))
		case expr.KindPID:
			return expr.PIDVal(int(raw % uint64(u.NumCaches())))
		case expr.KindSet:
			return expr.SetVal(raw & u.SetMask())
		default:
			return expr.EnumVal(t.Enum, int(raw%uint64(len(t.Enum.Values))))
		}
	}
	c := sigKeyCase{t: types[int(next())%len(types)]}
	n := int(next()) % 6
	for i := 0; i < n; i++ {
		vt := types[int(next())%len(types)]
		c.sig = append(c.sig, mkVal(vt, next64()))
	}
	return c, data
}

// FuzzSigKeyInjective fuzzes the signature-key encoding the enumerator's
// pruning table and the parallel tier merge both depend on: two
// (type, value-vector) pairs must produce equal keys exactly when they are
// semantically equal. A collision between distinct pairs would silently
// fuse two distinguishable candidate classes.
func FuzzSigKeyInjective(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 1, 7, 0, 0, 0, 0, 0, 0, 0, 0, 3, 1, 4, 9})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := expr.NewUniverseWidth(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		e1, err := u.DeclareEnum("fuzzState", "I", "S", "M")
		if err != nil {
			t.Fatal(err)
		}
		e2, err := u.DeclareEnum("fuzzMode", "A", "B")
		if err != nil {
			t.Fatal(err)
		}
		enums := []*expr.EnumType{e1, e2}
		a, rest := decodeSigKeyCase(u, enums, data)
		b, _ := decodeSigKeyCase(u, enums, rest)
		ka := appendSigKey(nil, a.t, a.sig)
		kb := appendSigKey(nil, b.t, b.sig)
		if got, want := bytes.Equal(ka, kb), a.equal(b); got != want {
			t.Fatalf("key equality %v, semantic equality %v\na: %v %v\nb: %v %v\nka: %x\nkb: %x",
				got, want, a.t, a.sig, b.t, b.sig, ka, kb)
		}
		// The key must also be deterministic and prefix-composable: keying
		// the same case twice, or reusing a's buffer, changes nothing.
		if again := appendSigKey(ka[:0], a.t, a.sig); !bytes.Equal(again, ka) {
			t.Fatalf("re-encoding differs: %x vs %x", again, ka)
		}
	})
}
