package synth

import (
	"context"
	"errors"
	"testing"
	"time"

	"transit/internal/expr"
)

// reductionBench is one CEGIS workload of the interpretation-reduction
// parity suite: a Table 3-shaped problem plus the size its known winner
// has, used to bound the search.
type reductionBench struct {
	name         string
	expectedSize int
	build        func(u *expr.Universe) (Problem, []ConcolicExample)
}

// reductionIntProblem builds a coherence-vocabulary problem whose variable
// types are derived from the conventional name prefixes used across the
// suite (s* sets, p* PIDs, everything else ints).
func reductionIntProblem(u *expr.Universe, outType expr.Type, names ...string) (Problem, []*expr.Var) {
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	var vars []*expr.Var
	for _, n := range names {
		t := expr.IntType
		switch n[0] {
		case 's':
			t = expr.SetType
		case 'p':
			t = expr.PIDType
		}
		vars = append(vars, expr.V(n, t))
	}
	return Problem{U: u, Vocab: voc, Vars: vars, Output: expr.V("o", outType)}, vars
}

// reductionBenches covers the CEGIS shapes that stress the bank/reduction
// machinery differently: a guarded spec whose rounds resume cleanly, the
// deep-winner workload whose rounds jump sizes (abs-diff), a
// mixed-enum-typed conditional, the set workload whose stale rounds are
// skipped by the adopt-time probe (sym-diff), and a small single-round
// solve.
func reductionBenches() []reductionBench {
	return []reductionBench{
		{"max2-guarded", 6, func(u *expr.Universe) (Problem, []ConcolicExample) {
			p, vars := reductionIntProblem(u, expr.IntType, "a", "b")
			a, b := vars[0], vars[1]
			o := p.Output
			return p, []ConcolicExample{
				{Pre: expr.Gt(a, b), Post: expr.Eq(o, a)},
				{Pre: expr.Gt(b, a), Post: expr.Eq(o, b)},
			}
		}},
		{"abs-diff", 9, func(u *expr.Universe) (Problem, []ConcolicExample) {
			p, vars := reductionIntProblem(u, expr.IntType, "a", "b")
			a, b := vars[0], vars[1]
			o := p.Output
			return p, []ConcolicExample{
				{Pre: expr.Gt(a, b), Post: expr.Eq(o, expr.Sub(a, b))},
				{Pre: expr.Ge(b, a), Post: expr.Eq(o, expr.Sub(b, a))},
			}
		}},
		{"enum-conditional", 6, func(u *expr.Universe) (Problem, []ConcolicExample) {
			et := u.MustDeclareEnum("RedE", "c1", "c2", "c3")
			voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{
				Enums: []*expr.EnumType{et}, WithEnumConstants: true, WithoutEnumIte: true,
			})
			a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
			e := expr.V("e", expr.EnumOf(et))
			o := expr.V("o", expr.IntType)
			p := Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, b, e}, Output: o}
			return p, []ConcolicExample{
				{Pre: expr.Eq(e, expr.EnumC(et, "c1")), Post: expr.Eq(o, a)},
				{Pre: expr.Neq(e, expr.EnumC(et, "c1")), Post: expr.Eq(o, b)},
			}
		}},
		{"sym-diff", 7, func(u *expr.Universe) (Problem, []ConcolicExample) {
			p, vars := reductionIntProblem(u, expr.SetType, "s1", "s2")
			s1, s2 := vars[0], vars[1]
			o := p.Output
			un := expr.SetUnion(s1, s2)
			inter := expr.SetInter(s1, s2)
			return p, []ConcolicExample{
				{Pre: expr.True(), Post: expr.SubsetEq(o, un)},
				{Pre: expr.True(), Post: expr.Eq(expr.SetInter(o, inter), expr.NewConst(expr.SetVal(0)))},
				{Pre: expr.True(), Post: expr.Eq(expr.SetUnion(o, inter), un)},
			}
		}},
		{"count-others", 5, func(u *expr.Universe) (Problem, []ConcolicExample) {
			p, vars := reductionIntProblem(u, expr.IntType, "s1", "p1")
			s1, p1 := vars[0], vars[1]
			o := p.Output
			return p, []ConcolicExample{{
				Pre:  expr.True(),
				Post: expr.Eq(o, expr.Card(expr.SetMinus(s1, expr.Singleton(p1)))),
			}}
		}},
	}
}

// TestSigKeyLayout pins the signature-key byte layout the bank and shadow
// machinery rely on: a fixed-width type header followed by one fixed-width
// record per signature coordinate. Both widths are load-bearing — key
// extension appends records in place, the goal test is a fixed-offset
// suffix compare, and shadow keys slice off the header — so a change here
// must be deliberate and versioned.
func TestSigKeyLayout(t *testing.T) {
	if sigKeyHeaderLen != 2 {
		t.Fatalf("sigKeyHeaderLen = %d, want 2", sigKeyHeaderLen)
	}
	if sigValEncLen != 10 {
		t.Fatalf("sigValEncLen = %d, want 10", sigValEncLen)
	}
	u := expr.NewUniverse(3)
	vals := []expr.Value{expr.IntVal(u, 0), expr.IntVal(u, 3), expr.SetVal(0), expr.SetVal(5)}
	for _, v := range vals {
		if got := len(v.AppendEncoding(nil)); got != sigValEncLen {
			t.Errorf("AppendEncoding(%v) = %d bytes, want %d", v, got, sigValEncLen)
		}
	}
	key := appendSigKey(nil, expr.IntType, vals)
	if want := sigKeyHeaderLen + len(vals)*sigValEncLen; len(key) != want {
		t.Errorf("appendSigKey over %d values = %d bytes, want %d", len(vals), len(key), want)
	}
	// Extension is append-only: the shorter key must be a byte prefix of
	// the longer one, which is what lets resumed rounds extend keys in
	// place.
	short := appendSigKey(nil, expr.IntType, vals[:2])
	if string(key[:len(short)]) != string(short) {
		t.Error("key extension is not append-only: shorter key is not a prefix")
	}
}

// TestInterpReductionParity pins the reduction's central contract: with
// interpretation reduction and bank reuse enabled — sequential or
// tier-parallel — SolveConcolic returns exactly the expression the
// sequential restart-per-round baseline returns, on every workload of the
// suite.
func TestInterpReductionParity(t *testing.T) {
	ctx := context.Background()
	unclampWorkers(t, 4)
	configs := []struct {
		name string
		mut  func(*Limits)
	}{
		{"baseline", func(l *Limits) { l.NoBankReuse = true; l.NoInterpReduction = true }},
		{"bank-only", func(l *Limits) { l.NoInterpReduction = true }},
		{"bank+reduction", func(l *Limits) {}},
		{"bank+reduction-4workers", func(l *Limits) { l.EnumWorkers = 4 }},
	}
	for _, b := range reductionBenches() {
		// One universe per workload: identity-level equality (enum types,
		// interned values) must hold across configurations.
		u, err := expr.NewUniverseWidth(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		prob, exs := b.build(u)
		var ref expr.Expr
		for _, cf := range configs {
			limits := Limits{MaxSize: b.expectedSize + 2, Timeout: 2 * time.Minute, EnumWorkers: 1}
			cf.mut(&limits)
			e, _, err := SolveConcolicCtx(ctx, prob, exs, limits)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.name, cf.name, err)
			}
			if ref == nil {
				ref = e
				continue
			}
			if !expr.Equal(ref, e) {
				t.Errorf("%s/%s: answer diverged: %s vs baseline %s", b.name, cf.name, e, ref)
			}
		}
	}
}

// TestUnrealizableHole exercises the unrealizability atlas end to end: a
// vocabulary with no functions can only express the input variables, so a
// spec demanding max(a, b) is impossible — and provably so, since the
// atlas reaches closure immediately. The solve must fail with
// ErrUnrealizable (not the retryable ErrNoExpression) and flag the stats.
func TestUnrealizableHole(t *testing.T) {
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	o := expr.V("o", expr.IntType)
	p := Problem{U: u, Vocab: expr.NewVocabulary(), Vars: []*expr.Var{a, b}, Output: o}
	exs := []ConcolicExample{{
		Pre: expr.True(),
		Post: expr.And(expr.Ge(o, a), expr.Ge(o, b),
			expr.Or(expr.Eq(o, a), expr.Eq(o, b))),
	}}
	_, stats, err := SolveConcolicCtx(context.Background(), p, exs, Limits{MaxSize: 4, Timeout: 30 * time.Second})
	if err == nil {
		t.Fatal("solve succeeded on an unrealizable hole")
	}
	if !errors.Is(err, ErrUnrealizable) {
		t.Fatalf("error = %v, want ErrUnrealizable", err)
	}
	if errors.Is(err, ErrNoExpression) {
		t.Fatal("ErrUnrealizable must not wrap ErrNoExpression: retries would multiply the exhaustion cost")
	}
	if !stats.Unrealizable {
		t.Error("stats.Unrealizable not set")
	}
}

// TestUnrealizableInconclusiveKeepsNoExpression pins the atlas's
// conservative side: when reduction is disabled the check never runs, so
// an exhausted search keeps its plain retryable ErrNoExpression.
func TestUnrealizableInconclusiveKeepsNoExpression(t *testing.T) {
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	o := expr.V("o", expr.IntType)
	p := Problem{U: u, Vocab: expr.NewVocabulary(), Vars: []*expr.Var{a, b}, Output: o}
	exs := []ConcolicExample{{
		Pre: expr.True(),
		Post: expr.And(expr.Ge(o, a), expr.Ge(o, b),
			expr.Or(expr.Eq(o, a), expr.Eq(o, b))),
	}}
	limits := Limits{MaxSize: 4, Timeout: 30 * time.Second, NoInterpReduction: true}
	_, stats, err := SolveConcolicCtx(context.Background(), p, exs, limits)
	if !errors.Is(err, ErrNoExpression) {
		t.Fatalf("error = %v, want ErrNoExpression", err)
	}
	if errors.Is(err, ErrUnrealizable) || stats.Unrealizable {
		t.Fatal("unrealizability must not be asserted with the atlas disabled")
	}
}

// FuzzInterpReductionParity differentially fuzzes the reduced bank-reusing
// solver against the sequential restart-per-round baseline: pointwise
// specs generated from the fuzzed input pin concrete outputs for max-style
// workloads, and both solvers must return the same expression (or fail
// identically). Multi-example specs drive multi-round CEGIS, which is
// where bank extension, shadow adoption, and the stale-skip probe all run.
func FuzzInterpReductionParity(f *testing.F) {
	f.Add(byte(1), byte(2), byte(3), byte(0), byte(2), byte(2), byte(2), false)
	f.Add(byte(0), byte(3), byte(1), byte(1), byte(3), byte(2), byte(3), true)
	f.Add(byte(2), byte(0), byte(0), byte(2), byte(1), byte(3), byte(1), false)
	f.Fuzz(func(t *testing.T, a1, b1, a2, b2, a3, b3, n byte, useMin bool) {
		u, err := expr.NewUniverseWidth(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
		a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
		o := expr.V("o", expr.IntType)
		p := Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, b}, Output: o}
		dom := int64(u.DomainSize(expr.IntType))
		if dom == 0 {
			t.Skip("no int domain")
		}
		pick := func(x byte) expr.Expr { return expr.NewConst(expr.IntVal(u, int64(x)%dom)) }
		out := func(x, y byte) expr.Expr {
			xi, yi := int64(x)%dom, int64(y)%dom
			if useMin == (xi < yi) {
				return expr.NewConst(expr.IntVal(u, xi))
			}
			return expr.NewConst(expr.IntVal(u, yi))
		}
		pairs := [][2]byte{{a1, b1}, {a2, b2}, {a3, b3}}
		var exs []ConcolicExample
		for i := 0; i < 1+int(n)%3; i++ {
			av, bv := pairs[i][0], pairs[i][1]
			exs = append(exs, ConcolicExample{
				Pre:  expr.And(expr.Eq(a, pick(av)), expr.Eq(b, pick(bv))),
				Post: expr.Eq(o, out(av, bv)),
			})
		}
		limits := Limits{MaxSize: 7, Timeout: time.Minute, EnumWorkers: 1}
		base := limits
		base.NoBankReuse = true
		base.NoInterpReduction = true
		eRef, _, errRef := SolveConcolicCtx(context.Background(), p, exs, base)
		eRed, _, errRed := SolveConcolicCtx(context.Background(), p, exs, limits)
		if (errRef == nil) != (errRed == nil) {
			t.Fatalf("outcome diverged: baseline err=%v reduced err=%v", errRef, errRed)
		}
		if errRef == nil && !expr.Equal(eRef, eRed) {
			t.Fatalf("answer diverged: baseline %s reduced %s", eRef, eRed)
		}
	})
}
