// Package synth implements the paper's expression-inference engine:
// Algorithm 1 (SolveConcrete), the bottom-up enumerative search pruned by
// signature indistinguishability, and Algorithm 2 (SolveConcolic), the
// CEGIS loop that alternates enumeration over concretizations with SMT
// consistency checks against concolic examples.
package synth

import (
	"errors"
	"time"

	"transit/internal/expr"
)

// ConcreteExample is the paper's (S, k_o) pair: a valuation S of the input
// variables and the concrete output value k_o the target expression must
// produce under S.
type ConcreteExample struct {
	S   expr.Env
	Out expr.Value
}

// ConcolicExample is the paper's pre ⇒ post example: Pre is a Boolean
// expression over the input variables V, Post a Boolean expression over
// V ∪ {o} where o is the distinguished output variable. An expression e is
// consistent with the example iff pre ⇒ post[o := e] is valid.
type ConcolicExample struct {
	Pre  expr.Expr
	Post expr.Expr
}

// Formula renders the example as the single implication pre ⇒ post.
func (c ConcolicExample) Formula() expr.Expr { return expr.Implies(c.Pre, c.Post) }

// Problem fixes the inference instance: the universe, the expression
// vocabulary G = (T, F), the typed input variables V, and the typed output
// variable o ∉ V.
type Problem struct {
	U      *expr.Universe
	Vocab  *expr.Vocabulary
	Vars   []*expr.Var
	Output *expr.Var
}

// validate checks structural sanity of the problem.
func (p Problem) validate() error {
	if p.U == nil || p.Vocab == nil || p.Output == nil {
		return errors.New("synth: problem requires universe, vocabulary and output variable")
	}
	for _, v := range p.Vars {
		if v.Name == p.Output.Name {
			return errors.New("synth: output variable must not appear in input variables")
		}
	}
	return nil
}

// Limits bounds the search.
//
// The zero value is valid and means "use the documented defaults": a zero
// MaxSize, MaxExprs, or MaxIters resolves to DefaultMaxSize,
// DefaultMaxExprs, or DefaultMaxIters respectively, while a zero Timeout
// means no wall-clock bound and a zero SMTConflicts means unbounded SMT
// queries. WithDefaults is the single place this resolution happens; both
// SolveConcrete and SolveConcolic apply it on entry, so callers passing
// Limits{} and callers passing the explicit defaults get identical
// behavior.
type Limits struct {
	// MaxSize is the largest expression size enumerated.
	// 0 means DefaultMaxSize.
	MaxSize int
	// MaxExprs caps the number of candidate expressions examined
	// (enumerated, whether or not pruned). 0 means DefaultMaxExprs.
	MaxExprs int64
	// MaxIters caps CEGIS iterations in SolveConcolic.
	// 0 means DefaultMaxIters.
	MaxIters int
	// Timeout caps wall-clock time for the whole call; 0 means none.
	Timeout time.Duration
	// SMTConflicts bounds each SMT query; 0 means unlimited.
	SMTConflicts int64
	// NoPrune disables indistinguishability pruning (the paper's
	// "Exhaustive" variant, used as the Figure 5 baseline).
	NoPrune bool
	// NoIncremental makes SolveConcolic issue every SMT query one-shot
	// instead of through a per-solve incremental session. Both paths pose
	// identical queries and receive identical canonical models, so answers
	// (and the CEGIS trace) do not change — the flag exists as an escape
	// hatch and for differential testing, and is deliberately excluded
	// from the engine's memoization key.
	NoIncremental bool
	// EnumWorkers sizes SolveConcrete's per-size-tier worker pool. Values
	// <= 1 (and 0, which resolves to 1) run the enumeration sequentially.
	// Any worker count returns the same expression and the same
	// ConcreteStats as the sequential search — the parallel tiers merge
	// through a deterministic minimum-index reduction (see DESIGN.md §10) —
	// so the field is an execution detail and, like NoIncremental, is
	// excluded from the engine's memoization key.
	EnumWorkers int
	// NoBankReuse makes SolveConcolic rebuild the expression bank from
	// size 1 on every CEGIS round instead of extending the previous
	// round's bank with the new concretization and resuming enumeration
	// at the previous winner's position. Reuse never yields an expression
	// inconsistent with the examples (every answer still passes the full
	// SMT consistency check) and falls back to a full restart when the
	// resumed search exhausts the size bound; the flag is the escape
	// hatch and the differential-testing lever for that path. Ignored
	// (reuse disabled) under NoPrune.
	NoBankReuse bool
	// NoInterpReduction disables interpretation-indexed pruning: by
	// default (and only when pruning is on at all, i.e. not under
	// NoPrune) signature classes are keyed by the candidate's values on a
	// small deterministic set of probe interpretations in addition to the
	// concrete examples, so the partition carried across CEGIS rounds is
	// finer from round one and rarely goes stale when a new
	// concretization arrives. The finer partition is answer-invariant —
	// the first candidate matching the goal on the example coordinates is
	// the same expression either way (DESIGN.md §15) — so the flag, like
	// EnumWorkers and NoBankReuse, is an escape hatch and a
	// differential-testing lever, excluded from the engine's memoization
	// key. It also disables the unrealizability check, which needs the
	// interpretation-indexed class structure.
	NoInterpReduction bool
	// Portfolio asks the engine to race this many solver configurations
	// per job and keep the first finisher (values <= 1 disable racing).
	// The synthesizer itself ignores the field: racing is an engine-level
	// execution strategy layered on top of SolveConcolic, and — because
	// every raced configuration is answer-identical on the pinned parity
	// workloads — it is excluded from the engine's memoization key.
	Portfolio int
}

// Default limits, applied by Limits.WithDefaults.
const (
	DefaultMaxSize  = 20
	DefaultMaxExprs = 20_000_000
	DefaultMaxIters = 64
)

// WithDefaults resolves zero fields to the package defaults. It is
// idempotent, and it is the only place zero-value Limits semantics are
// defined: every solver entry point normalizes its Limits through it, and
// external consumers (e.g. the engine's memoization key) use it so that
// Limits{} and the spelled-out defaults are interchangeable.
func (l Limits) WithDefaults() Limits {
	if l.MaxSize == 0 {
		l.MaxSize = DefaultMaxSize
	}
	if l.MaxExprs == 0 {
		l.MaxExprs = DefaultMaxExprs
	}
	if l.MaxIters == 0 {
		l.MaxIters = DefaultMaxIters
	}
	if l.EnumWorkers == 0 {
		l.EnumWorkers = 1
	}
	return l
}

func (l Limits) withDefaults() Limits { return l.WithDefaults() }

// Sentinel errors.
var (
	// ErrNoExpression means the bounded space held no consistent
	// expression (or a resource limit cut the search off).
	ErrNoExpression = errors.New("synth: no consistent expression within limits")
	// ErrInconsistent means the example set itself admits no output value
	// for some reachable input valuation.
	ErrInconsistent = errors.New("synth: example set is inconsistent")
	// ErrUnrealizable means the hole is impossible, not merely
	// undiscovered: the vocabulary admits no expression of the output
	// type — at any size — consistent with the concolic examples. It is
	// proved by enumerating the observational-equivalence classes of the
	// vocabulary over every interpretation of the input variables to a
	// semantic fixpoint and spec-checking each class (see
	// checkUnrealizable), so unlike ErrNoExpression it is not worth
	// retrying with larger limits.
	ErrUnrealizable = errors.New("synth: hole is unrealizable")
)

// ConcreteStats reports enumeration work done by SolveConcrete.
type ConcreteStats struct {
	// Enumerated counts every candidate expression examined, including
	// ones discarded as indistinguishable. This is the Figure 5 metric.
	Enumerated int64
	// Kept counts distinct signatures retained.
	Kept int64
	// MaxSizeSeen is the largest size tier the search entered.
	MaxSizeSeen int
	// Restarts counts CEGIS rounds that ran a fresh search despite having
	// a resumable bank: either the resumed search exhausted the size
	// bound and transparently fell back (the undetected stale-pool case,
	// synth.bank_fallback counter), or the interpretation shadows proved
	// the bank stale up front and the doomed resumed walk was skipped
	// entirely (synth.bank_stale counter). Always 0 outside CEGIS bank
	// reuse; Enumerated and Kept include the work of every attempt.
	Restarts int
	// InterpPruned counts duplicate candidates the interpretation index
	// proved redundant beyond example-equivalence: output-typed
	// expressions whose full signature — probe coordinates plus example
	// coordinates — was already covered by a retained representative or a
	// stored shadow. 0 when interpretation reduction is off. The count is
	// exact for sequential tiers and approximate under tier parallelism
	// (workers may scan slightly past the tier's final stop index).
	InterpPruned int64
	Elapsed      time.Duration
}

// IterRecord traces one CEGIS iteration; Table 2 of the paper is a
// rendering of this trace for max(a, b). Beyond the paper's columns the
// record carries the causal fields the provenance ledger needs: which
// concolic example killed the candidate, whether the round resumed the
// previous bank or restarted, and the round's enumeration counters. All
// of them are deterministic across worker counts (InterpPruned, which is
// approximate under tier parallelism, is deliberately absent), so the
// trace — and any ledger derived from it — stays byte-identical across
// `-workers` settings and memo-cache replays.
type IterRecord struct {
	// Candidate is the expression proposed by SolveConcrete.
	Candidate expr.Expr
	// Witness is the SMT model showing inconsistency, or nil when the
	// candidate was accepted.
	Witness expr.Env
	// NewExample is the concretization added, or nil when accepted.
	NewExample *ConcreteExample
	// KilledBy is the index of the concolic example whose consistency
	// query produced Witness, or -1 when the candidate was accepted.
	KilledBy int
	// Resumed reports that the round resumed the previous round's
	// expression bank instead of enumerating from size 1.
	Resumed bool
	// Restarted reports that the round's search restarted despite a
	// resumable bank (stale-skip or transparent fallback).
	Restarted bool
	// Enumerated and Kept are this round's enumeration counters
	// (per-round slices of ConcreteStats.Enumerated/Kept).
	Enumerated int64
	Kept       int64
}

// Stats reports work done by SolveConcolic.
type Stats struct {
	Concrete   ConcreteStats
	SMTQueries int
	Iterations int
	Elapsed    time.Duration
	Trace      []IterRecord

	// BankReuses counts CEGIS rounds that resumed enumeration from the
	// previous round's expression bank instead of restarting at size 1
	// (always 0 with Limits.NoBankReuse or Limits.NoPrune).
	BankReuses int

	// Unrealizable reports that the solve failed with ErrUnrealizable:
	// the exhaustion was proved permanent, not a budget artifact.
	Unrealizable bool

	// SMTClauses and SMTClausesReused sum the per-query encoding work:
	// clauses newly bit-blasted and cached-circuit clauses reused by the
	// incremental session (always 0 with Limits.NoIncremental).
	SMTClauses       int64
	SMTClausesReused int64
}
