package synth

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"transit/internal/expr"
)

// unclampWorkers raises GOMAXPROCS to cover the worker counts a parity
// test requests. enumWorkers clamps to GOMAXPROCS (spare workers only
// timeshare), so without this the multi-worker legs of the parity suite
// would silently degenerate to sequential runs on single-CPU machines
// and stop exercising the parallel merge.
func unclampWorkers(t *testing.T, n int) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < n {
		runtime.GOMAXPROCS(n)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// maxConcrete returns a concrete-example workload consistent with
// ite(gt(a, b), a, b) over the parity universe.
func maxConcrete(t testing.TB) (Problem, []ConcreteExample) {
	t.Helper()
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	p := Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, b}, Output: expr.V("o", expr.IntType)}
	mk := func(av, bv, ov int64) ConcreteExample {
		return ConcreteExample{
			S:   expr.Env{"a": expr.IntVal(u, av), "b": expr.IntVal(u, bv)},
			Out: expr.IntVal(u, ov),
		}
	}
	return p, []ConcreteExample{mk(1, 2, 2), mk(3, 1, 3), mk(2, 2, 2), mk(0, 3, 3)}
}

func sameConcreteStats(t *testing.T, label string, a, b ConcreteStats) {
	t.Helper()
	if a.Enumerated != b.Enumerated || a.Kept != b.Kept || a.MaxSizeSeen != b.MaxSizeSeen {
		t.Fatalf("%s: stats diverge: enumerated %d vs %d, kept %d vs %d, max size %d vs %d",
			label, a.Enumerated, b.Enumerated, a.Kept, b.Kept, a.MaxSizeSeen, b.MaxSizeSeen)
	}
}

// TestEnumWorkerParity mirrors the engine's TestWorkerCountParity for the
// tier-parallel enumerator: any EnumWorkers count must return the same
// expression and the same ConcreteStats as the sequential search — on a
// winning search, an exhausted one, and a budget-cut one — and the whole
// CEGIS loop must produce byte-identical traces.
func TestEnumWorkerParity(t *testing.T) {
	ctx := context.Background()
	unclampWorkers(t, 4)
	p, exs := maxConcrete(t)

	t.Run("concrete-found", func(t *testing.T) {
		base, bStats, err := SolveConcreteCtx(ctx, p, exs, Limits{MaxSize: 8, EnumWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4} {
			got, gStats, err := SolveConcreteCtx(ctx, p, exs, Limits{MaxSize: 8, EnumWorkers: w})
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			if got.String() != base.String() {
				t.Fatalf("workers=%d found %s, sequential found %s", w, got, base)
			}
			sameConcreteStats(t, "found", bStats, gStats)
		}
	})

	t.Run("concrete-exhausted", func(t *testing.T) {
		// The smallest consistent expression has size 6; a size bound of 4
		// walks every tier and fails identically at any worker count.
		_, bStats, bErr := SolveConcreteCtx(ctx, p, exs, Limits{MaxSize: 4, EnumWorkers: 1})
		if !errors.Is(bErr, ErrNoExpression) {
			t.Fatalf("sequential: err = %v, want ErrNoExpression", bErr)
		}
		for _, w := range []int{2, 4} {
			_, gStats, gErr := SolveConcreteCtx(ctx, p, exs, Limits{MaxSize: 4, EnumWorkers: w})
			if !errors.Is(gErr, ErrNoExpression) {
				t.Fatalf("workers=%d: err = %v, want ErrNoExpression", w, gErr)
			}
			sameConcreteStats(t, "exhausted", bStats, gStats)
		}
	})

	t.Run("concrete-budget", func(t *testing.T) {
		_, full, err := SolveConcreteCtx(ctx, p, exs, Limits{MaxSize: 8, EnumWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		budget := full.Enumerated / 2
		_, bStats, bErr := SolveConcreteCtx(ctx, p, exs,
			Limits{MaxSize: 8, MaxExprs: budget, EnumWorkers: 1})
		if !errors.Is(bErr, ErrNoExpression) {
			t.Fatalf("sequential: err = %v, want budget ErrNoExpression", bErr)
		}
		if bStats.Enumerated != budget {
			t.Fatalf("sequential charged %d, budget %d", bStats.Enumerated, budget)
		}
		for _, w := range []int{2, 4} {
			_, gStats, gErr := SolveConcreteCtx(ctx, p, exs,
				Limits{MaxSize: 8, MaxExprs: budget, EnumWorkers: w})
			if !errors.Is(gErr, ErrNoExpression) {
				t.Fatalf("workers=%d: err = %v, want budget ErrNoExpression", w, gErr)
			}
			sameConcreteStats(t, "budget", bStats, gStats)
		}
	})

	t.Run("cegis", func(t *testing.T) {
		for _, tc := range parityProblems(t) {
			t.Run(tc.name, func(t *testing.T) {
				seq := tc.limits
				seq.EnumWorkers = 1
				baseExpr, baseStats, err := SolveConcolicCtx(ctx, tc.p, tc.examples, seq)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range []int{2, 4} {
					par := tc.limits
					par.EnumWorkers = w
					gotExpr, gotStats, err := SolveConcolicCtx(ctx, tc.p, tc.examples, par)
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					if gotExpr.String() != baseExpr.String() {
						t.Fatalf("workers=%d found %s, sequential found %s", w, gotExpr, baseExpr)
					}
					sameConcreteStats(t, "cegis", baseStats.Concrete, gotStats.Concrete)
					if gotStats.Iterations != baseStats.Iterations ||
						gotStats.SMTQueries != baseStats.SMTQueries {
						t.Fatalf("workers=%d: %d iters/%d queries, sequential %d/%d", w,
							gotStats.Iterations, gotStats.SMTQueries,
							baseStats.Iterations, baseStats.SMTQueries)
					}
					sameTrace(t, baseStats.Trace, gotStats.Trace)
				}
			})
		}
	})
}

// sameTrace asserts two CEGIS traces are byte-identical: candidates,
// witnesses, and concretized outputs.
func sameTrace(t *testing.T, want, got []IterRecord) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("trace length: %d vs %d", len(want), len(got))
	}
	for i := range want {
		wr, gr := want[i], got[i]
		if wr.Candidate.String() != gr.Candidate.String() {
			t.Fatalf("iter %d candidate: %s vs %s", i+1, wr.Candidate, gr.Candidate)
		}
		if (wr.Witness == nil) != (gr.Witness == nil) {
			t.Fatalf("iter %d witness presence differs", i+1)
		}
		for k, v := range wr.Witness {
			if gr.Witness[k] != v {
				t.Fatalf("iter %d witness[%s]: %v vs %v", i+1, k, v, gr.Witness[k])
			}
		}
		if (wr.NewExample == nil) != (gr.NewExample == nil) {
			t.Fatalf("iter %d new-example presence differs", i+1)
		}
		if wr.NewExample != nil && wr.NewExample.Out != gr.NewExample.Out {
			t.Fatalf("iter %d concretized output: %v vs %v", i+1, wr.NewExample.Out, gr.NewExample.Out)
		}
	}
}

// TestBankReuseParity is the exact-parity guard for cross-iteration bank
// reuse: with and without NoBankReuse, CEGIS must produce identical traces
// and final expressions, and the reusing run must enumerate no more
// candidates than the restarting one.
func TestBankReuseParity(t *testing.T) {
	ctx := context.Background()
	for _, tc := range parityProblems(t) {
		t.Run(tc.name, func(t *testing.T) {
			restart := tc.limits
			restart.NoBankReuse = true
			reuseExpr, reuseStats, reuseErr := SolveConcolicCtx(ctx, tc.p, tc.examples, tc.limits)
			restExpr, restStats, restErr := SolveConcolicCtx(ctx, tc.p, tc.examples, restart)
			if (reuseErr == nil) != (restErr == nil) {
				t.Fatalf("error parity: reuse=%v restart=%v", reuseErr, restErr)
			}
			if reuseErr != nil {
				return
			}
			if reuseExpr.String() != restExpr.String() {
				t.Fatalf("result parity: reuse=%s restart=%s", reuseExpr, restExpr)
			}
			if reuseStats.Iterations != restStats.Iterations ||
				reuseStats.SMTQueries != restStats.SMTQueries {
				t.Fatalf("work parity: reuse %d iters/%d queries, restart %d/%d",
					reuseStats.Iterations, reuseStats.SMTQueries,
					restStats.Iterations, restStats.SMTQueries)
			}
			sameTrace(t, restStats.Trace, reuseStats.Trace)
			if restStats.BankReuses != 0 {
				t.Errorf("NoBankReuse run reports %d bank reuses", restStats.BankReuses)
			}
			// Rounds 1 and 2 never resume (no bank / degenerate bank);
			// every later round must.
			if want := reuseStats.Iterations - 2; want > 0 && reuseStats.BankReuses != want {
				t.Errorf("bank reuses = %d, want %d (iterations %d)",
					reuseStats.BankReuses, want, reuseStats.Iterations)
			}
			// The refactor's point: when resumes stick (no stale-pool
			// fallbacks), the reusing run skips every rebuilt prefix. A
			// fallback round pays for both the futile resumed walk and the
			// restart, so its total is instead bounded loosely.
			if reuseStats.BankReuses > 0 && reuseStats.Concrete.Restarts == 0 &&
				reuseStats.Concrete.Enumerated >= restStats.Concrete.Enumerated {
				t.Errorf("bank reuse enumerated %d candidates, restart %d — no reuse win",
					reuseStats.Concrete.Enumerated, restStats.Concrete.Enumerated)
			}
			if reuseStats.Concrete.Enumerated > 4*restStats.Concrete.Enumerated {
				t.Errorf("bank reuse enumerated %d candidates, restart %d — fallback cost unbounded",
					reuseStats.Concrete.Enumerated, restStats.Concrete.Enumerated)
			}
			if restStats.Concrete.Restarts != 0 {
				t.Errorf("NoBankReuse run reports %d fallback restarts", restStats.Concrete.Restarts)
			}
		})
	}
}

// TestBankReuseWorkerParity crosses both tentpole axes: 4 tier workers
// with bank reuse against the fully sequential restart path.
func TestBankReuseWorkerParity(t *testing.T) {
	ctx := context.Background()
	unclampWorkers(t, 4)
	for _, tc := range parityProblems(t) {
		t.Run(tc.name, func(t *testing.T) {
			fast := tc.limits
			fast.EnumWorkers = 4
			slow := tc.limits
			slow.EnumWorkers = 1
			slow.NoBankReuse = true
			fastExpr, fastStats, err := SolveConcolicCtx(ctx, tc.p, tc.examples, fast)
			if err != nil {
				t.Fatal(err)
			}
			slowExpr, slowStats, err := SolveConcolicCtx(ctx, tc.p, tc.examples, slow)
			if err != nil {
				t.Fatal(err)
			}
			if fastExpr.String() != slowExpr.String() {
				t.Fatalf("result parity: fast=%s slow=%s", fastExpr, slowExpr)
			}
			sameTrace(t, slowStats.Trace, fastStats.Trace)
		})
	}
}

// TestMaxExprsExactBudget is the regression test for the charge()
// off-by-one: a budget of exactly the winning candidate's index must
// still succeed, and a budget one short must fail.
func TestMaxExprsExactBudget(t *testing.T) {
	ctx := context.Background()
	unclampWorkers(t, 4)
	p, exs := maxConcrete(t)
	want, full, err := SolveConcreteCtx(ctx, p, exs, Limits{MaxSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		got, stats, err := SolveConcreteCtx(ctx, p, exs,
			Limits{MaxSize: 8, MaxExprs: full.Enumerated, EnumWorkers: w})
		if err != nil {
			t.Fatalf("workers=%d, budget %d (the winner's index): %v", w, full.Enumerated, err)
		}
		if got.String() != want.String() || stats.Enumerated != full.Enumerated {
			t.Fatalf("workers=%d: got %s after %d, want %s after %d",
				w, got, stats.Enumerated, want, full.Enumerated)
		}
		if _, _, err := SolveConcreteCtx(ctx, p, exs,
			Limits{MaxSize: 8, MaxExprs: full.Enumerated - 1, EnumWorkers: w}); !errors.Is(err, ErrNoExpression) {
			t.Fatalf("workers=%d, budget one short: err = %v, want ErrNoExpression", w, err)
		}
	}
}
