package synth

import (
	"context"
	"testing"

	"transit/internal/expr"
)

// composeFixture builds an enumerator mid-search: atoms retained, scratch
// buffers warm, and one composed candidate already in the signature table
// so further considerApply calls on it take the pruned path.
func composeFixture(t testing.TB) (*enumerator, *expr.Func, []entry) {
	t.Helper()
	p, exs := maxConcrete(t)
	en := newEnumerator(context.Background(), p, exs, Limits{MaxSize: 8}.withDefaults())
	en.initFresh()
	if found, err := en.runAtoms(0); err != nil || found != nil {
		t.Fatalf("atom tier: found=%v err=%v", found, err)
	}
	var add *expr.Func
	for _, f := range p.Vocab.Funcs() {
		if f.Arity() == 2 && f.Params[0] == expr.IntType && f.Params[1] == expr.IntType {
			add = f
			break
		}
	}
	if add == nil {
		t.Fatal("no binary int-argument function in vocabulary")
	}
	pool := en.perSize[1][expr.IntType]
	if len(pool) < 2 {
		t.Fatalf("size-1 int pool has %d entries", len(pool))
	}
	args := []entry{pool[0], pool[1]}
	// Warm: the first call retains the candidate (allocates the entry);
	// every later call is pruned by the signature table.
	if found, err := en.considerApply(add, args); err != nil || found != nil {
		t.Fatalf("warm-up: found=%v err=%v", found, err)
	}
	return en, add, args
}

// TestComposeAllocFree guards the compose() hot-path hoisting: evaluating
// and pruning an already-seen candidate must not allocate — the signature,
// key, and argument buffers are enumerator scratch, and the signature
// table is probed with the compiler's alloc-free string([]byte) lookup.
func TestComposeAllocFree(t *testing.T) {
	en, f, args := composeFixture(t)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := en.considerApply(f, args); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("pruned considerApply allocates %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkComposeAllocs measures the pruned compose hot path; run with
// -benchmem to see the allocation guarantee in the report.
func BenchmarkComposeAllocs(b *testing.B) {
	en, f, args := composeFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := en.considerApply(f, args); err != nil {
			b.Fatal(err)
		}
	}
}
