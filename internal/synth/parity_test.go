package synth

import (
	"context"
	"testing"

	"transit/internal/expr"
)

// parityProblems is a small spread of Table 3-style specs covering Int,
// Bool, and Set outputs.
func parityProblems(t *testing.T) []struct {
	name     string
	p        Problem
	examples []ConcolicExample
	limits   Limits
} {
	t.Helper()
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	oInt := expr.V("o", expr.IntType)
	oBool := expr.V("o", expr.BoolType)
	s1, s2 := expr.V("s1", expr.SetType), expr.V("s2", expr.SetType)
	oSet := expr.V("o", expr.SetType)

	return []struct {
		name     string
		p        Problem
		examples []ConcolicExample
		limits   Limits
	}{
		{
			name: "max2-guarded",
			p:    Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, b}, Output: oInt},
			examples: []ConcolicExample{
				{Pre: expr.Gt(a, b), Post: expr.Eq(oInt, a)},
				{Pre: expr.Gt(b, a), Post: expr.Eq(oInt, b)},
			},
			limits: Limits{MaxSize: 8},
		},
		{
			name: "ge-guard",
			p:    Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, b}, Output: oBool},
			examples: []ConcolicExample{
				{Pre: expr.Ge(a, b), Post: expr.Eq(oBool, expr.True())},
				{Pre: expr.Gt(b, a), Post: expr.Eq(oBool, expr.False())},
			},
			limits: Limits{MaxSize: 6},
		},
		{
			name: "sym-diff",
			p:    Problem{U: u, Vocab: voc, Vars: []*expr.Var{s1, s2}, Output: oSet},
			examples: []ConcolicExample{
				{Pre: expr.True(), Post: expr.Eq(oSet,
					expr.SetUnion(expr.SetMinus(s1, s2), expr.SetMinus(s2, s1)))},
			},
			limits: Limits{MaxSize: 8},
		},
	}
}

// TestConcolicIncrementalParity is the answer-parity guard for the
// incremental-session refactor: with and without NoIncremental, CEGIS must
// produce byte-identical traces — same candidates, same witnesses, same
// concretized outputs, same final expression, same query count.
func TestConcolicIncrementalParity(t *testing.T) {
	ctx := context.Background()
	for _, tc := range parityProblems(t) {
		t.Run(tc.name, func(t *testing.T) {
			incLimits := tc.limits
			oneLimits := tc.limits
			oneLimits.NoIncremental = true
			incExpr, incStats, incErr := SolveConcolicCtx(ctx, tc.p, tc.examples, incLimits)
			oneExpr, oneStats, oneErr := SolveConcolicCtx(ctx, tc.p, tc.examples, oneLimits)
			if (incErr == nil) != (oneErr == nil) {
				t.Fatalf("error parity: incremental=%v one-shot=%v", incErr, oneErr)
			}
			if incErr != nil {
				return
			}
			if incExpr.String() != oneExpr.String() {
				t.Fatalf("result parity: incremental=%s one-shot=%s", incExpr, oneExpr)
			}
			if incStats.Iterations != oneStats.Iterations {
				t.Fatalf("iteration parity: incremental=%d one-shot=%d",
					incStats.Iterations, oneStats.Iterations)
			}
			if incStats.SMTQueries != oneStats.SMTQueries {
				t.Fatalf("query-count parity: incremental=%d one-shot=%d",
					incStats.SMTQueries, oneStats.SMTQueries)
			}
			if len(incStats.Trace) != len(oneStats.Trace) {
				t.Fatalf("trace length parity: %d vs %d", len(incStats.Trace), len(oneStats.Trace))
			}
			for i := range incStats.Trace {
				ir, or := incStats.Trace[i], oneStats.Trace[i]
				if ir.Candidate.String() != or.Candidate.String() {
					t.Fatalf("iter %d candidate: %s vs %s", i+1, ir.Candidate, or.Candidate)
				}
				if (ir.Witness == nil) != (or.Witness == nil) {
					t.Fatalf("iter %d witness presence differs", i+1)
				}
				for k, v := range ir.Witness {
					if or.Witness[k] != v {
						t.Fatalf("iter %d witness[%s]: %v vs %v", i+1, k, v, or.Witness[k])
					}
				}
				if (ir.NewExample == nil) != (or.NewExample == nil) {
					t.Fatalf("iter %d new-example presence differs", i+1)
				}
				if ir.NewExample != nil && ir.NewExample.Out != or.NewExample.Out {
					t.Fatalf("iter %d concretized output: %v vs %v",
						i+1, ir.NewExample.Out, or.NewExample.Out)
				}
			}
			// The refactor's point: the incremental run re-encodes less.
			if incStats.SMTClauses >= oneStats.SMTClauses && incStats.SMTQueries > 2 {
				t.Errorf("incremental encoded %d clauses, one-shot %d — no reuse win",
					incStats.SMTClauses, oneStats.SMTClauses)
			}
			if oneStats.SMTClausesReused != 0 {
				t.Errorf("one-shot mode reports reused clauses: %d", oneStats.SMTClausesReused)
			}
		})
	}
}
