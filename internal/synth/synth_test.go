package synth

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"transit/internal/expr"
)

// smallProblem builds a compact universe/vocabulary for fast tests.
func smallProblem(t *testing.T, outType expr.Type, vars ...*expr.Var) Problem {
	t.Helper()
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	return Problem{U: u, Vocab: voc, Vars: vars, Output: expr.V("o", outType)}
}

// assertConsistentConcolic brute-force checks the result against every
// concolic example over the full variable domains.
func assertConsistentConcolic(t *testing.T, p Problem, e expr.Expr, exs []ConcolicExample) {
	t.Helper()
	var rec func(i int, env expr.Env)
	rec = func(i int, env expr.Env) {
		if i == len(p.Vars) {
			out := e.Eval(p.U, env)
			env2 := env.Clone()
			env2[p.Output.Name] = out
			for _, c := range exs {
				if c.Pre.Eval(p.U, env).Bool() && !c.Post.Eval(p.U, env2).Bool() {
					t.Fatalf("expression %s inconsistent at %v (out=%v)", e, env, out)
				}
			}
			return
		}
		for _, v := range expr.ValuesOf(p.U, p.Vars[i].VT) {
			env[p.Vars[i].Name] = v
			rec(i+1, env)
		}
	}
	rec(0, expr.Env{})
}

func TestSolveConcreteEmptyExamples(t *testing.T) {
	a := expr.V("a", expr.IntType)
	p := smallProblem(t, expr.IntType, a)
	e, stats, err := SolveConcrete(p, nil, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// With no examples everything is indistinguishable; the first
	// candidate of the output type (the variable a) is returned.
	if e.String() != "a" {
		t.Errorf("got %s, want a", e)
	}
	if stats.Enumerated == 0 {
		t.Error("stats not populated")
	}
}

func TestSolveConcreteMax(t *testing.T) {
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	p := smallProblem(t, expr.IntType, a, b)
	u := p.U
	mkEx := func(av, bv, out int64) ConcreteExample {
		return ConcreteExample{
			S:   expr.Env{"a": expr.IntVal(u, av), "b": expr.IntVal(u, bv)},
			Out: expr.IntVal(u, out),
		}
	}
	// Enough examples to pin down max (distinguishes from a, b, add, ...).
	exs := []ConcreteExample{
		mkEx(5, 3, 5), mkEx(2, 7, 7), mkEx(-3, -5, -3), mkEx(0, 0, 0), mkEx(1, -1, 1), mkEx(-8, 4, 4),
	}
	e, _, err := SolveConcrete(p, exs, Limits{MaxSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range exs {
		if got := e.Eval(u, c.S); got != c.Out {
			t.Errorf("%s on %v = %v, want %v", e, c.S, got, c.Out)
		}
	}
}

func TestSolveConcreteRespectsSizeLimit(t *testing.T) {
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	p := smallProblem(t, expr.IntType, a, b)
	u := p.U
	// max requires size >= 6 with this vocabulary; MaxSize 3 must fail.
	exs := []ConcreteExample{
		{S: expr.Env{"a": expr.IntVal(u, 5), "b": expr.IntVal(u, 3)}, Out: expr.IntVal(u, 5)},
		{S: expr.Env{"a": expr.IntVal(u, 2), "b": expr.IntVal(u, 7)}, Out: expr.IntVal(u, 7)},
		{S: expr.Env{"a": expr.IntVal(u, -3), "b": expr.IntVal(u, -5)}, Out: expr.IntVal(u, -3)},
		{S: expr.Env{"a": expr.IntVal(u, 1), "b": expr.IntVal(u, -1)}, Out: expr.IntVal(u, 1)},
		{S: expr.Env{"a": expr.IntVal(u, 0), "b": expr.IntVal(u, 3)}, Out: expr.IntVal(u, 3)},
		{S: expr.Env{"a": expr.IntVal(u, -2), "b": expr.IntVal(u, -1)}, Out: expr.IntVal(u, -1)},
		{S: expr.Env{"a": expr.IntVal(u, 7), "b": expr.IntVal(u, 0)}, Out: expr.IntVal(u, 7)},
		{S: expr.Env{"a": expr.IntVal(u, -8), "b": expr.IntVal(u, 4)}, Out: expr.IntVal(u, 4)},
	}
	_, _, err := SolveConcrete(p, exs, Limits{MaxSize: 3})
	if !errors.Is(err, ErrNoExpression) {
		t.Fatalf("err = %v, want ErrNoExpression", err)
	}
}

func TestSolveConcreteOutputTypeMismatch(t *testing.T) {
	a := expr.V("a", expr.IntType)
	p := smallProblem(t, expr.IntType, a)
	exs := []ConcreteExample{{S: expr.Env{"a": expr.IntVal(p.U, 1)}, Out: expr.BoolVal(true)}}
	if _, _, err := SolveConcrete(p, exs, Limits{}); err == nil {
		t.Error("expected type-mismatch error")
	}
}

func TestSolveConcreteOutputCollision(t *testing.T) {
	o := expr.V("o", expr.IntType)
	p := smallProblem(t, expr.IntType, o)
	if _, _, err := SolveConcrete(p, nil, Limits{}); err == nil {
		t.Error("expected output-variable collision error")
	}
}

func TestPruningBeatsExhaustive(t *testing.T) {
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	p := smallProblem(t, expr.IntType, a, b)
	u := p.U
	rng := rand.New(rand.NewSource(5))
	// A target of size 6 (max) with 10 random consistent examples, per the
	// Figure 5 methodology.
	target := expr.Ite(expr.Gt(expr.V("a", expr.IntType), expr.V("b", expr.IntType)),
		expr.V("a", expr.IntType), expr.V("b", expr.IntType))
	var exs []ConcreteExample
	for i := 0; i < 10; i++ {
		env := expr.RandomEnv(u, rng, p.Vars)
		exs = append(exs, ConcreteExample{S: env, Out: target.Eval(u, env)})
	}
	_, pruned, err := SolveConcrete(p, exs, Limits{MaxSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, exhaustive, err := SolveConcrete(p, exs, Limits{MaxSize: 8, NoPrune: true, MaxExprs: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Enumerated >= exhaustive.Enumerated {
		t.Errorf("pruned (%d) should explore fewer than exhaustive (%d)",
			pruned.Enumerated, exhaustive.Enumerated)
	}
	t.Logf("pruned=%d exhaustive=%d (%.1fx)", pruned.Enumerated, exhaustive.Enumerated,
		float64(exhaustive.Enumerated)/float64(pruned.Enumerated))
}

func TestSolveConcolicMaxTwoStyles(t *testing.T) {
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	o := expr.V("o", expr.IntType)
	// Style (a) of Table 3 row 1: two guarded equalities.
	styleA := []ConcolicExample{
		{Pre: expr.Gt(a, b), Post: expr.Eq(o, a)},
		{Pre: expr.Gt(b, a), Post: expr.Eq(o, b)},
	}
	// Style (b): one functional spec.
	styleB := []ConcolicExample{
		{Pre: expr.True(), Post: expr.And(expr.Ge(o, a), expr.Ge(o, b), expr.Or(expr.Eq(o, a), expr.Eq(o, b)))},
	}
	for name, exs := range map[string][]ConcolicExample{"guarded": styleA, "functional": styleB} {
		t.Run(name, func(t *testing.T) {
			p := smallProblem(t, expr.IntType, a, b)
			e, stats, err := SolveConcolic(p, exs, Limits{MaxSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			assertConsistentConcolic(t, p, e, exs)
			if stats.Iterations > 10 {
				t.Errorf("took %d CEGIS iterations, expected a few", stats.Iterations)
			}
			t.Logf("%s in %d iterations, %d SMT queries (%s)", e, stats.Iterations, stats.SMTQueries, stats.Elapsed)
		})
	}
}

// Max-of-three's minimal representation has size 16
// (ite(gt(a,b), ite(gt(a,c), a, c), ite(gt(b,c), b, c))); full CEGIS
// convergence on it takes minutes and lives in the Table 3 benchmark
// harness. The unit test covers the same spec with a handful of concrete
// examples, which is the per-iteration workload.
func TestSolveConcreteMaxOfThreeExamples(t *testing.T) {
	a, b, c := expr.V("a", expr.IntType), expr.V("b", expr.IntType), expr.V("c", expr.IntType)
	p := smallProblem(t, expr.IntType, a, b, c)
	u := p.U
	max3 := func(x, y, z int64) int64 {
		m := x
		if y > m {
			m = y
		}
		if z > m {
			m = z
		}
		return m
	}
	rng := rand.New(rand.NewSource(11))
	var exs []ConcreteExample
	for i := 0; i < 5; i++ {
		env := expr.RandomEnv(u, rng, p.Vars)
		out := max3(env["a"].Int(), env["b"].Int(), env["c"].Int())
		exs = append(exs, ConcreteExample{S: env, Out: expr.IntVal(u, out)})
	}
	e, stats, err := SolveConcrete(p, exs, Limits{MaxSize: 16, MaxExprs: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range exs {
		if got := e.Eval(u, ex.S); got != ex.Out {
			t.Errorf("%s on %v = %v, want %v", e, ex.S, got, ex.Out)
		}
	}
	t.Logf("max3 examples: %s after %d candidates", e, stats.Enumerated)
}

func TestSolveConcolicEnumConditional(t *testing.T) {
	// Table 3 row: ite(equals(e, c1), a, b).
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	mt := u.MustDeclareEnum("MT", "READ", "WRITE")
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{
		Enums: []*expr.EnumType{mt}, WithEnumConstants: true,
	})
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	m := expr.V("m", expr.EnumOf(mt))
	o := expr.V("o", expr.IntType)
	p := Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, b, m}, Output: o}
	exs := []ConcolicExample{
		{Pre: expr.Eq(m, expr.EnumC(mt, "READ")), Post: expr.Eq(o, a)},
		{Pre: expr.Neq(m, expr.EnumC(mt, "READ")), Post: expr.Eq(o, b)},
	}
	e, stats, err := SolveConcolic(p, exs, Limits{MaxSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertConsistentConcolic(t, p, e, exs)
	t.Logf("enum conditional: %s (%d iters)", e, stats.Iterations)
}

func TestSolveConcolicSymmetricDifference(t *testing.T) {
	// Table 3 row 4: symmetric difference of two sets via three invariants.
	s1, s2 := expr.V("s1", expr.SetType), expr.V("s2", expr.SetType)
	o := expr.V("o", expr.SetType)
	un := expr.SetUnion(s1, s2)
	exs := []ConcolicExample{
		{Pre: expr.True(), Post: expr.SubsetEq(o, un)},
		{Pre: expr.True(), Post: expr.Eq(expr.SetInter(o, expr.SetInter(s1, s2)), expr.NewConst(expr.SetVal(0)))},
		{Pre: expr.True(), Post: expr.Eq(expr.SetUnion(o, un), un)},
	}
	p := smallProblem(t, expr.SetType, s1, s2)
	e, stats, err := SolveConcolic(p, exs, Limits{MaxSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	assertConsistentConcolic(t, p, e, exs)
	t.Logf("symdiff: %s (%d iters)", e, stats.Iterations)
}

func TestSolveConcolicLargestSet(t *testing.T) {
	// Table 3 row: ite(gt(setsize(s1), setsize(s2)), s1, s2), via the
	// functional spec |o| >= |s1| ∧ |o| >= |s2| ∧ (o = s1 ∨ o = s2).
	s1, s2 := expr.V("s1", expr.SetType), expr.V("s2", expr.SetType)
	o := expr.V("o", expr.SetType)
	exs := []ConcolicExample{
		{Pre: expr.True(), Post: expr.And(
			expr.Ge(expr.Card(o), expr.Card(s1)),
			expr.Ge(expr.Card(o), expr.Card(s2)),
			expr.Or(expr.Eq(o, s1), expr.Eq(o, s2)))},
	}
	p := smallProblem(t, expr.SetType, s1, s2)
	e, stats, err := SolveConcolic(p, exs, Limits{MaxSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	assertConsistentConcolic(t, p, e, exs)
	t.Logf("largest set: %s (%d iters)", e, stats.Iterations)
}

func TestSolveConcolicBooleanGuard(t *testing.T) {
	// Guard-style synthesis: o must be true exactly when p ∈ s.
	s := expr.V("s", expr.SetType)
	q := expr.V("q", expr.PIDType)
	o := expr.V("o", expr.BoolType)
	exs := []ConcolicExample{
		{Pre: expr.SetContains(s, q), Post: expr.Eq(o, expr.True())},
		{Pre: expr.Not(expr.SetContains(s, q)), Post: expr.Eq(o, expr.False())},
	}
	p := smallProblem(t, expr.BoolType, s, q)
	e, _, err := SolveConcolic(p, exs, Limits{MaxSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	assertConsistentConcolic(t, p, e, exs)
}

func TestSolveConcolicInconsistent(t *testing.T) {
	a := expr.V("a", expr.IntType)
	o := expr.V("o", expr.IntType)
	exs := []ConcolicExample{
		{Pre: expr.True(), Post: expr.Gt(o, a)},
		{Pre: expr.True(), Post: expr.Gt(a, o)},
	}
	p := smallProblem(t, expr.IntType, a)
	_, _, err := SolveConcolic(p, exs, Limits{MaxSize: 6})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestSolveConcolicTraceShape(t *testing.T) {
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	o := expr.V("o", expr.IntType)
	exs := []ConcolicExample{
		{Pre: expr.True(), Post: expr.And(expr.Ge(o, a), expr.Ge(o, b), expr.Or(expr.Eq(o, a), expr.Eq(o, b)))},
	}
	p := smallProblem(t, expr.IntType, a, b)
	_, stats, err := SolveConcolic(p, exs, Limits{MaxSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Trace) != stats.Iterations {
		t.Fatalf("trace length %d != iterations %d", len(stats.Trace), stats.Iterations)
	}
	last := stats.Trace[len(stats.Trace)-1]
	if last.Witness != nil || last.NewExample != nil {
		t.Error("accepted iteration should have no witness")
	}
	for _, rec := range stats.Trace[:len(stats.Trace)-1] {
		if rec.Witness == nil || rec.NewExample == nil {
			t.Error("rejected iteration must carry witness and new example")
		}
	}
}

func TestSolveConcolicConcreteStyleExamples(t *testing.T) {
	// A "concrete snippet" is a concolic example whose pre pins every
	// variable and whose post is an output equality; SolveConcolic must
	// reproduce the exact function they describe.
	s := expr.V("s", expr.SetType)
	q := expr.V("q", expr.PIDType)
	o := expr.V("o", expr.SetType)
	p := smallProblem(t, expr.SetType, s, q)
	// Target: setadd(s, q). Supply a symbolic superset constraint plus a
	// concrete correction, mirroring the paper's §2 anecdote structure.
	exs := []ConcolicExample{
		{Pre: expr.True(), Post: expr.SubsetEq(expr.SetAdd(s, q), o)},
		{Pre: expr.And(expr.Eq(s, expr.SetC(0)), expr.Eq(q, expr.PIDC(1))),
			Post: expr.Eq(o, expr.SetC(0, 1))},
	}
	e, _, err := SolveConcolic(p, exs, Limits{MaxSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertConsistentConcolic(t, p, e, exs)
}

func TestLimitsDefaults(t *testing.T) {
	l := Limits{}.withDefaults()
	if l.MaxSize != DefaultMaxSize || l.MaxExprs != DefaultMaxExprs || l.MaxIters != DefaultMaxIters {
		t.Errorf("defaults not applied: %+v", l)
	}
	l2 := Limits{MaxSize: 3}.withDefaults()
	if l2.MaxSize != 3 {
		t.Error("explicit value overridden")
	}
}

// Property: for random targets, SolveConcrete returns an expression that
// reproduces the target's outputs on every example, and pruning never
// changes that guarantee (testing/quick over seeds).
func TestSolveConcretePropertyRandomTargets(t *testing.T) {
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	vars := []*expr.Var{
		expr.V("a", expr.IntType), expr.V("b", expr.IntType),
		expr.V("s", expr.SetType), expr.V("p", expr.PIDType),
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 2 + rng.Intn(7)
		outType := []expr.Type{expr.IntType, expr.BoolType, expr.SetType}[rng.Intn(3)]
		target, err := expr.RandomExpr(u, rng, voc, vars, outType, size)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exs := make([]ConcreteExample, 6)
		for i := range exs {
			env := expr.RandomEnv(u, rng, vars)
			exs[i] = ConcreteExample{S: env, Out: target.Eval(u, env)}
		}
		p := Problem{U: u, Vocab: voc, Vars: vars, Output: expr.V("o", outType)}
		e, _, err := SolveConcrete(p, exs, Limits{MaxSize: size + 2, MaxExprs: 3_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, c := range exs {
			if e.Eval(u, c.S) != c.Out {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: pruning is sound — whenever both variants succeed, the pruned
// result agrees with the exhaustive result on every example.
func TestPruningSoundnessProperty(t *testing.T) {
	u, err := expr.NewUniverseWidth(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	vars := []*expr.Var{expr.V("a", expr.IntType), expr.V("b", expr.IntType)}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target, err := expr.RandomExpr(u, rng, voc, vars, expr.IntType, 2+rng.Intn(5))
		if err != nil {
			t.Fatal(err)
		}
		exs := make([]ConcreteExample, 5)
		for i := range exs {
			env := expr.RandomEnv(u, rng, vars)
			exs[i] = ConcreteExample{S: env, Out: target.Eval(u, env)}
		}
		p := Problem{U: u, Vocab: voc, Vars: vars, Output: expr.V("o", expr.IntType)}
		pruned, _, err := SolveConcrete(p, exs, Limits{MaxSize: 8, MaxExprs: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		exhaustive, _, err := SolveConcrete(p, exs, Limits{MaxSize: 8, MaxExprs: 20_000_000, NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range exs {
			if pruned.Eval(u, c.S) != c.Out || exhaustive.Eval(u, c.S) != c.Out {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
