package synth

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"transit/internal/expr"
)

// The tier-parallel search partitions one size tier's composition work —
// (function symbol × size-split × argument-pool chunk) — into units. Each
// unit covers a contiguous range of the tier's canonical sequential
// enumeration order, so every candidate has a tier-local index computable
// from its unit's base offset; the deterministic merge in runTierPar
// reduces worker-local tables by minimum index, reproducing the
// sequential search exactly (DESIGN.md §10).

// unitChunk is the target candidate count per unit: large enough to
// amortize claim overhead, small enough to balance a tier across workers
// and to bound the fast-forward cost when resuming mid-unit.
const unitChunk = 4096

// tierUnit is one deterministic slice of a size tier: function symbol f
// applied to arguments from pools (one per parameter, fixed by the size
// split shares), restricted to rows [lo, hi) of the outermost pool.
type tierUnit struct {
	f      *expr.Func
	shares []int
	pools  [][]entry
	lo, hi int
	// inner is the candidate count per outer-pool row; base the tier-local
	// 0-based index of the unit's first candidate; count the unit total.
	inner, base, count int64
}

// decode positions the odometer at the unit-local offset off: pools are
// iterated outermost-first, each in retention order, exactly like the
// sequential recursion.
func (u *tierUnit) decode(off int64, pos []int) {
	for j := len(u.pools) - 1; j >= 1; j-- {
		n := int64(len(u.pools[j]))
		pos[j] = int(off % n)
		off /= n
	}
	pos[0] = u.lo + int(off)
}

// advance steps the odometer to the next candidate (caller guarantees one
// exists).
func (u *tierUnit) advance(pos []int) {
	for j := len(u.pools) - 1; ; j-- {
		pos[j]++
		if j == 0 || pos[j] < len(u.pools[j]) {
			return
		}
		pos[j] = 0
	}
}

// buildUnits lays out one tier's units in canonical order — function
// symbols in vocabulary order, size splits in the recursion order of the
// original compose, outer-pool rows ascending — and returns them with the
// tier's total candidate count. Empty products contribute nothing, again
// like the sequential recursion.
func (en *enumerator) buildUnits(size int) ([]tierUnit, int64) {
	var units []tierUnit
	var base int64
	for _, f := range en.p.Vocab.Funcs() {
		m := f.Arity()
		if m == 0 {
			continue
		}
		budget := size - 1
		if budget < m {
			continue
		}
		if cap(en.shareBuf) < m {
			en.shareBuf = make([]int, m)
		}
		shares := en.shareBuf[:m]
		var rec func(i, remaining int)
		rec = func(i, remaining int) {
			if i == m-1 {
				shares[i] = remaining
				pools := make([][]entry, m)
				inner := int64(1)
				for j := 0; j < m; j++ {
					pools[j] = en.perSize[shares[j]][f.Params[j]]
					if j > 0 {
						inner *= int64(len(pools[j]))
					}
				}
				outer := len(pools[0])
				if outer == 0 || inner == 0 {
					return
				}
				rows := 1
				if inner < unitChunk {
					rows = int((unitChunk + inner - 1) / inner)
				}
				for lo := 0; lo < outer; lo += rows {
					hi := min(lo+rows, outer)
					u := tierUnit{f: f, shares: append([]int(nil), shares...),
						pools: pools, lo: lo, hi: hi, inner: inner, base: base}
					u.count = int64(hi-lo) * inner
					units = append(units, u)
					base += u.count
				}
				return
			}
			for s := 1; s <= remaining-(m-1-i); s++ {
				shares[i] = s
				rec(i+1, remaining-s)
			}
		}
		rec(0, budget)
	}
	return units, base
}

// tierHit is a worker-local first occurrence of a signature class within
// the tier: the candidate's tier-local 1-based index, its materialized
// expression, an owned copy of its signature (and of its probe
// coordinates when shadow tracking is on), and whether it matches the
// goal. The goal flag is carried per hit so the merge scans for the
// minimum-index flagged hit instead of looking up one goal key.
type tierHit struct {
	idx  int64
	e    expr.Expr
	sig  []expr.Value
	psig []expr.Value
	goal bool
}

// shadowEvent is a worker-local shadow observation: an output-typed
// candidate whose example signature duplicated an earlier class but whose
// full (probe + example) signature was locally new. key is the example
// key, psig the owned probe chunk. Events are resolved at merge time in
// candidate-index order against the merged probe-chunk index, so the
// stored shadow set — and therefore every later staleness decision — is
// identical at every worker count.
type shadowEvent struct {
	idx  int64
	key  string
	e    expr.Expr
	psig []expr.Value
}

// tierWorker is the per-goroutine state of one parallel tier: private
// signature table and evaluation buffers, so the only shared mutable
// state is the unit-claim counter and the cutoff index.
type tierWorker struct {
	en        *enumerator
	table     map[string]tierHit
	sigBuf    []expr.Value
	keyBuf    []byte
	argBuf    []expr.Value
	args      []entry
	pos       []int
	processed int64
	err       error

	// Shadow scratch (nil/unused when tracking is off): whether this
	// tier is tracked, the probe buffer, the local probe-chunk index
	// (example key → chunks observed by this worker), pending events,
	// and the count of candidates whose full signature was already
	// covered by the frozen pre-tier index or an earlier local
	// observation.
	track      bool
	probeBuf   []expr.Value
	localPsigs map[string][]expr.Value
	events     []shadowEvent
	pruned     int64
}

// fillProbes composes the candidate's probe coordinates from its
// children's psigs into probeBuf (the worker's argBuf is free again once
// the main signature loop is done).
func (w *tierWorker) fillProbes(f *expr.Func, args []entry) {
	if w.probeBuf == nil {
		w.probeBuf = make([]expr.Value, len(w.en.shadowProbes))
	}
	argv := w.argBuf[:len(args)]
	for k := range w.en.shadowProbes {
		for j := range args {
			argv[j] = args[j].psig[k]
		}
		w.probeBuf[k] = f.Apply(w.en.p.U, argv)
	}
}

// notePsig records an owned probe chunk under an example key in the
// worker-local index.
func (w *tierWorker) notePsig(key string, psig []expr.Value) {
	if w.localPsigs == nil {
		w.localPsigs = make(map[string][]expr.Value)
	}
	w.localPsigs[key] = append(w.localPsigs[key], psig...)
}

// noteShadow handles a duplicate under shadow tracking: covered full
// signatures count toward InterpPruned, locally-new ones become events for
// the merge to resolve in index order. frozen is the class's pre-tier
// probe rows (the sigSeen value the caller's duplicate check already
// fetched; nil for classes born in this tier). Both coverage checks are
// alloc-free chunk compares — no full key is ever built.
func (w *tierWorker) noteShadow(f *expr.Func, args []entry, idx int64, frozen []expr.Value) {
	w.fillProbes(f, args)
	if psigsContain(frozen, w.probeBuf) {
		w.pruned++
		return
	}
	if psigsContain(w.localPsigs[string(w.keyBuf)], w.probeBuf) {
		w.pruned++
		return
	}
	if len(w.events) >= maxShadows {
		return
	}
	key := string(w.keyBuf)
	psig := append([]expr.Value(nil), w.probeBuf...)
	childExprs := make([]expr.Expr, len(args))
	for j, a := range args {
		childExprs[j] = a.e
	}
	w.events = append(w.events, shadowEvent{idx: idx, key: key,
		e: expr.NewApply(f, childExprs...), psig: psig})
	w.notePsig(key, psig)
}

// runTierPar fans one tier out over en.workers goroutines and merges
// their tables into exactly the sequential outcome. skip and total are
// tier-local candidate counts (already consumed / overall).
func (en *enumerator) runTierPar(size int, units []tierUnit, total, skip int64) (expr.Expr, error) {
	remaining := en.limits.MaxExprs - en.stats.Enumerated
	if remaining <= 0 {
		en.stats.Elapsed = time.Since(en.start)
		return nil, errStop{reason: fmt.Sprintf("expression budget %d exhausted", en.limits.MaxExprs)}
	}
	// budgetCut is the largest tier-local index the budget admits;
	// workers additionally lower the shared cutoff to the smallest
	// goal-signature index seen, pruning work past any known winner.
	// Skipping is purely an optimization — correctness comes from the
	// merge below.
	budgetCut := total
	if c := skip + remaining; c < total && c > 0 {
		budgetCut = c
	}
	var cutoff atomic.Int64
	cutoff.Store(budgetCut)
	var next atomic.Int64
	track := en.trackTier
	workers := make([]*tierWorker, en.workers)
	var wg sync.WaitGroup
	for i := range workers {
		w := &tierWorker{en: en, track: track, table: make(map[string]tierHit),
			sigBuf: make([]expr.Value, en.nSig)}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(units, skip, &next, &cutoff)
		}()
	}
	wg.Wait()

	for _, w := range workers {
		if w.err != nil {
			// Best-effort accounting on abort (cancellation/timeout);
			// exact-stats parity is only promised for completed tiers.
			for _, v := range workers {
				en.stats.Enumerated += v.processed
			}
			en.stats.Elapsed = time.Since(en.start)
			return nil, w.err
		}
	}

	// Deterministic reduction: minimum-index survivor per signature.
	// Hits that lose the reduction are exactly the candidates the
	// sequential scan would have seen as duplicates of an earlier class
	// member, so under shadow tracking they demote to shadow events and
	// are resolved below alongside the worker-recorded ones.
	var demoted []shadowEvent
	demote := func(k string, h tierHit) {
		if !track {
			return
		}
		demoted = append(demoted, shadowEvent{idx: h.idx, key: k, e: h.e, psig: h.psig})
	}
	merged := make(map[string]tierHit)
	for _, w := range workers {
		for k, h := range w.table {
			old, ok := merged[k]
			switch {
			case !ok:
				merged[k] = h
			case h.idx < old.idx:
				merged[k] = h
				demote(k, old)
			default:
				demote(k, h)
			}
		}
	}
	var winner tierHit
	hasWin := false
	for _, h := range merged {
		if h.goal && h.idx <= budgetCut && (!hasWin || h.idx < winner.idx) {
			winner, hasWin = h, true
		}
	}
	stop := budgetCut
	if hasWin {
		stop = winner.idx
	}
	en.stats.Enumerated += stop - skip

	// Survivors at or before the stop index enter the pools and the
	// signature table in index order — pool order is enumeration order
	// for every later tier.
	type keyedHit struct {
		key string
		tierHit
	}
	survivors := make([]keyedHit, 0, len(merged))
	for k, h := range merged {
		if h.idx <= stop {
			survivors = append(survivors, keyedHit{key: k, tierHit: h})
		}
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].idx < survivors[j].idx })
	for _, h := range survivors {
		// The survivor is its class's first member: the assignment marks
		// the class seen and installs its first probe chunk (nil when the
		// tier is untracked).
		en.sigSeen[h.key] = h.psig
		en.stats.Kept++
		t := h.e.Type()
		en.perSize[size][t] = append(en.perSize[size][t],
			entry{e: h.e, sig: h.sig, key: []byte(h.key), psig: h.psig})
	}

	// Resolve shadow events in candidate-index order against the merged
	// probe-chunk index. A representative retained later in the tier can
	// never share a full signature with an earlier event (same full
	// signature implies same example key, and the event was by definition
	// a duplicate of an earlier class member), so inserting all survivors
	// first reproduces the sequential interleaving exactly; the stored
	// shadow set is identical at every worker count. Worker pruned counts
	// are summed as-is — they may include candidates past the final stop
	// index, so InterpPruned is approximate under tier parallelism.
	if track {
		events := demoted
		for _, w := range workers {
			en.stats.InterpPruned += w.pruned
			events = append(events, w.events...)
		}
		sort.Slice(events, func(i, j int) bool { return events[i].idx < events[j].idx })
		for _, ev := range events {
			if ev.idx > stop {
				continue
			}
			if psigsContain(en.sigSeen[ev.key], ev.psig) {
				en.stats.InterpPruned++
				continue
			}
			if len(en.shadows) < maxShadows {
				en.sigSeen[ev.key] = append(en.sigSeen[ev.key], ev.psig...)
				en.shadows = append(en.shadows,
					shadowEntry{e: ev.e, key: []byte(ev.key), psig: ev.psig, size: size, idx: ev.idx})
			}
		}
	}

	if hasWin {
		en.curSize, en.curIdx = size, winner.idx
		en.stats.Elapsed = time.Since(en.start)
		return winner.e, nil
	}
	if stop < total {
		en.stats.Elapsed = time.Since(en.start)
		return nil, errStop{reason: fmt.Sprintf("expression budget %d exhausted", en.limits.MaxExprs)}
	}
	return nil, nil
}

// run claims units off the shared counter until none remain or every
// further candidate lies past the cutoff. Units are claimed in canonical
// order, so each worker's candidate stream has strictly increasing
// indices and its table's first occurrence per key is its local minimum.
func (w *tierWorker) run(units []tierUnit, skip int64, next, cutoff *atomic.Int64) {
	for {
		ui := next.Add(1) - 1
		if ui >= int64(len(units)) {
			return
		}
		u := &units[ui]
		if u.base+u.count <= skip {
			continue
		}
		if u.base >= cutoff.Load() {
			return
		}
		if !w.unit(u, skip, cutoff) {
			return
		}
	}
}

// unit processes one unit's candidates against the worker-local table.
// It mirrors the sequential considerApply hot path: evaluate the
// signature pointwise from child signatures into reusable buffers, check
// the frozen pre-tier signature table, then the local one, and
// materialize the expression only on a first local occurrence.
func (w *tierWorker) unit(u *tierUnit, skip int64, cutoff *atomic.Int64) bool {
	en := w.en
	m := len(u.shares)
	if cap(w.args) < m {
		w.args = make([]entry, m)
		w.argBuf = make([]expr.Value, m)
		w.pos = make([]int, m)
	}
	args, argv, pos := w.args[:m], w.argBuf[:m], w.pos[:m]
	off := int64(0)
	if skip > u.base {
		off = skip - u.base
	}
	u.decode(off, pos)
	for {
		idx := u.base + off + 1
		if idx > cutoff.Load() {
			return true
		}
		w.processed++
		if w.processed%4096 == 0 {
			if err := en.ctx.Err(); err != nil {
				w.err = fmt.Errorf("synth: enumeration aborted: %w", err)
				return false
			}
			if en.limits.Timeout > 0 && time.Since(en.start) > en.limits.Timeout {
				w.err = errStop{reason: "timeout"}
				return false
			}
		}
		for j := 0; j < m; j++ {
			args[j] = u.pools[j][pos[j]]
		}
		for k := 0; k < en.nSig; k++ {
			for j := range args {
				argv[j] = args[j].sig[k]
			}
			w.sigBuf[k] = u.f.Apply(en.p.U, argv)
		}
		w.keyBuf = appendSigKey(w.keyBuf[:0], u.f.Ret, w.sigBuf)
		if rows, seen := en.sigSeen[string(w.keyBuf)]; seen {
			if w.track {
				w.noteShadow(u.f, args, idx, rows)
			}
		} else {
			// One conversion serves the local-table probe and the insert
			// (the probe-then-insert pair used to convert twice on every
			// first occurrence).
			key := string(w.keyBuf)
			if _, dup := w.table[key]; dup {
				if w.track {
					w.noteShadow(u.f, args, idx, nil)
				}
			} else {
				childExprs := make([]expr.Expr, m)
				for j, a := range args {
					childExprs[j] = a.e
				}
				var psig []expr.Value
				if w.track {
					w.fillProbes(u.f, args)
					psig = append([]expr.Value(nil), w.probeBuf...)
					// Index the representative's probe chunk so later
					// local duplicates of its class count as covered.
					w.notePsig(key, psig)
				}
				goal := en.goalHit(u.f.Ret, w.keyBuf)
				w.table[key] = tierHit{idx: idx, e: expr.NewApply(u.f, childExprs...),
					sig: append([]expr.Value(nil), w.sigBuf...), psig: psig, goal: goal}
				if goal {
					for {
						c := cutoff.Load()
						if idx >= c || cutoff.CompareAndSwap(c, idx) {
							break
						}
					}
				}
			}
		}
		off++
		if off == u.count {
			return true
		}
		u.advance(pos)
	}
}
