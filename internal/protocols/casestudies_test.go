package protocols

import (
	"testing"

	"transit/internal/core"
)

func runStudy(t *testing.T, cs core.CaseStudy) *core.CaseStudyResult {
	t.Helper()
	res, err := core.RunCaseStudy(cs)
	if err != nil {
		t.Fatalf("%s: %v", cs.Name, err)
	}
	if !res.Converged {
		t.Fatalf("%s did not converge", cs.Name)
	}
	for _, it := range res.Iterations {
		status := "OK"
		if it.Violation != nil {
			status = it.Violation.Kind.String() + ": " + it.Violation.Name
		}
		t.Logf("%s iter %d (+%d snippets, %q): %d states, %s",
			cs.Name, it.Index, it.SnippetsAdded, it.FixLabel, it.Check.States, status)
	}
	t.Logf("%s: converged with %d snippets over %d iterations, %d states, %d transitions",
		cs.Name, res.TotalSnippets, len(res.Iterations), res.FinalStates, res.FinalTransitions)
	return res
}

func TestCaseStudyA(t *testing.T) {
	res := runStudy(t, CaseStudyA(2))
	if len(res.Iterations) < 3 {
		t.Errorf("case study A should take several iterations, got %d", len(res.Iterations))
	}
}

func TestCaseStudyB(t *testing.T) {
	res := runStudy(t, CaseStudyB(2))
	if len(res.Iterations) < 2 {
		t.Errorf("case study B should take several iterations, got %d", len(res.Iterations))
	}
}

func TestCaseStudyC(t *testing.T) {
	res := runStudy(t, CaseStudyC(2))
	if len(res.Iterations) != 2 {
		t.Errorf("case study C converges after the Figure 2 fix: got %d iterations", len(res.Iterations))
	}
	first := res.Iterations[0]
	if first.Violation == nil {
		t.Error("first Origin iteration must violate sharers accuracy")
	}
}
