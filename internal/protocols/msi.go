package protocols

import (
	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
)

// msiParts exposes the skeleton pieces so the MESI extension (case study
// B) can build on the MSI definition.
type msiParts struct {
	u        *expr.Universe
	reqT     *expr.EnumType
	cacheT   *expr.EnumType
	ackT     *expr.EnumType
	cache    *efsm.ProcDef
	dir      *efsm.ProcDef
	reqNet   *efsm.Network
	cacheNet *efsm.Network
	ackNet   *efsm.Network
}

// MSI builds a full MSI directory protocol, the second GEMS transcription
// of Table 4 and the substrate of case study A.
//
// Design notes (documented deviations are in DESIGN.md):
//   - The directory serializes requests on an ordered ReqNet and uses
//     transient states (B_S, B_O, B_M) with stall rules for conflicting
//     requests while a recall, ownership transfer, or invalidation round
//     is in flight.
//   - All messages *to* caches (Data, FwdGetS, FwdGetM, Inv, PutAck)
//     share one network, CacheNet, ordered per destination. Point-to-point
//     ordering of dir→cache traffic is what the primer's extra transient
//     states otherwise reconstruct; cache→cache data rides the same net.
//   - Sharers evict silently from S; the directory's sharer list is a
//     superset and stale invalidations are acknowledged from I.
//   - Invalidation acknowledgements are collected by the directory
//     (AckCnt), which releases data to the requester when the count
//     drains.
//
// Guard style mirrors §6's methodology: directory guards are written
// symbolically ("we specified the guards in instances where the incoming
// message type was found to be inconsequential"); the cache-side guards
// for multi-block groups are left empty and inferred from the case
// preconditions.
func MSI(numCaches int) *Spec {
	p := msiSkeleton(numCaches)
	spec := &Spec{
		Name: "MSI", Sys: msiSystem("MSI", p), Vocab: msiVocab(p),
		Cache: p.cache, Dir: p.dir,
	}
	spec.Snippets = msiSnippets(p)
	spec.Invariants = msiInvariants(p)
	return spec
}

func msiSkeleton(numCaches int) *msiParts { return msiSkeletonExt(numCaches, false) }

// msiSkeletonExt builds the MSI skeleton; withE adds the MESI extension's
// states and the exclusive-data message type (case study B).
func msiSkeletonExt(numCaches int, withE bool) *msiParts {
	u := expr.NewUniverse(numCaches)
	reqT := u.MustDeclareEnum("MSIReqType", "GetS", "GetM", "PutM")
	cacheMsgs := []string{"Data", "FwdGetS", "FwdGetM", "Inv", "PutAck"}
	cacheStates := []string{"I", "I_S", "I_M", "S", "S_M", "M", "M_I", "S_I", "I_I"}
	dirStates := []string{"I", "S", "M", "B_S", "B_O", "B_M"}
	if withE {
		cacheMsgs = append(cacheMsgs, "DataE")
		cacheStates = append(cacheStates, "E")
		dirStates = append(dirStates, "E")
	}
	cacheT := u.MustDeclareEnum("MSICacheMsg", cacheMsgs...)
	ackT := u.MustDeclareEnum("MSIAckType", "InvAck", "DownAck", "OwnAck")

	cache := &efsm.ProcDef{
		Name:       "Cache",
		States:     u.MustDeclareEnum("MSICacheState", cacheStates...),
		Init:       "I",
		Replicated: true,
		Triggers:   []string{"Load", "Store", "Evict"},
	}
	dir := &efsm.ProcDef{
		Name:   "Dir",
		States: u.MustDeclareEnum("MSIDirState", dirStates...),
		Init:   "I",
		Vars: []*expr.Var{
			expr.V("Owner", expr.PIDType),
			expr.V("Sharers", expr.SetType),
			expr.V("Req", expr.PIDType),
			expr.V("AckCnt", expr.IntType),
		},
	}

	reqNet := &efsm.Network{
		Name: "ReqNet", Kind: efsm.Ordered, Receiver: dir, Route: efsm.RouteStatic,
		Msg: &efsm.MessageType{Name: "MSIReq", Fields: []efsm.Field{
			{Name: "MType", T: expr.EnumOf(reqT)},
			{Name: "Sender", T: expr.PIDType},
		}},
	}
	cacheNet := &efsm.Network{
		Name: "CacheNet", Kind: efsm.Ordered, Receiver: cache, Route: efsm.RouteByField, DestField: "Dest",
		Msg: &efsm.MessageType{Name: "MSICacheM", Fields: []efsm.Field{
			{Name: "CType", T: expr.EnumOf(cacheT)},
			{Name: "Dest", T: expr.PIDType},
			{Name: "Req", T: expr.PIDType},
		}},
	}
	ackNet := &efsm.Network{
		Name: "AckNet", Kind: efsm.Unordered, Receiver: dir, Route: efsm.RouteStatic,
		Msg: &efsm.MessageType{Name: "MSIAck", Fields: []efsm.Field{
			{Name: "AType", T: expr.EnumOf(ackT)},
			{Name: "Sender", T: expr.PIDType},
		}},
	}
	return &msiParts{u: u, reqT: reqT, cacheT: cacheT, ackT: ackT,
		cache: cache, dir: dir, reqNet: reqNet, cacheNet: cacheNet, ackNet: ackNet}
}

func msiSystem(name string, p *msiParts) *efsm.System {
	return &efsm.System{
		Name: name, U: p.u,
		Networks: []*efsm.Network{p.reqNet, p.cacheNet, p.ackNet},
		Defs:     []*efsm.ProcDef{p.dir, p.cache},
	}
}

func msiVocab(p *msiParts) *expr.Vocabulary {
	return expr.CoherenceVocabulary(p.u, expr.CoherenceOptions{
		Enums:             p.u.Enums(),
		WithEnumConstants: true,
		WithSetLiterals:   true,
		WithoutEnumIte:    true,
	})
}

// msiSnippets is the full transcription; the case-study A driver feeds
// subsets of it through the iterative workflow.
func msiSnippets(p *msiParts) []*efsm.Snippet {
	return append(msiCacheSnippets(p), msiDirSnippets(p)...)
}

func msiCacheSnippets(p *msiParts) []*efsm.Snippet {
	self := selfVar()
	ctype := field("CType", expr.EnumOf(p.cacheT))
	mreq := field("Req", expr.PIDType)
	isC := func(k string) expr.Expr { return expr.Eq(ctype, expr.EnumC(p.cacheT, k)) }
	reqC := func(k string) expr.Expr { return expr.EnumC(p.reqT, k) }
	ackC := func(k string) expr.Expr { return expr.EnumC(p.ackT, k) }

	// sendReq posts a request to the directory.
	sendReq := func(kind string) []efsm.Post {
		return []efsm.Post{
			eq("Out.MType", reqC(kind)),
			eq("Out.Sender", self),
		}
	}
	// ackPosts acknowledges an invalidation.
	ackPosts := []efsm.Post{
		eq("Ack.AType", ackC("InvAck")),
		eq("Ack.Sender", self),
	}
	// fwdPosts answers a forwarded request with data to the embedded
	// requester plus a directory acknowledgement.
	fwdPosts := func(ack string) []efsm.Post {
		return []efsm.Post{
			eq("Data.CType", expr.EnumC(p.cacheT, "Data")),
			eq("Data.Dest", mreq),
			eq("Data.Req", mreq),
			eq("Ack.AType", ackC(ack)),
			eq("Ack.Sender", self),
		}
	}

	return []*efsm.Snippet{
		// Core requests.
		newSnip("c-load", "Cache", "I", "I_S", onTrig("Load")).
			send(p.reqNet, "Out").kase(nil, sendReq("GetS")...).done(),
		newSnip("c-store", "Cache", "I", "I_M", onTrig("Store")).
			send(p.reqNet, "Out").kase(nil, sendReq("GetM")...).done(),
		newSnip("c-upgrade", "Cache", "S", "S_M", onTrig("Store")).
			send(p.reqNet, "Out").kase(nil, sendReq("GetM")...).done(),
		newSnip("c-evict-s", "Cache", "S", "I", onTrig("Evict")).done(),
		newSnip("c-evict-m", "Cache", "M", "M_I", onTrig("Evict")).
			send(p.reqNet, "Out").kase(nil, sendReq("PutM")...).done(),

		// Data arrivals: guards inferred from the preconditions.
		newSnip("c-data-is", "Cache", "I_S", "S", onMsg(p.cacheNet)).
			kase(isC("Data")).done(),
		newSnip("c-data-im", "Cache", "I_M", "M", onMsg(p.cacheNet)).
			kase(isC("Data")).done(),
		newSnip("c-data-sm", "Cache", "S_M", "M", onMsg(p.cacheNet)).
			kase(isC("Data")).done(),

		// Invalidations, including stale ones after silent eviction.
		newSnip("c-inv-s", "Cache", "S", "I", onMsg(p.cacheNet)).
			guard(isC("Inv")).
			send(p.ackNet, "Ack").kase(nil, ackPosts...).done(),
		newSnip("c-inv-sm", "Cache", "S_M", "I_M", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("Inv"), ackPosts...).done(),
		newSnip("c-inv-is", "Cache", "I_S", "I_S", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("Inv"), ackPosts...).done(),
		newSnip("c-inv-im", "Cache", "I_M", "I_M", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("Inv"), ackPosts...).done(),
		newSnip("c-inv-i", "Cache", "I", "I", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("Inv"), ackPosts...).done(),
		newSnip("c-inv-si", "Cache", "S_I", "I_I", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("Inv"), ackPosts...).done(),

		// Forward handling by the owner (and by an owner evicting).
		newSnip("c-fwdgets-m", "Cache", "M", "S", onMsg(p.cacheNet)).
			send(p.cacheNet, "Data").send(p.ackNet, "Ack").
			kase(isC("FwdGetS"), fwdPosts("DownAck")...).done(),
		newSnip("c-fwdgetm-m", "Cache", "M", "I", onMsg(p.cacheNet)).
			send(p.cacheNet, "Data").send(p.ackNet, "Ack").
			kase(isC("FwdGetM"), fwdPosts("OwnAck")...).done(),
		newSnip("c-fwdgets-mi", "Cache", "M_I", "S_I", onMsg(p.cacheNet)).
			send(p.cacheNet, "Data").send(p.ackNet, "Ack").
			kase(isC("FwdGetS"), fwdPosts("DownAck")...).done(),
		newSnip("c-fwdgetm-mi", "Cache", "M_I", "I_I", onMsg(p.cacheNet)).
			send(p.cacheNet, "Data").send(p.ackNet, "Ack").
			kase(isC("FwdGetM"), fwdPosts("OwnAck")...).done(),

		// Eviction acknowledgements.
		newSnip("c-putack-mi", "Cache", "M_I", "I", onMsg(p.cacheNet)).
			kase(isC("PutAck")).done(),
		newSnip("c-putack-si", "Cache", "S_I", "I", onMsg(p.cacheNet)).
			kase(isC("PutAck")).done(),
		newSnip("c-putack-ii", "Cache", "I_I", "I", onMsg(p.cacheNet)).
			guard(isC("PutAck")).done(),
		newSnip("c-putack-i", "Cache", "I", "I", onMsg(p.cacheNet)).
			kase(isC("PutAck")).done(),
	}
}

func msiDirSnippets(p *msiParts) []*efsm.Snippet {
	sender := field("Sender", expr.PIDType)
	mtype := field("MType", expr.EnumOf(p.reqT))
	atype := field("AType", expr.EnumOf(p.ackT))
	owner := expr.V("Owner", expr.PIDType)
	sharers := expr.V("Sharers", expr.SetType)
	req := expr.V("Req", expr.PIDType)
	ackCnt := expr.V("AckCnt", expr.IntType)
	isReq := func(k string) expr.Expr { return expr.Eq(mtype, expr.EnumC(p.reqT, k)) }
	isAck := func(k string) expr.Expr { return expr.Eq(atype, expr.EnumC(p.ackT, k)) }
	cc := func(k string) expr.Expr { return expr.EnumC(p.cacheT, k) }
	empty := expr.NewConst(expr.SetVal(0))
	othersOf := func(e expr.Expr) expr.Expr { return expr.SetMinus(sharers, expr.Singleton(e)) }

	dataTo := func(msgVar string, dest expr.Expr) []efsm.Post {
		return []efsm.Post{
			eq(msgVar+".CType", cc("Data")),
			eq(msgVar+".Dest", dest),
			eq(msgVar+".Req", dest),
		}
	}
	putAckTo := func(dest expr.Expr) []efsm.Post {
		return []efsm.Post{
			eq("R.CType", cc("PutAck")),
			eq("R.Dest", dest),
			eq("R.Req", dest),
		}
	}

	return []*efsm.Snippet{
		// Idle directory.
		newSnip("d-gets-i", "Dir", "I", "S", onMsg(p.reqNet)).
			guard(isReq("GetS")).
			send(p.cacheNet, "R").
			kase(nil, append(dataTo("R", sender), eq("Sharers", expr.Singleton(sender)))...).
			done(),
		newSnip("d-getm-i", "Dir", "I", "M", onMsg(p.reqNet)).
			guard(isReq("GetM")).
			send(p.cacheNet, "R").
			kase(nil, append(dataTo("R", sender), eq("Owner", sender))...).
			done(),
		newSnip("d-putm-i", "Dir", "I", "I", onMsg(p.reqNet)).
			guard(isReq("PutM")).
			send(p.cacheNet, "R").
			kase(nil, putAckTo(sender)...).
			done(),

		// Shared directory.
		newSnip("d-gets-s", "Dir", "S", "S", onMsg(p.reqNet)).
			guard(isReq("GetS")).
			send(p.cacheNet, "R").
			kase(nil, append(dataTo("R", sender), eq("Sharers", expr.SetAdd(sharers, sender)))...).
			done(),
		newSnip("d-getm-s-solo", "Dir", "S", "M", onMsg(p.reqNet)).
			guard(expr.And(isReq("GetM"), expr.Eq(othersOf(sender), empty))).
			send(p.cacheNet, "R").
			kase(nil, append(dataTo("R", sender),
				eq("Owner", sender),
				eq("Sharers", empty))...).
			done(),
		newSnip("d-getm-s-inv", "Dir", "S", "B_M", onMsg(p.reqNet)).
			guard(expr.And(isReq("GetM"), expr.Neq(othersOf(sender), empty))).
			multicast(p.cacheNet, "Inv", othersOf(sender)).
			kase(nil,
				eq("Inv.CType", cc("Inv")),
				eq("Inv.Req", sender),
				eq("AckCnt", expr.Card(othersOf(sender))),
				eq("Req", sender)).
			done(),
		// The stale-PutM reply uses a distinct output-event name (P) so
		// this block stays separate from d-gets-s, which shares
		// (S, ReqNet, S) but answers with data.
		newSnip("d-putm-s", "Dir", "S", "S", onMsg(p.reqNet)).
			guard(isReq("PutM")).
			send(p.cacheNet, "P").
			kase(nil,
				eq("P.CType", cc("PutAck")),
				eq("P.Dest", sender),
				eq("P.Req", sender),
				eq("Sharers", othersOf(sender))).
			done(),

		// Invalidation collection.
		newSnip("d-invack-more", "Dir", "B_M", "B_M", onMsg(p.ackNet)).
			guard(expr.And(isAck("InvAck"), expr.Gt(ackCnt, expr.IntC(p.u, 1)))).
			kase(nil, eq("AckCnt", expr.Dec(ackCnt))).
			done(),
		newSnip("d-invack-last", "Dir", "B_M", "M", onMsg(p.ackNet)).
			guard(expr.And(isAck("InvAck"), expr.Eq(ackCnt, expr.IntC(p.u, 1)))).
			send(p.cacheNet, "R").
			kase(nil, append(dataTo("R", req),
				eq("Owner", req),
				eq("Sharers", empty),
				eq("AckCnt", expr.IntC(p.u, 0)))...).
			done(),
		newSnip("d-bm-stall", "Dir", "B_M", "", onMsg(p.reqNet)).stall().done(),

		// Modified directory.
		newSnip("d-gets-m", "Dir", "M", "B_S", onMsg(p.reqNet)).
			guard(isReq("GetS")).
			send(p.cacheNet, "F").
			kase(nil,
				eq("F.CType", cc("FwdGetS")),
				eq("F.Dest", owner),
				eq("F.Req", sender),
				eq("Req", sender)).
			done(),
		newSnip("d-getm-m", "Dir", "M", "B_O", onMsg(p.reqNet)).
			guard(expr.And(isReq("GetM"), expr.Neq(sender, owner))).
			send(p.cacheNet, "F").
			kase(nil,
				eq("F.CType", cc("FwdGetM")),
				eq("F.Dest", owner),
				eq("F.Req", sender),
				eq("Req", sender)).
			done(),
		newSnip("d-putm-m-owner", "Dir", "M", "I", onMsg(p.reqNet)).
			guard(expr.And(isReq("PutM"), expr.Eq(sender, owner))).
			send(p.cacheNet, "R").
			kase(nil, putAckTo(sender)...).
			done(),
		newSnip("d-putm-m-stale", "Dir", "M", "M", onMsg(p.reqNet)).
			guard(expr.And(isReq("PutM"), expr.Neq(sender, owner))).
			send(p.cacheNet, "R").
			kase(nil, putAckTo(sender)...).
			done(),

		// Downgrade and ownership-transfer completion.
		newSnip("d-downack", "Dir", "B_S", "S", onMsg(p.ackNet)).
			guard(isAck("DownAck")).
			kase(nil, eq("Sharers", expr.SetAdd(expr.Singleton(req), owner))).
			done(),
		newSnip("d-bs-stall", "Dir", "B_S", "", onMsg(p.reqNet)).stall().done(),
		newSnip("d-ownack", "Dir", "B_O", "M", onMsg(p.ackNet)).
			guard(isAck("OwnAck")).
			kase(nil, eq("Owner", req)).
			done(),
		newSnip("d-bo-stall", "Dir", "B_O", "", onMsg(p.reqNet)).stall().done(),
	}
}

func msiInvariants(p *msiParts) []mc.Invariant {
	cache, dir := p.cache, p.dir
	invs := []mc.Invariant{
		// SWMR: M_I/S_I/I_I are stale-pending, never read, and may
		// overlap a new epoch (see the VI discussion).
		mc.SWMR(cache, []string{"M"}, []string{"S", "S_M"}),
		// Directory bookkeeping accuracy (the §2 anecdote's invariant
		// class): every stable sharer is tracked while the directory is
		// in S.
		dirAccuracy("dir-sharers-accuracy", dir, cache, "S", []string{"S", "S_M"},
			func(r *efsm.Runtime, st *efsm.State, dirIdx, cacheIdx int) bool {
				return r.VarOf(st, dirIdx, "Sharers").Set()&(1<<uint(r.Insts[cacheIdx].PID)) != 0
			}),
		dirAccuracy("dir-owner-accuracy", dir, cache, "M", []string{"M"},
			func(r *efsm.Runtime, st *efsm.State, dirIdx, cacheIdx int) bool {
				return r.VarOf(st, dirIdx, "Owner").PID() == r.Insts[cacheIdx].PID
			}),
	}
	// No cache holds M while the directory believes the line is unowned
	// or shared.
	invs = append(invs, mc.Predicate("no-M-under-unowned-dir",
		func(r *efsm.Runtime, st *efsm.State) (bool, string) {
			dirIdx := r.InstancesOf(dir)[0]
			dctl := r.CtlOf(st, dirIdx)
			if dctl != "I" && dctl != "S" && dctl != "B_M" {
				return true, ""
			}
			for _, idx := range r.InstancesOf(cache) {
				if r.CtlOf(st, idx) == "M" {
					return false, r.Insts[idx].Name() + " in M while directory in " + dctl
				}
			}
			return true, ""
		}))
	return invs
}
