package protocols

import (
	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
)

// VI builds the VI protocol — the simplest invalidation protocol from the
// GEMS suite (Table 4): a cache line is either Valid or Invalid, with a
// blocking directory that recalls the single valid copy on a conflicting
// request. The transcription is fully symbolic, mirroring how the paper
// validated throughput by transcribing GEMS protocols into symbolic
// snippets.
//
// Structure:
//   - Caches: I, I_V (awaiting data), V, V_I (awaiting eviction ack);
//     triggers Access (load/store — VI does not distinguish) and Evict.
//   - Directory: I, V (owned), B (recall in flight); Owner and Req.
//   - ReqNet (ordered, to directory): Get/Put requests.
//   - RespNet (ordered per cache): Data, Inv, PutAck.
//   - WbNet (ordered, to directory): writeback data for recalls.
func VI(numCaches int) *Spec {
	u := expr.NewUniverse(numCaches)
	reqT := u.MustDeclareEnum("VIReqType", "Get", "Put")
	respT := u.MustDeclareEnum("VIRespType", "Data", "Inv", "PutAck")

	cache := &efsm.ProcDef{
		Name:       "Cache",
		States:     u.MustDeclareEnum("VICacheState", "I", "I_V", "V", "V_I"),
		Init:       "I",
		Replicated: true,
		Triggers:   []string{"Access", "Evict"},
	}
	dir := &efsm.ProcDef{
		Name:   "Dir",
		States: u.MustDeclareEnum("VIDirState", "I", "V", "B"),
		Init:   "I",
		Vars: []*expr.Var{
			expr.V("Owner", expr.PIDType),
			expr.V("Req", expr.PIDType),
		},
	}

	reqNet := &efsm.Network{
		Name: "ReqNet", Kind: efsm.Ordered, Receiver: dir, Route: efsm.RouteStatic,
		Msg: &efsm.MessageType{Name: "VIReq", Fields: []efsm.Field{
			{Name: "MType", T: expr.EnumOf(reqT)},
			{Name: "Sender", T: expr.PIDType},
		}},
	}
	respNet := &efsm.Network{
		Name: "RespNet", Kind: efsm.Ordered, Receiver: cache, Route: efsm.RouteByField, DestField: "Dest",
		Msg: &efsm.MessageType{Name: "VIResp", Fields: []efsm.Field{
			{Name: "RType", T: expr.EnumOf(respT)},
			{Name: "Dest", T: expr.PIDType},
		}},
	}
	wbNet := &efsm.Network{
		Name: "WbNet", Kind: efsm.Ordered, Receiver: dir, Route: efsm.RouteStatic,
		Msg: &efsm.MessageType{Name: "VIWb", Fields: []efsm.Field{
			{Name: "Sender", T: expr.PIDType},
		}},
	}

	sys := &efsm.System{
		Name: "VI", U: u,
		Networks: []*efsm.Network{reqNet, respNet, wbNet},
		Defs:     []*efsm.ProcDef{dir, cache},
	}
	vocab := expr.CoherenceVocabulary(u, expr.CoherenceOptions{
		Enums:             []*expr.EnumType{reqT, respT},
		WithEnumConstants: true,
		WithoutEnumIte:    true,
	})

	self := selfVar()
	sender := field("Sender", expr.PIDType)
	mtype := field("MType", expr.EnumOf(reqT))
	rtype := field("RType", expr.EnumOf(respT))
	owner := expr.V("Owner", expr.PIDType)
	req := expr.V("Req", expr.PIDType)
	isReq := func(k string) expr.Expr { return expr.Eq(mtype, expr.EnumC(reqT, k)) }
	isResp := func(k string) expr.Expr { return expr.Eq(rtype, expr.EnumC(respT, k)) }

	snips := []*efsm.Snippet{
		// ---- cache ----
		newSnip("c-access", "Cache", "I", "I_V", onTrig("Access")).
			send(reqNet, "Out").
			kase(nil,
				eq("Out.MType", expr.EnumC(reqT, "Get")),
				eq("Out.Sender", self)).
			done(),
		newSnip("c-data", "Cache", "I_V", "V", onMsg(respNet)).
			guard(isResp("Data")).done(),
		newSnip("c-stale-ack-iv", "Cache", "I_V", "I_V", onMsg(respNet)).
			guard(isResp("PutAck")).done(),
		newSnip("c-evict", "Cache", "V", "V_I", onTrig("Evict")).
			send(reqNet, "Out").
			kase(nil,
				eq("Out.MType", expr.EnumC(reqT, "Put")),
				eq("Out.Sender", self)).
			done(),
		newSnip("c-recall-v", "Cache", "V", "I", onMsg(respNet)).
			guard(isResp("Inv")).
			send(wbNet, "Out").
			kase(nil, eq("Out.Sender", self)).
			done(),
		newSnip("c-recall-vi", "Cache", "V_I", "I", onMsg(respNet)).
			guard(isResp("Inv")).
			send(wbNet, "Out").
			kase(nil, eq("Out.Sender", self)).
			done(),
		newSnip("c-putack", "Cache", "V_I", "I", onMsg(respNet)).
			guard(isResp("PutAck")).done(),
		newSnip("c-stale-ack-i", "Cache", "I", "I", onMsg(respNet)).
			guard(isResp("PutAck")).done(),

		// ---- directory ----
		newSnip("d-get-i", "Dir", "I", "V", onMsg(reqNet)).
			guard(isReq("Get")).
			send(respNet, "R").
			kase(nil,
				eq("Owner", sender),
				eq("R.RType", expr.EnumC(respT, "Data")),
				eq("R.Dest", sender)).
			done(),
		newSnip("d-stale-put-i", "Dir", "I", "I", onMsg(reqNet)).
			guard(isReq("Put")).
			send(respNet, "R").
			kase(nil,
				eq("R.RType", expr.EnumC(respT, "PutAck")),
				eq("R.Dest", sender)).
			done(),
		newSnip("d-recall", "Dir", "V", "B", onMsg(reqNet)).
			guard(expr.And(isReq("Get"), expr.Neq(sender, owner))).
			send(respNet, "R").
			kase(nil,
				eq("Req", sender),
				eq("R.RType", expr.EnumC(respT, "Inv")),
				eq("R.Dest", owner)).
			done(),
		newSnip("d-put-owner", "Dir", "V", "I", onMsg(reqNet)).
			guard(expr.And(isReq("Put"), expr.Eq(sender, owner))).
			send(respNet, "R").
			kase(nil,
				eq("R.RType", expr.EnumC(respT, "PutAck")),
				eq("R.Dest", sender)).
			done(),
		newSnip("d-put-stale", "Dir", "V", "V", onMsg(reqNet)).
			guard(expr.And(isReq("Put"), expr.Neq(sender, owner))).
			send(respNet, "R").
			kase(nil,
				eq("R.RType", expr.EnumC(respT, "PutAck")),
				eq("R.Dest", sender)).
			done(),
		newSnip("d-wb", "Dir", "B", "V", onMsg(wbNet)).
			send(respNet, "R").
			kase(nil,
				eq("Owner", req),
				eq("R.RType", expr.EnumC(respT, "Data")),
				eq("R.Dest", req)).
			done(),
		newSnip("d-busy-stall", "Dir", "B", "", onMsg(reqNet)).stall().done(),
	}

	spec := &Spec{
		Name: "VI", Sys: sys, Vocab: vocab, Snippets: snips,
		Cache: cache, Dir: dir,
	}
	// V_I is excluded from the mutual-exclusion set: a cache whose Put has
	// already been processed lingers in V_I (stale, never read) until its
	// PutAck arrives, legitimately overlapping a fresh owner. The blocking
	// directory guarantees a current copy (V) is exclusive.
	spec.Invariants = []mc.Invariant{
		mc.AtMostOne(cache, "V"),
		dirAccuracy("dir-owner-accuracy", dir, cache, "V", []string{"V"},
			func(r *efsm.Runtime, st *efsm.State, dirIdx, cacheIdx int) bool {
				return r.VarOf(st, dirIdx, "Owner").PID() == r.Insts[cacheIdx].PID
			}),
	}
	return spec
}
