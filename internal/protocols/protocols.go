// Package protocols contains the cache-coherence protocols used in the
// paper's evaluation, expressed as TRANSIT snippet programs over efsm
// skeletons: VI and MSI (the GEMS transcriptions of Table 4), the
// MSI→MESI extension of case study B, and the Origin-style protocol of
// case study C with the §2 Sharers anecdote. Each Spec bundles the
// skeleton, the vocabulary, the snippets, and the coherence invariants the
// model checker enforces.
package protocols

import (
	"fmt"

	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
)

// Spec is a complete protocol specification ready for synthesis: feed
// Snippets through core.Complete over Sys, then model check with
// Invariants.
type Spec struct {
	Name       string
	Sys        *efsm.System
	Vocab      *expr.Vocabulary
	Snippets   []*efsm.Snippet
	Invariants []mc.Invariant

	// Cache and Dir expose the two process definitions for invariants and
	// tests.
	Cache *efsm.ProcDef
	Dir   *efsm.ProcDef
}

// snip is a fluent snippet builder used by the protocol constructors; it
// keeps the transcriptions close to the paper's Figure 4 shape.
type snip struct {
	s *efsm.Snippet
}

func newSnip(label, process, from, to string, ev efsm.Event) *snip {
	return &snip{s: &efsm.Snippet{
		Label: label, Process: process, From: from, To: to, Event: ev,
	}}
}

// onMsg builds a message event.
func onMsg(net *efsm.Network) efsm.Event { return efsm.Event{Net: net, MsgVar: "Msg"} }

// onTrig builds a trigger event.
func onTrig(name string) efsm.Event { return efsm.Event{Trigger: name} }

func (b *snip) guard(g expr.Expr) *snip { b.s.Guard = g; return b }

func (b *snip) send(net *efsm.Network, msgVar string) *snip {
	b.s.Sends = append(b.s.Sends, efsm.SendSpec{Net: net, MsgVar: msgVar})
	return b
}

func (b *snip) multicast(net *efsm.Network, msgVar string, targets expr.Expr) *snip {
	b.s.Sends = append(b.s.Sends, efsm.SendSpec{Net: net, MsgVar: msgVar, TargetSet: targets})
	return b
}

// kase adds a guard-action case; pre may be nil (true).
func (b *snip) kase(pre expr.Expr, posts ...efsm.Post) *snip {
	b.s.Cases = append(b.s.Cases, efsm.SnippetCase{Pre: pre, Posts: posts})
	return b
}

// stall marks the snippet as a defer rule.
func (b *snip) stall() *snip { b.s.Defer = true; return b }

func (b *snip) done() *efsm.Snippet { return b.s }

// eq is the symbolic-action post Target' = rhs.
func eq(target string, rhs expr.Expr) efsm.Post { return efsm.EqPost(target, rhs) }

// field references a received-message field ("Msg.<name>").
func field(name string, t expr.Type) *expr.Var { return expr.V("Msg."+name, t) }

// selfVar is the implicit instance identity.
func selfVar() *expr.Var { return expr.V(efsm.SelfVar, expr.PIDType) }

// dirAccuracy asserts that whenever the directory is in dirState, every
// cache instance occupying one of cacheStates is tracked by the tracker
// predicate (e.g. membership in Sharers, equality with Owner).
func dirAccuracy(name string, dir, cache *efsm.ProcDef, dirState string, cacheStates []string,
	tracked func(r *efsm.Runtime, st *efsm.State, dirIdx, cacheIdx int) bool) mc.Invariant {
	inSet := map[string]bool{}
	for _, s := range cacheStates {
		inSet[s] = true
	}
	return mc.Predicate(name, func(r *efsm.Runtime, st *efsm.State) (bool, string) {
		dirIdx := r.InstancesOf(dir)[0]
		if r.CtlOf(st, dirIdx) != dirState {
			return true, ""
		}
		for _, idx := range r.InstancesOf(cache) {
			if inSet[r.CtlOf(st, idx)] && !tracked(r, st, dirIdx, idx) {
				return false, fmt.Sprintf("directory in %s does not track %s (in %s)",
					dirState, r.Insts[idx].Name(), r.CtlOf(st, idx))
			}
		}
		return true, ""
	})
}
