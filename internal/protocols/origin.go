package protocols

import (
	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
)

// Origin builds the SGI-Origin-style protocol of case study C (§6.3): a
// directory MESI protocol with speculative replies, transcribed from the
// Laudon–Lenoski flow descriptions. Directory state names follow the
// paper's anecdote (UNOWN/SHRD/EXCL/BUSY_SHARED/BUSY_EXCL/BUSY_INV).
//
// The central flow is the §2 anecdote: on a READ to an EXCLUSIVE
// directory, the directory moves to BUSY_SHARED, sends an intervention
// (ISHARED) to the previous owner and a speculative reply (SREPLY) to the
// requester, and must update Sharers. The published prose only says the
// new Sharers "needs to contain at least the sender in addition to the
// old value", which the snippet expresses as a superset constraint; the
// minimal consistent expression is setadd(Sharers, Msg.Sender), which
// drops the previous owner — the Figure 2 coherence violation. With
// fixed=true the concrete bug-fix snippet (the counterexample scenario
// pinned to concrete values) is added, and synthesis produces
// setadd(setadd(Sharers, Msg.Sender), Owner).
//
// Per §6.3's methodology, most guards are left empty and inferred from
// preconditions; guards whose inferred form would be artificially large
// (the sharer-set emptiness splits) are specified symbolically, exactly as
// the paper's programmers did.
func Origin(numCaches int, fixed bool) *Spec {
	p := originSkeleton(numCaches)
	spec := &Spec{
		Name: "Origin", Sys: originSystem(p), Vocab: originVocab(p),
		Cache: p.cache, Dir: p.dir,
	}
	spec.Snippets = originSnippets(p, fixed)
	spec.Invariants = originInvariants(p)
	return spec
}

type originParts struct {
	msiParts
}

func originSkeleton(numCaches int) *originParts {
	u := expr.NewUniverse(numCaches)
	reqT := u.MustDeclareEnum("OReqType", "READ", "READEX", "PUTX")
	cacheT := u.MustDeclareEnum("OCacheMsg",
		"SREPLY", "SPEC", "EREPLY", "ISHARED", "IEXCL", "INVAL", "WBACK", "SACK", "XFER")
	ackT := u.MustDeclareEnum("OAckType", "SWB", "OWB", "IACK")

	cache := &efsm.ProcDef{
		Name: "Cache",
		States: u.MustDeclareEnum("OCacheState",
			"I", "I_S", "I_SW", "I_IW", "I_M", "S", "S_M", "M", "E", "M_I", "S_I", "I_I"),
		Init:       "I",
		Replicated: true,
		Triggers:   []string{"Load", "Store", "Evict"},
	}
	dir := &efsm.ProcDef{
		Name: "Dir",
		States: u.MustDeclareEnum("ODirState",
			"UNOWN", "SHRD", "EXCL", "BUSY_SHARED", "BUSY_EXCL", "BUSY_INV"),
		Init: "UNOWN",
		Vars: []*expr.Var{
			expr.V("Owner", expr.PIDType),
			expr.V("Sharers", expr.SetType),
			expr.V("Req", expr.PIDType),
			expr.V("AckCnt", expr.IntType),
		},
	}

	reqNet := &efsm.Network{
		Name: "ReqNet", Kind: efsm.Ordered, Receiver: dir, Route: efsm.RouteStatic,
		Msg: &efsm.MessageType{Name: "OReq", Fields: []efsm.Field{
			{Name: "MType", T: expr.EnumOf(reqT)},
			{Name: "Sender", T: expr.PIDType},
		}},
	}
	cacheNet := &efsm.Network{
		Name: "CacheNet", Kind: efsm.Ordered, Receiver: cache, Route: efsm.RouteByField, DestField: "Dest",
		Msg: &efsm.MessageType{Name: "OCacheM", Fields: []efsm.Field{
			{Name: "CType", T: expr.EnumOf(cacheT)},
			{Name: "Dest", T: expr.PIDType},
			{Name: "Req", T: expr.PIDType},
		}},
	}
	ackNet := &efsm.Network{
		Name: "AckNet", Kind: efsm.Unordered, Receiver: dir, Route: efsm.RouteStatic,
		Msg: &efsm.MessageType{Name: "OAck", Fields: []efsm.Field{
			{Name: "AType", T: expr.EnumOf(ackT)},
			{Name: "Sender", T: expr.PIDType},
		}},
	}
	return &originParts{msiParts: msiParts{
		u: u, reqT: reqT, cacheT: cacheT, ackT: ackT,
		cache: cache, dir: dir, reqNet: reqNet, cacheNet: cacheNet, ackNet: ackNet,
	}}
}

func originSystem(p *originParts) *efsm.System {
	return &efsm.System{
		Name: "Origin", U: p.u,
		Networks: []*efsm.Network{p.reqNet, p.cacheNet, p.ackNet},
		Defs:     []*efsm.ProcDef{p.dir, p.cache},
	}
}

func originVocab(p *originParts) *expr.Vocabulary {
	return expr.CoherenceVocabulary(p.u, expr.CoherenceOptions{
		Enums:             p.u.Enums(),
		WithEnumConstants: true,
		WithSetLiterals:   true,
		WithoutEnumIte:    true,
	})
}

// originReadToExclusive is the anecdote snippet: the flow description
// mapped to a symbolic snippet with the Sharers update left as a superset
// constraint ("at least the sender in addition to the old value").
func originReadToExclusive(p *originParts) *efsm.Snippet {
	sender := field("Sender", expr.PIDType)
	mtype := field("MType", expr.EnumOf(p.reqT))
	owner := expr.V("Owner", expr.PIDType)
	sharers := expr.V("Sharers", expr.SetType)
	sharersP := expr.V(efsm.Prime("Sharers"), expr.SetType)
	cc := func(k string) expr.Expr { return expr.EnumC(p.cacheT, k) }
	pre := expr.And(
		expr.Eq(mtype, expr.EnumC(p.reqT, "READ")),
		expr.Neq(sender, owner))
	return newSnip("d-read-excl", "Dir", "EXCL", "BUSY_SHARED", onMsg(p.reqNet)).
		send(p.cacheNet, "IMsg").send(p.cacheNet, "RMsg").
		kase(pre,
			eq("IMsg.CType", cc("ISHARED")),
			eq("IMsg.Dest", owner),
			eq("IMsg.Req", sender),
			eq("RMsg.CType", cc("SPEC")),
			eq("RMsg.Dest", sender),
			eq("RMsg.Req", sender),
			eq("Owner", sender),
			eq("Req", sender),
			// Underspecified: Sharers' ⊇ Sharers ∪ {Msg.Sender}.
			efsm.Post{Target: "Sharers",
				Constraint: expr.SubsetEq(expr.SetAdd(sharers, sender), sharersP)},
		).
		done()
}

// originReadToExclusiveFix is the concrete snippet the programmer adds
// after inspecting the Figure 2 trace: the same transition with the
// counterexample scenario pinned to concrete values and the desired
// Sharers outcome stated exactly.
func originReadToExclusiveFix(p *originParts) *efsm.Snippet {
	sender := field("Sender", expr.PIDType)
	mtype := field("MType", expr.EnumOf(p.reqT))
	owner := expr.V("Owner", expr.PIDType)
	sharers := expr.V("Sharers", expr.SetType)
	sharersP := expr.V(efsm.Prime("Sharers"), expr.SetType)
	pre := expr.And(
		expr.Eq(mtype, expr.EnumC(p.reqT, "READ")),
		expr.Eq(owner, expr.PIDC(0)),
		expr.Eq(sender, expr.PIDC(1)),
		expr.Eq(sharers, expr.NewConst(expr.SetVal(0))))
	return newSnip("d-read-excl-fix", "Dir", "EXCL", "BUSY_SHARED", onMsg(p.reqNet)).
		send(p.cacheNet, "IMsg").send(p.cacheNet, "RMsg").
		kase(pre,
			efsm.Post{Target: "Sharers",
				Constraint: expr.Eq(sharersP, expr.SetC(0, 1))},
		).
		done()
}

func originSnippets(p *originParts, fixed bool) []*efsm.Snippet {
	self := selfVar()
	sender := field("Sender", expr.PIDType)
	mtype := field("MType", expr.EnumOf(p.reqT))
	ctype := field("CType", expr.EnumOf(p.cacheT))
	atype := field("AType", expr.EnumOf(p.ackT))
	owner := expr.V("Owner", expr.PIDType)
	sharers := expr.V("Sharers", expr.SetType)
	req := expr.V("Req", expr.PIDType)
	ackCnt := expr.V("AckCnt", expr.IntType)
	isReq := func(k string) expr.Expr { return expr.Eq(mtype, expr.EnumC(p.reqT, k)) }
	isC := func(k string) expr.Expr { return expr.Eq(ctype, expr.EnumC(p.cacheT, k)) }
	isAck := func(k string) expr.Expr { return expr.Eq(atype, expr.EnumC(p.ackT, k)) }
	cc := func(k string) expr.Expr { return expr.EnumC(p.cacheT, k) }
	ackC := func(k string) expr.Expr { return expr.EnumC(p.ackT, k) }
	empty := expr.NewConst(expr.SetVal(0))
	othersOf := func(e expr.Expr) expr.Expr { return expr.SetMinus(sharers, expr.Singleton(e)) }

	sendReq := func(kind string) []efsm.Post {
		return []efsm.Post{
			eq("Out.MType", expr.EnumC(p.reqT, kind)),
			eq("Out.Sender", self),
		}
	}
	ackTo := func(kind string) []efsm.Post {
		return []efsm.Post{
			eq("Ack.AType", ackC(kind)),
			eq("Ack.Sender", self),
		}
	}
	mreq := field("Req", expr.PIDType)
	withSack := func(posts []efsm.Post) []efsm.Post {
		return append(posts,
			eq("SA.CType", cc("SACK")),
			eq("SA.Dest", mreq),
			eq("SA.Req", mreq))
	}
	withXfer := func(posts []efsm.Post) []efsm.Post {
		return append(posts,
			eq("XF.CType", cc("XFER")),
			eq("XF.Dest", mreq),
			eq("XF.Req", mreq))
	}
	replyTo := func(msgVar, kind string, dest expr.Expr) []efsm.Post {
		return []efsm.Post{
			eq(msgVar+".CType", cc(kind)),
			eq(msgVar+".Dest", dest),
			eq(msgVar+".Req", dest),
		}
	}

	snips := []*efsm.Snippet{
		// ---- cache: requests (guards trivially inferred from triggers).
		newSnip("c-load", "Cache", "I", "I_S", onTrig("Load")).
			send(p.reqNet, "Out").kase(nil, sendReq("READ")...).done(),
		newSnip("c-store", "Cache", "I", "I_M", onTrig("Store")).
			send(p.reqNet, "Out").kase(nil, sendReq("READEX")...).done(),
		newSnip("c-upgrade", "Cache", "S", "S_M", onTrig("Store")).
			send(p.reqNet, "Out").kase(nil, sendReq("READEX")...).done(),
		newSnip("c-evict-s", "Cache", "S", "I", onTrig("Evict")).done(),
		newSnip("c-evict-m", "Cache", "M", "M_I", onTrig("Evict")).
			send(p.reqNet, "Out").kase(nil, sendReq("PUTX")...).done(),
		newSnip("c-evict-e", "Cache", "E", "M_I", onTrig("Evict")).
			send(p.reqNet, "Out").kase(nil, sendReq("PUTX")...).done(),
		newSnip("c-silent-upgrade", "Cache", "E", "M", onTrig("Store")).done(),

		// ---- cache: replies (guards inferred).
		// A SREPLY from a SHRD directory is current data: the load
		// completes at once. A SPEC reply from an EXCL directory is
		// speculative and is buffered until the previous owner's sharing
		// acknowledgement (SACK) confirms the downgrade — Origin's
		// revision-message discipline.
		newSnip("c-sreply", "Cache", "I_S", "S", onMsg(p.cacheNet)).
			kase(isC("SREPLY")).done(),
		newSnip("c-spec", "Cache", "I_S", "I_SW", onMsg(p.cacheNet)).
			kase(isC("SPEC")).done(),
		newSnip("c-sack", "Cache", "I_SW", "S", onMsg(p.cacheNet)).
			kase(isC("SACK")).done(),
		newSnip("c-inval-isw", "Cache", "I_SW", "I_IW", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("INVAL"), ackTo("IACK")...).done(),
		newSnip("c-sack-iiw", "Cache", "I_IW", "I", onMsg(p.cacheNet)).
			guard(isC("SACK")).done(),
		newSnip("c-ereply-is", "Cache", "I_S", "E", onMsg(p.cacheNet)).
			kase(isC("EREPLY")).done(),
		newSnip("c-ereply-im", "Cache", "I_M", "M", onMsg(p.cacheNet)).
			kase(isC("EREPLY")).done(),
		newSnip("c-ereply-sm", "Cache", "S_M", "M", onMsg(p.cacheNet)).
			kase(isC("EREPLY")).done(),
		newSnip("c-xfer-im", "Cache", "I_M", "M", onMsg(p.cacheNet)).
			kase(isC("XFER")).done(),
		newSnip("c-xfer-sm", "Cache", "S_M", "M", onMsg(p.cacheNet)).
			kase(isC("XFER")).done(),

		// ---- cache: interventions and invalidations.
		newSnip("c-ishared-m", "Cache", "M", "S", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").send(p.cacheNet, "SA").
			kase(isC("ISHARED"), withSack(ackTo("SWB"))...).done(),
		newSnip("c-ishared-e", "Cache", "E", "S", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").send(p.cacheNet, "SA").
			kase(isC("ISHARED"), withSack(ackTo("SWB"))...).done(),
		newSnip("c-ishared-mi", "Cache", "M_I", "S_I", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").send(p.cacheNet, "SA").
			kase(isC("ISHARED"), withSack(ackTo("SWB"))...).done(),
		newSnip("c-iexcl-m", "Cache", "M", "I", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").send(p.cacheNet, "XF").
			kase(isC("IEXCL"), withXfer(ackTo("OWB"))...).done(),
		newSnip("c-iexcl-e", "Cache", "E", "I", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").send(p.cacheNet, "XF").
			kase(isC("IEXCL"), withXfer(ackTo("OWB"))...).done(),
		newSnip("c-iexcl-mi", "Cache", "M_I", "I_I", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").send(p.cacheNet, "XF").
			kase(isC("IEXCL"), withXfer(ackTo("OWB"))...).done(),
		newSnip("c-inval-s", "Cache", "S", "I", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("INVAL"), ackTo("IACK")...).done(),
		newSnip("c-inval-sm", "Cache", "S_M", "I_M", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("INVAL"), ackTo("IACK")...).done(),
		newSnip("c-inval-si", "Cache", "S_I", "I_I", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("INVAL"), ackTo("IACK")...).done(),
		newSnip("c-inval-i", "Cache", "I", "I", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("INVAL"), ackTo("IACK")...).done(),
		newSnip("c-inval-is", "Cache", "I_S", "I_S", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("INVAL"), ackTo("IACK")...).done(),
		newSnip("c-inval-im", "Cache", "I_M", "I_M", onMsg(p.cacheNet)).
			send(p.ackNet, "Ack").kase(isC("INVAL"), ackTo("IACK")...).done(),

		// ---- cache: writeback acks.
		newSnip("c-wback-mi", "Cache", "M_I", "I", onMsg(p.cacheNet)).
			kase(isC("WBACK")).done(),
		newSnip("c-wback-si", "Cache", "S_I", "I", onMsg(p.cacheNet)).
			kase(isC("WBACK")).done(),
		newSnip("c-wback-ii", "Cache", "I_I", "I", onMsg(p.cacheNet)).
			guard(isC("WBACK")).done(),
		newSnip("c-wback-i", "Cache", "I", "I", onMsg(p.cacheNet)).
			kase(isC("WBACK")).done(),

		// ---- directory: unowned.
		newSnip("d-read-unown", "Dir", "UNOWN", "EXCL", onMsg(p.reqNet)).
			send(p.cacheNet, "R").
			kase(isReq("READ"), append(replyTo("R", "EREPLY", sender),
				eq("Owner", sender))...).
			done(),
		newSnip("d-readex-unown", "Dir", "UNOWN", "EXCL", onMsg(p.reqNet)).
			send(p.cacheNet, "E").
			kase(isReq("READEX"), append(replyTo("E", "EREPLY", sender),
				eq("Owner", sender))...).
			done(),
		newSnip("d-putx-unown", "Dir", "UNOWN", "UNOWN", onMsg(p.reqNet)).
			send(p.cacheNet, "W").
			kase(isReq("PUTX"), replyTo("W", "WBACK", sender)...).
			done(),

		// ---- directory: shared. The sharer-emptiness splits carry
		// symbolic guards, per §6.3 ("we specified the guards in
		// instances where ... prevented the tool from exploring
		// artificially large expressions").
		newSnip("d-read-shrd", "Dir", "SHRD", "SHRD", onMsg(p.reqNet)).
			guard(isReq("READ")).
			send(p.cacheNet, "R").
			kase(nil, append(replyTo("R", "SREPLY", sender),
				eq("Sharers", expr.SetAdd(sharers, sender)))...).
			done(),
		newSnip("d-readex-shrd-solo", "Dir", "SHRD", "EXCL", onMsg(p.reqNet)).
			guard(expr.And(isReq("READEX"), expr.Eq(othersOf(sender), empty))).
			send(p.cacheNet, "R").
			kase(nil, append(replyTo("R", "EREPLY", sender),
				eq("Owner", sender),
				eq("Sharers", empty))...).
			done(),
		newSnip("d-readex-shrd-inv", "Dir", "SHRD", "BUSY_INV", onMsg(p.reqNet)).
			guard(expr.And(isReq("READEX"), expr.Neq(othersOf(sender), empty))).
			multicast(p.cacheNet, "Inv", othersOf(sender)).
			kase(nil,
				eq("Inv.CType", cc("INVAL")),
				eq("Inv.Req", sender),
				eq("AckCnt", expr.Card(othersOf(sender))),
				eq("Req", sender)).
			done(),
		newSnip("d-putx-shrd", "Dir", "SHRD", "SHRD", onMsg(p.reqNet)).
			guard(isReq("PUTX")).
			send(p.cacheNet, "W").
			kase(nil, append(replyTo("W", "WBACK", sender),
				eq("Sharers", othersOf(sender)))...).
			done(),

		// ---- directory: invalidation collection.
		newSnip("d-iack-more", "Dir", "BUSY_INV", "BUSY_INV", onMsg(p.ackNet)).
			guard(expr.And(isAck("IACK"), expr.Gt(ackCnt, expr.IntC(p.u, 1)))).
			kase(nil, eq("AckCnt", expr.Dec(ackCnt))).
			done(),
		newSnip("d-iack-last", "Dir", "BUSY_INV", "EXCL", onMsg(p.ackNet)).
			guard(expr.And(isAck("IACK"), expr.Eq(ackCnt, expr.IntC(p.u, 1)))).
			send(p.cacheNet, "R").
			kase(nil, append(replyTo("R", "EREPLY", req),
				eq("Owner", req),
				eq("Sharers", empty),
				eq("AckCnt", expr.IntC(p.u, 0)))...).
			done(),
		newSnip("d-businv-stall", "Dir", "BUSY_INV", "", onMsg(p.reqNet)).stall().done(),

		// ---- directory: exclusive. The anecdote transition plus the
		// rest of the flows.
		originReadToExclusive(p),
		// No speculative reply on the exclusive path: the new owner's
		// data comes from the old owner's transfer message (XFER).
		newSnip("d-readex-excl", "Dir", "EXCL", "BUSY_EXCL", onMsg(p.reqNet)).
			send(p.cacheNet, "IMsg").
			kase(expr.And(isReq("READEX"), expr.Neq(sender, owner)),
				eq("IMsg.CType", cc("IEXCL")),
				eq("IMsg.Dest", owner),
				eq("IMsg.Req", sender),
				eq("Owner", sender),
				eq("Req", sender)).
			done(),
		newSnip("d-putx-excl-owner", "Dir", "EXCL", "UNOWN", onMsg(p.reqNet)).
			send(p.cacheNet, "W").
			kase(expr.And(isReq("PUTX"), expr.Eq(sender, owner)),
				replyTo("W", "WBACK", sender)...).
			done(),
		newSnip("d-putx-excl-stale", "Dir", "EXCL", "EXCL", onMsg(p.reqNet)).
			send(p.cacheNet, "X").
			kase(expr.And(isReq("PUTX"), expr.Neq(sender, owner)),
				eq("X.CType", cc("WBACK")),
				eq("X.Dest", sender),
				eq("X.Req", sender)).
			done(),

		// ---- directory: busy completions.
		newSnip("d-swb", "Dir", "BUSY_SHARED", "SHRD", onMsg(p.ackNet)).
			guard(isAck("SWB")).done(),
		newSnip("d-bshared-stall", "Dir", "BUSY_SHARED", "", onMsg(p.reqNet)).stall().done(),
		newSnip("d-owb", "Dir", "BUSY_EXCL", "EXCL", onMsg(p.ackNet)).
			guard(isAck("OWB")).done(),
		newSnip("d-bexcl-stall", "Dir", "BUSY_EXCL", "", onMsg(p.reqNet)).stall().done(),
	}
	if fixed {
		snips = append(snips, originReadToExclusiveFix(p))
	}
	return snips
}

func originInvariants(p *originParts) []mc.Invariant {
	cache, dir := p.cache, p.dir
	return []mc.Invariant{
		mc.SWMR(cache, []string{"M", "E"}, []string{"S", "S_M"}),
		// The anecdote's violation class: the directory's sharer list
		// must cover every stable shared copy.
		dirAccuracy("dir-sharers-accuracy", dir, cache, "SHRD", []string{"S", "S_M"},
			func(r *efsm.Runtime, st *efsm.State, dirIdx, cacheIdx int) bool {
				return r.VarOf(st, dirIdx, "Sharers").Set()&(1<<uint(r.Insts[cacheIdx].PID)) != 0
			}),
		dirAccuracy("dir-owner-accuracy", dir, cache, "EXCL", []string{"M", "E"},
			func(r *efsm.Runtime, st *efsm.State, dirIdx, cacheIdx int) bool {
				return r.VarOf(st, dirIdx, "Owner").PID() == r.Insts[cacheIdx].PID
			}),
	}
}
