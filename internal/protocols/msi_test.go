package protocols

import (
	"testing"

	"transit/internal/mc"
)

func TestMSISynthesizesAndVerifies(t *testing.T) {
	for _, n := range []int{2, 3} {
		spec := MSI(n)
		rep, res := synthesizeAndCheck(t, spec, mc.Options{MaxStates: 2_000_000, CheckDeadlock: true})
		if !res.OK {
			t.Fatalf("MSI(%d) violation:\n%v", n, res.Violation)
		}
		if !res.Complete {
			t.Fatalf("MSI(%d) exploration incomplete", n)
		}
		t.Logf("MSI(%d): %d snippets, %d transitions, %d updates, %d guards synth, %d/%d exprs tried, %d states",
			n, rep.Snippets, rep.Transitions, rep.UpdatesSynthesized, rep.GuardsSynthesized,
			rep.UpdateExprsTried, rep.GuardExprsTried, res.States)
	}
}
