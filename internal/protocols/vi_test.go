package protocols

import (
	"testing"

	"transit/internal/core"
	"transit/internal/efsm"
	"transit/internal/mc"
	"transit/internal/synth"
)

// synthesizeAndCheck runs the full pipeline on a spec: complete the
// skeleton from snippets, then model check the result.
func synthesizeAndCheck(t *testing.T, spec *Spec, mcOpts mc.Options) (*core.Report, *mc.Result) {
	t.Helper()
	rep, err := core.Complete(spec.Sys, spec.Vocab, spec.Snippets,
		core.Options{Limits: synth.Limits{MaxSize: 12}})
	if err != nil {
		t.Fatalf("%s: synthesis: %v", spec.Name, err)
	}
	rt, err := efsm.NewRuntime(spec.Sys)
	if err != nil {
		t.Fatalf("%s: runtime: %v", spec.Name, err)
	}
	res, err := mc.Check(rt, spec.Invariants, mcOpts)
	if err != nil {
		t.Fatalf("%s: model check: %v", spec.Name, err)
	}
	return rep, res
}

func TestVISynthesizesAndVerifies(t *testing.T) {
	for _, n := range []int{2, 3} {
		spec := VI(n)
		rep, res := synthesizeAndCheck(t, spec, mc.Options{MaxStates: 500_000, CheckDeadlock: true})
		if !res.OK {
			t.Fatalf("VI(%d) violation:\n%v", n, res.Violation)
		}
		if !res.Complete {
			t.Fatalf("VI(%d) exploration incomplete", n)
		}
		t.Logf("VI(%d): %d snippets, %d transitions, %d updates, %d guards synth, %d exprs tried, %d states",
			n, rep.Snippets, rep.Transitions, rep.UpdatesSynthesized, rep.GuardsSynthesized,
			rep.UpdateExprsTried+rep.GuardExprsTried, res.States)
	}
}
