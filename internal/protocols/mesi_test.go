package protocols

import (
	"testing"

	"transit/internal/mc"
)

func TestMESISynthesizesAndVerifies(t *testing.T) {
	for _, n := range []int{2, 3} {
		spec := MESI(n)
		rep, res := synthesizeAndCheck(t, spec, mc.Options{MaxStates: 2_000_000, CheckDeadlock: true})
		if !res.OK {
			t.Fatalf("MESI(%d) violation:\n%v", n, res.Violation)
		}
		if !res.Complete {
			t.Fatalf("MESI(%d) exploration incomplete", n)
		}
		t.Logf("MESI(%d): %d snippets, %d transitions, %d updates, %d guards synth, %d states",
			n, rep.Snippets, rep.Transitions, rep.UpdatesSynthesized, rep.GuardsSynthesized, res.States)
	}
}
