package protocols

import (
	"strings"
	"testing"

	"transit/internal/core"
	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
	"transit/internal/synth"
)

// TestOriginAnecdoteEndToEnd replays §2 at full pipeline scale: the
// underspecified transcription synthesizes the buggy Sharers update and
// the model checker produces the Figure 2 violation; adding the concrete
// fix yields a verified protocol with the corrected update.
func TestOriginAnecdoteEndToEnd(t *testing.T) {
	// Buggy variant.
	buggy := Origin(2, false)
	rep, err := core.Complete(buggy.Sys, buggy.Vocab, buggy.Snippets,
		core.Options{Limits: synth.Limits{MaxSize: 12}})
	if err != nil {
		t.Fatalf("buggy synthesis: %v", err)
	}
	_ = rep
	if got := originSharersUpdate(t, buggy); !strings.Contains(got, "setadd(Sharers, Msg.Sender)") {
		t.Fatalf("buggy update = %s, want Sharers ∪ {Msg.Sender}", got)
	}
	rt, err := efsm.NewRuntime(buggy.Sys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.Check(rt, buggy.Invariants, mc.Options{MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Violation == nil {
		t.Fatal("buggy Origin must violate an invariant")
	}
	if res.Violation.Name != "dir-sharers-accuracy" && res.Violation.Name != "SWMR" {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	t.Logf("buggy Origin violation (%s) after %d states:\n%v",
		res.Violation.Name, res.States, res.Violation)

	// Fixed variant.
	fixed := Origin(2, true)
	rep2, res2 := synthesizeAndCheck(t, fixed, mc.Options{MaxStates: 2_000_000, CheckDeadlock: true})
	if !res2.OK {
		t.Fatalf("fixed Origin violation:\n%v", res2.Violation)
	}
	got := originSharersUpdate(t, fixed)
	if !strings.Contains(got, "Owner") || !strings.Contains(got, "Msg.Sender") {
		t.Fatalf("fixed update = %s, want Sharers ∪ {Msg.Sender, Owner}", got)
	}
	t.Logf("fixed Origin: update %s, %d transitions, %d states", got, rep2.Transitions, res2.States)
}

// originSharersUpdate extracts the synthesized Sharers update of the
// EXCL + READ transition.
func originSharersUpdate(t *testing.T, spec *Spec) string {
	t.Helper()
	for _, tr := range spec.Dir.Transitions {
		if tr.From != "EXCL" || tr.To != "BUSY_SHARED" {
			continue
		}
		for _, up := range tr.Updates {
			if up.Var == "Sharers" {
				return up.Rhs.String()
			}
		}
	}
	t.Fatal("no EXCL->BUSY_SHARED Sharers update found")
	return ""
}

func TestOriginFixedVerifiesAtThreeCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("3-cache Origin exploration in long mode only")
	}
	spec := Origin(3, true)
	rep, res := synthesizeAndCheck(t, spec, mc.Options{MaxStates: 4_000_000, CheckDeadlock: true})
	if !res.OK {
		t.Fatalf("Origin(3) violation:\n%v", res.Violation)
	}
	t.Logf("Origin(3): %d snippets, %d transitions, %d states", rep.Snippets, rep.Transitions, res.States)
}

var _ = expr.True // keep expr import if unused in edits
