package protocols

import (
	"fmt"

	"transit/internal/core"
	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
	"transit/internal/synth"
)

// The three case studies of §6, scripted for mechanical replay: each
// starts from the snippets a programmer would transcribe from the source
// description, synthesizes, model checks, and applies one corrective
// batch per failed iteration — regenerating the Table 5 workflow metrics.

// snippetsByLabel indexes a snippet list.
func snippetsByLabel(snips []*efsm.Snippet) map[string]*efsm.Snippet {
	m := make(map[string]*efsm.Snippet, len(snips))
	for _, sn := range snips {
		m[sn.Label] = sn
	}
	return m
}

func pick(m map[string]*efsm.Snippet, labels ...string) []*efsm.Snippet {
	out := make([]*efsm.Snippet, 0, len(labels))
	for _, l := range labels {
		sn, ok := m[l]
		if !ok {
			panic(fmt.Sprintf("protocols: no snippet labelled %s", l))
		}
		out = append(out, sn)
	}
	return out
}

func fixedBuild(sys *efsm.System, vocab *expr.Vocabulary, invs []mc.Invariant) func() (*efsm.System, *expr.Vocabulary, []mc.Invariant, error) {
	return func() (*efsm.System, *expr.Vocabulary, []mc.Invariant, error) {
		return sys, vocab, invs, nil
	}
}

// CaseStudyA is §6.1: the MSI protocol developed iteratively. The initial
// transcription covers the request/response flows the text spells out;
// the stale-message and race handlers that the text leaves implicit are
// added as corrective batches when the model checker trips over them.
func CaseStudyA(numCaches int) core.CaseStudy {
	p := msiSkeleton(numCaches)
	byLabel := snippetsByLabel(msiSnippets(p))
	initial := pick(byLabel,
		"c-load", "c-store", "c-upgrade", "c-evict-s", "c-evict-m",
		"c-data-is", "c-data-im", "c-data-sm",
		"c-inv-s", "c-fwdgets-m", "c-fwdgetm-m", "c-putack-mi",
		"d-gets-i", "d-getm-i", "d-gets-s", "d-getm-s-solo", "d-getm-s-inv",
		"d-invack-more", "d-invack-last", "d-bm-stall",
		"d-gets-m", "d-getm-m", "d-putm-m-owner",
		"d-downack", "d-bs-stall", "d-ownack", "d-bo-stall",
	)
	fixes := []core.FixBatch{
		{Label: "invalidation during upgrade (S_M)", Snippets: pick(byLabel, "c-inv-sm")},
		{Label: "stale invalidations after silent eviction", Snippets: pick(byLabel, "c-inv-i", "c-inv-is", "c-inv-im")},
		{Label: "forward races with eviction (M_I)", Snippets: pick(byLabel, "c-fwdgets-mi", "c-fwdgetm-mi")},
		{Label: "downgraded-while-evicting chains (S_I, I_I)", Snippets: pick(byLabel, "c-inv-si", "c-putack-si", "c-putack-ii")},
		{Label: "stale PutM at the directory", Snippets: pick(byLabel, "d-putm-i", "d-putm-s", "d-putm-m-stale")},
		{Label: "stale PutAck at an idle cache", Snippets: pick(byLabel, "c-putack-i")},
	}
	return core.CaseStudy{
		Name:    "A: MSI",
		Build:   fixedBuild(msiSystem("MSI-caseA", p), msiVocab(p), msiInvariants(p)),
		Initial: initial,
		Fixes:   fixes,
		MCOpts:  mc.Options{MaxStates: 2_000_000, CheckDeadlock: true},
		Limits:  synth.Limits{MaxSize: 12},
	}
}

// CaseStudyB is §6.2: extending MSI to MESI. The baseline MSI snippets are
// carried over with the idle-directory grant replaced by the exclusive
// grant; the E-state behaviours the synthesis lectures describe as "new
// scenarios" arrive in corrective batches.
func CaseStudyB(numCaches int) core.CaseStudy {
	p := msiSkeletonExt(numCaches, true)
	base := snippetsByLabel(mesiBaseSnippets(p))
	ext := snippetsByLabel(mesiExtensionSnippets(p))

	var initial []*efsm.Snippet
	for _, sn := range mesiBaseSnippets(p) {
		initial = append(initial, sn)
	}
	_ = base
	initial = append(initial, pick(ext, "d-gets-i-excl", "c-dataE-is", "c-silent-upgrade")...)

	fixes := []core.FixBatch{
		{Label: "directory must serve requests in E", Snippets: pick(ext, "d-gets-e", "d-getm-e")},
		{Label: "owner-side forwards from E", Snippets: pick(ext, "c-fwdgets-e", "c-fwdgetm-e")},
		{Label: "eviction from E", Snippets: pick(ext, "c-evict-e", "d-putm-e-owner", "d-putm-e-stale")},
	}
	return core.CaseStudy{
		Name:    "B: MSI to MESI",
		Build:   fixedBuild(msiSystem("MESI-caseB", p), msiVocab(p), mesiInvariants(p)),
		Initial: initial,
		Fixes:   fixes,
		MCOpts:  mc.Options{MaxStates: 2_000_000, CheckDeadlock: true},
		Limits:  synth.Limits{MaxSize: 12},
	}
}

// CaseStudyC is §6.3: the Origin protocol from the Laudon–Lenoski flows,
// with the read-to-exclusive Sharers update underspecified; the single
// corrective batch is the §2 concrete snippet.
func CaseStudyC(numCaches int) core.CaseStudy {
	p := originSkeleton(numCaches)
	return core.CaseStudy{
		Name:    "C: SGI Origin",
		Build:   fixedBuild(originSystem(p), originVocab(p), originInvariants(p)),
		Initial: originSnippets(p, false),
		Fixes: []core.FixBatch{
			{Label: "previous owner dropped from Sharers (Figure 2)",
				Snippets: []*efsm.Snippet{originReadToExclusiveFix(p)}},
		},
		MCOpts: mc.Options{MaxStates: 4_000_000, CheckDeadlock: true},
		Limits: synth.Limits{MaxSize: 12},
	}
}
