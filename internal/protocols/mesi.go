package protocols

import (
	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
)

// MESI extends MSI with the Exclusive optimization of case study B (§6.2):
// the first reader of an unshared line receives read-write permission
// (state E) so a subsequent write needs no coherence traffic. Following
// the case-study methodology, the MESI snippet set is the MSI set with the
// idle-directory GetS grant replaced by an exclusive grant, plus snippets
// for the new E behaviours.
//
// New pieces relative to MSI:
//   - cache state E and directory state E;
//   - message type DataE (exclusive data grant);
//   - silent E→M upgrade on Store (no coherence traffic — the point of
//     the optimization);
//   - owner-side forward and eviction handling from E, mirroring M;
//   - directory E-state request handling, mirroring M (the owner may have
//     silently upgraded, so the directory must assume writability).
func MESI(numCaches int) *Spec {
	p := msiSkeletonExt(numCaches, true)
	spec := &Spec{
		Name: "MESI", Sys: msiSystem("MESI", p), Vocab: msiVocab(p),
		Cache: p.cache, Dir: p.dir,
	}
	spec.Snippets = append(mesiBaseSnippets(p), mesiExtensionSnippets(p)...)
	spec.Invariants = mesiInvariants(p)
	return spec
}

// mesiBaseSnippets is the MSI snippet set minus the snippets the extension
// replaces (the idle-directory shared grant).
func mesiBaseSnippets(p *msiParts) []*efsm.Snippet {
	var out []*efsm.Snippet
	for _, sn := range msiSnippets(p) {
		if sn.Label == "d-gets-i" {
			continue // replaced by the exclusive grant
		}
		out = append(out, sn)
	}
	return out
}

// mesiExtensionSnippets are the E-state additions.
func mesiExtensionSnippets(p *msiParts) []*efsm.Snippet {
	self := selfVar()
	sender := field("Sender", expr.PIDType)
	mtype := field("MType", expr.EnumOf(p.reqT))
	ctype := field("CType", expr.EnumOf(p.cacheT))
	mreq := field("Req", expr.PIDType)
	owner := expr.V("Owner", expr.PIDType)
	isReq := func(k string) expr.Expr { return expr.Eq(mtype, expr.EnumC(p.reqT, k)) }
	isC := func(k string) expr.Expr { return expr.Eq(ctype, expr.EnumC(p.cacheT, k)) }
	cc := func(k string) expr.Expr { return expr.EnumC(p.cacheT, k) }
	ackC := func(k string) expr.Expr { return expr.EnumC(p.ackT, k) }

	fwdPosts := func(ack string) []efsm.Post {
		return []efsm.Post{
			eq("Data.CType", cc("Data")),
			eq("Data.Dest", mreq),
			eq("Data.Req", mreq),
			eq("Ack.AType", ackC(ack)),
			eq("Ack.Sender", self),
		}
	}

	return []*efsm.Snippet{
		// Exclusive grant replaces the shared grant when the directory is
		// idle.
		newSnip("d-gets-i-excl", "Dir", "I", "E", onMsg(p.reqNet)).
			guard(isReq("GetS")).
			send(p.cacheNet, "R").
			kase(nil,
				eq("R.CType", cc("DataE")),
				eq("R.Dest", sender),
				eq("R.Req", sender),
				eq("Owner", sender)).
			done(),
		// Directory E mirrors M: the owner may have silently upgraded.
		newSnip("d-gets-e", "Dir", "E", "B_S", onMsg(p.reqNet)).
			guard(isReq("GetS")).
			send(p.cacheNet, "F").
			kase(nil,
				eq("F.CType", cc("FwdGetS")),
				eq("F.Dest", owner),
				eq("F.Req", sender),
				eq("Req", sender)).
			done(),
		newSnip("d-getm-e", "Dir", "E", "B_O", onMsg(p.reqNet)).
			guard(expr.And(isReq("GetM"), expr.Neq(sender, owner))).
			send(p.cacheNet, "F").
			kase(nil,
				eq("F.CType", cc("FwdGetM")),
				eq("F.Dest", owner),
				eq("F.Req", sender),
				eq("Req", sender)).
			done(),
		newSnip("d-putm-e-owner", "Dir", "E", "I", onMsg(p.reqNet)).
			guard(expr.And(isReq("PutM"), expr.Eq(sender, owner))).
			send(p.cacheNet, "R").
			kase(nil,
				eq("R.CType", cc("PutAck")),
				eq("R.Dest", sender),
				eq("R.Req", sender)).
			done(),
		newSnip("d-putm-e-stale", "Dir", "E", "E", onMsg(p.reqNet)).
			guard(expr.And(isReq("PutM"), expr.Neq(sender, owner))).
			send(p.cacheNet, "R").
			kase(nil,
				eq("R.CType", cc("PutAck")),
				eq("R.Dest", sender),
				eq("R.Req", sender)).
			done(),

		// Cache-side E behaviours.
		newSnip("c-dataE-is", "Cache", "I_S", "E", onMsg(p.cacheNet)).
			kase(isC("DataE")).done(),
		newSnip("c-silent-upgrade", "Cache", "E", "M", onTrig("Store")).done(),
		newSnip("c-evict-e", "Cache", "E", "M_I", onTrig("Evict")).
			send(p.reqNet, "Out").
			kase(nil,
				eq("Out.MType", expr.EnumC(p.reqT, "PutM")),
				eq("Out.Sender", self)).
			done(),
		newSnip("c-fwdgets-e", "Cache", "E", "S", onMsg(p.cacheNet)).
			send(p.cacheNet, "Data").send(p.ackNet, "Ack").
			kase(isC("FwdGetS"), fwdPosts("DownAck")...).done(),
		newSnip("c-fwdgetm-e", "Cache", "E", "I", onMsg(p.cacheNet)).
			send(p.cacheNet, "Data").send(p.ackNet, "Ack").
			kase(isC("FwdGetM"), fwdPosts("OwnAck")...).done(),
	}
}

func mesiInvariants(p *msiParts) []mc.Invariant {
	cache, dir := p.cache, p.dir
	invs := []mc.Invariant{
		// E is exclusive-clean and may silently become M, so it counts as
		// a writer state for SWMR.
		mc.SWMR(cache, []string{"M", "E"}, []string{"S", "S_M"}),
		dirAccuracy("dir-sharers-accuracy", dir, cache, "S", []string{"S", "S_M"},
			func(r *efsm.Runtime, st *efsm.State, dirIdx, cacheIdx int) bool {
				return r.VarOf(st, dirIdx, "Sharers").Set()&(1<<uint(r.Insts[cacheIdx].PID)) != 0
			}),
		dirAccuracy("dir-owner-accuracy-M", dir, cache, "M", []string{"M", "E"},
			func(r *efsm.Runtime, st *efsm.State, dirIdx, cacheIdx int) bool {
				return r.VarOf(st, dirIdx, "Owner").PID() == r.Insts[cacheIdx].PID
			}),
		dirAccuracy("dir-owner-accuracy-E", dir, cache, "E", []string{"M", "E"},
			func(r *efsm.Runtime, st *efsm.State, dirIdx, cacheIdx int) bool {
				return r.VarOf(st, dirIdx, "Owner").PID() == r.Insts[cacheIdx].PID
			}),
	}
	invs = append(invs, mc.Predicate("no-writer-under-unowned-dir",
		func(r *efsm.Runtime, st *efsm.State) (bool, string) {
			dirIdx := r.InstancesOf(dir)[0]
			dctl := r.CtlOf(st, dirIdx)
			if dctl != "I" && dctl != "S" && dctl != "B_M" {
				return true, ""
			}
			for _, idx := range r.InstancesOf(cache) {
				if c := r.CtlOf(st, idx); c == "M" || c == "E" {
					return false, r.Insts[idx].Name() + " in " + c + " while directory in " + dctl
				}
			}
			return true, ""
		}))
	return invs
}
