// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat tradition: two-watched-literal propagation, first-UIP
// conflict analysis with clause learning, exponential VSIDS-style variable
// activities with phase saving, and Luby-sequence restarts.
//
// It is the decision-procedure substrate underneath internal/smt, which
// bit-blasts the finite-domain TRANSIT theory (Bool/Int/PID/Set/Enum) to
// CNF. The paper used Z3 for these queries; on the bounded vocabulary the
// two are interchangeable, and the SAT instances produced by protocol
// synthesis are small (thousands of variables), so no clause-database
// reduction is implemented.
package sat

import "fmt"

// Lit is a literal: variable index v encodes to 2v (positive) or 2v+1
// (negated).
type Lit int32

// MkLit builds a literal from a variable index and sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Not returns the negation of the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("~x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

const litUndef = Lit(-2)

// Status is a solver verdict.
type Status int

const (
	// Unknown means the conflict budget was exhausted.
	Unknown Status = iota
	// Sat means a model was found.
	Sat
	// Unsat means the formula is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits   []Lit
	learnt bool
}

// Solver is a CDCL SAT solver. The zero value is not usable; construct with
// New. Variables are created with NewVar and clauses added with AddClause
// before calling Solve. Solvers are not safe for concurrent use.
type Solver struct {
	ok       bool // false once an empty clause is derived at level 0
	clauses  []*clause
	learnts  []*clause
	watches  [][]*clause // indexed by Lit
	assigns  []lbool     // indexed by var
	phase    []bool      // saved polarity per var
	level    []int       // decision level per var
	reason   []*clause   // antecedent clause per var
	trail    []Lit
	trailLim []int // trail index per decision level
	qhead    int
	activity []float64
	varInc   float64
	order    *varHeap
	seen     []bool // scratch for analyze

	assumptions []Lit // current Solve call's assumptions
	conflict    []Lit // final conflict clause over failed assumptions
	budgetEnd   int64 // Stats.Conflicts bound for the current Solve; 0 = none

	// Stats counts solver work; useful for benchmarks and debugging.
	Stats struct {
		Conflicts        int64
		Decisions        int64
		Propagations     int64
		Learnt           int64
		Restarts         int64
		AssumptionSolves int64
	}

	// MaxConflicts bounds each Solve call; 0 means unlimited. The budget is
	// per call — incremental reuse resets it — and when exceeded, Solve
	// returns Unknown.
	MaxConflicts int64

	// Interrupt, when non-nil, is polled periodically during search; once
	// it is closed, Solve returns Unknown at the next poll. It is the
	// cancellation hook used by internal/smt to honor context deadlines.
	Interrupt <-chan struct{}
}

// New creates an empty solver.
func New() *Solver {
	s := &Solver{ok: true, varInc: 1.0}
	s.order = &varHeap{act: &s.activity}
	return s
}

// NumVars reports the number of variables created.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NewVar creates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.phase = append(s.phase, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

func (s *Solver) value(l Lit) lbool {
	a := s.assigns[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

// AddClause adds a clause over existing variables. It returns false if the
// solver is already in an unsatisfiable state (now or as a result of this
// clause). Duplicate literals are removed and tautologies are ignored.
// Clauses must be added at decision level 0, i.e. before Solve or after it
// returns.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Incremental use: drop any model state from a previous Solve.
	s.cancelUntil(0)
	// Normalize: sort-free dedup and tautology/false-literal removal.
	out := lits[:0:0]
	for _, l := range lits {
		if l.Var() >= s.NumVars() || l < 0 {
			panic(fmt.Sprintf("sat: literal %v references unknown variable", l))
		}
		switch s.value(l) {
		case lTrue:
			return true // clause already satisfied at level 0
		case lFalse:
			continue // drop falsified literal
		}
		dup, taut := false, false
		for _, m := range out {
			if m == l {
				dup = true
				break
			}
			if m == l.Not() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.enqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) enqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		s.watches[p] = ws[:0:0] // rebuilt below; keep surviving watchers
		kept := s.watches[p]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the falsified literal (¬p) sits at position 1.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If the other watch is already true, the clause is fine.
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Search for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			if s.value(c.lits[0]) == lFalse {
				// Conflict: restore remaining watchers and bail.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.enqueue(c.lits[0], c)
		}
		s.watches[p] = kept
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{litUndef}
	counter := 0
	p := litUndef
	index := len(s.trail) - 1

	for {
		for _, q := range confl.lits {
			if q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select next literal to resolve on, scanning the trail backwards.
		for !s.seen[s.trail[index].Var()] {
			index--
		}
		p = s.trail[index]
		index--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Compute backjump level: highest level among the non-asserting
	// literals, and move such a literal to position 1 for watching.
	bt := 0
	for i := 1; i < len(learnt); i++ {
		if lv := s.level[learnt[i].Var()]; lv > bt {
			bt = lv
			learnt[1], learnt[i] = learnt[i], learnt[1]
		}
	}
	for _, l := range learnt[1:] {
		s.seen[l.Var()] = false
	}
	return learnt, bt
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.order.rebuild(s.NumVars())
	}
	s.order.update(v)
}

const varDecay = 0.95

func (s *Solver) decayActivities() { s.varInc /= varDecay }

// cancelUntil undoes assignments above the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = !l.Neg() // phase saving
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// pickBranchVar selects the unassigned variable with the highest activity.
func (s *Solver) pickBranchVar() int {
	for {
		v, ok := s.order.pop()
		if !ok {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

// luby computes the Luby restart sequence term (1-indexed):
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	x := i - 1
	size, seq := int64(1), uint(0)
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << seq
}

const restartBase = 100

// Solve searches for a model of the clause database under the given
// assumptions, if any. It returns Sat, Unsat, or Unknown when MaxConflicts
// is exhausted. After Sat, Model/ValueOf expose the model. Solve may be
// called repeatedly, interleaved with AddClause, for incremental use:
// learned clauses, variable activities, and saved phases carry over between
// calls. An Unsat answer caused by the assumptions (rather than the clause
// database itself) leaves the solver usable; Conflict then reports the
// failed-assumption clause and Okay stays true.
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.conflict = s.conflict[:0]
	if !s.ok {
		return Unsat
	}
	for _, l := range assumptions {
		if l.Var() >= s.NumVars() || l < 0 {
			panic(fmt.Sprintf("sat: assumption %v references unknown variable", l))
		}
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}
	s.assumptions = assumptions
	defer func() { s.assumptions = nil }()
	if len(assumptions) > 0 {
		s.Stats.AssumptionSolves++
	}
	// Per-call conflict budget, expressed as a bound on the cumulative
	// counter so a reused solver is not charged for earlier calls' work.
	s.budgetEnd = 0
	if s.MaxConflicts > 0 {
		s.budgetEnd = s.Stats.Conflicts + s.MaxConflicts
	}
	var restartNum int64
	for {
		restartNum++
		budget := luby(restartNum) * restartBase
		st := s.search(budget)
		if st != Unknown {
			return st
		}
		if s.interrupted() {
			s.cancelUntil(0)
			return Unknown
		}
		if s.budgetEnd > 0 && s.Stats.Conflicts >= s.budgetEnd {
			s.cancelUntil(0)
			return Unknown
		}
		s.Stats.Restarts++
	}
}

// Conflict returns the final conflict clause from the last Solve call that
// returned Unsat because of its assumptions: each literal is the negation
// of an assumption, and their disjunction is implied by the clause
// database. It is empty when the last answer did not hinge on assumptions
// (in particular, when the database itself is unsatisfiable).
func (s *Solver) Conflict() []Lit {
	out := make([]Lit, len(s.conflict))
	copy(out, s.conflict)
	return out
}

// Okay reports whether the clause database is still possibly satisfiable;
// it turns false permanently once an empty clause is derived at level 0.
// Unsat answers under assumptions do not clear it.
func (s *Solver) Okay() bool { return s.ok }

// NumLearnts reports the number of learned clauses currently retained.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// interrupted reports whether the Interrupt channel has fired.
func (s *Solver) interrupted() bool {
	if s.Interrupt == nil {
		return false
	}
	select {
	case <-s.Interrupt:
		return true
	default:
		return false
	}
}

// search runs CDCL until a verdict or until the given number of conflicts,
// in which case it returns Unknown (restart).
func (s *Solver) search(conflictBudget int64) Status {
	var conflicts, steps int64
	for {
		steps++
		if steps&1023 == 0 && s.interrupted() {
			s.cancelUntil(0)
			return Unknown
		}
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.Stats.Learnt++
				s.watch(c)
				s.enqueue(learnt[0], c)
			}
			s.decayActivities()
			if conflictBudget > 0 && conflicts >= conflictBudget {
				s.cancelUntil(0)
				return Unknown
			}
			if s.budgetEnd > 0 && s.Stats.Conflicts >= s.budgetEnd {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}
		// No conflict: honor pending assumptions, then decide. Each
		// assumption occupies one leading decision level so cancelUntil
		// and analyzeFinal can index assumptions by level.
		next := litUndef
		for next == litUndef && s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				// Already implied: open a dummy level to keep the
				// level↔assumption alignment.
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				// The database falsifies this assumption: extract the
				// failed-assumption clause and answer Unsat without
				// poisoning the solver (ok stays true).
				s.analyzeFinal(p.Not())
				s.cancelUntil(0)
				return Unsat
			default:
				next = p
			}
		}
		if next == litUndef {
			v := s.pickBranchVar()
			if v < 0 {
				return Sat // all variables assigned
			}
			s.Stats.Decisions++
			next = MkLit(v, !s.phase[v])
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(next, nil)
	}
}

// analyzeFinal computes the final conflict clause when assumption p.Not()
// is falsified by the current trail: it walks reasons backwards from p,
// collecting the negations of the assumption decisions responsible, in the
// MiniSat tradition. The result (which includes p itself) lands in
// s.conflict.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflict = append(s.conflict[:0], p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			// An assumption decision (dummy levels hold no decisions):
			// its negation belongs to the conflict clause.
			if s.level[v] > 0 {
				s.conflict = append(s.conflict, s.trail[i].Not())
			}
		} else {
			for _, l := range s.reason[v].lits {
				if s.level[l.Var()] > 0 {
					s.seen[l.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
}

// ValueOf reports the model value of a variable after Sat.
func (s *Solver) ValueOf(v int) bool { return s.assigns[v] == lTrue }

// Model returns a copy of the model after Sat.
func (s *Solver) Model() []bool {
	m := make([]bool, s.NumVars())
	for v := range m {
		m[v] = s.assigns[v] == lTrue
	}
	return m
}

// varHeap is a max-heap of variables ordered by activity, with lazy
// deletion (popped variables may be stale; callers recheck assignment).
type varHeap struct {
	act     *[]float64
	heap    []int
	indices []int // position+1 per var; 0 = absent
}

func (h *varHeap) less(i, j int) bool { return (*h.act)[h.heap[i]] > (*h.act)[h.heap[j]] }

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = i + 1
	h.indices[h.heap[j]] = j + 1
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) push(v int) {
	for v >= len(h.indices) {
		h.indices = append(h.indices, 0)
	}
	if h.indices[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) pop() (int, bool) {
	if len(h.heap) == 0 {
		return -1, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.indices[v] = 0
	if last > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) update(v int) {
	if v < len(h.indices) && h.indices[v] != 0 {
		h.up(h.indices[v] - 1)
	}
}

func (h *varHeap) rebuild(numVars int) {
	h.heap = h.heap[:0]
	for i := range h.indices {
		h.indices[i] = 0
	}
	for v := 0; v < numVars; v++ {
		h.push(v)
	}
}
