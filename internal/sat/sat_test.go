package sat

import (
	"math/rand"
	"strings"
	"testing"
)

func TestEmptyFormula(t *testing.T) {
	s := New()
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty formula: %v", st)
	}
}

func TestUnitClauses(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(b, true))
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.ValueOf(a) || s.ValueOf(b) {
		t.Errorf("model a=%v b=%v, want true,false", s.ValueOf(a), s.ValueOf(b))
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if ok := s.AddClause(MkLit(a, true)); ok {
		t.Error("adding contradictory unit should report failure")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	// Tautological clause is a no-op.
	s.AddClause(MkLit(a, false), MkLit(a, true))
	// Duplicate literals collapse.
	s.AddClause(MkLit(b, false), MkLit(b, false))
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.ValueOf(b) {
		t.Error("b must be true")
	}
}

func TestEmptyClause(t *testing.T) {
	s := New()
	s.NewVar()
	if ok := s.AddClause(); ok {
		t.Error("empty clause should report failure")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// a, a->b, b->c, c->d forces all true.
	s := New()
	vs := []int{s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()}
	s.AddClause(MkLit(vs[0], false))
	for i := 0; i < 3; i++ {
		s.AddClause(MkLit(vs[i], true), MkLit(vs[i+1], false))
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	for i, v := range vs {
		if !s.ValueOf(v) {
			t.Errorf("v%d should be true", i)
		}
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes — unsatisfiable,
// and requires real clause learning to refute quickly.
func pigeonhole(pigeons, holes int) *Solver {
	s := New()
	vars := make([][]int, pigeons)
	for p := range vars {
		vars[p] = make([]int, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := pigeonhole(n+1, n)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d,%d) = %v, want unsat", n+1, n, st)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := pigeonhole(4, 4)
	if st := s.Solve(); st != Sat {
		t.Fatalf("PHP(4,4) = %v, want sat", st)
	}
}

func TestMaxConflictsUnknown(t *testing.T) {
	s := pigeonhole(8, 7)
	s.MaxConflicts = 5
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status %v, want unknown under tiny budget", st)
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestIncrementalSolving(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	if st := s.Solve(); st != Sat {
		t.Fatal("first solve should be sat")
	}
	// Constrain further based on the model and re-solve.
	s.AddClause(MkLit(a, true))
	s.AddClause(MkLit(b, true))
	if st := s.Solve(); st != Unsat {
		t.Fatal("a|b, !a, !b should be unsat")
	}
}

// brute checks satisfiability of a clause set by exhaustive enumeration.
func brute(numVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(numVars); m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := m&(1<<uint(l.Var())) != 0
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func modelSatisfies(s *Solver, clauses [][]Lit) bool {
	for _, c := range clauses {
		sat := false
		for _, l := range c {
			if s.ValueOf(l.Var()) != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		numVars := 3 + rng.Intn(10) // 3..12
		// Around the phase-transition ratio to get a mix of sat/unsat.
		numClauses := int(4.2*float64(numVars)) + rng.Intn(5) - 2
		var clauses [][]Lit
		s := New()
		for i := 0; i < numVars; i++ {
			s.NewVar()
		}
		for i := 0; i < numClauses; i++ {
			var c []Lit
			for len(c) < 3 {
				v := rng.Intn(numVars)
				l := MkLit(v, rng.Intn(2) == 0)
				c = append(c, l)
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		got := s.Solve()
		want := brute(numVars, clauses)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v brute=%v (n=%d, m=%d)", trial, got, want, numVars, numClauses)
		}
		if got == Sat && !modelSatisfies(s, clauses) {
			t.Fatalf("trial %d: model does not satisfy formula", trial)
		}
	}
}

func TestRandomWideClausesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		numVars := 2 + rng.Intn(9)
		numClauses := 1 + rng.Intn(4*numVars)
		var clauses [][]Lit
		s := New()
		for i := 0; i < numVars; i++ {
			s.NewVar()
		}
		for i := 0; i < numClauses; i++ {
			width := 1 + rng.Intn(4)
			var c []Lit
			for len(c) < width {
				c = append(c, MkLit(rng.Intn(numVars), rng.Intn(2) == 0))
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		got := s.Solve()
		want := brute(numVars, clauses)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v brute=%v", trial, got, want)
		}
		if got == Sat && !modelSatisfies(s, clauses) {
			t.Fatalf("trial %d: bad model", trial)
		}
	}
}

func TestParseDIMACS(t *testing.T) {
	src := `c sample
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	// -1 forces x1 false; clause 1 forces -2; clause 2 forces x3.
	if s.ValueOf(0) || s.ValueOf(1) || !s.ValueOf(2) {
		t.Errorf("model %v %v %v", s.ValueOf(0), s.ValueOf(1), s.ValueOf(2))
	}
}

func TestParseDIMACSBadToken(t *testing.T) {
	if _, err := ParseDIMACS(strings.NewReader("1 x 0\n")); err == nil {
		t.Error("expected parse error")
	}
}

func TestStatsPopulated(t *testing.T) {
	s := pigeonhole(5, 4)
	s.Solve()
	if s.Stats.Conflicts == 0 || s.Stats.Decisions == 0 || s.Stats.Propagations == 0 {
		t.Errorf("stats should be non-zero: %+v", s.Stats)
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(5, true)
	if l.Var() != 5 || !l.Neg() {
		t.Error("MkLit/Var/Neg broken")
	}
	if l.Not().Neg() || l.Not().Var() != 5 {
		t.Error("Not broken")
	}
	if l.String() != "~x5" || l.Not().String() != "x5" {
		t.Error("String broken")
	}
}
