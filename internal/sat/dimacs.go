package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format into a fresh solver.
// It tolerates comment lines and ignores the declared counts in the problem
// line, sizing the solver by the literals actually seen.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var pending []Lit
	flush := func() {
		if len(pending) > 0 {
			s.AddClause(pending...)
			pending = pending[:0]
		}
	}
	ensure := func(v int) {
		for s.NumVars() < v {
			s.NewVar()
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") || strings.HasPrefix(line, "p") {
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad DIMACS token %q: %w", tok, err)
			}
			if n == 0 {
				flush()
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			ensure(v)
			pending = append(pending, MkLit(v-1, n < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return s, nil
}
