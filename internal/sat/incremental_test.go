package sat

import (
	"math/rand"
	"testing"
)

func TestSolveAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a ∨ b
	if st := s.Solve(MkLit(a, true)); st != Sat {
		t.Fatalf("a∨b under ¬a: %v", st)
	}
	if s.ValueOf(a) || !s.ValueOf(b) {
		t.Errorf("model a=%v b=%v, want false,true", s.ValueOf(a), s.ValueOf(b))
	}
	if st := s.Solve(MkLit(a, true), MkLit(b, true)); st != Unsat {
		t.Fatalf("a∨b under ¬a,¬b: %v", st)
	}
	if !s.Okay() {
		t.Error("assumption unsat must not poison the solver")
	}
	// The solver stays usable without the assumptions.
	if st := s.Solve(); st != Sat {
		t.Fatal("a∨b without assumptions should be sat again")
	}
}

func TestFailedAssumptionCore(t *testing.T) {
	s := New()
	a, b, c, d := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, true)) // ¬a ∨ ¬b
	_ = c
	// Assume a, b, and two irrelevant literals; the core must implicate
	// only a and b.
	st := s.Solve(MkLit(c, false), MkLit(a, false), MkLit(d, false), MkLit(b, false))
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
	core := s.Conflict()
	if len(core) == 0 {
		t.Fatal("empty conflict clause")
	}
	inCore := map[int]bool{}
	for _, l := range core {
		if !l.Neg() {
			t.Errorf("core literal %v should be the negation of a positive assumption", l)
		}
		inCore[l.Var()] = true
	}
	if !inCore[a] || !inCore[b] {
		t.Errorf("core %v must mention a=%d and b=%d", core, a, b)
	}
	if inCore[c] || inCore[d] {
		t.Errorf("core %v mentions irrelevant assumptions", core)
	}
	// Dropping one core assumption restores satisfiability.
	if st := s.Solve(MkLit(a, false)); st != Sat {
		t.Fatalf("under a alone: %v", st)
	}
}

func TestAssumptionFalsifiedAtLevelZero(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, true)) // unit ¬a
	if st := s.Solve(MkLit(a, false)); st != Unsat {
		t.Fatal("assuming a against unit ¬a must be unsat")
	}
	if core := s.Conflict(); len(core) != 1 || core[0] != MkLit(a, true) {
		t.Fatalf("core = %v, want [¬a]", s.Conflict())
	}
	if !s.Okay() {
		t.Error("solver must remain okay")
	}
}

// TestActivationLiteralRetraction exercises the clause-retraction idiom the
// SMT session layer builds on: guard a clause group with an activation
// literal, enable it via an assumption, and retract it with a unit clause.
func TestActivationLiteralRetraction(t *testing.T) {
	s := New()
	x := s.NewVar()
	act1, act2 := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(act1, true), MkLit(x, false)) // act1 → x
	s.AddClause(MkLit(act2, true), MkLit(x, true))  // act2 → ¬x

	if st := s.Solve(MkLit(act1, false)); st != Sat || !s.ValueOf(x) {
		t.Fatalf("under act1: status %v x=%v", st, s.ValueOf(x))
	}
	if st := s.Solve(MkLit(act2, false)); st != Sat || s.ValueOf(x) {
		t.Fatalf("under act2: status %v x=%v", st, s.ValueOf(x))
	}
	if st := s.Solve(MkLit(act1, false), MkLit(act2, false)); st != Unsat {
		t.Fatal("both groups active must conflict")
	}
	// Retract group 1 permanently (its activation literal is forced off
	// and must no longer be assumed); group 2 alone still works.
	s.AddClause(MkLit(act1, true))
	if st := s.Solve(MkLit(act2, false)); st != Sat || s.ValueOf(x) {
		t.Fatalf("after retracting group 1: status %v x=%v", st, s.ValueOf(x))
	}
	// Assuming a retracted group is now a contradiction by construction.
	if st := s.Solve(MkLit(act1, false), MkLit(act2, false)); st != Unsat {
		t.Fatal("assuming a retracted activation literal must be unsat")
	}
}

func TestPerCallConflictBudget(t *testing.T) {
	// A reused solver whose cumulative conflict count exceeds MaxConflicts
	// must still get a fresh budget on each call.
	s := New()
	const n = 9
	hole := func(p, h int) Lit { return MkLit(p*(n-1)+h, false) }
	for p := 0; p < n*(n-1); p++ {
		s.NewVar()
	}
	for p := 0; p < n; p++ {
		var c []Lit
		for h := 0; h < n-1; h++ {
			c = append(c, hole(p, h))
		}
		s.AddClause(c...)
	}
	for h := 0; h < n-1; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(hole(p1, h).Not(), hole(p2, h).Not())
			}
		}
	}
	s.MaxConflicts = 20
	if st := s.Solve(); st != Unknown {
		t.Skipf("pigeonhole solved within 20 conflicts (%v); budget not exercised", st)
	}
	burned := s.Stats.Conflicts
	if burned < 20 {
		t.Fatalf("expected ≥20 conflicts, got %d", burned)
	}
	// Second call: if the budget were checked against the cumulative
	// counter it would return Unknown after 0 new conflicts.
	if st := s.Solve(); st != Unknown {
		t.Skipf("second call solved: %v", st)
	}
	if got := s.Stats.Conflicts - burned; got < 20 {
		t.Errorf("second call burned only %d conflicts; budget not per-call", got)
	}
}

// TestDifferentialIncrementalVsOneShot is the sat-level differential fuzz:
// random CNFs solved (a) one-shot with assumption units added as clauses
// and (b) via a single reused solver with assumptions, must agree on
// status, and incremental models must satisfy clauses and assumptions.
func TestDifferentialIncrementalVsOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(20130616)) // seed-pinned for CI
	inc := New()
	const numVars = 10
	for i := 0; i < numVars; i++ {
		inc.NewVar()
	}
	var clauses [][]Lit
	for trial := 0; trial < 120; trial++ {
		// Grow the shared incremental solver's clause database a little
		// each round, then query it under random assumptions.
		for i := 0; i < 1+rng.Intn(2); i++ {
			width := 2 + rng.Intn(3)
			var c []Lit
			for len(c) < width {
				c = append(c, MkLit(rng.Intn(numVars), rng.Intn(2) == 0))
			}
			clauses = append(clauses, c)
			inc.AddClause(c...)
		}
		var assumps []Lit
		seen := map[int]bool{}
		for i := 0; i < rng.Intn(4); i++ {
			v := rng.Intn(numVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			assumps = append(assumps, MkLit(v, rng.Intn(2) == 0))
		}

		one := New()
		for i := 0; i < numVars; i++ {
			one.NewVar()
		}
		oneOK := true
		for _, c := range clauses {
			oneOK = one.AddClause(c...) && oneOK
		}
		for _, l := range assumps {
			oneOK = one.AddClause(l) && oneOK
		}
		oneSt := Unsat
		if oneOK {
			oneSt = one.Solve()
		}

		incSt := inc.Solve(assumps...)
		if (incSt == Sat) != (oneSt == Sat) {
			t.Fatalf("trial %d: incremental=%v one-shot=%v (assumps %v)", trial, incSt, oneSt, assumps)
		}
		if incSt == Sat {
			if !modelSatisfies(inc, clauses) {
				t.Fatalf("trial %d: incremental model violates clauses", trial)
			}
			for _, l := range assumps {
				if inc.ValueOf(l.Var()) == l.Neg() {
					t.Fatalf("trial %d: incremental model violates assumption %v", trial, l)
				}
			}
		} else {
			// Every conflict-clause literal must negate an assumption, and
			// re-solving under the core alone must stay unsat.
			core := inc.Conflict()
			for _, l := range core {
				found := false
				for _, a := range assumps {
					if l == a.Not() {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: core literal %v is not a negated assumption of %v", trial, l, assumps)
				}
			}
			if len(core) > 0 {
				var coreAssumps []Lit
				for _, l := range core {
					coreAssumps = append(coreAssumps, l.Not())
				}
				if st := inc.Solve(coreAssumps...); st != Unsat {
					t.Fatalf("trial %d: core %v is not itself unsat", trial, core)
				}
			}
		}
		if !inc.Okay() && oneSt == Sat {
			t.Fatalf("trial %d: incremental solver poisoned while formula satisfiable", trial)
		}
	}
}
