package server

import "transit/internal/obs/provenance"

// This file is the job server's view onto the provenance layer: each
// finished job keeps a compact summary of its causal record (the full
// ledger rides inside the result payload), and ProvenanceSnapshot
// aggregates those summaries for the /runs page so an operator can see
// at a glance which jobs synthesized what and whether anything failed
// or went unwitnessed.

// ProvSummary is one job's provenance digest.
type ProvSummary struct {
	Holes      int            `json:"holes"`
	Solved     int            `json:"solved"`
	Witnessed  int            `json:"witnessed"` // solved holes with a non-empty witness set
	Statuses   map[string]int `json:"statuses,omitempty"`
	Violations int            `json:"violations,omitempty"`
}

// provSummary folds a solve job's single hole or a completion job's
// ledger into a summary. Either argument may be nil.
func provSummary(h *provenance.HoleRecord, l *provenance.Ledger) *ProvSummary {
	var holes []*provenance.HoleRecord
	sum := &ProvSummary{Statuses: map[string]int{}}
	switch {
	case h != nil:
		holes = []*provenance.HoleRecord{h}
	case l != nil:
		holes = l.Holes
		sum.Violations = len(l.Violations)
	default:
		return nil
	}
	for _, hr := range holes {
		sum.Holes++
		sum.Statuses[hr.Status]++
		if hr.Status == provenance.StatusSolved {
			sum.Solved++
			if len(hr.Witnesses) > 0 {
				sum.Witnessed++
			}
		}
	}
	return sum
}

// setProvenance records a finished job's provenance summary.
func (j *job) setProvenance(p *ProvSummary) {
	if p == nil {
		return
	}
	j.mu.Lock()
	j.prov = p
	j.mu.Unlock()
}

// ProvJob is one job's provenance row in the /runs snapshot.
type ProvJob struct {
	ID      string       `json:"id"`
	Kind    string       `json:"kind"`
	TraceID string       `json:"trace_id,omitempty"`
	Summary *ProvSummary `json:"summary"`
}

// ProvenanceSnapshot lists the provenance summaries of every job that
// produced one, in admission order; cmd/transit wires it into the /runs
// page. Safe to call from any goroutine.
func (s *Server) ProvenanceSnapshot() any {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]ProvJob, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		if j.prov != nil {
			out = append(out, ProvJob{ID: j.id, Kind: j.kind, TraceID: j.traceID, Summary: j.prov})
		}
		j.mu.Unlock()
	}
	return out
}
