package server

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// defaultAccessLogMaxBytes is the rotation threshold when the caller does
// not pick one: 64 MiB keeps roughly a million access lines on disk.
const defaultAccessLogMaxBytes = 64 << 20

// AccessRecord is one NDJSON access-log line: the full latency breakdown
// of one finished job. QueueMS + CacheMS + SolveMS accounts for the job's
// wall time up to scheduling slack and marshaling overhead, so a log line
// alone answers "where did this job's time go".
type AccessRecord struct {
	Time    string  `json:"time"`
	Job     string  `json:"job"`
	Kind    string  `json:"kind"`
	Key     string  `json:"key"`
	Client  string  `json:"client,omitempty"`
	TraceID string  `json:"trace_id,omitempty"`
	Outcome string  `json:"outcome"`
	Tier    string  `json:"cache_tier,omitempty"`
	Dedups  int     `json:"dedup_joins,omitempty"`
	QueueMS float64 `json:"queue_ms"`
	CacheMS float64 `json:"cache_ms"`
	SolveMS float64 `json:"solve_ms"`
	TotalMS float64 `json:"total_ms"`
	Error   string  `json:"error,omitempty"`
}

// AccessLog writes one AccessRecord per finished job as NDJSON, with
// size-based rotation when file-backed: once the current file would
// exceed maxBytes, it is renamed to <path>.1 (replacing any previous
// rotation) and a fresh file is started. A nil *AccessLog is a valid
// no-op receiver, so the server logs unconditionally.
type AccessLog struct {
	mu       sync.Mutex
	w        io.Writer // writer-backed (tests, stdout); no rotation
	path     string
	maxBytes int64
	f        *os.File
	size     int64
}

// OpenAccessLog opens (appending) or creates a file-backed access log at
// path, rotating at maxBytes (<= 0 means the 64 MiB default).
func OpenAccessLog(path string, maxBytes int64) (*AccessLog, error) {
	if maxBytes <= 0 {
		maxBytes = defaultAccessLogMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: access log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("server: access log: %w", err)
	}
	return &AccessLog{path: path, maxBytes: maxBytes, f: f, size: st.Size()}, nil
}

// NewAccessLogWriter wraps an arbitrary writer (no rotation); used by
// tests and by callers logging to stdout/stderr.
func NewAccessLogWriter(w io.Writer) *AccessLog {
	return &AccessLog{w: w}
}

// Log appends one record. Errors are dropped: access logging is
// best-effort and must never fail a job.
func (l *AccessLog) Log(rec AccessRecord) {
	if l == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w != nil {
		_, _ = l.w.Write(line)
		return
	}
	if l.f == nil {
		return
	}
	if l.size+int64(len(line)) > l.maxBytes && l.size > 0 {
		l.rotateLocked()
	}
	if n, err := l.f.Write(line); err == nil {
		l.size += int64(n)
	}
}

// rotateLocked moves the current file to <path>.1 and starts a fresh one.
// On any failure it keeps writing to the old file rather than losing
// lines.
func (l *AccessLog) rotateLocked() {
	if err := l.f.Close(); err != nil {
		// The descriptor is gone either way; fall through to reopen.
		_ = err
	}
	_ = os.Rename(l.path, l.path+".1")
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		// Reopen the original so logging continues somewhere.
		f, err = os.OpenFile(l.path+".1", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			l.f = nil
			return
		}
	}
	l.f = f
	l.size = 0
}

// Close flushes and closes a file-backed log. Safe on nil and on
// writer-backed logs.
func (l *AccessLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// now is the access log's timestamp format helper.
func accessTime(t time.Time) string { return t.Format(time.RFC3339Nano) }
