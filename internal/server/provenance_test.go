package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"transit/internal/obs/provenance"
)

func TestSolveJobProvenance(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, env := post(t, ts, maxReq(), nil)
	done := await(t, ts, env.ID)
	if done.Status != string(JobDone) {
		t.Fatalf("status %s: %s", done.Status, done.Error)
	}
	var res SolveResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	h := res.Provenance
	if h == nil {
		t.Fatal("solve result carries no provenance record")
	}
	if h.Status != provenance.StatusSolved || h.Result == "" {
		t.Fatalf("provenance status %q result %q", h.Status, h.Result)
	}
	if h.Kind != "solve" || h.Target != "o" {
		t.Fatalf("provenance identity: %+v", h)
	}
	if len(h.Examples) != 1 || h.Examples[0].Kind != provenance.KindRequest || h.Examples[0].Digest == "" {
		t.Fatalf("provenance examples: %+v", h.Examples)
	}
	if len(h.Iterations) == 0 {
		t.Fatal("provenance records no CEGIS iterations")
	}
	final := h.Iterations[len(h.Iterations)-1]
	if !final.Accepted || final.KilledBy != -1 {
		t.Fatalf("final iteration not accepted: %+v", final)
	}
	if len(h.Witnesses) == 0 {
		t.Fatal("solved hole has an empty witness set")
	}

	// The /runs-facing summary reflects the finished job.
	rows, ok := s.ProvenanceSnapshot().([]ProvJob)
	if !ok || len(rows) != 1 {
		t.Fatalf("provenance snapshot: %#v", s.ProvenanceSnapshot())
	}
	sum := rows[0].Summary
	if rows[0].ID != env.ID || sum.Holes != 1 || sum.Solved != 1 || sum.Witnessed != 1 {
		t.Fatalf("provenance summary: %+v", rows[0])
	}
}

func TestCompleteJobProvenanceLedger(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := &JobRequest{
		Kind:     "complete",
		Complete: &CompleteRequest{Builtin: "vi", NumCaches: 3},
	}
	_, env := post(t, ts, req, nil)
	done := await(t, ts, env.ID)
	if done.Status != string(JobDone) {
		t.Fatalf("status %s: %s", done.Status, done.Error)
	}
	var res CompleteResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	l := res.Provenance
	if l == nil || len(l.Holes) == 0 {
		t.Fatalf("completion result carries no ledger: %+v", l)
	}
	if l.Run != "VI" || l.Version != provenance.Version {
		t.Fatalf("ledger header: run %q version %d", l.Run, l.Version)
	}
	for _, h := range l.Holes {
		if h.Status == provenance.StatusSolved && len(h.Witnesses) == 0 {
			t.Fatalf("solved hole %d (%s) has no witnesses", h.ID, h.Label)
		}
	}

	// Warm resubmission: the ledger rides the result payload, so the
	// byte-diff also proves the ledger replays identically from cache.
	_, env2 := post(t, ts, req, nil)
	done2 := await(t, ts, env2.ID)
	if done2.Status != string(JobDone) || done2.CacheMisses != 0 {
		t.Fatalf("warm completion: %+v", done2)
	}
	if string(done.Result) != string(done2.Result) {
		t.Fatal("warm completion result (with ledger) differs from cold run")
	}

	rows := s.ProvenanceSnapshot().([]ProvJob)
	if len(rows) != 2 {
		t.Fatalf("want 2 provenance rows, got %d", len(rows))
	}
	for _, row := range rows {
		if row.Summary.Holes != len(l.Holes) || row.Summary.Solved == 0 {
			t.Fatalf("completion summary: %+v", row)
		}
	}
}

func TestServerReady(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.Ready(); err != nil {
		t.Fatalf("fresh server not ready: %v", err)
	}
	// Drain flips readiness: submissions would now 503.
	ts.Close()
	s.Drain(0)
	err := s.Ready()
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("draining server reports ready (err=%v)", err)
	}
}

func TestReadyQueueSaturation(t *testing.T) {
	// A server that is never started keeps everything it admits in the
	// queue, so a single submission saturates QueueDepth 1.
	s := New(Config{QueueDepth: 1})
	if err := s.Ready(); err != nil {
		t.Fatalf("empty queue not ready: %v", err)
	}
	body := strings.NewReader(`{"kind":"solve","solve":{"num_caches":3,"vars":[{"name":"a","type":"Int"}],"output":{"name":"o","type":"Int"},"examples":[{"post":"o = a"}]}}`)
	req, _ := http.NewRequest("POST", "/v1/jobs", body)
	w := &nullResponseWriter{h: http.Header{}}
	s.Handler().ServeHTTP(w, req)
	if w.status != http.StatusAccepted {
		t.Fatalf("submit status %d", w.status)
	}
	err := s.Ready()
	if err == nil || !strings.Contains(err.Error(), "saturated") {
		t.Fatalf("saturated queue reports ready (err=%v)", err)
	}
	s.Start()
	s.Drain(0)
}

type nullResponseWriter struct {
	h      http.Header
	status int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }
func (w *nullResponseWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(b), nil
}
func (w *nullResponseWriter) WriteHeader(code int) { w.status = code }

func TestProvSummaryShapes(t *testing.T) {
	if provSummary(nil, nil) != nil {
		t.Fatal("nil inputs must yield a nil summary")
	}
	l := &provenance.Ledger{
		Holes: []*provenance.HoleRecord{
			{Status: provenance.StatusSolved, Witnesses: []provenance.WitnessRecord{{Example: 0}}},
			{Status: provenance.StatusSolved},
			{Status: provenance.StatusUnconstrained},
		},
		Violations: []*provenance.ViolationRecord{{Kind: "invariant"}},
	}
	sum := provSummary(nil, l)
	if sum.Holes != 3 || sum.Solved != 2 || sum.Witnessed != 1 || sum.Violations != 1 {
		t.Fatalf("ledger summary: %+v", sum)
	}
	if sum.Statuses[provenance.StatusSolved] != 2 || sum.Statuses[provenance.StatusUnconstrained] != 1 {
		t.Fatalf("status counts: %+v", sum.Statuses)
	}
}
