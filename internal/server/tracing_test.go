package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"transit/internal/obs"
)

// newUnstartedHTTP serves a Server whose worker pool has deliberately not
// been started, so submissions stay deterministically queued.
func newUnstartedHTTP(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// clientTraceID is the W3C example trace ID used across these tests.
const clientTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

// getTrace fetches and decodes GET /v1/jobs/{id}/trace.
func getTrace(t *testing.T, url string) (obs.JobTrace, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr obs.JobTrace
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
	}
	return tr, resp
}

// findSpan walks a span tree for the first node with the given name.
func findSpan(spans []*obs.TraceSpan, name string) *obs.TraceSpan {
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
		if hit := findSpan(sp.Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

// TestJobTraceEndToEnd is the PR's acceptance test: a job submitted with
// a client-supplied trace ID returns, via GET /v1/jobs/{id}/trace, a
// single span tree containing the admission, queue-wait, cache-tier, and
// solve spans under that trace ID — and the same run's access-log line
// carries a queue/cache/solve breakdown that sums (up to scheduling
// slack) to the job's observed wall time.
func TestJobTraceEndToEnd(t *testing.T) {
	var logBuf bytes.Buffer
	s, ts := newTestServer(t, Config{AccessLog: NewAccessLogWriter(&logBuf)})

	resp, env := post(t, ts, maxReq(), map[string]string{"X-Transit-Trace": clientTraceID})
	if got := resp.Header.Get("X-Transit-Trace"); got != clientTraceID {
		t.Fatalf("trace echo header = %q, want %q", got, clientTraceID)
	}
	if tp := resp.Header.Get("Traceparent"); !strings.HasPrefix(tp, "00-"+clientTraceID+"-") {
		t.Fatalf("traceparent header = %q", tp)
	}
	if env.TraceID != clientTraceID {
		t.Fatalf("envelope trace ID = %q", env.TraceID)
	}
	done := await(t, ts, env.ID)
	if done.Status != string(JobDone) {
		t.Fatalf("status %s: %s", done.Status, done.Error)
	}
	if done.CacheTier != "miss" {
		t.Fatalf("cold job cache tier = %q, want miss", done.CacheTier)
	}
	if done.SolveWaitMS <= 0 {
		t.Fatalf("solve wait missing from envelope: %+v", done)
	}

	tr, tresp := getTrace(t, ts.URL+"/v1/jobs/"+env.ID+"/trace")
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", tresp.StatusCode)
	}
	if tr.TraceID != clientTraceID || tr.JobID != env.ID {
		t.Fatalf("trace identity: %q %q", tr.TraceID, tr.JobID)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "server.job" {
		t.Fatalf("want a single server.job root, got %d roots", len(tr.Spans))
	}
	root := tr.Spans[0]
	if root.Attrs["trace"] != clientTraceID || root.Attrs["outcome"] != "done" {
		t.Fatalf("root attrs: %v", root.Attrs)
	}
	for _, name := range []string{"server.admission", "server.queue_wait", "engine.cache", "synth.cegis"} {
		if findSpan(tr.Spans, name) == nil {
			t.Errorf("span %s missing from job trace", name)
		}
	}
	if tier := findSpan(tr.Spans, "engine.cache").Attrs["tier"]; tier != "miss" {
		t.Errorf("engine.cache tier attr = %v, want miss", tier)
	}

	// The access-log line for the same run: identity matches, and the
	// queue + cache + solve breakdown reconciles with the wall time.
	var rec AccessRecord
	if err := json.Unmarshal(bytes.TrimSpace(logBuf.Bytes()), &rec); err != nil {
		t.Fatalf("access log line: %v (%q)", err, logBuf.String())
	}
	if rec.Job != env.ID || rec.TraceID != clientTraceID || rec.Outcome != "done" || rec.Tier != "miss" {
		t.Fatalf("access record identity: %+v", rec)
	}
	sum := rec.QueueMS + rec.CacheMS + rec.SolveMS
	if sum > rec.TotalMS+1 {
		t.Errorf("breakdown %v ms exceeds wall time %v ms", sum, rec.TotalMS)
	}
	if rec.TotalMS-sum > 250 {
		t.Errorf("breakdown %v ms unaccounted against wall time %v ms", rec.TotalMS-sum, rec.TotalMS)
	}

	// The warm resubmission's trace shows the cache tier instead of a
	// solve, with a server-generated trace ID.
	_, env2 := post(t, ts, maxReq(), nil)
	if env2.TraceID == "" || env2.TraceID == clientTraceID {
		t.Fatalf("warm job trace ID = %q", env2.TraceID)
	}
	warm := await(t, ts, env2.ID)
	if warm.CacheTier != "mem" {
		t.Fatalf("warm job cache tier = %q", warm.CacheTier)
	}
	tr2, _ := getTrace(t, ts.URL+"/v1/jobs/"+env2.ID+"/trace")
	if tier := findSpan(tr2.Spans, "engine.cache").Attrs["tier"]; tier != "mem" {
		t.Errorf("warm engine.cache tier attr = %v", tier)
	}
	if findSpan(tr2.Spans, "synth.cegis") != nil {
		t.Error("warm job traced a solve span")
	}

	// Queue metrics landed: depth returned to zero, waits were observed.
	snap := s.Metrics().Snapshot()
	depth := int64(-1)
	for _, g := range snap.Gauges {
		if g.Name == "server.queue.depth" {
			depth = g.Value
		}
	}
	if depth != 0 {
		t.Errorf("server.queue.depth = %d after drain to idle", depth)
	}
	waits := false
	for _, h := range snap.Histograms {
		if h.Name == "server.queue.wait_ms" && h.Count >= 2 {
			waits = true
		}
	}
	if !waits {
		t.Error("server.queue.wait_ms histogram missing observations")
	}
}

// TestTraceDedupKeepsOriginalID pins the join semantics: a dedup
// submission with its own trace header joins the original job and gets
// the original trace ID echoed back.
func TestTraceDedupKeepsOriginalID(t *testing.T) {
	s := New(Config{}) // no workers: first job stays queued
	ts := newUnstartedHTTP(t, s)

	resp1, env1 := post(t, ts, maxReq(), map[string]string{"X-Transit-Trace": clientTraceID})
	if resp1.Header.Get("X-Transit-Trace") != clientTraceID {
		t.Fatalf("first echo: %q", resp1.Header.Get("X-Transit-Trace"))
	}
	resp2, env2 := post(t, ts, maxReq(), map[string]string{"X-Transit-Trace": "deadbeef"})
	if !env2.Deduped || env2.ID != env1.ID {
		t.Fatalf("no dedup join: %+v", env2)
	}
	if got := resp2.Header.Get("X-Transit-Trace"); got != clientTraceID {
		t.Fatalf("dedup echo = %q, want the original job's %q", got, clientTraceID)
	}
	s.Start()
	await(t, ts, env1.ID)
	s.Drain(5 * time.Second)
}

// TestMalformedTraceHeaderGetsFreshID pins that bad headers do not fail
// submissions: the server generates an ID instead.
func TestMalformedTraceHeaderGetsFreshID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, env := post(t, ts, maxReq(), map[string]string{"X-Transit-Trace": "not hex!"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if len(env.TraceID) != 32 || env.TraceID == clientTraceID {
		t.Fatalf("generated trace ID = %q", env.TraceID)
	}
	await(t, ts, env.ID)
}

// TestNoTraceDisablesRing: under Config.NoTrace jobs carry no trace ID
// and the trace endpoint 404s, while the job itself still works.
func TestNoTraceDisablesRing(t *testing.T) {
	_, ts := newTestServer(t, Config{NoTrace: true})
	resp, env := post(t, ts, maxReq(), map[string]string{"X-Transit-Trace": clientTraceID})
	if h := resp.Header.Get("X-Transit-Trace"); h != "" {
		t.Fatalf("trace header echoed with tracing off: %q", h)
	}
	if env.TraceID != "" {
		t.Fatalf("trace ID assigned with tracing off: %q", env.TraceID)
	}
	done := await(t, ts, env.ID)
	if done.Status != string(JobDone) {
		t.Fatalf("job failed under -no-trace: %+v", done)
	}
	_, tresp := getTrace(t, ts.URL+"/v1/jobs/"+env.ID+"/trace")
	if tresp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace endpoint status %d with tracing off, want 404", tresp.StatusCode)
	}
}

// TestTracePerfettoFormat checks the ?format=perfetto rendering is a
// Chrome trace-event document containing the job's spans.
func TestTracePerfettoFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, env := post(t, ts, maxReq(), nil)
	await(t, ts, env.ID)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + env.ID + "/trace?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "server.job" && ev.Ph == "X" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no server.job complete event among %d trace events", len(doc.TraceEvents))
	}
}

// TestStatsLatencyBreakdown: /v1/stats carries p50/p95 digests for the
// serving histograms once jobs have run.
func TestStatsLatencyBreakdown(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, env := post(t, ts, maxReq(), nil)
	await(t, ts, env.ID)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Workers == 0 {
		t.Errorf("workers missing: %+v", stats)
	}
	for _, name := range []string{"server.job_ms", "server.queue.wait_ms", "engine.cache.lookup_ms"} {
		d, ok := stats.Latency[name]
		if !ok || d.Count == 0 {
			t.Errorf("latency digest %s missing (%+v)", name, stats.Latency)
			continue
		}
		if d.P95MS < d.P50MS || d.MaxMS < d.P95MS {
			t.Errorf("%s quantiles disordered: %+v", name, d)
		}
	}
}

// TestAccessLogRotation exercises the size-based rotation of a
// file-backed access log.
func TestAccessLogRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.ndjson")
	l, err := OpenAccessLog(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	rec := AccessRecord{Time: accessTime(time.Unix(0, 0)), Job: "j-000001", Kind: "solve",
		Key: strings.Repeat("k", 64), Outcome: "done", TotalMS: 1}
	for i := 0; i < 64; i++ {
		l.Log(rec)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cur, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	old, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatalf("no rotated file: %v", err)
	}
	if cur.Size() > 2048 || old.Size() > 2048 {
		t.Fatalf("rotation missed the cap: cur %d, old %d", cur.Size(), old.Size())
	}
	// Every line in the current file is valid NDJSON.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var got AccessRecord
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
	}
	// A nil log is a no-op.
	var nilLog *AccessLog
	nilLog.Log(rec)
	if err := nilLog.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFlightSnapshot: the server section of a flight dump reflects live
// queue state and rate-limiter configuration.
func TestFlightSnapshot(t *testing.T) {
	s := New(Config{Rate: 5, QueueDepth: 8})
	ts := newUnstartedHTTP(t, s)
	_, env := post(t, ts, maxReq(), nil)

	st, ok := s.FlightSnapshot().(FlightState)
	if !ok {
		t.Fatalf("snapshot type %T", s.FlightSnapshot())
	}
	if st.QueueDepth != 1 || st.QueueCap != 8 {
		t.Fatalf("queue picture: %+v", st)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].ID != env.ID || st.Jobs[0].State != string(JobQueued) {
		t.Fatalf("jobs picture: %+v", st.Jobs)
	}
	if st.RateLimiter == nil || st.RateLimiter.Rate != 5 || st.RateLimiter.Clients != 1 {
		t.Fatalf("rate limiter picture: %+v", st.RateLimiter)
	}
	// And it marshals (it rides into an NDJSON dump line).
	if _, err := json.Marshal(st); err != nil {
		t.Fatal(err)
	}
	s.Start()
	await(t, ts, env.ID)
	s.Drain(5 * time.Second)

	done, _ := s.FlightSnapshot().(FlightState)
	if done.QueueDepth != 0 || len(done.Jobs) != 0 || !done.Draining {
		t.Fatalf("post-drain snapshot: %+v", done)
	}
}

// TestTraceparentEdgeCases drives the W3C header path end-to-end:
// which submitted header values become the job's trace ID and which are
// discarded in favor of a generated one.
func TestTraceparentEdgeCases(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const w3c = "00-" + clientTraceID + "-b7ad6b7169203331-01"
	cases := []struct {
		name string
		hdr  map[string]string
		want string // "" = a fresh generated ID is expected
	}{
		{"w3c traceparent", map[string]string{"Traceparent": w3c}, clientTraceID},
		{"uppercase trace-id", map[string]string{"Traceparent": "00-" + strings.ToUpper(clientTraceID) + "-B7AD6B7169203331-01"}, clientTraceID},
		{"bare header wins over traceparent", map[string]string{"X-Transit-Trace": "abc123", "Traceparent": w3c}, "abc123"},
		{"all-zero trace-id", map[string]string{"Traceparent": "00-00000000000000000000000000000000-b7ad6b7169203331-01"}, ""},
		{"wrong field widths", map[string]string{"Traceparent": "00-abc-def-01"}, ""},
		{"too many fields", map[string]string{"Traceparent": w3c + "-extra"}, ""},
		{"overlong bare id", map[string]string{"X-Transit-Trace": strings.Repeat("a", 33)}, ""},
		{"garbage bare id falls through to traceparent", map[string]string{"X-Transit-Trace": "not hex!", "Traceparent": w3c}, clientTraceID},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, env := post(t, ts, maxReq(), c.hdr)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit status %d", resp.StatusCode)
			}
			defer await(t, ts, env.ID)
			if c.want != "" {
				if env.TraceID != c.want {
					t.Fatalf("trace ID = %q, want %q", env.TraceID, c.want)
				}
				return
			}
			if len(env.TraceID) != 32 || env.TraceID == clientTraceID ||
				strings.Trim(env.TraceID, "0") == "" {
				t.Fatalf("expected a fresh generated ID, got %q", env.TraceID)
			}
		})
	}
}
