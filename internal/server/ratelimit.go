package server

import (
	"math"
	"sync"
	"time"
)

// limiter is a per-client token bucket: each client key refills at rate
// tokens per second up to burst, and one token pays for one submission.
// Buckets are created on first sight and pruned once they have been idle
// long enough to be indistinguishable from full.
type limiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int) *limiter {
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &limiter{rate: rate, burst: b, buckets: map[string]*bucket{}}
}

// allow spends one token for key if available.
func (l *limiter) allow(key string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	bk, ok := l.buckets[key]
	if !ok {
		// Opportunistic prune: a bucket idle long enough to have refilled
		// completely carries no information.
		idle := time.Duration(l.burst/l.rate*float64(time.Second)) + time.Minute
		for k, old := range l.buckets {
			if now.Sub(old.last) > idle {
				delete(l.buckets, k)
			}
		}
		bk = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = bk
	}
	bk.tokens = math.Min(l.burst, bk.tokens+l.rate*now.Sub(bk.last).Seconds())
	bk.last = now
	if bk.tokens < 1 {
		return false
	}
	bk.tokens--
	return true
}
