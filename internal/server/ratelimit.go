package server

import (
	"math"
	"sync"
	"time"
)

// limiter is a per-client token bucket: each client key refills at rate
// tokens per second up to burst, and one token pays for one submission.
// Buckets are created on first sight and pruned once they have been idle
// long enough to be indistinguishable from full.
type limiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int) *limiter {
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &limiter{rate: rate, burst: b, buckets: map[string]*bucket{}}
}

// limiterSnapshot is the rate limiter's state as captured into flight
// dumps: configuration plus how many client buckets are live and how
// many of them are currently out of tokens.
type limiterSnapshot struct {
	Rate      float64 `json:"rate"`
	Burst     float64 `json:"burst"`
	Clients   int     `json:"clients"`
	Throttled int     `json:"throttled"`
}

// snapshot captures the limiter's live state (nil limiter → nil, meaning
// rate limiting is off). Token counts are projected to now so a bucket
// that has refilled since its last request does not read as throttled.
func (l *limiter) snapshot(now time.Time) *limiterSnapshot {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := &limiterSnapshot{Rate: l.rate, Burst: l.burst, Clients: len(l.buckets)}
	for _, bk := range l.buckets {
		if math.Min(l.burst, bk.tokens+l.rate*now.Sub(bk.last).Seconds()) < 1 {
			snap.Throttled++
		}
	}
	return snap
}

// allow spends one token for key if available.
func (l *limiter) allow(key string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	bk, ok := l.buckets[key]
	if !ok {
		// Opportunistic prune: a bucket idle long enough to have refilled
		// completely carries no information.
		idle := time.Duration(l.burst/l.rate*float64(time.Second)) + time.Minute
		for k, old := range l.buckets {
			if now.Sub(old.last) > idle {
				delete(l.buckets, k)
			}
		}
		bk = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = bk
	}
	bk.tokens = math.Min(l.burst, bk.tokens+l.rate*now.Sub(bk.last).Seconds())
	bk.last = now
	if bk.tokens < 1 {
		return false
	}
	bk.tokens--
	return true
}
