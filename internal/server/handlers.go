package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"time"

	"transit/internal/obs"
	"transit/internal/obs/serve"
)

// JobEnvelope is the job's wire representation: lifecycle, cache info,
// and — once done — the result payload. Everything nondeterministic
// (timestamps, latency, cache traffic) lives here; Result itself is a
// pure function of the request, byte-identical cold or warm.
type JobEnvelope struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	Key         string          `json:"key"`
	Status      string          `json:"status"`
	TraceID     string          `json:"trace_id,omitempty"`
	Deduped     bool            `json:"deduped,omitempty"`
	DedupJoins  int             `json:"dedup_joins,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	ElapsedMS   float64         `json:"elapsed_ms,omitempty"`
	QueueMS     float64         `json:"queue_ms,omitempty"`
	CacheWaitMS float64         `json:"cache_wait_ms,omitempty"`
	SolveWaitMS float64         `json:"solve_wait_ms,omitempty"`
	CacheTier   string          `json:"cache_tier,omitempty"`
	CacheHits   int64           `json:"cache_hits,omitempty"`
	CacheMisses int64           `json:"cache_misses,omitempty"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// envelope snapshots a job for the wire.
func (j *job) envelope(deduped bool) JobEnvelope {
	j.mu.Lock()
	defer j.mu.Unlock()
	env := JobEnvelope{
		ID:          j.id,
		Kind:        j.kind,
		Key:         j.key,
		Status:      string(j.state),
		TraceID:     j.traceID,
		Deduped:     deduped,
		DedupJoins:  j.dedups,
		SubmittedAt: j.submitted,
		Error:       j.err,
		Result:      j.result,
		CacheTier:   string(j.cache.Tier),
		CacheHits:   j.cache.Hits,
		CacheMisses: j.cache.Misses,
		CacheWaitMS: ms(j.cache.CacheWait),
		SolveWaitMS: ms(j.cache.SolveWait),
	}
	if !j.started.IsZero() {
		t := j.started
		env.StartedAt = &t
		env.QueueMS = ms(j.started.Sub(j.submitted))
	}
	if !j.finished.IsZero() {
		t := j.finished
		env.FinishedAt = &t
		env.ElapsedMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	return env
}

// Handler returns the server's API as a standalone http.Handler (used by
// tests and by callers without an introspection server).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for pattern, h := range s.routes() {
		mux.HandleFunc(pattern, h)
	}
	return mux
}

// Mount registers the API on a live-introspection server, so one address
// serves both the job API and /metrics, /runs, /trace/live. Must be
// called before srv.Start.
func (s *Server) Mount(srv *serve.Server) {
	for pattern, h := range s.routes() {
		srv.Handle(pattern, http.HandlerFunc(h))
	}
}

func (s *Server) routes() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"POST /v1/jobs":            s.handleSubmit,
		"GET /v1/jobs":             s.handleList,
		"GET /v1/jobs/{id}":        s.handleGet,
		"GET /v1/jobs/{id}/events": s.handleEvents,
		"GET /v1/jobs/{id}/trace":  s.handleTrace,
		"DELETE /v1/jobs/{id}":     s.handleCancel,
		"GET /v1/stats":            s.handleStats,
	}
}

// traceIDFromRequest extracts the client-supplied trace ID: the
// X-Transit-Trace header (bare hex) takes precedence, then the W3C
// traceparent header. Malformed values are ignored (a fresh ID is
// generated) rather than rejected — trace correlation is best-effort and
// must never fail a submission.
func traceIDFromRequest(r *http.Request) string {
	for _, h := range []string{"X-Transit-Trace", "Traceparent"} {
		if v := r.Header.Get(h); v != "" {
			if id, ok := obs.ParseTraceHeader(v); ok {
				return id
			}
		}
	}
	return ""
}

// traceSpanID synthesizes a stable nonzero parent span ID for the
// traceparent response header from the job ID.
func traceSpanID(jobID string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(jobID))
	if v := h.Sum64(); v != 0 {
		return v
	}
	return 1
}

// clientKey identifies a client for rate limiting: the X-Transit-Client
// header when present (so pooled clients behind one NAT can self-
// identify), else the remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Transit-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, deduped, err := s.submit(&req, clientKey(r), traceIDFromRequest(r), s.now())
	if err != nil {
		status := http.StatusInternalServerError
		if se, ok := err.(*errSubmit); ok {
			status = se.status
		}
		httpError(w, status, "%s", err)
		return
	}
	// Echo the job's trace context (dedup joins get the original job's
	// trace ID, not the one they supplied) so clients can correlate.
	if j.traceID != "" {
		w.Header().Set("X-Transit-Trace", j.traceID)
		w.Header().Set("Traceparent", obs.FormatTraceparent(j.traceID, traceSpanID(j.id)))
	}
	status := http.StatusAccepted
	if deduped {
		status = http.StatusOK
	}
	writeJSON(w, status, j.envelope(deduped))
}

// handleTrace serves a job's span tree, assembled on demand from its
// bounded per-job ring: JSON by default, Chrome trace-event JSON with
// ?format=perfetto (loadable at ui.perfetto.dev, renderable offline with
// `transit obs report -job`).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if j.ring == nil {
		httpError(w, http.StatusNotFound, "tracing disabled on this server")
		return
	}
	events, total := j.ring.Events()
	tr := obs.BuildJobTrace(j.traceID, j.id, events, total, j.ring.Epoch())
	w.Header().Set("X-Transit-Trace", j.traceID)
	if r.URL.Query().Get("format") == "perfetto" {
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WritePerfetto(w); err != nil {
			httpError(w, http.StatusInternalServerError, "render trace: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	envs := make([]JobEnvelope, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.get(id); ok {
			envs = append(envs, j.envelope(false))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": envs})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.envelope(false))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if !s.cancelJob(j) {
		httpError(w, http.StatusConflict, "job already finished")
		return
	}
	writeJSON(w, http.StatusOK, j.envelope(false))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

// handleEvents streams a job's event history and then its live events as
// server-sent events, ending when the job reaches a terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")

	history, live, cancel := j.snapshotEvents()
	defer cancel()
	for _, line := range history {
		fmt.Fprintf(w, "data: %s\n\n", line)
	}
	fl.Flush()

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case line, ok := <-live:
			if !ok {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", line)
			fl.Flush()
		case <-j.done:
			// Drain whatever was already queued, then end the stream.
			for {
				select {
				case line, ok := <-live:
					if !ok {
						return
					}
					fmt.Fprintf(w, "data: %s\n\n", line)
				default:
					fl.Flush()
					return
				}
			}
		case <-keepalive.C:
			fmt.Fprintf(w, ": keepalive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
