// Package server is the synthesis-as-a-service layer: a job server that
// exposes the engine's two entry points — SolveConcolic on a wire-encoded
// solve spec, and whole-skeleton completion on TRANSIT source — over an
// HTTP/JSON API, in front of one shared memoization cache (optionally
// disk-backed, so answers persist across jobs, clients, and restarts).
//
// The request path is: per-client token-bucket rate limiting, then
// in-flight dedup on the engine's canonical structural key (a resubmit of
// a queued or running problem joins the existing job instead of spawning
// a duplicate), then a bounded admission queue drained by a fixed worker
// pool. Each job carries its own event bus; subscribers replay the
// history and then stream live engine telemetry as SSE.
//
// The server itself is HTTP-framework-free: it exposes handlers that the
// caller mounts on a mux — in cmd/transit they share the live
// introspection server's address, so /metrics, /runs, and /v1/jobs are
// one endpoint.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"transit/internal/engine"
	"transit/internal/engine/diskcache"
	"transit/internal/obs"
	"transit/internal/obs/serve"
)

// Config configures a job server. The zero value works: an in-memory
// cache, 2 workers, a 64-deep queue, and no rate limiting.
type Config struct {
	// Cache is the shared memoization cache consulted and populated by
	// every job; give it a disk backend to persist across restarts. Nil
	// gets a fresh in-memory cache.
	Cache *engine.Cache
	// MaxInflight is the worker-pool size: how many jobs run at once.
	// Values <= 0 mean 2.
	MaxInflight int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// rejected with 503. Values <= 0 mean 64.
	QueueDepth int
	// Rate is the per-client token-bucket refill rate in requests per
	// second; 0 disables rate limiting. Burst is the bucket size
	// (defaults to max(1, ceil(Rate))).
	Rate  float64
	Burst int
	// JobTimeout bounds each job's run; 0 means none.
	JobTimeout time.Duration
	// Workers, EnumWorkers, and Portfolio are passed to jobs (the core
	// worker pool, the per-job enumeration fan-out, and the per-solve
	// configuration race width). They are execution details: excluded
	// from dedup keys, invisible in results. A request's own portfolio
	// field overrides Portfolio for that job.
	Workers     int
	EnumWorkers int
	Portfolio   int
	// Metrics, when non-nil, receives the server counters (submissions,
	// dedup hits, rejections, cache hits), the queue-depth and worker
	// gauges, and the queue-wait/service-time histograms.
	Metrics *obs.Registry
	// BaseContext, when non-nil, parents every job context. cmd/transit
	// threads the observability session through it, so job spans reach the
	// flight recorder and solver counters reach /metrics.
	BaseContext context.Context
	// NoTrace disables per-job tracing: no trace IDs are assigned, no
	// per-job span rings are kept, and GET /v1/jobs/{id}/trace returns
	// 404. The engine then runs on obs's nil-span fast path, which is
	// allocation-free (pinned by BenchmarkDisabledTracePath in
	// internal/obs).
	NoTrace bool
	// TraceEvents sizes each job's span ring (0 = 256 events). The ring
	// bounds per-job trace memory; spans beyond it surface as a dropped
	// count in the trace response.
	TraceEvents int
	// AccessLog, when non-nil, receives one NDJSON record per finished
	// job with its full latency breakdown.
	AccessLog *AccessLog
}

// defaultTraceEvents is the per-job ring capacity when Config.TraceEvents
// is zero: enough for every serving-path span of a typical job plus the
// tail of its CEGIS iterations.
const defaultTraceEvents = 256

// jobState is a job's position in its lifecycle.
type jobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued jobState = "queued"
	// JobRunning: a worker is solving it.
	JobRunning jobState = "running"
	// JobDone: finished with a result.
	JobDone jobState = "done"
	// JobFailed: finished with an error.
	JobFailed jobState = "failed"
	// JobCanceled: canceled before or during the run.
	JobCanceled jobState = "canceled"
)

// terminal reports whether a state is final.
func (s jobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// eventCap bounds each job's replayable event history; beyond it the
// oldest lines are dropped (live subscribers still see everything).
const eventCap = 4096

// job is one unit of work and its full lifecycle record.
type job struct {
	id   string
	kind string
	key  string
	run  func(ctx context.Context, j *job) (json.RawMessage, jobCache, error)

	// Trace correlation, fixed at admission: the job's trace ID (client-
	// supplied or generated), the client key, the HTTP arrival time, and
	// the per-job span ring (nil under Config.NoTrace).
	traceID  string
	client   string
	admitted time.Time
	ring     *obs.Recorder

	mu        sync.Mutex
	state     jobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       string
	result    json.RawMessage
	cache     jobCache
	cancel    context.CancelFunc
	dedups    int
	prov      *ProvSummary

	bus    *serve.Broadcast
	events [][]byte
	done   chan struct{}
}

// jobCache records how the memo cache served a job: lookup counts, the
// dominant tier (for a solve job, the tier of its one lookup; for a
// completion job, the worst tier any sub-solve hit), and the wall-time
// split between cache lookups and actual synthesis.
type jobCache struct {
	Hits      int64
	Misses    int64
	DiskHits  int64
	Tier      engine.Tier
	CacheWait time.Duration
	SolveWait time.Duration
}

// publish appends one NDJSON event line to the job's history and fans it
// out to live subscribers. The payload map must be JSON-marshalable.
func (j *job) publish(typ string, fields map[string]any) {
	rec := map[string]any{"type": typ, "job": j.id, "t": time.Now().UnixMilli()}
	for k, v := range fields {
		rec[k] = v
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	j.mu.Lock()
	if len(j.events) >= eventCap {
		j.events = append(j.events[:0], j.events[1:]...)
	}
	j.events = append(j.events, line)
	j.bus.Publish(line)
	j.mu.Unlock()
}

// snapshotEvents returns the replay history and a live subscription,
// atomically with respect to publish, so SSE consumers see every event
// exactly once and in order.
func (j *job) snapshotEvents() (history [][]byte, live <-chan []byte, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([][]byte(nil), j.events...)
	live, cancel = j.bus.Subscribe()
	return history, live, cancel
}

// Server is the job server. Create with New, mount its API with Mount or
// Handler, Start the worker pool, and Drain on shutdown.
type Server struct {
	cfg   Config
	cache *engine.Cache
	reg   *obs.Registry
	rl    *limiter

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	byKey    map[string]*job // queued/running jobs only
	queue    chan *job
	draining bool
	nextID   int
	diskSeen int64 // last Cache.DiskHits synced into the registry

	wg sync.WaitGroup

	// now is the clock, swappable in tests.
	now func() time.Time
}

// New builds an unstarted server.
func New(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	cache := cfg.Cache
	if cache == nil {
		cache = engine.NewCache()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:   cfg,
		cache: cache,
		reg:   reg,
		jobs:  map[string]*job{},
		byKey: map[string]*job{},
		queue: make(chan *job, cfg.QueueDepth),
		now:   time.Now,
	}
	if cfg.Rate > 0 {
		s.rl = newLimiter(cfg.Rate, cfg.Burst)
	}
	return s
}

// Cache exposes the shared memo cache (for stats and tests).
func (s *Server) Cache() *engine.Cache { return s.cache }

// Metrics exposes the registry the server counts into.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Start launches the worker pool.
func (s *Server) Start() {
	s.reg.Gauge("server.workers").Set(int64(s.cfg.MaxInflight))
	for i := 0; i < s.cfg.MaxInflight; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Ready reports whether a new submission would be admitted right now:
// nil unless the server is draining or the admission queue is saturated
// (both conditions under which submit answers 503). The /readyz endpoint
// surfaces it so a load balancer stops routing before the 503s start.
func (s *Server) Ready() error {
	s.mu.Lock()
	draining := s.draining
	depth, capacity := len(s.queue), cap(s.queue)
	s.mu.Unlock()
	if draining {
		return fmt.Errorf("draining: new submissions are refused")
	}
	if depth >= capacity {
		return fmt.Errorf("admission queue saturated (%d/%d)", depth, capacity)
	}
	return nil
}

// Drain stops admission (submissions get 503), lets the workers finish
// every queued and running job, and returns when the pool is idle. If
// timeout elapses first, running jobs are canceled and Drain waits for
// the cancellations to land. Safe to call more than once.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	// Every send happens under mu with the draining flag checked first,
	// so closing here cannot race a send.
	close(s.queue)
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() { s.wg.Wait(); close(idle) }()
	var t <-chan time.Time
	if timeout > 0 {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		t = tm.C
	}
	select {
	case <-idle:
	case <-t:
		s.cancelAll()
		<-idle
	}
}

// cancelAll cancels every non-terminal job.
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		s.cancelJob(j)
	}
}

// errSubmit carries an HTTP status with a submission failure.
type errSubmit struct {
	status int
	msg    string
}

func (e *errSubmit) Error() string { return e.msg }

// submit validates, rate-limits, dedups, and enqueues one request.
// admitted is the HTTP arrival time (it bounds the admission span) and
// traceID is the client-supplied trace ID, empty to generate one. The
// returned bool reports dedup: true means the job was already in flight
// and the caller joined it — the existing job keeps its own trace ID.
func (s *Server) submit(req *JobRequest, client, traceID string, admitted time.Time) (*job, bool, error) {
	if admitted.IsZero() {
		admitted = s.now()
	}
	if s.rl != nil && !s.rl.allow(client, s.now()) {
		s.reg.Counter("server.rate_limited").Inc()
		return nil, false, &errSubmit{http.StatusTooManyRequests, "rate limit exceeded"}
	}
	key, runner, err := s.prepare(req)
	if err != nil {
		return nil, false, &errSubmit{http.StatusBadRequest, err.Error()}
	}
	s.reg.Counter("server.jobs_submitted").Inc()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, &errSubmit{http.StatusServiceUnavailable, "server is draining"}
	}
	if live, ok := s.byKey[key]; ok {
		live.mu.Lock()
		live.dedups++
		live.mu.Unlock()
		s.mu.Unlock()
		s.reg.Counter("server.dedup_hits").Inc()
		return live, true, nil
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("j-%06d", s.nextID),
		kind:      req.Kind,
		key:       key,
		run:       runner,
		client:    client,
		admitted:  admitted,
		state:     JobQueued,
		submitted: s.now(),
		bus:       serve.NewBroadcast(),
		done:      make(chan struct{}),
	}
	if !s.cfg.NoTrace {
		if traceID == "" {
			traceID = obs.NewTraceID()
		}
		j.traceID = traceID
		n := s.cfg.TraceEvents
		if n <= 0 {
			n = defaultTraceEvents
		}
		j.ring = obs.NewRecorder(n)
		// The ring's clock starts at HTTP arrival so the admission span
		// sits at t_ms = 0 in the job trace.
		j.ring.SetEpoch(admitted)
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.reg.Counter("server.queue_rejected").Inc()
		return nil, false, &errSubmit{http.StatusServiceUnavailable, "admission queue full"}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byKey[key] = j
	s.mu.Unlock()
	s.reg.Counter("server.jobs_enqueued").Inc()
	s.reg.Gauge("server.queue.depth").Inc()
	fields := map[string]any{"state": string(JobQueued), "key": key}
	if j.traceID != "" {
		fields["trace_id"] = j.traceID
	}
	j.publish("job.state", fields)
	return j, false, nil
}

// get looks a job up by ID.
func (s *Server) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one dequeued job end to end.
func (s *Server) runJob(j *job) {
	s.reg.Counter("server.jobs_dequeued").Inc()
	// The queue slot frees at dequeue — canceled-while-queued jobs still
	// occupied theirs until now, so this is the only place the gauge may
	// come down.
	s.reg.Gauge("server.queue.depth").Dec()
	j.mu.Lock()
	if j.state != JobQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = s.now()
	queueWait := j.started.Sub(j.submitted)
	base := s.cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(base, s.cfg.JobTimeout)
	}
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()
	// Engine-level counters (cache tiers, lookup latency) ride the context
	// registry; point it at the server's when the base context brings none,
	// so /metrics and /v1/stats see them on any wiring.
	if obs.MetricsFrom(ctx) == nil {
		ctx = obs.WithMetrics(ctx, s.reg)
	}
	s.reg.Histogram("server.queue.wait_ms").Observe(queueWait)
	busy := s.reg.Gauge("server.workers.busy")
	busy.Inc()
	defer busy.Dec()
	j.publish("job.state", map[string]any{"state": string(JobRunning)})

	// Per-job tracing: a child tracer tees this job's spans into its ring
	// (the session exporters keep seeing them too), rooted at a server.job
	// span. The phases that elapsed before this tracer existed — HTTP
	// admission and the queue wait — are emitted as pre-timed child spans,
	// so the trace covers the job's whole lifetime, not just its run.
	var root *obs.Span
	if j.ring != nil {
		tr := obs.TracerFrom(ctx).Child(j.ring)
		if tr == nil {
			tr = obs.NewTracer(j.ring)
		}
		ctx = obs.WithTracer(ctx, tr)
		ctx, root = obs.Start(ctx, "server.job",
			obs.Str("job", j.id), obs.Str("kind", j.kind), obs.Str("trace", j.traceID))
		root.Emit("server.admission", j.admitted, j.submitted.Sub(j.admitted))
		root.Emit("server.queue_wait", j.submitted, queueWait)
	}

	result, cinfo, err := j.run(ctx, j)

	j.mu.Lock()
	j.finished = s.now()
	j.cache = cinfo
	switch {
	case j.state == JobCanceled || errors.Is(err, context.Canceled):
		j.state = JobCanceled
		j.err = "canceled"
	case err != nil:
		j.state = JobFailed
		j.err = err.Error()
	default:
		j.state = JobDone
		j.result = result
	}
	state, errMsg := j.state, j.err
	finished, dedups := j.finished, j.dedups
	elapsed := j.finished.Sub(j.started)
	j.mu.Unlock()

	if root != nil {
		root.SetAttr(obs.Str("tier", string(cinfo.Tier)), obs.Str("outcome", string(state)))
		root.End()
	}

	s.mu.Lock()
	if s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
	// Fold the cache's disk-hit counter into the registry as a delta, so
	// /metrics shows persistent-cache traffic without double counting.
	if d := s.cache.DiskHits(); d > s.diskSeen {
		s.reg.Counter("server.cache_disk_hits").Add(d - s.diskSeen)
		s.diskSeen = d
	}
	s.mu.Unlock()

	switch state {
	case JobDone:
		s.reg.Counter("server.jobs_completed").Inc()
	case JobFailed:
		s.reg.Counter("server.jobs_failed").Inc()
	case JobCanceled:
		s.reg.Counter("server.jobs_canceled").Inc()
	}
	s.reg.Counter("server.cache_hits").Add(cinfo.Hits)
	s.reg.Counter("server.cache_misses").Add(cinfo.Misses)
	s.reg.Histogram("server.job_ms").Observe(elapsed)

	s.cfg.AccessLog.Log(AccessRecord{
		Time:    accessTime(finished),
		Job:     j.id,
		Kind:    j.kind,
		Key:     j.key,
		Client:  j.client,
		TraceID: j.traceID,
		Outcome: string(state),
		Tier:    string(cinfo.Tier),
		Dedups:  dedups,
		QueueMS: ms(queueWait),
		CacheMS: ms(cinfo.CacheWait),
		SolveMS: ms(cinfo.SolveWait),
		TotalMS: ms(finished.Sub(j.submitted)),
		Error:   errMsg,
	})

	fields := map[string]any{"state": string(state)}
	if errMsg != "" {
		fields["error"] = errMsg
	}
	j.publish("job.state", fields)
	close(j.done)
}

// ms converts a duration to float milliseconds for wire/log fields.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// cancelJob cancels a job in any non-terminal state.
func (s *Server) cancelJob(j *job) bool {
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		// The worker will observe the state and skip it; finish it here.
		// (The queue-depth gauge stays up: the job still holds its channel
		// slot until a worker dequeues the husk.)
		j.state = JobCanceled
		j.err = "canceled"
		j.finished = s.now()
		finished := j.finished
		j.mu.Unlock()
		s.mu.Lock()
		if s.byKey[j.key] == j {
			delete(s.byKey, j.key)
		}
		s.mu.Unlock()
		s.reg.Counter("server.jobs_canceled").Inc()
		s.cfg.AccessLog.Log(AccessRecord{
			Time:    accessTime(finished),
			Job:     j.id,
			Kind:    j.kind,
			Key:     j.key,
			Client:  j.client,
			TraceID: j.traceID,
			Outcome: string(JobCanceled),
			QueueMS: ms(finished.Sub(j.submitted)),
			TotalMS: ms(finished.Sub(j.submitted)),
		})
		j.publish("job.state", map[string]any{"state": string(JobCanceled)})
		close(j.done)
		return true
	case JobRunning:
		j.state = JobCanceled
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// LatencySummary is one histogram's quantile digest in /v1/stats.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	MaxMS float64 `json:"max_ms"`
}

// StatsSnapshot is the /v1/stats response.
type StatsSnapshot struct {
	Draining    bool    `json:"draining"`
	Queued      int     `json:"queued"`
	Running     int     `json:"running"`
	Workers     int     `json:"workers"`
	Utilization float64 `json:"worker_utilization"`
	Jobs        int     `json:"jobs"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	DiskHits    int64   `json:"cache_disk_hits"`
	CacheLen    int     `json:"cache_entries"`
	HitRate     float64 `json:"cache_hit_rate"`

	// Latency digests every non-empty histogram in the registry — queue
	// wait, service time, cache lookups — keyed by histogram name.
	Latency map[string]LatencySummary `json:"latency,omitempty"`

	// Disk is present when the cache has a diskcache backend.
	Disk *diskcache.Stats `json:"disk,omitempty"`
}

// stats gathers the live gauges the counter-only registry cannot hold.
func (s *Server) stats() StatsSnapshot {
	s.mu.Lock()
	var queued, running int
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		}
		j.mu.Unlock()
	}
	snap := StatsSnapshot{
		Draining: s.draining,
		Queued:   queued,
		Running:  running,
		Workers:  s.cfg.MaxInflight,
		Jobs:     len(s.jobs),
	}
	s.mu.Unlock()
	snap.Utilization = float64(running) / float64(s.cfg.MaxInflight)
	snap.CacheHits, snap.CacheMisses = s.cache.Counters()
	snap.DiskHits = s.cache.DiskHits()
	snap.CacheLen = s.cache.Len()
	snap.HitRate = s.cache.HitRate()
	if hists := s.reg.Snapshot().Histograms; len(hists) > 0 {
		snap.Latency = make(map[string]LatencySummary, len(hists))
		for _, h := range hists {
			if h.Count == 0 {
				continue
			}
			snap.Latency[h.Name] = LatencySummary{Count: h.Count, P50MS: h.P50MS, P95MS: h.P95MS, MaxMS: h.MaxMS}
		}
	}
	if store, ok := s.cache.Backend().(*diskcache.Store); ok {
		st := store.Stats()
		snap.Disk = &st
	}
	return snap
}

// FlightJob is one non-terminal job's identity in a flight snapshot.
type FlightJob struct {
	ID      string  `json:"id"`
	Kind    string  `json:"kind"`
	State   string  `json:"state"`
	TraceID string  `json:"trace_id,omitempty"`
	AgeMS   float64 `json:"age_ms"`
}

// FlightState is the server section of a flight-recorder dump: the
// queue/worker picture and every live job at the moment the dump was
// taken, so a post-mortem of a dead serve process shows what it was
// working on, not just the span tail.
type FlightState struct {
	Draining    bool             `json:"draining"`
	QueueDepth  int              `json:"queue_depth"`
	QueueCap    int              `json:"queue_cap"`
	Workers     int              `json:"workers"`
	WorkersBusy int64            `json:"workers_busy"`
	Jobs        []FlightJob      `json:"jobs,omitempty"`
	RateLimiter *limiterSnapshot `json:"rate_limiter,omitempty"`
}

// FlightSnapshot captures the server's live state; cmd/transit registers
// it on the session recorder (Recorder.AddSnapshot) so every flight dump
// taken while serving carries it. Safe to call from any goroutine.
func (s *Server) FlightSnapshot() any {
	now := s.now()
	st := FlightState{
		QueueCap:    s.cfg.QueueDepth,
		Workers:     s.cfg.MaxInflight,
		WorkersBusy: s.reg.Gauge("server.workers.busy").Value(),
		RateLimiter: s.rl.snapshot(now),
	}
	s.mu.Lock()
	st.Draining = s.draining
	st.QueueDepth = len(s.queue)
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if !j.state.terminal() {
			st.Jobs = append(st.Jobs, FlightJob{
				ID:      j.id,
				Kind:    j.kind,
				State:   string(j.state),
				TraceID: j.traceID,
				AgeMS:   ms(now.Sub(j.submitted)),
			})
		}
		j.mu.Unlock()
	}
	return st
}

// completeKey derives the dedup key for a completion request: a SHA-256
// over the canonicalized request (after defaulting), kind-prefixed so
// solve and complete keys cannot collide.
func completeKey(req *CompleteRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "complete:%q:%q:%d:%d", req.Source, req.Builtin, req.NumCaches, req.MaxSize)
	return "complete:" + hex.EncodeToString(h.Sum(nil))
}
