package server

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"transit/internal/core"
	"transit/internal/efsm"
	"transit/internal/engine"
	"transit/internal/expr"
	"transit/internal/lang"
	"transit/internal/obs/provenance"
	"transit/internal/protocols"
	"transit/internal/synth"
)

// JobRequest is the POST /v1/jobs body: a kind plus its payload.
type JobRequest struct {
	// Kind is "solve" (one SolveConcolic call) or "complete" (a whole
	// protocol skeleton completion).
	Kind     string           `json:"kind"`
	Solve    *SolveRequest    `json:"solve,omitempty"`
	Complete *CompleteRequest `json:"complete,omitempty"`
}

// EnumDecl declares one enumerated type for a solve request.
type EnumDecl struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// VarDecl declares one typed variable. Type is Bool, Int, PID, Set, or a
// declared enum name.
type VarDecl struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// VocabOptions selects the vocabulary variant searched by the solver.
type VocabOptions struct {
	EnumConstants  bool `json:"enum_constants,omitempty"`
	PIDConstants   bool `json:"pid_constants,omitempty"`
	SetLiterals    bool `json:"set_literals,omitempty"`
	WithoutEnumIte bool `json:"without_enum_ite,omitempty"`
}

// ExampleDecl is one concolic example; Pre and Post are expressions in
// TRANSIT surface syntax over the declared variables and the output.
type ExampleDecl struct {
	Pre  string `json:"pre"`
	Post string `json:"post"`
}

// SolveRequest wire-encodes one SolveConcolic problem.
type SolveRequest struct {
	NumCaches int        `json:"num_caches"`
	IntWidth  uint       `json:"int_width,omitempty"` // 0 = default 8
	Enums     []EnumDecl `json:"enums,omitempty"`

	Vocab    VocabOptions  `json:"vocab"`
	Vars     []VarDecl     `json:"vars"`
	Output   VarDecl       `json:"output"`
	Examples []ExampleDecl `json:"examples"`

	MaxSize  int   `json:"max_size,omitempty"`
	MaxIters int   `json:"max_iters,omitempty"`
	MaxExprs int64 `json:"max_exprs,omitempty"`
	// Portfolio races this many solver configurations for this job,
	// keeping the first to finish (0 = server default, 1 = off). An
	// execution detail: excluded from the dedup key and the memo key,
	// invisible in the result.
	Portfolio int `json:"portfolio,omitempty"`
}

// SolveStats is the deterministic subset of the solver's work counters:
// every field is a pure function of the problem, so cold solves and
// cache replays report identical values. Wall-clock time is deliberately
// absent (it lives in the job envelope).
type SolveStats struct {
	Enumerated       int64 `json:"enumerated"`
	Kept             int64 `json:"kept"`
	MaxSizeSeen      int   `json:"max_size_seen"`
	Iterations       int   `json:"iterations"`
	SMTQueries       int   `json:"smt_queries"`
	SMTClauses       int64 `json:"smt_clauses"`
	SMTClausesReused int64 `json:"smt_clauses_reused"`
}

// SolveResult is a solve job's result payload. Provenance is the
// single-hole causal record for the synthesized expression: the request
// examples with digests, every CEGIS round, and the minimal witness
// set. It is built from the replayed trace, so warm cache replays carry
// the same record as the cold solve.
type SolveResult struct {
	Expr       string                 `json:"expr"`
	Stats      SolveStats             `json:"stats"`
	Provenance *provenance.HoleRecord `json:"provenance,omitempty"`
}

// CompleteRequest wire-encodes a skeleton-completion job: either TRANSIT
// source or a built-in protocol name.
type CompleteRequest struct {
	Source    string `json:"source,omitempty"`
	Builtin   string `json:"builtin,omitempty"` // vi, msi, mesi, origin, origin-buggy
	NumCaches int    `json:"num_caches,omitempty"`
	MaxSize   int    `json:"max_size,omitempty"`
}

// CompleteResult is a completion job's result payload: the deterministic
// report counters plus the completed transitions rendered as text. Cache
// traffic and wall-clock live in the job envelope, never here, so a warm
// replay is byte-identical to the cold run.
type CompleteResult struct {
	Protocol           string   `json:"protocol"`
	Snippets           int      `json:"snippets"`
	Transitions        int      `json:"transitions"`
	UpdatesSynthesized int      `json:"updates_synthesized"`
	GuardsSynthesized  int      `json:"guards_synthesized"`
	UpdateExprsTried   int64    `json:"update_exprs_tried"`
	GuardExprsTried    int64    `json:"guard_exprs_tried"`
	SMTQueries         int      `json:"smt_queries"`
	TransitionsText    []string `json:"transitions_text"`
	// Provenance is the run's full ledger: one hole record per
	// synthesized guard and update, assembled in plan order (DESIGN.md
	// §16), so it is identical across worker counts and cache tiers.
	Provenance *provenance.Ledger `json:"provenance,omitempty"`
}

// prepare validates a request and returns its canonical dedup key plus
// the runner executing it. Validation work (parsing source, elaborating
// expressions) happens here, on the submission path, so malformed
// requests fail with 400 instead of occupying a worker.
func (s *Server) prepare(req *JobRequest) (string, func(context.Context, *job) (json.RawMessage, jobCache, error), error) {
	switch req.Kind {
	case "solve":
		if req.Solve == nil {
			return "", nil, fmt.Errorf(`kind "solve" needs a "solve" payload`)
		}
		spec, err := buildSolveSpec(req.Solve)
		if err != nil {
			return "", nil, err
		}
		key := "solve:" + spec.Key()
		return key, func(ctx context.Context, j *job) (json.RawMessage, jobCache, error) {
			return s.runSolve(ctx, j, spec)
		}, nil
	case "complete":
		if req.Complete == nil {
			return "", nil, fmt.Errorf(`kind "complete" needs a "complete" payload`)
		}
		c := *req.Complete
		if c.NumCaches <= 0 {
			c.NumCaches = 3
		}
		if c.MaxSize <= 0 {
			c.MaxSize = 12
		}
		proto, err := loadProtocol(&c)
		if err != nil {
			return "", nil, err
		}
		return completeKey(&c), func(ctx context.Context, j *job) (json.RawMessage, jobCache, error) {
			return s.runComplete(ctx, j, proto, &c)
		}, nil
	default:
		return "", nil, fmt.Errorf("unknown job kind %q (want solve or complete)", req.Kind)
	}
}

// typeByName resolves a wire type name against a universe.
func typeByName(u *expr.Universe, name string) (expr.Type, error) {
	switch name {
	case "Bool":
		return expr.BoolType, nil
	case "Int":
		return expr.IntType, nil
	case "PID":
		return expr.PIDType, nil
	case "Set":
		return expr.SetType, nil
	}
	if et, ok := u.Enum(name); ok {
		return expr.EnumOf(et), nil
	}
	return expr.Type{}, fmt.Errorf("unknown type %q", name)
}

// buildSolveSpec elaborates a wire solve request into an engine spec.
func buildSolveSpec(req *SolveRequest) (engine.SolveSpec, error) {
	var zero engine.SolveSpec
	if req.NumCaches <= 0 {
		return zero, fmt.Errorf("num_caches must be positive")
	}
	width := req.IntWidth
	if width == 0 {
		width = 8
	}
	u, err := expr.NewUniverseWidth(req.NumCaches, width)
	if err != nil {
		return zero, err
	}
	enums := make([]*expr.EnumType, 0, len(req.Enums))
	for _, d := range req.Enums {
		et, err := u.DeclareEnum(d.Name, d.Values...)
		if err != nil {
			return zero, err
		}
		enums = append(enums, et)
	}
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{
		Enums:             enums,
		WithEnumConstants: req.Vocab.EnumConstants,
		WithPIDConstants:  req.Vocab.PIDConstants,
		WithSetLiterals:   req.Vocab.SetLiterals,
		WithoutEnumIte:    req.Vocab.WithoutEnumIte,
	})

	if req.Output.Name == "" {
		return zero, fmt.Errorf("output variable is required")
	}
	scope := lang.ExprScope{U: u, Vars: map[string]expr.Type{}, Enums: enums}
	vars := make([]*expr.Var, 0, len(req.Vars))
	for _, d := range req.Vars {
		t, err := typeByName(u, d.Type)
		if err != nil {
			return zero, fmt.Errorf("var %s: %w", d.Name, err)
		}
		if _, dup := scope.Vars[d.Name]; dup {
			return zero, fmt.Errorf("duplicate variable %q", d.Name)
		}
		vars = append(vars, expr.V(d.Name, t))
		scope.Vars[d.Name] = t
	}
	ot, err := typeByName(u, req.Output.Type)
	if err != nil {
		return zero, fmt.Errorf("output %s: %w", req.Output.Name, err)
	}
	if _, dup := scope.Vars[req.Output.Name]; dup {
		return zero, fmt.Errorf("output %q shadows an input variable", req.Output.Name)
	}
	out := expr.V(req.Output.Name, ot)
	scope.Vars[req.Output.Name] = ot

	if len(req.Examples) == 0 {
		return zero, fmt.Errorf("at least one example is required")
	}
	examples := make([]synth.ConcolicExample, 0, len(req.Examples))
	for i, ex := range req.Examples {
		pre := expr.True()
		if ex.Pre != "" {
			if pre, err = lang.ParseAndElabExpr(ex.Pre, scope); err != nil {
				return zero, fmt.Errorf("example %d pre: %w", i, err)
			}
		}
		post, err := lang.ParseAndElabExpr(ex.Post, scope)
		if err != nil {
			return zero, fmt.Errorf("example %d post: %w", i, err)
		}
		if pre.Type() != expr.BoolType || post.Type() != expr.BoolType {
			return zero, fmt.Errorf("example %d: pre and post must be Bool", i)
		}
		examples = append(examples, synth.ConcolicExample{Pre: pre, Post: post})
	}

	return engine.SolveSpec{
		Problem:  synth.Problem{U: u, Vocab: voc, Vars: vars, Output: out},
		Examples: examples,
		Limits: synth.Limits{
			MaxSize:   req.MaxSize,
			MaxIters:  req.MaxIters,
			MaxExprs:  req.MaxExprs,
			Portfolio: req.Portfolio,
		},
	}, nil
}

// runSolve executes a solve job through the shared cache.
func (s *Server) runSolve(ctx context.Context, j *job, spec engine.SolveSpec) (json.RawMessage, jobCache, error) {
	sink := j.telemetrySink()
	eng := engine.New(engine.Config{
		Cache:       s.cache,
		EnumWorkers: s.cfg.EnumWorkers,
		Portfolio:   s.cfg.Portfolio,
		Sink:        sink,
	})
	// Direct SolveConcolic calls sit below the engine's job-DAG telemetry,
	// so bracket the solve with the same event shapes Run emits.
	sink(engine.Event{Type: "solve_start", Job: j.id, Kind: j.kind})
	start := time.Now()
	res, st, out, err := eng.SolveConcolic(ctx, spec)
	ev := engine.Event{
		Type:       "solve_done",
		Job:        j.id,
		Kind:       j.kind,
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		CacheHit:   out.Cached,
		CacheTier:  string(out.Tier),
		Candidates: st.Concrete.Enumerated,
		SMTQueries: st.SMTQueries,
		Iterations: st.Iterations,
		Retries:    out.Retries,
	}
	if err != nil {
		ev.Error = err.Error()
	}
	sink(ev)
	cinfo := jobCache{Tier: out.Tier, CacheWait: out.CacheWait, SolveWait: out.SolveWait}
	if out.Cached {
		cinfo.Hits = 1
		if out.Tier == engine.TierDisk {
			cinfo.DiskHits = 1
		}
	} else {
		cinfo.Misses = 1
	}
	if err != nil {
		return nil, cinfo, err
	}
	result := SolveResult{
		Expr: expr.Pretty(res),
		Stats: SolveStats{
			Enumerated:       st.Concrete.Enumerated,
			Kept:             st.Concrete.Kept,
			MaxSizeSeen:      st.Concrete.MaxSizeSeen,
			Iterations:       st.Iterations,
			SMTQueries:       st.SMTQueries,
			SMTClauses:       st.SMTClauses,
			SMTClausesReused: st.SMTClausesReused,
		},
		Provenance: solveProvenance(spec, res, st, out),
	}
	raw, err := json.Marshal(result)
	if err == nil {
		j.setProvenance(provSummary(result.Provenance, nil))
	}
	return raw, cinfo, err
}

// solveProvenance builds the one-hole causal record for a direct solve
// job from the request examples and the (possibly cache-replayed) CEGIS
// trace. It must be a pure function of the problem: the job-server CI
// smoke test diffs result bytes between a cold job and its warm
// resubmission.
func solveProvenance(spec engine.SolveSpec, res expr.Expr, st synth.Stats, out engine.SolveOutcome) *provenance.HoleRecord {
	h := &provenance.HoleRecord{
		Label:  "solve " + spec.Problem.Output.Name,
		Kind:   "solve",
		Target: spec.Problem.Output.Name,
	}
	h.Examples = make([]provenance.ExampleRecord, 0, len(spec.Examples))
	for i, ex := range spec.Examples {
		pre, post := ex.Pre.String(), ex.Post.String()
		h.Examples = append(h.Examples, provenance.ExampleRecord{
			Index:  i,
			Kind:   provenance.KindRequest,
			Case:   -1,
			Pre:    pre,
			Post:   post,
			Digest: provenance.Digest(pre, post),
		})
	}
	h.Iterations = provenance.TraceIterations(st.Trace)
	h.Status = provenance.StatusSolved
	h.Result = res.String()
	h.Portfolio = out.Portfolio
	provenance.ComputeWitnesses(h)
	return h
}

// loadProtocol resolves a completion request's source or builtin.
func loadProtocol(req *CompleteRequest) (*lang.Protocol, error) {
	if (req.Source == "") == (req.Builtin == "") {
		return nil, fmt.Errorf("exactly one of source or builtin is required")
	}
	if req.Source != "" {
		return lang.Build(req.Source, req.NumCaches)
	}
	var spec *protocols.Spec
	switch req.Builtin {
	case "vi":
		spec = protocols.VI(req.NumCaches)
	case "msi":
		spec = protocols.MSI(req.NumCaches)
	case "mesi":
		spec = protocols.MESI(req.NumCaches)
	case "origin":
		spec = protocols.Origin(req.NumCaches, true)
	case "origin-buggy":
		spec = protocols.Origin(req.NumCaches, false)
	default:
		return nil, fmt.Errorf("unknown builtin %q", req.Builtin)
	}
	return &lang.Protocol{
		Name:       spec.Name,
		Sys:        spec.Sys,
		Vocab:      spec.Vocab,
		Snippets:   spec.Snippets,
		Invariants: spec.Invariants,
	}, nil
}

// runComplete executes a skeleton-completion job through the shared
// cache.
func (s *Server) runComplete(ctx context.Context, j *job, proto *lang.Protocol, req *CompleteRequest) (json.RawMessage, jobCache, error) {
	// Each completion job gets its own recorder; the core layer fills it
	// in plan order, so the resulting ledger — and with it the whole
	// result payload — is byte-identical across worker counts and cache
	// temperature.
	rec := provenance.NewRecorder(proto.Name)
	ctx = provenance.WithRecorder(ctx, rec)
	rep, err := core.CompleteCtx(ctx, proto.Sys, proto.Vocab, proto.Snippets, core.Options{
		Limits:      synth.Limits{MaxSize: req.MaxSize},
		Workers:     s.cfg.Workers,
		EnumWorkers: s.cfg.EnumWorkers,
		Portfolio:   s.cfg.Portfolio,
		Cache:       s.cache,
		Telemetry:   j.telemetrySink(),
	})
	if err != nil {
		return nil, jobCache{}, err
	}
	cinfo := jobCache{
		Hits:      int64(rep.CacheHits),
		Misses:    int64(rep.CacheMisses),
		DiskHits:  int64(rep.DiskHits),
		Tier:      completionTier(rep),
		CacheWait: rep.CacheWait,
		SolveWait: rep.SolveWait,
	}
	out := CompleteResult{
		Protocol:           proto.Name,
		Snippets:           rep.Snippets,
		Transitions:        rep.Transitions,
		UpdatesSynthesized: rep.UpdatesSynthesized,
		GuardsSynthesized:  rep.GuardsSynthesized,
		UpdateExprsTried:   rep.UpdateExprsTried,
		GuardExprsTried:    rep.GuardExprsTried,
		SMTQueries:         rep.SMTQueries,
		TransitionsText:    renderTransitions(proto.Sys),
		Provenance:         rec.Ledger(),
	}
	raw, err := json.Marshal(out)
	if err == nil {
		j.setProvenance(provSummary(nil, out.Provenance))
	}
	return raw, cinfo, err
}

// completionTier collapses a completion run's many sub-solve lookups into
// one job-level tier: any miss means real synthesis happened ("miss"),
// otherwise any disk hit means the persistent store was needed ("disk"),
// otherwise pure memory hits ("mem"); a run with no lookups is "none".
func completionTier(rep *core.Report) engine.Tier {
	switch {
	case rep.CacheMisses > 0:
		return engine.TierMiss
	case rep.DiskHits > 0:
		return engine.TierDisk
	case rep.CacheHits > 0:
		return engine.TierMem
	default:
		return engine.TierNone
	}
}

// telemetrySink adapts the job's event bus to the engine's Sink: every
// engine event becomes one NDJSON line on the job's SSE stream.
func (j *job) telemetrySink() engine.Sink {
	return func(ev engine.Event) {
		j.publish("engine", map[string]any{"event": ev})
	}
}

// renderTransitions renders every completed transition in the CLI dump
// format — a deterministic, human-readable view of the synthesis output.
func renderTransitions(sys *efsm.System) []string {
	var lines []string
	for _, d := range sys.Defs {
		for _, t := range d.Transitions {
			if t.Defer {
				lines = append(lines, fmt.Sprintf("%s: (%s, %s) [%s] stall", d.Name, t.From, t.Event, t.GuardString()))
				continue
			}
			lines = append(lines, fmt.Sprintf("%s: (%s, %s) [%s] -> %s", d.Name, t.From, t.Event, t.GuardString(), t.To))
			for _, u := range t.Updates {
				lines = append(lines, fmt.Sprintf("  %s := %s", u.Var, expr.Pretty(u.Rhs)))
			}
			for _, snd := range t.Sends {
				if snd.TargetSet != nil {
					lines = append(lines, fmt.Sprintf("  send %s to each of %s:", snd.Net.Name, expr.Pretty(snd.TargetSet)))
				} else {
					lines = append(lines, fmt.Sprintf("  send %s:", snd.Net.Name))
				}
				for _, f := range snd.Fields {
					lines = append(lines, fmt.Sprintf("    %s = %s", f.Field, expr.Pretty(f.Rhs)))
				}
			}
		}
	}
	return lines
}
