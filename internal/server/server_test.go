package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"transit/internal/engine"
	"transit/internal/engine/diskcache"
)

// maxReq is the standing test problem: max(a, b) from one concolic
// example, solvable in well under a second.
func maxReq() *JobRequest {
	return &JobRequest{
		Kind: "solve",
		Solve: &SolveRequest{
			NumCaches: 3,
			Vars:      []VarDecl{{Name: "a", Type: "Int"}, {Name: "b", Type: "Int"}},
			Output:    VarDecl{Name: "o", Type: "Int"},
			Examples: []ExampleDecl{{
				Pre:  "true",
				Post: "o >= a & o >= b & (o = a | o = b)",
			}},
			MaxSize: 8,
		},
	}
}

// minReq is a distinct problem (min instead of max) for tests needing
// two different keys.
func minReq() *JobRequest {
	r := maxReq()
	r.Solve.Examples[0].Post = "a >= o & b >= o & (o = a | o = b)"
	return r
}

func post(t *testing.T, ts *httptest.Server, req *JobRequest, hdr map[string]string) (*http.Response, JobEnvelope) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env JobEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&env)
	return resp, env
}

func await(t *testing.T, ts *httptest.Server, id string) JobEnvelope {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var env JobEnvelope
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if jobState(env.Status).terminal() {
			return env
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return JobEnvelope{}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(5 * time.Second)
	})
	return s, ts
}

func TestSolveJobEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, env := post(t, ts, maxReq(), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if env.ID == "" || env.Key == "" || !strings.HasPrefix(env.Key, "solve:") {
		t.Fatalf("bad envelope: %+v", env)
	}
	done := await(t, ts, env.ID)
	if done.Status != string(JobDone) {
		t.Fatalf("status %s, error %q", done.Status, done.Error)
	}
	var res SolveResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Expr, "ite") {
		t.Fatalf("unexpected expression %q", res.Expr)
	}
	if res.Stats.Enumerated == 0 || res.Stats.SMTQueries == 0 {
		t.Fatalf("empty stats: %+v", res.Stats)
	}
	if done.CacheMisses != 1 || done.CacheHits != 0 {
		t.Fatalf("cold job cache info: %+v", done)
	}

	// A resubmission after completion is a fresh job served from cache,
	// with a byte-identical result.
	_, env2 := post(t, ts, maxReq(), nil)
	if env2.ID == env.ID {
		t.Fatal("completed job must not dedup")
	}
	done2 := await(t, ts, env2.ID)
	if done2.CacheHits != 1 {
		t.Fatalf("warm job cache info: %+v", done2)
	}
	if !bytes.Equal(done.Result, done2.Result) {
		t.Fatalf("warm result differs:\n%s\n%s", done.Result, done2.Result)
	}
	if hits, _ := s.Cache().Counters(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if got := s.Metrics().Get("server.cache_hits"); got != 1 {
		t.Fatalf("metrics cache_hits = %d", got)
	}
}

func TestDedupWhileInFlight(t *testing.T) {
	// No workers started: the first submission stays queued, so the
	// second deterministically joins it.
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp1, env1 := post(t, ts, maxReq(), nil)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp1.StatusCode)
	}
	resp2, env2 := post(t, ts, maxReq(), nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("dedup submit status %d, want 200", resp2.StatusCode)
	}
	if !env2.Deduped || env2.ID != env1.ID {
		t.Fatalf("dedup did not join: %+v vs %+v", env2, env1)
	}
	// A different problem is not deduped.
	resp3, env3 := post(t, ts, minReq(), nil)
	if resp3.StatusCode != http.StatusAccepted || env3.ID == env1.ID {
		t.Fatalf("distinct problem joined: %d %+v", resp3.StatusCode, env3)
	}
	if got := s.Metrics().Get("server.dedup_hits"); got != 1 {
		t.Fatalf("dedup_hits = %d", got)
	}
	s.Start()
	if env := await(t, ts, env1.ID); env.Status != string(JobDone) {
		t.Fatalf("deduped job failed: %+v", env)
	}
	s.Drain(5 * time.Second)
}

func TestQueueFullRejects(t *testing.T) {
	s := New(Config{QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, _ := post(t, ts, maxReq(), nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp, _ := post(t, ts, minReq(), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-queue submit status %d, want 503", resp.StatusCode)
	}
	if got := s.Metrics().Get("server.queue_rejected"); got != 1 {
		t.Fatalf("queue_rejected = %d", got)
	}
	s.Start()
	s.Drain(5 * time.Second)
}

func TestRateLimitPerClient(t *testing.T) {
	s := New(Config{Rate: 1, Burst: 1})
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	alice := map[string]string{"X-Transit-Client": "alice"}
	bob := map[string]string{"X-Transit-Client": "bob"}
	if resp, _ := post(t, ts, maxReq(), alice); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first: %d", resp.StatusCode)
	}
	// Same instant, same client: bucket empty.
	if resp, _ := post(t, ts, maxReq(), alice); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second same-client should be limited, got %d", resp.StatusCode)
	}
	// Another client has its own bucket. (Same problem — dedup joins it,
	// which must still spend Bob's token first.)
	if resp, _ := post(t, ts, maxReq(), bob); resp.StatusCode != http.StatusOK {
		t.Fatalf("other client should pass, got %d", resp.StatusCode)
	}
	// A second later Alice's bucket has refilled.
	now = now.Add(time.Second)
	if resp, _ := post(t, ts, maxReq(), alice); resp.StatusCode != http.StatusOK {
		t.Fatalf("refilled client, got %d", resp.StatusCode)
	}
	if got := s.Metrics().Get("server.rate_limited"); got != 1 {
		t.Fatalf("rate_limited = %d", got)
	}
	s.Start()
	s.Drain(5 * time.Second)
}

func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, env := post(t, ts, maxReq(), nil)

	hr, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+env.ID, nil)
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	var got JobEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.Status != string(JobCanceled) {
		t.Fatalf("cancel: %d %+v", resp.StatusCode, got)
	}
	// Canceling again conflicts.
	hr, _ = http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+env.ID, nil)
	resp, err = ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel status %d", resp.StatusCode)
	}
	// The canceled key no longer blocks resubmission by dedup.
	if _, env2 := post(t, ts, maxReq(), nil); env2.Deduped {
		t.Fatal("canceled job still dedups")
	}
	s.Start()
	s.Drain(5 * time.Second)
}

func TestDrainRejectsLateSubmissions(t *testing.T) {
	s := New(Config{})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, env := post(t, ts, maxReq(), nil)
	await(t, ts, env.ID)

	s.Drain(10 * time.Second)
	resp, _ := post(t, ts, maxReq(), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status %d, want 503", resp.StatusCode)
	}
	// Drain is idempotent.
	s.Drain(time.Second)
}

func TestEventsStreamReplaysHistory(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, env := post(t, ts, maxReq(), nil)
	await(t, ts, env.ID)

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + env.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var states []string
	engineEvents := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var rec struct {
			Type  string `json:"type"`
			Job   string `json:"job"`
			State string `json:"state"`
		}
		if err := json.Unmarshal([]byte(line[len("data: "):]), &rec); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if rec.Job != env.ID {
			t.Fatalf("foreign job in stream: %+v", rec)
		}
		switch rec.Type {
		case "job.state":
			states = append(states, rec.State)
		case "engine":
			engineEvents++
		}
	}
	want := []string{"queued", "running", "done"}
	if fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatalf("states %v, want %v", states, want)
	}
	if engineEvents == 0 {
		t.Fatal("no engine telemetry on the stream")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, req := range map[string]*JobRequest{
		"unknown kind":    {Kind: "frobnicate"},
		"missing payload": {Kind: "solve"},
		"bad type": {Kind: "solve", Solve: &SolveRequest{
			NumCaches: 3,
			Vars:      []VarDecl{{Name: "a", Type: "Quux"}},
			Output:    VarDecl{Name: "o", Type: "Int"},
			Examples:  []ExampleDecl{{Post: "true"}},
		}},
		"bad syntax": {Kind: "solve", Solve: &SolveRequest{
			NumCaches: 3,
			Vars:      []VarDecl{{Name: "a", Type: "Int"}},
			Output:    VarDecl{Name: "o", Type: "Int"},
			Examples:  []ExampleDecl{{Post: "o = ) a"}},
		}},
		"no examples": {Kind: "solve", Solve: &SolveRequest{
			NumCaches: 3,
			Output:    VarDecl{Name: "o", Type: "Int"},
		}},
		"both sources": {Kind: "complete", Complete: &CompleteRequest{Source: "x", Builtin: "vi"}},
		"bad builtin":  {Kind: "complete", Complete: &CompleteRequest{Builtin: "nope"}},
	} {
		resp, _ := post(t, ts, req, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestCompleteBuiltinJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, env := post(t, ts, &JobRequest{
		Kind:     "complete",
		Complete: &CompleteRequest{Builtin: "vi", NumCaches: 3},
	}, nil)
	done := await(t, ts, env.ID)
	if done.Status != string(JobDone) {
		t.Fatalf("status %s: %s", done.Status, done.Error)
	}
	var res CompleteResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "VI" || res.Transitions == 0 || len(res.TransitionsText) == 0 {
		t.Fatalf("thin result: %+v", res)
	}
}

// TestPersistentCacheAcrossServers is the PR's e2e acceptance test: two
// sequential server processes share a -cache-dir; the second answers the
// same request from the persistent cache — verified by the Counters()
// hit delta and a DiskHits count — with a byte-identical result.
func TestPersistentCacheAcrossServers(t *testing.T) {
	dir := t.TempDir()

	openServer := func() (*Server, *httptest.Server, *diskcache.Store) {
		store, err := diskcache.Open(dir, diskcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{Cache: engine.NewCacheWithBackend(store)})
		s.Start()
		return s, httptest.NewServer(s.Handler()), store
	}

	// First server lifetime: cold solve, then clean shutdown.
	s1, ts1, store1 := openServer()
	_, env1 := post(t, ts1, maxReq(), nil)
	cold := await(t, ts1, env1.ID)
	if cold.Status != string(JobDone) || cold.CacheMisses != 1 {
		t.Fatalf("cold run: %+v", cold)
	}
	ts1.Close()
	s1.Drain(10 * time.Second)
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second server lifetime over the same directory.
	s2, ts2, store2 := openServer()
	defer func() { ts2.Close(); s2.Drain(5 * time.Second); store2.Close() }()
	preHits, _ := s2.Cache().Counters()
	_, env2 := post(t, ts2, maxReq(), nil)
	warm := await(t, ts2, env2.ID)
	if warm.Status != string(JobDone) {
		t.Fatalf("warm run: %+v", warm)
	}
	if warm.CacheHits != 1 || warm.CacheMisses != 0 {
		t.Fatalf("warm run not served from cache: %+v", warm)
	}
	postHits, _ := s2.Cache().Counters()
	if postHits-preHits != 1 {
		t.Fatalf("Counters() hit delta = %d, want 1", postHits-preHits)
	}
	if s2.Cache().DiskHits() != 1 {
		t.Fatalf("DiskHits = %d, want 1", s2.Cache().DiskHits())
	}
	if !bytes.Equal(cold.Result, warm.Result) {
		t.Fatalf("results differ across restart:\ncold %s\nwarm %s", cold.Result, warm.Result)
	}
	// The hit surfaced in /metrics via the registry.
	if got := s2.Metrics().Get("server.cache_disk_hits"); got != 1 {
		t.Fatalf("cache_disk_hits metric = %d", got)
	}

	var stats StatsSnapshot
	resp, err := ts2.Client().Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Disk == nil || stats.Disk.Entries == 0 {
		t.Fatalf("stats missing disk backend: %+v", stats)
	}
}
