package obs

import (
	"context"
	"errors"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// Options configures a CLI observability Session — the one-stop wiring
// used by cmd/transit, cmd/transit-infer, and cmd/transit-bench.
type Options struct {
	// NDJSON, when non-nil, streams spans and marks as NDJSON lines to
	// this writer (interleaving with engine telemetry when both target
	// the same SyncWriter).
	NDJSON io.Writer
	// TracePath, when non-empty, writes a Chrome trace-event JSON file
	// there at Close (open it at https://ui.perfetto.dev).
	TracePath string
	// Summary, when non-nil, prints the end-of-run span tree and metrics
	// table to this writer at Close.
	Summary io.Writer
	// Metrics enables the metrics registry. It is forced on when Summary
	// is set (the summary reports it) or when the flight recorder is
	// enabled (the dump trailer reports it).
	Metrics bool
	// FlightPath, when non-empty, arms the flight recorder: spans and
	// marks feed a fixed-size ring, and Session.DumpFlight writes the
	// tail to this file when the run dies (panic, cancellation, SIGINT).
	// Nothing is written on a clean run.
	FlightPath string
	// FlightEvents sizes the recorder ring (0 = default 4096).
	FlightEvents int
	// Extra exporters join the tracer fan-out (the introspection server's
	// SSE broadcaster and live-gauge aggregator ride here).
	Extra []Exporter
	// Profiling configures CPU/heap/pprof profiling for the run.
	Profiling Profiling
}

// epochSetter is implemented by exporters whose timestamps must align
// with the tracer's clock (NDJSON, Chrome, the flight recorder, and the
// introspection server's broadcaster).
type epochSetter interface{ SetEpoch(t time.Time) }

// Session bundles a configured Tracer, Registry, flight Recorder, and
// profiler lifetime. A Session built from zero Options is inert: Context
// returns its argument unchanged and Close is a no-op.
type Session struct {
	Tracer   *Tracer
	Metrics  *Registry
	Recorder *Recorder

	flightPath string
	dumped     atomic.Bool
	traceFile  *os.File
	stopProf   func() error
}

// NewSession builds the observability stack described by opts. Callers
// must Close the session after the traced work (and before reading the
// trace file).
func NewSession(opts Options) (*Session, error) {
	s := &Session{}
	if opts.Metrics || opts.Summary != nil || opts.FlightPath != "" {
		s.Metrics = NewRegistry()
	}
	var exporters []Exporter
	if opts.FlightPath != "" {
		s.Recorder = NewRecorder(opts.FlightEvents)
		s.Recorder.Metrics = s.Metrics
		s.flightPath = opts.FlightPath
		// The recorder goes first: on a crash the freshest events matter
		// most, and its hot path is the cheapest of the exporters.
		exporters = append(exporters, s.Recorder)
	}
	if opts.NDJSON != nil {
		exporters = append(exporters, NewNDJSON(opts.NDJSON))
	}
	if opts.TracePath != "" {
		f, err := os.Create(opts.TracePath)
		if err != nil {
			return nil, err
		}
		s.traceFile = f
		exporters = append(exporters, NewChrome(f))
	}
	if opts.Summary != nil {
		sum := NewSummary(opts.Summary)
		sum.Metrics = s.Metrics
		exporters = append(exporters, sum)
	}
	exporters = append(exporters, opts.Extra...)
	if len(exporters) > 0 {
		s.Tracer = NewTracer(exporters...)
		// Align every exporter's clock with the tracer's.
		for _, e := range exporters {
			if es, ok := e.(epochSetter); ok {
				es.SetEpoch(s.Tracer.Epoch)
			}
		}
	}
	if opts.Profiling.enabled() {
		stop, err := opts.Profiling.Start()
		if err != nil {
			s.Close()
			return nil, err
		}
		s.stopProf = stop
	}
	return s, nil
}

// Context attaches the session's tracer and registry to ctx. With
// neither configured it returns ctx unchanged.
func (s *Session) Context(ctx context.Context) context.Context {
	if s.Tracer != nil {
		ctx = WithTracer(ctx, s.Tracer)
	}
	if s.Metrics != nil {
		ctx = WithMetrics(ctx, s.Metrics)
	}
	return ctx
}

// DumpFlight writes the flight-recorder ring to the session's configured
// flight path, once: the first caller (SIGINT handler, panic recovery,
// deadline path — they can race) wins and later calls are no-ops. It
// returns the path written, or "" when the recorder is disarmed or the
// dump already happened.
func (s *Session) DumpFlight(reason string) (string, error) {
	if s.Recorder == nil || s.flightPath == "" {
		return "", nil
	}
	if !s.dumped.CompareAndSwap(false, true) {
		return "", nil
	}
	if err := s.Recorder.DumpFile(s.flightPath, reason); err != nil {
		return "", err
	}
	return s.flightPath, nil
}

// Close flushes exporters, closes the trace file, and stops profilers.
// It is idempotent and safe on an inert session.
func (s *Session) Close() error {
	var errs []error
	if s.Tracer != nil {
		errs = append(errs, s.Tracer.Flush())
		s.Tracer = nil
	}
	if s.traceFile != nil {
		errs = append(errs, s.traceFile.Close())
		s.traceFile = nil
	}
	if s.stopProf != nil {
		errs = append(errs, s.stopProf())
		s.stopProf = nil
	}
	return errors.Join(errs...)
}
