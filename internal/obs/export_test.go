package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedSpans is a deterministic trace: every timestamp is an offset from
// a fixed epoch, so exporter output is byte-stable across runs.
func fixedSpans(epoch time.Time) (spans, marks []SpanData) {
	spans = []SpanData{
		{ID: 1, Name: "engine.run", Path: "engine.run", Track: 0,
			Start: epoch.Add(1 * time.Millisecond), Duration: 5 * time.Millisecond,
			Attrs: []Attr{Int("jobs", 2)}},
		{ID: 2, Parent: 1, Name: "engine.job", Path: "engine.run/engine.job", Track: 1,
			Start: epoch.Add(1200 * time.Microsecond), Duration: 2 * time.Millisecond,
			Attrs: []Attr{Str("job", "t1"), Bool("cached", false)}},
		{ID: 3, Parent: 2, Name: "smt.solve", Path: "engine.run/engine.job/smt.solve", Track: 1,
			Start: epoch.Add(1400 * time.Microsecond), Duration: 500 * time.Microsecond,
			Attrs: []Attr{Str("status", "sat")}},
		// Zero-duration span: the Chrome exporter must clamp dur to 1µs.
		{ID: 5, Parent: 2, Name: "sat.search", Path: "engine.run/engine.job/sat.search", Track: 1,
			Start: epoch.Add(1450 * time.Microsecond), Duration: 0},
	}
	marks = []SpanData{
		{ID: 4, Parent: 1, Name: "mc.progress", Path: "engine.run/mc.progress", Track: 0,
			Start: epoch.Add(3 * time.Millisecond),
			Attrs: []Attr{Int64("states", 100), Float("states_per_sec", 50000)}},
	}
	return spans, marks
}

func feed(e Exporter, spans, marks []SpanData) {
	for _, d := range spans {
		e.Span(d)
	}
	for _, d := range marks {
		e.Mark(d)
	}
}

// TestChromeGolden locks the Chrome trace-event output format against
// testdata/chrome_golden.json. Regenerate with `go test -run
// TestChromeGolden -update ./internal/obs/`.
func TestChromeGolden(t *testing.T) {
	epoch := time.Unix(1000, 0)
	var buf bytes.Buffer
	ch := NewChrome(&buf)
	ch.SetEpoch(epoch)
	spans, marks := fixedSpans(epoch)
	feed(ch, spans, marks)
	if err := ch.Flush(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome output drifted from golden (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Independent of the exact bytes, the document must be valid trace-
	// event JSON with the metadata and clamping invariants.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	byName := map[string]map[string]any{}
	for _, ev := range doc.TraceEvents {
		byName[ev["name"].(string)] = ev
	}
	if byName["process_name"] == nil || byName["thread_name"] == nil {
		t.Error("missing metadata events")
	}
	if ev := byName["sat.search"]; ev["dur"].(float64) != 1 {
		t.Errorf("zero-duration span not clamped: dur = %v", ev["dur"])
	}
	if ev := byName["mc.progress"]; ev["ph"] != "i" || ev["s"] != "t" {
		t.Errorf("mark not a thread instant: %v", ev)
	}
	if ev := byName["smt.solve"]; ev["cat"] != "smt" {
		t.Errorf("cat = %v, want smt", ev["cat"])
	}
}

func TestNDJSONSchema(t *testing.T) {
	epoch := time.Unix(1000, 0)
	var buf bytes.Buffer
	nd := NewNDJSON(&buf)
	nd.SetEpoch(epoch)
	spans, marks := fixedSpans(epoch)
	feed(nd, spans, marks)
	if err := nd.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	var first struct {
		Type       string         `json:"type"`
		Name       string         `json:"name"`
		Span       uint64         `json:"span"`
		TMS        float64        `json:"t_ms"`
		DurationMS float64        `json:"duration_ms"`
		Attrs      map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Type != "span" || first.Name != "engine.run" || first.Span != 1 {
		t.Errorf("first record = %+v", first)
	}
	if first.TMS != 1 || first.DurationMS != 5 {
		t.Errorf("timestamps = t_ms %v, duration_ms %v", first.TMS, first.DurationMS)
	}
	if first.Attrs["jobs"] != float64(2) {
		t.Errorf("attrs = %v", first.Attrs)
	}
	// Last line is the mark: type "mark", no duration_ms key.
	last := lines[len(lines)-1]
	var mark map[string]any
	if err := json.Unmarshal([]byte(last), &mark); err != nil {
		t.Fatal(err)
	}
	if mark["type"] != "mark" || mark["name"] != "mc.progress" {
		t.Errorf("mark record = %v", mark)
	}
	if _, has := mark["duration_ms"]; has {
		t.Error("mark should omit duration_ms")
	}
}

func TestSyncWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := NewSyncWriter(&buf)
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fmt.Fprintf(w, "line %d\n", i)
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != n {
		t.Fatalf("got %d lines, want %d", len(lines), n)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "line ") {
			t.Fatalf("torn line %q", ln)
		}
	}
}

func TestSummaryOutput(t *testing.T) {
	epoch := time.Unix(1000, 0)
	var buf bytes.Buffer
	sum := NewSummary(&buf)
	reg := NewRegistry()
	reg.Counter("smt.queries").Add(7)
	sum.Metrics = reg
	spans, marks := fixedSpans(epoch)
	feed(sum, spans, marks)
	if err := sum.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"span tree:",
		"engine.run",
		"  engine.job",   // indented one level under engine.run
		"    smt.solve",  // two levels
		"mc.progress ×1", // mark count
		"smt.queries",    // metrics table appended
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Lexicographic path order puts the parent line before its children.
	if strings.Index(out, "engine.run") > strings.Index(out, "engine.job") {
		t.Error("parent should precede child in tree")
	}
}

func TestSummaryEmptyFlushWritesNothing(t *testing.T) {
	var buf bytes.Buffer
	if err := NewSummary(&buf).Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty summary wrote %q", buf.String())
	}
}

func TestSessionInert(t *testing.T) {
	sess, err := NewSession(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if sess.Context(ctx) != ctx {
		t.Error("inert session should return ctx unchanged")
	}
	if err := sess.Close(); err != nil {
		t.Errorf("Close = %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

func TestSessionTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var summary bytes.Buffer
	sess, err := NewSession(Options{TracePath: path, Summary: &summary})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Metrics == nil {
		t.Fatal("Summary should force the metrics registry on")
	}
	ctx := sess.Context(context.Background())
	MetricsFrom(ctx).Counter("synth.solves").Inc()
	_, sp := Start(ctx, "synth.cegis")
	sp.End()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file invalid JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "synth.cegis" {
			found = true
		}
	}
	if !found {
		t.Error("trace file missing synth.cegis span")
	}
	if out := summary.String(); !strings.Contains(out, "synth.cegis") || !strings.Contains(out, "synth.solves") {
		t.Errorf("summary missing span or metric:\n%s", out)
	}
}

func TestProfilingSession(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	sess, err := NewSession(Options{Profiling: Profiling{CPUProfile: cpu, MemProfile: mem}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}
