package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// promName maps a registry metric name to a Prometheus-legal series name:
// "mc.states" → "transit_mc_states". Dots and dashes become underscores;
// any other character outside [a-zA-Z0-9_] is dropped.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("transit_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		case r == '.', r == '-', r == '/':
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a float in the exposition format (no exponent for the
// magnitudes we emit; %g keeps integers free of trailing zeros).
func promFloat(v float64) string { return fmt.Sprintf("%g", v) }

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4, the format every Prometheus-compatible scraper
// accepts). Counters become counter families, gauges gauge families; each
// latency histogram
// becomes a histogram family with cumulative le buckets in milliseconds
// (matching the registry's *_ms naming) plus _sum and _count, and the
// derived p50/p95/p99/max estimates are emitted as companion gauges so
// dashboards agree with -stats-summary without a histogram_quantile query.
// Output order is deterministic: the snapshot is sorted by name and bucket
// bounds are fixed.
func WritePrometheus(s Snapshot, w io.Writer) error {
	var sb strings.Builder
	for _, c := range s.Counters {
		n := promName(c.Name)
		fmt.Fprintf(&sb, "# HELP %s transit counter %s\n", n, c.Name)
		fmt.Fprintf(&sb, "# TYPE %s counter\n", n)
		fmt.Fprintf(&sb, "%s %d\n", n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(&sb, "# HELP %s transit gauge %s\n", n, g.Name)
		fmt.Fprintf(&sb, "# TYPE %s gauge\n", n)
		fmt.Fprintf(&sb, "%s %d\n", n, g.Value)
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(&sb, "# HELP %s transit latency histogram %s (milliseconds)\n", n, h.Name)
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", n)
		var cum int64
		for i, c := range h.Buckets {
			cum += c
			le := "+Inf"
			if i < len(histBounds) {
				le = promFloat(float64(histBounds[i]) / float64(time.Millisecond))
			}
			fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", n, le, cum)
		}
		fmt.Fprintf(&sb, "%s_sum %s\n", n, promFloat(h.SumMS))
		fmt.Fprintf(&sb, "%s_count %d\n", n, h.Count)
		for _, q := range [...]struct {
			suffix string
			value  float64
		}{
			{"p50", h.P50MS}, {"p95", h.P95MS}, {"p99", h.P99MS}, {"max", h.MaxMS},
		} {
			qn := n + "_" + q.suffix
			fmt.Fprintf(&sb, "# TYPE %s gauge\n", qn)
			fmt.Fprintf(&sb, "%s %s\n", qn, promFloat(q.value))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
