package obs

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// Profiling configures the Go runtime profilers for a CLI run. The zero
// value disables everything.
type Profiling struct {
	// CPUProfile, when non-empty, streams a CPU profile to this file for
	// the duration of the run.
	CPUProfile string
	// MemProfile, when non-empty, writes a heap profile to this file at
	// stop time (after a forced GC, so it reflects live objects).
	MemProfile string
	// PprofAddr, when non-empty, serves net/http/pprof on this address
	// (e.g. "localhost:6060") for live inspection of long runs.
	PprofAddr string
}

func (p Profiling) enabled() bool {
	return p.CPUProfile != "" || p.MemProfile != "" || p.PprofAddr != ""
}

// Start begins the configured profilers and returns a stop function that
// finalizes them (stops the CPU profile, writes the heap profile, shuts
// the pprof listener). The stop function must be called exactly once;
// with nothing configured it is a cheap no-op.
func (p Profiling) Start() (stop func() error, err error) {
	var cpuFile *os.File
	var ln net.Listener
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if ln != nil {
			ln.Close()
		}
	}
	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if p.PprofAddr != "" {
		ln, err = net.Listen("tcp", p.PprofAddr)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: pprof listener: %w", err)
		}
		srv := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = srv.Serve(ln) }()
	}
	memPath := p.MemProfile
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if ln != nil {
			_ = ln.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			runtime.GC() // materialize up-to-date allocation statistics
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if werr != nil {
				return fmt.Errorf("obs: heap profile: %w", werr)
			}
			return cerr
		}
		return nil
	}, nil
}
