package obs

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Profiling configures the Go runtime profilers for a CLI run. The zero
// value disables everything.
type Profiling struct {
	// CPUProfile, when non-empty, streams a CPU profile to this file for
	// the duration of the run.
	CPUProfile string
	// MemProfile, when non-empty, writes a heap profile to this file at
	// stop time (after a forced GC, so it reflects live objects).
	MemProfile string
	// PprofAddr, when non-empty, serves the pprof endpoints on this
	// address (e.g. "localhost:6060") for live inspection of long runs.
	PprofAddr string
}

func (p Profiling) enabled() bool {
	return p.CPUProfile != "" || p.MemProfile != "" || p.PprofAddr != ""
}

// NewPprofMux builds a private ServeMux carrying the /debug/pprof/
// endpoints. Every call returns an independent mux, and nothing is ever
// registered on http.DefaultServeMux: two concurrent runs in one process
// (the engine tests do this) each get their own listener and mux, and no
// stray package import can silently add handlers to ours. The handlers
// are implemented directly over runtime/pprof and runtime/trace rather
// than net/http/pprof, whose import would itself mutate DefaultServeMux.
func NewPprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprofHandler)
	return mux
}

// pprofHandler dispatches /debug/pprof/<name> like net/http/pprof does:
// an index at the root, the CPU profile and execution trace as timed
// captures, cmdline as plain text, and every runtime/pprof named profile
// (heap, goroutine, allocs, block, mutex, threadcreate) by lookup.
func pprofHandler(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/debug/pprof/")
	switch name {
	case "":
		profiles := pprof.Profiles()
		names := make([]string, 0, len(profiles))
		for _, p := range profiles {
			names = append(names, fmt.Sprintf("%s (%d)", p.Name(), p.Count()))
		}
		sort.Strings(names)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "transit pprof\n\nprofiles:\n")
		for _, n := range names {
			fmt.Fprintf(w, "  %s\n", n)
		}
		fmt.Fprintf(w, "  profile?seconds=N (CPU)\n  trace?seconds=N (execution trace)\n  cmdline\n")
	case "cmdline":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, strings.Join(os.Args, "\x00"))
	case "profile":
		sec := durationSeconds(r, 30)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="profile"`)
		if err := pprof.StartCPUProfile(w); err != nil {
			// Another CPU profile (e.g. -cpuprofile) is already running.
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
		sleepCtx(r, sec)
		pprof.StopCPUProfile()
	case "trace":
		sec := durationSeconds(r, 1)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="trace"`)
		if err := trace.Start(w); err != nil {
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
		sleepCtx(r, sec)
		trace.Stop()
	default:
		p := pprof.Lookup(name)
		if p == nil {
			http.NotFound(w, r)
			return
		}
		debug, _ := strconv.Atoi(r.URL.Query().Get("debug"))
		if debug > 0 {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "application/octet-stream")
		}
		_ = p.WriteTo(w, debug)
	}
}

func durationSeconds(r *http.Request, def float64) time.Duration {
	if s := r.URL.Query().Get("seconds"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			def = v
		}
	}
	return time.Duration(def * float64(time.Second))
}

// sleepCtx waits for d or for the client to give up, whichever is first.
func sleepCtx(r *http.Request, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.Context().Done():
	}
}

// servePprof starts an HTTP server on addr with a private pprof mux and
// returns its listener (whose Addr reports the bound port, so ":0" works
// in tests). The server shuts down when the listener closes.
func servePprof(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listener: %w", err)
	}
	srv := &http.Server{Handler: NewPprofMux(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

// Start begins the configured profilers and returns a stop function that
// finalizes them (stops the CPU profile, writes the heap profile, shuts
// the pprof listener). The stop function must be called exactly once;
// with nothing configured it is a cheap no-op.
func (p Profiling) Start() (stop func() error, err error) {
	var cpuFile *os.File
	var ln net.Listener
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if ln != nil {
			ln.Close()
		}
	}
	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if p.PprofAddr != "" {
		ln, err = servePprof(p.PprofAddr)
		if err != nil {
			cleanup()
			return nil, err
		}
	}
	memPath := p.MemProfile
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if ln != nil {
			_ = ln.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			runtime.GC() // materialize up-to-date allocation statistics
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if werr != nil {
				return fmt.Errorf("obs: heap profile: %w", werr)
			}
			return cerr
		}
		return nil
	}, nil
}
