package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedRegistry builds a registry with deterministic contents, inserted
// in non-alphabetical order so ordering bugs (map iteration) would show.
func fixedRegistry() *Registry {
	r := NewRegistry()
	r.Counter("synth.solves").Add(7)
	r.Counter("mc.states").Add(1234)
	r.Counter("engine.jobs").Add(3)
	h := r.Histogram("smt.solve_ms")
	for _, d := range []time.Duration{
		50 * time.Microsecond,
		500 * time.Microsecond, 700 * time.Microsecond,
		5 * time.Millisecond, 6 * time.Millisecond, 7 * time.Millisecond,
		40 * time.Millisecond,
		300 * time.Millisecond,
		2 * time.Second,
		30 * time.Second,
	} {
		h.Observe(d)
	}
	return r
}

// TestSnapshotFormatGolden pins the -stats-summary metrics table,
// including the new quantile columns, to an exact rendering.
func TestSnapshotFormatGolden(t *testing.T) {
	got := fixedRegistry().Snapshot().Format()
	want := strings.Join([]string{
		"counters:",
		"  engine.jobs             3",
		"  mc.states            1234",
		"  synth.solves            7",
		"histograms (count / mean / p50 / p95 / p99 / max):",
		"  smt.solve_ms        10    3.235925s          7ms          20s          28s          30s",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Snapshot.Format() mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Run it repeatedly: map iteration order must never leak through.
	for i := 0; i < 10; i++ {
		if again := fixedRegistry().Snapshot().Format(); again != got {
			t.Fatalf("Format() not deterministic on run %d", i)
		}
	}
}

// TestPrometheusGolden pins the /metrics exposition to an exact, ordered
// rendering.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(fixedRegistry().Snapshot(), &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := strings.Join([]string{
		"# HELP transit_engine_jobs transit counter engine.jobs",
		"# TYPE transit_engine_jobs counter",
		"transit_engine_jobs 3",
		"# HELP transit_mc_states transit counter mc.states",
		"# TYPE transit_mc_states counter",
		"transit_mc_states 1234",
		"# HELP transit_synth_solves transit counter synth.solves",
		"# TYPE transit_synth_solves counter",
		"transit_synth_solves 7",
		"# HELP transit_smt_solve_ms transit latency histogram smt.solve_ms (milliseconds)",
		"# TYPE transit_smt_solve_ms histogram",
		`transit_smt_solve_ms_bucket{le="0.1"} 1`,
		`transit_smt_solve_ms_bucket{le="1"} 3`,
		`transit_smt_solve_ms_bucket{le="10"} 6`,
		`transit_smt_solve_ms_bucket{le="100"} 7`,
		`transit_smt_solve_ms_bucket{le="1000"} 8`,
		`transit_smt_solve_ms_bucket{le="10000"} 9`,
		`transit_smt_solve_ms_bucket{le="+Inf"} 10`,
		"transit_smt_solve_ms_sum 32359.25",
		"transit_smt_solve_ms_count 10",
		"# TYPE transit_smt_solve_ms_p50 gauge",
		"transit_smt_solve_ms_p50 7",
		"# TYPE transit_smt_solve_ms_p95 gauge",
		"transit_smt_solve_ms_p95 20000",
		"# TYPE transit_smt_solve_ms_p99 gauge",
		"transit_smt_solve_ms_p99 28000",
		"# TYPE transit_smt_solve_ms_max gauge",
		"transit_smt_solve_ms_max 30000",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramQuantiles sanity-checks the bucket-interpolated estimates
// on a distribution whose answers are computable by hand.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations of 5ms: all in the (1ms, 10ms] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Millisecond)
	}
	hs := HistogramSnapshot{Count: 100, Max: 5 * time.Millisecond}
	for i := range hs.Buckets {
		hs.Buckets[i] = h.buckets[i].Load()
	}
	if q := hs.Quantile(0.5); q < time.Millisecond || q > 5*time.Millisecond {
		t.Errorf("p50 = %s, want within (1ms, 5ms]", q)
	}
	if q := hs.Quantile(1); q != 5*time.Millisecond {
		t.Errorf("p100 = %s, want exactly max (5ms)", q)
	}
	if q := hs.Quantile(0.99); q > 5*time.Millisecond {
		t.Errorf("p99 = %s, exceeds observed max", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty p50 = %s, want 0", q)
	}
}

// TestRecorderRing covers wrap-around: with a 4-slot ring and 10 spans,
// the dump holds the last 4 in order and reports 6 dropped.
func TestRecorderRing(t *testing.T) {
	rec := NewRecorder(4)
	epoch := time.Now()
	rec.SetEpoch(epoch)
	for i := 1; i <= 10; i++ {
		rec.Span(SpanData{ID: uint64(i), Name: fmt.Sprintf("s%d", i),
			Start: epoch, Duration: time.Millisecond})
	}
	var buf bytes.Buffer
	if err := rec.Dump(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("dump line not JSON: %v", err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 5 {
		t.Fatalf("dump has %d lines, want 5 (header + 4 events)", len(lines))
	}
	h := lines[0]
	if h["type"] != "flight" || h["reason"] != "test" || h["recorded"] != float64(10) || h["dropped"] != float64(6) {
		t.Errorf("header = %v", h)
	}
	for i, want := range []string{"s7", "s8", "s9", "s10"} {
		if lines[i+1]["name"] != want {
			t.Errorf("event %d = %v, want name %s", i, lines[i+1]["name"], want)
		}
	}
}

// TestRecorderMetricsTrailer asserts the dump ends with a metrics
// snapshot line when a registry is attached.
func TestRecorderMetricsTrailer(t *testing.T) {
	rec := NewRecorder(8)
	rec.Metrics = fixedRegistry()
	rec.Mark(SpanData{ID: 1, Name: "mc.progress", Start: time.Now()})
	var buf bytes.Buffer
	if err := rec.Dump(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last["type"] != "metrics" {
		t.Fatalf("last line type = %v, want metrics", last["type"])
	}
	if _, ok := last["counters"]; !ok {
		t.Error("metrics trailer has no counters field")
	}
}

// TestRecorderConcurrent hammers the ring from many goroutines (the
// EnumWorkers shape: concurrent span closes) while dumps run, under the
// race detector.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(64)
	rec.Metrics = NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				rec.Span(SpanData{ID: uint64(g*1000 + i), Name: "synth.size", Start: time.Now()})
				if i%100 == 0 {
					rec.Mark(SpanData{ID: uint64(g*1000 + i), Name: "mc.progress", Start: time.Now()})
				}
			}
		}(g)
	}
	for d := 0; d < 4; d++ {
		if err := rec.Dump(io.Discard, "race"); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	if err := rec.Dump(io.Discard, "final"); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 64 {
		t.Errorf("ring Len = %d, want full (64)", rec.Len())
	}
}

// TestSessionFlightDump covers the session-level single-shot dump: armed
// recorder, events recorded, first DumpFlight writes the file, second is
// a no-op.
func TestSessionFlightDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.ndjson")
	sess, err := NewSession(Options{FlightPath: path, FlightEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sess.Context(context.Background())
	_, sp := Start(ctx, "mc.bfs")
	sp.Mark("mc.progress", Int("states", 42))
	sp.End()
	got, err := sess.DumpFlight("context canceled")
	if err != nil {
		t.Fatal(err)
	}
	if got != path {
		t.Fatalf("DumpFlight path = %q, want %q", got, path)
	}
	if again, err := sess.DumpFlight("second"); err != nil || again != "" {
		t.Fatalf("second DumpFlight = (%q, %v), want no-op", again, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"mc.progress"`) || !strings.Contains(string(data), `"mc.bfs"`) {
		t.Errorf("flight dump missing events:\n%s", data)
	}
	if !strings.Contains(string(data), `"type":"metrics"`) {
		t.Errorf("flight dump missing metrics trailer:\n%s", data)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReportRendersFlightDump feeds a flight dump through Report and
// checks the summary tree, mark counts, and metrics table come out.
func TestReportRendersFlightDump(t *testing.T) {
	rec := NewRecorder(16)
	rec.Metrics = fixedRegistry()
	epoch := time.Now()
	rec.SetEpoch(epoch)
	rec.Span(SpanData{ID: 2, Parent: 1, Name: "synth.cegis", Start: epoch, Duration: 2 * time.Millisecond})
	rec.Mark(SpanData{ID: 3, Parent: 1, Name: "mc.progress", Start: epoch})
	rec.Span(SpanData{ID: 1, Name: "engine.job", Start: epoch, Duration: 5 * time.Millisecond})
	var dump bytes.Buffer
	if err := rec.Dump(&dump, "sigint"); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := Report(&dump, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`flight dump: reason "sigint"`,
		"span tree:",
		"engine.job",
		"  synth.cegis", // nested under its parent via id-graph paths
		"engine.job/mc.progress ×1",
		"counters:",
		"mc.states",
		"histograms (count / mean / p50 / p95 / p99 / max):",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// TestReportRejectsGarbage: a corrupt line must fail the report, not be
// silently dropped.
func TestReportRejectsGarbage(t *testing.T) {
	in := strings.NewReader(`{"type":"span","name":"a","span":1,"t_ms":0}` + "\nnot json\n")
	if err := Report(in, io.Discard); err == nil {
		t.Fatal("Report accepted a corrupt line")
	}
}

// TestPprofPrivateMux is the regression test for the DefaultServeMux
// escape: two profiling servers in one process coexist on private muxes,
// both serve /debug/pprof/, and nothing is registered globally.
func TestPprofPrivateMux(t *testing.T) {
	ln1, err := servePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	ln2, err := servePprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("second pprof listener failed: %v", err)
	}
	defer ln2.Close()
	for _, ln := range []net.Listener{ln1, ln2} {
		for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
			resp, err := http.Get("http://" + ln.Addr().String() + path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || len(body) == 0 {
				t.Errorf("GET %s on %s = %d (%d bytes), want 200 with body",
					path, ln.Addr(), resp.StatusCode, len(body))
			}
		}
	}
	// The global mux must stay untouched: no package-level registration.
	req, _ := http.NewRequest("GET", "http://x/debug/pprof/", nil)
	if _, pattern := http.DefaultServeMux.Handler(req); pattern != "" {
		t.Errorf("DefaultServeMux serves /debug/pprof/ via pattern %q; private mux leaked", pattern)
	}
}

// TestDisabledSpanHotPathZeroAlloc guards the acceptance criterion that
// with no tracer installed (serving disabled), the span/mark hot path
// allocates nothing.
func TestDisabledSpanHotPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := Start(ctx, "synth.iteration")
		if sp != nil {
			sp.Mark("synth.round", Int("iteration", 1))
		}
		sp.End()
		_ = c2
	})
	if allocs != 0 {
		t.Errorf("disabled span hot path allocates %v per op, want 0", allocs)
	}
}

// TestDumpFlightConcurrent hammers DumpFlight from many goroutines: the
// dump-once CAS must let exactly one caller write the file, everyone
// else must no-op, and the race detector must stay quiet.
func TestDumpFlightConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.ndjson")
	sess, err := NewSession(Options{FlightPath: path, FlightEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := sess.Context(context.Background())
	func() {
		ctx, sp := Start(ctx, "work")
		defer sp.End()
		_, inner := Start(ctx, "inner")
		inner.End()
	}()

	const n = 16
	var wg sync.WaitGroup
	paths := make([]string, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			paths[i], errs[i] = sess.DumpFlight("concurrent dump")
		}(i)
	}
	wg.Wait()

	writers := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if paths[i] != "" {
			writers++
			if paths[i] != path {
				t.Fatalf("goroutine %d wrote to %q", i, paths[i])
			}
		}
	}
	if writers != 1 {
		t.Fatalf("%d goroutines claim to have written the dump, want exactly 1", writers)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"concurrent dump"`) {
		t.Fatalf("dump missing reason:\n%s", data)
	}
}
