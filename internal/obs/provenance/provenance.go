// Package provenance is the causal layer under the pipeline's telemetry:
// a structured, append-only run ledger that records, for every hole the
// engine solves, *why* the final expression is what it is — the concolic
// snippets that seeded the universe, each CEGIS iteration's candidate
// with the counterexample that killed it, each SMT concretization
// admitted, and the minimal witness set distinguishing the answer from
// the last rejected rival. Model-checker violations back-link to the
// records of every expression on the failing path.
//
// The ledger is assembled at the core layer in plan order from data the
// synthesizer already captures deterministically (synth.Stats.Trace), so
// it is byte-identical across worker counts and across cold/warm memo
// caches (the disk codec persists the trace; see DESIGN.md §16). A nil
// *Recorder is free: every method has a nil receiver no-op, and the
// assembly step is skipped entirely when no recorder is in the context.
package provenance

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"transit/internal/expr"
)

// Version identifies the ledger record schema.
const Version = 1

// Example-origin kinds. Updates are constrained by snippet cases; guards
// by the three §5.2 implication classes of their group's guard chain.
const (
	KindSnippet            = "snippet"                // update post from a concolic snippet case
	KindRequest            = "request"                // example supplied directly by a solve-job request
	KindGuardExcludesPre   = "guard-excludes-earlier" // earlier block's guard must exclude this one
	KindGuardCoversPre     = "guard-covers-own"       // guard must admit its own block's preconditions
	KindGuardExcludesLater = "guard-excludes-later"   // guard must exclude later blocks' preconditions
)

// Hole statuses.
const (
	StatusSolved        = "solved"
	StatusTrivial       = "trivial" // installed without a CEGIS solve (e.g. single-block guard)
	StatusUnrealizable  = "unrealizable"
	StatusInconsistent  = "inconsistent"
	StatusFailed        = "failed"
	StatusUnconstrained = "unconstrained" // no examples; default expression installed
)

// ExampleRecord is one concolic example admitted to a hole's universe,
// with its origin: for updates, the snippet case whose post-condition it
// encodes; for guards, which §5.2 implication class produced it.
type ExampleRecord struct {
	Index  int    `json:"index"`
	Kind   string `json:"kind"`
	Source string `json:"source,omitempty"` // snippet label or block key
	Case   int    `json:"case"`             // snippet case ordinal (updates), -1 otherwise
	Pre    string `json:"pre"`
	Post   string `json:"post"`
	Digest string `json:"digest"`
}

// IterationRecord is one CEGIS round: the proposed candidate and either
// its acceptance or the concolic example that killed it plus the
// concretization admitted in response. Only worker-count-deterministic
// counters appear here.
type IterationRecord struct {
	Round      int    `json:"round"`
	Candidate  string `json:"candidate"`
	Accepted   bool   `json:"accepted"`
	KilledBy   int    `json:"killed_by"` // example index, -1 when accepted
	Witness    string `json:"witness,omitempty"`
	CounterOut string `json:"counter_out,omitempty"` // concretized output pinned at Witness
	Enumerated int64  `json:"enumerated"`
	Kept       int64  `json:"kept"`
	Resumed    bool   `json:"resumed,omitempty"`
	Restarted  bool   `json:"restarted,omitempty"`
}

// WitnessRecord names one member of the minimal witness set: the
// examples (and, when present, the killer counterexample) that
// distinguish the final expression from the last rejected rival.
type WitnessRecord struct {
	Example        int    `json:"example"`
	Kind           string `json:"kind,omitempty"`
	Source         string `json:"source,omitempty"`
	Digest         string `json:"digest,omitempty"`
	Counterexample string `json:"counterexample,omitempty"` // "env ⊢ out" from the killing round
}

// HoleRecord is the full causal chain for one synthesized expression.
type HoleRecord struct {
	ID      int    `json:"id"`
	Label   string `json:"label"`
	Kind    string `json:"kind"` // guard | update
	Process string `json:"process"`
	From    string `json:"from"`
	Event   string `json:"event"` // efsm.Event.Key()
	To      string `json:"to,omitempty"`
	Block   string `json:"block,omitempty"` // efsm.Snippet.BlockKey()
	Target  string `json:"target"`          // variable being synthesized

	Examples   []ExampleRecord   `json:"examples"`
	Iterations []IterationRecord `json:"iterations"`

	Status    string          `json:"status"`
	Result    string          `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	Portfolio string          `json:"portfolio,omitempty"` // winning config when racing was on
	Witnesses []WitnessRecord `json:"witnesses"`
}

// StepRecord is one step of a violation trace with its provenance join
// key and the ledger IDs of every hole whose expression fired on it.
type StepRecord struct {
	Index   int    `json:"index"`
	Action  string `json:"action"`
	Process string `json:"process,omitempty"`
	PID     int    `json:"pid,omitempty"`
	From    string `json:"from,omitempty"`
	Event   string `json:"event,omitempty"`
	To      string `json:"to,omitempty"`
	Holes   []int  `json:"holes"`
}

// ViolationRecord back-links one model-checker violation to the ledger.
type ViolationRecord struct {
	Kind   string       `json:"kind"`
	Name   string       `json:"name"`
	Detail string       `json:"detail,omitempty"`
	Steps  []StepRecord `json:"steps"`
}

// Ledger is one run's complete record set.
type Ledger struct {
	Version    int                `json:"version"`
	Run        string             `json:"run,omitempty"`
	Holes      []*HoleRecord      `json:"holes"`
	Violations []*ViolationRecord `json:"violations,omitempty"`
}

// Digest is the short content address of a (pre, post) example pair used
// throughout the ledger: the first 12 hex digits of sha256(pre⇒post).
func Digest(pre, post string) string {
	sum := sha256.Sum256([]byte(pre + " => " + post))
	return hex.EncodeToString(sum[:])[:12]
}

// RenderEnv renders a valuation deterministically: "k=v" pairs joined by
// a single space, keys sorted.
func RenderEnv(env expr.Env) string {
	if len(env) == 0 {
		return ""
	}
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]byte, 0, 16*len(keys))
	for i, k := range keys {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, k...)
		out = append(out, '=')
		out = append(out, env[k].String()...)
	}
	return string(out)
}

// ComputeWitnesses fills h.Witnesses with the minimal set distinguishing
// the final expression from the last rejected rival:
//
//   - accepted on the first round: every example constrained the answer
//     equally, so the witness set is all of them;
//   - otherwise: the example that killed the last rival, annotated with
//     the counterexample (witness valuation ⊢ pinned output) admitted in
//     that round.
//
// Holes that never solved (or never ran CEGIS) get an empty set.
func ComputeWitnesses(h *HoleRecord) {
	h.Witnesses = []WitnessRecord{}
	if h.Status != StatusSolved || len(h.Iterations) == 0 {
		return
	}
	witness := func(exIdx int, counter string) WitnessRecord {
		w := WitnessRecord{Example: exIdx, Counterexample: counter}
		if exIdx >= 0 && exIdx < len(h.Examples) {
			ex := h.Examples[exIdx]
			w.Kind, w.Source, w.Digest = ex.Kind, ex.Source, ex.Digest
		}
		return w
	}
	if len(h.Iterations) == 1 {
		for i := range h.Examples {
			h.Witnesses = append(h.Witnesses, witness(i, ""))
		}
		return
	}
	last := h.Iterations[len(h.Iterations)-2]
	if last.KilledBy < 0 {
		// Defensive: a non-final round without a killer should not exist.
		for i := range h.Examples {
			h.Witnesses = append(h.Witnesses, witness(i, ""))
		}
		return
	}
	counter := last.Witness
	if last.CounterOut != "" {
		counter += " ⊢ " + last.CounterOut
	}
	h.Witnesses = append(h.Witnesses, witness(last.KilledBy, counter))
}

// Recorder accumulates one run's ledger. All methods are safe on a nil
// receiver (no-ops) and safe for concurrent use, though the core layer
// appends holes single-threaded in plan order to keep the ledger
// worker-count-deterministic.
type Recorder struct {
	mu     sync.Mutex
	ledger Ledger
}

// NewRecorder returns an empty recorder labelled with the run name.
func NewRecorder(run string) *Recorder {
	return &Recorder{ledger: Ledger{Version: Version, Run: run, Holes: []*HoleRecord{}}}
}

// AddHole appends a hole record, assigning its ledger ID, and computes
// its witness set.
func (r *Recorder) AddHole(h *HoleRecord) {
	if r == nil || h == nil {
		return
	}
	ComputeWitnesses(h)
	r.mu.Lock()
	h.ID = len(r.ledger.Holes)
	r.ledger.Holes = append(r.ledger.Holes, h)
	r.mu.Unlock()
}

// AddViolation appends a violation record, resolving each step's hole
// back-links by the (process, from state, event key) join against the
// holes recorded so far.
func (r *Recorder) AddViolation(v *ViolationRecord) {
	if r == nil || v == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range v.Steps {
		s := &v.Steps[i]
		s.Holes = []int{}
		if s.Process == "" || s.Event == "" {
			continue
		}
		for _, h := range r.ledger.Holes {
			if h.Process == s.Process && h.From == s.From && h.Event == s.Event {
				s.Holes = append(s.Holes, h.ID)
			}
		}
	}
	r.ledger.Violations = append(r.ledger.Violations, v)
}

// Ledger returns a snapshot of the accumulated ledger. The hole and
// violation records are shared, not copied; callers must treat them as
// read-only.
func (r *Recorder) Ledger() *Ledger {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.ledger
	l.Holes = append([]*HoleRecord(nil), r.ledger.Holes...)
	l.Violations = append([]*ViolationRecord(nil), r.ledger.Violations...)
	return &l
}

// Tail returns a compact ledger snapshot for the flight recorder: the
// run label, total hole count, the last n hole records, and every
// violation. Safe on a nil receiver.
func (r *Recorder) Tail(n int) any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	holes := r.ledger.Holes
	if len(holes) > n {
		holes = holes[len(holes)-n:]
	}
	return map[string]any{
		"version":     r.ledger.Version,
		"run":         r.ledger.Run,
		"holes_total": len(r.ledger.Holes),
		"tail":        append([]*HoleRecord(nil), holes...),
		"violations":  append([]*ViolationRecord(nil), r.ledger.Violations...),
	}
}

// Holes returns the number of holes recorded so far.
func (r *Recorder) Holes() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ledger.Holes)
}

type ctxKey struct{}

// WithRecorder attaches the recorder to the context; a nil recorder
// returns the context unchanged.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromCtx returns the recorder in the context, or nil.
func FromCtx(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}

// NDJSON line wrappers. The header line carries the version and run
// label; every subsequent line is one hole or violation record, so the
// file is greppable and jq-able without loading the whole ledger.
type lineHeader struct {
	Type    string `json:"type"`
	Version int    `json:"version"`
	Run     string `json:"run,omitempty"`
}

type lineHole struct {
	Type string `json:"type"`
	*HoleRecord
}

type lineViolation struct {
	Type string `json:"type"`
	*ViolationRecord
}

// WriteNDJSON writes the ledger as NDJSON: a header line, one line per
// hole in ID order, one line per violation. Output is deterministic for
// a deterministic ledger (encoding/json emits struct fields in order and
// all map-shaped data is pre-rendered to sorted strings).
func (l *Ledger) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(lineHeader{Type: "provenance", Version: l.Version, Run: l.Run}); err != nil {
		return err
	}
	for _, h := range l.Holes {
		if err := enc.Encode(lineHole{Type: "hole", HoleRecord: h}); err != nil {
			return err
		}
	}
	for _, v := range l.Violations {
		if err := enc.Encode(lineViolation{Type: "violation", ViolationRecord: v}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a ledger previously written by WriteNDJSON.
func Read(r io.Reader) (*Ledger, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	l := &Ledger{Holes: []*HoleRecord{}}
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("provenance: bad ledger line: %w", err)
		}
		switch probe.Type {
		case "provenance":
			var hd lineHeader
			if err := json.Unmarshal(line, &hd); err != nil {
				return nil, err
			}
			l.Version, l.Run = hd.Version, hd.Run
		case "hole":
			var h HoleRecord
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, err
			}
			l.Holes = append(l.Holes, &h)
		case "violation":
			var v ViolationRecord
			if err := json.Unmarshal(line, &v); err != nil {
				return nil, err
			}
			l.Violations = append(l.Violations, &v)
		default:
			if first {
				return nil, fmt.Errorf("provenance: not a ledger (first line type %q)", probe.Type)
			}
			// Ignore foreign lines (e.g. a ledger embedded in a flight dump).
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// Hole returns the record with the given ID, or nil.
func (l *Ledger) Hole(id int) *HoleRecord {
	for _, h := range l.Holes {
		if h.ID == id {
			return h
		}
	}
	return nil
}

// FindHoles returns records whose label contains the query (exact ID
// match when the query parses as an integer is the caller's concern).
func (l *Ledger) FindHoles(query string) []*HoleRecord {
	var out []*HoleRecord
	for _, h := range l.Holes {
		if query == "" || containsFold(h.Label, query) || containsFold(h.Target, query) {
			out = append(out, h)
		}
	}
	return out
}

func containsFold(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	if len(sub) > len(s) {
		return false
	}
	lower := func(b byte) byte {
		if 'A' <= b && b <= 'Z' {
			return b + 'a' - 'A'
		}
		return b
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := 0; j < len(sub); j++ {
			if lower(s[i+j]) != lower(sub[j]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
