package provenance

import "transit/internal/synth"

// TraceIterations converts a synthesizer CEGIS trace into ledger
// iteration records. The trace is deterministic for a given problem
// (DESIGN.md §16) and is persisted by the memo codec, so cold solves and
// cache replays convert to identical records. Shared by the core
// completion planner and the job server's direct-solve path.
func TraceIterations(trace []synth.IterRecord) []IterationRecord {
	out := make([]IterationRecord, 0, len(trace))
	for i, it := range trace {
		ir := IterationRecord{
			Round:      i + 1,
			Candidate:  it.Candidate.String(),
			Accepted:   it.KilledBy < 0,
			KilledBy:   it.KilledBy,
			Enumerated: it.Enumerated,
			Kept:       it.Kept,
			Resumed:    it.Resumed,
			Restarted:  it.Restarted,
		}
		if it.Witness != nil {
			ir.Witness = RenderEnv(it.Witness)
		}
		if it.NewExample != nil {
			ir.CounterOut = it.NewExample.Out.String()
		}
		out = append(out, ir)
	}
	return out
}
