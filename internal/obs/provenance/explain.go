package provenance

import (
	"fmt"
	"io"
	"strconv"
)

// ExplainOptions selects what Explain renders. Zero value renders the
// whole ledger: a run summary, every hole's why-tree, and every
// violation's back-linked trace.
type ExplainOptions struct {
	// Hole restricts output to one hole: a ledger ID when it parses as
	// an integer, otherwise a case-insensitive substring of the label.
	Hole string
	// Violations restricts output to the violation section.
	Violations bool
}

// Explain renders a ledger as a human-readable "why" tree. The output
// is purely a function of the ledger contents, so it inherits the
// ledger's determinism guarantees (byte-identical across worker counts
// and cache temperature; see DESIGN.md §16).
func Explain(w io.Writer, l *Ledger, opts ExplainOptions) error {
	if opts.Hole != "" {
		holes := selectHoles(l, opts.Hole)
		if len(holes) == 0 {
			return fmt.Errorf("no hole matches %q", opts.Hole)
		}
		for _, h := range holes {
			explainHole(w, h)
		}
		return nil
	}
	if opts.Violations {
		if len(l.Violations) == 0 {
			fmt.Fprintln(w, "no violations recorded")
			return nil
		}
		for _, v := range l.Violations {
			explainViolation(w, l, v)
		}
		return nil
	}

	fmt.Fprintf(w, "provenance ledger v%d", l.Version)
	if l.Run != "" {
		fmt.Fprintf(w, "  run=%s", l.Run)
	}
	solved := 0
	for _, h := range l.Holes {
		if h.Status == StatusSolved {
			solved++
		}
	}
	fmt.Fprintf(w, "  holes=%d solved=%d violations=%d\n\n", len(l.Holes), solved, len(l.Violations))
	for _, h := range l.Holes {
		explainHole(w, h)
	}
	for _, v := range l.Violations {
		explainViolation(w, l, v)
	}
	return nil
}

func selectHoles(l *Ledger, query string) []*HoleRecord {
	if id, err := strconv.Atoi(query); err == nil {
		if h := l.Hole(id); h != nil {
			return []*HoleRecord{h}
		}
		return nil
	}
	return l.FindHoles(query)
}

func explainHole(w io.Writer, h *HoleRecord) {
	fmt.Fprintf(w, "hole #%d  %s\n", h.ID, h.Label)
	fmt.Fprintf(w, "├─ where: %s %s(%s, %s)", h.Kind, h.Process, h.From, h.Event)
	if h.To != "" {
		fmt.Fprintf(w, " -> %s", h.To)
	}
	fmt.Fprintf(w, "  target %s\n", h.Target)
	switch h.Status {
	case StatusSolved:
		fmt.Fprintf(w, "├─ result: %s\n", h.Result)
	case StatusTrivial:
		fmt.Fprintf(w, "├─ result: %s  (installed without search)\n", h.Result)
	case StatusUnconstrained:
		fmt.Fprintf(w, "├─ result: %s  (no examples constrained this hole)\n", h.Result)
	default:
		fmt.Fprintf(w, "├─ FAILED (%s): %s\n", h.Status, h.Error)
	}
	if h.Portfolio != "" {
		fmt.Fprintf(w, "├─ portfolio winner: %s\n", h.Portfolio)
	}

	if len(h.Examples) > 0 {
		fmt.Fprintf(w, "├─ examples (%d):\n", len(h.Examples))
		for _, ex := range h.Examples {
			src := ex.Source
			if src == "" {
				src = "-"
			}
			caseNote := ""
			if ex.Kind == KindSnippet && ex.Case >= 0 {
				caseNote = fmt.Sprintf(" case %d", ex.Case)
			}
			fmt.Fprintf(w, "│    [%d] %s %s%s  #%s\n", ex.Index, ex.Kind, src, caseNote, ex.Digest)
			fmt.Fprintf(w, "│        pre:  %s\n", ex.Pre)
			fmt.Fprintf(w, "│        post: %s\n", ex.Post)
		}
	}

	if len(h.Iterations) > 0 {
		fmt.Fprintf(w, "├─ CEGIS (%d rounds):\n", len(h.Iterations))
		for _, it := range h.Iterations {
			mode := ""
			if it.Resumed {
				mode = " [bank-resume]"
			}
			if it.Restarted {
				mode += " [restarted]"
			}
			if it.Accepted {
				fmt.Fprintf(w, "│    round %d: %s  ACCEPTED%s (enumerated %d, kept %d)\n",
					it.Round, it.Candidate, mode, it.Enumerated, it.Kept)
				continue
			}
			fmt.Fprintf(w, "│    round %d: %s  rejected by example %d%s (enumerated %d, kept %d)\n",
				it.Round, it.Candidate, it.KilledBy, mode, it.Enumerated, it.Kept)
			if it.Witness != "" {
				fmt.Fprintf(w, "│        witness: %s\n", it.Witness)
			}
			if it.CounterOut != "" {
				fmt.Fprintf(w, "│        admitted concretization: output %s\n", it.CounterOut)
			}
		}
	}

	if len(h.Witnesses) > 0 {
		fmt.Fprintf(w, "└─ witness set (distinguishes the answer from the last rival):\n")
		for _, ws := range h.Witnesses {
			src := ws.Source
			if src == "" {
				src = "-"
			}
			fmt.Fprintf(w, "     example %d (%s %s #%s)", ws.Example, ws.Kind, src, ws.Digest)
			if ws.Counterexample != "" {
				fmt.Fprintf(w, "  counterexample: %s", ws.Counterexample)
			}
			fmt.Fprintln(w)
		}
	} else {
		fmt.Fprintf(w, "└─ witness set: (none)\n")
	}
	fmt.Fprintln(w)
}

func explainViolation(w io.Writer, l *Ledger, v *ViolationRecord) {
	fmt.Fprintf(w, "violation: %s %s\n", v.Kind, v.Name)
	if v.Detail != "" {
		fmt.Fprintf(w, "├─ %s\n", v.Detail)
	}
	for _, s := range v.Steps {
		fmt.Fprintf(w, "├─ step %d: %s\n", s.Index, s.Action)
		if len(s.Holes) == 0 {
			continue
		}
		for _, id := range s.Holes {
			if h := l.Hole(id); h != nil {
				fmt.Fprintf(w, "│    └─ hole #%d %s  (%s)\n", id, h.Label, h.Status)
			} else {
				fmt.Fprintf(w, "│    └─ hole #%d\n", id)
			}
		}
	}
	fmt.Fprintf(w, "└─ %d steps, re-run `obs explain -hole N` for any linked hole\n\n", len(v.Steps))
}
