// Package serve is the live introspection server: while synthesis or
// model checking runs, it exposes Prometheus metrics (/metrics), a JSON
// variable snapshot (/vars), the active engine jobs with live gauges
// (/runs), a server-sent-events stream of trace spans (/trace/live), an
// on-demand flight-recorder dump (/flight), and the Go profilers
// (/debug/pprof/) on one address, so a stuck CEGIS round or a blown-up
// BFS frontier can be watched — and profiled — without restarting the
// run. The server attaches to the obs layer as two extra exporters (the
// SSE broadcaster and the live-gauge aggregator); with no server
// configured neither exists and the span hot path is untouched.
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"transit/internal/obs"
)

// sseBuffer is each subscriber's channel depth; a subscriber that falls
// further behind than this loses events (counted, never blocking the
// span hot path).
const sseBuffer = 256

type subscriber struct {
	ch      chan []byte
	dropped atomic.Int64
}

// Broadcast fans finished spans and marks out to any number of SSE
// subscribers as NDJSON-schema lines. It implements obs.Exporter; span
// closes happen on every worker goroutine, so delivery is non-blocking:
// a slow or stalled HTTP client drops events rather than stalling the
// pipeline.
type Broadcast struct {
	mu     sync.Mutex
	epoch  time.Time
	nextID int
	subs   map[int]*subscriber
}

// NewBroadcast builds an empty broadcaster (epoch now until the session
// aligns it).
func NewBroadcast() *Broadcast {
	return &Broadcast{epoch: time.Now(), subs: map[int]*subscriber{}}
}

// SetEpoch aligns streamed t_ms timestamps with the tracer's clock.
func (b *Broadcast) SetEpoch(t time.Time) { b.epoch = t }

// Subscribe registers a new consumer. The returned cancel must be called
// when the consumer goes away; the channel is closed by cancel.
func (b *Broadcast) Subscribe() (<-chan []byte, func()) {
	s := &subscriber{ch: make(chan []byte, sseBuffer)}
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.subs[id] = s
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(s.ch)
		}
		b.mu.Unlock()
	}
	return s.ch, cancel
}

// Subscribers reports the current consumer count (for /vars).
func (b *Broadcast) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

func (b *Broadcast) send(typ string, d obs.SpanData) {
	b.mu.Lock()
	if len(b.subs) == 0 {
		b.mu.Unlock()
		return
	}
	line, err := obs.MarshalRecord(typ, d, b.epoch)
	if err != nil {
		b.mu.Unlock()
		return
	}
	for _, s := range b.subs {
		select {
		case s.ch <- line:
		default:
			s.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// Publish fans a pre-marshaled NDJSON line out to every subscriber,
// letting layers above the tracer (the job server's per-job event buses)
// inject their own records into the same streams. Delivery follows the
// span rules: non-blocking, slow subscribers drop.
func (b *Broadcast) Publish(line []byte) {
	b.mu.Lock()
	for _, s := range b.subs {
		select {
		case s.ch <- line:
		default:
			s.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// Span implements obs.Exporter.
func (b *Broadcast) Span(d obs.SpanData) { b.send("span", d) }

// Mark implements obs.Exporter.
func (b *Broadcast) Mark(d obs.SpanData) { b.send("mark", d) }

// Flush implements obs.Exporter (streaming has nothing to finalize).
func (b *Broadcast) Flush() error { return nil }
