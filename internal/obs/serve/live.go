package serve

import (
	"sync"
	"time"

	"transit/internal/obs"
)

// MCLive is the model checker's live gauge set, fed by mc.progress
// heartbeat marks and finalized by the closing mc.bfs span.
type MCLive struct {
	States       int64   `json:"states"`
	Transitions  int64   `json:"transitions"`
	Queue        int64   `json:"queue"`
	Depth        int64   `json:"depth"`
	StatesPerSec float64 `json:"states_per_sec"`
	// FrontierDepth is the BFS depth the frontier workers are expanding
	// right now (heartbeats) or finished at (final span).
	FrontierDepth int64 `json:"frontier_depth"`
	// CanonicalStates and ReductionFactor describe symmetry reduction on
	// the finished check: canonical representatives explored and the mean
	// PID-orbit size each one stands for (1.0 when reduction was off).
	CanonicalStates int64   `json:"canonical_states"`
	ReductionFactor float64 `json:"reduction_factor"`
	Done            bool    `json:"done"`
	UpdatedMS       float64 `json:"updated_ms"`
}

// SynthLive is one display track's (engine worker's) live synthesis
// gauges: the CEGIS round in flight (synth.round marks) and the
// enumeration tier it is grinding through (synth.tier marks).
type SynthLive struct {
	Track            int     `json:"track"`
	Iteration        int64   `json:"cegis_iteration"`
	ConcreteExamples int64   `json:"concrete_examples"`
	Tier             int64   `json:"tier"`
	Enumerated       int64   `json:"candidates"`
	UpdatedMS        float64 `json:"updated_ms"`
}

// Live aggregates the instant marks and span closes that matter for the
// /runs view into a point-in-time gauge set. It implements obs.Exporter
// and keeps O(workers) state: per-track synthesis gauges plus one model
// checker entry.
type Live struct {
	mu     sync.Mutex
	epoch  time.Time
	mc     *MCLive
	tracks map[int]*SynthLive
}

// NewLive builds an empty aggregator.
func NewLive() *Live {
	return &Live{epoch: time.Now(), tracks: map[int]*SynthLive{}}
}

// SetEpoch aligns UpdatedMS timestamps with the tracer's clock.
func (l *Live) SetEpoch(t time.Time) { l.epoch = t }

func attrInt(attrs []obs.Attr, key string) (int64, bool) {
	for _, a := range attrs {
		if a.Key == key {
			if v, ok := a.Value.(int64); ok {
				return v, true
			}
		}
	}
	return 0, false
}

func attrFloat(attrs []obs.Attr, key string) (float64, bool) {
	for _, a := range attrs {
		if a.Key == key {
			if v, ok := a.Value.(float64); ok {
				return v, true
			}
		}
	}
	return 0, false
}

func (l *Live) track(n int) *SynthLive {
	t := l.tracks[n]
	if t == nil {
		t = &SynthLive{Track: n}
		l.tracks[n] = t
	}
	return t
}

func (l *Live) now(start time.Time) float64 {
	return float64(start.Sub(l.epoch)) / float64(time.Millisecond)
}

// Mark implements obs.Exporter: mc.progress feeds the model-checker
// gauges, synth.round and synth.tier the per-track synthesis gauges.
func (l *Live) Mark(d obs.SpanData) {
	switch d.Name {
	case "mc.progress":
		l.mu.Lock()
		mc := &MCLive{UpdatedMS: l.now(d.Start)}
		mc.States, _ = attrInt(d.Attrs, "states")
		mc.Transitions, _ = attrInt(d.Attrs, "transitions")
		mc.Queue, _ = attrInt(d.Attrs, "queue")
		mc.Depth, _ = attrInt(d.Attrs, "depth")
		mc.StatesPerSec, _ = attrFloat(d.Attrs, "states_per_sec")
		mc.FrontierDepth, _ = attrInt(d.Attrs, "frontier_depth")
		l.mc = mc
		l.mu.Unlock()
	case "synth.round":
		l.mu.Lock()
		t := l.track(d.Track)
		t.Iteration, _ = attrInt(d.Attrs, "iteration")
		t.ConcreteExamples, _ = attrInt(d.Attrs, "concrete_examples")
		t.Tier, t.Enumerated = 0, 0 // a new round restarts the tier climb
		t.UpdatedMS = l.now(d.Start)
		l.mu.Unlock()
	case "synth.tier":
		l.mu.Lock()
		t := l.track(d.Track)
		t.Tier, _ = attrInt(d.Attrs, "size")
		t.Enumerated, _ = attrInt(d.Attrs, "enumerated")
		t.UpdatedMS = l.now(d.Start)
		l.mu.Unlock()
	}
}

// Span implements obs.Exporter: a closing engine.job retires its track's
// gauges, a closing mc.bfs marks the checker done with final totals.
func (l *Live) Span(d obs.SpanData) {
	switch d.Name {
	case "engine.job":
		l.mu.Lock()
		delete(l.tracks, d.Track)
		l.mu.Unlock()
	case "mc.bfs":
		l.mu.Lock()
		mc := &MCLive{Done: true, UpdatedMS: l.now(d.Start.Add(d.Duration))}
		mc.States, _ = attrInt(d.Attrs, "states")
		mc.Transitions, _ = attrInt(d.Attrs, "transitions")
		mc.Depth, _ = attrInt(d.Attrs, "depth")
		mc.StatesPerSec, _ = attrFloat(d.Attrs, "states_per_sec")
		mc.FrontierDepth = mc.Depth
		mc.CanonicalStates, _ = attrInt(d.Attrs, "canonical_states")
		mc.ReductionFactor, _ = attrFloat(d.Attrs, "reduction_factor")
		l.mc = mc
		l.mu.Unlock()
	}
}

// Flush implements obs.Exporter (nothing to finalize).
func (l *Live) Flush() error { return nil }

// Snapshot copies the current gauges: the model checker entry (nil if no
// check ran yet) and the per-track synthesis entries sorted by track.
func (l *Live) Snapshot() (*MCLive, []SynthLive) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var mc *MCLive
	if l.mc != nil {
		c := *l.mc
		mc = &c
	}
	tracks := make([]SynthLive, 0, len(l.tracks))
	for _, t := range l.tracks {
		tracks = append(tracks, *t)
	}
	for i := 1; i < len(tracks); i++ {
		for j := i; j > 0 && tracks[j-1].Track > tracks[j].Track; j-- {
			tracks[j-1], tracks[j] = tracks[j], tracks[j-1]
		}
	}
	return mc, tracks
}
