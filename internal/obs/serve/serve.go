package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"transit/internal/engine"
	"transit/internal/obs"
)

// Server is the live introspection endpoint for one process. Create it
// before the obs.Session (its Exporters must join the tracer fan-out),
// Attach the session's registry and recorder, then Start.
//
//	srv := serve.New(addr)
//	sess, _ := obs.NewSession(obs.Options{Extra: srv.Exporters(), ...})
//	srv.Attach(sess)
//	srv.Start()
//	defer srv.Close()
type Server struct {
	addr      string
	broadcast *Broadcast
	live      *Live

	// Registry backs /metrics and /vars; Recorder backs /flight. Both
	// are attached from the session (nil is tolerated: the endpoints
	// degrade to empty output / 404).
	Registry *obs.Registry
	Recorder *obs.Recorder

	// Ready backs /readyz: nil (or a nil return) means ready, an error
	// means 503 with the reason in the body. The process composes it from
	// whatever defines "can do useful work" — the job server's admission
	// state, the disk cache's writability. Set before Start.
	Ready func() error

	// Provenance backs the "provenance" section of /runs: per-job ledger
	// summaries from the job server. Nil omits the section. Set before
	// Start.
	Provenance func() any

	started time.Time
	ln      net.Listener
	srv     *http.Server
	extra   []route
}

type route struct {
	pattern string
	handler http.Handler
}

// Handle mounts an additional handler on the server's mux. It must be
// called before Start; patterns use net/http ServeMux syntax (method and
// wildcard patterns included). The job server mounts its /v1/ API this
// way so one address serves both the job API and the introspection
// endpoints.
func (s *Server) Handle(pattern string, handler http.Handler) {
	s.extra = append(s.extra, route{pattern, handler})
}

// New builds an unstarted server for addr (host:port; ":0" picks a free
// port, reported by Addr after Start).
func New(addr string) *Server {
	return &Server{addr: addr, broadcast: NewBroadcast(), live: NewLive()}
}

// Exporters returns the exporters the server feeds on — pass them as
// obs.Options.Extra when building the session.
func (s *Server) Exporters() []obs.Exporter {
	return []obs.Exporter{s.broadcast, s.live}
}

// Attach wires the session's registry and flight recorder into the
// /metrics, /vars, and /flight endpoints.
func (s *Server) Attach(sess *obs.Session) {
	s.Registry = sess.Metrics
	s.Recorder = sess.Recorder
}

// Start binds the address and serves in a background goroutine.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("obs serve: %w", err)
	}
	s.ln = ln
	s.started = time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/vars", s.handleVars)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/trace/live", s.handleTraceLive)
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/debug/pprof/", obs.NewPprofMux())
	for _, rt := range s.extra {
		mux.Handle(rt.pattern, rt.handler)
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Addr reports the bound address (empty before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener; in-flight SSE streams end when their clients
// notice.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `transit live introspection (pid %d)

  /metrics      Prometheus text exposition (counters + latency histograms)
  /vars         JSON metrics snapshot + runtime stats
  /runs         active engine jobs and live synthesis / model-check gauges
  /trace/live   trace spans and marks as server-sent events (NDJSON payloads)
  /flight       current flight-recorder ring as an NDJSON dump
  /healthz      liveness: 200 while the process serves HTTP
  /readyz       readiness: 200 when work is admitted, 503 with a reason otherwise
  /debug/pprof/ Go profilers
`, os.Getpid())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(s.Registry.Snapshot(), w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	writeJSON(w, struct {
		PID         int          `json:"pid"`
		UptimeMS    float64      `json:"uptime_ms"`
		Goroutines  int          `json:"goroutines"`
		GOMAXPROCS  int          `json:"gomaxprocs"`
		HeapAlloc   uint64       `json:"heap_alloc"`
		NumGC       uint32       `json:"num_gc"`
		Subscribers int          `json:"trace_subscribers"`
		Metrics     obs.Snapshot `json:"metrics"`
	}{
		PID:         os.Getpid(),
		UptimeMS:    float64(time.Since(s.started)) / float64(time.Millisecond),
		Goroutines:  runtime.NumGoroutine(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		HeapAlloc:   mem.HeapAlloc,
		NumGC:       mem.NumGC,
		Subscribers: s.broadcast.Subscribers(),
		Metrics:     s.Registry.Snapshot(),
	})
}

// RunsSnapshot is the /runs response: the engine's in-flight runs with
// their active jobs, the model checker's latest heartbeat, the
// per-worker live synthesis gauges, and (under a job server) the per-job
// provenance summaries.
type RunsSnapshot struct {
	Engine     []engine.RunStatus `json:"engine"`
	MC         *MCLive            `json:"mc,omitempty"`
	Synth      []SynthLive        `json:"synth,omitempty"`
	Provenance any                `json:"provenance,omitempty"`
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	mc, tracks := s.live.Snapshot()
	runs := engine.ActiveRuns()
	if runs == nil {
		runs = []engine.RunStatus{}
	}
	snap := RunsSnapshot{Engine: runs, MC: mc, Synth: tracks}
	if s.Provenance != nil {
		snap.Provenance = s.Provenance()
	}
	writeJSON(w, snap)
}

// handleHealthz is pure liveness: if this handler runs, the process is
// alive and serving HTTP. Readiness lives at /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers 200 when the process can take on new work and
// 503 (with the reason) when it cannot — draining, saturated queue,
// unwritable cache directory. With no Ready hook, serving HTTP is the
// only requirement, so it reports ready.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Ready != nil {
		if err := s.Ready(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "not ready: %v\n", err)
			return
		}
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleTraceLive(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	ch, cancel := s.broadcast.Subscribe()
	defer cancel()
	fmt.Fprintf(w, ": transit live trace, NDJSON span/mark payloads\n\n")
	fl.Flush()
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case line, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", line)
			fl.Flush()
		case <-keepalive.C:
			fmt.Fprintf(w, ": keepalive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.Recorder == nil {
		http.Error(w, "flight recorder not armed", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.Recorder.Dump(w, "http request")
}
