package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"transit/internal/obs"
)

// startServer stands up a full session+server pair on a loopback port,
// the way the CLIs wire them.
func startServer(t *testing.T) (*Server, *obs.Session, context.Context) {
	t.Helper()
	srv := New("127.0.0.1:0")
	sess, err := obs.NewSession(obs.Options{
		Metrics:      true,
		FlightPath:   "unused",
		FlightEvents: 64,
		Extra:        srv.Exporters(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Attach(sess)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, sess, sess.Context(context.Background())
}

func get(t *testing.T, srv *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	srv, sess, _ := startServer(t)
	sess.Metrics.Counter("mc.states").Add(99)
	sess.Metrics.Histogram("smt.solve_ms").Observe(3 * time.Millisecond)
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE transit_mc_states counter",
		"transit_mc_states 99",
		"# TYPE transit_smt_solve_ms histogram",
		`transit_smt_solve_ms_bucket{le="+Inf"} 1`,
		"transit_smt_solve_ms_p95",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestVarsEndpoint(t *testing.T) {
	srv, sess, _ := startServer(t)
	sess.Metrics.Counter("synth.solves").Add(5)
	code, body := get(t, srv, "/vars")
	if code != http.StatusOK {
		t.Fatalf("/vars = %d", code)
	}
	var v struct {
		PID        int `json:"pid"`
		Goroutines int `json:"goroutines"`
		Metrics    struct {
			Counters []struct {
				Name  string `json:"name"`
				Value int64  `json:"value"`
			} `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/vars not JSON: %v\n%s", err, body)
	}
	if v.PID == 0 || v.Goroutines == 0 {
		t.Errorf("/vars runtime stats empty: %+v", v)
	}
	found := false
	for _, c := range v.Metrics.Counters {
		if c.Name == "synth.solves" && c.Value == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("/vars missing synth.solves counter:\n%s", body)
	}
}

// TestRunsEndpoint drives the live aggregator with the marks the real
// pipeline emits and checks the /runs JSON carries the gauges, including
// the states/sec rate.
func TestRunsEndpoint(t *testing.T) {
	srv, _, ctx := startServer(t)
	_, sp := obs.Start(obs.WithTrack(ctx, 2), "synth.cegis")
	sp.Mark("synth.round", obs.Int("iteration", 3), obs.Int("concrete_examples", 7))
	sp.Mark("synth.tier", obs.Int("size", 4), obs.Int64("enumerated", 1500))
	sp.Mark("mc.progress", obs.Int64("states", 4096), obs.Int64("transitions", 9000),
		obs.Int64("queue", 12), obs.Int64("depth", 5), obs.Float("states_per_sec", 2048.5),
		obs.Int64("frontier_depth", 5))
	code, body := get(t, srv, "/runs")
	if code != http.StatusOK {
		t.Fatalf("/runs = %d", code)
	}
	var v RunsSnapshot
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/runs not JSON: %v\n%s", err, body)
	}
	if v.MC == nil || v.MC.States != 4096 || v.MC.StatesPerSec != 2048.5 || v.MC.Done ||
		v.MC.FrontierDepth != 5 {
		t.Errorf("/runs mc gauges = %+v", v.MC)
	}
	if len(v.Synth) != 1 || v.Synth[0].Track != 2 || v.Synth[0].Iteration != 3 ||
		v.Synth[0].Tier != 4 || v.Synth[0].Enumerated != 1500 {
		t.Errorf("/runs synth gauges = %+v", v.Synth)
	}
	if v.Engine == nil {
		t.Error("/runs engine list is null, want [] when idle")
	}
	sp.End()

	// A closing mc.bfs span flips the checker to done with final totals.
	_, bfs := obs.Start(ctx, "mc.bfs")
	bfs.SetAttr(obs.Int64("states", 5000), obs.Int64("transitions", 11000),
		obs.Int64("depth", 6), obs.Float("states_per_sec", 1000),
		obs.Int64("canonical_states", 5000), obs.Float("reduction_factor", 23.9))
	bfs.End()
	_, body = get(t, srv, "/runs")
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.MC == nil || !v.MC.Done || v.MC.States != 5000 ||
		v.MC.CanonicalStates != 5000 || v.MC.ReductionFactor != 23.9 {
		t.Errorf("/runs mc after bfs close = %+v", v.MC)
	}
}

// TestTraceLiveSSE subscribes to the live stream and checks a span close
// arrives as a well-formed SSE data frame holding an NDJSON record.
func TestTraceLiveSSE(t *testing.T) {
	srv, _, ctx := startServer(t)
	req, _ := http.NewRequest("GET", "http://"+srv.Addr()+"/trace/live", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Wait for the subscription to land before emitting the span.
	deadline := time.Now().Add(2 * time.Second)
	for srv.broadcast.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	_, sp := obs.Start(ctx, "smt.solve")
	sp.End()

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	timeout := time.After(5 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before span arrived")
			}
			if !strings.HasPrefix(line, "data: ") {
				continue // comments, blank separators
			}
			var rec struct {
				Type string `json:"type"`
				Name string `json:"name"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec); err != nil {
				t.Fatalf("SSE payload not JSON: %v (%q)", err, line)
			}
			if rec.Type == "span" && rec.Name == "smt.solve" {
				return // success
			}
		case <-timeout:
			t.Fatal("span never arrived on /trace/live")
		}
	}
}

func TestFlightEndpoint(t *testing.T) {
	srv, _, ctx := startServer(t)
	_, sp := obs.Start(ctx, "engine.run")
	sp.End()
	code, body := get(t, srv, "/flight")
	if code != http.StatusOK {
		t.Fatalf("/flight = %d", code)
	}
	first := strings.SplitN(body, "\n", 2)[0]
	var h struct {
		Type   string `json:"type"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal([]byte(first), &h); err != nil || h.Type != "flight" {
		t.Fatalf("/flight header = %q (err %v)", first, err)
	}
	if !strings.Contains(body, `"engine.run"`) {
		t.Errorf("/flight missing recorded span:\n%s", body)
	}

	// Without a recorder the endpoint 404s instead of panicking.
	bare := New("127.0.0.1:0")
	if err := bare.Start(); err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if code, _ := get(t, bare, "/flight"); code != http.StatusNotFound {
		t.Errorf("/flight without recorder = %d, want 404", code)
	}
}

func TestPprofMounted(t *testing.T) {
	srv, _, _ := startServer(t)
	code, body := get(t, srv, "/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/goroutine = %d:\n%.200s", code, body)
	}
}

// TestBroadcastConcurrent is the race-mode stress: concurrent span
// closes (the EnumWorkers shape) against subscribers that come and go,
// including slow ones that force the drop path.
func TestBroadcastConcurrent(t *testing.T) {
	b := NewBroadcast()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Churning subscribers: subscribe, drain a little, cancel.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ch, cancel := b.Subscribe()
				for j := 0; j < 10; j++ {
					select {
					case <-ch:
					case <-time.After(time.Millisecond):
					}
				}
				cancel()
			}
		}()
	}
	// One stalled subscriber that never reads: exercises the drop path.
	_, cancelStalled := b.Subscribe()
	defer cancelStalled()

	// Producers: concurrent span closes and marks.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.Span(obs.SpanData{ID: uint64(g*100000 + i), Name: "synth.size",
					Start: time.Now(), Duration: time.Microsecond})
				b.Mark(obs.SpanData{ID: uint64(g*100000 + i), Name: "mc.progress",
					Start: time.Now(), Attrs: []obs.Attr{obs.Int64("states", int64(i))}})
			}
		}(g)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := b.Subscribers(); n != 1 {
		t.Errorf("subscribers after churn = %d, want 1 (the stalled one)", n)
	}
}

// TestLiveConcurrent races the live aggregator: marks from many tracks
// against snapshots.
func TestLiveConcurrent(t *testing.T) {
	l := NewLive()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Mark(obs.SpanData{Name: "synth.round", Track: g,
					Attrs: []obs.Attr{obs.Int("iteration", i)}, Start: time.Now()})
				l.Mark(obs.SpanData{Name: "mc.progress",
					Attrs: []obs.Attr{obs.Int64("states", int64(i))}, Start: time.Now()})
				if i%50 == 0 {
					l.Span(obs.SpanData{Name: "engine.job", Track: g, Start: time.Now()})
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			mc, _ := l.Snapshot()
			if mc == nil {
				t.Error("no mc gauges after concurrent marks")
			}
			return
		default:
			l.Snapshot()
		}
	}
}

func TestIndex(t *testing.T) {
	srv, _, _ := startServer(t)
	code, body := get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "/trace/live") {
		t.Errorf("index = %d:\n%s", code, body)
	}
	if code, _ := get(t, srv, "/nonexistent"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}
