package serve

import (
	"errors"
	"net/http"
	"strings"
	"testing"
)

func TestHealthzAlwaysOK(t *testing.T) {
	srv, _, _ := startServer(t)
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestReadyzWithoutHook(t *testing.T) {
	srv, _, _ := startServer(t)
	code, body := get(t, srv, "/readyz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ready" {
		t.Fatalf("/readyz = %d %q", code, body)
	}
}

func TestReadyzReportsHook(t *testing.T) {
	srv := New("127.0.0.1:0")
	ready := error(nil)
	srv.Ready = func() error { return ready }
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	if code, _ := get(t, srv, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz while ready = %d", code)
	}
	ready = errors.New("admission queue saturated (64/64)")
	code, body := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while unready = %d", code)
	}
	if !strings.Contains(body, "admission queue saturated") {
		t.Fatalf("/readyz body hides the reason: %q", body)
	}
	// Liveness is unaffected by readiness: the process still serves.
	if code, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while unready = %d", code)
	}
}
