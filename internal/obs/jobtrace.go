package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file is the job-trace layer the serving path builds on: W3C-style
// trace IDs parsed from request headers (or generated), a span tree
// assembled from a per-job flight-recorder ring, the JSON wire form
// served by GET /v1/jobs/{id}/trace, its Perfetto rendering, and the
// offline `transit obs report -job` renderer.

// NewTraceID returns a fresh random 16-byte trace ID as 32 lowercase hex
// characters — the W3C trace-context trace-id format.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the platforms we run on; fall back to
		// a fixed-but-valid ID rather than panicking in a request handler.
		return "00000000000000000000000000000001"
	}
	id := hex.EncodeToString(b[:])
	if id == strings.Repeat("0", 32) {
		id = "00000000000000000000000000000001"
	}
	return id
}

// isHex reports whether s is non-empty lowercase-insensitive hex.
func isHex(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f', r >= 'A' && r <= 'F':
		default:
			return false
		}
	}
	return true
}

// ParseTraceHeader extracts a trace ID from a client-supplied header
// value: either a bare hex token (the X-Transit-Trace convention, up to
// 32 chars) or a W3C traceparent ("00-<32 hex>-<16 hex>-<2 hex>"). The
// returned ID is canonical lowercase. ok is false for malformed values
// and the all-zero ID, in which case the caller should generate one.
func ParseTraceHeader(v string) (string, bool) {
	v = strings.TrimSpace(v)
	if parts := strings.Split(v, "-"); len(parts) == 4 &&
		len(parts[0]) == 2 && len(parts[1]) == 32 && len(parts[2]) == 16 && len(parts[3]) == 2 &&
		isHex(parts[0]) && isHex(parts[1]) && isHex(parts[2]) && isHex(parts[3]) {
		v = parts[1]
	}
	if !isHex(v) || len(v) > 32 {
		return "", false
	}
	id := strings.ToLower(v)
	if strings.Trim(id, "0") == "" {
		return "", false
	}
	return id, true
}

// FormatTraceparent renders a trace ID as a W3C traceparent value for
// response headers, padding short custom IDs to 32 hex chars. The parent
// span-id field is synthesized from the job's root span ID.
func FormatTraceparent(traceID string, rootSpan uint64) string {
	if len(traceID) < 32 {
		traceID = strings.Repeat("0", 32-len(traceID)) + traceID
	}
	return fmt.Sprintf("00-%s-%016x-01", traceID, rootSpan)
}

// TraceSpan is one node of a job's span tree: a completed span or an
// instant mark, with children nested by parent span ID.
type TraceSpan struct {
	ID         uint64         `json:"span"`
	Kind       string         `json:"kind"` // "span" or "mark"
	Name       string         `json:"name"`
	Track      int            `json:"track,omitempty"`
	StartMS    float64        `json:"t_ms"`
	DurationMS float64        `json:"duration_ms,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*TraceSpan   `json:"children,omitempty"`
}

// JobTrace is the wire form of GET /v1/jobs/{id}/trace: the job's trace
// ID, ring accounting, and the span tree rooted at the server.job span.
// Spans whose parent fell out of the bounded ring (or has not closed
// yet) surface as additional roots rather than being dropped.
type JobTrace struct {
	TraceID  string       `json:"trace_id"`
	JobID    string       `json:"job_id"`
	Recorded uint64       `json:"recorded"`
	Dropped  uint64       `json:"dropped"`
	Spans    []*TraceSpan `json:"spans"`
}

// BuildJobTrace assembles the span tree from a per-job recorder ring.
// Events arrive in ring order (span closes, so children before parents);
// linking is by span ID, and both roots and children are sorted by start
// time (ID breaking ties) so the tree reads chronologically.
func BuildJobTrace(traceID, jobID string, events []RingEvent, total uint64, epoch time.Time) JobTrace {
	tr := JobTrace{TraceID: traceID, JobID: jobID, Recorded: total}
	if n := uint64(len(events)); total > n {
		tr.Dropped = total - n
	}
	nodes := make(map[uint64]*TraceSpan, len(events))
	order := make([]*TraceSpan, 0, len(events))
	parents := make(map[uint64]uint64, len(events))
	for _, e := range events {
		d := e.Data
		n := &TraceSpan{
			ID:      d.ID,
			Kind:    e.Kind,
			Name:    d.Name,
			Track:   d.Track,
			StartMS: float64(d.Start.Sub(epoch)) / float64(time.Millisecond),
			Attrs:   attrMap(d.Attrs),
		}
		if d.Duration > 0 {
			n.DurationMS = float64(d.Duration) / float64(time.Millisecond)
		}
		nodes[d.ID] = n
		order = append(order, n)
		parents[d.ID] = d.Parent
	}
	for _, n := range order {
		if p := nodes[parents[n.ID]]; p != nil && p != n {
			p.Children = append(p.Children, n)
		} else {
			tr.Spans = append(tr.Spans, n)
		}
	}
	byStart := func(s []*TraceSpan) {
		sort.SliceStable(s, func(i, j int) bool {
			if s[i].StartMS != s[j].StartMS {
				return s[i].StartMS < s[j].StartMS
			}
			return s[i].ID < s[j].ID
		})
	}
	byStart(tr.Spans)
	for _, n := range order {
		byStart(n.Children)
	}
	return tr
}

// WritePerfetto renders the trace as a Chrome trace-event JSON document
// loadable at https://ui.perfetto.dev, reusing the session exporter's
// event schema so job traces and whole-run -trace captures look alike.
func (tr JobTrace) WritePerfetto(w io.Writer) error {
	ch := NewChrome(w)
	ch.SetEpoch(time.Time{})
	var walk func(n *TraceSpan)
	walk = func(n *TraceSpan) {
		d := SpanData{
			ID:       n.ID,
			Name:     n.Name,
			Track:    n.Track,
			Start:    time.Time{}.Add(time.Duration(n.StartMS * float64(time.Millisecond))),
			Duration: time.Duration(n.DurationMS * float64(time.Millisecond)),
		}
		for k, v := range n.Attrs {
			d.Attrs = append(d.Attrs, Attr{Key: k, Value: v})
		}
		sort.Slice(d.Attrs, func(i, j int) bool { return d.Attrs[i].Key < d.Attrs[j].Key })
		if n.Kind == "mark" {
			ch.Mark(d)
		} else {
			ch.Span(d)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range tr.Spans {
		walk(n)
	}
	return ch.Flush()
}

// ReportJobTrace reads a JobTrace JSON document (the body of
// GET /v1/jobs/{id}/trace) and renders it as an indented chronological
// span tree with durations and attributes — the offline renderer behind
// `transit obs report -job`.
func ReportJobTrace(r io.Reader, w io.Writer) error {
	var tr JobTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return fmt.Errorf("obs: job trace report: %w", err)
	}
	fmt.Fprintf(w, "job %s trace %s: %d events recorded, %d dropped\n",
		tr.JobID, tr.TraceID, tr.Recorded, tr.Dropped)
	if len(tr.Spans) == 0 {
		fmt.Fprintf(w, "no spans (job still queued, or ring evicted everything)\n")
		return nil
	}
	width := 0
	var measure func(n *TraceSpan, depth int)
	measure = func(n *TraceSpan, depth int) {
		if l := 2*depth + len(n.Name); l > width {
			width = l
		}
		for _, c := range n.Children {
			measure(c, depth+1)
		}
	}
	for _, n := range tr.Spans {
		measure(n, 0)
	}
	var walk func(n *TraceSpan, depth int)
	walk = func(n *TraceSpan, depth int) {
		name := strings.Repeat("  ", depth) + n.Name
		dur := "-"
		if n.Kind != "mark" {
			dur = (time.Duration(n.DurationMS * float64(time.Millisecond))).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "  %-*s %12s%s\n", width, name, dur, formatAttrs(n.Attrs))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, n := range tr.Spans {
		walk(n, 0)
	}
	return nil
}

// formatAttrs renders attributes as "  k=v k=v" sorted by key, or "".
func formatAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(" ")
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %s=%v", k, attrs[k])
	}
	return sb.String()
}
