package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// summaryNode aggregates every span that finished at one tree position
// (identified by its slash-joined ancestor path).
type summaryNode struct {
	count           int
	total, min, max time.Duration
}

// SummaryExporter aggregates finished spans by path and renders a
// human-readable end-of-run tree at Flush: per call position, the call
// count and total/mean/max durations. It answers "where did the time
// go?" without leaving the terminal; the Chrome exporter answers the
// same question visually.
type SummaryExporter struct {
	mu    sync.Mutex
	w     io.Writer
	nodes map[string]*summaryNode
	marks map[string]int
	// Metrics, when non-nil, is snapshotted and appended to the tree at
	// Flush so one report carries both views.
	Metrics *Registry
}

// NewSummary builds an exporter printing to w at Flush.
func NewSummary(w io.Writer) *SummaryExporter {
	return &SummaryExporter{w: w, nodes: map[string]*summaryNode{}, marks: map[string]int{}}
}

// Span implements Exporter.
func (s *SummaryExporter) Span(d SpanData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[d.Path]
	if n == nil {
		n = &summaryNode{min: d.Duration}
		s.nodes[d.Path] = n
	}
	n.count++
	n.total += d.Duration
	if d.Duration < n.min {
		n.min = d.Duration
	}
	if d.Duration > n.max {
		n.max = d.Duration
	}
}

// Mark implements Exporter (marks are counted only).
func (s *SummaryExporter) Mark(d SpanData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.marks[d.Path]++
}

// Flush renders the tree.
func (s *SummaryExporter) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.nodes) == 0 && len(s.marks) == 0 {
		return nil
	}
	paths := make([]string, 0, len(s.nodes))
	for p := range s.nodes {
		paths = append(paths, p)
	}
	// Lexicographic order on slash-joined paths lists every parent
	// directly before its children.
	sort.Strings(paths)

	nameWidth := len("span")
	for _, p := range paths {
		depth := strings.Count(p, "/")
		name := p[strings.LastIndexByte(p, '/')+1:]
		if w := 2*depth + len(name); w > nameWidth {
			nameWidth = w
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "span tree:\n%-*s %9s %12s %12s %12s\n",
		nameWidth, "span", "count", "total", "mean", "max")
	for _, p := range paths {
		n := s.nodes[p]
		depth := strings.Count(p, "/")
		name := p[strings.LastIndexByte(p, '/')+1:]
		mean := time.Duration(0)
		if n.count > 0 {
			mean = n.total / time.Duration(n.count)
		}
		fmt.Fprintf(&sb, "%-*s %9d %12s %12s %12s\n",
			nameWidth, strings.Repeat("  ", depth)+name, n.count,
			n.total.Round(time.Microsecond), mean.Round(time.Microsecond),
			n.max.Round(time.Microsecond))
	}
	if len(s.marks) > 0 {
		markPaths := make([]string, 0, len(s.marks))
		for p := range s.marks {
			markPaths = append(markPaths, p)
		}
		sort.Strings(markPaths)
		sb.WriteString("marks:\n")
		for _, p := range markPaths {
			fmt.Fprintf(&sb, "  %s ×%d\n", p, s.marks[p])
		}
	}
	if s.Metrics != nil {
		sb.WriteString(s.Metrics.Snapshot().Format())
	}
	_, err := io.WriteString(s.w, sb.String())
	return err
}
