package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseTraceHeader(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"DEADBEEFDEADBEEFDEADBEEFDEADBEEF", "deadbeefdeadbeefdeadbeefdeadbeef", true},
		{"abc123", "abc123", true},
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", "0af7651916cd43dd8448eb211c80319c", true},
		{"  cafe  ", "cafe", true},
		{"", "", false},
		{"not-hex-at-all", "", false},
		{"00000000000000000000000000000000", "", false},
		{strings.Repeat("a", 33), "", false},
		{"zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", "", false},
	}
	for _, c := range cases {
		got, ok := ParseTraceHeader(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseTraceHeader(%q) = (%q, %v), want (%q, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestNewTraceIDShape(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	for _, id := range []string{a, b} {
		if len(id) != 32 || !isHex(id) {
			t.Fatalf("NewTraceID() = %q, want 32 hex chars", id)
		}
		if got, ok := ParseTraceHeader(id); !ok || got != id {
			t.Fatalf("NewTraceID() %q does not round-trip ParseTraceHeader", id)
		}
	}
	if a == b {
		t.Fatalf("two NewTraceID calls returned the same ID %q", a)
	}
}

func TestFormatTraceparent(t *testing.T) {
	got := FormatTraceparent("abc", 7)
	want := "00-00000000000000000000000000000abc-0000000000000007-01"
	if got != want {
		t.Fatalf("FormatTraceparent = %q, want %q", got, want)
	}
	if id, ok := ParseTraceHeader(got); !ok || id != "00000000000000000000000000000abc" {
		t.Fatalf("FormatTraceparent output does not parse back: %q → (%q, %v)", got, id, ok)
	}
}

// TestChildTracerSharedIDs checks that a child tracer tees spans into its
// extra exporter while the parent exporters still see them, and that span
// IDs never collide across the tracer family.
func TestChildTracerSharedIDs(t *testing.T) {
	shared := NewCollect()
	parent := NewTracer(shared)
	ring := NewCollect()
	child := parent.Child(ring)
	if child.Epoch != parent.Epoch {
		t.Fatalf("child epoch %v != parent epoch %v", child.Epoch, parent.Epoch)
	}

	pctx, psp := Start(WithTracer(context.Background(), parent), "parent.span")
	_ = pctx
	cctx, csp := Start(WithTracer(context.Background(), child), "child.span")
	_, inner := Start(cctx, "child.inner")
	inner.End()
	csp.End()
	psp.End()

	ringSpans := ring.Spans()
	if len(ringSpans) != 2 {
		t.Fatalf("ring saw %d spans, want 2 (child only)", len(ringSpans))
	}
	all := shared.Spans()
	if len(all) != 3 {
		t.Fatalf("shared exporter saw %d spans, want 3", len(all))
	}
	seen := map[uint64]bool{}
	for _, d := range all {
		if seen[d.ID] {
			t.Fatalf("duplicate span ID %d across parent and child tracers", d.ID)
		}
		seen[d.ID] = true
	}
}

// TestSpanEmit checks pre-timed child spans: correct parentage, the given
// start/duration, and drop-after-End semantics.
func TestSpanEmit(t *testing.T) {
	col := NewCollect()
	tr := NewTracer(col)
	_, root := Start(WithTracer(context.Background(), tr), "server.job")
	start := time.Now().Add(-50 * time.Millisecond)
	root.Emit("server.admission", start, 2*time.Millisecond, Str("client", "c1"))
	root.Emit("server.queue_wait", start.Add(2*time.Millisecond), 10*time.Millisecond)
	root.End()
	root.Emit("late", time.Now(), time.Millisecond) // after End: dropped

	spans := col.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3 (admission, queue_wait, root)", len(spans))
	}
	rootData := spans[2]
	if rootData.Name != "server.job" {
		t.Fatalf("last-closed span is %q, want server.job", rootData.Name)
	}
	adm := spans[0]
	if adm.Name != "server.admission" || adm.Parent != rootData.ID ||
		!adm.Start.Equal(start) || adm.Duration != 2*time.Millisecond {
		t.Fatalf("admission span wrong: %+v (want parent %d, start %v, dur 2ms)", adm, rootData.ID, start)
	}
	if adm.Path != "server.job/server.admission" {
		t.Fatalf("admission path %q, want server.job/server.admission", adm.Path)
	}
	var nilSpan *Span
	nilSpan.Emit("noop", time.Now(), time.Second) // must not panic
}

// TestBuildJobTrace builds a tree from a per-job ring fed through a child
// tracer, as the serving path does, and checks nesting and ordering.
func TestBuildJobTrace(t *testing.T) {
	ring := NewRecorder(64)
	sess := NewTracer()
	tr := sess.Child(ring)
	ring.SetEpoch(tr.Epoch)

	ctx, root := Start(WithTracer(context.Background(), tr), "server.job")
	root.Emit("server.admission", tr.Epoch, time.Millisecond)
	cctx, cache := Start(ctx, "engine.cache", Str("tier", "mem"))
	cache.Mark("cache.probe")
	cache.End()
	_, solve := Start(ctx, "synth.cegis")
	solve.End()
	_ = cctx
	root.End()

	evs, total := ring.Events()
	jt := BuildJobTrace("feedface", "j1", evs, total, ring.Epoch())
	if jt.TraceID != "feedface" || jt.JobID != "j1" || jt.Dropped != 0 {
		t.Fatalf("header wrong: %+v", jt)
	}
	if len(jt.Spans) != 1 {
		t.Fatalf("got %d roots, want 1: %+v", len(jt.Spans), jt.Spans)
	}
	r := jt.Spans[0]
	if r.Name != "server.job" || len(r.Children) != 3 {
		t.Fatalf("root %q has %d children, want server.job with 3", r.Name, len(r.Children))
	}
	names := []string{r.Children[0].Name, r.Children[1].Name, r.Children[2].Name}
	if names[0] != "server.admission" || names[1] != "engine.cache" || names[2] != "synth.cegis" {
		t.Fatalf("children out of order: %v", names)
	}
	cacheNode := r.Children[1]
	if len(cacheNode.Children) != 1 || cacheNode.Children[0].Kind != "mark" {
		t.Fatalf("engine.cache should contain the probe mark, got %+v", cacheNode.Children)
	}
	if cacheNode.Attrs["tier"] != "mem" {
		t.Fatalf("tier attr lost: %v", cacheNode.Attrs)
	}

	// Round-trip through JSON (the wire format) and render it.
	raw, err := json.Marshal(jt)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := ReportJobTrace(bytes.NewReader(raw), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"job j1 trace feedface", "server.job", "  engine.cache", "tier=mem"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}

	// Perfetto rendering must be valid trace-event JSON with every event.
	var perf bytes.Buffer
	if err := jt.WritePerfetto(&perf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(perf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not JSON: %v", err)
	}
	var complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "i":
			instant++
		}
	}
	if complete != 4 || instant != 1 {
		t.Fatalf("perfetto has %d complete + %d instant events, want 4 + 1", complete, instant)
	}
}

// TestBuildJobTraceOrphan checks that spans whose parent is missing from
// the ring become extra roots instead of vanishing.
func TestBuildJobTraceOrphan(t *testing.T) {
	epoch := time.Now()
	evs := []RingEvent{
		{Seq: 1, Kind: "span", Data: SpanData{ID: 5, Parent: 99, Name: "orphan", Start: epoch, Duration: time.Millisecond}},
		{Seq: 2, Kind: "span", Data: SpanData{ID: 6, Parent: 0, Name: "root", Start: epoch, Duration: time.Millisecond}},
	}
	jt := BuildJobTrace("t", "j", evs, 10, epoch)
	if len(jt.Spans) != 2 {
		t.Fatalf("got %d roots, want 2 (orphan + root): %+v", len(jt.Spans), jt.Spans)
	}
	if jt.Dropped != 8 {
		t.Fatalf("dropped = %d, want 8", jt.Dropped)
	}
}

func TestGaugeRegistry(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("server.queue.depth")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(5)
	if v := g.Value(); v != 6 {
		t.Fatalf("gauge value = %d, want 6", v)
	}
	g.Set(3)
	reg.Gauge("diskcache.segments").Set(2)
	snap := reg.Snapshot()
	if len(snap.Gauges) != 2 || snap.Gauges[0].Name != "diskcache.segments" ||
		snap.Gauges[1].Name != "server.queue.depth" || snap.Gauges[1].Value != 3 {
		t.Fatalf("gauge snapshot wrong: %+v", snap.Gauges)
	}
	if !strings.Contains(snap.Format(), "gauges:") {
		t.Fatalf("Format missing gauges section:\n%s", snap.Format())
	}
	var prom bytes.Buffer
	if err := WritePrometheus(snap, &prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE transit_server_queue_depth gauge",
		"transit_server_queue_depth 3",
		"transit_diskcache_segments 2",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom.String())
		}
	}

	// nil safety
	var nilReg *Registry
	nilReg.Gauge("x").Set(1)
	var nilG *Gauge
	nilG.Inc()
	nilG.Dec()
	nilG.Add(2)
	nilG.Set(9)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
}

// TestRecorderAddSnapshot checks that registered auxiliary sections land
// in the dump right after the header.
func TestRecorderAddSnapshot(t *testing.T) {
	rec := NewRecorder(8)
	rec.AddSnapshot("server", func() any {
		return map[string]any{"queue_depth": 3, "inflight": 1}
	})
	rec.Span(SpanData{ID: 1, Name: "x", Start: time.Now(), Duration: time.Millisecond})
	var buf bytes.Buffer
	if err := rec.Dump(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("dump has %d lines, want 3 (header, server snapshot, span):\n%s", len(lines), buf.String())
	}
	var snap struct {
		Type string         `json:"type"`
		Data map[string]any `json:"data"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Type != "server" || snap.Data["queue_depth"] != float64(3) {
		t.Fatalf("snapshot line wrong: %+v", snap)
	}
}

// TestDisabledEmitZeroAlloc extends the zero-alloc guarantee to the new
// serving-path primitives: with no tracer, Start+Emit+End and TracerFrom
// allocate nothing. This pins the -no-trace acceptance criterion at the
// obs layer.
func TestDisabledEmitZeroAlloc(t *testing.T) {
	ctx := context.Background()
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		if tr := TracerFrom(ctx); tr != nil {
			t.Fatal("unexpected tracer")
		}
		c2, sp := Start(ctx, "server.job")
		sp.Emit("server.admission", start, time.Millisecond)
		sp.End()
		_ = c2
	})
	if allocs != 0 {
		t.Errorf("disabled serve hot path allocates %v per op, want 0", allocs)
	}
}

// BenchmarkDisabledTracePath is the pinned benchmark for the -no-trace
// fast path: one context lookup, one branch, zero allocations.
func BenchmarkDisabledTracePath(b *testing.B) {
	ctx := context.Background()
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "server.job")
		sp.Emit("server.admission", start, time.Millisecond)
		sp.End()
	}
}
