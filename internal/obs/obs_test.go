package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartWithoutTracerIsNil(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x", Int("a", 1))
	if sp != nil {
		t.Fatal("span should be nil without a tracer")
	}
	if ctx2 != ctx {
		t.Fatal("context should be unchanged without a tracer")
	}
	// All methods must be no-op safe on the nil span.
	sp.SetAttr(Str("k", "v"))
	sp.Mark("m")
	sp.End()
	if SpanFrom(ctx2) != nil {
		t.Fatal("SpanFrom should be nil")
	}
	if WithTrack(ctx, 3) != ctx {
		t.Fatal("WithTrack without tracer should return ctx unchanged")
	}
}

func TestSpanHierarchy(t *testing.T) {
	col := NewCollect()
	tr := NewTracer(col)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "root", Int("n", 1))
	cctx, child := Start(ctx, "child")
	child.SetAttr(Bool("done", true))
	child.Mark("beat", Float("rate", 2.5))
	child.End()
	child.End() // second End must be a no-op
	if got := SpanFrom(cctx); got != child {
		t.Errorf("SpanFrom = %v, want child", got)
	}
	root.End()

	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("completion order = %s, %s", c.Name, r.Name)
	}
	if c.Parent != r.ID {
		t.Errorf("child.Parent = %d, want root ID %d", c.Parent, r.ID)
	}
	if r.Parent != 0 {
		t.Errorf("root.Parent = %d, want 0", r.Parent)
	}
	if c.Path != "root/child" {
		t.Errorf("child.Path = %q", c.Path)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "done" {
		t.Errorf("child attrs = %v", c.Attrs)
	}
	marks := col.Marks()
	if len(marks) != 1 || marks[0].Name != "beat" || marks[0].Parent != c.ID {
		t.Errorf("marks = %v", marks)
	}
	if marks[0].Path != "root/child/beat" {
		t.Errorf("mark path = %q", marks[0].Path)
	}
}

func TestWithTrackPropagates(t *testing.T) {
	col := NewCollect()
	ctx := WithTracer(context.Background(), NewTracer(col))
	ctx = WithTrack(ctx, 7)
	_, sp := Start(ctx, "job")
	sp.End()
	if got := col.Spans()[0].Track; got != 7 {
		t.Errorf("Track = %d, want 7", got)
	}
}

func TestMetricsThroughContext(t *testing.T) {
	reg := NewRegistry()
	ctx := WithMetrics(context.Background(), reg)
	if MetricsFrom(ctx) != reg {
		t.Fatal("MetricsFrom lost the registry")
	}
	// Tracer wrapping must preserve the registry and vice versa.
	ctx = WithTracer(ctx, NewTracer(NewCollect()))
	if MetricsFrom(ctx) != reg {
		t.Fatal("WithTracer dropped the registry")
	}
	if MetricsFrom(context.Background()) != nil {
		t.Fatal("empty context should have no registry")
	}
}

func TestNilRegistryRecorders(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Add(5) // all no-ops
	reg.Counter("x").Inc()
	reg.Histogram("h").Observe(time.Second)
	if v := reg.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := reg.Get("x"); v != 0 {
		t.Errorf("nil Get = %d", v)
	}
	if s := reg.Snapshot(); len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestRegistryCountersAndHistograms(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(3)
	reg.Counter("a").Inc()
	reg.Counter("b").Inc()
	reg.Histogram("h").Observe(50 * time.Microsecond)
	reg.Histogram("h").Observe(5 * time.Millisecond)
	reg.Histogram("h").Observe(2 * time.Second)

	if v := reg.Get("a"); v != 4 {
		t.Errorf("a = %d, want 4", v)
	}
	s := reg.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	h := s.Histograms[0]
	if h.Count != 3 {
		t.Errorf("count = %d", h.Count)
	}
	if h.Max != 2*time.Second {
		t.Errorf("max = %s", h.Max)
	}
	wantSum := 50*time.Microsecond + 5*time.Millisecond + 2*time.Second
	if h.Sum != wantSum {
		t.Errorf("sum = %s, want %s", h.Sum, wantSum)
	}
	if mean := h.Mean(); mean != wantSum/3 {
		t.Errorf("mean = %s", mean)
	}
	// Buckets: ≤100µs, ≤1ms... the three observations land in buckets
	// 0 (50µs), 2 (5ms ≤ 10ms), 5 (2s ≤ 10s).
	for i, want := range [numBuckets]int64{0: 1, 2: 1, 5: 1} {
		if h.Buckets[i] != want {
			t.Errorf("bucket[%d] = %d, want %d", i, h.Buckets[i], want)
		}
	}
	out := s.Format()
	for _, want := range []string{"counters:", "a", "histograms", "h"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				reg.Counter("c").Inc()
				reg.Histogram("h").Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if v := reg.Get("c"); v != workers*per {
		t.Errorf("c = %d, want %d", v, workers*per)
	}
	if s := reg.Snapshot(); s.Histograms[0].Count != workers*per {
		t.Errorf("h count = %d, want %d", s.Histograms[0].Count, workers*per)
	}
}

// TestSpansConcurrent ends sibling spans from many goroutines through a
// shared tracer and exporter; run with -race.
func TestSpansConcurrent(t *testing.T) {
	col := NewCollect()
	ctx := WithTracer(context.Background(), NewTracer(col))
	ctx, root := Start(ctx, "root")
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := Start(WithTrack(ctx, i%4), "child", Int("i", i))
			sp.Mark("tick")
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(col.Spans()); got != n+1 {
		t.Errorf("spans = %d, want %d", got, n+1)
	}
	if got := len(col.Marks()); got != n {
		t.Errorf("marks = %d, want %d", got, n)
	}
}
