package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Report reads an NDJSON event stream — a flight-recorder dump, a -stats
// capture, or any mix of span/mark lines — and renders it in the same
// summary-tree format -stats-summary prints live: the span tree with
// count/total/mean/max per call position, mark counts, and (when the
// stream carries a metrics trailer) the counters-and-histograms table.
// Unknown line types (engine telemetry such as job_start/job_end shares
// the stream under -stats) are skipped and counted. Lines that are not
// JSON objects fail the whole report: a half-written dump should be
// noticed, not silently truncated.
func Report(r io.Reader, w io.Writer) error {
	type rec struct {
		Type       string         `json:"type"`
		Name       string         `json:"name"`
		Span       uint64         `json:"span"`
		Parent     uint64         `json:"parent"`
		DurationMS float64        `json:"duration_ms"`
		Attrs      map[string]any `json:"attrs"`

		// flight header fields
		Reason   string `json:"reason"`
		PID      int    `json:"pid"`
		Recorded uint64 `json:"recorded"`
		Dropped  uint64 `json:"dropped"`

		// metrics trailer fields
		Counters   []CounterSnapshot   `json:"counters"`
		Gauges     []GaugeSnapshot     `json:"gauges"`
		Histograms []HistogramSnapshot `json:"histograms"`
	}

	var events []rec
	var header *rec
	var metrics *Snapshot
	skipped := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rc rec
		if err := json.Unmarshal(raw, &rc); err != nil {
			return fmt.Errorf("obs: report: line %d: %w", line, err)
		}
		switch rc.Type {
		case "span", "mark":
			events = append(events, rc)
		case "flight":
			h := rc
			header = &h
		case "metrics":
			s := Snapshot{Counters: rc.Counters, Gauges: rc.Gauges, Histograms: rc.Histograms}
			// Sum and Max travel as milliseconds; restore the duration
			// fields Format and Quantile compute from.
			for i := range s.Histograms {
				s.Histograms[i].Sum = time.Duration(s.Histograms[i].SumMS * float64(time.Millisecond))
				s.Histograms[i].Max = time.Duration(s.Histograms[i].MaxMS * float64(time.Millisecond))
			}
			metrics = &s
		default:
			skipped++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: report: %w", err)
	}

	// Rebuild each event's ancestor path from the span-id graph. A parent
	// can be missing — it never closed because the process died, or the
	// ring evicted it — in which case the event roots where knowledge
	// ends.
	names := make(map[uint64]rec, len(events))
	for _, e := range events {
		if e.Type == "span" {
			names[e.Span] = e
		}
	}
	var pathOf func(id uint64, depth int) string
	pathOf = func(id uint64, depth int) string {
		e, ok := names[id]
		if !ok || depth > 64 {
			return ""
		}
		if p := pathOf(e.Parent, depth+1); p != "" {
			return p + "/" + e.Name
		}
		return e.Name
	}

	if header != nil {
		fmt.Fprintf(w, "flight dump: reason %q, pid %d, %d events recorded, %d dropped\n",
			header.Reason, header.PID, header.Recorded, header.Dropped)
	}
	sum := NewSummary(w)
	for _, e := range events {
		prefix := pathOf(e.Parent, 0)
		path := e.Name
		if prefix != "" {
			path = prefix + "/" + e.Name
		}
		d := SpanData{Name: e.Name, Path: path,
			Duration: time.Duration(e.DurationMS * float64(time.Millisecond))}
		if e.Type == "span" {
			sum.Span(d)
		} else {
			sum.Mark(d)
		}
	}
	if len(events) == 0 {
		fmt.Fprintf(w, "no span or mark events\n")
	}
	if err := sum.Flush(); err != nil {
		return err
	}
	if metrics != nil {
		if _, err := io.WriteString(w, metrics.Format()); err != nil {
			return err
		}
	}
	if skipped > 0 {
		fmt.Fprintf(w, "(%d non-span lines skipped)\n", skipped)
	}
	return nil
}
