// Package obs is the pipeline-wide observability layer: hierarchical
// trace spans propagated through context.Context, a low-overhead metrics
// registry (atomic counters and latency histograms), exporters for
// NDJSON event streams, Chrome trace-event JSON (loadable in Perfetto),
// and human-readable end-of-run summaries, plus CPU/heap/pprof profiling
// hooks for the CLIs.
//
// The paper's evaluation (§7, Table 3 / Figure 5) is built on per-phase
// counters — enumeration tiers, SMT queries, SAT conflicts, model-checker
// states/sec. PR 1's engine telemetry reports those numbers only at job
// granularity; this package explains where the time inside a job goes,
// and is the substrate every future performance PR reports through.
//
// # Design
//
// Everything rides on one context value: a single Value lookup recovers
// the tracer, the enclosing span, the metrics registry, and the display
// track. When no tracer is installed, Start returns a nil *Span, every
// method on which is a no-op — the disabled hot path costs one context
// lookup and one branch, which benchmarks show is unmeasurable against
// real solver work (see internal/synth's benchmarks).
//
// Span taxonomy (parent → child):
//
//	engine.run                  one synthesis engine Run
//	  engine.job                one inference job (track = worker)
//	    synth.cegis             one SolveConcolic call
//	      synth.iteration       one CEGIS iteration
//	        synth.enumerate     one SolveConcrete call
//	          synth.size        one enumeration size tier
//	        smt.solve           one SMT query
//	          smt.encode        bit-blasting to CNF
//	          sat.search        the CDCL search
//	mc.bfs                      one model-checking run
//	  mc.progress (mark)        periodic states/sec heartbeat
//
// Metric taxonomy: counters synth.solves, synth.cegis_iterations,
// synth.candidates, synth.kept, smt.queries, smt.sat, smt.unsat,
// smt.unknown, smt.sat_vars, smt.clauses, sat.conflicts, sat.decisions,
// sat.propagations, mc.runs, mc.states, mc.transitions, engine.jobs,
// engine.cache_hits; histograms synth.solve_ms, smt.solve_ms,
// mc.check_ms.
package obs

import (
	"context"
)

// Attr is one span, event, or record attribute. Values are restricted by
// the typed constructors to int64, float64, string, and bool so every
// exporter can render them.
type Attr struct {
	Key   string
	Value any
}

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{k, int64(v)} }

// Int64 builds an integer attribute from an int64.
func Int64(k string, v int64) Attr { return Attr{k, v} }

// Float builds a floating-point attribute.
func Float(k string, v float64) Attr { return Attr{k, v} }

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{k, v} }

// Bool builds a Boolean attribute.
func Bool(k string, v bool) Attr { return Attr{k, v} }

// ctxKey is the single context key; its payload carries every piece of
// observability state so the hot path pays for one Value lookup only.
type ctxKey struct{}

type ctxData struct {
	tracer  *Tracer
	span    *Span
	metrics *Registry
	track   int
}

func dataFrom(ctx context.Context) *ctxData {
	d, _ := ctx.Value(ctxKey{}).(*ctxData)
	return d
}

// WithTracer returns a context carrying the tracer. Spans started below
// it are exported through the tracer's exporters.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	d := &ctxData{tracer: tr}
	if prev := dataFrom(ctx); prev != nil {
		d.span = prev.span
		d.metrics = prev.metrics
		d.track = prev.track
	}
	return context.WithValue(ctx, ctxKey{}, d)
}

// WithMetrics returns a context carrying the metrics registry.
// Instrumented code recovers it with MetricsFrom; a nil registry (or a
// context without one) disables recording at the cost of a nil check.
func WithMetrics(ctx context.Context, r *Registry) context.Context {
	d := &ctxData{metrics: r}
	if prev := dataFrom(ctx); prev != nil {
		d.tracer = prev.tracer
		d.span = prev.span
		d.track = prev.track
	}
	return context.WithValue(ctx, ctxKey{}, d)
}

// MetricsFrom returns the registry carried by the context, or nil. All
// Registry, Counter, and Histogram methods are nil-safe, so callers can
// use the result unconditionally.
func MetricsFrom(ctx context.Context) *Registry {
	if d := dataFrom(ctx); d != nil {
		return d.metrics
	}
	return nil
}

// WithTrack returns a context whose future spans render on display track
// n (a row in Perfetto; the engine assigns one track per worker so
// concurrent jobs never overlap within a row). Without a tracer this is
// a no-op returning ctx unchanged.
func WithTrack(ctx context.Context, n int) context.Context {
	d := dataFrom(ctx)
	if d == nil || d.tracer == nil {
		return ctx
	}
	nd := *d
	nd.track = n
	return context.WithValue(ctx, ctxKey{}, &nd)
}

// Start begins a span named name as a child of the context's current
// span and returns a derived context carrying it. Without a tracer in
// ctx it returns (ctx, nil); a nil *Span is a valid no-op receiver for
// every Span method, so call sites need no guards.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	d := dataFrom(ctx)
	if d == nil || d.tracer == nil {
		return ctx, nil
	}
	sp := d.tracer.newSpan(name, d.span, d.track, attrs)
	nd := *d
	nd.span = sp
	return context.WithValue(ctx, ctxKey{}, &nd), sp
}

// SpanFrom returns the context's current span, or nil. Useful for
// attaching attributes or marks to an enclosing span without starting a
// new one.
func SpanFrom(ctx context.Context) *Span {
	if d := dataFrom(ctx); d != nil {
		return d.span
	}
	return nil
}

// TracerFrom returns the tracer carried by the context, or nil. The job
// server uses it to derive per-job child tracers from the session tracer.
func TracerFrom(ctx context.Context) *Tracer {
	if d := dataFrom(ctx); d != nil {
		return d.tracer
	}
	return nil
}
