package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// defaultFlightEvents is the ring capacity when the caller does not pick
// one. 4096 events is minutes of steady-state marks or the full tail of a
// busy CEGIS round, and well under a megabyte of memory.
const defaultFlightEvents = 4096

// recSlot is one ring cell. Each slot has its own mutex so concurrent
// span closes from enumeration workers contend only when they land on the
// same cell (i.e. essentially never until the ring wraps within one
// scheduling quantum).
type recSlot struct {
	mu   sync.Mutex
	seq  uint64
	kind byte // 0 = empty, 1 = span, 2 = mark
	data SpanData
}

// Recorder is the flight recorder: a fixed-size ring buffer fed by every
// span close and instant mark, kept in memory and written out only when
// something goes wrong (panic, cancellation, deadline, SIGINT) or when a
// post-mortem is explicitly requested. It implements Exporter, so it
// rides the same tracer fan-out as the file exporters; the hot path is
// one atomic increment plus one uncontended mutexed struct copy, and when
// no recorder is installed (the default) nothing changes anywhere.
//
// The ring keeps the newest N events; older ones are overwritten silently
// and reported only as a dropped count in the dump header. A dump is a
// best-effort snapshot: events recorded while Dump runs may or may not be
// included, which is the right trade for a crash path.
type Recorder struct {
	slots []recSlot
	next  atomic.Uint64
	epoch time.Time

	// Metrics, when non-nil, is snapshotted into the dump trailer so the
	// post-mortem carries final counter values next to the event tail.
	Metrics *Registry

	// snapshots are extra dump sections registered with AddSnapshot; each
	// contributes one {"type":<typ>,"data":...} line after the header.
	snapMu    sync.Mutex
	snapshots []recSnapshot
}

// recSnapshot is one registered auxiliary dump section.
type recSnapshot struct {
	typ string
	fn  func() any
}

// NewRecorder builds a recorder holding the last n events (n <= 0 means
// the default capacity).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = defaultFlightEvents
	}
	return &Recorder{slots: make([]recSlot, n), epoch: time.Now()}
}

// SetEpoch aligns the dump's t_ms timestamps with the tracer's clock.
func (r *Recorder) SetEpoch(t time.Time) { r.epoch = t }

// Epoch is the zero point the dump's t_ms timestamps are measured from.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// AddSnapshot registers an auxiliary dump section: every Dump calls fn
// and writes its result as one {"type":typ,"data":...} line right after
// the header. The job server registers a queue/in-flight/rate-limiter
// snapshot this way so flight dumps taken mid-serve carry server state
// alongside the span ring. fn must be safe to call from any goroutine.
func (r *Recorder) AddSnapshot(typ string, fn func() any) {
	if r == nil || fn == nil {
		return
	}
	r.snapMu.Lock()
	r.snapshots = append(r.snapshots, recSnapshot{typ: typ, fn: fn})
	r.snapMu.Unlock()
}

func (r *Recorder) record(kind byte, d SpanData) {
	seq := r.next.Add(1)
	s := &r.slots[(seq-1)%uint64(len(r.slots))]
	s.mu.Lock()
	s.seq = seq
	s.kind = kind
	s.data = d
	s.mu.Unlock()
}

// Span implements Exporter.
func (r *Recorder) Span(d SpanData) { r.record(1, d) }

// Mark implements Exporter.
func (r *Recorder) Mark(d SpanData) { r.record(2, d) }

// Flush implements Exporter. The recorder deliberately writes nothing on
// a clean flush: a run that ends normally leaves no flight dump behind.
func (r *Recorder) Flush() error { return nil }

// recEvent is a lock-free copy of one ring cell, used on the dump path.
type recEvent struct {
	seq  uint64
	kind byte
	data SpanData
}

// events copies the ring's current contents in recording order (oldest
// first) and reports the total number of events ever recorded.
func (r *Recorder) events() (evs []recEvent, total uint64) {
	total = r.next.Load()
	evs = make([]recEvent, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.kind != 0 {
			evs = append(evs, recEvent{seq: s.seq, kind: s.kind, data: s.data})
		}
		s.mu.Unlock()
	}
	// Slots were filled round-robin by sequence number; sorting by seq
	// restores recording order regardless of wrap position.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j-1].seq > evs[j].seq; j-- {
			evs[j-1], evs[j] = evs[j], evs[j-1]
		}
	}
	return evs, total
}

// RingEvent is one recorded event as returned by Events: the ring
// sequence number, the event kind ("span" or "mark"), and the span data.
type RingEvent struct {
	Seq  uint64
	Kind string
	Data SpanData
}

// Events copies the ring's current contents in recording order (oldest
// first) and reports the total number of events ever recorded; dropped
// events are total minus len(events). The job server reads per-job rings
// through this to build /v1/jobs/{id}/trace responses.
func (r *Recorder) Events() ([]RingEvent, uint64) {
	evs, total := r.events()
	out := make([]RingEvent, len(evs))
	for i, e := range evs {
		kind := "span"
		if e.kind == 2 {
			kind = "mark"
		}
		out[i] = RingEvent{Seq: e.seq, Kind: kind, Data: e.data}
	}
	return out, total
}

// Len reports how many events the ring currently holds (capped at its
// capacity).
func (r *Recorder) Len() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Dump writes the flight record as NDJSON: one header line
// ({"type":"flight","reason":...,"recorded":N,"dropped":M}), the buffered
// events in recording order using the same span/mark line schema as the
// -stats NDJSON stream, and — when Metrics is set — one final
// {"type":"metrics",...} snapshot line. Dump may be called any number of
// times (each call snapshots the current ring); single-shot semantics on
// the crash path belong to Session.DumpFlight.
func (r *Recorder) Dump(w io.Writer, reason string) error {
	evs, total := r.events()
	dropped := uint64(0)
	if total > uint64(len(evs)) {
		dropped = total - uint64(len(evs))
	}
	enc := json.NewEncoder(w)
	header := struct {
		Type     string `json:"type"`
		Reason   string `json:"reason"`
		PID      int    `json:"pid"`
		Time     string `json:"time"`
		Recorded uint64 `json:"recorded"`
		Dropped  uint64 `json:"dropped"`
	}{"flight", reason, os.Getpid(), time.Now().Format(time.RFC3339Nano), total, dropped}
	if err := enc.Encode(header); err != nil {
		return err
	}
	r.snapMu.Lock()
	snaps := append([]recSnapshot(nil), r.snapshots...)
	r.snapMu.Unlock()
	for _, sn := range snaps {
		line := struct {
			Type string `json:"type"`
			Data any    `json:"data"`
		}{sn.typ, sn.fn()}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, e := range evs {
		typ := "span"
		if e.kind == 2 {
			typ = "mark"
		}
		d := e.data
		rec := ndjsonRecord{
			Type:    typ,
			Name:    d.Name,
			Span:    d.ID,
			Parent:  d.Parent,
			Track:   d.Track,
			StartMS: float64(d.Start.Sub(r.epoch)) / float64(time.Millisecond),
			Attrs:   attrMap(d.Attrs),
		}
		if d.Duration > 0 {
			rec.DurationMS = float64(d.Duration) / float64(time.Millisecond)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	if r.Metrics != nil {
		snap := r.Metrics.Snapshot()
		trailer := struct {
			Type string `json:"type"`
			Snapshot
		}{Type: "metrics", Snapshot: snap}
		if err := enc.Encode(trailer); err != nil {
			return err
		}
	}
	return nil
}

// DumpFile writes Dump's output to path (created or truncated).
func (r *Recorder) DumpFile(path, reason string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	werr := r.Dump(f, reason)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: flight dump: %w", werr)
	}
	return cerr
}

// DefaultFlightPath is the conventional dump location for a process:
// transit-flight-<pid>.ndjson in the working directory.
func DefaultFlightPath() string {
	return fmt.Sprintf("transit-flight-%d.ndjson", os.Getpid())
}
