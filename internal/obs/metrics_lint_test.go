package obs

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMetricNameRegistry is the metric-name lint: it scans every
// non-test Go source file in the repository for registry calls and
// enforces the naming contract documented in DESIGN.md §8 —
//
//   - names are lowercase dot-separated `pkg.name` segments of
//     [a-z0-9_], the first segment naming the owning subsystem;
//   - histogram names end in `_ms`;
//   - a name is registered as exactly one metric type everywhere;
//   - every name appears in the §8 table with the same type, and every
//     table row corresponds to a name in the code, so the table cannot
//     drift from the implementation in either direction.
//
// Dynamic families (a registered prefix ending in "." completed at run
// time, e.g. `engine.portfolio.win.` + config) are matched against
// table rows that extend the prefix.
func TestMetricNameRegistry(t *testing.T) {
	root := filepath.Join("..", "..")

	// call sites: .Counter("..."), .Gauge("..."), .Histogram("..."),
	// optionally followed by a concatenation (a dynamic prefix).
	callRe := regexp.MustCompile(`\.(Counter|Gauge|Histogram)\("([^"]*)"(\s*\+)?`)
	nameRe := regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

	types := map[string]string{}    // static name -> type
	prefixes := map[string]string{} // dynamic prefix (with trailing dot) -> type
	where := map[string]string{}    // name -> first file:line, for messages

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range callRe.FindAllStringSubmatch(line, -1) {
				typ, name, concat := m[1], m[2], m[3] != ""
				at := fmt.Sprintf("%s:%d", path, lineNo+1)
				if concat {
					if !strings.HasSuffix(name, ".") || !nameRe.MatchString(strings.TrimSuffix(name, ".")) {
						t.Errorf("%s: dynamic metric prefix %q must be dot-terminated pkg.name segments", at, name)
						continue
					}
					if prev, ok := prefixes[name]; ok && prev != typ {
						t.Errorf("%s: prefix %q registered as both %s and %s", at, name, prev, typ)
					}
					prefixes[name] = typ
					where[name] = at
					continue
				}
				if !nameRe.MatchString(name) {
					t.Errorf("%s: metric name %q violates the pkg.name convention", at, name)
					continue
				}
				if typ == "Histogram" && !strings.HasSuffix(name, "_ms") {
					t.Errorf("%s: histogram %q must end in _ms", at, name)
				}
				if prev, ok := types[name]; ok && prev != typ {
					t.Errorf("%s: metric %q registered as both %s and %s", at, name, prev, typ)
				}
				types[name] = typ
				where[name] = at
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 {
		t.Fatal("found no metric registrations — lint scan is broken")
	}

	// The §8 table.
	design, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	section := string(design)
	if i := strings.Index(section, "## 8."); i >= 0 {
		section = section[i:]
	} else {
		t.Fatal("DESIGN.md has no §8")
	}
	if i := strings.Index(section, "\n## 9."); i >= 0 {
		section = section[:i]
	}
	rowRe := regexp.MustCompile("(?m)^\\| `([^`]+)` \\| (Counter|Gauge|Histogram) \\|")
	doc := map[string]string{} // table name -> type
	for _, m := range rowRe.FindAllStringSubmatch(section, -1) {
		doc[m[1]] = m[2]
	}
	if len(doc) == 0 {
		t.Fatal("DESIGN.md §8 has no metric table")
	}

	// Code -> table.
	for name, typ := range types {
		dtyp, ok := doc[name]
		if !ok {
			t.Errorf("%s: metric %q missing from the DESIGN.md §8 table", where[name], name)
			continue
		}
		if dtyp != typ {
			t.Errorf("%s: metric %q is a %s in code but a %s in DESIGN.md §8", where[name], name, typ, dtyp)
		}
	}
	for prefix, typ := range prefixes {
		found := false
		for name, dtyp := range doc {
			if strings.HasPrefix(name, prefix) {
				found = true
				if dtyp != typ {
					t.Errorf("%s: dynamic family %q is a %s in code but %q is a %s in DESIGN.md §8",
						where[prefix], prefix, typ, name, dtyp)
				}
			}
		}
		if !found {
			t.Errorf("%s: dynamic metric family %q has no row in the DESIGN.md §8 table", where[prefix], prefix)
		}
	}

	// Table -> code.
	for name, dtyp := range doc {
		if _, ok := types[name]; ok {
			continue
		}
		matched := false
		for prefix := range prefixes {
			if strings.HasPrefix(name, prefix) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("DESIGN.md §8 documents %q (%s) but no code registers it", name, dtyp)
		}
	}
}
