package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is the exported form of a finished span (Duration > 0 for any
// real region) or of an instant mark (Duration == 0, emitted by
// Span.Mark).
type SpanData struct {
	// ID is unique within a Tracer; Parent is the enclosing span's ID, 0
	// for roots.
	ID     uint64
	Parent uint64
	// Name is the span's own name; Path is the slash-joined chain of
	// ancestor names (for aggregation by call position).
	Name string
	Path string
	// Track is the display row (Perfetto tid); the engine assigns one per
	// worker.
	Track    int
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Exporter consumes finished spans and instant marks. Implementations
// must be safe for concurrent use: spans end on every worker goroutine.
type Exporter interface {
	// Span receives a completed span.
	Span(SpanData)
	// Mark receives a zero-duration instant event.
	Mark(SpanData)
	// Flush finalizes output (writes buffered files, prints summaries).
	// It is called once, after the traced work completes.
	Flush() error
}

// Tracer creates spans and fans finished ones out to its exporters. The
// exporter set is fixed at construction, so reads need no lock. Tracers
// derived with Child share one span-ID counter, so IDs stay unique
// across a whole tracer family even when spans land in shared exporters.
type Tracer struct {
	exporters []Exporter
	ids       *atomic.Uint64
	// Epoch is the zero point exporters measure timestamps against.
	Epoch time.Time
}

// NewTracer builds a tracer exporting to the given exporters, with Epoch
// set to now.
func NewTracer(exporters ...Exporter) *Tracer {
	return &Tracer{exporters: exporters, ids: new(atomic.Uint64), Epoch: time.Now()}
}

// Child derives a tracer that exports to the parent's exporters plus
// extra, sharing the parent's span-ID counter and epoch. The job server
// uses this to tee each job's spans into a per-job ring while the
// session-wide exporters (flight recorder, live SSE) keep seeing them.
func (t *Tracer) Child(extra ...Exporter) *Tracer {
	if t == nil {
		return nil
	}
	exps := make([]Exporter, 0, len(t.exporters)+len(extra))
	exps = append(exps, t.exporters...)
	exps = append(exps, extra...)
	return &Tracer{exporters: exps, ids: t.ids, Epoch: t.Epoch}
}

// Exporters returns the tracer's exporter set (shared slice; callers
// must not mutate it). Nil-safe.
func (t *Tracer) Exporters() []Exporter {
	if t == nil {
		return nil
	}
	return t.exporters
}

// Flush flushes every exporter in order and returns the first error.
func (t *Tracer) Flush() error {
	var first error
	for _, e := range t.exporters {
		if err := e.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (t *Tracer) newSpan(name string, parent *Span, track int, attrs []Attr) *Span {
	sp := &Span{tr: t, id: t.ids.Add(1), name: name, track: track, start: time.Now()}
	if len(attrs) > 0 {
		sp.attrs = append(sp.attrs, attrs...)
	}
	if parent != nil {
		sp.parent = parent.id
		sp.path = parent.path + "/" + name
	} else {
		sp.path = name
	}
	return sp
}

// Span is one timed region of the pipeline. A nil *Span (what Start
// returns when tracing is disabled) is a valid no-op receiver for every
// method. A span belongs to the goroutine that started it: SetAttr must
// not race with End.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	path   string
	track  int
	start  time.Time
	attrs  []Attr
	ended  atomic.Bool
}

// SetAttr attaches attributes to the span; exporters see them on End.
// Typical use is recording work counters (conflicts, candidates) known
// only when the region finishes.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// Mark emits an instant event parented to s — e.g. the model checker's
// periodic states/sec heartbeat. Unlike SetAttr, Mark is safe to call
// from any goroutine (the model checker's wall-clock heartbeat ticker
// marks the BFS span it did not start): it reads only immutable span
// fields, and a mark racing with End is dropped best-effort rather than
// delivered after the span closed.
func (s *Span) Mark(name string, attrs ...Attr) {
	if s == nil || s.ended.Load() {
		return
	}
	data := SpanData{ID: s.tr.ids.Add(1), Parent: s.id, Name: name,
		Path: s.path + "/" + name, Track: s.track, Start: time.Now(), Attrs: attrs}
	for _, e := range s.tr.exporters {
		e.Mark(data)
	}
}

// Emit exports a pre-timed completed child span of s — a region whose
// start and duration were measured before any span (or even the tracer)
// existed, such as HTTP admission work that precedes the job's tracer or
// queue wait measured by the worker that dequeues. Like Mark it is safe
// from any goroutine and dropped if s already ended.
func (s *Span) Emit(name string, start time.Time, d time.Duration, attrs ...Attr) {
	if s == nil || s.ended.Load() {
		return
	}
	data := SpanData{ID: s.tr.ids.Add(1), Parent: s.id, Name: name,
		Path: s.path + "/" + name, Track: s.track, Start: start, Duration: d, Attrs: attrs}
	for _, e := range s.tr.exporters {
		e.Span(data)
	}
}

// End completes the span and exports it. Extra Ends are no-ops, so a
// deferred End composes with an explicit one on the happy path.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	data := SpanData{ID: s.id, Parent: s.parent, Name: s.name, Path: s.path,
		Track: s.track, Start: s.start, Duration: time.Since(s.start), Attrs: s.attrs}
	for _, e := range s.tr.exporters {
		e.Span(data)
	}
}

// CollectExporter buffers finished spans and marks in memory; it is the
// exporter for tests and in-process consumers.
type CollectExporter struct {
	mu    sync.Mutex
	spans []SpanData
	marks []SpanData
}

// NewCollect builds an empty collecting exporter.
func NewCollect() *CollectExporter { return &CollectExporter{} }

// Span implements Exporter.
func (c *CollectExporter) Span(d SpanData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = append(c.spans, d)
}

// Mark implements Exporter.
func (c *CollectExporter) Mark(d SpanData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.marks = append(c.marks, d)
}

// Flush implements Exporter (no-op).
func (c *CollectExporter) Flush() error { return nil }

// Spans returns a copy of the collected spans in completion order.
func (c *CollectExporter) Spans() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanData(nil), c.spans...)
}

// Marks returns a copy of the collected instant marks.
func (c *CollectExporter) Marks() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanData(nil), c.marks...)
}
