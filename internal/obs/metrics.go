package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a low-overhead metrics registry: named monotonic counters
// and latency histograms. The hot path (Counter.Add, Histogram.Observe)
// is a handful of atomic operations; registration (Counter, Histogram)
// takes a mutex and should be hoisted out of loops. A nil *Registry is a
// valid no-op receiver everywhere — Counter and Histogram return nil
// recorders whose methods are no-ops, so disabled metrics compile down
// to a nil check per recording site.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, gauges: map[string]*Gauge{}, hists: map[string]*Histogram{}}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op recorder) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op recorder) when r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use. Returns nil (a no-op recorder) when r is nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonic atomic counter. The nil receiver is a no-op.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time atomic value (queue depth, live bytes,
// workers busy). Unlike Counter it can go down. The nil receiver is a
// no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the gauge (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBounds are the histogram's exponential upper bounds; observations
// above the last bound land in the overflow bucket.
var histBounds = [...]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// numBuckets is len(histBounds) plus the overflow bucket.
const numBuckets = len(histBounds) + 1

// Histogram is a fixed-bucket latency histogram with atomic hot-path
// recording. The nil receiver is a no-op.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(histBounds) && d > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// CounterSnapshot is one counter's point-in-time value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's point-in-time value.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnapshot is one histogram's point-in-time state.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	Sum     time.Duration     `json:"-"`
	Max     time.Duration     `json:"-"`
	SumMS   float64           `json:"sum_ms"`
	MaxMS   float64           `json:"max_ms"`
	P50MS   float64           `json:"p50_ms"`
	P95MS   float64           `json:"p95_ms"`
	P99MS   float64           `json:"p99_ms"`
	Buckets [numBuckets]int64 `json:"buckets"`
}

// Mean is the average observed duration (0 with no observations).
func (h HistogramSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts, interpolating linearly inside the winning bucket. Estimates are
// capped by the observed Max (which also stands in for the open-ended
// overflow bucket's upper bound), so Quantile(1) == Max exactly and no
// estimate exceeds a value that was actually observed.
func (h HistogramSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Buckets {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = histBounds[i-1]
		}
		hi := h.Max
		if i < len(histBounds) && histBounds[i] < hi {
			hi = histBounds[i]
		}
		if hi < lo {
			// Every observation in this bucket is <= Max < lo; Max is the
			// tightest honest answer.
			return h.Max
		}
		est := lo + time.Duration((rank-float64(prev))/float64(c)*float64(hi-lo))
		if est > h.Max {
			est = h.Max
		}
		return est
	}
	return h.Max
}

// Snapshot is a consistent-enough point-in-time copy of a registry
// (individual values are read atomically; the set is read under the
// registration lock).
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values, sorted by name. A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for name, h := range r.hists {
		hs := HistogramSnapshot{Name: name, Count: h.count.Load(),
			Sum: time.Duration(h.sum.Load()), Max: time.Duration(h.max.Load())}
		hs.SumMS = float64(hs.Sum) / float64(time.Millisecond)
		hs.MaxMS = float64(hs.Max) / float64(time.Millisecond)
		for i := range hs.Buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		hs.P50MS = float64(hs.Quantile(0.50)) / float64(time.Millisecond)
		hs.P95MS = float64(hs.Quantile(0.95)) / float64(time.Millisecond)
		hs.P99MS = float64(hs.Quantile(0.99)) / float64(time.Millisecond)
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Get is a convenience lookup of a counter value by name without
// creating it (0 when absent or r is nil).
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// Format renders the snapshot as an aligned human-readable table:
// counters first, then histograms with count/mean/max.
func (s Snapshot) Format() string {
	var sb strings.Builder
	if len(s.Counters) > 0 {
		sb.WriteString("counters:\n")
		width := 0
		for _, c := range s.Counters {
			if len(c.Name) > width {
				width = len(c.Name)
			}
		}
		for _, c := range s.Counters {
			fmt.Fprintf(&sb, "  %-*s %12d\n", width, c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		sb.WriteString("gauges:\n")
		width := 0
		for _, g := range s.Gauges {
			if len(g.Name) > width {
				width = len(g.Name)
			}
		}
		for _, g := range s.Gauges {
			fmt.Fprintf(&sb, "  %-*s %12d\n", width, g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		sb.WriteString("histograms (count / mean / p50 / p95 / p99 / max):\n")
		width := 0
		for _, h := range s.Histograms {
			if len(h.Name) > width {
				width = len(h.Name)
			}
		}
		for _, h := range s.Histograms {
			fmt.Fprintf(&sb, "  %-*s %9d %12s %12s %12s %12s %12s\n", width, h.Name, h.Count,
				h.Mean().Round(time.Microsecond),
				h.Quantile(0.50).Round(time.Microsecond),
				h.Quantile(0.95).Round(time.Microsecond),
				h.Quantile(0.99).Round(time.Microsecond),
				h.Max.Round(time.Microsecond))
		}
	}
	return sb.String()
}
