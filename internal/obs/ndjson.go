package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SyncWriter wraps a writer with a mutex so independent producers (the
// engine's NDJSON telemetry sink and the span NDJSON exporter, both
// writing to stderr under -stats) never interleave bytes within a line.
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w.
func NewSyncWriter(w io.Writer) *SyncWriter { return &SyncWriter{w: w} }

// Write implements io.Writer; each call is atomic with respect to other
// writers of the same SyncWriter.
func (s *SyncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// ndjsonRecord is the line schema. It deliberately mirrors
// engine.Event's NDJSON stream — a "type" discriminator plus flat fields
// — so spans interleave with engine job events in one coherent stream:
//
//	{"type":"span","name":"smt.solve","span":17,"parent":9,"track":2,
//	 "t_ms":41.2,"duration_ms":3.8,"attrs":{"status":"unsat",...}}
//	{"type":"mark","name":"mc.progress","span":31,"parent":30,
//	 "t_ms":1203.0,"attrs":{"states":812345,"states_per_sec":623000}}
type ndjsonRecord struct {
	Type       string         `json:"type"`
	Name       string         `json:"name"`
	Span       uint64         `json:"span"`
	Parent     uint64         `json:"parent,omitempty"`
	Track      int            `json:"track,omitempty"`
	StartMS    float64        `json:"t_ms"`
	DurationMS float64        `json:"duration_ms,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// MarshalRecord renders one span or mark in the NDJSON line schema
// (without trailing newline), timestamped against epoch. It is the shared
// wire format of the -stats stream, the flight recorder, and the live
// SSE trace endpoint, so a consumer parses all three identically.
func MarshalRecord(typ string, d SpanData, epoch time.Time) ([]byte, error) {
	rec := ndjsonRecord{
		Type:    typ,
		Name:    d.Name,
		Span:    d.ID,
		Parent:  d.Parent,
		Track:   d.Track,
		StartMS: float64(d.Start.Sub(epoch)) / float64(time.Millisecond),
		Attrs:   attrMap(d.Attrs),
	}
	if d.Duration > 0 {
		rec.DurationMS = float64(d.Duration) / float64(time.Millisecond)
	}
	return json.Marshal(rec)
}

// NDJSONExporter streams finished spans and marks as one JSON object per
// line, timestamped in milliseconds since the exporter's epoch. Encoding
// errors are dropped (telemetry is best-effort, matching engine.Sink).
type NDJSONExporter struct {
	mu    sync.Mutex
	enc   *json.Encoder
	epoch time.Time
}

// NewNDJSON builds an exporter writing to w with epoch now.
func NewNDJSON(w io.Writer) *NDJSONExporter {
	return &NDJSONExporter{enc: json.NewEncoder(w), epoch: time.Now()}
}

// SetEpoch overrides the timestamp zero point (used by tracers to align
// exporters, and by tests for determinism).
func (n *NDJSONExporter) SetEpoch(t time.Time) { n.epoch = t }

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func (n *NDJSONExporter) write(typ string, d SpanData) {
	rec := ndjsonRecord{
		Type:    typ,
		Name:    d.Name,
		Span:    d.ID,
		Parent:  d.Parent,
		Track:   d.Track,
		StartMS: float64(d.Start.Sub(n.epoch)) / float64(time.Millisecond),
		Attrs:   attrMap(d.Attrs),
	}
	if d.Duration > 0 {
		rec.DurationMS = float64(d.Duration) / float64(time.Millisecond)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	_ = n.enc.Encode(rec)
}

// Span implements Exporter.
func (n *NDJSONExporter) Span(d SpanData) { n.write("span", d) }

// Mark implements Exporter.
func (n *NDJSONExporter) Mark(d SpanData) { n.write("mark", d) }

// Flush implements Exporter (lines are written eagerly; nothing buffers).
func (n *NDJSONExporter) Flush() error { return nil }
