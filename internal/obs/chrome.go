package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// chromeEvent is one Chrome trace-event record (the Trace Event Format
// consumed by Perfetto and chrome://tracing). Spans are complete events
// (ph "X"), marks are thread-scoped instants (ph "i"), and track names
// are metadata events (ph "M").
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // microseconds since epoch
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// ChromeExporter buffers finished spans and writes a Chrome trace-event
// JSON document ({"traceEvents":[...]}) to its writer at Flush. Open the
// file at https://ui.perfetto.dev (or chrome://tracing): each engine
// worker renders as one named track, with the span hierarchy — engine
// jobs → CEGIS iterations → SMT queries → SAT searches — nested by time.
type ChromeExporter struct {
	mu     sync.Mutex
	w      io.Writer
	epoch  time.Time
	events []chromeEvent
	tracks map[int]bool
}

// NewChrome builds an exporter buffering into memory and writing the
// JSON document to w at Flush. Epoch defaults to now.
func NewChrome(w io.Writer) *ChromeExporter {
	return &ChromeExporter{w: w, epoch: time.Now(), tracks: map[int]bool{}}
}

// SetEpoch overrides the timestamp zero point (alignment + test
// determinism).
func (c *ChromeExporter) SetEpoch(t time.Time) { c.epoch = t }

// cat derives the event category from the span name's package prefix
// ("smt.solve" → "smt"), enabling per-subsystem filtering in Perfetto.
func cat(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

func (c *ChromeExporter) add(ev chromeEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracks[ev.TID] = true
	c.events = append(c.events, ev)
}

// Span implements Exporter.
func (c *ChromeExporter) Span(d SpanData) {
	dur := d.Duration.Microseconds()
	if dur < 1 {
		dur = 1 // Perfetto drops zero-width complete events
	}
	c.add(chromeEvent{
		Name: d.Name, Cat: cat(d.Name), Ph: "X",
		TS: d.Start.Sub(c.epoch).Microseconds(), Dur: dur,
		PID: 1, TID: d.Track, Args: attrMap(d.Attrs),
	})
}

// Mark implements Exporter.
func (c *ChromeExporter) Mark(d SpanData) {
	c.add(chromeEvent{
		Name: d.Name, Cat: cat(d.Name), Ph: "i",
		TS:  d.Start.Sub(c.epoch).Microseconds(),
		PID: 1, TID: d.Track, S: "t", Args: attrMap(d.Attrs),
	})
}

// Flush writes the buffered document. Events are sorted by timestamp
// (stable, so completion order breaks ties deterministically) and
// prefixed with process/track-name metadata.
func (c *ChromeExporter) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.SliceStable(c.events, func(i, j int) bool { return c.events[i].TS < c.events[j].TS })
	var tids []int
	for tid := range c.tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	meta := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: 1, Args: map[string]any{"name": "transit"},
	}}
	for _, tid := range tids {
		name := "main"
		if tid > 0 {
			name = fmt.Sprintf("worker %d", tid)
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid, Args: map[string]any{"name": name},
		})
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: append(meta, c.events...)}
	enc := json.NewEncoder(c.w)
	return enc.Encode(doc)
}
