package core_test

// Provenance overhead gate: the ledger must be ~free when no recorder is
// in the context (one ctx lookup, recordProvenance skipped) and ≤5%
// when enabled (captures are plan-time structs; assembly is one
// single-threaded pass over data the run already produced). Compare:
//
//	go test ./internal/core -bench 'CompleteProvenance' -benchtime 20x

import (
	"context"
	"testing"

	"transit/internal/core"
	"transit/internal/obs/provenance"
	"transit/internal/protocols"
	"transit/internal/synth"
)

func benchComplete(b *testing.B, record bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		spec := protocols.VI(2)
		ctx := context.Background()
		if record {
			ctx = provenance.WithRecorder(ctx, provenance.NewRecorder(spec.Name))
		}
		_, err := core.CompleteCtx(ctx, spec.Sys, spec.Vocab, spec.Snippets, core.Options{
			Limits:       synth.Limits{MaxSize: 12},
			Workers:      1,
			DisableCache: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompleteProvenanceOff(b *testing.B) { benchComplete(b, false) }
func BenchmarkCompleteProvenanceOn(b *testing.B)  { benchComplete(b, true) }
