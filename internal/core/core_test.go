package core

import (
	"strings"
	"testing"

	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
	"transit/internal/synth"
)

// anecdoteSystem reproduces the scope of the paper's §2 SGI-Origin
// anecdote: a directory with Owner/Sharers receiving READ/WRITE requests,
// plus a minimal cache definition to receive replies.
func anecdoteSystem(t *testing.T) (*efsm.System, *expr.Vocabulary, *efsm.ProcDef, *efsm.Network, *efsm.Network) {
	t.Helper()
	u := expr.NewUniverse(3)
	mt := u.MustDeclareEnum("ReqType", "READ", "WRITE")
	rt := u.MustDeclareEnum("RepType", "SPEC_REPLY", "INT_SHARED")

	cache := &efsm.ProcDef{
		Name:       "Cache",
		States:     u.MustDeclareEnum("CacheSt", "IDLE", "WAIT"),
		Init:       "IDLE",
		Replicated: true,
	}
	dir := &efsm.ProcDef{
		Name:   "Dir",
		States: u.MustDeclareEnum("DirSt", "EXCLUSIVE", "BUSY_SHARED"),
		Init:   "EXCLUSIVE",
		Vars: []*expr.Var{
			expr.V("Owner", expr.PIDType),
			expr.V("Sharers", expr.SetType),
		},
	}
	reqNet := &efsm.Network{
		Name: "ReqNet", Kind: efsm.Ordered, Receiver: dir, Route: efsm.RouteStatic,
		Msg: &efsm.MessageType{Name: "Req", Fields: []efsm.Field{
			{Name: "MType", T: expr.EnumOf(mt)},
			{Name: "Sender", T: expr.PIDType},
		}},
	}
	repNet := &efsm.Network{
		Name: "RepNet", Kind: efsm.Unordered, Receiver: cache, Route: efsm.RouteByField, DestField: "Dest",
		Msg: &efsm.MessageType{Name: "Rep", Fields: []efsm.Field{
			{Name: "RType", T: expr.EnumOf(rt)},
			{Name: "Dest", T: expr.PIDType},
		}},
	}
	sys := &efsm.System{Name: "anecdote", U: u,
		Networks: []*efsm.Network{reqNet, repNet},
		Defs:     []*efsm.ProcDef{dir, cache},
	}
	vocab := expr.CoherenceVocabulary(u, expr.CoherenceOptions{
		Enums:             []*expr.EnumType{mt, rt},
		WithEnumConstants: true,
	})
	return sys, vocab, dir, reqNet, repNet
}

// sharersUpdateOf digs the synthesized Sharers update out of the completed
// directory.
func sharersUpdateOf(t *testing.T, dir *efsm.ProcDef) expr.Expr {
	t.Helper()
	for _, tr := range dir.Transitions {
		for _, up := range tr.Updates {
			if up.Var == "Sharers" {
				return up.Rhs
			}
		}
	}
	t.Fatal("no Sharers update synthesized")
	return nil
}

// TestAnecdoteUnderspecifiedThenFixed replays the §2 story at the
// synthesis level: the symbolic snippet alone yields
// Sharers ∪ {Msg.Sender}; adding the concrete bug-fix snippet yields
// Sharers ∪ {Msg.Sender, Owner}.
func TestAnecdoteUnderspecifiedThenFixed(t *testing.T) {
	mkSnippet := func(withFix bool) []*efsm.Snippet {
		sys, vocab, _, reqNet, repNet := anecdoteSystem(t)
		mtType, _ := sys.U.Enum("ReqType")
		mtField := expr.V("Msg.MType", expr.EnumOf(mtType))
		sender := expr.V("Msg.Sender", expr.PIDType)
		owner := expr.V("Owner", expr.PIDType)
		sharers := expr.V("Sharers", expr.SetType)
		sharersP := expr.V(efsm.Prime("Sharers"), expr.SetType)

		base := &efsm.Snippet{
			Label: "read-to-exclusive", Process: "Dir",
			From: "EXCLUSIVE", Event: efsm.Event{Net: reqNet, MsgVar: "Msg"},
			Guard: expr.And(expr.Eq(mtField, expr.EnumC(mtType, "READ")), expr.Neq(sender, owner)),
			To:    "BUSY_SHARED",
			Sends: []efsm.SendSpec{{Net: repNet, MsgVar: "RMsg"}},
			Cases: []efsm.SnippetCase{{
				Pre: nil,
				Posts: []efsm.Post{
					// "Sharers needs to contain at least the sender of
					// the received message in addition to the old value."
					{Target: "Sharers", Constraint: expr.SubsetEq(expr.SetAdd(sharers, sender), sharersP)},
					efsm.EqPost("RMsg.RType", expr.EnumC(sys.U.Enums()[1], "SPEC_REPLY")),
					efsm.EqPost("RMsg.Dest", sender),
				},
			}},
		}
		snips := []*efsm.Snippet{base}
		if withFix {
			rtType, _ := sys.U.Enum("RepType")
			fix := &efsm.Snippet{
				Label: "fig2-fix", Process: "Dir",
				From: "EXCLUSIVE", Event: efsm.Event{Net: reqNet, MsgVar: "Msg"},
				Guard: base.Guard, To: "BUSY_SHARED",
				Sends: []efsm.SendSpec{{Net: repNet, MsgVar: "RMsg"}},
				Cases: []efsm.SnippetCase{{
					// The counterexample scenario of Figure 2, pinned
					// concretely: Owner=C1, Sender=C2, Sharers={}.
					Pre: expr.And(
						expr.Eq(mtField, expr.EnumC(mtType, "READ")),
						expr.Eq(owner, expr.PIDC(1)),
						expr.Eq(sender, expr.PIDC(2)),
						expr.Eq(sharers, expr.NewConst(expr.SetVal(0)))),
					Posts: []efsm.Post{
						{Target: "Sharers", Constraint: expr.Eq(sharersP, expr.SetC(1, 2))},
						efsm.EqPost("RMsg.RType", expr.EnumC(rtType, "SPEC_REPLY")),
						efsm.EqPost("RMsg.Dest", sender),
					},
				}},
			}
			snips = append(snips, fix)
		}
		_, err := Complete(sys, vocab, snips, Options{Limits: synth.Limits{MaxSize: 10}})
		if err != nil {
			t.Fatalf("Complete (fix=%v): %v", withFix, err)
		}
		got := sharersUpdateOf(t, sys.Defs[0])
		// Check the semantics over a sweep of environments.
		u := sys.U
		for ownerPID := 0; ownerPID < 3; ownerPID++ {
			for senderPID := 0; senderPID < 3; senderPID++ {
				for mask := uint64(0); mask < 8; mask++ {
					env := expr.Env{
						"Owner":      expr.PIDVal(ownerPID),
						"Sharers":    expr.SetVal(mask),
						"Msg.Sender": expr.PIDVal(senderPID),
						"Msg.MType":  expr.EnumValOf(mtType, "READ"),
						efsm.SelfVar: expr.PIDVal(0),
					}
					out := got.Eval(u, env).Set()
					want := mask | 1<<uint(senderPID)
					if withFix {
						want |= 1 << uint(ownerPID)
					}
					if withFix && out != want {
						t.Fatalf("fixed update %s: env owner=%d sender=%d sharers=%b -> %b, want %b",
							expr.Pretty(got), ownerPID, senderPID, mask, out, want)
					}
					if !withFix && out != want {
						t.Fatalf("buggy update %s should be minimal superset: got %b, want %b",
							expr.Pretty(got), out, want)
					}
				}
			}
		}
		return snips
	}

	mkSnippet(false) // Sharers := Sharers ∪ {Msg.Sender}
	mkSnippet(true)  // Sharers := Sharers ∪ {Msg.Sender, Owner}
}

func TestCompleteSynthesizesGuards(t *testing.T) {
	sys, vocab, _, reqNet, repNet := anecdoteSystem(t)
	mtType, _ := sys.U.Enum("ReqType")
	rtType, _ := sys.U.Enum("RepType")
	mtField := expr.V("Msg.MType", expr.EnumOf(mtType))
	sender := expr.V("Msg.Sender", expr.PIDType)
	// Two blocks for (EXCLUSIVE, ReqNet) with empty guards, distinguished
	// only by their preconditions on the message type.
	read := &efsm.Snippet{
		Label: "read", Process: "Dir", From: "EXCLUSIVE",
		Event: efsm.Event{Net: reqNet, MsgVar: "Msg"}, To: "BUSY_SHARED",
		Sends: []efsm.SendSpec{{Net: repNet, MsgVar: "R"}},
		Cases: []efsm.SnippetCase{{
			Pre: expr.Eq(mtField, expr.EnumC(mtType, "READ")),
			Posts: []efsm.Post{
				efsm.EqPost("R.RType", expr.EnumC(rtType, "SPEC_REPLY")),
				efsm.EqPost("R.Dest", sender),
			},
		}},
	}
	write := &efsm.Snippet{
		Label: "write", Process: "Dir", From: "EXCLUSIVE",
		Event: efsm.Event{Net: reqNet, MsgVar: "Msg"}, To: "EXCLUSIVE",
		Sends: []efsm.SendSpec{{Net: repNet, MsgVar: "R"}},
		Cases: []efsm.SnippetCase{{
			Pre: expr.Eq(mtField, expr.EnumC(mtType, "WRITE")),
			Posts: []efsm.Post{
				efsm.EqPost("R.RType", expr.EnumC(rtType, "INT_SHARED")),
				efsm.EqPost("R.Dest", sender),
				efsm.EqPost("Owner", sender),
			},
		}},
	}
	rep, err := Complete(sys, vocab, []*efsm.Snippet{read, write}, Options{Limits: synth.Limits{MaxSize: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GuardsSynthesized != 2 {
		t.Errorf("GuardsSynthesized = %d, want 2", rep.GuardsSynthesized)
	}
	if rep.Transitions != 2 {
		t.Errorf("Transitions = %d, want 2", rep.Transitions)
	}
	// The two guards must be mutually exclusive and cover their pres: the
	// static check already ran; assert behaviour directly too.
	u := sys.U
	var guards []expr.Expr
	for _, tr := range sys.Defs[0].Transitions {
		guards = append(guards, tr.Guard)
	}
	for senderPID := 0; senderPID < 3; senderPID++ {
		for _, mv := range []string{"READ", "WRITE"} {
			env := expr.Env{
				"Owner": expr.PIDVal(0), "Sharers": expr.SetVal(0),
				"Msg.MType": expr.EnumValOf(mtType, mv), "Msg.Sender": expr.PIDVal(senderPID),
				efsm.SelfVar: expr.PIDVal(0),
			}
			g0 := guards[0].Eval(u, env).Bool()
			g1 := guards[1].Eval(u, env).Bool()
			if g0 && g1 {
				t.Fatalf("guards overlap at %v", env)
			}
			wantRead := mv == "READ"
			if g0 != wantRead || g1 != !wantRead {
				t.Fatalf("guard split wrong at MType=%s: read=%v write=%v", mv, g0, g1)
			}
		}
	}
	if rep.UpdatesSynthesized == 0 || rep.UpdateExprsTried == 0 {
		t.Error("update metrics not populated")
	}
}

func TestCompleteRejectsUnknownProcess(t *testing.T) {
	sys, vocab, _, reqNet, _ := anecdoteSystem(t)
	sn := &efsm.Snippet{Process: "Nope", From: "EXCLUSIVE",
		Event: efsm.Event{Net: reqNet, MsgVar: "Msg"}, To: "EXCLUSIVE"}
	if _, err := Complete(sys, vocab, []*efsm.Snippet{sn}, Options{}); err == nil {
		t.Error("expected unknown-process error")
	}
}

func TestCompleteRejectsOverlappingSymbolicGuards(t *testing.T) {
	sys, vocab, _, reqNet, _ := anecdoteSystem(t)
	mtType, _ := sys.U.Enum("ReqType")
	mtField := expr.V("Msg.MType", expr.EnumOf(mtType))
	g := expr.Eq(mtField, expr.EnumC(mtType, "READ"))
	a := &efsm.Snippet{Label: "a", Process: "Dir", From: "EXCLUSIVE",
		Event: efsm.Event{Net: reqNet, MsgVar: "Msg"}, Guard: g, To: "EXCLUSIVE"}
	b := &efsm.Snippet{Label: "b", Process: "Dir", From: "EXCLUSIVE",
		Event: efsm.Event{Net: reqNet, MsgVar: "Msg"}, Guard: g, To: "BUSY_SHARED"}
	_, err := Complete(sys, vocab, []*efsm.Snippet{a, b}, Options{})
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("expected overlap error, got %v", err)
	}
}

func TestCaseStudyDriverConvergence(t *testing.T) {
	// A deliberately underspecified spec that converges after one scripted
	// fix: the first round's WRITE requests are unexpected messages.
	build := func() (*efsm.System, *expr.Vocabulary, []mc.Invariant, error) {
		sys, vocab, dir, _, _ := anecdoteSystem(t)
		_ = dir
		// Give caches a trigger so requests actually flow.
		cache := sys.Defs[1]
		cache.Triggers = []string{"DoRead", "DoWrite"}
		return sys, vocab, nil, nil
	}
	// Snippet factories (fresh expressions per build are not needed; the
	// networks are recreated per build, so snippets must be rebuilt too).
	// For this test we instead build one system outside and reuse it: the
	// driver rebuilds, so snippets must reference the rebuilt networks.
	// To keep the test honest we construct the study over a fixed build.
	sysFixed, vocabFixed, _, reqNetF, repNetF := anecdoteSystem(t)
	cacheDef := sysFixed.Defs[1]
	cacheDef.Triggers = []string{"DoRead", "DoWrite"}
	mtType, _ := sysFixed.U.Enum("ReqType")
	rtType, _ := sysFixed.U.Enum("RepType")
	sender := expr.V("Msg.Sender", expr.PIDType)
	mtField := expr.V("Msg.MType", expr.EnumOf(mtType))
	rtField := expr.V("Msg.RType", expr.EnumOf(rtType))
	self := expr.V(efsm.SelfVar, expr.PIDType)

	cacheRead := &efsm.Snippet{
		Label: "cache-read", Process: "Cache", From: "IDLE",
		Event: efsm.Event{Trigger: "DoRead"}, To: "WAIT",
		Sends: []efsm.SendSpec{{Net: reqNetF, MsgVar: "Out"}},
		Cases: []efsm.SnippetCase{{Posts: []efsm.Post{
			efsm.EqPost("Out.MType", expr.EnumC(mtType, "READ")),
			efsm.EqPost("Out.Sender", self),
		}}},
	}
	cacheWrite := &efsm.Snippet{
		Label: "cache-write", Process: "Cache", From: "IDLE",
		Event: efsm.Event{Trigger: "DoWrite"}, To: "WAIT",
		Sends: []efsm.SendSpec{{Net: reqNetF, MsgVar: "Out"}},
		Cases: []efsm.SnippetCase{{Posts: []efsm.Post{
			efsm.EqPost("Out.MType", expr.EnumC(mtType, "WRITE")),
			efsm.EqPost("Out.Sender", self),
		}}},
	}
	cacheRecv := &efsm.Snippet{
		Label: "cache-recv", Process: "Cache", From: "WAIT",
		Event: efsm.Event{Net: repNetF, MsgVar: "Msg"},
		Guard: expr.Eq(rtField, rtField), // always true, symbolic
		To:    "IDLE",
	}
	dirRead := &efsm.Snippet{
		Label: "dir-read", Process: "Dir", From: "EXCLUSIVE",
		Event: efsm.Event{Net: reqNetF, MsgVar: "Msg"},
		Guard: expr.Eq(mtField, expr.EnumC(mtType, "READ")),
		To:    "EXCLUSIVE",
		Sends: []efsm.SendSpec{{Net: repNetF, MsgVar: "R"}},
		// Posts are conditioned on the message type: the WRITE fix below
		// lands in the same (state, event, next-state) block (§5.2
		// grouping) and constrains the same outbound fields.
		Cases: []efsm.SnippetCase{{
			Pre: expr.Eq(mtField, expr.EnumC(mtType, "READ")),
			Posts: []efsm.Post{
				efsm.EqPost("R.RType", expr.EnumC(rtType, "SPEC_REPLY")),
				efsm.EqPost("R.Dest", sender),
			}}},
	}
	// The fix: handle WRITE (initially missing → unexpected message).
	dirWrite := &efsm.Snippet{
		Label: "dir-write", Process: "Dir", From: "EXCLUSIVE",
		Event: efsm.Event{Net: reqNetF, MsgVar: "Msg"},
		Guard: expr.Eq(mtField, expr.EnumC(mtType, "WRITE")),
		To:    "EXCLUSIVE",
		Sends: []efsm.SendSpec{{Net: repNetF, MsgVar: "R"}},
		Cases: []efsm.SnippetCase{{
			Pre: expr.Eq(mtField, expr.EnumC(mtType, "WRITE")),
			Posts: []efsm.Post{
				efsm.EqPost("R.RType", expr.EnumC(rtType, "INT_SHARED")),
				efsm.EqPost("R.Dest", sender),
			}}},
	}

	cs := CaseStudy{
		Name: "driver-smoke",
		Build: func() (*efsm.System, *expr.Vocabulary, []mc.Invariant, error) {
			// Reuse the fixed skeleton; Complete clears transitions.
			return sysFixed, vocabFixed, nil, nil
		},
		Initial: []*efsm.Snippet{cacheRead, cacheWrite, cacheRecv, dirRead},
		Fixes:   []FixBatch{{Label: "handle WRITE", Snippets: []*efsm.Snippet{dirWrite}}},
		MCOpts:  mc.Options{MaxStates: 200_000},
	}
	res, err := RunCaseStudy(cs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("case study should converge")
	}
	if len(res.Iterations) != 2 {
		t.Fatalf("iterations = %d, want 2", len(res.Iterations))
	}
	first := res.Iterations[0]
	if first.Violation == nil || first.Violation.Kind != mc.SemanticsProblem {
		t.Fatalf("first iteration should hit unexpected WRITE, got %+v", first.Violation)
	}
	if res.TotalSnippets != 5 {
		t.Errorf("TotalSnippets = %d, want 5", res.TotalSnippets)
	}
	_ = build
}

func TestCaseStudyFixesExhausted(t *testing.T) {
	sysFixed, vocabFixed, _, reqNetF, _ := anecdoteSystem(t)
	cacheDef := sysFixed.Defs[1]
	cacheDef.Triggers = []string{"DoRead"}
	mtType, _ := sysFixed.U.Enum("ReqType")
	self := expr.V(efsm.SelfVar, expr.PIDType)
	cacheRead := &efsm.Snippet{
		Label: "cache-read", Process: "Cache", From: "IDLE",
		Event: efsm.Event{Trigger: "DoRead"}, To: "IDLE",
		Sends: []efsm.SendSpec{{Net: reqNetF, MsgVar: "Out"}},
		Cases: []efsm.SnippetCase{{Posts: []efsm.Post{
			efsm.EqPost("Out.MType", expr.EnumC(mtType, "READ")),
			efsm.EqPost("Out.Sender", self),
		}}},
	}
	// The directory never handles READ: unexpected message, no fixes.
	cs := CaseStudy{
		Name: "never-converges",
		Build: func() (*efsm.System, *expr.Vocabulary, []mc.Invariant, error) {
			return sysFixed, vocabFixed, nil, nil
		},
		Initial: []*efsm.Snippet{cacheRead},
		MCOpts:  mc.Options{MaxStates: 10_000},
	}
	if _, err := RunCaseStudy(cs); err == nil {
		t.Fatal("expected fixes-exhausted error")
	}
}
