// Package core is the TRANSIT synthesis tool (§5 of the paper): it
// completes an EFSM protocol skeleton from concolic snippets. Update
// expressions for each primed variable are inferred directly with
// SolveConcolic (§5.1); guards for each (control state, input event) group
// are inferred under the §5.2 mutual-exclusion side conditions; the
// completed transitions are installed into the efsm.System, ready for the
// model checker. The iterative specify → synthesize → model-check →
// fix-with-snippets workflow of the case studies is driven by RunCaseStudy.
//
// Completion is executed by internal/engine as a DAG of inference jobs:
// guard inference within a (state, event) group stays sequential (later
// guards are constrained by earlier ones), but distinct groups, the
// per-group mutual-exclusion checks, and every update-expression job run
// in parallel on a bounded worker pool, with cross-job memoization and
// cooperative cancellation. With Options.Workers <= 1 the jobs execute in
// exactly the historical sequential order, so single-worker output is
// byte-identical to the pre-engine implementation.
package core

import (
	"context"
	"fmt"
	"time"

	"transit/internal/efsm"
	"transit/internal/engine"
	"transit/internal/expr"
	"transit/internal/obs"
	"transit/internal/obs/provenance"
	"transit/internal/smt"
	"transit/internal/synth"
)

// Options configures protocol completion.
type Options struct {
	// Limits bounds each expression-inference call.
	Limits synth.Limits
	// SkipGuardCheck disables the static pairwise mutual-exclusion
	// verification of each group's guards.
	SkipGuardCheck bool
	// NoIncremental disables the shared incremental SMT sessions (the
	// per-group guard-chain and mutual-exclusion sessions, and the
	// per-solve CEGIS sessions), solving every query one-shot instead.
	// Both modes pose identical queries and receive identical canonical
	// models, so completed systems are byte-identical either way; the flag
	// is an escape hatch and a differential-testing lever. It is merged
	// into Limits.NoIncremental at run start.
	NoIncremental bool
	// Workers sizes the inference worker pool. Values <= 1 execute jobs
	// strictly in plan order, reproducing the sequential implementation
	// byte for byte; larger values run independent jobs concurrently
	// (the inferred expressions are identical at every worker count).
	Workers int
	// EnumWorkers sizes the tier-parallel enumeration fan-out inside each
	// inference job (values <= 1 mean sequential tiers). It multiplies
	// with Workers, and — like Workers — never changes inferred
	// expressions, only wall-clock time. Jobs whose Limits set their own
	// EnumWorkers keep it.
	EnumWorkers int
	// Portfolio races this many solver configurations per cache-miss
	// inference job (engine.Config.Portfolio); values <= 1 disable racing.
	// Jobs whose Limits set their own Portfolio keep it.
	Portfolio int
	// Timeout bounds the whole completion run; 0 means none.
	Timeout time.Duration
	// JobTimeout bounds each individual inference job; 0 means none.
	JobTimeout time.Duration
	// Retry is the engine's retry-with-larger-limits policy for jobs
	// whose bounded search came up empty. The zero value disables it.
	Retry engine.RetryPolicy
	// DisableCache turns off cross-job memoization. Memoization never
	// changes results (identical sub-problems have identical answers and
	// their original work stats are replayed into the Report), it only
	// skips redundant solving.
	DisableCache bool
	// Cache, when non-nil, is consulted and populated instead of a fresh
	// per-run cache — share one across CEGIS iterations or across
	// protocols to exploit repeated sub-problems.
	Cache *engine.Cache
	// Telemetry receives the engine's structured event stream.
	Telemetry engine.Sink
}

// Report summarizes one completion run; its counters feed Table 4.
type Report struct {
	// Snippets is the number of snippets consumed (the paper's
	// "scenarios").
	Snippets int
	// UpdatesSynthesized counts inferred update and message-field
	// expressions; GuardsSynthesized counts inferred guards.
	UpdatesSynthesized int
	GuardsSynthesized  int
	// UpdateExprsTried / GuardExprsTried are the enumeration workloads.
	UpdateExprsTried int64
	GuardExprsTried  int64
	// SMTQueries counts consistency and concretization queries.
	SMTQueries int
	// SMTClausesReused counts cached-circuit clauses the incremental
	// sessions reused instead of re-encoding (0 under NoIncremental).
	SMTClausesReused int64
	UpdateTime       time.Duration
	GuardTime        time.Duration
	Elapsed          time.Duration
	// Transitions is the number of completed transitions installed.
	Transitions int
	// Workers is the pool size the run used; Jobs the number of engine
	// jobs planned.
	Workers int
	Jobs    int
	// CacheHits / CacheMisses count memoization lookups by inference
	// jobs during this run; DiskHits is the subset of hits served by the
	// persistent backend.
	CacheHits   int
	CacheMisses int
	DiskHits    int
	// CacheWait / SolveWait split the jobs' wall time between cache
	// lookups and actual synthesis (summed across jobs in plan order).
	CacheWait time.Duration
	SolveWait time.Duration
	// Utilization is busy-time / (wall-time × workers) for the engine
	// phase of the run.
	Utilization float64
}

// guardVar is the fresh output variable name used for guard inference; the
// '$' keeps it out of any user scope.
const guardVar = "guard$"

// Complete synthesizes full transitions for every process of the system
// from the given snippets and installs them. Existing transitions on the
// definitions are replaced. The vocabulary is the search space for inferred
// guards and updates (snippet expressions themselves may use constants
// outside it).
func Complete(sys *efsm.System, vocab *expr.Vocabulary, snippets []*efsm.Snippet, opts Options) (*Report, error) {
	return CompleteCtx(context.Background(), sys, vocab, snippets, opts)
}

// CompleteCtx is Complete under a context: cancellation or deadline
// expiry stops in-flight inference jobs and fails the run with the
// context's error.
func CompleteCtx(ctx context.Context, sys *efsm.System, vocab *expr.Vocabulary, snippets []*efsm.Snippet, opts Options) (*Report, error) {
	start := time.Now()
	opts.Limits.NoIncremental = opts.Limits.NoIncremental || opts.NoIncremental
	rep := &Report{Snippets: len(snippets)}
	defByName := map[string]*efsm.ProcDef{}
	for _, d := range sys.Defs {
		defByName[d.Name] = d
		d.Transitions = nil
	}
	perDef := map[string][]*efsm.Snippet{}
	var defOrder []string
	for _, sn := range snippets {
		d, ok := defByName[sn.Process]
		if !ok {
			return rep, fmt.Errorf("core: snippet %q names unknown process %s", sn.Label, sn.Process)
		}
		if err := sn.Validate(sys, d); err != nil {
			return rep, err
		}
		if _, seen := perDef[sn.Process]; !seen {
			defOrder = append(defOrder, sn.Process)
		}
		perDef[sn.Process] = append(perDef[sn.Process], sn)
	}

	cache := opts.Cache
	if cache == nil && !opts.DisableCache {
		cache = engine.NewCache()
	}
	eng := engine.New(engine.Config{
		Workers:     opts.Workers,
		EnumWorkers: opts.EnumWorkers,
		Portfolio:   opts.Portfolio,
		Timeout:     opts.Timeout,
		JobTimeout:  opts.JobTimeout,
		Retry:       opts.Retry,
		Cache:       cache,
		Sink:        opts.Telemetry,
	})
	p := &planner{sys: sys, vocab: vocab, opts: opts, eng: eng}
	for _, name := range defOrder {
		if err := p.planDef(defByName[name], perDef[name]); err != nil {
			return rep, err
		}
	}

	stats, err := eng.Run(ctx, p.jobs)
	aggregate(rep, p, stats)
	// The ledger is assembled the same way the Report is — in plan order,
	// single-threaded, on both the success and failure paths — so it is
	// worker-count-deterministic for free. With no recorder in the context
	// this is a nil-check and nothing more.
	recordProvenance(provenance.FromCtx(ctx), p)
	if err != nil {
		rep.Elapsed = time.Since(start)
		return rep, err
	}

	// Deterministic assembly: install transitions in snippet/group/block
	// order regardless of the order jobs completed in.
	for _, dp := range p.defs {
		for _, gp := range dp.groups {
			if err := gp.assemble(p, dp.d, rep); err != nil {
				rep.Elapsed = time.Since(start)
				return rep, err
			}
		}
	}
	rep.Elapsed = time.Since(start)
	if err := sys.Validate(); err != nil {
		return rep, fmt.Errorf("core: completed system is malformed: %w", err)
	}
	return rep, nil
}

// aggregate folds per-job telemetry into the Report in plan order, so the
// counters are independent of scheduling.
func aggregate(rep *Report, p *planner, stats engine.RunStats) {
	rep.Workers = stats.Workers
	rep.Jobs = stats.Jobs
	rep.Utilization = stats.Utilization
	for _, j := range p.jobs {
		switch j.Kind {
		case "guard":
			rep.GuardExprsTried += j.Candidates
			rep.SMTQueries += j.SMTQueries
			rep.SMTClausesReused += j.ClausesReused
			rep.GuardTime += j.Duration
			if j.Err == nil {
				rep.GuardsSynthesized++
			}
		case "update":
			rep.UpdateExprsTried += j.Candidates
			rep.SMTQueries += j.SMTQueries
			rep.SMTClausesReused += j.ClausesReused
			rep.UpdateTime += j.Duration
			if j.Err == nil {
				rep.UpdatesSynthesized++
			}
		}
		if j.Kind == "guard" || j.Kind == "update" {
			if j.CacheHit {
				rep.CacheHits++
				if j.DiskHit {
					rep.DiskHits++
				}
			} else if j.Err == nil {
				rep.CacheMisses++
			}
			rep.CacheWait += j.CacheWait
			rep.SolveWait += j.SolveWait
		}
	}
}

// block is one guard-action block: the snippets sharing (from, event, to).
type block struct {
	key      string
	snips    []*efsm.Snippet
	guard    expr.Expr // symbolic or synthesized
	symbolic bool
	defer_   bool
}

// group is one (state, event) family whose guards must be mutually
// exclusive.
type group struct {
	key    string
	event  efsm.Event
	from   string
	blocks []*block
}

// planner accumulates the job DAG and the assembly schedule.
type planner struct {
	sys   *efsm.System
	vocab *expr.Vocabulary
	opts  Options
	eng   *engine.Engine
	jobs  []*engine.Job
	defs  []*defPlan
	// caps holds one provenance capture per inference job, in plan order;
	// recordProvenance folds them into the run's ledger after the engine
	// run. Each job's Run closure writes only its own capture.
	caps []*holeCapture
}

type defPlan struct {
	d      *efsm.ProcDef
	groups []*groupPlan
}

// groupPlan is one group's share of the DAG plus everything assembly
// needs afterwards. The two sessions (absent under NoIncremental) carry
// encodings and learned clauses across the group's related queries:
// guardSess, over scopeVars ∪ {guard$}, is shared by the sequential
// guard-inference chain, whose jobs pose many CEGIS queries over the same
// variables; mutexSess, over scopeVars, is shared by the pairwise
// mutual-exclusion checks, which re-solve the same guard circuits in
// different pairings. Neither session is ever used concurrently: the
// chain jobs are ordered by engine dependencies and the mutex job runs
// after the chain.
type groupPlan struct {
	g         *group
	ctx       string // error-message prefix, e.g. "core: Dir (EXCLUSIVE, ReqNet)"
	scopeVars []*expr.Var
	blocks    []*blockPlan // aligned with g.blocks
	guardSess *smt.Session
	mutexSess *smt.Session
}

// blockPlan carries one block's planned update jobs and their result
// slots (each job writes its own index; the engine's completion barrier
// orders those writes before assembly reads them).
type blockPlan struct {
	b       *block
	sends   []efsm.SendSpec
	targets []string
	vts     []expr.Type
	rhs     []expr.Expr
}

func (p *planner) add(j *engine.Job) { p.jobs = append(p.jobs, j) }

// planDef groups a process's snippets into (state, event) families and
// plans each group. The grouping mirrors §5.2: snippets sharing
// (from, event, to, defer) form a block; blocks sharing (from, event)
// form a group.
func (p *planner) planDef(d *efsm.ProcDef, snips []*efsm.Snippet) error {
	groups := map[string]*group{}
	var order []string
	for _, sn := range snips {
		gk := sn.GroupKey()
		g, ok := groups[gk]
		if !ok {
			g = &group{key: gk, event: sn.Event, from: sn.From}
			groups[gk] = g
			order = append(order, gk)
		}
		bk := sn.BlockKey()
		var b *block
		for _, cand := range g.blocks {
			if cand.key == bk {
				b = cand
				break
			}
		}
		if b == nil {
			b = &block{key: bk, defer_: sn.Defer}
			g.blocks = append(g.blocks, b)
		}
		b.snips = append(b.snips, sn)
		if sn.Guard != nil {
			// A non-empty guard is symbolic (§3.2); multiple guarded
			// snippets in one block disjoin.
			if b.guard == nil {
				b.guard = sn.Guard
			} else if !expr.Equal(b.guard, sn.Guard) {
				b.guard = expr.Or(b.guard, sn.Guard)
			}
			b.symbolic = true
		}
	}

	dp := &defPlan{d: d}
	p.defs = append(p.defs, dp)
	for _, gk := range order {
		gp, err := p.planGroup(d, groups[gk])
		if err != nil {
			return err
		}
		dp.groups = append(dp.groups, gp)
	}
	return nil
}

// planGroup plans one group: a sequential chain of guard-inference jobs
// (§5.2 — each guard is constrained by the guards before it), a
// mutual-exclusion check job depending on the chain, and fully parallel
// update-inference jobs per block output.
func (p *planner) planGroup(d *efsm.ProcDef, g *group) (*groupPlan, error) {
	gp := &groupPlan{
		g:         g,
		ctx:       fmt.Sprintf("core: %s (%s, %s)", d.Name, g.from, g.event),
		scopeVars: p.sys.ScopeVars(d, g.event),
	}

	// Guard inference needs symbolic blocks first (§5.2 processes blocks
	// sequentially; known guards constrain later ones).
	ordered := make([]*block, 0, len(g.blocks))
	for _, b := range g.blocks {
		if b.symbolic {
			ordered = append(ordered, b)
		}
	}
	for _, b := range g.blocks {
		if !b.symbolic {
			ordered = append(ordered, b)
		}
	}

	// Catch-all defers (no guard) are legal only as runtime fallbacks;
	// exclude them from guard inference entirely.
	inferable := ordered[:0:0]
	for _, b := range ordered {
		if b.defer_ && !b.symbolic {
			if len(g.blocks) == 1 {
				// Sole unconditional stall: emit directly.
				continue
			}
		}
		inferable = append(inferable, b)
	}

	// Shared sessions for the group (skipped under NoIncremental). The
	// guard session spans the chain's query variables scopeVars ∪ {guard$};
	// the mutex session spans scopeVars only.
	incremental := !p.opts.Limits.NoIncremental
	nGuardJobs := 0
	for _, b := range inferable {
		if !b.symbolic && !b.defer_ {
			nGuardJobs++
		}
	}
	if incremental && nGuardJobs > 0 {
		gvars := append(append([]*expr.Var(nil), gp.scopeVars...), expr.V(guardVar, expr.BoolType))
		sess, err := smt.NewSession(p.sys.U, gvars)
		if err != nil {
			return nil, fmt.Errorf("%s: guard session: %w", gp.ctx, err)
		}
		gp.guardSess = sess
	}

	// The sequential guard chain.
	var prev *engine.Job
	for j, b := range inferable {
		if b.symbolic || b.defer_ {
			continue // symbolic: given; catch-all defer: runtime fallback
		}
		j, b := j, b
		job := &engine.Job{
			Label: fmt.Sprintf("guard %s(%s,%s)[%s]", d.Name, g.from, g.event, b.key),
			Kind:  "guard",
		}
		cap := &holeCapture{
			label: job.Label, kind: "guard",
			process: d.Name, from: g.from, event: g.event.Key(),
			block: b.key, target: guardVar,
		}
		p.caps = append(p.caps, cap)
		if prev != nil {
			job.Deps = []*engine.Job{prev}
		}
		job.Run = func(jctx context.Context) error {
			guard, err := p.inferGuard(jctx, job, g, inferable, j, gp, cap)
			if err != nil {
				return fmt.Errorf("%s: block %s: %w", gp.ctx, b.key, err)
			}
			b.guard = guard
			return nil
		}
		p.add(job)
		prev = job
	}

	if !p.opts.SkipGuardCheck {
		nGuards := 0
		for _, b := range inferable {
			if b.symbolic || !b.defer_ {
				nGuards++
			}
		}
		if incremental && nGuards >= 2 {
			sess, err := smt.NewSession(p.sys.U, gp.scopeVars)
			if err != nil {
				return nil, fmt.Errorf("%s: mutex session: %w", gp.ctx, err)
			}
			gp.mutexSess = sess
		}
		job := &engine.Job{
			Label: fmt.Sprintf("mutex %s(%s,%s)", d.Name, g.from, g.event),
			Kind:  "check",
		}
		if prev != nil {
			job.Deps = []*engine.Job{prev}
		}
		job.Run = func(jctx context.Context) error {
			if err := p.checkMutualExclusion(jctx, g, inferable, gp); err != nil {
				return fmt.Errorf("%s: %w", gp.ctx, err)
			}
			return nil
		}
		p.add(job)
	}

	// Update-expression jobs per block: independent of everything.
	for _, b := range g.blocks {
		bp, err := p.planBlock(d, g, gp, b)
		if err != nil {
			return nil, err
		}
		gp.blocks = append(gp.blocks, bp)
	}
	return gp, nil
}

// planBlock validates a block's outbound-message agreement, collects the
// obligations per output target (§5.1), and plans one inference job per
// target. Validation problems become immediately-failing jobs rather than
// plan-time errors so that, at Workers == 1, they surface in exactly the
// order the sequential implementation reported them.
func (p *planner) planBlock(d *efsm.ProcDef, g *group, gp *groupPlan, b *block) (*blockPlan, error) {
	bp := &blockPlan{b: b}
	if b.defer_ {
		return bp, nil
	}
	first := b.snips[0]

	// All snippets of a block must declare the same outbound messages.
	bp.sends = first.Sends
	for _, sn := range b.snips[1:] {
		if !sameSends(bp.sends, sn.Sends) {
			return bp, p.planFailure(gp, b, fmt.Errorf("snippets %q and %q disagree on outbound messages",
				first.Label, sn.Label))
		}
	}

	// Collect posts per target across the block's cases, remembering which
	// snippet case produced each example for the provenance ledger.
	exsByTarget := map[string][]synth.ConcolicExample{}
	metaByTarget := map[string][]exampleMeta{}
	vtByTarget := map[string]expr.Type{}
	addPost := func(target string, vt expr.Type, pre expr.Expr, constraint expr.Expr, m exampleMeta) {
		if _, ok := vtByTarget[target]; !ok {
			vtByTarget[target] = vt
			bp.targets = append(bp.targets, target)
		}
		if pre == nil {
			pre = expr.True()
		}
		exsByTarget[target] = append(exsByTarget[target], synth.ConcolicExample{Pre: pre, Post: constraint})
		metaByTarget[target] = append(metaByTarget[target], m)
	}
	scope := p.sys.ScopeOf(d, g.event)
	outType := func(target string) (expr.Type, bool) {
		if ty, ok := scope[target]; ok {
			return ty, true
		}
		for _, snd := range bp.sends {
			for _, f := range snd.Net.Msg.Fields {
				if snd.MsgVar+"."+f.Name == target {
					return f.T, true
				}
			}
		}
		return expr.Type{}, false
	}
	for _, sn := range b.snips {
		src := sn.Label
		if src == "" {
			src = b.key
		}
		for ci, c := range sn.Cases {
			for _, post := range c.Posts {
				vt, ok := outType(post.Target)
				if !ok {
					return bp, p.planFailure(gp, b, fmt.Errorf("post targets %s, which is neither a process variable nor a declared outbound field", post.Target))
				}
				addPost(post.Target, vt, c.Pre, post.Constraint,
					exampleMeta{kind: provenance.KindSnippet, source: src, caseIdx: ci})
			}
		}
	}

	// Every declared outbound field must be produced, constrained or not;
	// unconstrained fields are synthesized from an empty example set (the
	// first enumerated expression — deliberately arbitrary, per the
	// paper's underspecification-then-model-check dynamic). Multicast
	// routing fields are filled per copy by the runtime instead.
	for _, snd := range bp.sends {
		for _, f := range snd.Net.Msg.Fields {
			if snd.TargetSet != nil && f.Name == snd.Net.DestField {
				continue
			}
			target := snd.MsgVar + "." + f.Name
			if _, ok := vtByTarget[target]; !ok {
				vtByTarget[target] = f.T
				bp.targets = append(bp.targets, target)
			}
		}
	}

	bp.rhs = make([]expr.Expr, len(bp.targets))
	bp.vts = make([]expr.Type, len(bp.targets))
	for i, target := range bp.targets {
		i, target := i, target
		vt := vtByTarget[target]
		bp.vts[i] = vt
		exs := exsByTarget[target]
		job := &engine.Job{
			Label: fmt.Sprintf("update %s(%s,%s)[%s] %s", d.Name, g.from, g.event, b.key, target),
			Kind:  "update",
		}
		cap := &holeCapture{
			label: job.Label, kind: "update",
			process: d.Name, from: g.from, event: g.event.Key(), to: first.To,
			block: b.key, target: target,
			exs: exs, meta: metaByTarget[target],
		}
		p.caps = append(p.caps, cap)
		job.Run = func(jctx context.Context) error {
			cap.ran = true
			o := expr.V(efsm.Prime(target), vt)
			prob := synth.Problem{U: p.sys.U, Vocab: p.vocab, Vars: gp.scopeVars, Output: o}
			rhs, stats, out, err := p.eng.SolveConcolic(jctx, engine.SolveSpec{
				Problem: prob, Examples: exs, Limits: p.opts.Limits,
			})
			job.CacheHit = out.Cached
			job.DiskHit = out.Tier == engine.TierDisk
			job.CacheWait = out.CacheWait
			job.SolveWait = out.SolveWait
			job.Candidates = stats.Concrete.Enumerated
			job.SMTQueries = stats.SMTQueries
			job.ClausesReused = stats.SMTClausesReused
			job.Iterations = stats.Iterations
			job.Retries = out.Retries
			cap.expr, cap.stats, cap.out, cap.err = rhs, stats, out, err
			if err != nil {
				return fmt.Errorf("%s: block %s: update inference for %s: %w", gp.ctx, b.key, target, err)
			}
			bp.rhs[i] = rhs
			return nil
		}
		p.add(job)
	}
	return bp, nil
}

// planFailure records a static validation error as an immediately-failing
// job at the current plan position (returning nil so planning continues;
// the failure is reported by the run, in plan order).
func (p *planner) planFailure(gp *groupPlan, b *block, err error) error {
	wrapped := fmt.Errorf("%s: block %s: %w", gp.ctx, b.key, err)
	p.add(&engine.Job{
		Label: fmt.Sprintf("validate %s", b.key),
		Kind:  "update",
		Run:   func(context.Context) error { return wrapped },
	})
	return nil
}

// inferGuard implements §5.2: the guard ϕj must be false whenever an
// earlier guard holds (ConcolicExs1), true whenever one of its own
// preconditions holds (ConcolicExs2), and false whenever a later block's
// precondition holds (ConcolicExs3). Earlier blocks' guards are read at
// job-execution time — the chain dependency guarantees they are solved.
func (p *planner) inferGuard(ctx context.Context, job *engine.Job, g *group, blocks []*block, j int, gp *groupPlan, cap *holeCapture) (expr.Expr, error) {
	scopeVars := gp.scopeVars
	o := expr.V(guardVar, expr.BoolType)
	var exs []synth.ConcolicExample
	var meta []exampleMeta
	for i := 0; i < j; i++ {
		if blocks[i].guard == nil {
			continue
		}
		exs = append(exs, synth.ConcolicExample{
			Pre:  expr.True(),
			Post: expr.Implies(blocks[i].guard, expr.Not(o)),
		})
		meta = append(meta, exampleMeta{kind: provenance.KindGuardExcludesPre, source: blocks[i].key, caseIdx: -1})
	}
	if pre := blockPre(blocks[j]); pre != nil {
		exs = append(exs, synth.ConcolicExample{Pre: expr.True(), Post: expr.Implies(pre, o)})
		meta = append(meta, exampleMeta{kind: provenance.KindGuardCoversPre, source: blocks[j].key, caseIdx: -1})
	}
	for i := j + 1; i < len(blocks); i++ {
		if blocks[i].symbolic {
			exs = append(exs, synth.ConcolicExample{
				Pre:  expr.True(),
				Post: expr.Implies(blocks[i].guard, expr.Not(o)),
			})
			meta = append(meta, exampleMeta{kind: provenance.KindGuardExcludesLater, source: blocks[i].key, caseIdx: -1})
			continue
		}
		if pre := blockPre(blocks[i]); pre != nil {
			exs = append(exs, synth.ConcolicExample{Pre: expr.True(), Post: expr.Implies(pre, expr.Not(o))})
			meta = append(meta, exampleMeta{kind: provenance.KindGuardExcludesLater, source: blocks[i].key, caseIdx: -1})
		}
	}
	cap.exs, cap.meta, cap.ran = exs, meta, true
	prob := synth.Problem{U: p.sys.U, Vocab: p.vocab, Vars: scopeVars, Output: o}
	guard, stats, out, err := p.eng.SolveConcolic(ctx, engine.SolveSpec{
		Problem: prob, Examples: exs, Limits: p.opts.Limits, Session: gp.guardSess,
	})
	job.CacheHit = out.Cached
	job.DiskHit = out.Tier == engine.TierDisk
	job.CacheWait = out.CacheWait
	job.SolveWait = out.SolveWait
	job.Candidates = stats.Concrete.Enumerated
	job.SMTQueries = stats.SMTQueries
	job.ClausesReused = stats.SMTClausesReused
	job.Iterations = stats.Iterations
	job.Retries = out.Retries
	cap.expr, cap.stats, cap.out, cap.err = guard, stats, out, err
	if err != nil {
		return nil, fmt.Errorf("guard inference: %w", err)
	}
	return guard, nil
}

// blockPre is the disjunction of a block's case preconditions (nil Pre
// means true, making the whole disjunction true).
func blockPre(b *block) expr.Expr {
	var pres []expr.Expr
	for _, sn := range b.snips {
		for _, c := range sn.Cases {
			if c.Pre == nil {
				return expr.True()
			}
			pres = append(pres, c.Pre)
		}
	}
	if len(pres) == 0 {
		return nil
	}
	return expr.Or(pres...)
}

// checkMutualExclusion statically verifies pairwise guard disjointness
// within a group via SMT validity: ¬(gi ∧ gj) must hold for every pair,
// i.e. gi ∧ gj must be unsatisfiable. With a group session the pair
// conjunctions are solved incrementally — each guard's circuit is encoded
// once and re-paired for free; under NoIncremental every pair is an
// independent validity query. A Sat verdict yields the same canonical
// counterexample model either way, so failure messages match exactly.
func (p *planner) checkMutualExclusion(ctx context.Context, g *group, blocks []*block, gp *groupPlan) error {
	// Own span so the validity queries below don't read as CEGIS work in
	// the trace.
	ctx, span := obs.Start(ctx, "core.guard_check", obs.Int("blocks", len(blocks)))
	defer span.End()
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			gi, gj := blocks[i].guard, blocks[j].guard
			if gi == nil || gj == nil {
				continue
			}
			var exclusive bool
			var cex expr.Env
			if gp.mutexSess != nil {
				res, err := gp.mutexSess.Solve(ctx, expr.And(gi, gj), smt.Options{})
				if err != nil {
					return fmt.Errorf("guard exclusivity check: %w", err)
				}
				switch res.Status {
				case smt.Unsat:
					exclusive = true
				case smt.Sat:
					exclusive, cex = false, res.Model
				default:
					return fmt.Errorf("guard exclusivity check: smt: validity check exhausted conflict budget")
				}
			} else {
				ok, model, err := smt.ValidOptCtx(ctx, p.sys.U, gp.scopeVars, expr.Not(expr.And(gi, gj)), smt.Options{})
				if err != nil {
					return fmt.Errorf("guard exclusivity check: %w", err)
				}
				exclusive, cex = ok, model
			}
			if !exclusive {
				return fmt.Errorf("guards %s and %s overlap (e.g. %v)",
					expr.Pretty(gi), expr.Pretty(gj), cex)
			}
		}
	}
	return nil
}

// assemble installs the group's completed transitions (§5.1 assembly):
// guards from the chain, update expressions from the job result slots,
// identity updates dropped, outbound message fields wired. Pure
// bookkeeping — every solver call already happened inside the engine.
func (gp *groupPlan) assemble(p *planner, d *efsm.ProcDef, rep *Report) error {
	scope := p.sys.ScopeOf(d, gp.g.event)
	for _, bp := range gp.blocks {
		b := bp.b
		first := b.snips[0]
		t := &efsm.Transition{
			From:  gp.g.from,
			Event: gp.g.event,
			Guard: b.guard,
			To:    first.To,
			Defer: b.defer_,
		}
		if !b.defer_ {
			rhsByTarget := map[string]expr.Expr{}
			for i, target := range bp.targets {
				rhsByTarget[target] = bp.rhs[i]
			}
			// Process-variable updates (dropping identities) ...
			for _, target := range bp.targets {
				if _, isVar := scope[target]; !isVar || d.VarIndex(target) < 0 {
					continue
				}
				rhs := rhsByTarget[target]
				if v, ok := rhs.(*expr.Var); ok && v.Name == target {
					continue // identity update: the variable is held anyway
				}
				t.Updates = append(t.Updates, efsm.Update{Var: target, Rhs: rhs})
			}
			// ... and outbound messages.
			for _, snd := range bp.sends {
				out := efsm.Send{Net: snd.Net, MsgVar: snd.MsgVar, TargetSet: snd.TargetSet}
				for _, f := range snd.Net.Msg.Fields {
					if snd.TargetSet != nil && f.Name == snd.Net.DestField {
						continue
					}
					out.Fields = append(out.Fields, efsm.SendField{
						Field: f.Name,
						Rhs:   rhsByTarget[snd.MsgVar+"."+f.Name],
					})
				}
				t.Sends = append(t.Sends, out)
			}
		}
		d.Transitions = append(d.Transitions, t)
		rep.Transitions++
	}
	return nil
}

func sameSends(a, b []efsm.SendSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Net != b[i].Net || a[i].MsgVar != b[i].MsgVar {
			return false
		}
		switch {
		case a[i].TargetSet == nil && b[i].TargetSet == nil:
		case a[i].TargetSet == nil || b[i].TargetSet == nil:
			return false
		case !expr.Equal(a[i].TargetSet, b[i].TargetSet):
			return false
		}
	}
	return true
}
