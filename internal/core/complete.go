// Package core is the TRANSIT synthesis tool (§5 of the paper): it
// completes an EFSM protocol skeleton from concolic snippets. Update
// expressions for each primed variable are inferred directly with
// SolveConcolic (§5.1); guards for each (control state, input event) group
// are inferred sequentially under mutual-exclusion side conditions (§5.2);
// the completed transitions are installed into the efsm.System, ready for
// the model checker. The iterative specify → synthesize → model-check →
// fix-with-snippets workflow of the case studies is driven by RunCaseStudy.
package core

import (
	"fmt"
	"time"

	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/smt"
	"transit/internal/synth"
)

// Options configures protocol completion.
type Options struct {
	// Limits bounds each expression-inference call.
	Limits synth.Limits
	// SkipGuardCheck disables the static pairwise mutual-exclusion
	// verification of each group's guards.
	SkipGuardCheck bool
}

// Report summarizes one completion run; its counters feed Table 4.
type Report struct {
	// Snippets is the number of snippets consumed (the paper's
	// "scenarios").
	Snippets int
	// UpdatesSynthesized counts inferred update and message-field
	// expressions; GuardsSynthesized counts inferred guards.
	UpdatesSynthesized int
	GuardsSynthesized  int
	// UpdateExprsTried / GuardExprsTried are the enumeration workloads.
	UpdateExprsTried int64
	GuardExprsTried  int64
	// SMTQueries counts consistency and concretization queries.
	SMTQueries int
	UpdateTime time.Duration
	GuardTime  time.Duration
	Elapsed    time.Duration
	// Transitions is the number of completed transitions installed.
	Transitions int
}

// guardVar is the fresh output variable name used for guard inference; the
// '$' keeps it out of any user scope.
const guardVar = "guard$"

// Complete synthesizes full transitions for every process of the system
// from the given snippets and installs them. Existing transitions on the
// definitions are replaced. The vocabulary is the search space for inferred
// guards and updates (snippet expressions themselves may use constants
// outside it).
func Complete(sys *efsm.System, vocab *expr.Vocabulary, snippets []*efsm.Snippet, opts Options) (*Report, error) {
	start := time.Now()
	rep := &Report{Snippets: len(snippets)}
	defByName := map[string]*efsm.ProcDef{}
	for _, d := range sys.Defs {
		defByName[d.Name] = d
		d.Transitions = nil
	}
	perDef := map[string][]*efsm.Snippet{}
	var defOrder []string
	for _, sn := range snippets {
		d, ok := defByName[sn.Process]
		if !ok {
			return rep, fmt.Errorf("core: snippet %q names unknown process %s", sn.Label, sn.Process)
		}
		if err := sn.Validate(sys, d); err != nil {
			return rep, err
		}
		if _, seen := perDef[sn.Process]; !seen {
			defOrder = append(defOrder, sn.Process)
		}
		perDef[sn.Process] = append(perDef[sn.Process], sn)
	}
	for _, name := range defOrder {
		if err := completeDef(sys, defByName[name], vocab, perDef[name], opts, rep); err != nil {
			return rep, err
		}
	}
	rep.Elapsed = time.Since(start)
	if err := sys.Validate(); err != nil {
		return rep, fmt.Errorf("core: completed system is malformed: %w", err)
	}
	return rep, nil
}

// block is one guard-action block: the snippets sharing (from, event, to).
type block struct {
	key      string
	snips    []*efsm.Snippet
	guard    expr.Expr // symbolic or synthesized
	symbolic bool
	defer_   bool
}

// group is one (state, event) family whose guards must be mutually
// exclusive.
type group struct {
	key    string
	event  efsm.Event
	from   string
	blocks []*block
}

func completeDef(sys *efsm.System, d *efsm.ProcDef, vocab *expr.Vocabulary,
	snips []*efsm.Snippet, opts Options, rep *Report) error {

	groups := map[string]*group{}
	var order []string
	for _, sn := range snips {
		gk := sn.GroupKey()
		g, ok := groups[gk]
		if !ok {
			g = &group{key: gk, event: sn.Event, from: sn.From}
			groups[gk] = g
			order = append(order, gk)
		}
		bk := sn.BlockKey()
		var b *block
		for _, cand := range g.blocks {
			if cand.key == bk {
				b = cand
				break
			}
		}
		if b == nil {
			b = &block{key: bk, defer_: sn.Defer}
			g.blocks = append(g.blocks, b)
		}
		b.snips = append(b.snips, sn)
		if sn.Guard != nil {
			// A non-empty guard is symbolic (§3.2); multiple guarded
			// snippets in one block disjoin.
			if b.guard == nil {
				b.guard = sn.Guard
			} else if !expr.Equal(b.guard, sn.Guard) {
				b.guard = expr.Or(b.guard, sn.Guard)
			}
			b.symbolic = true
		}
	}

	for _, gk := range order {
		if err := completeGroup(sys, d, vocab, groups[gk], opts, rep); err != nil {
			return err
		}
	}
	return nil
}

func completeGroup(sys *efsm.System, d *efsm.ProcDef, vocab *expr.Vocabulary,
	g *group, opts Options, rep *Report) error {

	ctx := fmt.Sprintf("core: %s (%s, %s)", d.Name, g.from, g.event)
	scopeVars := sys.ScopeVars(d, g.event)

	// Guard inference needs symbolic blocks first (§5.2 processes blocks
	// sequentially; known guards constrain later ones).
	ordered := make([]*block, 0, len(g.blocks))
	for _, b := range g.blocks {
		if b.symbolic {
			ordered = append(ordered, b)
		}
	}
	for _, b := range g.blocks {
		if !b.symbolic {
			ordered = append(ordered, b)
		}
	}

	// Catch-all defers (no guard) are legal only as runtime fallbacks;
	// exclude them from guard inference entirely.
	inferable := ordered[:0:0]
	for _, b := range ordered {
		if b.defer_ && !b.symbolic {
			if len(g.blocks) == 1 {
				// Sole unconditional stall: emit directly.
				continue
			}
		}
		inferable = append(inferable, b)
	}

	// Sequentially infer missing guards.
	guardStart := time.Now()
	for j, b := range inferable {
		if b.symbolic {
			continue
		}
		if b.defer_ {
			continue // catch-all defer among other blocks: runtime fallback
		}
		guard, err := inferGuard(sys, d, vocab, g, inferable, j, scopeVars, opts, rep)
		if err != nil {
			return fmt.Errorf("%s: block %s: %w", ctx, b.key, err)
		}
		b.guard = guard
		rep.GuardsSynthesized++
	}
	rep.GuardTime += time.Since(guardStart)

	if !opts.SkipGuardCheck {
		if err := checkMutualExclusion(sys, g, inferable, scopeVars); err != nil {
			return fmt.Errorf("%s: %w", ctx, err)
		}
	}

	// Build transitions: updates and send fields per block.
	for _, b := range g.blocks {
		t, err := buildTransition(sys, d, vocab, g, b, scopeVars, opts, rep)
		if err != nil {
			return fmt.Errorf("%s: block %s: %w", ctx, b.key, err)
		}
		d.Transitions = append(d.Transitions, t)
		rep.Transitions++
	}
	return nil
}

// inferGuard implements §5.2: the guard ϕj must be false whenever an
// earlier guard holds (ConcolicExs1), true whenever one of its own
// preconditions holds (ConcolicExs2), and false whenever a later block's
// precondition holds (ConcolicExs3).
func inferGuard(sys *efsm.System, d *efsm.ProcDef, vocab *expr.Vocabulary,
	g *group, blocks []*block, j int, scopeVars []*expr.Var, opts Options, rep *Report) (expr.Expr, error) {

	o := expr.V(guardVar, expr.BoolType)
	var exs []synth.ConcolicExample
	for i := 0; i < j; i++ {
		if blocks[i].guard == nil {
			continue
		}
		exs = append(exs, synth.ConcolicExample{
			Pre:  expr.True(),
			Post: expr.Implies(blocks[i].guard, expr.Not(o)),
		})
	}
	if pre := blockPre(blocks[j]); pre != nil {
		exs = append(exs, synth.ConcolicExample{Pre: expr.True(), Post: expr.Implies(pre, o)})
	}
	for i := j + 1; i < len(blocks); i++ {
		if blocks[i].symbolic {
			exs = append(exs, synth.ConcolicExample{
				Pre:  expr.True(),
				Post: expr.Implies(blocks[i].guard, expr.Not(o)),
			})
			continue
		}
		if pre := blockPre(blocks[i]); pre != nil {
			exs = append(exs, synth.ConcolicExample{Pre: expr.True(), Post: expr.Implies(pre, expr.Not(o))})
		}
	}
	prob := synth.Problem{U: sys.U, Vocab: vocab, Vars: scopeVars, Output: o}
	guard, stats, err := synth.SolveConcolic(prob, exs, opts.Limits)
	rep.GuardExprsTried += stats.Concrete.Enumerated
	rep.SMTQueries += stats.SMTQueries
	if err != nil {
		return nil, fmt.Errorf("guard inference: %w", err)
	}
	return guard, nil
}

// blockPre is the disjunction of a block's case preconditions (nil Pre
// means true, making the whole disjunction true).
func blockPre(b *block) expr.Expr {
	var pres []expr.Expr
	for _, sn := range b.snips {
		for _, c := range sn.Cases {
			if c.Pre == nil {
				return expr.True()
			}
			pres = append(pres, c.Pre)
		}
	}
	if len(pres) == 0 {
		return nil
	}
	return expr.Or(pres...)
}

// checkMutualExclusion statically verifies pairwise guard disjointness
// within a group via SMT validity.
func checkMutualExclusion(sys *efsm.System, g *group, blocks []*block, scopeVars []*expr.Var) error {
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			gi, gj := blocks[i].guard, blocks[j].guard
			if gi == nil || gj == nil {
				continue
			}
			ok, cex, err := smt.Valid(sys.U, scopeVars, expr.Not(expr.And(gi, gj)))
			if err != nil {
				return fmt.Errorf("guard exclusivity check: %w", err)
			}
			if !ok {
				return fmt.Errorf("guards %s and %s overlap (e.g. %v)",
					expr.Pretty(gi), expr.Pretty(gj), cex)
			}
		}
	}
	return nil
}

// buildTransition synthesizes the block's updates and outbound message
// fields (§5.1) and assembles the completed transition.
func buildTransition(sys *efsm.System, d *efsm.ProcDef, vocab *expr.Vocabulary,
	g *group, b *block, scopeVars []*expr.Var, opts Options, rep *Report) (*efsm.Transition, error) {

	first := b.snips[0]
	t := &efsm.Transition{
		From:  g.from,
		Event: g.event,
		Guard: b.guard,
		To:    first.To,
		Defer: b.defer_,
	}
	if b.defer_ {
		return t, nil
	}

	// All snippets of a block must declare the same outbound messages.
	sends := first.Sends
	for _, sn := range b.snips[1:] {
		if !sameSends(sends, sn.Sends) {
			return nil, fmt.Errorf("snippets %q and %q disagree on outbound messages",
				first.Label, sn.Label)
		}
	}

	// Collect posts per target across the block's cases.
	type obligations struct {
		target string
		vt     expr.Type
		exs    []synth.ConcolicExample
	}
	var targets []string
	byTarget := map[string]*obligations{}
	addPost := func(target string, vt expr.Type, pre expr.Expr, constraint expr.Expr) {
		ob, ok := byTarget[target]
		if !ok {
			ob = &obligations{target: target, vt: vt}
			byTarget[target] = ob
			targets = append(targets, target)
		}
		if pre == nil {
			pre = expr.True()
		}
		ob.exs = append(ob.exs, synth.ConcolicExample{Pre: pre, Post: constraint})
	}
	scope := sys.ScopeOf(d, g.event)
	outType := func(target string) (expr.Type, bool) {
		if ty, ok := scope[target]; ok {
			return ty, true
		}
		for _, snd := range sends {
			for _, f := range snd.Net.Msg.Fields {
				if snd.MsgVar+"."+f.Name == target {
					return f.T, true
				}
			}
		}
		return expr.Type{}, false
	}
	for _, sn := range b.snips {
		for _, c := range sn.Cases {
			for _, p := range c.Posts {
				vt, ok := outType(p.Target)
				if !ok {
					return nil, fmt.Errorf("post targets %s, which is neither a process variable nor a declared outbound field", p.Target)
				}
				addPost(p.Target, vt, c.Pre, p.Constraint)
			}
		}
	}

	// Every declared outbound field must be produced, constrained or not;
	// unconstrained fields are synthesized from an empty example set (the
	// first enumerated expression — deliberately arbitrary, per the
	// paper's underspecification-then-model-check dynamic). Multicast
	// routing fields are filled per copy by the runtime instead.
	for _, snd := range sends {
		for _, f := range snd.Net.Msg.Fields {
			if snd.TargetSet != nil && f.Name == snd.Net.DestField {
				continue
			}
			target := snd.MsgVar + "." + f.Name
			if _, ok := byTarget[target]; !ok {
				byTarget[target] = &obligations{target: target, vt: f.T}
				targets = append(targets, target)
			}
		}
	}

	updateStart := time.Now()
	rhsByTarget := map[string]expr.Expr{}
	for _, target := range targets {
		ob := byTarget[target]
		o := expr.V(efsm.Prime(target), ob.vt)
		prob := synth.Problem{U: sys.U, Vocab: vocab, Vars: scopeVars, Output: o}
		rhs, stats, err := synth.SolveConcolic(prob, ob.exs, opts.Limits)
		rep.UpdateExprsTried += stats.Concrete.Enumerated
		rep.SMTQueries += stats.SMTQueries
		if err != nil {
			return nil, fmt.Errorf("update inference for %s: %w", target, err)
		}
		rep.UpdatesSynthesized++
		rhsByTarget[target] = rhs
	}
	rep.UpdateTime += time.Since(updateStart)

	// Assemble: process-variable updates (dropping identities) ...
	for _, target := range targets {
		if _, isVar := scope[target]; !isVar || d.VarIndex(target) < 0 {
			continue
		}
		rhs := rhsByTarget[target]
		if v, ok := rhs.(*expr.Var); ok && v.Name == target {
			continue // identity update: the variable is held anyway
		}
		t.Updates = append(t.Updates, efsm.Update{Var: target, Rhs: rhs})
	}
	// ... and outbound messages.
	for _, snd := range sends {
		out := efsm.Send{Net: snd.Net, MsgVar: snd.MsgVar, TargetSet: snd.TargetSet}
		for _, f := range snd.Net.Msg.Fields {
			if snd.TargetSet != nil && f.Name == snd.Net.DestField {
				continue
			}
			out.Fields = append(out.Fields, efsm.SendField{
				Field: f.Name,
				Rhs:   rhsByTarget[snd.MsgVar+"."+f.Name],
			})
		}
		t.Sends = append(t.Sends, out)
	}
	return t, nil
}

func sameSends(a, b []efsm.SendSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Net != b[i].Net || a[i].MsgVar != b[i].MsgVar {
			return false
		}
		switch {
		case a[i].TargetSet == nil && b[i].TargetSet == nil:
		case a[i].TargetSet == nil || b[i].TargetSet == nil:
			return false
		case !expr.Equal(a[i].TargetSet, b[i].TargetSet):
			return false
		}
	}
	return true
}
