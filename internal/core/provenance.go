package core

import (
	"errors"

	"transit/internal/engine"
	"transit/internal/expr"
	"transit/internal/obs/provenance"
	"transit/internal/synth"
)

// This file assembles the provenance ledger for one completion run. The
// captures are created at plan time (one per inference job) and each
// job's Run closure fills only its own capture, so there is no sharing
// to race on; the ledger itself is assembled single-threaded, in plan
// order, after the engine run — the same discipline aggregate() uses to
// keep the Report worker-count-deterministic. Everything recorded comes
// from deterministic sources (the example lists built by the planner and
// synth.Stats.Trace, which the memo cache replays on both tiers), so the
// ledger is byte-identical across worker counts and cache temperature.

// exampleMeta is the plan-side origin of one concolic example.
type exampleMeta struct {
	kind    string // provenance.Kind*
	source  string // snippet label or block key
	caseIdx int    // snippet case ordinal; -1 for guard examples
}

// holeCapture is one inference job's provenance slot.
type holeCapture struct {
	label   string
	kind    string // "guard" | "update"
	process string
	from    string
	event   string // efsm.Event.Key()
	to      string
	block   string
	target  string

	// Filled at plan time for updates, at job-execution time for guards
	// (the guard chain builds its examples from earlier solved guards).
	exs  []synth.ConcolicExample
	meta []exampleMeta

	// Filled by the job's Run closure.
	ran   bool
	expr  expr.Expr
	stats synth.Stats
	out   engine.SolveOutcome
	err   error
}

// recordProvenance folds every capture into the recorder in plan order.
// Jobs that never executed (the engine stops scheduling after a failure)
// are skipped: their absence is itself scheduling-dependent, and the
// determinism guarantee only covers runs that reach the same outcome.
func recordProvenance(rec *provenance.Recorder, p *planner) {
	if rec == nil {
		return
	}
	for _, cap := range p.caps {
		if !cap.ran {
			continue
		}
		h := &provenance.HoleRecord{
			Label:   cap.label,
			Kind:    cap.kind,
			Process: cap.process,
			From:    cap.from,
			Event:   cap.event,
			To:      cap.to,
			Block:   cap.block,
			Target:  cap.target,
		}
		h.Examples = make([]provenance.ExampleRecord, 0, len(cap.exs))
		for i, ex := range cap.exs {
			pre, post := ex.Pre.String(), ex.Post.String()
			er := provenance.ExampleRecord{
				Index:  i,
				Kind:   provenance.KindSnippet,
				Case:   -1,
				Pre:    pre,
				Post:   post,
				Digest: provenance.Digest(pre, post),
			}
			if i < len(cap.meta) {
				er.Kind = cap.meta[i].kind
				er.Source = cap.meta[i].source
				er.Case = cap.meta[i].caseIdx
			}
			h.Examples = append(h.Examples, er)
		}
		h.Iterations = provenance.TraceIterations(cap.stats.Trace)
		h.Portfolio = cap.out.Portfolio
		switch {
		case cap.err != nil:
			switch {
			case errors.Is(cap.err, synth.ErrUnrealizable):
				h.Status = provenance.StatusUnrealizable
			case errors.Is(cap.err, synth.ErrInconsistent):
				h.Status = provenance.StatusInconsistent
			default:
				h.Status = provenance.StatusFailed
			}
			h.Error = cap.err.Error()
		case len(cap.exs) == 0:
			h.Status = provenance.StatusUnconstrained
			if cap.expr != nil {
				h.Result = cap.expr.String()
			}
		default:
			h.Status = provenance.StatusSolved
			if cap.expr != nil {
				h.Result = cap.expr.String()
			}
		}
		rec.AddHole(h)
	}
}
