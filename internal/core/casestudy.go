package core

import (
	"context"
	"fmt"
	"time"

	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
	"transit/internal/synth"
)

// CaseStudy scripts the paper's iterative protocol-development workflow:
// start from an initial snippet set, synthesize a complete protocol, model
// check it, and — where the paper's programmer would study the
// counterexample and write a corrective snippet — apply the next scripted
// fix batch. The Table 5 metrics (snippets added, iterations to
// convergence, synthesis time) fall out of the replay.
type CaseStudy struct {
	Name string
	// Build constructs a fresh skeleton, its vocabulary, and invariants.
	Build func() (*efsm.System, *expr.Vocabulary, []mc.Invariant, error)
	// Initial is the first snippet set (the transcription of the textbook
	// or paper description).
	Initial []*efsm.Snippet
	// Fixes are the scripted debugging iterations, applied one batch per
	// model-checking failure.
	Fixes []FixBatch
	// MCOpts bounds each model-checking run.
	MCOpts mc.Options
	// Limits bounds expression inference.
	Limits synth.Limits
}

// FixBatch is one debugging iteration's worth of corrective snippets.
type FixBatch struct {
	// Label describes the symptom being fixed (for the narrative log).
	Label    string
	Snippets []*efsm.Snippet
}

// IterationResult records one specify→synthesize→check round.
type IterationResult struct {
	// Index is 1-based.
	Index int
	// SnippetsAdded in this round (the initial set for round 1).
	SnippetsAdded int
	// SnippetsTotal after this round.
	SnippetsTotal int
	FixLabel      string
	Synth         *Report
	Check         *mc.Result
	// Violation is nil when the round verified cleanly.
	Violation *mc.Violation
}

// CaseStudyResult aggregates a full replay.
type CaseStudyResult struct {
	Name       string
	Iterations []IterationResult
	// Converged is true when the final round model checked cleanly.
	Converged bool
	// FinalStates is the verified protocol's reachable state count.
	FinalStates int
	// FinalTransitions is the number of completed EFSM transitions.
	FinalTransitions int
	TotalSnippets    int
	Elapsed          time.Duration
	// Sys is the final completed system (for inspection/regeneration).
	Sys *efsm.System
}

// RunCaseStudy replays a scripted case study. It errors if the fix script
// runs out while the model checker still finds violations — a regression in
// either the protocol snippets or the toolchain.
func RunCaseStudy(cs CaseStudy) (*CaseStudyResult, error) {
	return RunCaseStudyCtx(context.Background(), cs)
}

// RunCaseStudyCtx is RunCaseStudy under a context: cancellation stops the
// in-flight synthesis or model-checking round, and the context's
// observability state (tracer, metrics) is threaded through both.
func RunCaseStudyCtx(ctx context.Context, cs CaseStudy) (*CaseStudyResult, error) {
	start := time.Now()
	res := &CaseStudyResult{Name: cs.Name}
	snippets := append([]*efsm.Snippet(nil), cs.Initial...)
	nextFix := 0
	added := len(cs.Initial)
	fixLabel := "initial transcription"

	for iter := 1; ; iter++ {
		sys, vocab, invs, err := cs.Build()
		if err != nil {
			return res, fmt.Errorf("core: case study %s: build: %w", cs.Name, err)
		}
		rep, err := CompleteCtx(ctx, sys, vocab, snippets, Options{Limits: cs.Limits})
		if err != nil {
			return res, fmt.Errorf("core: case study %s iteration %d: synthesis: %w", cs.Name, iter, err)
		}
		rt, err := efsm.NewRuntime(sys)
		if err != nil {
			return res, fmt.Errorf("core: case study %s iteration %d: %w", cs.Name, iter, err)
		}
		check, err := mc.CheckCtx(ctx, rt, invs, cs.MCOpts)
		if err != nil {
			return res, fmt.Errorf("core: case study %s iteration %d: model check: %w", cs.Name, iter, err)
		}
		ir := IterationResult{
			Index:         iter,
			SnippetsAdded: added,
			SnippetsTotal: len(snippets),
			FixLabel:      fixLabel,
			Synth:         rep,
			Check:         check,
			Violation:     check.Violation,
		}
		res.Iterations = append(res.Iterations, ir)
		if check.OK {
			res.Converged = true
			res.FinalStates = check.States
			res.FinalTransitions = rep.Transitions
			res.TotalSnippets = len(snippets)
			res.Elapsed = time.Since(start)
			res.Sys = sys
			return res, nil
		}
		if nextFix >= len(cs.Fixes) {
			res.Elapsed = time.Since(start)
			return res, fmt.Errorf("core: case study %s: fixes exhausted after iteration %d; last violation:\n%s",
				cs.Name, iter, check.Violation)
		}
		fix := cs.Fixes[nextFix]
		nextFix++
		snippets = append(snippets, fix.Snippets...)
		added = len(fix.Snippets)
		fixLabel = fix.Label
	}
}
