package core_test

// External test package: the worker-count parity tests synthesize the real
// case-study protocols, and internal/protocols imports core, so these
// cannot live in package core.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"transit/internal/core"
	"transit/internal/efsm"
	"transit/internal/engine"
	"transit/internal/engine/diskcache"
	"transit/internal/obs/provenance"
	"transit/internal/protocols"
	"transit/internal/synth"
)

// renderSystem serializes every completed transition — guards, updates,
// sends, field assignments — into one canonical string, so two completed
// systems can be compared byte for byte.
func renderSystem(sys *efsm.System) string {
	var sb strings.Builder
	for _, d := range sys.Defs {
		fmt.Fprintf(&sb, "process %s\n", d.Name)
		for _, t := range d.Transitions {
			if t.Defer {
				fmt.Fprintf(&sb, "  (%s, %s) [%s] stall\n", t.From, t.Event, t.GuardString())
				continue
			}
			fmt.Fprintf(&sb, "  (%s, %s) [%s] -> %s\n", t.From, t.Event, t.GuardString(), t.To)
			for _, u := range t.Updates {
				fmt.Fprintf(&sb, "    %s := %s\n", u.Var, u.Rhs)
			}
			for _, s := range t.Sends {
				if s.TargetSet != nil {
					fmt.Fprintf(&sb, "    send %s to %s\n", s.Net.Name, s.TargetSet)
				} else {
					fmt.Fprintf(&sb, "    send %s\n", s.Net.Name)
				}
				for _, f := range s.Fields {
					fmt.Fprintf(&sb, "      %s = %s\n", f.Field, f.Rhs)
				}
			}
		}
	}
	return sb.String()
}

// TestWorkerCountParity is the acceptance gate for the engine rewiring:
// for each case-study protocol, the EFSM completed with the concurrent
// engine must be byte-identical across worker counts (workers=1 being the
// historical sequential order), with and without the memo cache.
func TestWorkerCountParity(t *testing.T) {
	specs := map[string]func() *protocols.Spec{
		"VI":     func() *protocols.Spec { return protocols.VI(2) },
		"MSI":    func() *protocols.Spec { return protocols.MSI(2) },
		"MESI":   func() *protocols.Spec { return protocols.MESI(2) },
		"Origin": func() *protocols.Spec { return protocols.Origin(2, true) },
	}
	for name, mk := range specs {
		t.Run(name, func(t *testing.T) {
			complete := func(workers int, disableCache bool) (string, *core.Report) {
				spec := mk()
				rep, err := core.CompleteCtx(context.Background(), spec.Sys, spec.Vocab, spec.Snippets,
					core.Options{
						Limits:       synth.Limits{MaxSize: 12},
						Workers:      workers,
						DisableCache: disableCache,
					})
				if err != nil {
					t.Fatalf("workers=%d cache=%v: %v", workers, !disableCache, err)
				}
				return renderSystem(spec.Sys), rep
			}
			baseline, baseRep := complete(1, false)
			for _, workers := range []int{2, 4} {
				got, rep := complete(workers, false)
				if got != baseline {
					t.Errorf("workers=%d EFSM differs from sequential:\n--- workers=1\n%s\n--- workers=%d\n%s",
						workers, baseline, workers, got)
				}
				// Stats replay keeps the report counters worker-invariant too.
				if rep.UpdateExprsTried != baseRep.UpdateExprsTried ||
					rep.GuardExprsTried != baseRep.GuardExprsTried ||
					rep.SMTQueries != baseRep.SMTQueries ||
					rep.Transitions != baseRep.Transitions {
					t.Errorf("workers=%d report differs: %+v vs %+v", workers, rep, baseRep)
				}
			}
			if uncached, _ := complete(2, true); uncached != baseline {
				t.Error("disabling the cache changed the completed EFSM")
			}
		})
	}
}

// TestNoIncrementalParity is the acceptance gate for the incremental-SMT
// rewiring: completing a protocol with shared sessions disabled
// (one solver per query) must produce a byte-identical EFSM and identical
// query/candidate counters — canonical models make the execution strategy
// unobservable in the answers.
func TestNoIncrementalParity(t *testing.T) {
	specs := map[string]func() *protocols.Spec{
		"VI":     func() *protocols.Spec { return protocols.VI(2) },
		"Origin": func() *protocols.Spec { return protocols.Origin(2, true) },
	}
	for name, mk := range specs {
		t.Run(name, func(t *testing.T) {
			complete := func(noInc bool) (string, *core.Report) {
				spec := mk()
				rep, err := core.CompleteCtx(context.Background(), spec.Sys, spec.Vocab, spec.Snippets,
					core.Options{
						Limits:        synth.Limits{MaxSize: 12},
						Workers:       2,
						NoIncremental: noInc,
					})
				if err != nil {
					t.Fatalf("noIncremental=%v: %v", noInc, err)
				}
				return renderSystem(spec.Sys), rep
			}
			inc, incRep := complete(false)
			one, oneRep := complete(true)
			if inc != one {
				t.Errorf("incremental and one-shot EFSMs differ:\n--- incremental\n%s\n--- one-shot\n%s", inc, one)
			}
			if incRep.SMTQueries != oneRep.SMTQueries ||
				incRep.UpdateExprsTried != oneRep.UpdateExprsTried ||
				incRep.GuardExprsTried != oneRep.GuardExprsTried ||
				incRep.Transitions != oneRep.Transitions {
				t.Errorf("reports differ: incremental %+v vs one-shot %+v", incRep, oneRep)
			}
			if incRep.SMTClausesReused == 0 {
				t.Error("incremental completion reports zero reused clauses")
			}
			if oneRep.SMTClausesReused != 0 {
				t.Errorf("one-shot completion reports %d reused clauses, want 0", oneRep.SMTClausesReused)
			}
		})
	}
}

// TestSharedCacheAcrossRebuilds covers the cross-universe replay path: a
// cache populated by one build of a protocol is reused by a fresh build
// (new Universe, new enum instances) and must still produce the identical,
// well-typed EFSM with a 100% job hit rate.
func TestSharedCacheAcrossRebuilds(t *testing.T) {
	cache := engine.NewCache()
	complete := func() string {
		spec := protocols.VI(2)
		_, err := core.CompleteCtx(context.Background(), spec.Sys, spec.Vocab, spec.Snippets,
			core.Options{Limits: synth.Limits{MaxSize: 12}, Workers: 2, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		return renderSystem(spec.Sys)
	}
	cold := complete()
	hits0, _ := cache.Counters()
	warm := complete()
	if warm != cold {
		t.Errorf("warm-cache rebuild differs:\n--- cold\n%s\n--- warm\n%s", cold, warm)
	}
	hits1, _ := cache.Counters()
	if hits1 <= hits0 {
		t.Errorf("warm rebuild produced no cache hits (%d -> %d)", hits0, hits1)
	}
}

// TestCompleteCancellation: a pre-cancelled context must abort synthesis
// with a context error rather than completing or hanging.
func TestCompleteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := protocols.MSI(2)
	_, err := core.CompleteCtx(ctx, spec.Sys, spec.Vocab, spec.Snippets,
		core.Options{Limits: synth.Limits{MaxSize: 12}})
	if err == nil {
		t.Fatal("cancelled synthesis must fail")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("err = %v, want a context cancellation", err)
	}
}

// ledgerNDJSON completes the protocol with a provenance recorder in the
// context and returns the canonical NDJSON rendering of the ledger.
func ledgerNDJSON(t *testing.T, mk func() *protocols.Spec, workers int, cache *engine.Cache) string {
	t.Helper()
	spec := mk()
	rec := provenance.NewRecorder(spec.Name)
	ctx := provenance.WithRecorder(context.Background(), rec)
	_, err := core.CompleteCtx(ctx, spec.Sys, spec.Vocab, spec.Snippets, core.Options{
		Limits:  synth.Limits{MaxSize: 12},
		Workers: workers,
		Cache:   cache,
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var sb strings.Builder
	if err := rec.Ledger().WriteNDJSON(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestLedgerParity is the provenance acceptance gate: the ledger must be
// byte-identical across worker counts and across cache temperature —
// cold solve, warm memory-tier replay, and disk-tier replay through a
// fresh cache over the same store (which exercises the wire codec's
// trace round-trip).
func TestLedgerParity(t *testing.T) {
	mk := func() *protocols.Spec { return protocols.MSI(2) }

	baseline := ledgerNDJSON(t, mk, 1, engine.NewCache())
	if !strings.Contains(baseline, `"type":"provenance"`) || !strings.Contains(baseline, `"type":"hole"`) {
		t.Fatalf("thin ledger:\n%.400s", baseline)
	}
	for _, workers := range []int{2, 8} {
		if got := ledgerNDJSON(t, mk, workers, engine.NewCache()); got != baseline {
			t.Fatalf("ledger differs at workers=%d", workers)
		}
	}

	// Warm memory tier: same cache, every sub-solve replays from memory.
	shared := engine.NewCache()
	cold := ledgerNDJSON(t, mk, 4, shared)
	if cold != baseline {
		t.Fatal("cold shared-cache ledger differs from baseline")
	}
	warm := ledgerNDJSON(t, mk, 4, shared)
	if warm != baseline {
		t.Fatal("warm memory-tier ledger differs from the cold run")
	}

	// Disk tier: a fresh cache over the same store has an empty memory
	// tier, so every lookup decodes the persisted trace from disk.
	store, err := diskcache.Open(t.TempDir(), diskcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if got := ledgerNDJSON(t, mk, 4, engine.NewCacheWithBackend(store)); got != baseline {
		t.Fatal("cold disk-backed ledger differs from baseline")
	}
	if got := ledgerNDJSON(t, mk, 4, engine.NewCacheWithBackend(store)); got != baseline {
		t.Fatal("disk-tier replay ledger differs from baseline")
	}
}
