package mc

import (
	"context"
	"fmt"
	"strings"

	"transit/internal/efsm"
)

// The paper's methodology includes a counterexample visualizer: the
// programmer studies the violating trace as a message-sequence chart
// (Figure 2 is one) before writing the corrective snippet. FormatMSC
// renders a Violation's underlying action sequence in that style: one
// column per process instance, message arrows between columns, control
// states annotated as they change.

// mscEvent is one row of the chart.
type mscEvent struct {
	// kind: "send", "trigger", "state"
	from, to int // instance columns (to = -1 for local events)
	label    string
}

// FormatMSC renders the action path from the initial state to the
// violation as an ASCII message-sequence chart. It re-executes the trace,
// so it needs the runtime the violation came from.
func FormatMSC(r *efsm.Runtime, actions []efsm.Action) string {
	colWidth := 16
	for _, inst := range r.Insts {
		if len(inst.Name())+4 > colWidth {
			colWidth = len(inst.Name()) + 4
		}
	}
	var events []mscEvent
	st := r.Initial()
	for _, a := range actions {
		if a.Net < 0 {
			events = append(events, mscEvent{from: a.Inst, to: -1,
				label: fmt.Sprintf("%s [%s->%s]", a.Trans.Event.Trigger, a.Trans.From, a.Trans.To)})
		} else {
			net := r.Sys.Networks[a.Net]
			events = append(events, mscEvent{from: a.Inst, to: -1,
				label: fmt.Sprintf("recv %s %s [%s->%s]", net.Name, r.FormatMsg(net, a.Msg),
					a.Trans.From, a.Trans.To)})
		}
		next := r.Apply(st, a)
		// Sends become arrows: diff the network contents.
		for nIdx, slots := range next.Nets {
			net := r.Sys.Networks[nIdx]
			for slot := range slots {
				old := len(st.Nets[nIdx][slot])
				if nIdx == a.Net && slot == a.Slot {
					old-- // one message was consumed
				}
				for m := old; m < len(slots[slot]); m++ {
					if m < 0 {
						continue
					}
					recv := receiverOf(r, net, slot)
					events = append(events, mscEvent{from: a.Inst, to: recv,
						label: fmt.Sprintf("%s %s", net.Name, r.FormatMsg(net, slots[slot][m]))})
				}
			}
		}
		st = next
	}
	return renderMSC(r, events, colWidth)
}

func receiverOf(r *efsm.Runtime, net *efsm.Network, slot int) int {
	ids := r.InstancesOf(net.Receiver)
	if net.Route == efsm.RouteStatic {
		return ids[0]
	}
	return ids[slot]
}

func renderMSC(r *efsm.Runtime, events []mscEvent, colWidth int) string {
	n := len(r.Insts)
	var sb strings.Builder
	// Header.
	for _, inst := range r.Insts {
		fmt.Fprintf(&sb, "%-*s", colWidth, center(inst.Name(), colWidth))
	}
	sb.WriteByte('\n')
	lifelines := func() []byte {
		row := make([]byte, colWidth*n)
		for i := range row {
			row[i] = ' '
		}
		for c := 0; c < n; c++ {
			row[c*colWidth+colWidth/2] = '|'
		}
		return row
	}
	for _, ev := range events {
		row := lifelines()
		switch {
		case ev.to < 0 || ev.to == ev.from:
			// Local event: annotate beside the lifeline.
			sb.Write(row)
			sb.WriteByte('\n')
			pos := ev.from*colWidth + colWidth/2
			line := string(lifelines()[:pos+1]) + "* " + ev.label
			sb.WriteString(line)
			sb.WriteByte('\n')
		default:
			// Arrow between columns.
			a := ev.from*colWidth + colWidth/2
			b := ev.to*colWidth + colWidth/2
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			for i := lo + 1; i < hi; i++ {
				row[i] = '-'
			}
			if b > a {
				row[hi-1] = '>'
			} else {
				row[lo+1] = '<'
			}
			sb.Write(row)
			sb.WriteString("  " + ev.label)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func center(s string, width int) string {
	if len(s) >= width {
		return s[:width]
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

// CheckWithMSC is Check, additionally rendering the violation (when any)
// as a message-sequence chart.
func CheckWithMSC(r *efsm.Runtime, invs []Invariant, opts Options) (*Result, string, error) {
	return CheckWithMSCCtx(context.Background(), r, invs, opts)
}

// CheckWithMSCCtx is CheckWithMSC under a context (see CheckCtx).
func CheckWithMSCCtx(ctx context.Context, r *efsm.Runtime, invs []Invariant, opts Options) (*Result, string, error) {
	res, err := CheckCtx(ctx, r, invs, opts)
	if err != nil || res.Violation == nil {
		return res, "", err
	}
	return res, FormatMSC(r, res.Violation.actions), nil
}
