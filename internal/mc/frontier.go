package mc

import (
	"sort"

	"transit/internal/efsm"
)

// The search is organized as depth-synchronized rounds over a hash-sharded
// visited set. Each round expands the entire depth-d frontier (split
// across workers by stride), then merges the candidate successors
// shard-by-shard (split across workers by shard ownership), then checks
// invariants on the accepted depth-(d+1) states, then accounts states and
// budgets sequentially. The phases are separated by WaitGroup barriers, so
// within a phase the visited shards are read-only (expansion) or
// partitioned (merge) — no locks, and the race detector agrees.
//
// Determinism is by construction, independent of worker count:
//   - The frontier is globally sorted by canonical key, so "earliest
//     frontier index" (the tie-break for semantics problems and deadlocks
//     found at the same depth) means "least canonical key".
//   - Candidates merge in (key, parent key, action index) order and the
//     first wins, so when several depth-d parents reach the same new
//     state, the recorded predecessor is the lexicographically least —
//     every counterexample trace is reproducible run to run.
//   - States are counted, and the MaxStates budget charged, in one
//     sequential sweep over the key-sorted accepted list, so the budget
//     cuts at exactly the same state no matter how many workers expanded.

// numShards fixes the visited-set sharding. It is a constant, not a
// function of Workers, so the shard assignment of a state — and with it
// per-shard stats — is identical across worker counts.
const numShards = 64

// edge records how a state was first reached: the canonical key of its
// predecessor, the action taken (in the predecessor's representative
// frame), and the permutation that canonicalized the successor. Traces
// replay through these, composing the permutations back to original PIDs.
type edge struct {
	parent string
	action efsm.Action
	sigma  efsm.Perm
	init   bool
}

// shardSet is the visited map split across numShards sub-maps by key hash.
type shardSet struct {
	maps [numShards]map[string]edge
}

func newShardSet() *shardSet {
	s := &shardSet{}
	for i := range s.maps {
		s.maps[i] = make(map[string]edge)
	}
	return s
}

// shardOf hashes a canonical key to its shard (FNV-1a).
func shardOf(key string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h & (numShards - 1))
}

func (s *shardSet) lookup(key string) (edge, bool) {
	e, ok := s.maps[shardOf(key)][key]
	return e, ok
}

// counts returns the per-shard visited sizes.
func (s *shardSet) counts() []int {
	out := make([]int, numShards)
	for i := range s.maps {
		out[i] = len(s.maps[i])
	}
	return out
}

// frontEnt is one frontier state: its canonical key, its representative
// state (the canonical frame when symmetry reduction applies, the state
// itself otherwise), and its orbit size under the PID symmetry group.
type frontEnt struct {
	key   string
	st    *efsm.State
	orbit int
}

// candidate is a successor produced during expansion, waiting for the
// merge phase to decide whether it is new and which parent edge wins.
type candidate struct {
	key    string
	parent string
	actIdx int
	action efsm.Action
	sigma  efsm.Perm
	orbit  int
	st     *efsm.State
}

// sortCandidates orders candidates by (key, parent, action index): the
// first candidate per key after this sort is the deterministic winner.
func sortCandidates(cands []candidate) {
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.key != b.key {
			return a.key < b.key
		}
		if a.parent != b.parent {
			return a.parent < b.parent
		}
		return a.actIdx < b.actIdx
	})
}

// sortFrontier orders a frontier by canonical key: the round-global order
// that "least index" tie-breaks refer to.
func sortFrontier(f []frontEnt) {
	sort.Slice(f, func(i, j int) bool { return f[i].key < f[j].key })
}

// problemAt is a semantics problem or deadlock found at a frontier index;
// the least index (= least canonical key) wins the round.
type problemAt struct {
	idx      int
	deadlock bool
	name     string
	detail   string
}

// violAt is an invariant violation at an index of the accepted list, with
// the violated invariant's position (invariants are checked in order, so
// the least invariant index at the least state index mirrors the
// sequential checker).
type violAt struct {
	idx    int
	inv    int
	detail string
}
