package mc

import (
	"reflect"
	"testing"

	"transit/internal/efsm"
	"transit/internal/expr"
)

// normalize zeroes the wall-clock fields, the only Result fields allowed
// to differ across worker counts and runs.
func normalize(res *Result) *Result {
	res.Elapsed = 0
	res.StatesPerSec = 0
	return res
}

// grantSystem builds an n-cache request/grant protocol whose server
// records the owner PID, parameterized by the initial owner so tests can
// feed the checker PID-permuted variants of the same system.
func grantSystem(t *testing.T, n, initialOwner int) (*efsm.System, *efsm.ProcDef) {
	t.Helper()
	u := expr.NewUniverse(n)
	mt := u.MustDeclareEnum("GrMT", "Req", "Grant", "Rel")
	client := &efsm.ProcDef{
		Name:       "Client",
		States:     u.MustDeclareEnum("GrClientSt", "Idle", "Waiting", "Holding"),
		Init:       "Idle",
		Replicated: true,
		Triggers:   []string{"Want", "Done"},
	}
	server := &efsm.ProcDef{
		Name:     "Server",
		States:   u.MustDeclareEnum("GrServerSt", "Free", "Busy"),
		Init:     "Free",
		Vars:     []*expr.Var{expr.V("Owner", expr.PIDType)},
		InitVals: expr.Env{"Owner": expr.PIDVal(initialOwner)},
	}
	toServ := &efsm.Network{
		Name: "ToServ", Kind: efsm.Unordered, Receiver: server, Route: efsm.RouteStatic,
		Msg: &efsm.MessageType{Name: "GrServMsg", Fields: []efsm.Field{
			{Name: "MType", T: expr.EnumOf(mt)},
			{Name: "Sender", T: expr.PIDType},
		}},
	}
	toCli := &efsm.Network{
		Name: "ToCli", Kind: efsm.Ordered, Receiver: client, Route: efsm.RouteByField, DestField: "Dest",
		Msg: &efsm.MessageType{Name: "GrCliMsg", Fields: []efsm.Field{
			{Name: "MType", T: expr.EnumOf(mt)},
			{Name: "Dest", T: expr.PIDType},
		}},
	}
	self := expr.V(efsm.SelfVar, expr.PIDType)
	sender := expr.V("Msg.Sender", expr.PIDType)
	cliMT := expr.V("Msg.MType", expr.EnumOf(mt))
	servMT := expr.V("Msg.MType", expr.EnumOf(mt))
	client.Transitions = []*efsm.Transition{
		{
			From: "Idle", Event: efsm.Event{Trigger: "Want"}, To: "Waiting",
			Sends: []efsm.Send{{Net: toServ, MsgVar: "Out", Fields: []efsm.SendField{
				{Field: "MType", Rhs: expr.EnumC(mt, "Req")},
				{Field: "Sender", Rhs: self},
			}}},
		},
		{
			From: "Waiting", Event: efsm.Event{Net: toCli, MsgVar: "Msg"},
			Guard: expr.Eq(cliMT, expr.EnumC(mt, "Grant")), To: "Holding",
		},
		{
			From: "Holding", Event: efsm.Event{Trigger: "Done"}, To: "Idle",
			Sends: []efsm.Send{{Net: toServ, MsgVar: "Out", Fields: []efsm.SendField{
				{Field: "MType", Rhs: expr.EnumC(mt, "Rel")},
				{Field: "Sender", Rhs: self},
			}}},
		},
	}
	server.Transitions = []*efsm.Transition{
		{
			From: "Free", Event: efsm.Event{Net: toServ, MsgVar: "Msg"},
			Guard:   expr.Eq(servMT, expr.EnumC(mt, "Req")),
			To:      "Busy",
			Updates: []efsm.Update{{Var: "Owner", Rhs: sender}},
			Sends: []efsm.Send{{Net: toCli, MsgVar: "Out", Fields: []efsm.SendField{
				{Field: "MType", Rhs: expr.EnumC(mt, "Grant")},
				{Field: "Dest", Rhs: sender},
			}}},
		},
		{
			From: "Busy", Event: efsm.Event{Net: toServ, MsgVar: "Msg"},
			Guard: expr.Eq(servMT, expr.EnumC(mt, "Req")),
			Defer: true,
		},
		{
			From: "Busy", Event: efsm.Event{Net: toServ, MsgVar: "Msg"},
			Guard: expr.Eq(servMT, expr.EnumC(mt, "Rel")),
			To:    "Free",
		},
	}
	sys := &efsm.System{
		Name: "grant", U: u,
		Networks: []*efsm.Network{toServ, toCli},
		Defs:     []*efsm.ProcDef{server, client},
	}
	return sys, client
}

// TestWorkerParity pins the central determinism contract: for every
// violation class and with symmetry reduction both off and on, workers=1,
// 2, and 8 produce byte-identical Results — counterexample trace, action
// path, counters, and per-shard stats included. Only the wall-clock
// fields are exempt. Run under -race this also exercises the phase
// barriers of the parallel engine.
func TestWorkerParity(t *testing.T) {
	fixtures := []struct {
		name     string
		o        tokenOpts
		deadlock bool
	}{
		{"safe", tokenOpts{}, false},
		{"mutex-violation", tokenOpts{grantWhileBusy: true}, false},
		{"unexpected-message", tokenOpts{dropRelease: true}, false},
		{"nondeterministic-guards", tokenOpts{overlapGuards: true}, false},
		{"deadlock", tokenOpts{noDone: true}, true},
	}
	for _, f := range fixtures {
		for _, sym := range []bool{false, true} {
			name := f.name + "/sym=off"
			if sym {
				name = f.name + "/sym=on"
			}
			t.Run(name, func(t *testing.T) {
				sys, client, _ := tokenSystem(t, f.o)
				r := mustRuntime(t, sys)
				var base *Result
				for _, w := range []int{1, 2, 8} {
					res, err := Check(r, []Invariant{AtMostOne(client, "Holding")},
						Options{CheckDeadlock: f.deadlock, Workers: w, SymmetryReduction: sym})
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					normalize(res)
					if base == nil {
						base = res
						continue
					}
					if !reflect.DeepEqual(base, res) {
						t.Errorf("workers=%d diverges from workers=1:\n  base: %+v\n  got:  %+v", w, base, res)
					}
				}
			})
		}
	}
}

// TestWorkerParityBudgets pins that budget errors and depth cuts land on
// exactly the same state regardless of worker count.
func TestWorkerParityBudgets(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{})
	r := mustRuntime(t, sys)
	for _, sym := range []bool{false, true} {
		var baseBudget, baseDepth *Result
		for _, w := range []int{1, 2, 8} {
			res, err := Check(r, []Invariant{AtMostOne(client, "Holding")},
				Options{MaxStates: 7, Workers: w, SymmetryReduction: sym})
			if err == nil {
				t.Fatalf("workers=%d: budget error expected", w)
			}
			normalize(res)
			if baseBudget == nil {
				baseBudget = res
			} else if !reflect.DeepEqual(baseBudget, res) {
				t.Errorf("budget abort diverges at workers=%d: %+v vs %+v", w, baseBudget, res)
			}
			res, err = Check(r, []Invariant{AtMostOne(client, "Holding")},
				Options{MaxDepth: 2, Workers: w, SymmetryReduction: sym})
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			if !res.OK || res.Complete {
				t.Errorf("depth-cut run must be OK but not Complete: %+v", res)
			}
			normalize(res)
			if baseDepth == nil {
				baseDepth = res
			} else if !reflect.DeepEqual(baseDepth, res) {
				t.Errorf("depth cut diverges at workers=%d: %+v vs %+v", w, baseDepth, res)
			}
		}
	}
}

// TestSymmetryAgreement: reduction on and off must agree on the verdict
// and, for violations, on the (shortest) counterexample length — the
// trace itself may name a different member of the same orbit.
func TestSymmetryAgreement(t *testing.T) {
	fixtures := []struct {
		name     string
		o        tokenOpts
		deadlock bool
	}{
		{"safe", tokenOpts{}, false},
		{"mutex-violation", tokenOpts{grantWhileBusy: true}, false},
		{"unexpected-message", tokenOpts{dropRelease: true}, false},
		{"deadlock", tokenOpts{noDone: true}, true},
	}
	for _, f := range fixtures {
		t.Run(f.name, func(t *testing.T) {
			sys, client, _ := tokenSystem(t, f.o)
			r := mustRuntime(t, sys)
			opts := Options{CheckDeadlock: f.deadlock}
			plain, err := Check(r, []Invariant{AtMostOne(client, "Holding")}, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.SymmetryReduction = true
			opts.Workers = 4
			red, err := Check(r, []Invariant{AtMostOne(client, "Holding")}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !red.SymmetryApplied {
				t.Fatal("token system is symmetric; reduction should have applied")
			}
			if plain.OK != red.OK {
				t.Fatalf("verdicts disagree: plain=%v reduced=%v", plain.OK, red.OK)
			}
			if plain.Violation != nil {
				if red.Violation == nil {
					t.Fatal("reduced run lost the violation")
				}
				if plain.Violation.Kind != red.Violation.Kind {
					t.Errorf("kinds disagree: %v vs %v", plain.Violation.Kind, red.Violation.Kind)
				}
				if len(plain.Violation.Trace) != len(red.Violation.Trace) {
					t.Errorf("trace lengths disagree: %d vs %d",
						len(plain.Violation.Trace), len(red.Violation.Trace))
				}
			}
			if plain.OK && red.States >= plain.States {
				t.Errorf("reduction did not shrink the safe space: %d vs %d", red.States, plain.States)
			}
		})
	}
}

// TestPermutedInitialSystems is the orbit-invariance property test: the
// same protocol seeded with PID-permuted initial values must explore the
// identical canonical reachable set — same state count, transition count,
// depth, and per-shard occupancy.
func TestPermutedInitialSystems(t *testing.T) {
	const n = 3
	var base *Result
	for owner := 0; owner < n; owner++ {
		sys, client := grantSystem(t, n, owner)
		r := mustRuntime(t, sys)
		res, err := Check(r, []Invariant{AtMostOne(client, "Holding")},
			Options{SymmetryReduction: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !res.SymmetryApplied {
			t.Fatal("grant system is symmetric; reduction should have applied")
		}
		if !res.OK || !res.Complete {
			t.Fatalf("owner=%d: %+v", owner, res.Violation)
		}
		normalize(res)
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Errorf("owner=%d: canonical reachable set differs:\n  base: %+v\n  got:  %+v",
				owner, base, res)
		}
	}
	if got := sum(base.ShardStates); got != base.States {
		t.Errorf("shard stats sum %d != states %d", got, base.States)
	}
	if base.ReductionFactor <= 1.5 {
		t.Errorf("3-cache reduction factor = %.2f, want > 1.5", base.ReductionFactor)
	}
}

func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// TestTraceDeterministicPredecessor is the buildTrace regression: the
// violating state (and states on the way to it) are diamond joins
// reachable from several same-depth parents, and the reported trace must
// pick the same — lexicographically least — predecessor chain on every
// run and every worker count.
func TestTraceDeterministicPredecessor(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{grantWhileBusy: true})
	r := mustRuntime(t, sys)
	var want []TraceStep
	for trial := 0; trial < 5; trial++ {
		for _, w := range []int{1, 8} {
			res, err := Check(r, []Invariant{AtMostOne(client, "Holding")}, Options{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation == nil {
				t.Fatal("expected violation")
			}
			if want == nil {
				want = res.Violation.Trace
				continue
			}
			if !reflect.DeepEqual(want, res.Violation.Trace) {
				t.Fatalf("trial %d workers=%d: trace differs:\n%v\nvs\n%v",
					trial, w, want, res.Violation.Trace)
			}
		}
	}
}

// TestSymmetryAutoDisables: asymmetric systems run unreduced instead of
// failing or canonicalizing unsoundly.
func TestSymmetryAutoDisables(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{})
	sys.Defs[1].Asymmetric = true
	r := mustRuntime(t, sys)
	res, err := Check(r, []Invariant{AtMostOne(client, "Holding")},
		Options{SymmetryReduction: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SymmetryApplied {
		t.Error("reduction must auto-disable on an Asymmetric definition")
	}
	if !res.OK || !res.Complete {
		t.Errorf("unreduced fallback must still verify: %+v", res.Violation)
	}
	if res.ReductionFactor != 1.0 {
		t.Errorf("reduction factor without symmetry = %f, want 1.0", res.ReductionFactor)
	}
}

// TestSymmetricViolationTraceReplays: a counterexample found on canonical
// representatives must still be a genuine execution of the original
// system — replaying its action path step by step reproduces the trace
// and ends in a state violating the invariant.
func TestSymmetricViolationTraceReplays(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{grantWhileBusy: true})
	r := mustRuntime(t, sys)
	inv := AtMostOne(client, "Holding")
	res, err := Check(r, []Invariant{inv}, Options{SymmetryReduction: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || !res.SymmetryApplied {
		t.Fatalf("expected reduced violation, got %+v", res)
	}
	st := r.Initial()
	if got := r.FormatState(st); got != res.Violation.Trace[0].State {
		t.Fatalf("trace must start at the initial state: %q vs %q", got, res.Violation.Trace[0].State)
	}
	for i, a := range res.Violation.Actions() {
		st = r.Apply(st, a)
		if got := r.FormatState(st); got != res.Violation.Trace[i+1].State {
			t.Fatalf("step %d: replayed state %q != trace state %q", i, got, res.Violation.Trace[i+1].State)
		}
	}
	if ok, _ := inv.Check(r, st); ok {
		t.Error("replayed final state does not violate the invariant")
	}
}
