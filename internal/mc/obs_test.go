package mc

import (
	"context"
	"testing"

	"transit/internal/obs"
)

// TestCheckTiming covers the Result timing fields: any real BFS takes
// measurable time and reports a positive exploration rate.
func TestCheckTiming(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{})
	res, err := Check(mustRuntime(t, sys), []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Errorf("Elapsed = %s, want > 0", res.Elapsed)
	}
	if res.StatesPerSec <= 0 {
		t.Errorf("StatesPerSec = %f, want > 0", res.StatesPerSec)
	}
}

// TestCheckCtxSpan asserts the checker emits an mc.bfs span carrying the
// exploration counters as attributes.
func TestCheckCtxSpan(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{})
	col := obs.NewCollect()
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(col))
	reg := obs.NewRegistry()
	ctx = obs.WithMetrics(ctx, reg)

	res, err := CheckCtx(ctx, mustRuntime(t, sys), []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spans := col.Spans()
	if len(spans) != 1 || spans[0].Name != "mc.bfs" {
		t.Fatalf("spans = %+v, want one mc.bfs", spans)
	}
	attrs := map[string]any{}
	for _, a := range spans[0].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["states"] != int64(res.States) {
		t.Errorf("states attr = %v, want %d", attrs["states"], res.States)
	}
	if attrs["ok"] != true || attrs["complete"] != true {
		t.Errorf("ok/complete attrs = %v/%v", attrs["ok"], attrs["complete"])
	}
	if got := reg.Get("mc.states"); got != int64(res.States) {
		t.Errorf("mc.states counter = %d, want %d", got, res.States)
	}
	if got := reg.Get("mc.runs"); got != 1 {
		t.Errorf("mc.runs counter = %d, want 1", got)
	}
}
