// Package mc is an explicit-state model checker for efsm systems, playing
// the role Murϕ plays in the paper's methodology: it enumerates the
// reachable state space of a finite protocol instance by breadth-first
// search over canonically hashed states, checks safety invariants and
// execution-semantics rules (unexpected messages, guard determinism) at
// every state, and reconstructs a shortest counterexample trace when a
// violation is found.
//
// The search runs in depth-synchronized rounds over a hash-sharded
// visited set (see frontier.go), optionally canonicalizing states under
// permutation of the symmetric process IDs (see efsm.SymGroup), so both
// the worker count and the symmetry reduction change only the wall-clock,
// never the Result: budgets, counters, and counterexample traces are
// worker-count-invariant by construction.
package mc

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"transit/internal/efsm"
	"transit/internal/obs"
)

// Invariant is a named safety property over global states. When symmetry
// reduction is on, invariants must themselves be PID-symmetric (hold on a
// state iff they hold on every PID permutation of it) — all coherence
// properties of interest (SWMR, at-most-one-owner) are.
type Invariant struct {
	Name string
	// Check returns ok, or false with a human-readable detail.
	Check func(r *efsm.Runtime, st *efsm.State) (bool, string)
}

// Options bounds the search.
type Options struct {
	// MaxStates caps explored states (0 = 1,000,000). With symmetry
	// reduction on, the cap counts canonical states.
	MaxStates int
	// MaxDepth caps BFS depth (0 = unbounded).
	MaxDepth int
	// CheckDeadlock reports states with no enabled action as violations.
	CheckDeadlock bool
	// ProgressInterval paces the mc.progress heartbeat marks (states,
	// states/sec, queue depth). 0 means the 1s default; negative disables
	// heartbeats. Marks are emitted both from the BFS round loop (paced by
	// state count) and from a wall-clock ticker, so protocols with slow
	// transition or invariant functions still heartbeat on time.
	ProgressInterval time.Duration
	// Workers is the number of frontier workers (0 or 1 = sequential).
	// Results are identical for every worker count.
	Workers int
	// SymmetryReduction canonicalizes states under permutation of the
	// replicated process IDs, exploring one representative per orbit.
	// It silently disables itself (Result.SymmetryApplied reports the
	// outcome) when the system is not PID-symmetric — a PID or partial-set
	// literal in a transition, an Asymmetric process definition, fewer
	// than 2 or more than efsm.MaxSymmetryPIDs caches.
	SymmetryReduction bool
}

// ViolationKind classifies a counterexample.
type ViolationKind int

const (
	// InvariantViolation: a safety invariant failed.
	InvariantViolation ViolationKind = iota
	// SemanticsProblem: an unexpected message or nondeterministic guard
	// set (the protocol is underspecified or overspecified).
	SemanticsProblem
	// Deadlock: a state with no enabled action.
	Deadlock
)

func (k ViolationKind) String() string {
	switch k {
	case InvariantViolation:
		return "invariant violation"
	case SemanticsProblem:
		return "semantics problem"
	default:
		return "deadlock"
	}
}

// TraceStep is one step of a counterexample: the action taken and the
// state reached.
type TraceStep struct {
	Action string // empty for the initial state
	State  string
}

// Violation describes a counterexample. Traces are always rendered in the
// original PID frame: when symmetry reduction found the violation on a
// canonical representative, the path replays through the retained
// permutations so every step is a genuine execution of the input system.
type Violation struct {
	Kind   ViolationKind
	Name   string // invariant name or problem kind
	Detail string
	Trace  []TraceStep
	// actions is the structured action path, retained for the
	// message-sequence-chart renderer (FormatMSC).
	actions []efsm.Action
}

// Actions exposes the structured action path of the counterexample (the
// input to FormatMSC and to replay tooling).
func (v *Violation) Actions() []efsm.Action { return v.actions }

// StepRef identifies the transition taken at one step of a violation
// trace in join-key terms: which process definition, from which control
// state, on which event. The provenance ledger uses these keys to
// back-link a failing path to the records of every synthesized
// expression that fired along it.
type StepRef struct {
	Index   int    // index into Trace (step 0 is the initial state)
	Process string // process definition name
	PID     int
	From    string
	Event   string // efsm.Event.Key()
	To      string
}

// StepRefs resolves the structured action path against a runtime built
// over the same system (instance indices and transition pointers are
// runtime-relative). One ref is produced per action, indexed to match
// the corresponding Trace step.
func (v *Violation) StepRefs(r *efsm.Runtime) []StepRef {
	refs := make([]StepRef, 0, len(v.actions))
	for i, a := range v.actions {
		ref := StepRef{Index: i + 1, PID: -1}
		if r != nil && a.Inst >= 0 && a.Inst < len(r.Insts) {
			inst := r.Insts[a.Inst]
			ref.Process = inst.Def.Name
			ref.PID = inst.PID
		}
		if a.Trans != nil {
			ref.From = a.Trans.From
			ref.Event = a.Trans.Event.Key()
			ref.To = a.Trans.To
		}
		refs = append(refs, ref)
	}
	return refs
}

func (v *Violation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n  %s\n", v.Kind, v.Name, v.Detail)
	for i, step := range v.Trace {
		if step.Action == "" {
			fmt.Fprintf(&sb, "  [%d] (initial) %s\n", i, step.State)
		} else {
			fmt.Fprintf(&sb, "  [%d] %s\n      -> %s\n", i, step.Action, step.State)
		}
	}
	return sb.String()
}

// Result is the outcome of a model-checking run.
type Result struct {
	// OK is true when the search completed (within bounds) with no
	// violation.
	OK bool
	// Complete is true when the full reachable space was explored (no
	// depth cut, no budget abort, no cancellation).
	Complete bool
	// States counts explored states — canonical representatives when
	// symmetry reduction applied, concrete states otherwise.
	States      int
	Transitions int
	Depth       int
	Violation   *Violation
	// Elapsed is the wall-clock duration of the search; StatesPerSec is
	// the exploration rate States/Elapsed (0 for instantaneous runs).
	Elapsed      time.Duration
	StatesPerSec float64
	// SymmetryApplied reports whether symmetry reduction was actually in
	// effect (requested and the system qualified).
	SymmetryApplied bool
	// CanonicalStates mirrors States under symmetry reduction: the number
	// of orbit representatives explored.
	CanonicalStates int
	// ReductionFactor estimates how many concrete states each explored
	// state stood for: the mean orbit size (1 when reduction was off).
	ReductionFactor float64
	// ShardStates is the per-shard visited-set occupancy (the sharding is
	// worker-count-independent, so this too is deterministic).
	ShardStates []int
}

// Check explores the reachable states of the runtime and verifies the
// invariants. It returns the first (BFS-shortest) violation found.
func Check(r *efsm.Runtime, invs []Invariant, opts Options) (*Result, error) {
	return CheckCtx(context.Background(), r, invs, opts)
}

// CheckCtx is Check under a context: the search polls the context every
// round (and workers poll it during long expansions), so long-running
// searches are cancellable and honor deadlines the same way the
// Options.MaxStates budget bounds them. On cancellation the partial
// Result (states explored so far) is returned alongside the context's
// error.
func CheckCtx(ctx context.Context, r *efsm.Runtime, invs []Invariant, opts Options) (*Result, error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 1_000_000
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	var group *efsm.SymGroup
	if opts.SymmetryReduction {
		// Auto-disable on systems that do not qualify: the checker still
		// answers, just without the reduction.
		if g, err := efsm.NewSymGroup(r); err == nil {
			group = g
		}
	}
	res := &Result{SymmetryApplied: group != nil}
	ctx, span := obs.Start(ctx, "mc.bfs",
		obs.Int("max_states", maxStates), obs.Int("max_depth", opts.MaxDepth),
		obs.Int("workers", workers), obs.Bool("symmetry", group != nil))
	start := time.Now()
	// repStates/repTransitions/repOrbit track what the heartbeat has
	// already published to the metrics registry, so running updates and
	// the final settle add exact deltas instead of double-counting.
	var repStates, repTransitions, repOrbit atomic.Int64
	var visited *shardSet
	var orbitSum int64
	defer func() {
		res.Elapsed = time.Since(start)
		if secs := res.Elapsed.Seconds(); secs > 0 {
			res.StatesPerSec = float64(res.States) / secs
		}
		res.CanonicalStates = res.States
		if res.States > 0 {
			res.ReductionFactor = float64(orbitSum) / float64(res.States)
		}
		if visited != nil {
			res.ShardStates = visited.counts()
		}
		span.SetAttr(obs.Int("states", res.States),
			obs.Int("transitions", res.Transitions),
			obs.Int("depth", res.Depth),
			obs.Bool("ok", res.OK),
			obs.Bool("complete", res.Complete),
			obs.Float("states_per_sec", res.StatesPerSec),
			obs.Int("canonical_states", res.CanonicalStates),
			obs.Float("reduction_factor", res.ReductionFactor))
		span.End()
		if reg := obs.MetricsFrom(ctx); reg != nil {
			reg.Counter("mc.runs").Inc()
			// The heartbeat publishes running deltas; settle the remainder.
			if d := int64(res.States) - repStates.Swap(int64(res.States)); d > 0 {
				reg.Counter("mc.states").Add(d)
			}
			if d := int64(res.Transitions) - repTransitions.Swap(int64(res.Transitions)); d > 0 {
				reg.Counter("mc.transitions").Add(d)
			}
			if d := orbitSum - repOrbit.Swap(orbitSum); d > 0 {
				reg.Counter("mc.orbit_states").Add(d)
			}
			reg.Gauge("mc.frontier_depth").Set(int64(res.Depth))
			reg.Gauge("mc.reduction_factor_milli").Set(int64(res.ReductionFactor * 1000))
			if visited != nil {
				mn, mx := shardMinMax(visited)
				reg.Gauge("mc.shard.count").Set(int64(numShards))
				reg.Gauge("mc.shard.states_min").Set(mn)
				reg.Gauge("mc.shard.states_max").Set(mx)
			}
			reg.Histogram("mc.check_ms").Observe(res.Elapsed)
		}
	}()
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("mc: search aborted after %d states: %w", res.States, err)
	}

	// Per-worker canonical encoders share the (immutable) group.
	encs := make([]*efsm.CanonEncoder, workers)
	if group != nil {
		for w := range encs {
			encs[w] = group.Encoder()
		}
	}
	canon := func(enc *efsm.CanonEncoder, st *efsm.State) (string, efsm.Perm, int) {
		if group == nil {
			return r.Encode(st), nil, 1
		}
		return enc.Canonicalize(st)
	}
	rep := func(st *efsm.State, sigma efsm.Perm) *efsm.State {
		if group == nil || sigma.IsIdentity() {
			return st
		}
		return r.Permute(st, sigma)
	}

	init := r.Initial()
	var enc0 *efsm.CanonEncoder
	if group != nil {
		enc0 = encs[0]
	}
	initKey, initSigma, initOrbit := canon(enc0, init)
	visited = newShardSet()
	visited.maps[shardOf(initKey)][initKey] = edge{init: true, sigma: initSigma}
	frontier := []frontEnt{{key: initKey, st: rep(init, initSigma), orbit: initOrbit}}
	res.States = 1
	orbitSum = int64(initOrbit)

	// The initial state is checked in the original frame, like every
	// reported violation.
	for _, inv := range invs {
		if ok, detail := inv.Check(r, init); !ok {
			res.Violation = &Violation{Kind: InvariantViolation, Name: inv.Name, Detail: detail,
				Trace: []TraceStep{{State: r.FormatState(init)}}}
			return res, nil
		}
	}

	// Heartbeat plumbing: the round loop mirrors its counters into
	// atomics, and mc.progress marks fire whenever ProgressInterval has
	// elapsed — checked from the loop after every round (the cheap path)
	// and from a wall-clock ticker goroutine, so protocols whose
	// transition or invariant functions are slow still heartbeat on time
	// for /runs and the flight recorder. The CAS on lastBeat keeps the
	// two emitters from double-marking an interval.
	interval := opts.ProgressInterval
	if interval == 0 {
		interval = time.Second
	}
	var progStates, progTransitions, progDepth, progQueue atomic.Int64
	var progFrontier, progShardMin, progShardMax, progOrbit atomic.Int64
	progStates.Store(1)
	progQueue.Store(1)
	progOrbit.Store(orbitSum)
	var lastBeat atomic.Int64
	lastBeat.Store(start.UnixNano())
	reg := obs.MetricsFrom(ctx)
	beat := func(now time.Time) {
		last := lastBeat.Load()
		if now.UnixNano()-last < int64(interval) || !lastBeat.CompareAndSwap(last, now.UnixNano()) {
			return
		}
		states := progStates.Load()
		transitions := progTransitions.Load()
		span.Mark("mc.progress",
			obs.Int64("states", states),
			obs.Int64("transitions", transitions),
			obs.Int64("queue", progQueue.Load()),
			obs.Int64("depth", progDepth.Load()),
			obs.Int64("frontier_depth", progFrontier.Load()),
			obs.Float("states_per_sec", float64(states)/now.Sub(start).Seconds()))
		// Mirror the running totals into the metrics registry so /metrics
		// scrapes see mc.states advance during the search, not only after.
		// Deltas guard monotonicity against a beat racing the final settle.
		if reg != nil {
			if d := states - repStates.Swap(states); d > 0 {
				reg.Counter("mc.states").Add(d)
			}
			if d := transitions - repTransitions.Swap(transitions); d > 0 {
				reg.Counter("mc.transitions").Add(d)
			}
			if d := progOrbit.Load() - repOrbit.Swap(progOrbit.Load()); d > 0 {
				reg.Counter("mc.orbit_states").Add(d)
			}
			reg.Gauge("mc.frontier_depth").Set(progFrontier.Load())
			reg.Gauge("mc.shard.count").Set(int64(numShards))
			reg.Gauge("mc.shard.states_min").Set(progShardMin.Load())
			reg.Gauge("mc.shard.states_max").Set(progShardMax.Load())
			if states > 0 {
				reg.Gauge("mc.reduction_factor_milli").Set(progOrbit.Load() * 1000 / states)
			}
		}
	}
	if span != nil && interval > 0 {
		stopHB := make(chan struct{})
		defer close(stopHB)
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case now := <-t.C:
					beat(now)
				case <-stopHB:
					return
				}
			}
		}()
	}

	abort := func() (*Result, error) {
		return res, fmt.Errorf("mc: search aborted after %d states: %w", res.States, ctx.Err())
	}

	depth := 0
	for len(frontier) > 0 {
		if ctx.Err() != nil {
			return abort()
		}
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			// Depth cut: everything explored so far is violation-free, but
			// the space was not exhausted.
			res.OK = true
			return res, nil
		}

		// Phase A — expand: workers take frontier entries by stride,
		// reading the visited shards lock-free (no one writes until the
		// merge barrier) and bucketing candidate successors by shard.
		// Frontier states with semantics problems (or, when enabled, no
		// enabled action) are not expanded; the least frontier index —
		// least canonical key — wins the round.
		cands := make([][][]candidate, workers)
		probs := make([]*problemAt, workers)
		transLocal := make([]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buckets := make([][]candidate, numShards)
				enc := encs[w%len(encs)]
				for i := w; i < len(frontier); i += workers {
					if (i/workers)&255 == 255 && ctx.Err() != nil {
						break
					}
					ent := frontier[i]
					acts, aprobs := r.Actions(ent.st)
					if len(aprobs) > 0 {
						if probs[w] == nil {
							probs[w] = &problemAt{idx: i,
								name: aprobs[0].Kind.String(), detail: aprobs[0].Detail}
						}
						continue
					}
					if opts.CheckDeadlock && len(acts) == 0 {
						if probs[w] == nil {
							probs[w] = &problemAt{idx: i, deadlock: true}
						}
						continue
					}
					transLocal[w] += int64(len(acts))
					for ai, a := range acts {
						next := r.Apply(ent.st, a)
						key, sigma, orbit := canon(enc, next)
						if _, seen := visited.lookup(key); seen {
							continue
						}
						sh := shardOf(key)
						buckets[sh] = append(buckets[sh], candidate{
							key: key, parent: ent.key, actIdx: ai, action: a,
							sigma: sigma, orbit: orbit, st: rep(next, sigma)})
					}
				}
				cands[w] = buckets
			}(w)
		}
		wg.Wait()
		for _, tl := range transLocal {
			res.Transitions += int(tl)
		}
		if ctx.Err() != nil {
			return abort()
		}

		// Resolve problems/deadlocks: strided assignment means each
		// worker's first hit is its least index, and the global least
		// index is the least canonical key at this depth.
		var prob *problemAt
		for _, p := range probs {
			if p != nil && (prob == nil || p.idx < prob.idx) {
				prob = p
			}
		}
		if prob != nil {
			ent := frontier[prob.idx]
			if prob.deadlock {
				steps, acts, _ := buildTrace(r, visited, ent.key)
				res.Violation = &Violation{Kind: Deadlock, Name: "deadlock",
					Detail: "no enabled action", Trace: steps, actions: acts}
			} else {
				res.Violation = makeViolation(r, visited, ent.key, SemanticsProblem,
					prob.name, prob.detail, nil, 0)
			}
			return res, nil
		}

		// Phase B — merge: each shard has one owner worker, which gathers
		// that shard's candidates from every expander, sorts them by
		// (key, parent, action index), and admits the first edge per new
		// key. Accepted entries come out key-sorted within each shard.
		accepted := make([][]frontEnt, numShards)
		var wgM sync.WaitGroup
		for w := 0; w < workers; w++ {
			wgM.Add(1)
			go func(w int) {
				defer wgM.Done()
				var all []candidate
				for sh := w; sh < numShards; sh += workers {
					all = all[:0]
					for ww := 0; ww < workers; ww++ {
						all = append(all, cands[ww][sh]...)
					}
					if len(all) == 0 {
						continue
					}
					sortCandidates(all)
					m := visited.maps[sh]
					var acc []frontEnt
					for _, c := range all {
						if _, seen := m[c.key]; seen {
							continue
						}
						m[c.key] = edge{parent: c.parent, action: c.action, sigma: c.sigma}
						acc = append(acc, frontEnt{key: c.key, st: c.st, orbit: c.orbit})
					}
					accepted[sh] = acc
				}
			}(w)
		}
		wgM.Wait()

		// The next frontier, globally key-sorted: shard outputs are
		// already sorted, so a k-way concatenation plus one sort (cheap,
		// mostly-sorted runs) yields the canonical round order.
		var next []frontEnt
		for sh := 0; sh < numShards; sh++ {
			next = append(next, accepted[sh]...)
		}
		sortFrontier(next)

		// Phase C — invariants on the accepted states (representative
		// frame; invariants must be symmetric when reduction is on). The
		// least accepted index with a violation wins; per state, the
		// least invariant index.
		var vAt *violAt
		if len(invs) > 0 && len(next) > 0 {
			viols := make([]*violAt, workers)
			var wgI sync.WaitGroup
			for w := 0; w < workers; w++ {
				wgI.Add(1)
				go func(w int) {
					defer wgI.Done()
					for i := w; i < len(next); i += workers {
						for vi, inv := range invs {
							if ok, detail := inv.Check(r, next[i].st); !ok {
								viols[w] = &violAt{idx: i, inv: vi, detail: detail}
								return
							}
						}
					}
				}(w)
			}
			wgI.Wait()
			for _, v := range viols {
				if v != nil && (vAt == nil || v.idx < vAt.idx) {
					vAt = v
				}
			}
		}

		// Sequential accounting in key order: exact state counting, exact
		// budget cut, and the violation-vs-budget precedence of the
		// sequential checker (a state's violation is reported before its
		// budget overflow).
		if len(next) > 0 {
			res.Depth = depth + 1
		}
		for i := range next {
			res.States++
			orbitSum += int64(next[i].orbit)
			if vAt != nil && vAt.idx == i {
				res.Violation = makeViolation(r, visited, next[i].key, InvariantViolation,
					invs[vAt.inv].Name, vAt.detail, invs, vAt.inv)
				return res, nil
			}
			if res.States >= maxStates {
				return res, fmt.Errorf("mc: state budget %d exhausted (%d states)", maxStates, res.States)
			}
		}

		progStates.Store(int64(res.States))
		progTransitions.Store(int64(res.Transitions))
		progDepth.Store(int64(res.Depth))
		progQueue.Store(int64(len(next)))
		progFrontier.Store(int64(depth + 1))
		progOrbit.Store(orbitSum)
		mn, mx := shardMinMax(visited)
		progShardMin.Store(mn)
		progShardMax.Store(mx)
		if span != nil && interval > 0 {
			beat(time.Now())
		}

		frontier = next
		depth++
	}
	res.OK = true
	res.Complete = true
	return res, nil
}

func shardMinMax(s *shardSet) (int64, int64) {
	mn, mx := len(s.maps[0]), len(s.maps[0])
	for i := 1; i < numShards; i++ {
		if n := len(s.maps[i]); n < mn {
			mn = n
		} else if n > mx {
			mx = n
		}
	}
	return int64(mn), int64(mx)
}

// makeViolation reconstructs the original-frame trace to key and rebuilds
// the human-readable name/detail from the replayed final state, so
// counterexamples always describe the input system even when the
// violation was found on a canonical representative.
func makeViolation(r *efsm.Runtime, visited *shardSet, key string, kind ViolationKind,
	name, detail string, invs []Invariant, invIdx int) *Violation {
	steps, acts, final := buildTrace(r, visited, key)
	switch kind {
	case InvariantViolation:
		name = invs[invIdx].Name
		if ok, d := invs[invIdx].Check(r, final); !ok {
			detail = d
		}
	case SemanticsProblem:
		if _, probs := r.Actions(final); len(probs) > 0 {
			name = probs[0].Kind.String()
			detail = probs[0].Detail
		}
	}
	return &Violation{Kind: kind, Name: name, Detail: detail, Trace: steps, actions: acts}
}

// buildTrace walks the parent edges from key back to the initial state and
// replays the path forward in the original PID frame: each stored action
// lives in its parent representative's frame, so it is mapped through the
// inverse of the accumulated permutation before being applied, and the
// edge's canonicalizing permutation is composed on afterwards. With
// symmetry reduction off every permutation is the identity and this is a
// plain replay. The returned state is the final (violating) state in the
// original frame.
func buildTrace(r *efsm.Runtime, visited *shardSet, key string) ([]TraceStep, []efsm.Action, *efsm.State) {
	type hop struct {
		action efsm.Action
		sigma  efsm.Perm
	}
	var hops []hop
	var rho efsm.Perm
	for {
		e, ok := visited.lookup(key)
		if !ok {
			break
		}
		if e.init {
			rho = e.sigma
			break
		}
		hops = append(hops, hop{e.action, e.sigma})
		key = e.parent
	}
	// Reverse into execution order.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	st := r.Initial()
	trace := []TraceStep{{State: r.FormatState(st)}}
	actions := make([]efsm.Action, 0, len(hops))
	for _, h := range hops {
		a := r.PermuteAction(h.action, rho.Inverse())
		st = r.Apply(st, a)
		rho = h.sigma.Compose(rho)
		trace = append(trace, TraceStep{Action: r.FormatAction(a), State: r.FormatState(st)})
		actions = append(actions, a)
	}
	return trace, actions, st
}
