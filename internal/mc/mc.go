// Package mc is an explicit-state model checker for efsm systems, playing
// the role Murϕ plays in the paper's methodology: it enumerates the
// reachable state space of a finite protocol instance by breadth-first
// search over canonically hashed states, checks safety invariants and
// execution-semantics rules (unexpected messages, guard determinism) at
// every state, and reconstructs a shortest counterexample trace when a
// violation is found.
package mc

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"transit/internal/efsm"
	"transit/internal/obs"
)

// Invariant is a named safety property over global states.
type Invariant struct {
	Name string
	// Check returns ok, or false with a human-readable detail.
	Check func(r *efsm.Runtime, st *efsm.State) (bool, string)
}

// Options bounds the search.
type Options struct {
	// MaxStates caps explored states (0 = 1,000,000).
	MaxStates int
	// MaxDepth caps BFS depth (0 = unbounded).
	MaxDepth int
	// CheckDeadlock reports states with no enabled action as violations.
	CheckDeadlock bool
	// ProgressInterval paces the mc.progress heartbeat marks (states,
	// states/sec, queue depth). 0 means the 1s default; negative disables
	// heartbeats. Marks are emitted both from the BFS loop (paced by
	// state count) and from a wall-clock ticker, so protocols with slow
	// transition or invariant functions still heartbeat on time.
	ProgressInterval time.Duration
}

// ViolationKind classifies a counterexample.
type ViolationKind int

const (
	// InvariantViolation: a safety invariant failed.
	InvariantViolation ViolationKind = iota
	// SemanticsProblem: an unexpected message or nondeterministic guard
	// set (the protocol is underspecified or overspecified).
	SemanticsProblem
	// Deadlock: a state with no enabled action.
	Deadlock
)

func (k ViolationKind) String() string {
	switch k {
	case InvariantViolation:
		return "invariant violation"
	case SemanticsProblem:
		return "semantics problem"
	default:
		return "deadlock"
	}
}

// TraceStep is one step of a counterexample: the action taken and the
// state reached.
type TraceStep struct {
	Action string // empty for the initial state
	State  string
}

// Violation describes a counterexample.
type Violation struct {
	Kind   ViolationKind
	Name   string // invariant name or problem kind
	Detail string
	Trace  []TraceStep
	// actions is the structured action path, retained for the
	// message-sequence-chart renderer (FormatMSC).
	actions []efsm.Action
}

// Actions exposes the structured action path of the counterexample (the
// input to FormatMSC and to replay tooling).
func (v *Violation) Actions() []efsm.Action { return v.actions }

func (v *Violation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n  %s\n", v.Kind, v.Name, v.Detail)
	for i, step := range v.Trace {
		if step.Action == "" {
			fmt.Fprintf(&sb, "  [%d] (initial) %s\n", i, step.State)
		} else {
			fmt.Fprintf(&sb, "  [%d] %s\n      -> %s\n", i, step.Action, step.State)
		}
	}
	return sb.String()
}

// Result is the outcome of a model-checking run.
type Result struct {
	// OK is true when the search completed (within bounds) with no
	// violation.
	OK bool
	// Complete is true when the full reachable space was explored.
	Complete    bool
	States      int
	Transitions int
	Depth       int
	Violation   *Violation
	// Elapsed is the wall-clock duration of the search; StatesPerSec is
	// the exploration rate States/Elapsed (0 for instantaneous runs).
	Elapsed      time.Duration
	StatesPerSec float64
}

type edge struct {
	parent string
	action efsm.Action
	init   bool
	depth  int
}

// Check explores the reachable states of the runtime and verifies the
// invariants. It returns the first (BFS-shortest) violation found.
func Check(r *efsm.Runtime, invs []Invariant, opts Options) (*Result, error) {
	return CheckCtx(context.Background(), r, invs, opts)
}

// CheckCtx is Check under a context: the BFS loop polls the context every
// batch of expansions, so long-running searches are cancellable and honor
// deadlines the same way the Options.MaxStates budget bounds them. On
// cancellation the partial Result (states explored so far) is returned
// alongside the context's error.
func CheckCtx(ctx context.Context, r *efsm.Runtime, invs []Invariant, opts Options) (*Result, error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 1_000_000
	}
	res := &Result{}
	ctx, span := obs.Start(ctx, "mc.bfs",
		obs.Int("max_states", maxStates), obs.Int("max_depth", opts.MaxDepth))
	start := time.Now()
	// repStates/repTransitions track what the heartbeat has already
	// published to the metrics registry, so running updates and the final
	// settle add exact deltas instead of double-counting.
	var repStates, repTransitions atomic.Int64
	defer func() {
		res.Elapsed = time.Since(start)
		if secs := res.Elapsed.Seconds(); secs > 0 {
			res.StatesPerSec = float64(res.States) / secs
		}
		span.SetAttr(obs.Int("states", res.States),
			obs.Int("transitions", res.Transitions),
			obs.Int("depth", res.Depth),
			obs.Bool("ok", res.OK),
			obs.Bool("complete", res.Complete),
			obs.Float("states_per_sec", res.StatesPerSec))
		span.End()
		if reg := obs.MetricsFrom(ctx); reg != nil {
			reg.Counter("mc.runs").Inc()
			// The heartbeat publishes running deltas; settle the remainder.
			if d := int64(res.States) - repStates.Swap(int64(res.States)); d > 0 {
				reg.Counter("mc.states").Add(d)
			}
			if d := int64(res.Transitions) - repTransitions.Swap(int64(res.Transitions)); d > 0 {
				reg.Counter("mc.transitions").Add(d)
			}
			reg.Histogram("mc.check_ms").Observe(res.Elapsed)
		}
	}()
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("mc: search aborted after %d states: %w", res.States, err)
	}
	init := r.Initial()
	initKey := r.Encode(init)
	visited := map[string]edge{initKey: {init: true}}

	type qent struct {
		st  *efsm.State
		key string
	}
	queue := []qent{{st: init, key: initKey}}
	res.States = 1

	check := func(st *efsm.State, key string) *Violation {
		for _, inv := range invs {
			if ok, detail := inv.Check(r, st); !ok {
				steps, acts := buildTrace(r, visited, key)
				return &Violation{Kind: InvariantViolation, Name: inv.Name, Detail: detail,
					Trace: steps, actions: acts}
			}
		}
		return nil
	}
	if v := check(init, initKey); v != nil {
		res.Violation = v
		return res, nil
	}

	// Heartbeat plumbing: the BFS loop mirrors its counters into atomics,
	// and mc.progress marks fire whenever ProgressInterval has elapsed —
	// checked both from the loop (every 1024 dequeues, the cheap path)
	// and from a wall-clock ticker goroutine, so protocols whose
	// transition or invariant functions are slow still heartbeat on time
	// for /runs and the flight recorder. The CAS on lastBeat keeps the
	// two emitters from double-marking an interval.
	interval := opts.ProgressInterval
	if interval == 0 {
		interval = time.Second
	}
	var progStates, progTransitions, progDepth, progQueue atomic.Int64
	progStates.Store(1)
	progQueue.Store(1)
	var lastBeat atomic.Int64
	lastBeat.Store(start.UnixNano())
	reg := obs.MetricsFrom(ctx)
	beat := func(now time.Time) {
		last := lastBeat.Load()
		if now.UnixNano()-last < int64(interval) || !lastBeat.CompareAndSwap(last, now.UnixNano()) {
			return
		}
		states := progStates.Load()
		transitions := progTransitions.Load()
		span.Mark("mc.progress",
			obs.Int64("states", states),
			obs.Int64("transitions", transitions),
			obs.Int64("queue", progQueue.Load()),
			obs.Int64("depth", progDepth.Load()),
			obs.Float("states_per_sec", float64(states)/now.Sub(start).Seconds()))
		// Mirror the running totals into the metrics registry so /metrics
		// scrapes see mc.states advance during the search, not only after.
		// Deltas guard monotonicity against a beat racing the final settle.
		if reg != nil {
			if d := states - repStates.Swap(states); d > 0 {
				reg.Counter("mc.states").Add(d)
			}
			if d := transitions - repTransitions.Swap(transitions); d > 0 {
				reg.Counter("mc.transitions").Add(d)
			}
		}
	}
	if span != nil && interval > 0 {
		stopHB := make(chan struct{})
		defer close(stopHB)
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case now := <-t.C:
					beat(now)
				case <-stopHB:
					return
				}
			}
		}()
	}

	var dequeued int
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		dequeued++
		if dequeued&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("mc: search aborted after %d states: %w", res.States, err)
			}
			if span != nil && interval > 0 {
				beat(time.Now())
			}
		}
		depth := visited[cur.key].depth
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			continue
		}
		acts, probs := r.Actions(cur.st)
		if len(probs) > 0 {
			p := probs[0]
			steps, trActs := buildTrace(r, visited, cur.key)
			res.Violation = &Violation{Kind: SemanticsProblem, Name: p.Kind.String(),
				Detail: p.Detail, Trace: steps, actions: trActs}
			return res, nil
		}
		if opts.CheckDeadlock && len(acts) == 0 {
			steps, trActs := buildTrace(r, visited, cur.key)
			res.Violation = &Violation{Kind: Deadlock, Name: "deadlock",
				Detail: "no enabled action", Trace: steps, actions: trActs}
			return res, nil
		}
		for _, a := range acts {
			res.Transitions++
			next := r.Apply(cur.st, a)
			key := r.Encode(next)
			if _, seen := visited[key]; seen {
				continue
			}
			visited[key] = edge{parent: cur.key, action: a, depth: depth + 1}
			res.States++
			if depth+1 > res.Depth {
				res.Depth = depth + 1
			}
			if v := check(next, key); v != nil {
				res.Violation = v
				return res, nil
			}
			if res.States >= maxStates {
				return res, fmt.Errorf("mc: state budget %d exhausted (%d states)", maxStates, res.States)
			}
			queue = append(queue, qent{st: next, key: key})
		}
		progStates.Store(int64(res.States))
		progTransitions.Store(int64(res.Transitions))
		progDepth.Store(int64(res.Depth))
		progQueue.Store(int64(len(queue)))
	}
	res.OK = true
	res.Complete = true
	return res, nil
}

// buildTrace reconstructs the action path from the initial state to key and
// replays it to render intermediate states.
func buildTrace(r *efsm.Runtime, visited map[string]edge, key string) ([]TraceStep, []efsm.Action) {
	var actions []efsm.Action
	for {
		e := visited[key]
		if e.init {
			break
		}
		actions = append(actions, e.action)
		key = e.parent
	}
	// Reverse into execution order.
	for i, j := 0, len(actions)-1; i < j; i, j = i+1, j-1 {
		actions[i], actions[j] = actions[j], actions[i]
	}
	st := r.Initial()
	trace := []TraceStep{{State: r.FormatState(st)}}
	for _, a := range actions {
		st = r.Apply(st, a)
		trace = append(trace, TraceStep{Action: r.FormatAction(a), State: r.FormatState(st)})
	}
	return trace, actions
}
