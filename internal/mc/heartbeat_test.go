package mc

import (
	"context"
	"testing"
	"time"

	"transit/internal/efsm"
	"transit/internal/obs"
)

// slowCheck builds an invariant that always holds but burns wall-clock
// time on every state, simulating a protocol whose transition relation is
// slow: far fewer than 1024 dequeues happen per heartbeat interval, so
// only the wall-clock ticker can keep the heartbeat alive.
func slowCheck(d time.Duration) Invariant {
	return Invariant{Name: "slow", Check: func(r *efsm.Runtime, st *efsm.State) (bool, string) {
		time.Sleep(d)
		return true, ""
	}}
}

// TestHeartbeatWallClock asserts that a slow search still emits
// mc.progress marks on the wall-clock interval, and that the marks carry
// the live-gauge attributes /runs and the flight recorder feed on.
func TestHeartbeatWallClock(t *testing.T) {
	sys, _, _ := tokenSystem(t, tokenOpts{})
	col := obs.NewCollect()
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(col))

	_, err := CheckCtx(ctx, mustRuntime(t, sys), []Invariant{slowCheck(2 * time.Millisecond)},
		Options{ProgressInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var beats []obs.SpanData
	for _, m := range col.Marks() {
		if m.Name == "mc.progress" {
			beats = append(beats, m)
		}
	}
	if len(beats) == 0 {
		t.Fatal("no mc.progress marks from a slow search; wall-clock heartbeat missing")
	}
	attrs := map[string]any{}
	for _, a := range beats[len(beats)-1].Attrs {
		attrs[a.Key] = a.Value
	}
	for _, key := range []string{"states", "transitions", "queue", "depth", "states_per_sec"} {
		if _, ok := attrs[key]; !ok {
			t.Errorf("mc.progress mark missing attr %q (attrs: %v)", key, attrs)
		}
	}
	if s, ok := attrs["states"].(int64); !ok || s < 1 {
		t.Errorf("states attr = %v, want >= 1", attrs["states"])
	}
}

// TestHeartbeatDisabled asserts a negative interval turns heartbeats off
// entirely, even on a slow search.
func TestHeartbeatDisabled(t *testing.T) {
	sys, _, _ := tokenSystem(t, tokenOpts{})
	col := obs.NewCollect()
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(col))

	_, err := CheckCtx(ctx, mustRuntime(t, sys), []Invariant{slowCheck(time.Millisecond)},
		Options{ProgressInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range col.Marks() {
		if m.Name == "mc.progress" {
			t.Fatalf("mc.progress mark emitted with heartbeats disabled: %+v", m)
		}
	}
}
