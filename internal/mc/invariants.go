package mc

import (
	"fmt"

	"transit/internal/efsm"
)

// Predicate wraps an arbitrary check as an Invariant.
func Predicate(name string, check func(r *efsm.Runtime, st *efsm.State) (bool, string)) Invariant {
	return Invariant{Name: name, Check: check}
}

// AtMostOne asserts that at most one instance of def occupies any of the
// given control states at a time.
func AtMostOne(def *efsm.ProcDef, states ...string) Invariant {
	stateSet := map[string]bool{}
	for _, s := range states {
		stateSet[s] = true
	}
	name := fmt.Sprintf("at-most-one %s in %v", def.Name, states)
	return Invariant{Name: name, Check: func(r *efsm.Runtime, st *efsm.State) (bool, string) {
		holder := -1
		for _, idx := range r.InstancesOf(def) {
			if stateSet[r.CtlOf(st, idx)] {
				if holder >= 0 {
					return false, fmt.Sprintf("%s and %s both in %v",
						r.Insts[holder].Name(), r.Insts[idx].Name(), states)
				}
				holder = idx
			}
		}
		return true, ""
	}}
}

// SWMR is the single-writer/multiple-reader coherence invariant: whenever
// some instance of cacheDef is in a writer state, no other instance holds a
// valid (writer or reader) copy.
func SWMR(cacheDef *efsm.ProcDef, writerStates, readerStates []string) Invariant {
	writer := map[string]bool{}
	for _, s := range writerStates {
		writer[s] = true
	}
	valid := map[string]bool{}
	for _, s := range append(append([]string{}, writerStates...), readerStates...) {
		valid[s] = true
	}
	return Invariant{Name: "SWMR", Check: func(r *efsm.Runtime, st *efsm.State) (bool, string) {
		writerIdx := -1
		for _, idx := range r.InstancesOf(cacheDef) {
			if writer[r.CtlOf(st, idx)] {
				writerIdx = idx
				break
			}
		}
		if writerIdx < 0 {
			return true, ""
		}
		for _, idx := range r.InstancesOf(cacheDef) {
			if idx == writerIdx {
				continue
			}
			if valid[r.CtlOf(st, idx)] {
				return false, fmt.Sprintf("%s holds write permission (%s) while %s holds a valid copy (%s)",
					r.Insts[writerIdx].Name(), r.CtlOf(st, writerIdx),
					r.Insts[idx].Name(), r.CtlOf(st, idx))
			}
		}
		return true, ""
	}}
}
