package mc

import (
	"strings"
	"testing"

	"transit/internal/efsm"
	"transit/internal/expr"
)

// tokenSystem builds a small mutual-exclusion token protocol: replicated
// clients request a token from a singleton server. Options mutate the
// protocol to exercise the checker's violation classes.
type tokenOpts struct {
	grantWhileBusy bool // grant in Busy too (breaks mutual exclusion)
	dropRelease    bool // server cannot handle Rel (unexpected message)
	overlapGuards  bool // two enabled guards for Req in Free
	noDone         bool // clients never release (deadlock with stalls)
}

func tokenSystem(t *testing.T, o tokenOpts) (*efsm.System, *efsm.ProcDef, *efsm.ProcDef) {
	t.Helper()
	u := expr.NewUniverse(2)
	mt := u.MustDeclareEnum("TokMT", "Req", "Grant", "Rel")

	client := &efsm.ProcDef{
		Name:       "Client",
		States:     u.MustDeclareEnum("ClientState", "Idle", "Waiting", "Holding"),
		Init:       "Idle",
		Replicated: true,
		Triggers:   []string{"Want", "Done"},
	}
	server := &efsm.ProcDef{
		Name:   "Server",
		States: u.MustDeclareEnum("ServerState", "Free", "Busy"),
		Init:   "Free",
		Vars:   []*expr.Var{expr.V("Owner", expr.PIDType)},
	}

	toServ := &efsm.Network{
		Name: "ToServ", Kind: efsm.Unordered, Receiver: server, Route: efsm.RouteStatic,
		Msg: &efsm.MessageType{Name: "ServMsg", Fields: []efsm.Field{
			{Name: "MType", T: expr.EnumOf(mt)},
			{Name: "Sender", T: expr.PIDType},
		}},
	}
	toCli := &efsm.Network{
		Name: "ToCli", Kind: efsm.Ordered, Receiver: client, Route: efsm.RouteByField, DestField: "Dest",
		Msg: &efsm.MessageType{Name: "CliMsg", Fields: []efsm.Field{
			{Name: "MType", T: expr.EnumOf(mt)},
			{Name: "Dest", T: expr.PIDType},
		}},
	}

	self := expr.V(efsm.SelfVar, expr.PIDType)
	sender := expr.V("Msg.Sender", expr.PIDType)
	cliMT := expr.V("Msg.MType", expr.EnumOf(mt))

	client.Transitions = append(client.Transitions,
		&efsm.Transition{
			From: "Idle", Event: efsm.Event{Trigger: "Want"}, To: "Waiting",
			Sends: []efsm.Send{{Net: toServ, MsgVar: "Out", Fields: []efsm.SendField{
				{Field: "MType", Rhs: expr.EnumC(mt, "Req")},
				{Field: "Sender", Rhs: self},
			}}},
		},
		&efsm.Transition{
			From: "Waiting", Event: efsm.Event{Net: toCli, MsgVar: "Msg"},
			Guard: expr.Eq(cliMT, expr.EnumC(mt, "Grant")), To: "Holding",
		},
	)
	if !o.noDone {
		client.Transitions = append(client.Transitions, &efsm.Transition{
			From: "Holding", Event: efsm.Event{Trigger: "Done"}, To: "Idle",
			Sends: []efsm.Send{{Net: toServ, MsgVar: "Out", Fields: []efsm.SendField{
				{Field: "MType", Rhs: expr.EnumC(mt, "Rel")},
				{Field: "Sender", Rhs: self},
			}}},
		})
	}

	servMT := expr.V("Msg.MType", expr.EnumOf(mt))
	grant := func(from string) *efsm.Transition {
		return &efsm.Transition{
			From: from, Event: efsm.Event{Net: toServ, MsgVar: "Msg"},
			Guard:   expr.Eq(servMT, expr.EnumC(mt, "Req")),
			To:      "Busy",
			Updates: []efsm.Update{{Var: "Owner", Rhs: sender}},
			Sends: []efsm.Send{{Net: toCli, MsgVar: "Out", Fields: []efsm.SendField{
				{Field: "MType", Rhs: expr.EnumC(mt, "Grant")},
				{Field: "Dest", Rhs: sender},
			}}},
		}
	}
	server.Transitions = append(server.Transitions, grant("Free"))
	if o.grantWhileBusy {
		server.Transitions = append(server.Transitions, grant("Busy"))
	} else {
		server.Transitions = append(server.Transitions, &efsm.Transition{
			From: "Busy", Event: efsm.Event{Net: toServ, MsgVar: "Msg"},
			Guard: expr.Eq(servMT, expr.EnumC(mt, "Req")),
			Defer: true,
		})
	}
	if !o.dropRelease {
		server.Transitions = append(server.Transitions, &efsm.Transition{
			From: "Busy", Event: efsm.Event{Net: toServ, MsgVar: "Msg"},
			Guard: expr.Eq(servMT, expr.EnumC(mt, "Rel")),
			To:    "Free",
		})
	}
	if o.overlapGuards {
		server.Transitions = append(server.Transitions, &efsm.Transition{
			From: "Free", Event: efsm.Event{Net: toServ, MsgVar: "Msg"},
			To: "Free", // guard nil = true; overlaps with the Req guard
		})
	}

	sys := &efsm.System{
		Name: "token", U: u,
		Networks: []*efsm.Network{toServ, toCli},
		Defs:     []*efsm.ProcDef{server, client},
	}
	return sys, client, server
}

func mustRuntime(t *testing.T, sys *efsm.System) *efsm.Runtime {
	t.Helper()
	r, err := efsm.NewRuntime(sys)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTokenProtocolSafe(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{})
	r := mustRuntime(t, sys)
	res, err := Check(r, []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || !res.Complete {
		t.Fatalf("expected clean check, got violation: %v", res.Violation)
	}
	if res.States < 10 {
		t.Errorf("suspiciously small state space: %d", res.States)
	}
	t.Logf("token protocol: %d states, %d transitions, depth %d", res.States, res.Transitions, res.Depth)
}

func TestMutualExclusionViolation(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{grantWhileBusy: true})
	r := mustRuntime(t, sys)
	res, err := Check(r, []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Violation == nil {
		t.Fatal("expected a violation")
	}
	if res.Violation.Kind != InvariantViolation {
		t.Fatalf("kind = %v", res.Violation.Kind)
	}
	if len(res.Violation.Trace) == 0 {
		t.Fatal("violation lacks a trace")
	}
	// Replay sanity: trace must start at the initial state and end in a
	// state where both clients hold the token.
	last := res.Violation.Trace[len(res.Violation.Trace)-1].State
	if !strings.Contains(last, "Client0{Holding") || !strings.Contains(last, "Client1{Holding") {
		t.Errorf("final trace state does not show double-holding: %s", last)
	}
}

func TestUnexpectedMessage(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{dropRelease: true})
	r := mustRuntime(t, sys)
	res, err := Check(r, []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Violation == nil || res.Violation.Kind != SemanticsProblem {
		t.Fatalf("expected unexpected-message problem, got %+v", res.Violation)
	}
	if !strings.Contains(res.Violation.Detail, "Rel") {
		t.Errorf("detail should mention the Rel message: %s", res.Violation.Detail)
	}
}

func TestNondeterministicGuards(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{overlapGuards: true})
	r := mustRuntime(t, sys)
	res, err := Check(r, []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Violation == nil || res.Violation.Kind != SemanticsProblem {
		t.Fatalf("expected nondeterminism problem, got %+v", res.Violation)
	}
	if !strings.Contains(res.Violation.Name, "nondeterministic") {
		t.Errorf("name = %s", res.Violation.Name)
	}
}

func TestDeadlockDetection(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{noDone: true})
	r := mustRuntime(t, sys)
	res, err := Check(r, []Invariant{AtMostOne(client, "Holding")}, Options{CheckDeadlock: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Violation == nil || res.Violation.Kind != Deadlock {
		t.Fatalf("expected deadlock, got %+v", res.Violation)
	}
}

func TestMaxStatesBudget(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{})
	r := mustRuntime(t, sys)
	_, err := Check(r, []Invariant{AtMostOne(client, "Holding")}, Options{MaxStates: 3})
	if err == nil {
		t.Fatal("expected budget error")
	}
}

func TestMaxDepthIncomplete(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{})
	r := mustRuntime(t, sys)
	res, err := Check(r, []Invariant{AtMostOne(client, "Holding")}, Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("depth-bounded run should pass")
	}
	full, err := Check(r, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.States >= full.States {
		t.Errorf("depth bound should cut exploration: %d vs %d", res.States, full.States)
	}
}

func TestSWMRInvariant(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{grantWhileBusy: true})
	r := mustRuntime(t, sys)
	// Treat Holding as a writer state with no reader states: SWMR reduces
	// to mutual exclusion and must catch the double grant.
	res, err := Check(r, []Invariant{SWMR(client, []string{"Holding"}, nil)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Violation.Kind != InvariantViolation || res.Violation.Name != "SWMR" {
		t.Fatalf("expected SWMR violation, got %+v", res.Violation)
	}
}

func TestRuntimeStateEncodingCanonical(t *testing.T) {
	sys, _, server := tokenSystem(t, tokenOpts{})
	r := mustRuntime(t, sys)
	st := r.Initial()
	// Two pending requests on the unordered network in either insertion
	// order must encode identically.
	u := sys.U
	mt, _ := u.Enum("TokMT")
	req := func(pid int) efsm.Msg {
		return efsm.Msg{expr.EnumValOf(mt, "Req"), expr.PIDVal(pid)}
	}
	a := st.Clone()
	a.Nets[0][0] = []efsm.Msg{req(0), req(1)}
	b := st.Clone()
	b.Nets[0][0] = []efsm.Msg{req(1), req(0)}
	if r.Encode(a) != r.Encode(b) {
		t.Error("unordered network contents should encode canonically")
	}
	_ = server
}

func TestRuntimeCloneIndependence(t *testing.T) {
	sys, _, _ := tokenSystem(t, tokenOpts{})
	r := mustRuntime(t, sys)
	st := r.Initial()
	cl := st.Clone()
	cl.Procs[0].Ctl = 1
	cl.Procs[0].Vars[0] = expr.PIDVal(1)
	if st.Procs[0].Ctl == cl.Procs[0].Ctl || st.Procs[0].Vars[0] == cl.Procs[0].Vars[0] {
		t.Error("Clone aliases original state")
	}
}

func TestOrderedNetworkFIFO(t *testing.T) {
	sys, _, _ := tokenSystem(t, tokenOpts{})
	r := mustRuntime(t, sys)
	u := sys.U
	mt, _ := u.Enum("TokMT")
	st := r.Initial()
	// Put Grant then Rel in client0's ordered queue; only the head (Grant)
	// may be delivered.
	st.Nets[1][0] = []efsm.Msg{
		{expr.EnumValOf(mt, "Grant"), expr.PIDVal(0)},
		{expr.EnumValOf(mt, "Rel"), expr.PIDVal(0)},
	}
	// Move client0 to Waiting so Grant is handled.
	st.Procs[1].Ctl = 1 // instance 0 is the server; 1 is Client0
	acts, probs := r.Actions(st)
	if len(probs) != 0 {
		t.Fatalf("unexpected problems: %v", probs)
	}
	deliveries := 0
	for _, a := range acts {
		if a.Net == 1 {
			deliveries++
			if a.Pos != 0 {
				t.Error("ordered delivery must be from the head")
			}
		}
	}
	if deliveries != 1 {
		t.Errorf("expected exactly 1 delivery action from ordered queue, got %d", deliveries)
	}
}

func TestParallelAssignment(t *testing.T) {
	// A process that swaps two variables in one transition: parallel
	// semantics must read both pre-state values.
	u := expr.NewUniverse(2)
	pd := &efsm.ProcDef{
		Name:   "Swapper",
		States: u.MustDeclareEnum("SwapState", "S"),
		Init:   "S",
		Vars:   []*expr.Var{expr.V("X", expr.IntType), expr.V("Y", expr.IntType)},
		InitVals: expr.Env{
			"X": expr.IntVal(u, 1),
			"Y": expr.IntVal(u, 2),
		},
		Triggers: []string{"Go"},
	}
	pd.Transitions = []*efsm.Transition{{
		From: "S", Event: efsm.Event{Trigger: "Go"}, To: "S",
		Updates: []efsm.Update{
			{Var: "X", Rhs: expr.V("Y", expr.IntType)},
			{Var: "Y", Rhs: expr.V("X", expr.IntType)},
		},
	}}
	sys := &efsm.System{Name: "swap", U: u, Defs: []*efsm.ProcDef{pd}}
	r := mustRuntime(t, sys)
	st := r.Initial()
	acts, _ := r.Actions(st)
	if len(acts) != 1 {
		t.Fatalf("want 1 action, got %d", len(acts))
	}
	next := r.Apply(st, acts[0])
	if r.VarOf(next, 0, "X").Int() != 2 || r.VarOf(next, 0, "Y").Int() != 1 {
		t.Errorf("swap failed: X=%v Y=%v", r.VarOf(next, 0, "X"), r.VarOf(next, 0, "Y"))
	}
}

func TestSystemValidation(t *testing.T) {
	u := expr.NewUniverse(2)
	states := u.MustDeclareEnum("VState", "A")
	good := &efsm.ProcDef{Name: "P", States: states, Init: "A"}
	cases := []struct {
		name string
		sys  *efsm.System
	}{
		{"bad init", &efsm.System{U: u, Defs: []*efsm.ProcDef{{Name: "P", States: states, Init: "Z"}}}},
		{"no universe", &efsm.System{Defs: []*efsm.ProcDef{good}}},
		{"bad route", &efsm.System{U: u, Defs: []*efsm.ProcDef{good},
			Networks: []*efsm.Network{{Name: "N", Receiver: good, Route: efsm.RouteByField, DestField: "Nope",
				Msg: &efsm.MessageType{Name: "M"}}}}},
	}
	for _, c := range cases {
		if err := c.sys.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestTransitionValidation(t *testing.T) {
	u := expr.NewUniverse(2)
	pd := &efsm.ProcDef{
		Name:   "P",
		States: u.MustDeclareEnum("TVState", "A", "B"),
		Init:   "A",
		Vars:   []*expr.Var{expr.V("N", expr.IntType)},
	}
	mk := func(t *efsm.Transition) *efsm.System {
		cp := *pd
		cp.Transitions = []*efsm.Transition{t}
		return &efsm.System{U: u, Defs: []*efsm.ProcDef{&cp}}
	}
	ev := efsm.Event{Trigger: "Go"}
	bad := []*efsm.Transition{
		{From: "Z", Event: ev, To: "A"},                                                                 // unknown source
		{From: "A", Event: ev, To: "Z"},                                                                 // unknown target
		{From: "A", Event: ev, To: "B", Guard: expr.V("N", expr.IntType)},                               // non-bool guard
		{From: "A", Event: ev, To: "B", Updates: []efsm.Update{{Var: "Q", Rhs: expr.True()}}},           // unknown var
		{From: "A", Event: ev, To: "B", Updates: []efsm.Update{{Var: "N", Rhs: expr.True()}}},           // type mismatch
		{From: "A", Event: ev, To: "B", Guard: expr.Eq(expr.V("Other", expr.IntType), expr.IntC(u, 0))}, // out of scope
	}
	for i, tr := range bad {
		if err := mk(tr).Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestViolationString(t *testing.T) {
	v := &Violation{Kind: InvariantViolation, Name: "inv", Detail: "boom",
		Trace: []TraceStep{{State: "s0"}, {Action: "a1", State: "s1"}}}
	s := v.String()
	for _, want := range []string{"invariant violation", "inv", "boom", "s0", "a1", "s1"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation string missing %q:\n%s", want, s)
		}
	}
}

func TestFormatMSC(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{grantWhileBusy: true})
	r := mustRuntime(t, sys)
	res, err := Check(r, []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected violation")
	}
	msc := FormatMSC(r, res.Violation.Actions())
	for _, want := range []string{"Server", "Client0", "Client1", "ToServ", "Grant", "->", "*"} {
		if !strings.Contains(msc, want) {
			t.Errorf("MSC missing %q:\n%s", want, msc)
		}
	}
	t.Logf("message-sequence chart:\n%s", msc)
	// CheckWithMSC agrees with Check and carries the chart.
	r2 := mustRuntime(t, sys)
	res2, chart, err := CheckWithMSC(r2, []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Violation == nil || chart == "" {
		t.Fatal("CheckWithMSC should produce a chart for violations")
	}
}

func TestFormatMSCCleanRunHasNoChart(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{})
	r := mustRuntime(t, sys)
	res, chart, err := CheckWithMSC(r, []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || chart != "" {
		t.Fatalf("clean run: ok=%v chart=%q", res.OK, chart)
	}
}
