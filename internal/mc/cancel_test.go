package mc

import (
	"context"
	"errors"
	"testing"
)

func TestCheckCtxCancelled(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{})
	r := mustRuntime(t, sys)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CheckCtx(ctx, r, []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err == nil {
		t.Fatal("cancelled check must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
	if res == nil {
		t.Fatal("partial result expected even on cancellation")
	}
	if res.Complete {
		t.Error("cancelled search must not claim completeness")
	}
}

func TestCheckCtxBackgroundMatchesCheck(t *testing.T) {
	sys, client, _ := tokenSystem(t, tokenOpts{})
	r1 := mustRuntime(t, sys)
	plain, err := Check(r1, []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2 := mustRuntime(t, sys)
	ctxed, err := CheckCtx(context.Background(), r2, []Invariant{AtMostOne(client, "Holding")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.States != ctxed.States || plain.Transitions != ctxed.Transitions || plain.OK != ctxed.OK {
		t.Errorf("Check and CheckCtx disagree: %+v vs %+v", plain, ctxed)
	}
}
