package lang

import (
	"transit/internal/expr"
)

// ExprScope configures standalone expression elaboration (used by the
// transit-infer CLI and tests): a universe, the free variables with their
// types, and the enum types whose literals may appear.
type ExprScope struct {
	U     *expr.Universe
	Vars  map[string]expr.Type
	Enums []*expr.EnumType
}

// ParseExprString parses a single expression in TRANSIT surface syntax.
func ParseExprString(src string) (ExprNode, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, errf(p.cur().pos, "trailing input after expression")
	}
	return e, nil
}

// ElabExpr resolves and type-checks a parsed expression against a bare
// variable scope (no message fields, no primed targets).
func ElabExpr(node ExprNode, sc ExprScope) (expr.Expr, error) {
	b := &builder{
		u:        sc.U,
		enums:    map[string]*expr.EnumType{},
		literals: map[string][]*expr.EnumType{},
	}
	for _, e := range sc.Enums {
		b.enums[e.Name] = e
		for _, v := range e.Values {
			b.literals[v] = append(b.literals[v], e)
		}
	}
	vars := make(map[string]expr.Type, len(sc.Vars))
	for k, v := range sc.Vars {
		vars[k] = v
	}
	return b.elab(node, &scope{vars: vars, primed: map[string]expr.Type{}}, false)
}

// ParseAndElabExpr is ParseExprString followed by ElabExpr.
func ParseAndElabExpr(src string, sc ExprScope) (expr.Expr, error) {
	node, err := ParseExprString(src)
	if err != nil {
		return nil, err
	}
	return ElabExpr(node, sc)
}
