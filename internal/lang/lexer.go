package lang

import (
	"strings"
	"unicode"
)

// lexer tokenizes TRANSIT source. Comments run from // to end of line.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.off]
	lx.off++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b))
}

func isIdentPart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b))
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	b := lx.peekByte()
	switch {
	case isIdentStart(b):
		var sb strings.Builder
		for lx.off < len(lx.src) && isIdentPart(lx.peekByte()) {
			sb.WriteByte(lx.advance())
		}
		return token{kind: tokIdent, text: sb.String(), pos: pos}, nil
	case unicode.IsDigit(rune(b)):
		var sb strings.Builder
		for lx.off < len(lx.src) && unicode.IsDigit(rune(lx.peekByte())) {
			sb.WriteByte(lx.advance())
		}
		return token{kind: tokInt, text: sb.String(), pos: pos}, nil
	}
	lx.advance()
	two := func(second byte, yes, no tokKind) token {
		if lx.peekByte() == second {
			lx.advance()
			return token{kind: yes, pos: pos}
		}
		return token{kind: no, pos: pos}
	}
	switch b {
	case '(':
		return token{kind: tokLParen, pos: pos}, nil
	case ')':
		return token{kind: tokRParen, pos: pos}, nil
	case '{':
		return token{kind: tokLBrace, pos: pos}, nil
	case '}':
		return token{kind: tokRBrace, pos: pos}, nil
	case '[':
		return token{kind: tokLBracket, pos: pos}, nil
	case ']':
		return token{kind: tokRBracket, pos: pos}, nil
	case ',':
		return token{kind: tokComma, pos: pos}, nil
	case ';':
		return token{kind: tokSemi, pos: pos}, nil
	case ':':
		return token{kind: tokColon, pos: pos}, nil
	case '.':
		return token{kind: tokDot, pos: pos}, nil
	case '\'':
		return token{kind: tokPrime, pos: pos}, nil
	case '+':
		return token{kind: tokPlus, pos: pos}, nil
	case '-':
		return token{kind: tokMinus, pos: pos}, nil
	case '&':
		return token{kind: tokAnd, pos: pos}, nil
	case '|':
		return token{kind: tokOr, pos: pos}, nil
	case '!':
		return two('=', tokNeq, tokNot), nil
	case '<':
		return two('=', tokLe, tokLt), nil
	case '>':
		return two('=', tokGe, tokGt), nil
	case '=':
		// =, =>, ==>
		if lx.peekByte() == '>' {
			lx.advance()
			return token{kind: tokArrow, pos: pos}, nil
		}
		if lx.peekByte() == '=' {
			lx.advance()
			if lx.peekByte() == '>' {
				lx.advance()
				return token{kind: tokImply, pos: pos}, nil
			}
			return token{}, errf(pos, "unexpected '==' (use = for equality, ==> for cases)")
		}
		return token{kind: tokEq, pos: pos}, nil
	}
	return token{}, errf(pos, "unexpected character %q", string(b))
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
