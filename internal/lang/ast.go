package lang

// The abstract syntax tree produced by the parser; names are unresolved
// until Build elaborates them against the declared skeleton.

// File is a parsed TRANSIT program.
type File struct {
	Name       string
	Enums      []*EnumDecl
	Messages   []*MessageDecl
	Networks   []*NetworkDecl
	Processes  []*ProcessDecl
	Invariants []*InvariantDecl
}

// EnumDecl declares an enumerated type.
type EnumDecl struct {
	Pos    Pos
	Name   string
	Values []string
}

// FieldDecl is one typed message field.
type FieldDecl struct {
	Pos  Pos
	Name string
	Type TypeRef
}

// TypeRef names a type (Bool, Int, PID, Set, or an enum).
type TypeRef struct {
	Pos  Pos
	Name string
}

// MessageDecl declares a message struct type.
type MessageDecl struct {
	Pos    Pos
	Name   string
	Fields []*FieldDecl
}

// NetworkDecl declares a channel.
type NetworkDecl struct {
	Pos      Pos
	Name     string
	Ordered  bool
	MsgType  string
	Receiver string
	// ByField names the PID routing field; empty for static routes.
	ByField string
}

// ProcessDecl declares an EFSM skeleton and its transitions.
type ProcessDecl struct {
	Pos         Pos
	Name        string
	Replicated  bool
	States      []string
	Init        string
	Vars        []*FieldDecl
	Triggers    []string
	Transitions []*TransitionDecl
}

// EventDecl is a transition trigger: either "Net Var" or a bare trigger
// name.
type EventDecl struct {
	Pos Pos
	// Net is empty for external triggers.
	Net    string
	MsgVar string
	// Trigger is the trigger name when Net is empty.
	Trigger string
}

// SendDecl is one declared output event.
type SendDecl struct {
	Pos    Pos
	Net    string
	MsgVar string
	// Target is the multicast destination-set expression (nil for
	// unicast).
	Target ExprNode
}

// CaseDecl is a `[pre] ==> { posts }` group.
type CaseDecl struct {
	Pos   Pos
	Pre   ExprNode // nil for []
	Posts []ExprNode
}

// TransitionDecl is one snippet.
type TransitionDecl struct {
	Pos   Pos
	From  string
	Event EventDecl
	// Guard is nil when the guard should be inferred.
	Guard ExprNode
	// Stall marks a `stall;` rule (no target, no body).
	Stall bool
	To    string
	Sends []*SendDecl
	Cases []*CaseDecl
}

// InvariantDecl is a built-in invariant form.
type InvariantDecl struct {
	Pos  Pos
	Kind string // "atmostone" or "swmr"
	Proc string
	// States used by atmostone.
	States []string
	// Writers/Readers used by swmr.
	Writers []string
	Readers []string
}

// ExprNode is an unresolved expression.
type ExprNode interface{ Position() Pos }

// IdentExpr is a possibly dotted, possibly primed name: X, Msg.Field,
// Sharers'.
type IdentExpr struct {
	Pos    Pos
	Parts  []string // 1 or 2 components
	Primed bool
}

// IntExpr is an integer literal.
type IntExpr struct {
	Pos Pos
	Val int64
}

// SetExpr is a set literal {e1, ..., ek} of PID-typed elements.
type SetExpr struct {
	Pos   Pos
	Elems []ExprNode
}

// CallExpr is f(args...).
type CallExpr struct {
	Pos  Pos
	Name string
	Args []ExprNode
}

// BinExpr is a binary operation.
type BinExpr struct {
	Pos  Pos
	Op   tokKind
	L, R ExprNode
}

// UnExpr is unary negation (!).
type UnExpr struct {
	Pos Pos
	Op  tokKind
	E   ExprNode
}

func (e *IdentExpr) Position() Pos { return e.Pos }
func (e *IntExpr) Position() Pos   { return e.Pos }
func (e *SetExpr) Position() Pos   { return e.Pos }
func (e *CallExpr) Position() Pos  { return e.Pos }
func (e *BinExpr) Position() Pos   { return e.Pos }
func (e *UnExpr) Position() Pos    { return e.Pos }
