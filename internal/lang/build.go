package lang

import (
	"fmt"
	"regexp"
	"strings"

	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
)

// Protocol is a fully elaborated TRANSIT program: the skeleton, the
// synthesis vocabulary, the snippet set, and the declared invariants.
// Feed Snippets through core.Complete over Sys, then model check.
type Protocol struct {
	Name       string
	Sys        *efsm.System
	Vocab      *expr.Vocabulary
	Snippets   []*efsm.Snippet
	Invariants []mc.Invariant
}

// Build parses and elaborates a TRANSIT program for a given cache count.
func Build(src string, numCaches int) (*Protocol, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return BuildFile(f, numCaches)
}

// BuildFile elaborates a parsed program.
func BuildFile(f *File, numCaches int) (*Protocol, error) {
	b := &builder{file: f}
	return b.build(numCaches)
}

type builder struct {
	file     *File
	u        *expr.Universe
	enums    map[string]*expr.EnumType // user enums by name
	literals map[string][]*expr.EnumType
	msgs     map[string]*efsm.MessageType
	procs    map[string]*efsm.ProcDef
	nets     map[string]*efsm.Network
	sys      *efsm.System
}

var pidLitRe = regexp.MustCompile(`^C([0-9]+)$`)

func (b *builder) build(numCaches int) (*Protocol, error) {
	u, err := expr.NewUniverseWidth(numCaches, expr.DefaultIntWidth)
	if err != nil {
		return nil, err
	}
	b.u = u
	b.enums = map[string]*expr.EnumType{}
	b.literals = map[string][]*expr.EnumType{}
	b.msgs = map[string]*efsm.MessageType{}
	b.procs = map[string]*efsm.ProcDef{}
	b.nets = map[string]*efsm.Network{}

	for _, d := range b.file.Enums {
		e, err := u.DeclareEnum(d.Name, d.Values...)
		if err != nil {
			return nil, errf(d.Pos, "%v", err)
		}
		b.enums[d.Name] = e
		for _, v := range d.Values {
			b.literals[v] = append(b.literals[v], e)
		}
	}
	for _, d := range b.file.Messages {
		if _, dup := b.msgs[d.Name]; dup {
			return nil, errf(d.Pos, "duplicate message type %s", d.Name)
		}
		mt := &efsm.MessageType{Name: d.Name}
		for _, fd := range d.Fields {
			t, err := b.typeOf(fd.Type)
			if err != nil {
				return nil, err
			}
			mt.Fields = append(mt.Fields, efsm.Field{Name: fd.Name, T: t})
		}
		b.msgs[d.Name] = mt
	}
	for _, d := range b.file.Processes {
		if _, dup := b.procs[d.Name]; dup {
			return nil, errf(d.Pos, "duplicate process %s", d.Name)
		}
		if len(d.States) == 0 {
			return nil, errf(d.Pos, "process %s declares no states", d.Name)
		}
		states, err := u.DeclareEnum(d.Name+"$State", d.States...)
		if err != nil {
			return nil, errf(d.Pos, "%v", err)
		}
		pd := &efsm.ProcDef{
			Name: d.Name, States: states, Init: d.Init,
			Replicated: d.Replicated, Triggers: d.Triggers,
		}
		for _, vd := range d.Vars {
			t, err := b.typeOf(vd.Type)
			if err != nil {
				return nil, err
			}
			pd.Vars = append(pd.Vars, expr.V(vd.Name, t))
		}
		b.procs[d.Name] = pd
	}
	var networks []*efsm.Network
	for _, d := range b.file.Networks {
		mt, ok := b.msgs[d.MsgType]
		if !ok {
			return nil, errf(d.Pos, "network %s carries unknown message type %s", d.Name, d.MsgType)
		}
		recv, ok := b.procs[d.Receiver]
		if !ok {
			return nil, errf(d.Pos, "network %s delivers to unknown process %s", d.Name, d.Receiver)
		}
		kind := efsm.Unordered
		if d.Ordered {
			kind = efsm.Ordered
		}
		net := &efsm.Network{Name: d.Name, Kind: kind, Msg: mt, Receiver: recv}
		if d.ByField != "" {
			net.Route = efsm.RouteByField
			net.DestField = d.ByField
		}
		if _, dup := b.nets[d.Name]; dup {
			return nil, errf(d.Pos, "duplicate network %s", d.Name)
		}
		b.nets[d.Name] = net
		networks = append(networks, net)
	}

	var defs []*efsm.ProcDef
	for _, d := range b.file.Processes {
		defs = append(defs, b.procs[d.Name])
	}
	b.sys = &efsm.System{Name: b.file.Name, U: u, Networks: networks, Defs: defs}

	var snippets []*efsm.Snippet
	for _, pd := range b.file.Processes {
		for i, td := range pd.Transitions {
			sn, err := b.transition(pd, td, i)
			if err != nil {
				return nil, err
			}
			snippets = append(snippets, sn)
		}
	}

	var invs []mc.Invariant
	for _, d := range b.file.Invariants {
		inv, err := b.invariant(d)
		if err != nil {
			return nil, err
		}
		invs = append(invs, inv)
	}

	var userEnums []*expr.EnumType
	for _, d := range b.file.Enums {
		userEnums = append(userEnums, b.enums[d.Name])
	}
	vocab := expr.CoherenceVocabulary(u, expr.CoherenceOptions{
		Enums:             userEnums,
		WithEnumConstants: true,
		WithSetLiterals:   true,
		WithoutEnumIte:    true,
	})

	proto := &Protocol{Name: b.file.Name, Sys: b.sys, Vocab: vocab,
		Snippets: snippets, Invariants: invs}
	// Per-snippet validation happens in core.Complete; validate the
	// skeleton structure here.
	if err := b.sys.Validate(); err != nil {
		return nil, err
	}
	return proto, nil
}

func (b *builder) typeOf(ref TypeRef) (expr.Type, error) {
	switch ref.Name {
	case "Bool":
		return expr.BoolType, nil
	case "Int":
		return expr.IntType, nil
	case "PID":
		return expr.PIDType, nil
	case "Set":
		return expr.SetType, nil
	}
	if e, ok := b.enums[ref.Name]; ok {
		return expr.EnumOf(e), nil
	}
	return expr.Type{}, errf(ref.Pos, "unknown type %s", ref.Name)
}

// scope is the typing environment for one transition's expressions.
type scope struct {
	// vars maps readable names (process vars, Self, in-message fields) to
	// types.
	vars map[string]expr.Type
	// primed maps primed-target names (process vars and out-message
	// fields) to types.
	primed map[string]expr.Type
	// primedSeen collects the primed targets referenced by the current
	// post.
	primedSeen map[string]bool
}

func (b *builder) transition(pd *ProcessDecl, td *TransitionDecl, idx int) (*efsm.Snippet, error) {
	proc := b.procs[pd.Name]
	sn := &efsm.Snippet{
		Label:   fmt.Sprintf("%s#%d(%s)", pd.Name, idx, td.From),
		Process: pd.Name,
		From:    td.From,
		To:      td.To,
		Defer:   td.Stall,
	}
	// Event.
	if td.Event.Net != "" {
		net, ok := b.nets[td.Event.Net]
		if !ok {
			return nil, errf(td.Event.Pos, "unknown network %s", td.Event.Net)
		}
		sn.Event = efsm.Event{Net: net, MsgVar: td.Event.MsgVar}
	} else {
		found := false
		for _, trig := range proc.Triggers {
			if trig == td.Event.Trigger {
				found = true
				break
			}
		}
		if !found {
			return nil, errf(td.Event.Pos, "process %s declares no trigger %s", pd.Name, td.Event.Trigger)
		}
		sn.Event = efsm.Event{Trigger: td.Event.Trigger}
	}

	sc := &scope{vars: map[string]expr.Type{}, primed: map[string]expr.Type{}}
	for _, v := range proc.Vars {
		sc.vars[v.Name] = v.VT
		sc.primed[v.Name] = v.VT
	}
	sc.vars[efsm.SelfVar] = expr.PIDType
	if sn.Event.Net != nil {
		for _, f := range sn.Event.Net.Msg.Fields {
			sc.vars[sn.Event.MsgVar+"."+f.Name] = f.T
		}
	}

	// Sends.
	for _, sd := range td.Sends {
		net, ok := b.nets[sd.Net]
		if !ok {
			return nil, errf(sd.Pos, "unknown network %s", sd.Net)
		}
		spec := efsm.SendSpec{Net: net, MsgVar: sd.MsgVar}
		if sd.Target != nil {
			tgt, err := b.elab(sd.Target, sc, false)
			if err != nil {
				return nil, err
			}
			if tgt.Type() != expr.SetType {
				return nil, errf(sd.Target.Position(), "multicast target must be Set-typed, got %s", tgt.Type())
			}
			spec.TargetSet = tgt
		}
		for _, f := range net.Msg.Fields {
			if sd.Target != nil && f.Name == net.DestField {
				continue
			}
			sc.primed[sd.MsgVar+"."+f.Name] = f.T
		}
		sn.Sends = append(sn.Sends, spec)
	}

	// Guard.
	if td.Guard != nil {
		g, err := b.elab(td.Guard, sc, false)
		if err != nil {
			return nil, err
		}
		if g.Type() != expr.BoolType {
			return nil, errf(td.Guard.Position(), "guard must be Boolean, got %s", g.Type())
		}
		sn.Guard = g
	}

	// Cases.
	for _, cd := range td.Cases {
		c := efsm.SnippetCase{}
		if cd.Pre != nil {
			pre, err := b.elab(cd.Pre, sc, false)
			if err != nil {
				return nil, err
			}
			if pre.Type() != expr.BoolType {
				return nil, errf(cd.Pre.Position(), "precondition must be Boolean, got %s", pre.Type())
			}
			c.Pre = pre
		}
		for _, pn := range cd.Posts {
			sc.primedSeen = map[string]bool{}
			post, err := b.elab(pn, sc, true)
			if err != nil {
				return nil, err
			}
			if post.Type() != expr.BoolType {
				return nil, errf(pn.Position(), "post-condition must be Boolean, got %s", post.Type())
			}
			if len(sc.primedSeen) != 1 {
				return nil, errf(pn.Position(),
					"a post-condition must constrain exactly one primed variable, found %d", len(sc.primedSeen))
			}
			var target string
			for t := range sc.primedSeen {
				target = t
			}
			c.Posts = append(c.Posts, efsm.Post{Target: target, Constraint: post})
		}
		sn.Cases = append(sn.Cases, c)
	}
	return sn, nil
}

func (b *builder) invariant(d *InvariantDecl) (mc.Invariant, error) {
	proc, ok := b.procs[d.Proc]
	if !ok {
		return mc.Invariant{}, errf(d.Pos, "invariant names unknown process %s", d.Proc)
	}
	checkStates := func(states []string) error {
		for _, s := range states {
			if proc.States.Ord(s) < 0 {
				return errf(d.Pos, "invariant names unknown state %s of %s", s, d.Proc)
			}
		}
		return nil
	}
	switch d.Kind {
	case "atmostone":
		if err := checkStates(d.States); err != nil {
			return mc.Invariant{}, err
		}
		return mc.AtMostOne(proc, d.States...), nil
	case "swmr":
		if err := checkStates(d.Writers); err != nil {
			return mc.Invariant{}, err
		}
		if err := checkStates(d.Readers); err != nil {
			return mc.Invariant{}, err
		}
		return mc.SWMR(proc, d.Writers, d.Readers), nil
	}
	return mc.Invariant{}, errf(d.Pos, "unknown invariant form %s", d.Kind)
}

// elab resolves and type-checks an expression. allowPrimed permits primed
// identifiers (post-conditions only).
func (b *builder) elab(n ExprNode, sc *scope, allowPrimed bool) (expr.Expr, error) {
	switch e := n.(type) {
	case *IntExpr:
		return expr.IntC(b.u, e.Val), nil
	case *IdentExpr:
		return b.elabIdent(e, sc, allowPrimed)
	case *SetExpr:
		out := expr.Expr(expr.NewConst(expr.SetVal(0)))
		for _, el := range e.Elems {
			pe, err := b.elab(el, sc, false)
			if err != nil {
				return nil, err
			}
			if pe.Type() != expr.PIDType {
				return nil, errf(el.Position(), "set literal element must be PID, got %s", pe.Type())
			}
			out = expr.SetAdd(out, pe)
		}
		return out, nil
	case *UnExpr:
		inner, err := b.elab(e.E, sc, allowPrimed)
		if err != nil {
			return nil, err
		}
		if inner.Type() != expr.BoolType {
			return nil, errf(e.Pos, "! applies to Bool, got %s", inner.Type())
		}
		return expr.Not(inner), nil
	case *BinExpr:
		return b.elabBin(e, sc, allowPrimed)
	case *CallExpr:
		return b.elabCall(e, sc, allowPrimed)
	}
	return nil, errf(n.Position(), "unsupported expression")
}

func (b *builder) elabIdent(e *IdentExpr, sc *scope, allowPrimed bool) (expr.Expr, error) {
	name := strings.Join(e.Parts, ".")
	if e.Primed {
		if !allowPrimed {
			return nil, errf(e.Pos, "primed variable %s' outside a post-condition", name)
		}
		t, ok := sc.primed[name]
		if !ok {
			return nil, errf(e.Pos, "%s is not an assignable variable or output field", name)
		}
		sc.primedSeen[name] = true
		return expr.V(efsm.Prime(name), t), nil
	}
	if t, ok := sc.vars[name]; ok {
		return expr.V(name, t), nil
	}
	if len(e.Parts) == 2 {
		return nil, errf(e.Pos, "unknown message field %s", name)
	}
	// Enum literal?
	if es := b.literals[name]; len(es) == 1 {
		return expr.EnumC(es[0], name), nil
	} else if len(es) > 1 {
		return nil, errf(e.Pos, "enum literal %s is ambiguous across %d enums", name, len(es))
	}
	// Builtin constants.
	switch name {
	case "true":
		return expr.True(), nil
	case "false":
		return expr.False(), nil
	}
	// Concrete PID literal C<k>.
	if m := pidLitRe.FindStringSubmatch(name); m != nil {
		var k int
		fmt.Sscanf(m[1], "%d", &k)
		if k >= b.u.NumCaches() {
			return nil, errf(e.Pos, "PID literal %s out of range for %d caches", name, b.u.NumCaches())
		}
		return expr.PIDC(k), nil
	}
	return nil, errf(e.Pos, "unknown identifier %s", name)
}

func (b *builder) elabBin(e *BinExpr, sc *scope, allowPrimed bool) (expr.Expr, error) {
	l, err := b.elab(e.L, sc, allowPrimed)
	if err != nil {
		return nil, err
	}
	r, err := b.elab(e.R, sc, allowPrimed)
	if err != nil {
		return nil, err
	}
	needInt := func() error {
		if l.Type() != expr.IntType || r.Type() != expr.IntType {
			return errf(e.Pos, "operator %s needs Int operands, got %s and %s", e.Op, l.Type(), r.Type())
		}
		return nil
	}
	switch e.Op {
	case tokEq, tokNeq:
		if l.Type() != r.Type() {
			return nil, errf(e.Pos, "comparison of mismatched types %s and %s", l.Type(), r.Type())
		}
		if e.Op == tokEq {
			return expr.Eq(l, r), nil
		}
		return expr.Neq(l, r), nil
	case tokAnd, tokOr:
		if l.Type() != expr.BoolType || r.Type() != expr.BoolType {
			return nil, errf(e.Pos, "operator %s needs Bool operands, got %s and %s", e.Op, l.Type(), r.Type())
		}
		if e.Op == tokAnd {
			return expr.And(l, r), nil
		}
		return expr.Or(l, r), nil
	case tokLt, tokLe, tokGt, tokGe:
		if err := needInt(); err != nil {
			return nil, err
		}
		switch e.Op {
		case tokLt:
			return expr.Lt(l, r), nil
		case tokLe:
			return expr.Le(l, r), nil
		case tokGt:
			return expr.Gt(l, r), nil
		default:
			return expr.Ge(l, r), nil
		}
	case tokPlus, tokMinus:
		if err := needInt(); err != nil {
			return nil, err
		}
		if e.Op == tokPlus {
			return expr.Add(l, r), nil
		}
		return expr.Sub(l, r), nil
	}
	return nil, errf(e.Pos, "unsupported operator %s", e.Op)
}

// builtin call signatures; T stands for "any type, both args equal".
var callSigs = map[string][]string{
	"add": {"Int", "Int"}, "sub": {"Int", "Int"},
	"inc": {"Int"}, "dec": {"Int"},
	"setadd": {"Set", "PID"}, "setsize": {"Set"},
	"setunion": {"Set", "Set"}, "setinter": {"Set", "Set"},
	"setminus": {"Set", "Set"}, "setof": {"PID"},
	"setcontains": {"Set", "PID"}, "subseteq": {"Set", "Set"},
	"iszero": {"Int"}, "ge": {"Int", "Int"}, "gt": {"Int", "Int"},
	"and": {"Bool", "Bool"}, "or": {"Bool", "Bool"}, "not": {"Bool"},
	"equals": {"T", "T"}, "ite": {"Bool", "T", "T"},
	"numcaches": {},
}

func (b *builder) elabCall(e *CallExpr, sc *scope, allowPrimed bool) (expr.Expr, error) {
	sig, ok := callSigs[e.Name]
	if !ok {
		return nil, errf(e.Pos, "unknown function %s", e.Name)
	}
	if len(e.Args) != len(sig) {
		return nil, errf(e.Pos, "%s expects %d arguments, got %d", e.Name, len(sig), len(e.Args))
	}
	args := make([]expr.Expr, len(e.Args))
	for i, a := range e.Args {
		ea, err := b.elab(a, sc, allowPrimed)
		if err != nil {
			return nil, err
		}
		args[i] = ea
	}
	check := func(i int, want expr.Type) error {
		if args[i].Type() != want {
			return errf(e.Args[i].Position(), "%s argument %d must be %s, got %s",
				e.Name, i+1, want, args[i].Type())
		}
		return nil
	}
	for i, s := range sig {
		var want expr.Type
		switch s {
		case "Int":
			want = expr.IntType
		case "Set":
			want = expr.SetType
		case "PID":
			want = expr.PIDType
		case "Bool":
			want = expr.BoolType
		case "T":
			continue
		}
		if s != "T" {
			if err := check(i, want); err != nil {
				return nil, err
			}
		}
	}
	switch e.Name {
	case "add":
		return expr.Add(args[0], args[1]), nil
	case "sub":
		return expr.Sub(args[0], args[1]), nil
	case "inc":
		return expr.Inc(args[0]), nil
	case "dec":
		return expr.Dec(args[0]), nil
	case "setadd":
		return expr.SetAdd(args[0], args[1]), nil
	case "setsize":
		return expr.Card(args[0]), nil
	case "setunion":
		return expr.SetUnion(args[0], args[1]), nil
	case "setinter":
		return expr.SetInter(args[0], args[1]), nil
	case "setminus":
		return expr.SetMinus(args[0], args[1]), nil
	case "setof":
		return expr.Singleton(args[0]), nil
	case "setcontains":
		return expr.SetContains(args[0], args[1]), nil
	case "subseteq":
		return expr.SubsetEq(args[0], args[1]), nil
	case "iszero":
		return expr.IsZero(args[0]), nil
	case "ge":
		return expr.Ge(args[0], args[1]), nil
	case "gt":
		return expr.Gt(args[0], args[1]), nil
	case "and":
		return expr.And(args[0], args[1]), nil
	case "or":
		return expr.Or(args[0], args[1]), nil
	case "not":
		return expr.Not(args[0]), nil
	case "numcaches":
		return expr.NumCaches(), nil
	case "equals":
		if args[0].Type() != args[1].Type() {
			return nil, errf(e.Pos, "equals on mismatched types %s and %s", args[0].Type(), args[1].Type())
		}
		return expr.Eq(args[0], args[1]), nil
	case "ite":
		if args[1].Type() != args[2].Type() {
			return nil, errf(e.Pos, "ite branches have mismatched types %s and %s", args[1].Type(), args[2].Type())
		}
		return expr.Ite(args[0], args[1], args[2]), nil
	}
	return nil, errf(e.Pos, "unhandled builtin %s", e.Name)
}
