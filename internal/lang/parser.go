package lang

import "strconv"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

// Parse parses a TRANSIT program into its AST.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) bump() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) accept(k tokKind) bool {
	if p.at(k) {
		p.bump()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind) (token, error) {
	if !p.at(k) {
		return token{}, errf(p.cur().pos, "expected %s, found %s", k, p.describe(p.cur()))
	}
	return p.bump(), nil
}

func (p *parser) describe(t token) string {
	if t.kind == tokIdent || t.kind == tokInt {
		return "'" + t.text + "'"
	}
	return t.kind.String()
}

// keyword expects a specific identifier.
func (p *parser) keyword(word string) error {
	t, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if t.text != word {
		return errf(t.pos, "expected '%s', found '%s'", word, t.text)
	}
	return nil
}

func (p *parser) atKeyword(word string) bool {
	return p.at(tokIdent) && p.cur().text == word
}

func (p *parser) ident() (string, Pos, error) {
	t, err := p.expect(tokIdent)
	return t.text, t.pos, err
}

// identList parses IDENT ("," IDENT)*.
func (p *parser) identList() ([]string, error) {
	var out []string
	for {
		name, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, name)
		if !p.accept(tokComma) {
			return out, nil
		}
	}
}

// bracedIdentList parses "{" identList "}".
func (p *parser) bracedIdentList() ([]string, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	list, err := p.identList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return list, nil
}

func (p *parser) file() (*File, error) {
	f := &File{}
	if err := p.keyword("protocol"); err != nil {
		return nil, err
	}
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	f.Name = name
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	for !p.at(tokEOF) {
		t := p.cur()
		if t.kind != tokIdent {
			return nil, errf(t.pos, "expected a declaration, found %s", p.describe(t))
		}
		switch t.text {
		case "enum":
			d, err := p.enumDecl()
			if err != nil {
				return nil, err
			}
			f.Enums = append(f.Enums, d)
		case "message":
			d, err := p.messageDecl()
			if err != nil {
				return nil, err
			}
			f.Messages = append(f.Messages, d)
		case "network":
			d, err := p.networkDecl()
			if err != nil {
				return nil, err
			}
			f.Networks = append(f.Networks, d)
		case "process":
			d, err := p.processDecl()
			if err != nil {
				return nil, err
			}
			f.Processes = append(f.Processes, d)
		case "invariant":
			d, err := p.invariantDecl()
			if err != nil {
				return nil, err
			}
			f.Invariants = append(f.Invariants, d)
		default:
			return nil, errf(t.pos, "unknown declaration '%s'", t.text)
		}
	}
	return f, nil
}

func (p *parser) enumDecl() (*EnumDecl, error) {
	pos := p.bump().pos // enum
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	values, err := p.bracedIdentList()
	if err != nil {
		return nil, err
	}
	return &EnumDecl{Pos: pos, Name: name, Values: values}, nil
}

func (p *parser) fieldDecl() (*FieldDecl, error) {
	name, pos, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	tname, tpos, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &FieldDecl{Pos: pos, Name: name, Type: TypeRef{Pos: tpos, Name: tname}}, nil
}

func (p *parser) messageDecl() (*MessageDecl, error) {
	pos := p.bump().pos // message
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	d := &MessageDecl{Pos: pos, Name: name}
	for !p.at(tokRBrace) {
		f, err := p.fieldDecl()
		if err != nil {
			return nil, err
		}
		d.Fields = append(d.Fields, f)
		if !p.accept(tokSemi) {
			break
		}
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) networkDecl() (*NetworkDecl, error) {
	pos := p.bump().pos // network
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	kind, kpos, err := p.ident()
	if err != nil {
		return nil, err
	}
	if kind != "ordered" && kind != "unordered" {
		return nil, errf(kpos, "network kind must be 'ordered' or 'unordered', found '%s'", kind)
	}
	msg, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("to"); err != nil {
		return nil, err
	}
	recv, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &NetworkDecl{Pos: pos, Name: name, Ordered: kind == "ordered", MsgType: msg, Receiver: recv}
	if p.atKeyword("by") {
		p.bump()
		field, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		d.ByField = field
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) processDecl() (*ProcessDecl, error) {
	pos := p.bump().pos // process
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &ProcessDecl{Pos: pos, Name: name}
	if p.atKeyword("replicated") {
		p.bump()
		d.Replicated = true
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for !p.at(tokRBrace) {
		t := p.cur()
		if t.kind != tokIdent {
			return nil, errf(t.pos, "expected a process item, found %s", p.describe(t))
		}
		switch t.text {
		case "states":
			p.bump()
			states, err := p.bracedIdentList()
			if err != nil {
				return nil, err
			}
			d.States = states
			if err := p.keyword("init"); err != nil {
				return nil, err
			}
			init, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			d.Init = init
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		case "var":
			p.bump()
			f, err := p.fieldDecl()
			if err != nil {
				return nil, err
			}
			d.Vars = append(d.Vars, f)
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		case "triggers":
			p.bump()
			trigs, err := p.bracedIdentList()
			if err != nil {
				return nil, err
			}
			d.Triggers = append(d.Triggers, trigs...)
			p.accept(tokSemi)
		case "transition":
			tr, err := p.transitionDecl()
			if err != nil {
				return nil, err
			}
			d.Transitions = append(d.Transitions, tr)
		default:
			return nil, errf(t.pos, "unknown process item '%s'", t.text)
		}
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) transitionDecl() (*TransitionDecl, error) {
	pos := p.bump().pos // transition
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	from, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	first, fpos, err := p.ident()
	if err != nil {
		return nil, err
	}
	ev := EventDecl{Pos: fpos}
	if p.at(tokIdent) {
		// "Net Var" message event.
		msgVar, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		ev.Net, ev.MsgVar = first, msgVar
	} else {
		ev.Trigger = first
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	tr := &TransitionDecl{Pos: pos, From: from, Event: ev}

	// Optional symbolic guard: [expr] or [] (infer).
	if p.accept(tokLBracket) {
		if !p.at(tokRBracket) {
			g, err := p.expr()
			if err != nil {
				return nil, err
			}
			tr.Guard = g
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	}

	// stall; or => target body.
	if p.atKeyword("stall") {
		p.bump()
		tr.Stall = true
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return tr, nil
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	to, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	tr.To = to
	for p.accept(tokComma) {
		net, npos, err := p.ident()
		if err != nil {
			return nil, err
		}
		msgVar, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		snd := &SendDecl{Pos: npos, Net: net, MsgVar: msgVar}
		if p.atKeyword("to") {
			p.bump()
			target, err := p.expr()
			if err != nil {
				return nil, err
			}
			snd.Target = target
		}
		tr.Sends = append(tr.Sends, snd)
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}

	// Optional body of cases.
	if p.accept(tokLBrace) {
		for !p.at(tokRBrace) {
			c, err := p.caseDecl()
			if err != nil {
				return nil, err
			}
			tr.Cases = append(tr.Cases, c)
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
	} else {
		p.accept(tokSemi)
	}
	return tr, nil
}

func (p *parser) caseDecl() (*CaseDecl, error) {
	t, err := p.expect(tokLBracket)
	if err != nil {
		return nil, err
	}
	c := &CaseDecl{Pos: t.pos}
	if !p.at(tokRBracket) {
		pre, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Pre = pre
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokImply); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for !p.at(tokRBrace) {
		post, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Posts = append(c.Posts, post)
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) invariantDecl() (*InvariantDecl, error) {
	pos := p.bump().pos // invariant
	kind, kpos, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &InvariantDecl{Pos: pos, Kind: kind}
	switch kind {
	case "atmostone":
		proc, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		d.Proc = proc
		if err := p.keyword("in"); err != nil {
			return nil, err
		}
		states, err := p.bracedIdentList()
		if err != nil {
			return nil, err
		}
		d.States = states
	case "swmr":
		proc, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		d.Proc = proc
		if err := p.keyword("writers"); err != nil {
			return nil, err
		}
		if d.Writers, err = p.bracedIdentList(); err != nil {
			return nil, err
		}
		if err := p.keyword("readers"); err != nil {
			return nil, err
		}
		if d.Readers, err = p.bracedIdentList(); err != nil {
			return nil, err
		}
	default:
		return nil, errf(kpos, "unknown invariant form '%s' (want atmostone or swmr)", kind)
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

// ---- expressions ----
// Precedence (loosest to tightest): | , & , comparisons, + -, unary !, postfix.

func (p *parser) expr() (ExprNode, error) { return p.orExpr() }

func (p *parser) orExpr() (ExprNode, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokOr) {
		op := p.bump()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: op.pos, Op: tokOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (ExprNode, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokAnd) {
		op := p.bump()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: op.pos, Op: tokAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (ExprNode, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		op := p.bump()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Pos: op.pos, Op: op.kind, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (ExprNode, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		op := p.bump()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: op.pos, Op: op.kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (ExprNode, error) {
	if p.at(tokNot) {
		op := p.bump()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: op.pos, Op: tokNot, E: e}, nil
	}
	if p.at(tokMinus) {
		op := p.bump()
		t, err := p.expect(tokInt)
		if err != nil {
			return nil, errf(op.pos, "unary minus applies to integer literals only")
		}
		n, _ := strconv.ParseInt(t.text, 10, 64)
		return &IntExpr{Pos: op.pos, Val: -n}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (ExprNode, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.bump()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.pos, "bad integer literal %s", t.text)
		}
		return &IntExpr{Pos: t.pos, Val: n}, nil
	case tokLParen:
		p.bump()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokLBrace:
		p.bump()
		set := &SetExpr{Pos: t.pos}
		for !p.at(tokRBrace) {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			set.Elems = append(set.Elems, e)
			if !p.accept(tokComma) {
				break
			}
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		return set, nil
	case tokIdent:
		p.bump()
		// Call?
		if p.at(tokLParen) {
			p.bump()
			call := &CallExpr{Pos: t.pos, Name: t.text}
			for !p.at(tokRParen) {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(tokComma) {
					break
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		id := &IdentExpr{Pos: t.pos, Parts: []string{t.text}}
		if p.accept(tokDot) {
			field, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			id.Parts = append(id.Parts, field)
		}
		if p.accept(tokPrime) {
			id.Primed = true
		}
		return id, nil
	}
	return nil, errf(t.pos, "expected an expression, found %s", p.describe(t))
}
