package lang

import (
	"os"
	"strings"
	"testing"

	"transit/internal/core"
	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
	"transit/internal/synth"
)

func TestLexerTokens(t *testing.T) {
	toks, err := lexAll("foo ==> => = != <= ! & | { } ( ) [ ] , ; : . ' 42 // comment\nbar")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.kind
	}
	want := []tokKind{tokIdent, tokImply, tokArrow, tokEq, tokNeq, tokLe, tokNot,
		tokAnd, tokOr, tokLBrace, tokRBrace, tokLParen, tokRParen, tokLBracket,
		tokRBracket, tokComma, tokSemi, tokColon, tokDot, tokPrime, tokInt,
		tokIdent, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lexAll("a == b"); err == nil {
		t.Error("'==' should be rejected")
	}
	if _, err := lexAll("a @ b"); err == nil {
		t.Error("'@' should be rejected")
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].pos.Line != 1 || toks[0].pos.Col != 1 {
		t.Errorf("first token at %v", toks[0].pos)
	}
	if toks[1].pos.Line != 2 || toks[1].pos.Col != 3 {
		t.Errorf("second token at %v", toks[1].pos)
	}
}

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseMinimal(t *testing.T) {
	f := mustParse(t, `
protocol P;
enum E { A, B }
message M { F: E; Who: PID }
network N ordered M to Q;
process Q {
    states { S1, S2 } init S1;
    var X: Int;
    transition (S1, N Msg) [Msg.F = A] => (S2) {
        [X > 0] ==> { X' = X - 1; }
    }
    transition (S2, N Msg) stall;
}
invariant atmostone Q in { S2 };
`)
	if f.Name != "P" || len(f.Enums) != 1 || len(f.Messages) != 1 ||
		len(f.Networks) != 1 || len(f.Processes) != 1 || len(f.Invariants) != 1 {
		t.Fatalf("parsed shape wrong: %+v", f)
	}
	q := f.Processes[0]
	if len(q.Transitions) != 2 || !q.Transitions[1].Stall {
		t.Fatalf("transitions wrong: %+v", q.Transitions)
	}
	tr := q.Transitions[0]
	if tr.Guard == nil || tr.To != "S2" || len(tr.Cases) != 1 {
		t.Fatalf("transition wrong: %+v", tr)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                   // missing protocol
		"protocol;",                          // missing name
		"protocol P; banana x;",              // unknown decl
		"protocol P; enum E { }",             // empty enum body -> ident expected
		"protocol P; network N fast M to Q;", // bad kind
		"protocol P; invariant magic Q;",     // unknown invariant
		"protocol P; process Q { states { A } init A; transition (A, N Msg) => ; }", // bad target
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown type", `protocol P; message M { F: Wibble } network N ordered M to Q; process Q { states {A} init A; }`, "unknown type"},
		{"unknown net", `protocol P; process Q { states {A} init A; transition (A, N Msg) => (A); }`, "unknown network"},
		{"unknown trigger", `protocol P; process Q { states {A} init A; transition (A, Go) => (A); }`, "no trigger"},
		{"bad guard type", `protocol P; enum E {X} message M { F: E } network N ordered M to Q;
			process Q { states {A} init A; var V: Int; transition (A, N Msg) [V] => (A); }`, "must be Boolean"},
		{"two primed", `protocol P; enum E {X} message M { F: E } network N ordered M to Q;
			process Q { states {A} init A; var V: Int; var W: Int;
			transition (A, N Msg) => (A) { [] ==> { V' = W'; } } }`, "exactly one primed"},
		{"primed in pre", `protocol P; enum E {X} message M { F: E } network N ordered M to Q;
			process Q { states {A} init A; var V: Int;
			transition (A, N Msg) => (A) { [V' = 0] ==> { V' = 0; } } }`, "outside a post-condition"},
		{"unknown ident", `protocol P; enum E {X} message M { F: E } network N ordered M to Q;
			process Q { states {A} init A; transition (A, N Msg) [Wot = 3] => (A); }`, "unknown identifier"},
		{"pid range", `protocol P; enum E {X} message M { F: E } network N ordered M to Q;
			process Q { states {A} init A; var V: PID; transition (A, N Msg) [V = C9] => (A); }`, "out of range"},
		{"mismatched eq", `protocol P; enum E {X} message M { F: E } network N ordered M to Q;
			process Q { states {A} init A; var V: Int; var S: Set; transition (A, N Msg) [V = S] => (A); }`, "mismatched"},
		{"bad invariant state", `protocol P; process Q { states {A} init A; } invariant atmostone Q in { Z };`, "unknown state"},
	}
	for _, c := range cases {
		_, err := Build(c.src, 2)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestExpressionElaboration(t *testing.T) {
	src := `
protocol P;
enum E { A, B }
message M { F: E; Who: PID }
network N ordered M to Q;
process Q {
    states { S1 } init S1;
    var X: Int;
    var S: Set;
    var O: PID;
    transition (S1, N Msg)
        [setcontains(S, Msg.Who) & X + 1 > setsize(S) | !(Msg.F = A) & ite(X >= 0, true, false)]
        => (S1) {
        [S = {C0, Msg.Who}] ==> {
            subseteq(setadd(S, O), S');
            X' = numcaches() - 1;
        }
    }
}
`
	proto, err := Build(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	sn := proto.Snippets[0]
	if sn.Guard == nil {
		t.Fatal("guard missing")
	}
	// Evaluate the guard and posts on a sample environment.
	u := proto.Sys.U
	e, _ := u.Enum("E")
	env := expr.Env{
		"X": expr.IntVal(u, 2), "S": expr.SetOf(0, 1), "O": expr.PIDVal(2),
		"Msg.F": expr.EnumValOf(e, "B"), "Msg.Who": expr.PIDVal(1),
		efsm.SelfVar: expr.PIDVal(0),
	}
	if !sn.Guard.Eval(u, env).Bool() {
		t.Errorf("guard should hold on %v: %s", env, expr.Pretty(sn.Guard))
	}
	if len(sn.Cases) != 1 || len(sn.Cases[0].Posts) != 2 {
		t.Fatalf("cases wrong: %+v", sn.Cases)
	}
	if sn.Cases[0].Posts[0].Target != "S" || sn.Cases[0].Posts[1].Target != "X" {
		t.Errorf("post targets wrong: %+v", sn.Cases[0].Posts)
	}
	// Pre: S = {C0, Msg.Who} where Msg.Who = C1 -> true on env.
	if !sn.Cases[0].Pre.Eval(u, env).Bool() {
		t.Error("pre should hold")
	}
}

// TestVIEndToEnd builds the VI protocol from its .tr source, synthesizes,
// and model checks — and cross-checks the state count against the Go-built
// VI in internal/protocols.
func TestVIEndToEnd(t *testing.T) {
	src, err := os.ReadFile("testdata/vi.tr")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3} {
		proto, err := Build(string(src), n)
		if err != nil {
			t.Fatal(err)
		}
		if proto.Name != "VI" {
			t.Fatalf("name = %s", proto.Name)
		}
		_, err = core.Complete(proto.Sys, proto.Vocab, proto.Snippets,
			core.Options{Limits: synth.Limits{MaxSize: 10}})
		if err != nil {
			t.Fatalf("VI(%d) synthesis: %v", n, err)
		}
		rt, err := efsm.NewRuntime(proto.Sys)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(rt, proto.Invariants, mc.Options{MaxStates: 500_000, CheckDeadlock: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("VI(%d) from .tr violates:\n%v", n, res.Violation)
		}
		want := map[int]int{2: 172, 3: 3204}[n]
		if res.States != want {
			t.Errorf("VI(%d) from .tr explores %d states; Go-built explores %d", n, res.States, want)
		}
	}
}

func TestMulticastSyntax(t *testing.T) {
	src := `
protocol P;
enum MT { Inv }
message M { T: MT; Dest: PID; From: PID }
message R { Who: PID }
network Down ordered M to C by Dest;
network Up unordered R to D;
process D {
    states { A } init A;
    var Sharers: Set;
    transition (A, Up Msg) => (A, Down Out to setminus(Sharers, setof(Msg.Who))) {
        [] ==> { Out.T' = Inv; Out.From' = Msg.Who; }
    }
}
process C replicated {
    states { B } init B;
    transition (B, Down Msg) => (B);
}
`
	proto, err := Build(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	sn := proto.Snippets[0]
	if len(sn.Sends) != 1 || sn.Sends[0].TargetSet == nil {
		t.Fatalf("multicast not captured: %+v", sn.Sends)
	}
	if sn.Sends[0].TargetSet.Type() != expr.SetType {
		t.Error("target set type wrong")
	}
}

func TestMulticastBadTargetType(t *testing.T) {
	src := `
protocol P;
enum MT { Inv }
message M { T: MT; Dest: PID }
message R { Who: PID }
network Down ordered M to C by Dest;
network Up unordered R to D;
process D {
    states { A } init A;
    transition (A, Up Msg) => (A, Down Out to Msg.Who) {
        [] ==> { Out.T' = Inv; }
    }
}
process C replicated { states { B } init B; }
`
	if _, err := Build(src, 3); err == nil || !strings.Contains(err.Error(), "Set-typed") {
		t.Errorf("expected multicast type error, got %v", err)
	}
}

// TestMSIEndToEnd builds the full MSI protocol from its .tr source and
// cross-checks the reachable state count against the Go-built MSI in
// internal/protocols (172-line golden equivalence: same protocol, two
// front-ends).
func TestMSIEndToEnd(t *testing.T) {
	src, err := os.ReadFile("testdata/msi.tr")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ n, wantStates int }{{2, 900}, {3, 36198}} {
		proto, err := Build(string(src), tc.n)
		if err != nil {
			t.Fatal(err)
		}
		_, err = core.Complete(proto.Sys, proto.Vocab, proto.Snippets,
			core.Options{Limits: synth.Limits{MaxSize: 12}})
		if err != nil {
			t.Fatalf("MSI(%d) synthesis: %v", tc.n, err)
		}
		rt, err := efsm.NewRuntime(proto.Sys)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(rt, proto.Invariants, mc.Options{MaxStates: 2_000_000, CheckDeadlock: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("MSI(%d) from .tr violates:\n%v", tc.n, res.Violation)
		}
		if res.States != tc.wantStates {
			t.Errorf("MSI(%d) from .tr explores %d states; Go-built explores %d",
				tc.n, res.States, tc.wantStates)
		}
	}
}
