// Package lang implements the TRANSIT surface language: a textual notation
// for protocol skeletons and concolic snippets in the style of the paper's
// Figure 4 and §3, with a lexer, a recursive-descent parser, a type
// checker, and an elaborator that lowers programs onto internal/efsm
// skeletons and snippet sets ready for synthesis by internal/core.
//
// A program looks like:
//
//	protocol VI;
//
//	enum ReqType { Get, Put }
//	message Req { MType: ReqType; Sender: PID }
//	network ReqNet ordered Req to Dir;
//	network RespNet ordered Resp to Cache by Dest;
//
//	process Cache replicated {
//	    states { I, I_V, V, V_I } init I;
//	    triggers { Access, Evict }
//
//	    transition (I, Access) => (I_V, ReqNet Out) {
//	        [] ==> { Out.MType' = Get; Out.Sender' = Self; }
//	    }
//	    transition (I_V, RespNet Msg) [Msg.RType = Data] => (V) {}
//	}
//
//	process Dir { ... transition (B, ReqNet Msg) stall; ... }
//
//	invariant atmostone Cache in { V };
//
// Guards in square brackets are symbolic; omitted or empty ([]) guards are
// inferred. Cases inside a transition body are `[pre] ==> { posts }`; a
// post is any Boolean expression mentioning exactly one primed variable,
// with `X' = e` as the symbolic-assignment special case. An output event
// `Net Var to <set-expr>` declares a multicast.
package lang

import "fmt"

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokSemi
	tokColon
	tokDot
	tokPrime // '
	tokArrow // =>
	tokImply // ==>
	tokEq    // =
	tokNeq   // !=
	tokNot   // !
	tokAnd   // &
	tokOr    // |
	tokLt    // <
	tokLe    // <=
	tokGt    // >
	tokGe    // >=
	tokPlus  // +
	tokMinus // -
)

var kindNames = map[tokKind]string{
	tokEOF: "end of file", tokIdent: "identifier", tokInt: "integer",
	tokLParen: "(", tokRParen: ")", tokLBrace: "{", tokRBrace: "}",
	tokLBracket: "[", tokRBracket: "]", tokComma: ",", tokSemi: ";",
	tokColon: ":", tokDot: ".", tokPrime: "'", tokArrow: "=>",
	tokImply: "==>", tokEq: "=", tokNeq: "!=", tokNot: "!", tokAnd: "&",
	tokOr: "|", tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
	tokPlus: "+", tokMinus: "-",
}

func (k tokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokKind
	text string
	pos  Pos
}

// Error is a positioned language error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
