package expr

import (
	"fmt"
	"strings"
)

// Pretty renders an expression in TRANSIT surface syntax with infix
// operators, e.g. "Sharers ∪ {Msg.Sender}" style output rendered in ASCII:
// (Sharers + {Msg.Sender}) prints as setunion, comparisons as infix, and so
// on. It is used for generated-code listings in the CLI and EXPERIMENTS.md.
func Pretty(e Expr) string {
	return pretty(e, 0)
}

// Operator binding strengths; larger binds tighter.
const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAdd
	precAtom
)

func pretty(e Expr, parent int) string {
	switch n := e.(type) {
	case *Var:
		return n.Name
	case *Const:
		return n.Val.String()
	case *Apply:
		return prettyApply(n, parent)
	}
	return e.String()
}

func prettyApply(a *Apply, parent int) string {
	wrap := func(prec int, s string) string {
		if prec < parent {
			return "(" + s + ")"
		}
		return s
	}
	switch a.Fn.Name {
	case "and":
		return wrap(precAnd, pretty(a.Args[0], precAnd)+" & "+pretty(a.Args[1], precAnd))
	case "or":
		return wrap(precOr, pretty(a.Args[0], precOr)+" | "+pretty(a.Args[1], precOr))
	case "not":
		// Render not(equals(a,b)) as a != b.
		if inner, ok := a.Args[0].(*Apply); ok && inner.Fn.Name == "equals" {
			return wrap(precCmp, pretty(inner.Args[0], precCmp+1)+" != "+pretty(inner.Args[1], precCmp+1))
		}
		return wrap(precNot, "!"+pretty(a.Args[0], precNot+1))
	case "equals":
		return wrap(precCmp, pretty(a.Args[0], precCmp+1)+" = "+pretty(a.Args[1], precCmp+1))
	case "gt":
		return wrap(precCmp, pretty(a.Args[0], precCmp+1)+" > "+pretty(a.Args[1], precCmp+1))
	case "ge":
		return wrap(precCmp, pretty(a.Args[0], precCmp+1)+" >= "+pretty(a.Args[1], precCmp+1))
	case "add":
		return wrap(precAdd, pretty(a.Args[0], precAdd)+" + "+pretty(a.Args[1], precAdd))
	case "sub":
		return wrap(precAdd, pretty(a.Args[0], precAdd)+" - "+pretty(a.Args[1], precAdd+1))
	case "setof":
		return "{" + pretty(a.Args[0], 0) + "}"
	case "true", "false", "numcaches", "0", "1", "emptyset":
		if a.Fn.Name == "emptyset" {
			return "{}"
		}
		if a.Fn.Name == "numcaches" {
			return "numcaches()"
		}
		return a.Fn.Name
	}
	if a.Fn.Arity() == 0 {
		// Enum or PID literal constant.
		return a.Fn.Name
	}
	parts := make([]string, len(a.Args))
	for i, arg := range a.Args {
		parts[i] = pretty(arg, 0)
	}
	return fmt.Sprintf("%s(%s)", a.Fn.Name, strings.Join(parts, ", "))
}
